// Package timedsim (the fixture, not the real one) mirrors the
// production arena/scratch idioms from internal/timedsim and
// internal/byzantine/eigflat.go at a determinism-gated import path. The
// whole suite must report nothing here: this is the no-false-positive
// baseline for device-owned reusable buffers, memoized fingerprints,
// arena scratch registers, and collect-then-sort map drains.
package timedsim

import (
	"fmt"
	"math/big"
	"sort"
)

type Message struct {
	From   string
	Body   string
	SentAt *big.Rat
}

type Send struct{ To, Body string }

// eigDevice reuses its own scratch across ticks — vals and pending are
// device-owned arenas, tmp is a local big.Rat register — and memoizes
// its fingerprint. None of that may be flagged.
type eigDevice struct {
	n, f    int
	fp      string
	vals    []string
	tmp     big.Rat
	pending []Send
}

func (d *eigDevice) DeviceFingerprint() string {
	if d.fp == "" {
		d.fp = fmt.Sprintf("eig:%d:%d", d.n, d.f)
	}
	return d.fp
}

func (d *eigDevice) Tick(k int, hw *big.Rat, inbox []Message) []Send {
	d.tmp.Set(hw) // copying out of the scratch register: ok
	d.vals = d.vals[:0]
	for _, m := range inbox {
		d.vals = append(d.vals, m.Body) // string copy, not an alias: ok
	}
	sort.Strings(d.vals)
	d.pending = d.pending[:0]
	for _, v := range d.vals {
		d.pending = append(d.pending, Send{To: v, Body: v})
	}
	return d.pending
}

// merge drains a map into a slice and sorts it with a deterministic
// tie-break — the sanctioned collect-then-sort idiom.
func merge(rounds map[int][]Message) []Message {
	var out []Message
	for _, ms := range rounds {
		out = append(out, ms...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Body < out[j].Body
	})
	return out
}
