// Package runcache is a content-addressed memoization layer for
// deterministic executions. The impossibility engine replays
// near-identical scenarios hundreds of times — every chain link
// re-executes a covering-graph run, every sweep trial re-runs the same
// device panel — and because devices are deterministic, a run is fully
// determined by a canonical fingerprint of its inputs. The cache maps
// such fingerprints to the (immutable) results so identical executions
// happen once and are shared thereafter.
//
// The cache is two-tier:
//
//   - L1 (memory) is a sharded map keyed by fingerprint prefix, each
//     shard guarded by its own mutex and bounded by its slice of a
//     configurable byte budget (FLM_CACHE_BUDGET, default 256MiB) with
//     LRU eviction. The per-shard bound is enforced under the shard
//     lock, so the whole cache provably never retains more than the
//     budget.
//   - L2 (disk, optional) is a content-addressed blob store (see
//     disk.go) installed with SetStore. An L1 miss consults the store
//     before computing, and a computed value is written back, giving
//     cross-process and CI-to-CI reuse: fingerprints are canonical
//     sha256 digests, so a blob written by one process is a valid
//     answer for every other.
//
// Concurrency contract: Do is single-flight per key. Under parallel
// sweeps (FLM_WORKERS > 1) concurrent callers with the same fingerprint
// block on one in-flight computation instead of duplicating it, and the
// result is published race-cleanly via a channel close. Waiters hold the
// flight's entry directly, so an entry evicted (or Reset away) while
// still being waited on delivers its value to every waiter anyway — a
// later lookup of the same key simply recomputes. Errors are never
// cached: every waiter of the failing flight receives the error (and any
// partial value), then the entry is discarded so a later call retries —
// partial runs stay diagnosable exactly as in the uncached engine.
//
// Enablement: the cache is on by default and can be disabled for
// debugging with FLM_RUNCACHE=off (or 0/false/no), or programmatically
// with SetEnabled. Callers must check Enabled before consulting a cache;
// disabling therefore bypasses lookups without invalidating entries. A
// budget of zero retains nothing (every lookup recomputes) while still
// coalescing concurrent callers — byte-identical results to a disabled
// cache, useful for bounding memory without giving up single-flight.
package runcache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"flm/internal/obs"
)

// DefaultBudget is the L1 byte budget when FLM_CACHE_BUDGET is unset:
// large enough that the full E1-E20 suite never evicts, small enough
// that a long-running sweep service cannot grow without limit.
const DefaultBudget = 256 << 20

// defaultShards is the L1 shard count. Fingerprints are sha256 digests,
// so the leading key byte spreads uniformly; 16 shards keep per-shard
// mutex contention negligible at any realistic FLM_WORKERS.
const defaultShards = 16

// Stats is a point-in-time view of a cache's effectiveness counters.
// Hits/Misses/Waits/DiskHits/... are monotonically growing flows;
// Entries and BytesRetained are current levels.
type Stats struct {
	Hits      uint64 // lookups served from a finished or in-flight L1 entry
	Misses    uint64 // lookups that started a computation
	Waits     uint64 // hits that blocked on a still-in-flight computation
	Entries   int    // entries currently retained, including any still in flight
	Evictions uint64 // resident entries dropped to stay within the budget

	BytesRetained uint64 // accounted cost of the resident L1 entries

	DiskHits         uint64 // L1 misses filled from the disk tier
	DiskMisses       uint64 // disk lookups that found no (valid) blob
	DiskWrites       uint64 // computed values written back to the disk tier
	DiskCorrupt      uint64 // blobs rejected (bad digest/truncated) and deleted
	DiskBytesRead    uint64 // blob payload bytes read on disk hits
	DiskBytesWritten uint64 // blob payload bytes written back
}

// Since returns the counter deltas accumulated after prev was taken —
// the per-command (or per-experiment) view of a cache whose counters are
// process-global and monotonically growing. Entries and BytesRetained
// are levels, not flows; the current value is reported unchanged.
func (s Stats) Since(prev Stats) Stats {
	return Stats{
		Hits:             s.Hits - prev.Hits,
		Misses:           s.Misses - prev.Misses,
		Waits:            s.Waits - prev.Waits,
		Entries:          s.Entries,
		Evictions:        s.Evictions - prev.Evictions,
		BytesRetained:    s.BytesRetained,
		DiskHits:         s.DiskHits - prev.DiskHits,
		DiskMisses:       s.DiskMisses - prev.DiskMisses,
		DiskWrites:       s.DiskWrites - prev.DiskWrites,
		DiskCorrupt:      s.DiskCorrupt - prev.DiskCorrupt,
		DiskBytesRead:    s.DiskBytesRead - prev.DiskBytesRead,
		DiskBytesWritten: s.DiskBytesWritten - prev.DiskBytesWritten,
	}
}

// HitRate is served-without-computing over lookups, in [0,1]; 0 with no
// lookups. Disk hits count as served: the caller got a finished value
// without stepping a device.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.DiskHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.DiskHits) / float64(total)
}

// How reports the way one lookup was served.
type How uint8

const (
	// Computed: this call ran the compute function (an L1 and — if a
	// store is installed — L2 miss).
	Computed How = iota
	// Hit: served from a finished L1 entry.
	Hit
	// Waited: served from an in-flight L1 entry after blocking on the
	// computing caller (the single-flight wait).
	Waited
	// DiskHit: L1 missed; the value was decoded from the disk tier
	// without running compute.
	DiskHit
)

// String names the outcome for span attributes and logs.
func (h How) String() string {
	switch h {
	case Hit:
		return "hit"
	case Waited:
		return "wait"
	case DiskHit:
		return "disk"
	default:
		return "miss"
	}
}

// entry is one flight: done is closed exactly once, after val/err are
// set, which is the happens-before edge that publishes them to waiters.
// A completed, retained entry additionally sits on its shard's LRU list
// (resident == true); in-flight entries live in the map but never on
// the list, so eviction cannot touch a flight that still has waiters
// piling onto it.
type entry struct {
	key  string
	done chan struct{}
	val  any
	err  error

	cost       int64
	resident   bool
	prev, next *entry // shard LRU list links (most recent at head)
}

// shard is one lock domain of the L1 map: its own entries, its own LRU
// order, its own slice of the byte budget. The budget invariant —
// bytes <= budget at every unlock — is local to the shard, which is
// what makes the global bound (sum of shards) provable without a global
// lock.
type shard struct {
	mu        sync.Mutex
	entries   map[string]*entry
	head      *entry // most recently used resident entry
	tail      *entry // least recently used resident entry
	bytes     int64
	residents int   // length of the LRU list
	budget    int64 // < 0 unbounded, 0 retain nothing
	maxEnt    int   // max resident entries; 0 = unbounded
}

// Cache is a single-flight two-tier memoization table keyed by
// canonical fingerprints. The zero value is not usable; use New.
type Cache struct {
	shards []*shard
	cost   func(any) int64
	tier2  atomic.Pointer[tier2]

	hits      atomic.Uint64
	misses    atomic.Uint64
	waits     atomic.Uint64
	evictions atomic.Uint64

	diskHits    atomic.Uint64
	diskMisses  atomic.Uint64
	diskWrites  atomic.Uint64
	diskCorrupt atomic.Uint64
	diskRead    atomic.Uint64
	diskWritten atomic.Uint64

	// Optional observability mirrors (nil unless WithMetrics): atomic
	// counters/gauges only, so the disabled-tracing engine stays on its
	// zero-alloc path.
	mEvict, mDiskHit, mDiskMiss, mDiskWrite *obs.Counter
	gBytes, gEntries                        *obs.Gauge
}

// tier2 pairs a blob store with the codec that turns cached values into
// blobs and back. Swapped atomically so SetStore is safe against
// concurrent Do calls.
type tier2 struct {
	store *Store
	codec Codec
}

// Codec serializes cache values for the disk tier. Encode reports
// ok=false for values the codec cannot represent (those stay L1-only);
// Decode failures are treated as corrupt blobs (deleted, then
// recomputed). The key is the entry's canonical fingerprint, available
// so decoded values can carry their own content address.
type Codec interface {
	Encode(key string, v any) (data []byte, ok bool)
	Decode(key string, data []byte) (any, error)
}

// Option configures a Cache at construction.
type Option func(*cacheConfig)

type cacheConfig struct {
	shards  int
	budget  int64
	haveBud bool
	maxEnt  int
	cost    func(any) int64
	metrics string
}

// WithShards sets the L1 shard count (default 16). More shards cut
// mutex contention; fewer make tiny budgets divide less coarsely.
func WithShards(n int) Option {
	return func(c *cacheConfig) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithBudget sets the L1 byte budget, overriding FLM_CACHE_BUDGET.
// Negative is unbounded; zero retains nothing (single-flight only).
func WithBudget(bytes int64) Option {
	return func(c *cacheConfig) { c.budget = bytes; c.haveBud = true }
}

// WithMaxEntries additionally bounds the resident entry count (0 =
// unbounded). Like the byte budget it divides across shards.
func WithMaxEntries(n int) Option {
	return func(c *cacheConfig) {
		if n > 0 {
			c.maxEnt = n
		}
	}
}

// WithCost sets the byte-cost estimator used for budget accounting.
// Without it, strings and byte slices are costed by length and
// everything else at a flat 512 bytes — callers caching richer values
// (the engine caches whole runs) should install a real estimator.
func WithCost(f func(v any) int64) Option {
	return func(c *cacheConfig) { c.cost = f }
}

// WithMetrics mirrors the cache's eviction/disk counters and retained
// bytes/entries gauges into the internal/obs registry under
// "runcache.<name>.*", so traces carry them in the final metrics line.
func WithMetrics(name string) Option {
	return func(c *cacheConfig) { c.metrics = name }
}

// New returns an empty cache. With no options: 16 shards, the
// FLM_CACHE_BUDGET byte budget (default 256MiB), default cost model,
// no disk tier, no metrics.
func New(opts ...Option) *Cache {
	cfg := cacheConfig{shards: defaultShards, cost: defaultCost}
	for _, o := range opts {
		o(&cfg)
	}
	if !cfg.haveBud {
		cfg.budget = envBudget()
	}
	c := &Cache{
		shards: make([]*shard, cfg.shards),
		cost:   cfg.cost,
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			entries: make(map[string]*entry),
			budget:  shardSlice(cfg.budget, cfg.shards),
			maxEnt:  shardEntSlice(cfg.maxEnt, cfg.shards),
		}
	}
	if cfg.metrics != "" {
		p := "runcache." + cfg.metrics
		c.mEvict = obs.NewCounter(p + ".evict")
		c.mDiskHit = obs.NewCounter(p + ".disk.hit")
		c.mDiskMiss = obs.NewCounter(p + ".disk.miss")
		c.mDiskWrite = obs.NewCounter(p + ".disk.write")
		c.gBytes = obs.NewGauge(p + ".bytes")
		c.gEntries = obs.NewGauge(p + ".entries")
	}
	return c
}

// shardSlice divides the byte budget across shards. Unbounded stays
// unbounded; a bounded budget is floored per shard so the shard sums
// never exceed the requested total.
func shardSlice(budget int64, shards int) int64 {
	if budget < 0 {
		return -1
	}
	return budget / int64(shards)
}

func shardEntSlice(maxEnt, shards int) int {
	if maxEnt <= 0 {
		return 0
	}
	n := maxEnt / shards
	if n < 1 {
		n = 1
	}
	return n
}

// defaultCost is the fallback byte-cost model: exact for the flat value
// shapes tests use, a flat conservative guess otherwise.
func defaultCost(v any) int64 {
	switch x := v.(type) {
	case string:
		return int64(len(x)) + 16
	case []byte:
		return int64(len(x)) + 24
	default:
		return 512
	}
}

// shard routes a key to its lock domain by fingerprint prefix. Keys are
// sha256 digests in the engine, so the first byte is uniform; arbitrary
// test keys just cluster, which is harmless.
func (c *Cache) shard(key string) *shard {
	if len(key) == 0 {
		return c.shards[0]
	}
	return c.shards[int(key[0])%len(c.shards)]
}

// SetStore installs (or, with a nil store, removes) the disk tier and
// returns a function restoring the previous one, for defer-style use.
// Safe to call concurrently with lookups: in-progress flights keep the
// tier they started with.
func (c *Cache) SetStore(store *Store, codec Codec) (restore func()) {
	var next *tier2
	if store != nil && codec != nil {
		next = &tier2{store: store, codec: codec}
	}
	prev := c.tier2.Swap(next)
	return func() { c.tier2.Store(prev) }
}

// Store returns the currently installed disk tier's store, or nil.
func (c *Cache) Store() *Store {
	if t2 := c.tier2.Load(); t2 != nil {
		return t2.store
	}
	return nil
}

// SetBudget rebounds the L1 byte budget at runtime (same semantics as
// WithBudget), evicting immediately if shards are over their new slice,
// and returns a function restoring the previous budget. The entry cap
// is unchanged.
func (c *Cache) SetBudget(bytes int64) (restore func()) {
	var prev int64
	per := shardSlice(bytes, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.Lock()
		if i == 0 {
			prev = sh.budget
		}
		sh.budget = per
		c.evictLocked(sh)
		sh.mu.Unlock()
	}
	prevTotal := prev
	if prev >= 0 {
		prevTotal = prev * int64(len(c.shards))
	}
	return func() { c.SetBudget(prevTotal) }
}

// Do returns the value cached under key, computing it with compute on
// first use. Concurrent callers with the same key share one in-flight
// computation. A compute that errors (or panics) is handed to every
// waiter of that flight and then forgotten, so errors are never served
// from cache. The cached value is shared by all callers and must be
// treated as immutable.
func (c *Cache) Do(key string, compute func() (any, error)) (any, error) {
	v, _, err := c.DoHow(key, compute)
	return v, err
}

// DoObserved is Do, additionally reporting how the lookup was served:
// hit is true when the value came without running compute (a finished
// or in-flight L1 entry, or a disk-tier fill), and waited is true for
// the in-flight case, where this caller blocked on another caller's
// computation (the single-flight wait). DoHow exposes the full
// four-way outcome; this shape is kept for the existing call sites.
func (c *Cache) DoObserved(key string, compute func() (any, error)) (v any, hit, waited bool, err error) {
	v, how, err := c.DoHow(key, compute)
	return v, how != Computed, how == Waited, err
}

// DoHow is Do, reporting the serve outcome (miss / hit / wait / disk).
func (c *Cache) DoHow(key string, compute func() (any, error)) (any, How, error) {
	sh := c.shard(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		if e.resident {
			sh.moveToFront(e)
		}
		sh.mu.Unlock()
		c.hits.Add(1)
		how := Hit
		select {
		case <-e.done:
		default:
			how = Waited
			c.waits.Add(1)
			<-e.done
		}
		return e.val, how, e.err
	}
	e := &entry{key: key, done: make(chan struct{})}
	sh.entries[key] = e
	sh.mu.Unlock()

	// This caller owns the flight. Try the disk tier before computing;
	// waiters that piled up behind the entry are served either way.
	if t2 := c.tier2.Load(); t2 != nil {
		if v, ok := c.diskLookup(t2, key); ok {
			e.val = v
			c.finish(sh, e, true)
			return v, DiskHit, nil
		}
	}

	c.misses.Add(1)
	finished := false
	defer func() {
		// Runs on the normal return path and when compute panics: the
		// failed flight is discarded (finished == false or err != nil)
		// and the done close releases any waiters either way.
		c.finish(sh, e, finished && e.err == nil)
	}()
	e.val, e.err = compute()
	finished = true
	if e.err == nil {
		if t2 := c.tier2.Load(); t2 != nil {
			c.diskWrite(t2, key, e.val)
		}
	}
	return e.val, Computed, e.err
}

// diskLookup consults the disk tier for key, decoding a verified blob.
// Corrupt or undecodable blobs are deleted and reported as misses, so a
// damaged cache directory degrades to recomputation, never to a wrong
// or failing lookup.
func (c *Cache) diskLookup(t2 *tier2, key string) (any, bool) {
	data, err := t2.store.Get(key)
	switch {
	case err == nil:
		v, derr := t2.codec.Decode(key, data)
		if derr != nil {
			c.diskCorrupt.Add(1)
			c.diskMisses.Add(1)
			incCounter(c.mDiskMiss)
			t2.store.Delete(key)
			return nil, false
		}
		c.diskHits.Add(1)
		c.diskRead.Add(uint64(len(data)))
		incCounter(c.mDiskHit)
		return v, true
	case isCorrupt(err):
		c.diskCorrupt.Add(1)
		t2.store.Delete(key) // Put skips existing files; clear the way for the rewrite
		fallthrough
	default:
		c.diskMisses.Add(1)
		incCounter(c.mDiskMiss)
		return nil, false
	}
}

// diskWrite serializes a computed value into the disk tier. Encode
// opting out (ok=false) and write errors are both silent: the disk tier
// is an accelerator, never a correctness dependency.
func (c *Cache) diskWrite(t2 *tier2, key string, v any) {
	data, ok := t2.codec.Encode(key, v)
	if !ok {
		return
	}
	if err := t2.store.Put(key, data); err == nil {
		c.diskWrites.Add(1)
		c.diskWritten.Add(uint64(len(data)))
		incCounter(c.mDiskWrite)
	}
}

// finish completes a flight: on retain it promotes the entry to
// resident (accounting its cost and evicting LRU entries to stay within
// the shard budget), otherwise it discards it. Either way the done
// close publishes val/err to every waiter. The entry may already have
// been removed by Reset; then there is nothing to retain.
func (c *Cache) finish(sh *shard, e *entry, retain bool) {
	sh.mu.Lock()
	if cur, ok := sh.entries[e.key]; ok && cur == e {
		fits := retain && sh.budget != 0
		if fits {
			e.cost = c.cost(e.val)
			if sh.budget >= 0 && e.cost > sh.budget {
				fits = false // larger than the whole shard slice: unretainable
			}
		}
		if fits {
			e.resident = true
			sh.pushFront(e)
			sh.bytes += e.cost
			addGauge(c.gBytes, e.cost)
			addGauge(c.gEntries, 1)
			c.evictLocked(sh)
		} else {
			delete(sh.entries, e.key)
		}
	}
	sh.mu.Unlock()
	close(e.done)
}

// evictLocked drops least-recently-used resident entries until the
// shard is back inside its byte and entry bounds. Callers hold sh.mu.
// In-flight entries are never on the list, so a flight with waiters can
// never be computed twice by eviction pressure.
func (c *Cache) evictLocked(sh *shard) {
	for sh.tail != nil &&
		((sh.budget >= 0 && sh.bytes > sh.budget) ||
			(sh.maxEnt > 0 && sh.residents > sh.maxEnt)) {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.entries, victim.key)
		sh.bytes -= victim.cost
		c.evictions.Add(1)
		incCounter(c.mEvict)
		addGauge(c.gBytes, -victim.cost)
		addGauge(c.gEntries, -1)
	}
}

// incCounter and addGauge tolerate the nil metrics of a cache built
// without WithMetrics.
func incCounter(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func addGauge(g *obs.Gauge, delta int64) {
	if g != nil {
		g.Add(delta)
	}
}

// moveToFront marks e as most recently used.
func (sh *shard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
	sh.residents++
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
	sh.residents--
}

// Stats returns the current counters. Entries counts retained entries,
// including any still in flight; BytesRetained is the accounted cost of
// the resident ones.
func (c *Cache) Stats() Stats {
	var entries int
	var bytes int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		entries += len(sh.entries)
		bytes += sh.bytes
		sh.mu.Unlock()
	}
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Waits:            c.waits.Load(),
		Entries:          entries,
		Evictions:        c.evictions.Load(),
		BytesRetained:    uint64(bytes),
		DiskHits:         c.diskHits.Load(),
		DiskMisses:       c.diskMisses.Load(),
		DiskWrites:       c.diskWrites.Load(),
		DiskCorrupt:      c.diskCorrupt.Load(),
		DiskBytesRead:    c.diskRead.Load(),
		DiskBytesWritten: c.diskWritten.Load(),
	}
}

// Reset drops all L1 entries and zeroes the counters. In-flight
// computations finish normally but their results are not retained. The
// disk tier is untouched: Reset makes the *memory* cold. Callers that
// need a fully cold run (flm bench) must also bypass or uninstall the
// store — see SetStore.
func (c *Cache) Reset() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.entries = make(map[string]*entry)
		sh.head, sh.tail = nil, nil
		addGauge(c.gBytes, -sh.bytes)
		addGauge(c.gEntries, int64(-sh.residents))
		sh.bytes = 0
		sh.residents = 0
		sh.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.waits.Store(0)
	c.evictions.Store(0)
	c.diskHits.Store(0)
	c.diskMisses.Store(0)
	c.diskWrites.Store(0)
	c.diskCorrupt.Store(0)
	c.diskRead.Store(0)
	c.diskWritten.Store(0)
}

// override is the SetEnabled state: 0 defer to env, 1 force on, 2 force
// off.
var override atomic.Int32

var envOnce sync.Once
var envDefault bool

func envEnabled() bool {
	envOnce.Do(func() {
		switch strings.ToLower(os.Getenv("FLM_RUNCACHE")) {
		case "0", "off", "false", "no":
			envDefault = false
		default:
			envDefault = true
		}
	})
	return envDefault
}

var budOnce sync.Once
var budDefault int64

// envBudget reads FLM_CACHE_BUDGET once: a byte count with an optional
// K/M/G (or KiB/MiB/GiB) binary-unit suffix, "unbounded" for no limit,
// 0 to retain nothing. Malformed values fall back to DefaultBudget.
func envBudget() int64 {
	budOnce.Do(func() {
		b, ok := ParseBudget(os.Getenv("FLM_CACHE_BUDGET"))
		if !ok {
			b = DefaultBudget
		}
		budDefault = b
	})
	return budDefault
}

// ParseBudget parses a FLM_CACHE_BUDGET value. The empty string is the
// default budget; "unbounded" (or any negative number) lifts the bound;
// otherwise a non-negative integer with an optional binary-unit suffix
// (K/KB/KiB, M/MB/MiB, G/GB/GiB, case-insensitive).
func ParseBudget(s string) (bytes int64, ok bool) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return DefaultBudget, true
	}
	if s == "unbounded" || s == "unlimited" {
		return -1, true
	}
	mult := int64(1)
	for _, suf := range []struct {
		text string
		mult int64
	}{
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
	} {
		if strings.HasSuffix(s, suf.text) {
			s = strings.TrimSuffix(s, suf.text)
			mult = suf.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, false
	}
	if n < 0 {
		return -1, true
	}
	return n * mult, true
}

// Enabled reports whether caches should be consulted: a SetEnabled
// override if present, otherwise the FLM_RUNCACHE environment default
// (on unless set to 0/off/false/no).
func Enabled() bool {
	switch override.Load() {
	case 1:
		return true
	case 2:
		return false
	}
	return envEnabled()
}

// SetEnabled overrides the environment default and returns a function
// restoring the previous state, for defer-style use in tests and the
// CLI.
func SetEnabled(on bool) (restore func()) {
	prev := override.Load()
	if on {
		override.Store(1)
	} else {
		override.Store(2)
	}
	return func() { override.Store(prev) }
}

// Hasher builds collision-resistant cache keys from canonical field
// sequences. Every field is length-delimited before hashing, so two
// different field sequences can never produce the same byte stream; the
// sha256 digest then makes accidental key collisions negligible — which
// matters, because a colliding key would silently substitute one run
// for another.
type Hasher struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
}

// NewHasher starts a key with a domain-separation tag (e.g.
// "sim.run/v1"); bump the version when the keyed content changes shape.
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Field(domain)
	return h
}

// Field appends one length-delimited string field.
func (h *Hasher) Field(s string) {
	n := binary.PutUvarint(h.buf[:], uint64(len(s)))
	h.h.Write(h.buf[:n])
	io.WriteString(h.h, s)
}

// Int appends one integer field.
func (h *Hasher) Int(v int) { h.Field(strconv.Itoa(v)) }

// Sum returns the finished key.
func (h *Hasher) Sum() string { return string(h.h.Sum(nil)) }
