package runcache

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// strCodec is a trivial string codec for exercising the disk tier
// without dragging in a real result type.
type strCodec struct{}

func (strCodec) Encode(key string, v any) ([]byte, bool) {
	s, ok := v.(string)
	if !ok {
		return nil, false
	}
	return []byte(s), true
}

func (strCodec) Decode(key string, data []byte) (any, error) {
	return string(data), nil
}

func testKey(tag string) string {
	h := NewHasher("disk-test/v1")
	h.Field(tag)
	return h.Sum()
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("rt")
	if _, err := s.Get(key); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get on empty store = %v, want ErrNotExist", err)
	}
	payload := []byte("the quick brown byzantine general")
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("Get = (%q, %v), want the stored payload", got, err)
	}
	// Put on an existing key is a no-op, never an error.
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	n, bytes, err := s.Len()
	if err != nil || n != 1 || bytes == 0 {
		t.Fatalf("Len = (%d, %d, %v), want 1 blob with nonzero size", n, bytes, err)
	}
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get after Delete = %v, want ErrNotExist", err)
	}
	// Deleting an absent key is fine.
	if err := s.Delete(key); err != nil {
		t.Fatalf("double Delete: %v", err)
	}
}

func TestOpenStoreEmptyDir(t *testing.T) {
	if _, err := OpenStore(""); err == nil {
		t.Fatal("OpenStore(\"\") succeeded, want error")
	}
}

// blobFile locates the single .blob file under dir.
func blobFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*", "*.blob"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one blob under %s, got %v (%v)", dir, matches, err)
	}
	return matches[0]
}

// TestStoreCorruption damages a valid blob in every way the frame
// protects against and asserts each is reported as *CorruptError, never
// as a valid read or a panic.
func TestStoreCorruption(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bit flip in payload", func(b []byte) []byte {
			b[len(b)/2] ^= 0x40
			return b
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
		{"bad magic", func(b []byte) []byte {
			b[0] ^= 0xff
			return b
		}},
		{"empty file", func(b []byte) []byte { return nil }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			key := testKey(m.name)
			if err := s.Put(key, []byte("a payload long enough to damage meaningfully")); err != nil {
				t.Fatal(err)
			}
			path := blobFile(t, dir)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, m.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = s.Get(key)
			if err == nil {
				t.Fatal("Get returned a damaged blob as valid")
			}
			if !isCorrupt(err) {
				t.Fatalf("Get = %v, want *CorruptError", err)
			}
		})
	}
}

// TestCrossCacheDiskHit is the cross-process reuse contract in
// miniature: two independent Cache instances (stand-ins for two
// processes) share one store; the second serves from disk without
// running its compute function.
func TestCrossCacheDiskHit(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("cross")

	c1 := New()
	defer c1.SetStore(store, strCodec{})()
	if v, err := c1.Do(key, func() (any, error) { return "computed-once", nil }); err != nil || v != "computed-once" {
		t.Fatalf("first process Do = (%v, %v)", v, err)
	}
	if st := c1.Stats(); st.DiskWrites != 1 {
		t.Fatalf("first process wrote %d blobs, want 1: %+v", st.DiskWrites, st)
	}

	c2 := New()
	defer c2.SetStore(store, strCodec{})()
	v, err := c2.Do(key, func() (any, error) {
		t.Error("second process computed despite a warm disk tier")
		return nil, errors.New("unreachable")
	})
	if err != nil || v != "computed-once" {
		t.Fatalf("second process Do = (%v, %v), want the disk-served value", v, err)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("second process stats = %+v, want DiskHits 1 / Misses 0", st)
	}
	// The disk-served value is now L1-resident: a third lookup is a pure
	// memory hit with no new disk traffic.
	c2.Do(key, func() (any, error) { return nil, errors.New("unreachable") })
	st = c2.Stats()
	if st.Hits != 1 || st.DiskHits != 1 {
		t.Fatalf("third lookup stats = %+v, want the disk hit promoted to L1", st)
	}
}

// TestCorruptBlobRecovery: a damaged blob must read as a miss — the
// cache recomputes, deletes the bad blob, and rewrites a good one.
func TestCorruptBlobRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("recover")
	c1 := New()
	restore := c1.SetStore(store, strCodec{})
	c1.Do(key, func() (any, error) { return "good", nil })
	restore()

	path := blobFile(t, dir)
	raw, _ := os.ReadFile(path)
	raw[len(raw)-3] ^= 0x01 // flip a digest bit
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := New()
	defer c2.SetStore(store, strCodec{})()
	calls := 0
	v, err := c2.Do(key, func() (any, error) { calls++; return "recomputed", nil })
	if err != nil || v != "recomputed" || calls != 1 {
		t.Fatalf("Do over corrupt blob = (%v, %v, calls %d), want recompute", v, err, calls)
	}
	st := c2.Stats()
	if st.DiskCorrupt != 1 {
		t.Fatalf("stats = %+v, want DiskCorrupt 1", st)
	}
	// The corrupt blob was deleted and replaced by the recomputed value.
	got, err := store.Get(key)
	if err != nil || string(got) != "recomputed" {
		t.Fatalf("store after recovery = (%q, %v), want rewritten blob", got, err)
	}
}

// TestResetKeepsDisk: Reset clears L1 only; the blob store must still
// serve the key afterwards.
func TestResetKeepsDisk(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	defer c.SetStore(store, strCodec{})()
	key := testKey("reset")
	c.Do(key, func() (any, error) { return "persisted", nil })
	c.Reset()
	v, err := c.Do(key, func() (any, error) {
		t.Error("computed despite a warm disk tier surviving Reset")
		return nil, errors.New("unreachable")
	})
	if err != nil || v != "persisted" {
		t.Fatalf("post-Reset Do = (%v, %v), want disk-served value", v, err)
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Fatalf("post-Reset stats = %+v, want DiskHits 1", st)
	}
}

// TestSetStoreRestore: the restore function returned by SetStore
// reinstates the previous tier (none), after which lookups are pure L1.
func TestSetStoreRestore(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	restore := c.SetStore(store, strCodec{})
	if c.Store() != store {
		t.Fatal("Store() does not report the installed store")
	}
	restore()
	if c.Store() != nil {
		t.Fatal("restore left the disk tier installed")
	}
	key := testKey("restore")
	c.Do(key, func() (any, error) { return "memory-only", nil })
	if _, err := store.Get(key); !errors.Is(err, ErrNotExist) {
		t.Fatalf("uninstalled store received a write: %v", err)
	}
}

func TestDefaultDir(t *testing.T) {
	t.Setenv("FLM_CACHE_DIR", "/tmp/flm-cache-test")
	if got := DefaultDir(); got != "/tmp/flm-cache-test" {
		t.Fatalf("DefaultDir with FLM_CACHE_DIR set = %q", got)
	}
	for _, off := range []string{"off", "OFF", "0", "none", "false", "no"} {
		t.Setenv("FLM_CACHE_DIR", off)
		if got := DefaultDir(); got != "" {
			t.Fatalf("DefaultDir with FLM_CACHE_DIR=%q = %q, want disabled", off, got)
		}
	}
	t.Setenv("FLM_CACHE_DIR", "")
	got := DefaultDir()
	if ucd, err := os.UserCacheDir(); err == nil {
		if want := filepath.Join(ucd, "flm"); got != want {
			t.Fatalf("DefaultDir unset = %q, want %q", got, want)
		}
	} else if got != "" {
		t.Fatalf("DefaultDir with no user cache dir = %q, want \"\"", got)
	}
}
