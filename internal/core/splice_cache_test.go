package core

import (
	"testing"

	"flm/internal/byzantine"
	"flm/internal/graph"
	"flm/internal/runcache"
	"flm/internal/sim"
)

// TestSpliceCacheEquivalence runs the same contradiction chain with the
// caches enabled and disabled and demands identical reported chains —
// the cache must be semantically invisible — while confirming that the
// cached pass actually hit the splice cache.
func TestSpliceCacheEquivalence(t *testing.T) {
	g := graph.MustNew("a", "b", "c")
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	chain := func() string {
		cr, err := ByzantineTriangle(uniformBuilders(g, byzantine.NewMajority(2)), "majority", 8)
		if err != nil {
			t.Fatal(err)
		}
		return cr.String()
	}

	off := runcache.SetEnabled(false)
	want := chain()
	off()

	on := runcache.SetEnabled(true)
	defer on()
	ResetSpliceCache()
	sim.ResetRunCache()
	first := chain()
	st0 := SpliceCacheStats()
	if st0.Misses == 0 || st0.Entries == 0 {
		t.Fatalf("cached pass never consulted the splice cache: %+v", st0)
	}
	second := chain()
	st1 := SpliceCacheStats()
	if st1.Hits <= st0.Hits {
		t.Fatalf("repeat chain did not hit the splice cache: %+v -> %+v", st0, st1)
	}
	if st1.Misses != st0.Misses {
		t.Fatalf("repeat chain re-executed splices: %+v -> %+v", st0, st1)
	}

	if first != want || second != want {
		t.Fatalf("cached chain diverged from uncached chain:\nuncached:\n%s\ncached #1:\n%s\ncached #2:\n%s",
			want, first, second)
	}
}

// TestSpliceCacheRequiresMatchingBuilders pins the safety guard: a
// builders map other than the one the installation was made from must
// bypass the cache (builder funcs are not hashable, so pointer identity
// is the only sound link between key and behavior).
func TestSpliceCacheRequiresMatchingBuilders(t *testing.T) {
	on := runcache.SetEnabled(true)
	defer on()
	ResetSpliceCache()

	cover := graph.HexCover()
	builders := uniformBuilders(cover.G, byzantine.NewMajority(2))
	inputs := make(map[string]sim.Input, cover.S.N())
	for _, name := range cover.S.Names() {
		inputs[name] = sim.Input("1")
	}
	inst, err := InstallCover(cover, builders, inputs)
	if err != nil {
		t.Fatal(err)
	}
	runS, err := inst.Execute(4)
	if err != nil {
		t.Fatal(err)
	}
	u := []int{0, 1}

	if _, ok := spliceKey(inst, runS, u, builders); !ok {
		t.Fatal("matching builders map did not qualify for the cache")
	}
	other := uniformBuilders(cover.G, byzantine.NewMajority(2))
	if _, ok := spliceKey(inst, runS, u, other); ok {
		t.Fatal("foreign builders map qualified for the cache")
	}
	off := runcache.SetEnabled(false)
	if _, ok := spliceKey(inst, runS, u, builders); ok {
		t.Fatal("disabled cache still produced a splice key")
	}
	off()
}
