package flm_test

import (
	"fmt"

	"flm"
)

// Adequacy is the paper's headline predicate: n >= 3f+1 nodes and
// 2f+1 vertex connectivity.
func ExampleAdequate() {
	fmt.Println(flm.Adequate(flm.Triangle(), 1))
	fmt.Println(flm.Adequate(flm.Complete(4), 1))
	fmt.Println(flm.Adequate(flm.Diamond(), 1))
	fmt.Println(flm.MaxTolerableFaults(flm.Complete(10)))
	// Output:
	// false
	// true
	// false
	// 3
}

// Running EIG Byzantine agreement on an adequate graph with a silent
// traitor.
func ExampleNewEIG() {
	g := flm.Complete(4)
	p := flm.Protocol{Builders: map[string]flm.Builder{}, Inputs: map[string]flm.Input{}}
	for _, name := range g.Names() {
		p.Builders[name] = flm.NewEIG(1, g.Names())
		p.Inputs[name] = flm.BoolInput(true)
	}
	p.Builders["p3"] = flm.Silent()
	sys, err := flm.NewSystem(g, p)
	if err != nil {
		panic(err)
	}
	run, err := flm.Execute(sys, flm.EIGRounds(1))
	if err != nil {
		panic(err)
	}
	rep := flm.CheckByzantineAgreement(run, []string{"p0", "p1", "p2"})
	d, _ := run.DecisionOf("p0")
	fmt.Println(rep.OK(), d.Value)
	// Output:
	// true 1
}

// The impossibility engine defeating the majority device on the
// triangle (Theorem 1's hexagon argument).
func ExampleProveByzantineTriangle() {
	g := flm.Triangle()
	builders := map[string]flm.Builder{}
	for _, name := range g.Names() {
		builders[name] = flm.NewMajority(2)
	}
	cr, err := flm.ProveByzantineTriangle(builders, "majority", 8)
	if err != nil {
		panic(err)
	}
	v := cr.Violations[0]
	fmt.Println(cr.Contradicted(), v.Link, v.Condition)
	// Output:
	// true E2 agreement
}

// Covering graphs look locally like the graph they cover.
func ExampleHexCover() {
	c := flm.HexCover()
	fmt.Println(c.Verify() == nil)
	fmt.Println(c.S.N(), "ring nodes over", c.G.N(), "triangle nodes")
	fmt.Println("r4 covers", c.G.Name(c.Phi[4]))
	// Output:
	// true
	// 6 ring nodes over 3 triangle nodes
	// r4 covers b
}

// Dolev routing runs complete-graph protocols on sparse graphs with
// connectivity 2f+1.
func ExampleNewRouter() {
	g := flm.Wheel(7)
	r, err := flm.NewRouter(g, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(r.NumPaths(), "disjoint paths per pair, stretch", r.StretchFactor())
	if _, err := flm.NewRouter(flm.Ring(7), 1); err != nil {
		fmt.Println("ring refused: connectivity too low")
	}
	// Output:
	// 3 disjoint paths per pair, stretch 5
	// ring refused: connectivity too low
}

// With unforgeable signatures, agreement works on the triangle that
// Theorem 1 proves hopeless for unsigned devices.
func ExampleNewDolevStrong() {
	g := flm.Triangle()
	reg := flm.NewSigRegistry()
	p := flm.Protocol{Builders: map[string]flm.Builder{}, Inputs: map[string]flm.Input{
		"a": "1", "b": "1", "c": "1",
	}}
	for _, name := range g.Names() {
		p.Builders[name] = flm.NewDolevStrong(1, g.Names(), reg)
	}
	p.Builders["c"] = flm.Silent()
	sys, err := flm.NewSystem(g, p)
	if err != nil {
		panic(err)
	}
	run, err := flm.Execute(sys, flm.DolevStrongRounds(1))
	if err != nil {
		panic(err)
	}
	rep := flm.CheckByzantineAgreement(run, []string{"a", "b"})
	fmt.Println(rep.OK())
	// Output:
	// true
}

// Approximate agreement converges geometrically inside the honest range.
func ExampleNewDLPSW() {
	g := flm.Complete(4)
	rounds := flm.ApproxRoundsFor(1.0, 0.01)
	p := flm.Protocol{Builders: map[string]flm.Builder{}, Inputs: map[string]flm.Input{}}
	values := []float64{0, 1, 0.25, 0.75}
	for i, name := range g.Names() {
		p.Builders[name] = flm.NewDLPSW(1, g.Names(), rounds)
		p.Inputs[name] = flm.RealInput(values[i])
	}
	sys, err := flm.NewSystem(g, p)
	if err != nil {
		panic(err)
	}
	run, err := flm.Execute(sys, rounds+1)
	if err != nil {
		panic(err)
	}
	rep := flm.CheckEDG(run, g.Names(), 0.01, 0)
	fmt.Println("within 0.01:", rep.OK())
	// Output:
	// within 0.01: true
}
