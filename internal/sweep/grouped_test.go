package sweep

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestGroupedShapesAndSetupOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			prev := SetWorkers(workers)
			defer SetWorkers(prev)
			sizes := []int{3, 0, 2, 4}
			setups := make([]atomic.Int64, len(sizes))
			out, err := Grouped(sizes,
				func(g int) int {
					setups[g].Add(1)
					return g * 100
				},
				func(g, i int, s int) (int, error) {
					if s != g*100 {
						return 0, fmt.Errorf("group %d trial %d: setup value %d", g, i, s)
					}
					return s + i, nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != len(sizes) {
				t.Fatalf("got %d groups, want %d", len(out), len(sizes))
			}
			for g, sz := range sizes {
				if len(out[g]) != sz {
					t.Fatalf("group %d: got %d results, want %d", g, len(out[g]), sz)
				}
				for i, v := range out[g] {
					if v != g*100+i {
						t.Fatalf("group %d trial %d: got %d, want %d", g, i, v, g*100+i)
					}
				}
				want := int64(1)
				if sz == 0 {
					want = 0 // lazy: empty groups never pay their setup
				}
				if n := setups[g].Load(); n != want {
					t.Fatalf("group %d: setup ran %d times, want %d", g, n, want)
				}
			}
		})
	}
}

func TestGroupedFirstError(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	sizes := []int{2, 3}
	_, err := Grouped(sizes,
		func(g int) struct{} { return struct{}{} },
		func(g, i int, _ struct{}) (int, error) {
			if g == 1 && i >= 1 {
				return 0, fmt.Errorf("boom %d/%d", g, i)
			}
			return 0, nil
		})
	if err == nil || err.Error() != "boom 1/1" {
		t.Fatalf("got error %v, want the lowest failing trial's (boom 1/1)", err)
	}
}

func TestGroupedEmpty(t *testing.T) {
	out, err := Grouped(nil,
		func(g int) struct{} { return struct{}{} },
		func(g, i int, _ struct{}) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got (%v, %v), want an empty grid", out, err)
	}
}
