package sim

import (
	"fmt"
	"strconv"
)

// The consensus problems in FLM85 use Boolean inputs/outputs (Byzantine
// agreement, weak agreement, firing squad) or real-valued ones
// (approximate agreement, clock synchronization). Inputs, payload
// fragments, and decisions are canonically encoded strings so that
// behavior equality is byte equality.

// EncodeBool canonically encodes a Boolean as "0" or "1".
func EncodeBool(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// DecodeBool parses a canonical Boolean.
func DecodeBool(s string) (bool, error) {
	switch s {
	case "0":
		return false, nil
	case "1":
		return true, nil
	default:
		return false, fmt.Errorf("sim: %q is not a canonical boolean", s)
	}
}

// BoolInput returns the Input encoding of a Boolean.
func BoolInput(b bool) Input { return Input(EncodeBool(b)) }

// EncodeReal canonically encodes a float64 with full round-trip
// precision.
func EncodeReal(x float64) string {
	return strconv.FormatFloat(x, 'g', 17, 64)
}

// DecodeReal parses a canonical real.
func DecodeReal(s string) (float64, error) {
	x, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("sim: %q is not a canonical real: %w", s, err)
	}
	return x, nil
}

// RealInput returns the Input encoding of a real value.
func RealInput(x float64) Input { return Input(EncodeReal(x)) }

// EncodeInt canonically encodes an integer.
func EncodeInt(n int) string { return strconv.Itoa(n) }

// DecodeInt parses a canonical integer.
func DecodeInt(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("sim: %q is not a canonical integer: %w", s, err)
	}
	return n, nil
}
