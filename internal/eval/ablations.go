package eval

import (
	"fmt"
	"math/big"
	"strings"

	"flm/internal/adversary"
	"flm/internal/byzantine"
	"flm/internal/clockfn"
	"flm/internal/core"
	"flm/internal/graph"
	"flm/internal/signed"
	"flm/internal/sim"
	"flm/internal/sweep"
	"flm/internal/timedsim"
	"flm/internal/weak"
)

// signedSweep is attackSweep for the signed (Dolev-Strong) devices: every
// trial needs its own signature registry and honest builder, so the whole
// per-trial setup moves inside the sweep worker. Signature verification is
// execution-scoped state, which is exactly why these runs keep full
// recording off but fresh registries on.
func signedSweep(g *graph.Graph, f int, bitPatterns []int, seed int64) (passed, total int, err error) {
	names := g.Names()
	panelSize := len(adversary.Panel(seed))
	perPattern := len(names) * panelSize
	trials := len(bitPatterns) * perPattern
	results, err := sweep.Map(trials, func(i int) (bool, error) {
		bits := bitPatterns[i/perPattern]
		rest := i % perPattern
		badNode := names[rest/panelSize]
		strat := adversary.Panel(seed)[rest%panelSize]
		inputs := make(map[string]sim.Input, len(names))
		for j, name := range names {
			inputs[name] = sim.BoolInput(bits&(1<<uint(j)) != 0)
		}
		reg := signed.NewRegistry()
		honest := signed.NewDolevStrong(f, names, reg)
		trial := byzantine.Trial{
			G: g, Inputs: inputs, Honest: honest,
			Faulty: map[string]sim.Builder{badNode: strat.Corrupt(honest)},
			Rounds: signed.Rounds(f),
		}
		_, _, rep, err := trial.RunWith(sim.ExecuteOpts{})
		if err != nil {
			return false, err
		}
		return rep.OK(), nil
	})
	if err != nil {
		return 0, 0, err
	}
	for _, ok := range results {
		total++
		if ok {
			passed++
		}
	}
	return passed, total, nil
}

// RunE15 mechanizes the Fault-axiom sensitivity: with per-execution
// unforgeable signatures, Dolev-Strong agreement works on the very
// triangle Theorem 1 declares hopeless, and the covering argument's
// splice fails its own Locality self-check (the replayed signatures do
// not verify in the fresh execution).
func RunE15() (*Result, error) {
	res := &Result{
		ID: "E15", Name: "Ablation: unforgeable signatures break the Fault axiom",
		Paper: "Section 2: \"When this axiom is significantly weakened (say, by adding an " +
			"unforgeable signature assumption), then consensus is possible [LSP,PSL].\"",
		Summary: "Signed (Dolev-Strong) agreement survives every attack on the triangle with " +
			"f=1 and on K5 with f=2; the hexagon splice is rejected by the engine's own " +
			"self-check because cross-execution signatures fail verification.",
	}
	t := &Table{
		Title:   "Signed agreement under the attack panel (n >= 2f+1 suffices!)",
		Columns: []string{"graph", "n", "f", "adequate unsigned", "passed", "total"},
	}
	for _, c := range []struct {
		g *graph.Graph
		f int
	}{
		{graph.Triangle(), 1},
		{graph.Complete(4), 1},
		{graph.Complete(5), 2},
	} {
		passed, total, err := signedSweep(c.g, c.f, bitPatternsFor(c.g.N(), 4), 37)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("K%d", c.g.N()), c.g.N(), c.f, fmt.Sprint(c.g.IsAdequate(c.f)), passed, total)
	}
	res.Tables = append(res.Tables, t)

	// The engine's verdict on the signed devices.
	cover := graph.HexCover()
	regS := signed.NewRegistry()
	buildersS := map[string]sim.Builder{}
	for _, name := range cover.G.Names() {
		buildersS[name] = signed.NewDolevStrong(1, cover.G.Names(), regS)
	}
	inputs := map[string]sim.Input{
		"r0": "0", "r1": "0", "r2": "0", "r3": "1", "r4": "1", "r5": "1",
	}
	inst, err := core.InstallCover(cover, buildersS, inputs)
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(signed.Rounds(1) + 2)
	if err != nil {
		return nil, err
	}
	regG := signed.NewRegistry()
	buildersG := map[string]sim.Builder{}
	for _, name := range cover.G.Names() {
		buildersG[name] = signed.NewDolevStrong(1, cover.G.Names(), regG)
	}
	e := &Table{
		Title:   "Engine verdict: the hexagon splice against signed devices",
		Columns: []string{"scenario", "outcome"},
	}
	for _, sc := range []struct {
		name string
		u    []int
	}{
		{"E1 = {r1,r2}", []int{1, 2}},
		{"E2 = {r2,r3}", []int{2, 3}},
		{"E3 = {r3,r4}", []int{3, 4}},
	} {
		_, spliceErr := core.SpliceScenario(inst, runS, sc.u, buildersG)
		outcome := "spliced cleanly (unexpected!)"
		if spliceErr != nil && strings.Contains(spliceErr.Error(), "locality axiom self-check failed") {
			outcome = "REJECTED: replayed cross-execution signatures failed verification"
		} else if spliceErr != nil {
			outcome = "error: " + spliceErr.Error()
		}
		e.AddRow(sc.name, outcome)
	}
	e.Notes = append(e.Notes,
		"the Fault axiom's masquerade requires replaying other runs' edge behaviors verbatim; signatures make those behaviors unreproducible")
	res.Tables = append(res.Tables, e)
	return res, nil
}

// RunE16 mechanizes the delay-assumption sensitivities: footnote 4's
// zero-minimum-delay weak consensus algorithm (correct against every
// adversary, then broken by any positive minimum delay), and the Scaling
// axiom's failure under a fixed real-time delay.
func RunE16() (*Result, error) {
	res := &Result{
		ID: "E16", Name: "Ablation: delay assumptions (footnote 4 and the Scaling axiom)",
		Paper: "Section 4 footnote 4; Section 7: \"If this axiom is significantly weakened, as by " +
			"bounding the transmission delay, clock synchronization may be possible...\"",
		Summary: "With no minimum delay, weak consensus is solvable with any number of faults " +
			"(so Theorem 2 needs the Bounded-Delay axiom); with a fixed real-time delay the " +
			"timed model stops being scaling-invariant (so Theorem 8 needs the Scaling axiom).",
	}
	t := &Table{
		Title:   "Footnote 4's algorithm on the triangle (agreement intact?)",
		Columns: []string{"adversary", "min delay 0", "min delay 1/50"},
	}
	g := graph.Triangle()
	inputs := map[string]string{"a": "1", "b": "1", "c": "1"}
	strategies := map[string]weak.ZDStrategy{
		"silent": func(self string, nbs []string) []weak.ZDMessage { return nil },
		"equivocate": func(self string, nbs []string) []weak.ZDMessage {
			var out []weak.ZDMessage
			for i, nb := range nbs {
				v := "0"
				if i%2 == 0 {
					v = "1"
				}
				out = append(out, weak.ZDMessage{To: nb, Value: v, Arrive: big.NewRat(1, 2)})
			}
			return out
		},
		"late-conflict": func(self string, nbs []string) []weak.ZDMessage {
			out := []weak.ZDMessage{}
			for _, nb := range nbs {
				out = append(out, weak.ZDMessage{To: nb, Value: "1", Arrive: big.NewRat(1, 2)})
			}
			out = append(out, weak.ZDMessage{To: nbs[0], Value: "0", Arrive: big.NewRat(99, 100)})
			return out
		},
	}
	for _, name := range []string{"silent", "equivocate", "late-conflict"} {
		strat := strategies[name]
		row := []string{name}
		for _, delay := range []*big.Rat{big.NewRat(0, 1), big.NewRat(1, 50)} {
			zd, err := weak.ZeroDelayRun(g, inputs, map[string]weak.ZDStrategy{"c": strat}, delay)
			if err != nil {
				return nil, err
			}
			rep := weak.CheckZD(zd, inputs, false)
			if rep.Agreement == nil {
				row = append(row, "agreement holds")
			} else {
				row = append(row, "BROKEN: "+rep.Agreement.Error())
			}
		}
		t.AddRow(row[0], row[1], row[2])
	}
	t.Notes = append(t.Notes,
		"the detect-and-warn trick needs arbitrarily small delays; any positive minimum delay re-enables Theorem 2")
	res.Tables = append(res.Tables, t)

	// Scaling-axiom ablation in the timed simulator.
	s := &Table{
		Title:   "Scaling axiom under real-time delay (two-node beacon system, scaled 3x)",
		Columns: []string{"real delay", "scaled run identical to original"},
	}
	for _, delay := range []*big.Rat{nil, big.NewRat(3, 4)} {
		identical, err := scalingIdentical(delay)
		if err != nil {
			return nil, err
		}
		label := "0 (instant)"
		if delay != nil {
			label = delay.RatString()
		}
		s.AddRow(label, fmt.Sprint(identical))
	}
	s.Notes = append(s.Notes,
		"with instant (clock-derived) timing the Scaling axiom holds exactly; a fixed real-time delay is observable under scaling, voiding Theorem 8's construction")
	res.Tables = append(res.Tables, s)
	return res, nil
}

// scalingIdentical runs a tiny two-node timed system and its 3x-scaled
// variant and reports whether the tick-state sequences coincide.
func scalingIdentical(realDelay *big.Rat) (bool, error) {
	h := clockfn.NewRatLinear(3, 1, 0, 1)
	mk := func(scale bool) (*timedsim.Run, error) {
		g := graph.Line(2)
		sys := &timedsim.System{
			G: g,
			Nodes: []timedsim.Node{
				{Device: newBeacon(), Clock: clockfn.RatIdentity()},
				{Device: newBeacon(), Clock: clockfn.NewRatLinear(3, 2, 0, 1)},
			},
			Delta:     big.NewRat(1, 1),
			RealDelay: realDelay,
		}
		until := big.NewRat(6, 1)
		if scale {
			sys.Nodes[0].Clock = sys.Nodes[0].Clock.ComposeRat(h)
			sys.Nodes[1].Clock = sys.Nodes[1].Clock.ComposeRat(h)
			until = h.InverseRat().At(until)
		}
		return timedsim.Execute(sys, until)
	}
	runA, err := mk(false)
	if err != nil {
		return false, err
	}
	runB, err := mk(true)
	if err != nil {
		return false, err
	}
	for u := range runA.Ticks {
		if len(runA.Ticks[u]) != len(runB.Ticks[u]) {
			return false, nil
		}
		for j := range runA.Ticks[u] {
			if runA.Ticks[u][j].Snapshot != runB.Ticks[u][j].Snapshot {
				return false, nil
			}
		}
	}
	return true, nil
}

// beacon is a minimal timed device for the scaling ablation.
type beacon struct {
	nbs   []string
	heard []string
}

func newBeacon() timedsim.Device { return &beacon{} }

func (b *beacon) Init(self string, neighbors []string) {
	b.nbs = append([]string(nil), neighbors...)
	b.heard = nil
}

func (b *beacon) Tick(k int, hw *big.Rat, inbox []timedsim.Message) []timedsim.Send {
	for _, m := range inbox {
		b.heard = append(b.heard, m.From+":"+m.Payload)
	}
	out := make([]timedsim.Send, 0, len(b.nbs))
	for _, nb := range b.nbs {
		out = append(out, timedsim.Send{To: nb, Payload: fmt.Sprintf("t%d", k)})
	}
	return out
}

func (b *beacon) Logical(hw *big.Rat) float64 {
	f, _ := hw.Float64()
	return f
}

func (b *beacon) Snapshot() string { return fmt.Sprint(b.heard) }
