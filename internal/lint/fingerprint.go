package lint

import (
	"go/ast"
	"go/types"
)

// Fingerprint cross-checks every DeviceFingerprint implementation (the
// sim.Fingerprinter interface) against its receiver struct: a field
// that is constructor state — set once when the device is built and
// never reassigned by any method or function in the package — must be
// read somewhere in DeviceFingerprint, because two devices differing
// only in that field would otherwise collide on a cache key and one
// would be served the other's run (silent result corruption).
//
// Field classification, matching the repo's device idiom:
//
//   - reassigned anywhere in the package (Init/init resets, Step
//     mutation, memoized-fp writes): runtime state, exempt — it is
//     re-derived from the keyed (self, neighbors, input) triple or is
//     the memo itself;
//   - function-typed (decide closures, sim.Builder): exempt — closures
//     have no canonical encoding, so their identity must be carried by
//     another hashed field (e.g. simpleDevice.kind);
//   - everything else: must appear in DeviceFingerprint, or carry an
//     //flmlint:allow flmfingerprint directive explaining why it is
//     derived from hashed state or keyed separately.
var Fingerprint = &Analyzer{
	Name: "flmfingerprint",
	Doc:  "require every constructor-state field of a sim.Fingerprinter to reach its DeviceFingerprint",
	Run:  runFingerprint,
}

func runFingerprint(pass *Pass) {
	type impl struct {
		named *types.Named
		decl  *ast.FuncDecl
		strct *types.Struct
	}
	var impls []impl

	// Find DeviceFingerprint() string methods on struct types.
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "DeviceFingerprint" || fd.Body == nil {
				continue
			}
			sig, ok := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
			if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
				continue
			}
			if basic, ok := sig.Results().At(0).Type().(*types.Basic); !ok || basic.Kind() != types.String {
				continue
			}
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				continue
			}
			strct, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			impls = append(impls, impl{named: named, decl: fd, strct: strct})
		}
	}
	if len(impls) == 0 {
		return
	}

	// One pass over the whole package records every field object that is
	// ever mutated: the target of an assignment (d.f = x, d.f += x,
	// d.f++) or the receiver of a pointer-receiver method call
	// (d.scratch.Set(hw) — the big.Rat arena idiom). Field objects are
	// identical *types.Var pointers across files of the package, so set
	// membership is object identity.
	assigned := make(map[*types.Var]bool)
	fieldOf := func(e ast.Expr) *types.Var {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return nil
		}
		v, _ := selection.Obj().(*types.Var)
		return v
	}
	markLHS := func(e ast.Expr) {
		if v := fieldOf(e); v != nil {
			assigned[v] = true
		}
	}
	markMutatingCall := func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return
		}
		sig, ok := selection.Obj().Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return
		}
		if _, ptrRecv := sig.Recv().Type().(*types.Pointer); !ptrRecv {
			return
		}
		if v := fieldOf(sel.X); v != nil {
			assigned[v] = true
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					markLHS(lhs)
				}
			case *ast.IncDecStmt:
				markLHS(n.X)
			case *ast.CallExpr:
				markMutatingCall(n)
			}
			return true
		})
	}

	for _, im := range impls {
		// Fields the fingerprint method actually reads.
		read := make(map[*types.Var]bool)
		ast.Inspect(im.decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			if v, ok := selection.Obj().(*types.Var); ok {
				read[v] = true
			}
			return true
		})

		for i := 0; i < im.strct.NumFields(); i++ {
			f := im.strct.Field(i)
			if f.Name() == "_" || assigned[f] || read[f] {
				continue
			}
			if _, isFunc := f.Type().Underlying().(*types.Signature); isFunc {
				continue
			}
			pass.Reportf(f.Pos(), "field %s.%s is constructor state that never reaches DeviceFingerprint: two devices differing only here share a cache key (hash it, or annotate //flmlint:allow flmfingerprint <why> if it is derived or keyed separately)", im.named.Obj().Name(), f.Name())
		}
	}
}
