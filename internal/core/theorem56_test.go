package core

import (
	"testing"

	"flm/internal/approx"
	"flm/internal/graph"
	"flm/internal/sim"
)

func approxTrianglePanel() map[string]sim.Builder {
	peers := []string{"a", "b", "c"}
	return map[string]sim.Builder{
		"median":    approx.NewMedian(2),
		"median@1":  approx.NewMedian(1),
		"dlpsw-2":   approx.NewDLPSW(1, peers, 2),
		"dlpsw-6":   approx.NewDLPSW(1, peers, 6),
		"own-value": approx.NewMedian(0), // decides before hearing anyone
	}
}

func TestSimpleApproxTriangleDefeatsEveryDevice(t *testing.T) {
	g := graph.Triangle()
	for name, builder := range approxTrianglePanel() {
		t.Run(name, func(t *testing.T) {
			cr, err := SimpleApproxTriangle(uniformBuilders(g, builder), name, 12)
			if err != nil {
				t.Fatalf("engine error: %v", err)
			}
			if !cr.Contradicted() {
				t.Fatalf("device %s survived Theorem 5:\n%s", name, cr)
			}
			if len(cr.Links) != 3 {
				t.Errorf("chain has %d links, want 3", len(cr.Links))
			}
		})
	}
}

func TestSimpleApproxGeneralCase(t *testing.T) {
	g := graph.Complete(6)
	builder := approx.NewDLPSW(2, g.Names(), 6)
	cr, err := SimpleApproxNodes(g, 2, []int{0, 1}, []int{2, 3}, []int{4, 5},
		uniformBuilders(g, builder), "dlpsw-f2", 12)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !cr.Contradicted() {
		t.Fatalf("DLPSW f=2 survived on K6:\n%s", cr)
	}
}

func TestSimpleApproxRejectsAdequate(t *testing.T) {
	g := graph.Complete(4)
	builder := approx.NewMedian(2)
	if _, err := SimpleApproxNodes(g, 1, []int{0}, []int{1}, []int{2, 3},
		uniformBuilders(g, builder), "median", 8); err == nil {
		t.Error("engine accepted an adequate graph")
	}
}

func TestEDGRingSize(t *testing.T) {
	tests := []struct {
		params  EDGParams
		wantErr bool
	}{
		{EDGParams{Eps: 0.1, Delta: 1, Gamma: 1}, false},
		{EDGParams{Eps: 0.5, Delta: 1, Gamma: 0.1}, false},
		{EDGParams{Eps: 1, Delta: 1, Gamma: 1}, true},    // eps >= delta
		{EDGParams{Eps: 2, Delta: 1, Gamma: 1}, true},    // eps >= delta
		{EDGParams{Eps: 0, Delta: 1, Gamma: 1}, true},    // non-positive
		{EDGParams{Eps: 0.1, Delta: 1, Gamma: -1}, true}, // non-positive
	}
	for _, tt := range tests {
		k, size, err := tt.params.RingSize()
		if tt.wantErr {
			if err == nil {
				t.Errorf("%+v: expected error", tt.params)
			}
			continue
		}
		if err != nil {
			t.Errorf("%+v: %v", tt.params, err)
			continue
		}
		if size != k+2 || size%3 != 0 {
			t.Errorf("%+v: k=%d size=%d not consistent", tt.params, k, size)
		}
		// The defining inequality must hold.
		if !(tt.params.Delta > 2*tt.params.Gamma/float64(k-1)+tt.params.Eps) {
			t.Errorf("%+v: k=%d does not satisfy delta > 2γ/(k-1)+ε", tt.params, k)
		}
	}
}

func TestEpsilonDeltaGammaDefeatsDevices(t *testing.T) {
	params := EDGParams{Eps: 0.2, Delta: 1, Gamma: 0.5}
	peers := []string{"a", "b", "c"}
	panel := map[string]sim.Builder{
		"median":  approx.NewMedian(2),
		"dlpsw-4": approx.NewDLPSW(1, peers, 4),
	}
	g := graph.Triangle()
	for name, builder := range panel {
		t.Run(name, func(t *testing.T) {
			cr, err := EpsilonDeltaGamma(params, uniformBuilders(g, builder), name, 10)
			if err != nil {
				t.Fatalf("engine error: %v", err)
			}
			if !cr.Contradicted() {
				t.Fatalf("device %s survived Theorem 6:\n%s", name, cr)
			}
			k, size, _ := params.RingSize()
			if cr.CoverSize != size {
				t.Errorf("cover size %d, want %d", cr.CoverSize, size)
			}
			if len(cr.Links) != k+1 {
				t.Errorf("chain has %d links, want %d", len(cr.Links), k+1)
			}
		})
	}
}

func TestEpsilonDeltaGammaRejectsTrivialParams(t *testing.T) {
	g := graph.Triangle()
	params := EDGParams{Eps: 1, Delta: 1, Gamma: 0.5}
	if _, err := EpsilonDeltaGamma(params, uniformBuilders(g, approx.NewMedian(2)), "median", 8); err == nil {
		t.Error("eps >= delta accepted")
	}
}

func TestEpsilonDeltaGammaNodesGeneral(t *testing.T) {
	params := EDGParams{Eps: 0.2, Delta: 1, Gamma: 0.5}
	// Triangle with singleton blocks reduces to the direct argument.
	tri := graph.Triangle()
	cr, err := EpsilonDeltaGammaNodes(params, tri, 1, []int{0}, []int{1}, []int{2},
		uniformBuilders(tri, approx.NewMedian(2)), "median", 10)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !cr.Contradicted() {
		t.Fatalf("median survived:\n%s", cr)
	}
	// K6 with f=2.
	k6 := graph.Complete(6)
	cr, err = EpsilonDeltaGammaNodes(params, k6, 2, []int{0, 1}, []int{2, 3}, []int{4, 5},
		uniformBuilders(k6, approx.NewDLPSW(2, k6.Names(), 4)), "dlpsw", 10)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !cr.Contradicted() {
		t.Fatalf("DLPSW survived on K6:\n%s", cr)
	}
}

func TestEpsilonDeltaGammaNodesValidation(t *testing.T) {
	params := EDGParams{Eps: 0.2, Delta: 1, Gamma: 0.5}
	g := graph.Complete(4)
	if _, err := EpsilonDeltaGammaNodes(params, g, 1, []int{0}, []int{1}, []int{2, 3},
		uniformBuilders(g, approx.NewMedian(2)), "median", 10); err == nil {
		t.Error("adequate graph accepted")
	}
}

func TestEpsilonDeltaGammaConnectivity(t *testing.T) {
	params := EDGParams{Eps: 0.2, Delta: 1, Gamma: 0.5}
	dia := graph.Diamond()
	cr, err := EpsilonDeltaGammaConnectivity(params, dia, 1, []int{1}, []int{3}, 0, 2,
		uniformBuilders(dia, approx.NewMedian(2)), "median", 10)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !cr.Contradicted() {
		t.Fatalf("median survived the connectivity argument:\n%s", cr)
	}
	k, size, _ := params.RingSize()
	if cr.CoverSize != 4*size {
		t.Errorf("cover size %d, want %d copies of 4 nodes", cr.CoverSize, size)
	}
	// X scenarios (k+1) plus Y scenarios (k).
	if len(cr.Links) != 2*k+1 {
		t.Errorf("links = %d, want %d", len(cr.Links), 2*k+1)
	}
}

func TestLemma7Bounds(t *testing.T) {
	params := EDGParams{Eps: 0.2, Delta: 1, Gamma: 0.5}
	k, _, err := params.RingSize()
	if err != nil {
		t.Fatal(err)
	}
	ceilings, floor := Lemma7Bounds(params, k)
	// Ceiling at node 1 is delta + gamma.
	if got := ceilings[1]; got != 1.5 {
		t.Errorf("ceiling[1] = %v, want 1.5", got)
	}
	// The contradiction: the ceiling at node k must fall below the floor.
	if ceilings[k] >= floor {
		t.Errorf("no contradiction: ceiling[k]=%v >= floor=%v (k=%d)", ceilings[k], floor, k)
	}
}
