package weak

import (
	"testing"

	"flm/internal/adversary"
	"flm/internal/byzantine"
	"flm/internal/graph"
	"flm/internal/sim"
)

func runWeak(t *testing.T, g *graph.Graph, honest sim.Builder, inputs map[string]sim.Input,
	faulty map[string]sim.Builder, rounds int) (*sim.Run, []string) {
	t.Helper()
	p := sim.Protocol{Builders: map[string]sim.Builder{}, Inputs: inputs}
	var correct []string
	for _, name := range g.Names() {
		if fb, bad := faulty[name]; bad {
			p.Builders[name] = fb
		} else {
			p.Builders[name] = honest
			correct = append(correct, name)
		}
	}
	sys, err := sim.NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Execute(sys, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return run, correct
}

func inputsBits(g *graph.Graph, bits int) map[string]sim.Input {
	m := make(map[string]sim.Input, g.N())
	for i, name := range g.Names() {
		m[name] = sim.BoolInput(bits&(1<<uint(i)) != 0)
	}
	return m
}

func TestViaBASolvesWeakOnAdequateGraph(t *testing.T) {
	g := graph.Complete(4)
	honest := NewViaBA(1, g.Names())
	for bits := 0; bits < 16; bits++ {
		for _, strat := range adversary.Panel(5) {
			run, correct := runWeak(t, g, honest, inputsBits(g, bits),
				map[string]sim.Builder{"p3": strat.Corrupt(honest)}, byzantine.EIGRounds(1))
			rep := Check(run, correct, false)
			if !rep.OK() {
				t.Errorf("bits=%b strat=%s: %v", bits, strat.Name, rep.Err())
			}
		}
	}
}

func TestViaBAValidityAllCorrect(t *testing.T) {
	g := graph.Complete(4)
	honest := NewViaBA(1, g.Names())
	for _, bits := range []int{0, 0xF} {
		run, correct := runWeak(t, g, honest, inputsBits(g, bits), nil, byzantine.EIGRounds(1))
		rep := Check(run, correct, true)
		if !rep.OK() {
			t.Errorf("bits=%b: %v", bits, rep.Err())
		}
	}
}

func TestDetectDefaultFaultFreeUnanimous(t *testing.T) {
	g := graph.Triangle()
	for _, bit := range []int{0, 7} {
		run, correct := runWeak(t, g, NewDetectDefault(3), inputsBits(g, bit), nil, 6)
		rep := Check(run, correct, true)
		if !rep.OK() {
			t.Errorf("bit=%d: %v", bit, rep.Err())
		}
	}
}

func TestDetectDefaultFaultFreeMixedFallsToDefault(t *testing.T) {
	g := graph.Triangle()
	run, correct := runWeak(t, g, NewDetectDefault(3), inputsBits(g, 0x3), nil, 6)
	rep := Check(run, correct, true)
	// Mixed inputs: weak validity does not bind; everyone detects
	// disagreement and defaults, so agreement holds.
	if rep.Agreement != nil || rep.Choice != nil {
		t.Errorf("mixed inputs: %v", rep.Err())
	}
	for _, name := range correct {
		d, _ := run.DecisionOf(name)
		if d.Value != byzantine.DefaultValue {
			t.Errorf("%s chose %s, want default", name, d.Value)
		}
	}
}

func TestDetectDefaultSilentFaultTriggersDefault(t *testing.T) {
	g := graph.Triangle()
	run, correct := runWeak(t, g, NewDetectDefault(3), inputsBits(g, 0x7),
		map[string]sim.Builder{"c": adversary.Silent()}, 6)
	rep := Check(run, correct, false)
	if rep.Agreement != nil || rep.Choice != nil {
		t.Errorf("silent fault: %v", rep.Err())
	}
}

func TestCheckChoiceViolation(t *testing.T) {
	g := graph.Triangle()
	run, correct := runWeak(t, g, NewDetectDefault(100), inputsBits(g, 0), nil, 4)
	rep := Check(run, correct, true)
	if rep.Choice == nil {
		t.Error("undecided run passed the choice condition")
	}
}

func TestCheckValidityViolation(t *testing.T) {
	g := graph.Triangle()
	// A constant-0 device on unanimous-1 all-correct inputs.
	run, correct := runWeak(t, g, byzantine.NewConstant("0", 2), inputsBits(g, 7), nil, 4)
	rep := Check(run, correct, true)
	if rep.Validity == nil {
		t.Error("constant device passed weak validity on unanimous all-correct run")
	}
	// The same run with allCorrect=false: validity must not bind.
	rep = Check(run, correct, false)
	if rep.Validity != nil {
		t.Error("validity bound a run with faults")
	}
}

func TestCheckAgreementViolation(t *testing.T) {
	g := graph.Triangle()
	run, correct := runWeak(t, g, byzantine.NewOwnInput(2), inputsBits(g, 0x1), nil, 4)
	rep := Check(run, correct, true)
	if rep.Agreement == nil {
		t.Error("own-input decisions passed agreement")
	}
}
