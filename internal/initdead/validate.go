package initdead

import (
	"fmt"
	"sort"

	"flm/internal/sim"
)

// Report records which consensus conditions a run satisfied for a given
// live-node set. A nil field means the condition holds.
type Report struct {
	Termination error // every live node decided
	Agreement   error // all live decisions equal
	Validity    error // the decision is some live node's input, and a
	// unanimous live input forces that output
}

// OK reports whether every condition holds.
func (r Report) OK() bool { return r.Termination == nil && r.Agreement == nil && r.Validity == nil }

// Err returns the first violated condition, or nil.
func (r Report) Err() error {
	switch {
	case r.Termination != nil:
		return r.Termination
	case r.Agreement != nil:
		return r.Agreement
	case r.Validity != nil:
		return r.Validity
	default:
		return nil
	}
}

// Check evaluates the initially-dead consensus conditions on a run with
// the given live nodes (every other node is presumed dead and ignored).
// Validity here is strong: the decided value must be the input of some
// live node — the protocol's clique members are live by construction —
// which subsumes the unanimity form.
func Check(run *sim.Run, live []string) Report {
	var rep Report
	if len(live) == 0 {
		rep.Termination = fmt.Errorf("initdead: no live nodes to check")
		return rep
	}
	decisions := make(map[string]string, len(live))
	for _, name := range live {
		d, err := run.DecisionOf(name)
		if err != nil {
			rep.Termination = err
			return rep
		}
		if d.Value == "" {
			rep.Termination = fmt.Errorf("initdead: live node %s never decided", name)
			return rep
		}
		decisions[name] = d.Value
	}
	first := live[0]
	for _, name := range live[1:] {
		if decisions[name] != decisions[first] {
			rep.Agreement = fmt.Errorf("initdead: agreement violated: %s chose %q but %s chose %q",
				first, decisions[first], name, decisions[name])
			break
		}
	}
	liveInputs := make(map[string]bool, len(live))
	for _, name := range live {
		liveInputs[string(run.Inputs[run.G.MustIndex(name)])] = true
	}
	for _, name := range live {
		if !liveInputs[decisions[name]] {
			rep.Validity = fmt.Errorf("initdead: validity violated: %s chose %q, not any live input",
				name, decisions[name])
			break
		}
	}
	return rep
}

// PartitionDelays is the impossibility witness for n <= 2t: a delay
// schedule that splits the sorted node names into two groups — the
// first n-t names and the remaining t — and delays every cross-group
// message past the round horizon (equivalently, forever: within a
// finite run the two are the same observable). With n <= 2t each group
// still gathers the n-t-1 foreign stage-1 records the protocol waits
// for from inside its own group, so each group forms its own source
// component and decides on its own inputs; give the groups different
// inputs and the run disagrees. For n > 2t the smaller group cannot
// proceed alone (t-1 < n-t-1) and the schedule merely delays nothing
// fatally — the unique-clique argument stands.
func PartitionDelays(names []string, t, rounds int) *sim.DelaySchedule {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	cut := len(sorted) - t
	if cut < 0 {
		cut = 0
	}
	groupB := make(map[string]bool, t)
	for _, name := range sorted[cut:] {
		groupB[name] = true
	}
	s := &sim.DelaySchedule{}
	for _, from := range sorted {
		for _, to := range sorted {
			if from == to || groupB[from] == groupB[to] {
				continue
			}
			for r := 0; r < rounds; r++ {
				s.Rules = append(s.Rules, sim.DelayRule{From: from, To: to, Round: r, Extra: rounds})
			}
		}
	}
	return s
}
