// Axiom lab: hands-on demonstrations of the three FLM85 axioms the whole
// paper rests on — Locality, Fault, and Scaling — plus the two weakenings
// that make consensus possible again (signatures and zero-minimum-delay).
package main

import (
	"fmt"
	"log"
	"math/big"

	"flm"
)

func main() {
	locality()
	faultAxiom()
	signatures()
	zeroDelay()
}

// locality: replace everything outside a subsystem with replay devices
// carrying the recorded border traffic; the subsystem cannot tell.
func locality() {
	fmt.Println("=== Locality axiom ===")
	g := flm.Complete(4)
	p := flm.Protocol{Builders: map[string]flm.Builder{}, Inputs: map[string]flm.Input{}}
	for i, name := range g.Names() {
		p.Builders[name] = flm.NewEIG(1, g.Names())
		p.Inputs[name] = flm.BoolInput(i%2 == 0)
	}
	sys, err := flm.NewSystem(g, p)
	if err != nil {
		log.Fatal(err)
	}
	run, err := flm.Execute(sys, flm.EIGRounds(1))
	if err != nil {
		log.Fatal(err)
	}
	builders := map[string]flm.Builder{
		"p1": flm.NewEIG(1, g.Names()),
		"p2": flm.NewEIG(1, g.Names()),
	}
	if _, err := flm.CheckLocality(run, []string{"p1", "p2"}, builders); err != nil {
		log.Fatalf("locality violated: %v", err)
	}
	fmt.Println("replacing p0 and p3 with border-replay devices left {p1,p2}'s")
	fmt.Println("behavior byte-identical: the subsystem only sees its inedges. ✓")
	fmt.Println()
}

// faultAxiom: one faulty device exhibits, simultaneously, edge behaviors
// recorded in two different runs.
func faultAxiom() {
	fmt.Println("=== Fault axiom: F_A(E1,...,Ed) ===")
	g := flm.Triangle()
	mkRun := func(aInput flm.Input) *flm.Run {
		p := flm.Protocol{Builders: map[string]flm.Builder{}, Inputs: map[string]flm.Input{
			"a": aInput, "b": "0", "c": "0",
		}}
		for _, name := range g.Names() {
			p.Builders[name] = flm.NewMajority(2)
		}
		sys, err := flm.NewSystem(g, p)
		if err != nil {
			log.Fatal(err)
		}
		run, err := flm.Execute(sys, 5)
		if err != nil {
			log.Fatal(err)
		}
		return run
	}
	run0, run1 := mkRun("0"), mkRun("1")
	toB, _ := run0.EdgeBehavior("a", "b") // a's face from the input-0 run
	toC, _ := run1.EdgeBehavior("a", "c") // a's face from the input-1 run
	p := flm.Protocol{Builders: map[string]flm.Builder{
		"a": flm.ReplayBuilder(map[string][]flm.Payload{"b": toB, "c": toC}),
		"b": flm.NewMajority(2),
		"c": flm.NewMajority(2),
	}, Inputs: map[string]flm.Input{"a": "0", "b": "0", "c": "0"}}
	sys, err := flm.NewSystem(g, p)
	if err != nil {
		log.Fatal(err)
	}
	run, err := flm.Execute(sys, 5)
	if err != nil {
		log.Fatal(err)
	}
	db, _ := run.DecisionOf("b")
	dc, _ := run.DecisionOf("c")
	fmt.Println("faulty a replays its input-0 face to b and its input-1 face to c:")
	fmt.Printf("  b decided %s, c decided %s — the masquerade is exactly what\n", db.Value, dc.Value)
	fmt.Println("  the covering proofs exploit.")
	fmt.Println()
}

// signatures: the masquerade dies when statements are signed.
func signatures() {
	fmt.Println("=== Weakening the Fault axiom: unforgeable signatures ===")
	g := flm.Triangle()
	reg := flm.NewSigRegistry()
	honest := flm.NewDolevStrong(1, g.Names(), reg)
	p := flm.Protocol{Builders: map[string]flm.Builder{}, Inputs: map[string]flm.Input{
		"a": "1", "b": "1", "c": "0",
	}}
	for _, name := range g.Names() {
		p.Builders[name] = honest
	}
	p.Builders["c"] = flm.Equivocate(honest, flm.BoolInput(false), flm.BoolInput(true),
		func(nb string) bool { return nb == "a" })
	sys, err := flm.NewSystem(g, p)
	if err != nil {
		log.Fatal(err)
	}
	run, err := flm.Execute(sys, flm.DolevStrongRounds(1))
	if err != nil {
		log.Fatal(err)
	}
	rep := flm.CheckByzantineAgreement(run, []string{"a", "b"})
	fmt.Printf("signed Dolev-Strong on the TRIANGLE with an equivocating traitor:\n")
	fmt.Printf("  agreement+validity hold: %v — n=3 suffices once signatures break\n", rep.OK())
	fmt.Println("  the Fault axiom (Theorem 1 needed n >= 4).")
	fmt.Println()
}

// zeroDelay: footnote 4's algorithm and its minimum-delay breakdown.
func zeroDelay() {
	fmt.Println("=== Weakening Bounded-Delay: footnote 4 ===")
	g := flm.Triangle()
	inputs := map[string]string{"a": "1", "b": "1", "c": "1"}
	lateConflict := func(self string, nbs []string) []flm.ZDMessage {
		out := []flm.ZDMessage{}
		for _, nb := range nbs {
			out = append(out, flm.ZDMessage{To: nb, Value: "1", Arrive: big.NewRat(1, 2)})
		}
		out = append(out, flm.ZDMessage{To: nbs[0], Value: "0", Arrive: big.NewRat(99, 100)})
		return out
	}
	for _, delay := range []*big.Rat{big.NewRat(0, 1), big.NewRat(1, 50)} {
		res, err := flm.ZeroDelayRun(g, inputs, map[string]flm.ZDStrategy{"c": lateConflict}, delay)
		if err != nil {
			log.Fatal(err)
		}
		rep := flm.CheckZeroDelay(res, inputs, false)
		verdict := "agreement holds"
		if rep.Agreement != nil {
			verdict = "BROKEN: " + rep.Agreement.Error()
		}
		fmt.Printf("  min delay %-5s -> %s\n", delay.RatString(), verdict)
	}
	fmt.Println("with no minimum delay the victim warns everyone in time; any")
	fmt.Println("positive minimum delay re-enables Theorem 2's impossibility.")
}
