// Package sim is the synchronous message-passing execution model on which
// the FLM85 reproduction runs. It makes the paper's abstract notions
// concrete:
//
//   - a Device is a deterministic round-based automaton addressed by
//     neighbor names;
//   - a node behavior is the sequence of device state snapshots;
//   - an edge behavior is the sequence of payloads carried by a directed
//     edge, one per round;
//   - a system behavior (a Run) is the tuple of all node and edge
//     behaviors.
//
// The model satisfies the paper's Locality axiom by construction (a
// device's next state depends only on its own state and its inbox), and
// CheckLocality verifies it on concrete runs. It also satisfies the
// Bounded-Delay Locality axiom with delta equal to one round, because a
// message sent in round r is delivered in round r+1.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"flm/internal/graph"
	"flm/internal/obs"
	"flm/internal/runcache"
)

// Payload is the content of one message. The empty payload means "no
// message this round"; edge behaviors are sequences of payloads, so two
// edge behaviors are equal exactly when the same bytes flowed in the same
// rounds.
type Payload string

// None is the absent message.
const None Payload = ""

// Input is a node's problem input, canonically encoded (see EncodeBool
// and EncodeReal in codec.go).
type Input string

// Decision is a device's irrevocable output value, canonically encoded.
type Decision struct {
	Value string // chosen value; "" while undecided
	Round int    // round at which the choice was made
}

// Inbox maps a neighbor name to the payload received from it this round.
// Neighbors that sent nothing are absent.
type Inbox map[string]Payload

// Outbox maps a neighbor name to the payload to send this round. Only
// actual neighbors may be addressed; other keys are an execution error.
type Outbox map[string]Payload

// Device is a deterministic consensus device. The executor drives it
// with:
//
//	Init(self, neighbors, input)        // once, before round 0
//	for r := 0; r < rounds; r++ {
//	    out := Step(r, inbox)           // inbox from round r-1 sends
//	}
//
// The Inbox passed to Step is owned by the executor and reused between
// rounds; devices must read what they need during Step and must not
// retain the map itself. Symmetrically, the Outbox returned by Step is
// owned by the device and may be a buffer it reuses on the next Step:
// callers (the executor included) must consume it before stepping the
// device again and must never retain it across rounds.
//
// Snapshot must canonically encode the full device state so that two
// devices are behaving identically iff their snapshot sequences are
// equal. Output reports the device's choice once made; it must never
// change after it is first reported (the executor enforces this).
//
// Devices must be deterministic: identical Init arguments and inbox
// sequences must yield identical outboxes, snapshots, and outputs. This
// is the paper's base model; seeded pseudo-randomness is permitted
// because the seed is part of the device, making the composite
// deterministic (the Section 3 nondeterminism remark is exercised this
// way).
type Device interface {
	Init(self string, neighbors []string, input Input)
	Step(round int, inbox Inbox) Outbox
	Snapshot() string
	Output() (Decision, bool)
}

// Builder constructs a fresh device instance for a named node. Installing
// a protocol on a covering graph instantiates the same builder at every
// node of the fiber, which is exactly the paper's "assign devices to
// nodes of S according to their corresponding node in G".
type Builder func(self string, neighbors []string, input Input) Device

// Protocol assigns a device builder and an input to every node of a
// graph.
type Protocol struct {
	Builders map[string]Builder
	Inputs   map[string]Input
}

// System is a communication graph with a device and input assigned to
// every node — the paper's "system".
type System struct {
	G       *graph.Graph
	Devices []Device // indexed by node
	Inputs  []Input  // indexed by node
}

// NewSystem instantiates a protocol on a graph. Every node must have a
// builder and an input.
func NewSystem(g *graph.Graph, p Protocol) (*System, error) {
	sys := &System{
		G:       g,
		Devices: make([]Device, g.N()),
		Inputs:  make([]Input, g.N()),
	}
	for u := 0; u < g.N(); u++ {
		name := g.Name(u)
		b, ok := p.Builders[name]
		if !ok {
			return nil, fmt.Errorf("sim: no device builder for node %q", name)
		}
		input, ok := p.Inputs[name]
		if !ok {
			return nil, fmt.Errorf("sim: no input for node %q", name)
		}
		sys.Inputs[u] = input
		dev, fault := safeBuild(b, name, neighborNames(g, u), input)
		if fault != nil {
			return nil, fault
		}
		sys.Devices[u] = dev
	}
	return sys, nil
}

func neighborNames(g *graph.Graph, u int) []string {
	nbs := g.Neighbors(u)
	names := make([]string, len(nbs))
	for i, v := range nbs {
		names[i] = g.Name(v)
	}
	sort.Strings(names)
	return names
}

// Run is a recorded system behavior: every node behavior (snapshot
// sequence and decision) and every edge behavior (payload per round).
//
// A Run is immutable once ExecuteCtx returns it. The run cache depends
// on this: cached runs are shared between callers (including across
// goroutines under parallel sweeps), never copied, so consumers must
// treat every field — Snapshots, Edges and the payload slices inside —
// as read-only.
type Run struct {
	G         *graph.Graph
	Rounds    int
	Inputs    []Input
	Snapshots [][]string               // Snapshots[u][r] = state of node u after round r
	Edges     map[graph.Edge][]Payload // Edges[e][r] = payload carried in round r
	Decisions []Decision               // zero Value when the node never decided

	fp string // cache key of the producing execution; "" when not content-addressed
}

// Fingerprint returns the content-addressed key under which this run was
// cached (or would have been), or "" when the producing system was not
// fingerprintable or the run cache was disabled. Runs with equal
// fingerprints are byte-identical, which is what lets downstream layers
// (core's splice cache) key on it.
func (r *Run) Fingerprint() string { return r.fp }

// ExecuteOpts selects what ExecuteWith records and under which delivery
// model the system runs. The zero value is the fast mode: only decisions
// are tracked, synchronous delivery. Axiom verification (CheckLocality
// and every Prove* chain) requires full recording; decision-only sweeps
// (attack panels, tightness censuses) use the fast mode.
type ExecuteOpts struct {
	RecordSnapshots bool // populate Run.Snapshots (one string per node per round)
	RecordEdges     bool // populate Run.Edges (payload sequences per directed edge)

	// Delays switches the execution into the adversarial asynchronous
	// delivery mode (see async.go): matching messages are held back
	// extra rounds, deliveries past the horizon are lost. nil (or an
	// empty schedule) is the synchronous model. Edge behaviors still
	// record payloads at their send round — the wire history — so async
	// runs must not be fed to CheckLocality or the splice engine.
	Delays *DelaySchedule
}

// FullRecording records everything — the behavior of Execute, and the
// mode required wherever runs feed the Locality/Fault axiom machinery.
var FullRecording = ExecuteOpts{RecordSnapshots: true, RecordEdges: true}

// sendTarget is a precomputed delivery route: the receiver's node index,
// the sender's slot in the receiver's mailbox, and (in full recording
// mode) the edge-behavior sequence to append to.
type sendTarget struct {
	v    int
	slot int
	seq  []Payload
}

// Execute runs the system for the given number of rounds and records the
// complete behavior. Messages sent in round r are delivered in round r+1;
// the inbox of round 0 is empty.
//
// On an execution error (a send to a non-neighbor or a changed decision),
// Execute finishes recording the failing round for every node and returns
// the partial Run alongside the error, so the state that produced the
// error is diagnosable. The partial Run must not be treated as a system
// behavior — the error is authoritative.
func Execute(sys *System, rounds int) (*Run, error) {
	return ExecuteWith(sys, rounds, FullRecording)
}

// ExecuteWith is Execute with explicit recording options. Runs produced
// in fast mode carry nil Snapshots/Edges; only Inputs and Decisions are
// usable. Fast and full runs of the same system are otherwise identical:
// recording never feeds back into device execution.
func ExecuteWith(sys *System, rounds int, opts ExecuteOpts) (*Run, error) {
	return ExecuteCtx(context.Background(), sys, rounds, opts)
}

// ExecuteCtx is ExecuteWith with a cancellation/deadline path: the
// context is checked at every round boundary, and a done context stops
// the execution with a typed *ExecError wrapping ctx.Err() (plus the
// partial run recorded so far). The round count remains the execution's
// hard budget; the context bounds wall time across rounds. A device that
// loops forever *inside a single Step* cannot be interrupted here — Go
// cannot preempt a goroutine — so wall-clock watchdogs live one layer up,
// in the sweep engine's Isolated pool.
//
// Device panics in any entry point (Step, Snapshot, Output) are caught
// and returned as a *DeviceFault error attributing the panic to its node,
// round, and operation; the rest of the failing round still executes (and
// is recorded in full mode) so the partial run is diagnosable.
//
// When every device is fingerprintable (see Fingerprinter) and the run
// cache is enabled, the execution is memoized: a repeat of the same
// (graph, devices, inputs, rounds, opts) returns the previously recorded
// Run without stepping any device, and concurrent repeats share a single
// in-flight execution. When a tracer is installed (internal/obs), each
// execution is additionally wrapped in a "sim.execute" span recording
// the system shape, how the cache served it, and the run's traffic
// totals — see trace.go. Two consequences follow. First, the system must
// be freshly built — NewSystem-fresh devices that have never stepped —
// since the key cannot see accumulated device state; every call site in
// the engine already works this way (re-executing a stepped system was
// never meaningful). Second, cancellable contexts bypass the cache, so
// one caller's cancellation can never be replayed to another.
func ExecuteCtx(ctx context.Context, sys *System, rounds int, opts ExecuteOpts) (*Run, error) {
	if obs.Enabled() {
		return executeCtxTraced(ctx, sys, rounds, opts)
	}
	if ctx.Done() == nil && runcache.Enabled() {
		if key, ok := systemKey(sys, rounds, opts); ok {
			v, err := runCache.Do(key, func() (any, error) {
				return executeCore(ctx, sys, rounds, opts, key)
			})
			r, _ := v.(*Run)
			return r, err
		}
	}
	return executeCore(ctx, sys, rounds, opts, "")
}

// executeCore is the actual executor; key (possibly empty) becomes the
// run's fingerprint.
func executeCore(ctx context.Context, sys *System, rounds int, opts ExecuteOpts, key string) (*Run, error) {
	g := sys.G
	n := g.N()
	run := &Run{
		G:         g,
		Rounds:    rounds,
		Inputs:    append([]Input(nil), sys.Inputs...),
		Decisions: make([]Decision, n),
		fp:        key,
	}
	if opts.RecordSnapshots {
		run.Snapshots = make([][]string, n)
		snapBuf := make([]string, n*rounds)
		for u := 0; u < n; u++ {
			run.Snapshots[u] = snapBuf[u*rounds : (u+1)*rounds : (u+1)*rounds]
		}
	}
	if opts.RecordEdges {
		run.Edges = make(map[graph.Edge][]Payload, 2*g.NumEdges())
		for _, e := range g.DirectedEdges() {
			run.Edges[e] = make([]Payload, rounds)
		}
	}

	// Per-node routing tables, resolved once instead of per message:
	// adj[u] lists u's neighbor indices, inName[u][s] names the neighbor
	// occupying slot s of u's mailbox, and send[u] maps an addressee name
	// to its precomputed delivery route.
	adj := make([][]int, n)
	inName := make([][]string, n)
	slotOf := make([]map[int]int, n) // receiver -> sender index -> slot
	for u := 0; u < n; u++ {
		adj[u] = g.Neighbors(u)
		inName[u] = make([]string, len(adj[u]))
		slotOf[u] = make(map[int]int, len(adj[u]))
		for s, v := range adj[u] {
			inName[u][s] = g.Name(v)
			slotOf[u][v] = s
		}
	}
	send := make([]map[string]sendTarget, n)
	for u := 0; u < n; u++ {
		send[u] = make(map[string]sendTarget, len(adj[u]))
		for _, v := range adj[u] {
			t := sendTarget{v: v, slot: slotOf[v][u]}
			if opts.RecordEdges {
				t.seq = run.Edges[graph.Edge{From: g.Name(u), To: g.Name(v)}]
			}
			send[u][g.Name(v)] = t
		}
	}

	// A ring of reusable mailbox buffers (delivery round x node x
	// sender-slot) plus one reusable Inbox map per node, refilled at the
	// Step boundary. Synchronous delivery needs a window of 2 (the
	// classic current/next double buffer); a delay schedule widens the
	// window to maxExtra+2 so a message sent in round r with extra delay
	// e <= maxExtra lands in slot (r+1+e) mod window — always a future
	// slot distinct from the one being read, and read exactly once, at
	// round r+1+e. Slots are wiped right after their read round, so a
	// slot observed at round d is exactly the sends targeted at d.
	totalDeg := 0
	for u := 0; u < n; u++ {
		totalDeg += len(adj[u])
	}
	delays, maxExtra := opts.Delays.compile()
	window := maxExtra + 2
	// Async message accounting (sim.async.* counters): only ever non-nil
	// for a traced delay-schedule execution, so the synchronous hot path
	// pays one nil check per dispatch and nothing else.
	var acct *asyncAcct
	if delays != nil && obs.Enabled() {
		acct = &asyncAcct{}
		defer acct.flush()
	}
	ringBuf := make([]Payload, window*totalDeg)
	ring := make([][][]Payload, window)
	views := make([][]Payload, window*n)
	inboxes := make([]Inbox, n)
	for w := 0; w < window; w++ {
		ring[w] = views[w*n : (w+1)*n : (w+1)*n]
		off := w * totalDeg
		for u := 0; u < n; u++ {
			d := len(adj[u])
			ring[w][u] = ringBuf[off : off+d : off+d]
			off += d
		}
	}
	for u := 0; u < n; u++ {
		inboxes[u] = make(Inbox, len(adj[u]))
	}

	// Per-execution intern tables for the retained strings of a full
	// recording. Devices re-emit equal payloads and snapshots round after
	// round (a decided device's state stops changing; broadcasts repeat);
	// interning makes the recorded Run retain one canonical copy of each
	// distinct string so the duplicates become garbage within the round
	// that produced them instead of living as long as the run does —
	// which, with the run cache, is the life of the process. Fast mode
	// retains neither, and uncacheable runs (key == "") die with their
	// caller, so only cached full recordings pay the table's hash costs —
	// for large payloads (signature chains) those are O(bytes) per
	// delivery and would otherwise tax runs that gain nothing from them.
	var internSnap map[string]string
	var internPay map[Payload]Payload
	if key != "" {
		if opts.RecordSnapshots {
			internSnap = make(map[string]string, 2*n)
		}
		if opts.RecordEdges {
			internPay = make(map[Payload]Payload, 4*n)
		}
	}

	for r := 0; r < rounds; r++ {
		if cancelErr := cancelCheck(ctx, r); cancelErr != nil {
			return run, cancelErr
		}
		var roundErr error
		cur := ring[r%window]
		for u := 0; u < n; u++ {
			inbox := inboxes[u]
			clear(inbox)
			for s, p := range cur[u] {
				if p != None {
					inbox[inName[u][s]] = p
					if acct != nil {
						acct.delivered++
					}
				}
			}
			out, fault := safeStep(sys.Devices[u], g.Name(u), r, inbox)
			if fault != nil && roundErr == nil {
				roundErr = fault
			}
			// Validate the whole outbox before delivering anything, so a
			// bad addressee never leaves a nondeterministically half-
			// delivered round behind (Outbox iteration order is random).
			bad := ""
			for to := range out {
				if _, ok := send[u][to]; !ok && (bad == "" || to < bad) {
					bad = to
				}
			}
			if bad != "" {
				if roundErr == nil {
					roundErr = execRuleError(g.Name(u), r,
						"sim: node %s sent to non-neighbor %q in round %d", g.Name(u), bad, r)
				}
			} else {
				uName := g.Name(u)
				for to, payload := range out {
					if payload == None {
						continue
					}
					t := send[u][to]
					if t.seq != nil {
						if internPay != nil {
							if c, ok := internPay[payload]; ok {
								payload = c
							} else {
								internPay[payload] = payload
							}
						}
						t.seq[r] = payload
					}
					deliver := r + 1
					if delays != nil {
						extra := delays[delayKey{uName, to, r}]
						deliver += extra
						if acct != nil {
							acct.sent++
							if extra > 0 {
								acct.delayed++
							}
							switch {
							case deliver >= rounds:
								acct.lost++
							case ring[deliver%window][t.v][t.slot] != None:
								// This send lands on a slot still holding an
								// undelivered earlier message on the same
								// edge: the overwritten one is the casualty.
								acct.collided++
							}
						}
					}
					if deliver < rounds {
						ring[deliver%window][t.v][t.slot] = payload
					}
				}
			}
			if opts.RecordSnapshots {
				snap, snapFault := safeSnapshot(sys.Devices[u], g.Name(u), r)
				if snapFault != nil && roundErr == nil {
					roundErr = snapFault
				}
				if internSnap != nil {
					if c, ok := internSnap[snap]; ok {
						snap = c
					} else {
						internSnap[snap] = snap
					}
				}
				run.Snapshots[u][r] = snap
			}
			d, ok, outFault := safeOutput(sys.Devices[u], g.Name(u), r)
			if outFault != nil && roundErr == nil {
				roundErr = outFault
			}
			if ok {
				if run.Decisions[u].Value != "" && run.Decisions[u].Value != d.Value {
					if roundErr == nil {
						roundErr = execRuleError(g.Name(u), r,
							"sim: node %s changed its decision from %q to %q",
							g.Name(u), run.Decisions[u].Value, d.Value)
					}
				} else if run.Decisions[u].Value == "" {
					run.Decisions[u] = Decision{Value: d.Value, Round: r}
				}
			}
		}
		if roundErr != nil {
			// Every node of the failing round has stepped and (in full
			// mode) been snapshotted; return the diagnosable partial run.
			return run, roundErr
		}
		// The slot just read becomes the buffer for round r+window; wipe
		// it so stale payloads never resurface.
		spent := ringBuf[(r%window)*totalDeg : (r%window+1)*totalDeg]
		for i := range spent {
			spent[i] = None
		}
	}
	return run, nil
}

// MustExecute is Execute for known-good systems; it panics on error. The
// panic value is always a *ExecError carrying node/round context, so a
// recovery layer (e.g. the sweep engine's Isolated pool) can tell an
// engine-reported failure apart from an arbitrary device panic: device
// faults remain reachable through errors.As as a *DeviceFault cause.
func MustExecute(sys *System, rounds int) *Run {
	run, err := Execute(sys, rounds)
	if err != nil {
		var ee *ExecError
		if errors.As(err, &ee) {
			panic(ee)
		}
		var df *DeviceFault
		if errors.As(err, &df) {
			panic(&ExecError{Node: df.Node, Round: df.Round, Err: df})
		}
		panic(&ExecError{Round: -1, Err: err})
	}
	return run
}

// EdgeBehavior returns the payload sequence carried by the directed edge,
// or an error if the edge does not exist in the run's graph.
func (r *Run) EdgeBehavior(from, to string) ([]Payload, error) {
	seq, ok := r.Edges[graph.Edge{From: from, To: to}]
	if !ok {
		return nil, fmt.Errorf("sim: run has no edge %s->%s", from, to)
	}
	return seq, nil
}

// DecisionOf returns the decision of the named node.
func (r *Run) DecisionOf(name string) (Decision, error) {
	u, ok := r.G.Index(name)
	if !ok {
		return Decision{}, fmt.Errorf("sim: run has no node %q", name)
	}
	return r.Decisions[u], nil
}

// SnapshotsOf returns the snapshot sequence of the named node.
func (r *Run) SnapshotsOf(name string) ([]string, error) {
	u, ok := r.G.Index(name)
	if !ok {
		return nil, fmt.Errorf("sim: run has no node %q", name)
	}
	if r.Snapshots == nil {
		return nil, fmt.Errorf("sim: run recorded no snapshots (fast mode)")
	}
	return r.Snapshots[u], nil
}

// String summarizes decisions, for debugging and reports.
func (r *Run) String() string {
	var b strings.Builder
	for u := 0; u < r.G.N(); u++ {
		d := r.Decisions[u]
		if d.Value == "" {
			fmt.Fprintf(&b, "%s: undecided\n", r.G.Name(u))
		} else {
			fmt.Fprintf(&b, "%s: %s @r%d\n", r.G.Name(u), d.Value, d.Round)
		}
	}
	return b.String()
}
