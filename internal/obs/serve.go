package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// The live observability endpoint: an opt-in, stdlib-only HTTP listener
// serving the metrics registry, a health probe, the progress snapshot,
// and the runtime profiler. Nothing in this file runs unless StartServer
// is called — the zero-cost-when-disabled contract extends to the
// endpoint: no listener, no goroutine, no allocation when the CLI's
// -obs-listen flag / FLM_OBS_LISTEN env is unset (guard-tested in
// cmd/flm).
//
// Routes:
//
//	/healthz        "ok" — liveness probe
//	/metrics        Prometheus text exposition of the default registry
//	/progress       JSON ProgressSnapshot (trials, workers, queue, ETA)
//	/debug/pprof/*  net/http/pprof (profile, heap, goroutine, trace, ...)
//
// The handlers are registered on a private mux, never on
// http.DefaultServeMux, so importing net/http/pprof here cannot leak
// profiler routes into any other server a future `flm serve` might run.

// Server is a running observability endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// StartServer listens on addr (e.g. "127.0.0.1:9464", ":0" for an
// ephemeral port) and serves the observability routes until Close. The
// accept loop runs on its own goroutine; the call returns as soon as
// the listener is bound, so the caller can report the resolved address.
func StartServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		// Refresh the clock-derived progress gauges so they scrape live.
		ProgressSnapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ProgressSnapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns ErrServerClosed after Close
	}()
	return s, nil
}

// Addr returns the bound listen address (with the real port when the
// caller asked for :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for the accept loop to exit.
// In-flight handlers finish writing; new connections are refused.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
