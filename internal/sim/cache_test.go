package sim

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"flm/internal/graph"
	"flm/internal/runcache"
)

// countingDevice is a deterministic fingerprintable device whose Step
// invocations are observable through a shared counter, so tests can tell
// a real execution from a cache hit.
type countingDevice struct {
	nbs   []string
	tag   string
	steps *atomic.Int64
}

func (d *countingDevice) Init(self string, neighbors []string, input Input) {
	d.nbs = append([]string(nil), neighbors...)
}

func (d *countingDevice) Step(round int, inbox Inbox) Outbox {
	d.steps.Add(1)
	out := Outbox{}
	for _, nb := range d.nbs {
		out[nb] = Payload(d.tag)
	}
	return out
}

func (d *countingDevice) Snapshot() string          { return "counting:" + d.tag }
func (d *countingDevice) Output() (Decision, bool)  { return Decision{}, false }
func (d *countingDevice) DeviceFingerprint() string { return "test/counting:" + d.tag }

// opaqueDevice has no fingerprint, making any system containing it
// bypass the cache.
type opaqueDevice struct{ steps *atomic.Int64 }

func (d *opaqueDevice) Init(self string, neighbors []string, input Input) {}
func (d *opaqueDevice) Step(round int, inbox Inbox) Outbox {
	d.steps.Add(1)
	return nil
}
func (d *opaqueDevice) Snapshot() string         { return "opaque" }
func (d *opaqueDevice) Output() (Decision, bool) { return Decision{}, false }

func triangle(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.MustNew("a", "b", "c")
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func countingSystem(t *testing.T, g *graph.Graph, tag string, steps *atomic.Int64) *System {
	t.Helper()
	p := Protocol{Builders: map[string]Builder{}, Inputs: map[string]Input{}}
	for _, name := range g.Names() {
		p.Builders[name] = func(self string, neighbors []string, input Input) Device {
			d := &countingDevice{tag: tag, steps: steps}
			d.Init(self, neighbors, input)
			return d
		}
		p.Inputs[name] = Input("1")
	}
	sys, err := NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestCacheHitSkipsExecution is the hit/miss accounting test: a repeat
// of an identical fresh system is served from the cache without stepping
// any device, and the returned run is the shared instance.
func TestCacheHitSkipsExecution(t *testing.T) {
	restore := runcache.SetEnabled(true)
	defer restore()
	ResetRunCache()
	g := triangle(t)
	var steps atomic.Int64

	r1, err := ExecuteWith(countingSystem(t, g, "hit-skip", &steps), 3, FullRecording)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := steps.Load()
	if afterFirst != 9 { // 3 nodes x 3 rounds
		t.Fatalf("first execution stepped %d times, want 9", afterFirst)
	}
	st0 := RunCacheStats()

	r2, err := ExecuteWith(countingSystem(t, g, "hit-skip", &steps), 3, FullRecording)
	if err != nil {
		t.Fatal(err)
	}
	if steps.Load() != afterFirst {
		t.Fatalf("cache hit stepped devices (%d -> %d steps)", afterFirst, steps.Load())
	}
	if r2 != r1 {
		t.Fatal("cache hit returned a different *Run than the original execution")
	}
	st1 := RunCacheStats()
	if st1.Hits != st0.Hits+1 || st1.Misses != st0.Misses {
		t.Fatalf("stats went %+v -> %+v, want exactly one more hit", st0, st1)
	}
	if r1.Fingerprint() == "" {
		t.Fatal("cached run has no fingerprint")
	}
}

// TestCacheEquivalence pins byte-identical results: the cached run and a
// cache-disabled run of the same system agree on every recorded field.
func TestCacheEquivalence(t *testing.T) {
	restore := runcache.SetEnabled(true)
	defer restore()
	ResetRunCache()
	g := triangle(t)
	var steps atomic.Int64

	cached, err := ExecuteWith(countingSystem(t, g, "equiv", &steps), 4, FullRecording)
	if err != nil {
		t.Fatal(err)
	}
	off := runcache.SetEnabled(false)
	plain, err := ExecuteWith(countingSystem(t, g, "equiv", &steps), 4, FullRecording)
	off()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fingerprint() != "" {
		t.Fatal("cache-disabled run acquired a fingerprint")
	}
	if !reflect.DeepEqual(cached.Snapshots, plain.Snapshots) {
		t.Fatal("snapshots differ between cached and uncached execution")
	}
	if !reflect.DeepEqual(cached.Edges, plain.Edges) {
		t.Fatal("edge behaviors differ between cached and uncached execution")
	}
	if !reflect.DeepEqual(cached.Decisions, plain.Decisions) {
		t.Fatal("decisions differ between cached and uncached execution")
	}
	if !reflect.DeepEqual(cached.Inputs, plain.Inputs) {
		t.Fatal("inputs differ between cached and uncached execution")
	}
}

// TestCacheKeySeparatesModes verifies fast and full recordings never
// share an entry (their Runs have different shapes), and different
// rounds/inputs/devices miss as they must.
func TestCacheKeySeparatesModes(t *testing.T) {
	restore := runcache.SetEnabled(true)
	defer restore()
	ResetRunCache()
	g := triangle(t)
	var steps atomic.Int64

	full, err := ExecuteWith(countingSystem(t, g, "modes", &steps), 2, FullRecording)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ExecuteWith(countingSystem(t, g, "modes", &steps), 2, ExecuteOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if full == fast {
		t.Fatal("fast and full recordings shared one cache entry")
	}
	if fast.Snapshots != nil || fast.Edges != nil {
		t.Fatal("fast-mode run carries recordings")
	}
	longer, err := ExecuteWith(countingSystem(t, g, "modes", &steps), 3, FullRecording)
	if err != nil {
		t.Fatal(err)
	}
	if longer == full {
		t.Fatal("different round counts shared one cache entry")
	}
}

// TestCacheBypasses covers the three bypass paths: a device without a
// fingerprint, a cancellable context, and a disabled cache.
func TestCacheBypasses(t *testing.T) {
	restore := runcache.SetEnabled(true)
	defer restore()
	ResetRunCache()
	g := triangle(t)
	var steps atomic.Int64

	opaque := func() *System {
		p := Protocol{Builders: map[string]Builder{}, Inputs: map[string]Input{}}
		for _, name := range g.Names() {
			p.Builders[name] = func(self string, neighbors []string, input Input) Device {
				return &opaqueDevice{steps: &steps}
			}
			p.Inputs[name] = Input("0")
		}
		sys, err := NewSystem(g, p)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	st0 := RunCacheStats()
	for i := 0; i < 2; i++ {
		run, err := ExecuteWith(opaque(), 2, FullRecording)
		if err != nil {
			t.Fatal(err)
		}
		if run.Fingerprint() != "" {
			t.Fatal("non-fingerprintable system produced a fingerprinted run")
		}
	}
	if steps.Load() != 12 { // both executions ran: 2 x 3 nodes x 2 rounds
		t.Fatalf("opaque system stepped %d times, want 12 (no caching)", steps.Load())
	}
	if st := RunCacheStats(); st != st0 {
		t.Fatalf("opaque system touched the cache: %+v -> %+v", st0, st)
	}

	steps.Store(0)
	off := runcache.SetEnabled(false)
	for i := 0; i < 2; i++ {
		if _, err := ExecuteWith(countingSystem(t, g, "disabled", &steps), 2, FullRecording); err != nil {
			t.Fatal(err)
		}
	}
	off()
	if steps.Load() != 12 {
		t.Fatalf("disabled cache stepped %d times, want 12", steps.Load())
	}
}

// TestCacheSingleFlight executes the same fingerprint from many
// goroutines at once and demands exactly one real execution. Run under
// the race gate (FLM_WORKERS=4 go test -race) this is the concurrent
// fingerprint-collision test of the sweep engine's cache contract.
func TestCacheSingleFlight(t *testing.T) {
	restore := runcache.SetEnabled(true)
	defer restore()
	ResetRunCache()
	g := triangle(t)
	var steps atomic.Int64

	const workers = 8
	var wg sync.WaitGroup
	runs := make([]*Run, workers)
	errs := make([]error, workers)
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		sys := countingSystem(t, g, "single-flight", &steps)
		go func(i int, sys *System) {
			defer wg.Done()
			<-start
			runs[i], errs[i] = ExecuteWith(sys, 3, FullRecording)
		}(i, sys)
	}
	close(start)
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if runs[i] != runs[0] {
			t.Fatalf("worker %d received a different run instance", i)
		}
	}
	if steps.Load() != 9 { // one execution: 3 nodes x 3 rounds
		t.Fatalf("%d concurrent executions stepped %d times, want 9 (single flight)", workers, steps.Load())
	}
}
