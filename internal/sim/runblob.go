package sim

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flm/internal/graph"
)

// Run serialization for the run cache's disk tier. A cached Run is fully
// determined by its content-addressed key, so the blob only has to carry
// the recorded behavior: the graph (names + undirected edges), inputs,
// decisions, and — for full recordings — the snapshot and edge-behavior
// sequences. Decision-only (fast mode) runs encode just the first part;
// the same frame handles both via a flags byte.
//
// The encoding is canonical: node order is graph index order, edge order
// is graph.DirectedEdges order (lexicographic), every string is
// uvarint-length-delimited. Two encodes of the same Run are
// byte-identical, and no map is ever iterated in map order — the
// package's determinism contract extends to the bytes it persists.
//
// Decoding is defensive: any structural violation (bad magic, counts out
// of range, truncated fields) returns an error, which the cache layer
// treats exactly like a corrupt blob — delete and recompute. A decoded
// blob can therefore never poison an execution; the worst case of a
// damaged cache directory is a cache miss.

// runBlobMagic versions the Run frame; bump on any shape change so stale
// blobs from older binaries read as corrupt instead of misdecoding.
const runBlobMagic = "sim.runblob/v1"

// maxBlobNodes bounds decoded allocations against nonsense counts in a
// damaged blob. Far above any graph this reproduction builds.
const maxBlobNodes = 1 << 16

var errBlobTruncated = errors.New("sim: run blob truncated")

// RunCodec is the runcache.Codec for *Run values. The zero value is
// ready to use.
type RunCodec struct{}

// Encode serializes a completed Run. Values that are not runs, partial
// runs (nil graph), and runs that were never content-addressed report
// ok=false and stay out of the disk tier.
func (RunCodec) Encode(key string, v any) ([]byte, bool) {
	r, ok := v.(*Run)
	if !ok || r == nil || r.G == nil {
		return nil, false
	}
	g := r.G
	n := g.N()

	b := make([]byte, 0, runBlobSize(r))
	b = appendBlobStr(b, runBlobMagic)
	b = binary.AppendUvarint(b, uint64(n))
	for u := 0; u < n; u++ {
		b = appendBlobStr(b, g.Name(u))
	}
	b = binary.AppendUvarint(b, uint64(g.NumEdges()))
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v > u {
				b = binary.AppendUvarint(b, uint64(u))
				b = binary.AppendUvarint(b, uint64(v))
			}
		}
	}
	b = binary.AppendUvarint(b, uint64(r.Rounds))
	for u := 0; u < n; u++ {
		b = appendBlobStr(b, string(r.Inputs[u]))
	}
	for u := 0; u < n; u++ {
		b = appendBlobStr(b, r.Decisions[u].Value)
		b = binary.AppendUvarint(b, uint64(r.Decisions[u].Round))
	}

	var flags byte
	if r.Snapshots != nil {
		flags |= 1
	}
	if r.Edges != nil {
		flags |= 2
	}
	b = append(b, flags)
	if r.Snapshots != nil {
		for u := 0; u < n; u++ {
			b = binary.AppendUvarint(b, uint64(len(r.Snapshots[u])))
			for _, s := range r.Snapshots[u] {
				b = appendBlobStr(b, s)
			}
		}
	}
	if r.Edges != nil {
		for _, e := range g.DirectedEdges() {
			seq := r.Edges[e]
			b = binary.AppendUvarint(b, uint64(len(seq)))
			for _, p := range seq {
				b = appendBlobStr(b, string(p))
			}
		}
	}
	return b, true
}

// Decode reconstructs a Run from its blob. The returned run carries the
// cache key as its fingerprint, exactly as a freshly executed cached run
// would. Snapshot strings and payloads are interned per decode,
// mirroring executeCore's interning, so a decoded full recording retains
// one canonical copy of each distinct state/payload.
func (RunCodec) Decode(key string, data []byte) (any, error) {
	d := blobReader{data: data}
	if magic := d.str(); magic != runBlobMagic {
		return nil, fmt.Errorf("sim: run blob magic %q", magic)
	}
	n := d.count(maxBlobNodes)
	names := make([]string, n)
	for u := range names {
		names[u] = d.str()
	}
	if d.err != nil {
		return nil, d.err
	}
	g, err := graph.New(names...)
	if err != nil {
		return nil, fmt.Errorf("sim: run blob graph: %w", err)
	}
	edges := d.count(maxBlobNodes * maxBlobNodes)
	for i := 0; i < edges && d.err == nil; i++ {
		u, v := d.count(n), d.count(n)
		if d.err == nil {
			if err := g.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("sim: run blob graph: %w", err)
			}
		}
	}
	r := &Run{
		G:         g,
		Rounds:    d.count(1 << 30),
		Inputs:    make([]Input, n),
		Decisions: make([]Decision, n),
		fp:        key,
	}
	for u := 0; u < n; u++ {
		r.Inputs[u] = Input(d.str())
	}
	for u := 0; u < n; u++ {
		r.Decisions[u].Value = d.str()
		r.Decisions[u].Round = d.count(1 << 30)
	}
	flags := d.byteVal()
	if flags&1 != 0 {
		intern := make(map[string]string, 2*n)
		r.Snapshots = make([][]string, n)
		for u := 0; u < n && d.err == nil; u++ {
			rounds := d.count(1 << 30)
			r.Snapshots[u] = make([]string, rounds)
			for i := range r.Snapshots[u] {
				s := d.str()
				if c, ok := intern[s]; ok {
					s = c
				} else {
					intern[s] = s
				}
				r.Snapshots[u][i] = s
			}
		}
	}
	if flags&2 != 0 {
		intern := make(map[Payload]Payload, 4*n)
		r.Edges = make(map[graph.Edge][]Payload, 2*g.NumEdges())
		for _, e := range g.DirectedEdges() {
			if d.err != nil {
				break
			}
			rounds := d.count(1 << 30)
			seq := make([]Payload, rounds)
			for i := range seq {
				p := Payload(d.str())
				if c, ok := intern[p]; ok {
					p = c
				} else {
					intern[p] = p
				}
				seq[i] = p
			}
			r.Edges[e] = seq
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != 0 {
		return nil, errors.New("sim: run blob has trailing bytes")
	}
	return r, nil
}

// runBlobSize pre-sizes the encode buffer; an estimate, not a contract.
func runBlobSize(r *Run) int {
	return 64 + int(runCost(r))
}

// RunCost estimates the retained bytes of a *Run — the execution
// cache's budget-accounting model, exported for layers (core's splice
// cache) whose cached values embed runs.
func RunCost(r *Run) int64 { return runCost(r) }

// runCost estimates the retained bytes of a cached *Run for the L1
// budget accounting. Interned strings are counted once per reference,
// deliberately overestimating shared state — the budget errs toward
// evicting early rather than blowing past its bound. Non-run values
// (none exist in this cache today) get the flat default.
func runCost(v any) int64 {
	r, ok := v.(*Run)
	if !ok || r == nil {
		return 512
	}
	cost := int64(256) // Run struct + graph headers
	if r.G != nil {
		for u := 0; u < r.G.N(); u++ {
			cost += int64(2*len(r.G.Name(u))) + 64 // name + index entry + adj
			cost += int64(8 * r.G.Degree(u))
		}
	}
	for _, in := range r.Inputs {
		cost += int64(len(in)) + 16
	}
	for _, dec := range r.Decisions {
		cost += int64(len(dec.Value)) + 24
	}
	for _, seq := range r.Snapshots {
		cost += 24
		for _, s := range seq {
			cost += int64(len(s)) + 16
		}
	}
	if r.Edges != nil && r.G != nil {
		for _, e := range r.G.DirectedEdges() {
			cost += int64(len(e.From)+len(e.To)) + 64
			for _, p := range r.Edges[e] {
				cost += int64(len(p)) + 16
			}
		}
	}
	return cost
}

func appendBlobStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// blobReader is a cursor over blob bytes with sticky error handling:
// after the first structural violation every subsequent read is a no-op
// returning zero values, and the error surfaces once at the end.
type blobReader struct {
	data []byte
	err  error
}

func (d *blobReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.err = errBlobTruncated
		return 0
	}
	d.data = d.data[n:]
	return v
}

// count reads a non-negative count and bounds it, guarding allocations
// against damaged blobs.
func (d *blobReader) count(max int) int {
	v := d.uvarint()
	if d.err == nil && v > uint64(max) {
		d.err = fmt.Errorf("sim: run blob count %d out of range", v)
		return 0
	}
	return int(v)
}

func (d *blobReader) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.data)) < n {
		d.err = errBlobTruncated
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}

func (d *blobReader) byteVal() byte {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 1 {
		d.err = errBlobTruncated
		return 0
	}
	b := d.data[0]
	d.data = d.data[1:]
	return b
}
