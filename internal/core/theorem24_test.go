package core

import (
	"strings"
	"testing"

	"flm/internal/byzantine"
	"flm/internal/firingsquad"
	"flm/internal/graph"
	"flm/internal/sim"
	"flm/internal/weak"
)

func TestWeakAgreementRingDefeatsEveryDevice(t *testing.T) {
	g := graph.Triangle()
	peers := g.Names()
	panel := map[string]sim.Builder{
		"detect-default": weak.NewDetectDefault(3),
		"detect-slow":    weak.NewDetectDefault(5),
		"via-eig":        weak.NewViaBA(1, peers),
		"majority":       byzantine.NewMajority(2),
		"own-input":      byzantine.NewOwnInput(2),
	}
	for name, builder := range panel {
		t.Run(name, func(t *testing.T) {
			cr, err := WeakAgreementRing(uniformBuilders(g, builder), name, 16)
			if err != nil {
				t.Fatalf("engine error: %v", err)
			}
			if !cr.Contradicted() {
				t.Fatalf("device %s survived Theorem 2:\n%s", name, cr)
			}
		})
	}
}

// Devices that pass the fault-free base runs must be defeated on the ring
// itself: the violation must come from a spliced one-fault pair, and the
// covering must have size 4k.
func TestWeakAgreementRingViolationComesFromRing(t *testing.T) {
	g := graph.Triangle()
	cr, err := WeakAgreementRing(uniformBuilders(g, weak.NewDetectDefault(3)), "detect-default", 16)
	if err != nil {
		t.Fatal(err)
	}
	if cr.CoverSize == 0 || cr.CoverSize%4 != 0 || (cr.CoverSize/4)%3 != 0 {
		t.Errorf("cover size %d is not 4k with k a multiple of 3", cr.CoverSize)
	}
	for _, v := range cr.Violations {
		if strings.HasPrefix(v.Link, "B") {
			t.Errorf("violation in base run %s: %s (device should pass fault-free runs)", v.Link, v.Detail)
		}
		if v.Condition != "agreement" && v.Condition != "choice" {
			t.Errorf("unexpected condition %q in %s", v.Condition, v.Link)
		}
	}
}

// A device that is not even a weak agreement device fault-free (constant
// 0 violates validity on the unanimous-1 run) must be caught in the base
// links without building the ring.
func TestWeakAgreementRingCatchesBaseValidity(t *testing.T) {
	g := graph.Triangle()
	cr, err := WeakAgreementRing(uniformBuilders(g, byzantine.NewConstant("0", 2)), "const-0", 12)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range cr.Violations {
		if v.Link == "B1" && v.Condition == "validity" {
			found = true
		}
	}
	if !found {
		t.Errorf("constant-0 not caught in base run B1: %v", cr.Violations)
	}
}

func TestWeakAgreementRingChoiceViolation(t *testing.T) {
	g := graph.Triangle()
	cr, err := WeakAgreementRing(uniformBuilders(g, weak.NewDetectDefault(50)), "too-slow", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Contradicted() {
		t.Fatal("never-deciding device survived")
	}
	if cr.Violations[0].Condition != "choice" {
		t.Errorf("want choice violation first, got %v", cr.Violations[0])
	}
}

func TestFiringSquadRingDefeatsEveryDevice(t *testing.T) {
	g := graph.Triangle()
	panel := map[string]sim.Builder{
		"countdown-2": firingsquad.NewCountdown(2),
		"countdown-4": firingsquad.NewCountdown(4),
		"via-eig":     firingsquad.NewViaBA(1, g.Names()),
	}
	for name, builder := range panel {
		t.Run(name, func(t *testing.T) {
			cr, err := FiringSquadRing(uniformBuilders(g, builder), name, 20)
			if err != nil {
				t.Fatalf("engine error: %v", err)
			}
			if !cr.Contradicted() {
				t.Fatalf("device %s survived Theorem 4:\n%s", name, cr)
			}
		})
	}
}

func TestFiringSquadRingViolationShape(t *testing.T) {
	g := graph.Triangle()
	cr, err := FiringSquadRing(uniformBuilders(g, firingsquad.NewCountdown(2)), "countdown-2", 20)
	if err != nil {
		t.Fatal(err)
	}
	ringViolation := false
	for _, v := range cr.Violations {
		if strings.HasPrefix(v.Link, "E") && v.Condition == "agreement" {
			ringViolation = true
		}
	}
	if !ringViolation {
		t.Errorf("no simultaneity violation on the ring: %v", cr.Violations)
	}
}

func TestFiringSquadRingCatchesBrokenBase(t *testing.T) {
	// A device that never fires violates base validity (stimulated run).
	g := graph.Triangle()
	cr, err := FiringSquadRing(uniformBuilders(g, firingsquad.NewCountdown(100)), "dud", 12)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range cr.Violations {
		if v.Link == "B1" && v.Condition == "validity" {
			found = true
		}
	}
	if !found {
		t.Errorf("dud not caught in base run: %v", cr.Violations)
	}
}
