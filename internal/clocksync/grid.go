package clocksync

import (
	"fmt"

	"flm/internal/sweep"
)

// This file is the parallel grid evaluator for the Corollary 12-15
// sweeps: a grid is (parameter cases) x (device families), and every
// cell runs a full Theorem 8 ring argument. Cells are independent — each
// builds its own timed system from its Params and fresh devices — so the
// grid fans out through the sweep engine.

// GridCase is one parameter row of a corollary grid.
type GridCase struct {
	Name   string
	Params Params
}

// GridDevice is one device family evaluated at every grid case. Builders
// receives the case's Params so the family can adapt (e.g. use the
// case's lower envelope).
type GridDevice struct {
	Name     string
	Builders func(Params) map[string]Builder
}

// EvalGrid runs Theorem8 for every (case, device) cell in parallel and
// returns the results as out[caseIdx][deviceIdx], in the same order the
// cases and devices were given. The device-independent half of each
// case's argument — induction length, verified ring cover, the h-iterate
// table, and t'' — is prepared once per case and shared (read-only) by
// all of that case's device cells, rather than rebuilt per cell.
func EvalGrid(cases []GridCase, devices []GridDevice) ([][]*Result, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("clocksync: grid needs at least one device family")
	}
	type prepOutcome struct {
		prep *theorem8Prep
		err  error
	}
	sizes := make([]int, len(cases))
	for i := range sizes {
		sizes[i] = len(devices)
	}
	out, err := sweep.Grouped(sizes,
		func(c int) prepOutcome {
			prep, err := prepareTheorem8(cases[c].Params)
			return prepOutcome{prep: prep, err: err}
		},
		func(c, d int, p prepOutcome) (*Result, error) {
			if p.err != nil {
				return nil, fmt.Errorf("%s / %s: %w", cases[c].Name, devices[d].Name, p.err)
			}
			r, err := runTheorem8(p.prep, devices[d].Builders(cases[c].Params))
			if err != nil {
				return nil, fmt.Errorf("%s / %s: %w", cases[c].Name, devices[d].Name, err)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TrivialLowerFamily is the no-communication lower-envelope device family
// on the triangle ring, for grid sweeps.
func TrivialLowerFamily() GridDevice {
	return GridDevice{Name: "trivial-lower", Builders: func(p Params) map[string]Builder {
		return map[string]Builder{
			"a": NewTrivialLower(p.L), "b": NewTrivialLower(p.L), "c": NewTrivialLower(p.L),
		}
	}}
}

// ChaseMaxFamily is the agreement-chasing device family on the triangle
// ring, for grid sweeps.
func ChaseMaxFamily() GridDevice {
	return GridDevice{Name: "chase-max", Builders: func(p Params) map[string]Builder {
		return map[string]Builder{
			"a": NewChaseMax(p.L), "b": NewChaseMax(p.L), "c": NewChaseMax(p.L),
		}
	}}
}
