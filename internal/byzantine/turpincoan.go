package byzantine

import (
	"fmt"
	"sort"
	"strings"

	"flm/internal/sim"
)

// turpinCoan implements the Turpin-Coan reduction from multivalued to
// binary Byzantine agreement (n >= 3f+1): two preliminary exchange
// rounds distill at most one candidate value w held by enough correct
// nodes, binary EIG agrees on whether to adopt it, and the quorum
// arithmetic guarantees every correct node that needs w can identify it
// unambiguously.
//
//	Round 0: broadcast the input value.
//	Round 1: broadcast y = the value seen >= n-f times (or ⊥).
//	         Set vote = 1 iff some value appears >= n-f times among the
//	         y's, and alt = the unique value appearing >= f+1 times.
//	Rounds 2..: binary EIG on vote; decide alt if it agrees on 1 and alt
//	         exists, else the default value.
//
// Correctness hinges on two quorum facts (both need n > 3f): two correct
// nodes' non-⊥ y values coincide, and any value with >= f+1 round-1
// witnesses among the y's was vouched for by a correct node.
type turpinCoan struct {
	self      string
	peers     []string
	neighbors []string
	f         int
	fp        string
	innerB    sim.Builder // hoisted inner-EIG builder, shared across devices
	input     string
	y         string // round-1 relay value, "" encodes ⊥
	alt       string
	altOK     bool
	inner     sim.Device
	decided   bool
	decision  string
	tvals     []string // tally scratch: distinct values and their counts
	tcnts     []int
}

var _ sim.Device = (*turpinCoan)(nil)
var _ sim.Fingerprinter = (*turpinCoan)(nil)

// DeviceFingerprint is the constructor identity: fault bound and peer
// set (see eigMapDevice.DeviceFingerprint).
func (d *turpinCoan) DeviceFingerprint() string {
	if d.fp == "" {
		d.fp = fmt.Sprintf("byz/turpincoan:f=%d,peers=%s", d.f, strings.Join(d.peers, ","))
	}
	return d.fp
}

// tcBot is the on-wire encoding of ⊥.
const tcBot = "-"

// NewTurpinCoan returns a builder for multivalued agreement devices over
// arbitrary string values (n >= 3f+1). Values containing protocol
// delimiters are treated as the default. The inner binary-EIG builder is
// constructed once here — not per device per trial — so every device the
// builder makes shares the sorted peer set, fingerprints, and the flat
// EIG tree shape.
func NewTurpinCoan(f int, peers []string) sim.Builder {
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	fp := fmt.Sprintf("byz/turpincoan:f=%d,peers=%s", f, strings.Join(sorted, ","))
	innerB := NewEIG(f, sorted)
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &turpinCoan{f: f, peers: sorted, fp: fp, innerB: innerB}
		d.init(self, sortedNames(neighbors), input)
		return d
	}
}

// TurpinCoanRounds returns the simulator rounds a Turpin-Coan run needs:
// two exchange rounds plus the binary agreement.
func TurpinCoanRounds(f int) int { return 2 + EIGRounds(f) }

func (d *turpinCoan) Init(self string, neighbors []string, input sim.Input) {
	d.init(self, sortedNames(neighbors), input)
}

// init takes ownership of the sorted neighbors slice.
func (d *turpinCoan) init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.neighbors = neighbors
	d.input = sanitizeMV(string(input))
	d.y = ""
	d.alt, d.altOK = "", false
	d.inner = nil
	d.decided = false
	d.decision = ""
}

// sanitizeMV keeps multivalued inputs inside the payload alphabet.
func sanitizeMV(v string) string {
	if v == "" || v == tcBot || strings.ContainsAny(v, ";=/|") {
		return DefaultValue
	}
	return v
}

func (d *turpinCoan) Step(round int, inbox sim.Inbox) sim.Outbox {
	switch {
	case round == 0:
		return d.broadcast(sim.Payload(d.input))
	case round == 1:
		d.tallyPeers(inbox, d.input)
		// Adopt the largest value with an n-f quorum (the reference scan
		// over sorted keys kept overwriting, so the last — maximal —
		// qualifier won), else ⊥.
		d.y = tcBot
		found := false
		for i, v := range d.tvals {
			if d.tcnts[i] >= len(d.peers)-d.f && (!found || v > d.y) {
				d.y, found = v, true
			}
		}
		return d.broadcast(sim.Payload(d.y))
	case round == 2:
		d.tallyPeers(inbox, d.y)
		vote := false
		for i, v := range d.tvals {
			if v == tcBot {
				continue
			}
			if d.tcnts[i] >= len(d.peers)-d.f {
				vote = true
			}
			if d.tcnts[i] >= d.f+1 && (!d.altOK || v > d.alt) {
				// Unique when it exists: a value with f+1 witnesses has a
				// correct witness, and correct non-⊥ y values coincide.
				// Maximal qualifier for the same reason as round 1.
				d.alt, d.altOK = v, true
			}
		}
		innerB := d.innerB
		if innerB == nil {
			innerB = NewEIG(d.f, d.peers)
		}
		d.inner = innerB(d.self, d.neighbors, sim.BoolInput(vote))
		return d.inner.Step(0, sim.Inbox{})
	default:
		out := d.inner.Step(round-2, inbox)
		if dec, ok := d.inner.Output(); ok && !d.decided {
			d.decided = true
			if dec.Value == "1" && d.altOK {
				d.decision = d.alt
			} else {
				d.decision = DefaultValue
			}
		}
		return out
	}
}

// tallyPeers counts the values received from every peer this round
// (self-delivery via own), treating silence as ⊥. Distinct values land in
// the reused tvals/tcnts scratch (at most n+1 of them, so the linear scan
// beats a map).
func (d *turpinCoan) tallyPeers(inbox sim.Inbox, own string) {
	d.tvals, d.tcnts = d.tvals[:0], d.tcnts[:0]
	d.tallyAdd(own)
	for _, p := range d.peers {
		if p == d.self {
			continue
		}
		v := tcBot
		if payload, ok := inbox[p]; ok {
			s := string(payload)
			if s == tcBot {
				v = tcBot
			} else if sanitized := sanitizeMV(s); sanitized == s {
				v = s
			}
			// Garbled payloads count as ⊥.
		}
		d.tallyAdd(v)
	}
}

func (d *turpinCoan) tallyAdd(v string) {
	for i := range d.tvals {
		if d.tvals[i] == v {
			d.tcnts[i]++
			return
		}
	}
	d.tvals, d.tcnts = append(d.tvals, v), append(d.tcnts, 1)
}

func (d *turpinCoan) broadcast(p sim.Payload) sim.Outbox {
	out := sim.Outbox{}
	for _, nb := range d.neighbors {
		out[nb] = p
	}
	return out
}

func (d *turpinCoan) Snapshot() string {
	innerSnap := "pre"
	if d.inner != nil {
		innerSnap = d.inner.Snapshot()
	}
	return fmt.Sprintf("tc(in=%s,y=%s,alt=%s/%v,dec=%v:%s)|%s",
		d.input, d.y, d.alt, d.altOK, d.decided, d.decision, innerSnap)
}

func (d *turpinCoan) Output() (sim.Decision, bool) {
	if !d.decided {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: d.decision}, true
}
