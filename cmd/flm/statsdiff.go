package main

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// The trace-diff regression gate: `flm stats -diff old.jsonl new.jsonl`
// folds two traces and compares the behavioral families that should be
// stable run-over-run — the behavioral twin of `flm bench -compare`,
// which gates allocations the same way. Exit 3 when any family drifts
// beyond -threshold.
//
// Families and their units:
//
//   - counter      final-metrics counters (exec runs, cache traffic,
//                  sweep trials, async message accounting) — relative %
//   - spans        span count per name — relative %
//   - span-share   per-name share of total span time — percentage
//                  points; skipped under -notiming since wall time is
//                  machine-dependent even when behavior is identical
//   - cache        run/splice served-rate ((hit+wait+disk)/lookups) —
//                  percentage points; the combined rate is deterministic
//                  even though the hit/wait split depends on scheduling
//   - traffic      total messages and bytes across sim.execute spans
//                  (full recordings) — relative %
//
// Gauges and histogram sums/maxes are never compared: gauges are
// point-in-time readings and histogram timing is machine noise.

// diffRow is one compared series.
type diffRow struct {
	family   string
	name     string
	old, cur float64
	drift    float64 // in unit
	unit     string  // "%" (relative) or "pp" (percentage points)
}

// relDrift is the relative percent change from old to cur; a series
// appearing or vanishing outright is infinite drift (it always gates
// unless the threshold is, absurdly, +Inf).
func relDrift(old, cur float64) float64 {
	if old == cur {
		return 0
	}
	if old == 0 {
		return math.Inf(1)
	}
	return 100 * math.Abs(cur-old) / old
}

// addRel appends a relative-% row.
func addRel(rows []diffRow, family, name string, old, cur float64) []diffRow {
	return append(rows, diffRow{family: family, name: name, old: old, cur: cur, drift: relDrift(old, cur), unit: "%"})
}

// servedRate is a cache's fraction of lookups answered without running
// (hits + single-flight waits + disk fills), in percent.
func servedRate(counts map[string]int) float64 {
	hit, wait, disk, miss := counts["hit"], counts["wait"], counts["disk"], counts["miss"]
	lookups := hit + wait + disk + miss
	if lookups == 0 {
		return 0
	}
	return 100 * float64(hit+wait+disk) / float64(lookups)
}

// spanShares maps span name -> its share of the trace's total span
// time, in percent.
func spanShares(s *traceSummary) map[string]float64 {
	var total int64
	for _, a := range s.byName {
		total += a.totalUS
	}
	shares := make(map[string]float64, len(s.byName))
	if total == 0 {
		return shares
	}
	for n, a := range s.byName {
		shares[n] = 100 * float64(a.totalUS) / float64(total)
	}
	return shares
}

// unionKeys returns the sorted union of two string-keyed maps' keys.
func unionKeys[A, B any](a map[string]A, b map[string]B) []string {
	seen := make(map[string]bool, len(a)+len(b))
	keys := make([]string, 0, len(a)+len(b))
	for k := range a {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// diffSummaries computes every comparison row across the two folds.
func diffSummaries(old, cur *traceSummary, noTiming bool) []diffRow {
	var rows []diffRow

	oldCounters := map[string]uint64{}
	if old.metrics != nil {
		oldCounters = old.metrics.Counters
	}
	curCounters := map[string]uint64{}
	if cur.metrics != nil {
		curCounters = cur.metrics.Counters
	}
	for _, name := range unionKeys(oldCounters, curCounters) {
		rows = addRel(rows, "counter", name, float64(oldCounters[name]), float64(curCounters[name]))
	}

	shOld, shCur := spanShares(old), spanShares(cur)
	for _, name := range unionKeys(old.byName, cur.byName) {
		var oc, cc int
		if a := old.byName[name]; a != nil {
			oc = a.count
		}
		if a := cur.byName[name]; a != nil {
			cc = a.count
		}
		rows = addRel(rows, "spans", name, float64(oc), float64(cc))
		if !noTiming {
			rows = append(rows, diffRow{
				family: "span-share", name: name,
				old: shOld[name], cur: shCur[name],
				drift: math.Abs(shCur[name] - shOld[name]), unit: "pp",
			})
		}
	}

	for _, c := range []struct {
		name     string
		old, cur map[string]int
	}{
		{"run-cache served-rate", old.execCache, cur.execCache},
		{"splice-cache served-rate", old.spliceCache, cur.spliceCache},
	} {
		ro, rc := servedRate(c.old), servedRate(c.cur)
		rows = append(rows, diffRow{
			family: "cache", name: c.name,
			old: ro, cur: rc, drift: math.Abs(rc - ro), unit: "pp",
		})
	}

	rows = addRel(rows, "traffic", "sim messages", float64(old.msgTotal), float64(cur.msgTotal))
	rows = addRel(rows, "traffic", "sim bytes", float64(old.byteTotal), float64(cur.byteTotal))
	return rows
}

// fmtDrift renders a drift value ("∞" for appear/vanish).
func fmtDrift(d float64, unit string) string {
	if math.IsInf(d, 1) {
		return "∞"
	}
	return fmt.Sprintf("%.2f%s", d, unit)
}

func cmdStatsDiff(oldPath, newPath string, threshold float64, noTiming bool, out io.Writer) int {
	old, err := foldTraceFile(oldPath)
	if err != nil {
		fmt.Fprintf(out, "stats: %v\n", err)
		return 1
	}
	cur, err := foldTraceFile(newPath)
	if err != nil {
		fmt.Fprintf(out, "stats: %v\n", err)
		return 1
	}
	rows := diffSummaries(old, cur, noTiming)
	var drifted []diffRow
	for _, r := range rows {
		if r.drift > threshold {
			drifted = append(drifted, r)
		}
	}
	fmt.Fprintf(out, "trace diff %s -> %s: %d series compared, threshold %.2f\n",
		oldPath, newPath, len(rows), threshold)
	if len(drifted) == 0 {
		fmt.Fprintln(out, "no drift beyond threshold")
		return 0
	}
	sort.SliceStable(drifted, func(i, j int) bool {
		if drifted[i].family != drifted[j].family {
			return drifted[i].family < drifted[j].family
		}
		return drifted[i].name < drifted[j].name
	})
	fmt.Fprintf(out, "\n  %-10s %-28s %14s %14s %10s\n", "family", "series", "old", "new", "drift")
	for _, r := range drifted {
		fmt.Fprintf(out, "  %-10s %-28s %14.2f %14.2f %10s\n",
			r.family, r.name, r.old, r.cur, fmtDrift(r.drift, r.unit))
	}
	fmt.Fprintf(out, "\nstats: %d series drifted beyond the %.2f threshold\n", len(drifted), threshold)
	return 3
}
