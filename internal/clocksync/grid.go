package clocksync

import (
	"fmt"

	"flm/internal/sweep"
)

// This file is the parallel grid evaluator for the Corollary 12-15
// sweeps: a grid is (parameter cases) x (device families), and every
// cell runs a full Theorem 8 ring argument. Cells are independent — each
// builds its own timed system from its Params and fresh devices — so the
// grid fans out through the sweep engine.

// GridCase is one parameter row of a corollary grid.
type GridCase struct {
	Name   string
	Params Params
}

// GridDevice is one device family evaluated at every grid case. Builders
// receives the case's Params so the family can adapt (e.g. use the
// case's lower envelope).
type GridDevice struct {
	Name     string
	Builders func(Params) map[string]Builder
}

// EvalGrid runs Theorem8 for every (case, device) cell in parallel and
// returns the results as out[caseIdx][deviceIdx], in the same order the
// cases and devices were given.
func EvalGrid(cases []GridCase, devices []GridDevice) ([][]*Result, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("clocksync: grid needs at least one device family")
	}
	flat, err := sweep.Map(len(cases)*len(devices), func(k int) (*Result, error) {
		c := cases[k/len(devices)]
		d := devices[k%len(devices)]
		r, err := Theorem8(c.Params, d.Builders(c.Params))
		if err != nil {
			return nil, fmt.Errorf("%s / %s: %w", c.Name, d.Name, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]*Result, len(cases))
	for i := range cases {
		out[i] = flat[i*len(devices) : (i+1)*len(devices)]
	}
	return out, nil
}

// TrivialLowerFamily is the no-communication lower-envelope device family
// on the triangle ring, for grid sweeps.
func TrivialLowerFamily() GridDevice {
	return GridDevice{Name: "trivial-lower", Builders: func(p Params) map[string]Builder {
		return map[string]Builder{
			"a": NewTrivialLower(p.L), "b": NewTrivialLower(p.L), "c": NewTrivialLower(p.L),
		}
	}}
}

// ChaseMaxFamily is the agreement-chasing device family on the triangle
// ring, for grid sweeps.
func ChaseMaxFamily() GridDevice {
	return GridDevice{Name: "chase-max", Builders: func(p Params) map[string]Builder {
		return map[string]Builder{
			"a": NewChaseMax(p.L), "b": NewChaseMax(p.L), "c": NewChaseMax(p.L),
		}
	}}
}
