package sim

import (
	"fmt"
	"sort"

	"flm/internal/graph"
)

// Scenario is the restriction of a system behavior to a subgraph: the
// node behaviors of the chosen nodes, the traffic on edges between them,
// and the traffic on the inedge border (what the rest of the system
// showed them). Two scenarios being equal (up to node renaming) is the
// conclusion of the paper's Locality axiom.
type Scenario struct {
	Nodes     []string                 // sorted node names
	Snapshots map[string][]string      // per node state sequence
	Decisions map[string]Decision      // per node decision
	Internal  map[graph.Edge][]Payload // edges with both endpoints inside
	Border    map[graph.Edge][]Payload // inedge border traffic
}

// Extract returns the scenario of the named nodes in the run. The run
// must have been produced with full recording (Execute, not fast-mode
// ExecuteWith): scenarios are made of snapshots and edge behaviors.
func Extract(run *Run, nodes []string) (*Scenario, error) {
	if run.Snapshots == nil || run.Edges == nil {
		return nil, fmt.Errorf("sim: cannot extract a scenario from a fast-mode run (no snapshots/edges recorded)")
	}
	idx := make([]int, 0, len(nodes))
	inSet := make(map[string]bool, len(nodes))
	for _, name := range nodes {
		u, ok := run.G.Index(name)
		if !ok {
			return nil, fmt.Errorf("sim: scenario node %q not in run", name)
		}
		if inSet[name] {
			return nil, fmt.Errorf("sim: scenario node %q listed twice", name)
		}
		inSet[name] = true
		idx = append(idx, u)
	}
	sc := &Scenario{
		Nodes:     append([]string(nil), nodes...),
		Snapshots: make(map[string][]string, len(nodes)),
		Decisions: make(map[string]Decision, len(nodes)),
		Internal:  make(map[graph.Edge][]Payload),
		Border:    make(map[graph.Edge][]Payload),
	}
	sort.Strings(sc.Nodes)
	for _, u := range idx {
		name := run.G.Name(u)
		sc.Snapshots[name] = append([]string(nil), run.Snapshots[u]...)
		sc.Decisions[name] = run.Decisions[u]
	}
	for e, seq := range run.Edges {
		switch {
		case inSet[e.From] && inSet[e.To]:
			sc.Internal[e] = append([]Payload(nil), seq...)
		case inSet[e.To]:
			sc.Border[e] = append([]Payload(nil), seq...)
		}
	}
	return sc, nil
}

// EqualUnder compares this scenario with another under a node renaming
// (rename maps this scenario's names to the other's). It checks node
// snapshot sequences, decisions, and internal edge traffic; border
// traffic is compared only when compareBorder is set (splice checks know
// the borders differ because the faulty senders differ in identity even
// though their exhibited payloads agree).
func (sc *Scenario) EqualUnder(other *Scenario, rename map[string]string, compareBorder bool) error {
	if len(sc.Nodes) != len(other.Nodes) {
		return fmt.Errorf("sim: scenario sizes differ: %d vs %d", len(sc.Nodes), len(other.Nodes))
	}
	mapped := func(name string) string {
		if to, ok := rename[name]; ok {
			return to
		}
		return name
	}
	for _, name := range sc.Nodes {
		target := mapped(name)
		otherSnaps, ok := other.Snapshots[target]
		if !ok {
			return fmt.Errorf("sim: node %s (as %s) missing from other scenario", name, target)
		}
		snaps := sc.Snapshots[name]
		if len(snaps) != len(otherSnaps) {
			return fmt.Errorf("sim: node %s snapshot length %d vs %d", name, len(snaps), len(otherSnaps))
		}
		for r := range snaps {
			if snaps[r] != otherSnaps[r] {
				return fmt.Errorf("sim: node %s diverges at round %d: %q vs %q",
					name, r, snaps[r], otherSnaps[r])
			}
		}
		if d, o := sc.Decisions[name], other.Decisions[target]; d != o {
			return fmt.Errorf("sim: node %s decisions differ: %+v vs %+v", name, d, o)
		}
	}
	for e, seq := range sc.Internal {
		te := graph.Edge{From: mapped(e.From), To: mapped(e.To)}
		otherSeq, ok := other.Internal[te]
		if !ok {
			return fmt.Errorf("sim: internal edge %v (as %v) missing", e, te)
		}
		if err := equalPayloads(seq, otherSeq); err != nil {
			return fmt.Errorf("sim: internal edge %v: %w", e, err)
		}
	}
	if compareBorder {
		if len(sc.Border) != len(other.Border) {
			return fmt.Errorf("sim: border sizes differ: %d vs %d", len(sc.Border), len(other.Border))
		}
		for e, seq := range sc.Border {
			te := graph.Edge{From: mapped(e.From), To: mapped(e.To)}
			otherSeq, ok := other.Border[te]
			if !ok {
				return fmt.Errorf("sim: border edge %v (as %v) missing", e, te)
			}
			if err := equalPayloads(seq, otherSeq); err != nil {
				return fmt.Errorf("sim: border edge %v: %w", e, err)
			}
		}
	}
	return nil
}

func equalPayloads(a, b []Payload) error {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	get := func(s []Payload, i int) Payload {
		if i < len(s) {
			return s[i]
		}
		return None
	}
	for i := 0; i < n; i++ {
		if get(a, i) != get(b, i) {
			return fmt.Errorf("payloads differ at round %d: %q vs %q", i, get(a, i), get(b, i))
		}
	}
	return nil
}

// PrefixEqual reports up to which round (exclusive) the snapshot
// sequences of the named nodes in the two runs agree; used to verify the
// paper's Lemma 3 (information propagates at most one edge per round).
func PrefixEqual(a *Run, aName string, b *Run, bName string) (int, error) {
	sa, err := a.SnapshotsOf(aName)
	if err != nil {
		return 0, err
	}
	sb, err := b.SnapshotsOf(bName)
	if err != nil {
		return 0, err
	}
	n := len(sa)
	if len(sb) < n {
		n = len(sb)
	}
	for r := 0; r < n; r++ {
		if sa[r] != sb[r] {
			return r, nil
		}
	}
	return n, nil
}
