package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flm"
	"flm/internal/obs"
	"flm/internal/sweep"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// normalizeTrace strips the nondeterministic fields of a trace —
// timestamps, durations, and the histogram sums/maxes derived from them
// — and re-marshals each record with sorted keys, so the remainder
// (span structure, names, attributes, counters) is byte-stable across
// runs and machines.
func normalizeTrace(t *testing.T, raw []byte) string {
	t.Helper()
	var b strings.Builder
	for i, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("trace line %d invalid: %q: %v", i+1, line, err)
		}
		delete(rec, "start_us")
		delete(rec, "dur_us")
		delete(rec, "at_us")
		if attrs, ok := rec["attrs"].(map[string]any); ok {
			// Worker utilization attrs are wall-clock readings.
			delete(attrs, "busy_us")
			delete(attrs, "idle_us")
		}
		if hists, ok := rec["hists"].(map[string]any); ok {
			counts := map[string]any{}
			for name, h := range hists {
				if hm, ok := h.(map[string]any); ok {
					counts[name] = hm["count"]
				}
			}
			rec["hists"] = counts
		}
		out, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("re-marshal line %d: %v", i+1, err)
		}
		b.Write(out)
		b.WriteByte('\n')
	}
	return b.String()
}

// traceE1 produces a deterministic E1 trace: run cache off (every
// execution is a real one, so the cache attrs are stable), one sweep
// worker, metrics reset so earlier tests in this package don't leak
// counter values into the final metrics line.
func traceE1(t *testing.T) []byte {
	t.Helper()
	prevWorkers := sweep.SetWorkers(1)
	t.Cleanup(func() { sweep.SetWorkers(prevWorkers) })
	restoreCache := flm.SetRunCacheEnabled(false)
	t.Cleanup(restoreCache)
	flm.ResetRunCaches()
	obs.Metrics.Reset()

	path := filepath.Join(t.TempDir(), "e1.jsonl")
	out, code := capture(t, "run", "-trace", path, "E1")
	if code != 0 {
		t.Fatalf("run -trace E1 exited %d:\n%s", code, out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	return raw
}

// TestTraceGoldenE1 pins the complete normalized trace of a small E1
// run: every span (execute, splice, chain link, experiment), its
// attributes, and the final metrics line. Regenerate intentionally with
// `go test ./cmd/flm -run TestTraceGoldenE1 -update` after changing the
// instrumentation.
func TestTraceGoldenE1(t *testing.T) {
	got := normalizeTrace(t, traceE1(t))
	golden := filepath.Join("testdata", "e1_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("normalized E1 trace diverges from %s (re-run with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// traceChaos produces a deterministic chaos trace: seed 1 over six
// trials on one worker yields five green trials and one expected
// violation, so the trace exercises the chaos surface end to end —
// per-trial outcome events, the shrink span, and the sweep.worker row.
func traceChaos(t *testing.T) []byte {
	t.Helper()
	prevWorkers := sweep.SetWorkers(1)
	t.Cleanup(func() { sweep.SetWorkers(prevWorkers) })
	restoreCache := flm.SetRunCacheEnabled(false)
	t.Cleanup(restoreCache)
	flm.ResetRunCaches()
	obs.Metrics.Reset()
	obs.ResetProgress()
	t.Cleanup(obs.ResetProgress)

	path := filepath.Join(t.TempDir(), "chaos.jsonl")
	out, code := capture(t, "chaos", "-trace", path, "-seed", "1", "-trials", "6", "-workers", "1")
	if code != 0 {
		t.Fatalf("chaos -trace exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "expected-violations=1") {
		t.Fatalf("fixture drifted: seed 1 x 6 trials should produce exactly one expected violation\n%s", out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	return raw
}

// TestTraceGoldenChaos pins the normalized trace of a small chaos run:
// the chaos.run/chaos.shrink spans, every chaos.trial outcome event and
// its attributes, the sweep.worker row, and the final metrics line
// (including the progress gauges, which must hold their deterministic
// final counts — elapsed/eta stay 0 since nothing snapshots them).
// Regenerate with `go test ./cmd/flm -run TestTraceGoldenChaos -update`.
func TestTraceGoldenChaos(t *testing.T) {
	got := normalizeTrace(t, traceChaos(t))
	golden := filepath.Join("testdata", "chaos_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("normalized chaos trace diverges from %s (re-run with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestTraceContainsCoreSpans is the acceptance check in test form: an E1
// trace must contain execute, splice, and chain-link spans, each
// execute/splice span carrying a cache attribute.
func TestTraceContainsCoreSpans(t *testing.T) {
	raw := traceE1(t)
	seen := map[string]int{}
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var rec struct {
			T     string         `json:"t"`
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("invalid line %q: %v", line, err)
		}
		seen[rec.Name]++
		if rec.Name == "sim.execute" || rec.Name == "core.splice" {
			if _, ok := rec.Attrs["cache"].(string); !ok {
				t.Errorf("%s span lacks a cache attribute: %v", rec.Name, rec.Attrs)
			}
		}
	}
	for _, name := range []string{"sim.execute", "core.splice", "core.chain.link", "flm.experiment"} {
		if seen[name] == 0 {
			t.Errorf("trace has no %q span", name)
		}
	}
}

// TestStatsCommand feeds a fresh E1 trace through flm stats and checks
// the rendered sections: cache hit-rate line, the no-sweep fallback (E1
// sweeps nothing), and the chain summary.
func TestStatsCommand(t *testing.T) {
	prevWorkers := sweep.SetWorkers(1)
	t.Cleanup(func() { sweep.SetWorkers(prevWorkers) })
	path := filepath.Join(t.TempDir(), "e1.jsonl")
	if out, code := capture(t, "run", "-trace", path, "E1"); code != 0 {
		t.Fatalf("run -trace E1 exited %d:\n%s", code, out)
	}
	out, code := capture(t, "stats", path)
	if code != 0 {
		t.Fatalf("stats exited %d:\n%s", code, out)
	}
	for _, want := range []string{
		"hit rate",
		"run cache",
		"splice cache",
		"no sweep activity",
		"contradiction chains",
		"sim.execute",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

// TestStatsErrors pins the failure modes: usage, missing file, garbage
// input, and an empty trace all exit nonzero.
func TestStatsErrors(t *testing.T) {
	if out, code := capture(t, "stats"); code != 2 || !strings.Contains(out, "usage") {
		t.Errorf("bare stats: exit %d, output %q", code, out)
	}
	if _, code := capture(t, "stats", filepath.Join(t.TempDir(), "absent.jsonl")); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := capture(t, "stats", bad); code != 1 || !strings.Contains(out, "line 1") {
		t.Errorf("garbage file: exit %d, output %q", code, out)
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := capture(t, "stats", empty); code != 1 || !strings.Contains(out, "no trace records") {
		t.Errorf("empty file: exit %d, output %q", code, out)
	}
}

// TestTraceEnvFallback checks the FLM_TRACE env var stands in for the
// -trace flag.
func TestTraceEnvFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "env.jsonl")
	t.Setenv(TraceEnv, path)
	if out, code := capture(t, "prove", "majority"); code != 0 {
		t.Fatalf("prove exited %d:\n%s", code, out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("FLM_TRACE file not written: %v", err)
	}
	if !bytes.Contains(raw, []byte(`"core.splice"`)) {
		t.Error("env-var trace lacks core.splice spans")
	}
}
