package eval

import (
	"fmt"
	"math/big"

	"flm/internal/approx"
	"flm/internal/byzantine"
	"flm/internal/clockfn"
	"flm/internal/clocksync"
	"flm/internal/core"
	"flm/internal/firingsquad"
	"flm/internal/graph"
	"flm/internal/sim"
	"flm/internal/weak"
)

func uniformBuilders(g *graph.Graph, b sim.Builder) map[string]sim.Builder {
	m := make(map[string]sim.Builder, g.N())
	for _, name := range g.Names() {
		m[name] = b
	}
	return m
}

// baDevicePanel is the standard panel of candidate Byzantine agreement
// devices the engine defeats, in a stable order.
func baDevicePanel(peers []string) []struct {
	Name    string
	Builder sim.Builder
} {
	return []struct {
		Name    string
		Builder sim.Builder
	}{
		{"majority", byzantine.NewMajority(2)},
		{"echo", byzantine.NewEcho(2)},
		{"own-input", byzantine.NewOwnInput(2)},
		{"const-0", byzantine.NewConstant("0", 2)},
		{"const-1", byzantine.NewConstant("1", 2)},
		{"eig", byzantine.NewEIG(1, peers)},
		{"phase-king", byzantine.NewPhaseKing(1, peers)},
		{"turpin-coan", byzantine.NewTurpinCoan(1, peers)},
	}
}

func chainRow(t *Table, device string, cr *core.ChainResult) {
	v := cr.Violations[0]
	t.AddRow(device, cr.CoverSize, len(cr.Violations), v.Link, v.Condition, v.Detail)
}

// RunE1 mechanizes the 3f+1 node bound (Theorem 1) against the device
// panel on the triangle, plus general-case partitions.
func RunE1() (*Result, error) {
	res := &Result{
		ID: "E1", Name: "Byzantine agreement needs 3f+1 nodes",
		Paper: "Theorem 1 (Section 3.1)",
		Summary: "Every candidate device installed on the hexagon covering of the triangle " +
			"is forced into a violated condition across the spliced behaviors E1,E2,E3.",
	}
	tri := graph.Triangle()
	t := &Table{
		Title:   "Triangle (n=3, f=1): per-device violated condition",
		Columns: []string{"device", "|S|", "violations", "link", "condition", "detail"},
	}
	for _, d := range baDevicePanel(tri.Names()) {
		cr, err := core.ByzantineTriangle(uniformBuilders(tri, d.Builder), d.Name, 8)
		if err != nil {
			return nil, err
		}
		chainRow(t, d.Name, cr)
	}
	res.Tables = append(res.Tables, t)

	gen := &Table{
		Title:   "General case (n <= 3f): EIG defeated via the partition covering",
		Columns: []string{"graph", "n", "f", "blocks", "|S|", "link", "condition"},
	}
	cases := []struct {
		g       *graph.Graph
		f       int
		a, b, c []int
		desc    string
	}{
		{graph.Complete(5), 2, []int{0, 1}, []int{2, 3}, []int{4}, "2+2+1"},
		{graph.Complete(6), 2, []int{0, 1}, []int{2, 3}, []int{4, 5}, "2+2+2"},
		{graph.Complete(9), 3, []int{0, 1, 2}, []int{3, 4, 5}, []int{6, 7, 8}, "3+3+3"},
	}
	for _, c := range cases {
		builder := byzantine.NewEIG(c.f, c.g.Names())
		cr, err := core.ByzantineNodes(c.g, c.f, c.a, c.b, c.c,
			uniformBuilders(c.g, builder), "eig", byzantine.EIGRounds(c.f)+2)
		if err != nil {
			return nil, err
		}
		v := cr.Violations[0]
		gen.AddRow(fmt.Sprintf("K%d", c.g.N()), c.g.N(), c.f, c.desc, cr.CoverSize, v.Link, v.Condition)
	}
	res.Tables = append(res.Tables, gen)
	return res, nil
}

// RunE2 mechanizes the 2f+1 connectivity bound (Theorem 1) on the diamond
// and a larger circulant.
func RunE2() (*Result, error) {
	res := &Result{
		ID: "E2", Name: "Byzantine agreement needs 2f+1 connectivity",
		Paper: "Theorem 1 (Section 3.2)",
		Summary: "Devices on the two-copy covering of a graph with a 2f-node cut are spliced " +
			"into S1,S2,S3; the cut set's two copies masquerade as one faulty set.",
	}
	dia := graph.Diamond()
	t := &Table{
		Title:   "Diamond (n=4, connectivity 2, f=1): per-device violated condition",
		Columns: []string{"device", "|S|", "violations", "link", "condition", "detail"},
	}
	panel := []struct {
		Name    string
		Builder sim.Builder
	}{
		{"majority", byzantine.NewMajority(3)},
		{"echo", byzantine.NewEcho(3)},
		{"own-input", byzantine.NewOwnInput(3)},
		{"const-0", byzantine.NewConstant("0", 3)},
	}
	for _, d := range panel {
		cr, err := core.ByzantineDiamond(uniformBuilders(dia, d.Builder), d.Name, 10)
		if err != nil {
			return nil, err
		}
		chainRow(t, d.Name, cr)
	}
	res.Tables = append(res.Tables, t)

	gen := &Table{
		Title:   "General case (connectivity <= 2f)",
		Columns: []string{"graph", "n", "conn", "f", "cut", "|S|", "link", "condition"},
	}
	type connCase struct {
		g      *graph.Graph
		f      int
		b, d   []int
		u, v   int
		name   string
		device sim.Builder
		rounds int
	}
	cases := []connCase{
		{graph.Ring(6), 1, []int{1}, []int{4}, 0, 2, "Ring(6)", byzantine.NewMajority(3), 10},
		{graph.Circulant(10, 1, 2), 2, []int{1, 9}, []int{2, 8}, 0, 5, "Circulant(10;1,2)",
			byzantine.NewEIG(2, graph.Circulant(10, 1, 2).Names()), byzantine.EIGRounds(2) + 4},
	}
	for _, c := range cases {
		cr, err := core.ByzantineConnectivity(c.g, c.f, c.b, c.d, c.u, c.v,
			uniformBuilders(c.g, c.device), c.name, c.rounds)
		if err != nil {
			return nil, err
		}
		v := cr.Violations[0]
		gen.AddRow(c.name, c.g.N(), c.g.VertexConnectivity(), c.f,
			fmt.Sprintf("%d+%d", len(c.b), len(c.d)), cr.CoverSize, v.Link, v.Condition)
	}
	res.Tables = append(res.Tables, gen)
	return res, nil
}

// RunE3 runs the weak agreement ring argument and plots the Lemma 3
// propagation structure.
func RunE3() (*Result, error) {
	res := &Result{
		ID: "E3", Name: "Weak agreement on the 4k-ring covering",
		Paper: "Theorem 2 + Lemma 3 (Section 4)",
		Summary: "Devices passing the fault-free unanimous runs are installed on the 4k-ring " +
			"(one semicircle input 1, the other 0); adjacent pairs splice into correct " +
			"one-fault behaviors whose agreement condition breaks where the arcs meet.",
	}
	tri := graph.Triangle()
	panel := []struct {
		Name    string
		Builder sim.Builder
	}{
		{"detect-default", weak.NewDetectDefault(3)},
		{"detect-slow", weak.NewDetectDefault(5)},
		{"via-eig", weak.NewViaBA(1, tri.Names())},
	}
	t := &Table{
		Title:   "Per-device outcome on the ring covering",
		Columns: []string{"device", "ring size", "violations", "link", "condition"},
	}
	var figureSource *core.ChainResult
	for _, d := range panel {
		cr, err := core.WeakAgreementRing(uniformBuilders(tri, d.Builder), d.Name, 16)
		if err != nil {
			return nil, err
		}
		v := cr.Violations[0]
		t.AddRow(d.Name, cr.CoverSize, len(cr.Violations), v.Link, v.Condition)
		if figureSource == nil {
			figureSource = cr
		}
	}
	res.Tables = append(res.Tables, t)

	// Lemma 3 figure: per ring node, the decision and the round at which
	// its behavior diverges from the matching unanimous base run.
	cr := figureSource
	m := cr.CoverSize
	k := m / 4
	cover := graph.RingCoverTriangle(m)
	base := map[string]*sim.Run{}
	for _, bit := range []string{"0", "1"} {
		p := sim.Protocol{Builders: uniformBuilders(tri, weak.NewDetectDefault(3)), Inputs: map[string]sim.Input{}}
		for _, n := range tri.Names() {
			p.Inputs[n] = sim.Input(bit)
		}
		sys, err := sim.NewSystem(tri, p)
		if err != nil {
			return nil, err
		}
		run, err := sim.Execute(sys, cr.RunS.Rounds)
		if err != nil {
			return nil, err
		}
		base[bit] = run
	}
	fig := &Series{
		Title:   fmt.Sprintf("Lemma 3 on the %d-ring (k=%d): decision and divergence round per node", m, k),
		XLabel:  "ring node",
		YLabels: []string{"decision", "diverges@round", "dist to boundary"},
	}
	for i := 0; i < m; i++ {
		arc := "0"
		if i < 2*k {
			arc = "1"
		}
		name := cover.S.Name(i)
		div, err := sim.PrefixEqual(cr.RunS, name, base[arc], cover.G.Name(cover.Phi[i]))
		if err != nil {
			return nil, err
		}
		d, _ := cr.RunS.DecisionOf(name)
		dec, _ := sim.DecodeReal(d.Value)
		// Distance to the nearest opposite-input node around the ring.
		var dist int
		if i < 2*k {
			dist = minInt(i+1, 2*k-i)
		} else {
			dist = minInt(i-2*k+1, m-i)
		}
		fig.X = append(fig.X, float64(i))
		appendY(fig, dec, float64(div), float64(dist))
	}
	fig.Notes = append(fig.Notes,
		"divergence round grows linearly with distance from the input boundary (Bounded-Delay axiom, δ = 1 round)")
	res.Figures = append(res.Figures, fig)

	// Connectivity half: the ring-of-copies covering of the diamond.
	conn := &Table{
		Title:   "Connectivity half (diamond, cut {b,d}, ring of copies)",
		Columns: []string{"device", "|S|", "violations", "first link", "condition"},
	}
	dia := graph.Diamond()
	for _, d := range []struct {
		Name    string
		Builder sim.Builder
	}{
		{"detect-default", weak.NewDetectDefault(4)},
		{"majority", byzantine.NewMajority(3)},
	} {
		cr, err := core.WeakAgreementCutRing(dia, 1, []int{1}, []int{3}, 0, 2,
			uniformBuilders(dia, d.Builder), d.Name, 20)
		if err != nil {
			return nil, err
		}
		v := cr.Violations[0]
		conn.AddRow(d.Name, cr.CoverSize, len(cr.Violations), v.Link, v.Condition)
	}
	res.Tables = append(res.Tables, conn)

	// General node bound: the ring-of-blocks covering of K6 with f=2.
	genTable := &Table{
		Title:   "General node bound (K6, f=2, blocks 2+2+2, ring of blocks)",
		Columns: []string{"device", "|S|", "violations", "first link", "condition"},
	}
	k6 := graph.Complete(6)
	for _, d := range []struct {
		Name    string
		Builder sim.Builder
	}{
		{"detect-default", weak.NewDetectDefault(3)},
		{"majority", byzantine.NewMajority(2)},
	} {
		cr, err := core.WeakAgreementNodesRing(k6, 2, []int{0, 1}, []int{2, 3}, []int{4, 5},
			uniformBuilders(k6, d.Builder), d.Name, 16)
		if err != nil {
			return nil, err
		}
		v := cr.Violations[0]
		genTable.AddRow(d.Name, cr.CoverSize, len(cr.Violations), v.Link, v.Condition)
	}
	res.Tables = append(res.Tables, genTable)
	return res, nil
}

func appendY(s *Series, ys ...float64) {
	if s.Y == nil {
		s.Y = make([][]float64, len(s.YLabels))
	}
	for i, y := range ys {
		s.Y[i] = append(s.Y[i], y)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RunE4 runs the firing squad ring argument and plots fire rounds around
// the ring.
func RunE4() (*Result, error) {
	res := &Result{
		ID: "E4", Name: "Byzantine firing squad on the 4k-ring covering",
		Paper: "Theorem 4 (Section 5)",
		Summary: "The stimulated semicircle fires on schedule, the quiet semicircle cannot " +
			"fire before round k, and some spliced adjacent pair breaks simultaneity.",
	}
	tri := graph.Triangle()
	panel := []struct {
		Name    string
		Builder sim.Builder
	}{
		{"countdown-2", firingsquad.NewCountdown(2)},
		{"countdown-4", firingsquad.NewCountdown(4)},
		{"via-eig", firingsquad.NewViaBA(1, tri.Names())},
	}
	t := &Table{
		Title:   "Per-device outcome on the ring covering",
		Columns: []string{"device", "ring size", "violations", "link", "condition"},
	}
	var src *core.ChainResult
	for _, d := range panel {
		cr, err := core.FiringSquadRing(uniformBuilders(tri, d.Builder), d.Name, 20)
		if err != nil {
			return nil, err
		}
		v := cr.Violations[0]
		t.AddRow(d.Name, cr.CoverSize, len(cr.Violations), v.Link, v.Condition)
		if src == nil {
			src = cr
		}
	}
	res.Tables = append(res.Tables, t)

	m := src.CoverSize
	cover := graph.RingCoverTriangle(m)
	fig := &Series{
		Title:   fmt.Sprintf("Fire round per ring node (%d-ring, stimulus on nodes 0..%d)", m, m/2-1),
		XLabel:  "ring node",
		YLabels: []string{"fire round (-1 = never)"},
	}
	for i := 0; i < m; i++ {
		d, _ := src.RunS.DecisionOf(cover.S.Name(i))
		fire := -1.0
		if d.Value == firingsquad.Fired {
			fire = float64(d.Round)
		}
		fig.X = append(fig.X, float64(i))
		appendY(fig, fire)
	}
	fig.Notes = append(fig.Notes, "non-constant fire rounds around the ring are exactly the broken simultaneity")
	res.Figures = append(res.Figures, fig)

	conn := &Table{
		Title:   "Connectivity half (diamond, cut {b,d}, ring of copies)",
		Columns: []string{"device", "|S|", "violations", "first link", "condition"},
	}
	dia := graph.Diamond()
	for _, d := range []struct {
		Name    string
		Builder sim.Builder
	}{
		{"countdown-2", firingsquad.NewCountdown(2)},
		{"countdown-5", firingsquad.NewCountdown(5)},
	} {
		cr, err := core.FiringSquadCutRing(dia, 1, []int{1}, []int{3}, 0, 2,
			uniformBuilders(dia, d.Builder), d.Name, 30)
		if err != nil {
			return nil, err
		}
		v := cr.Violations[0]
		conn.AddRow(d.Name, cr.CoverSize, len(cr.Violations), v.Link, v.Condition)
	}
	res.Tables = append(res.Tables, conn)

	genTable := &Table{
		Title:   "General node bound (K6, f=2, blocks 2+2+2, ring of blocks)",
		Columns: []string{"device", "|S|", "violations", "first link", "condition"},
	}
	k6 := graph.Complete(6)
	for _, d := range []struct {
		Name    string
		Builder sim.Builder
	}{
		{"countdown-2", firingsquad.NewCountdown(2)},
		{"via-eig", firingsquad.NewViaBA(2, k6.Names())},
	} {
		cr, err := core.FiringSquadNodesRing(k6, 2, []int{0, 1}, []int{2, 3}, []int{4, 5},
			uniformBuilders(k6, d.Builder), d.Name, 32)
		if err != nil {
			return nil, err
		}
		v := cr.Violations[0]
		genTable.AddRow(d.Name, cr.CoverSize, len(cr.Violations), v.Link, v.Condition)
	}
	res.Tables = append(res.Tables, genTable)
	return res, nil
}

// RunE5 mechanizes simple approximate agreement impossibility.
func RunE5() (*Result, error) {
	res := &Result{
		ID: "E5", Name: "Simple approximate agreement on the hexagon",
		Paper: "Theorem 5 (Section 6.1)",
		Summary: "Validity pins the two ends of the chain to 0 and 1, so the middle scenario's " +
			"outputs are no closer than its inputs — the strict contraction fails.",
	}
	tri := graph.Triangle()
	panel := []struct {
		Name    string
		Builder sim.Builder
	}{
		{"median", approx.NewMedian(2)},
		{"dlpsw-2", approx.NewDLPSW(1, tri.Names(), 2)},
		{"dlpsw-6", approx.NewDLPSW(1, tri.Names(), 6)},
		{"own-value", approx.NewMedian(0)},
	}
	t := &Table{
		Title:   "Per-device violated condition (triangle, f=1)",
		Columns: []string{"device", "|S|", "violations", "link", "condition", "detail"},
	}
	for _, d := range panel {
		cr, err := core.SimpleApproxTriangle(uniformBuilders(tri, d.Builder), d.Name, 12)
		if err != nil {
			return nil, err
		}
		chainRow(t, d.Name, cr)
	}
	res.Tables = append(res.Tables, t)

	conn := &Table{
		Title:   "Connectivity half (diamond, cut {b,d})",
		Columns: []string{"device", "|S|", "violations", "first link", "condition"},
	}
	dia := graph.Diamond()
	for _, d := range []struct {
		Name    string
		Builder sim.Builder
	}{
		{"median", approx.NewMedian(3)},
		{"dlpsw-4", approx.NewDLPSW(1, dia.Names(), 4)},
	} {
		cr, err := core.SimpleApproxConnectivity(dia, 1, []int{1}, []int{3}, 0, 2,
			uniformBuilders(dia, d.Builder), d.Name, 12)
		if err != nil {
			return nil, err
		}
		v := cr.Violations[0]
		conn.AddRow(d.Name, cr.CoverSize, len(cr.Violations), v.Link, v.Condition)
	}
	res.Tables = append(res.Tables, conn)
	return res, nil
}

// RunE6 runs the (ε,δ,γ) ring induction and plots measured choices
// against the Lemma 7 ceilings.
func RunE6() (*Result, error) {
	params := core.EDGParams{Eps: 0.2, Delta: 1, Gamma: 0.5}
	res := &Result{
		ID: "E6", Name: "(ε,δ,γ)-agreement induction on the (k+2)-ring",
		Paper: "Theorem 6 + Lemma 7 (Section 6.2)",
		Summary: fmt.Sprintf("ε=%v δ=%v γ=%v: validity in S0 caps node 1 at δ+γ, each agreement link adds ε, "+
			"and validity in S_k demands at least kδ-γ — jointly unsatisfiable.",
			params.Eps, params.Delta, params.Gamma),
	}
	tri := graph.Triangle()
	k, size, err := params.RingSize()
	if err != nil {
		return nil, err
	}
	panel := []struct {
		Name    string
		Builder sim.Builder
	}{
		{"median", approx.NewMedian(2)},
		{"dlpsw-4", approx.NewDLPSW(1, tri.Names(), 4)},
	}
	t := &Table{
		Title:   fmt.Sprintf("Per-device outcome (ring of %d, k=%d)", size, k),
		Columns: []string{"device", "violations", "first link", "condition", "detail"},
	}
	var src *core.ChainResult
	for _, d := range panel {
		cr, err := core.EpsilonDeltaGamma(params, uniformBuilders(tri, d.Builder), d.Name, 10)
		if err != nil {
			return nil, err
		}
		v := cr.Violations[0]
		t.AddRow(d.Name, len(cr.Violations), v.Link, v.Condition, v.Detail)
		if src == nil {
			src = cr
		}
	}
	res.Tables = append(res.Tables, t)

	ceilings, floor := core.Lemma7Bounds(params, k)
	fig := &Series{
		Title:   "Lemma 7: measured choices vs induction ceilings",
		XLabel:  "ring node i",
		YLabels: []string{"chosen value", "ceiling δ+γ+(i-1)ε", "floor at k (kδ-γ)"},
	}
	cover := graph.RingCoverTriangle(size)
	for i := 1; i <= k; i++ {
		d, _ := src.RunS.DecisionOf(cover.S.Name(i))
		val, _ := sim.DecodeReal(d.Value)
		fig.X = append(fig.X, float64(i))
		fl := 0.0
		if i == k {
			fl = floor
		}
		appendY(fig, val, ceilings[i], fl)
	}
	fig.Notes = append(fig.Notes, "the ceiling at node k falls below the floor, forcing a violation somewhere in the chain")
	res.Figures = append(res.Figures, fig)

	gen := &Table{
		Title:   "General node and connectivity cases",
		Columns: []string{"case", "graph", "f", "|S|", "violations", "first link"},
	}
	k6 := graph.Complete(6)
	crN, err := core.EpsilonDeltaGammaNodes(params, k6, 2, []int{0, 1}, []int{2, 3}, []int{4, 5},
		uniformBuilders(k6, approx.NewDLPSW(2, k6.Names(), 4)), "dlpsw", 10)
	if err != nil {
		return nil, err
	}
	gen.AddRow("nodes (blocks 2+2+2)", "K6", 2, crN.CoverSize, len(crN.Violations),
		fmt.Sprintf("%s %s", crN.Violations[0].Link, crN.Violations[0].Condition))
	dia := graph.Diamond()
	crC, err := core.EpsilonDeltaGammaConnectivity(params, dia, 1, []int{1}, []int{3}, 0, 2,
		uniformBuilders(dia, approx.NewMedian(2)), "median", 10)
	if err != nil {
		return nil, err
	}
	gen.AddRow("connectivity (cut {b,d})", "Diamond", 1, crC.CoverSize, len(crC.Violations),
		fmt.Sprintf("%s %s", crC.Violations[0].Link, crC.Violations[0].Condition))
	res.Tables = append(res.Tables, gen)
	return res, nil
}

// RunE7 runs the Theorem 8 clock ring for the device panel and plots
// logical clocks against the Lemma 11 ceilings.
func RunE7() (*Result, error) {
	params := clocksync.Params{
		P:      clockfn.RatIdentity(),
		Q:      clockfn.NewRatLinear(3, 2, 0, 1),
		L:      clockfn.Linear{Rate: 1, Off: 0},
		U:      clockfn.Linear{Rate: 1, Off: 4},
		Alpha:  1.5,
		TPrime: big.NewRat(4, 1),
		Delta:  big.NewRat(1, 2),
	}
	res := &Result{
		ID: "E7", Name: "Clock synchronization on the scaled ring",
		Paper: "Theorem 8 + Lemmas 9-11 (Section 7)",
		Summary: "Hardware clocks q·h⁻ⁱ make each node fast relative to one neighbor and slow " +
			"relative to the other; agreement with the faster neighbor forces the slow end " +
			"through the upper envelope. The Lemma 9 self-check replays scaled scenarios as " +
			"real triangle runs with a scripted faulty node.",
	}
	panel := []struct {
		Name    string
		Builder clocksync.Builder
	}{
		{"trivial-lower", clocksync.NewTrivialLower(params.L)},
		{"chase-max", clocksync.NewChaseMax(params.L)},
		{"midpoint", clocksync.NewMidpoint(params.L)},
	}
	t := &Table{
		Title:   "Per-device outcome (p=t, q=1.5t, l=t, u=t+4, α=1.5, t'=4)",
		Columns: []string{"device", "k", "violations", "first scenario", "condition"},
	}
	builders := func(b clocksync.Builder) map[string]clocksync.Builder {
		return map[string]clocksync.Builder{"a": b, "b": b, "c": b}
	}
	var chase *clocksync.Result
	for _, d := range panel {
		r, err := clocksync.Theorem8(params, builders(d.Builder))
		if err != nil {
			return nil, err
		}
		v := r.Violations[0]
		t.AddRow(d.Name, r.K, len(r.Violations), v.Scenario, v.Condition)
		if d.Name == "chase-max" {
			chase = r
		}
	}
	res.Tables = append(res.Tables, t)

	fig := &Series{
		Title:   "Lemma 11 (chase-max device): logical clocks at t'' vs induction floors",
		XLabel:  "ring node i",
		YLabels: []string{"C_i(t'')", "Lemma 11 floor"},
	}
	for i, c := range chase.Logical {
		fig.X = append(fig.X, float64(i))
		floor := 0.0
		if i >= 1 && i < len(chase.Floors) {
			floor = chase.Floors[i]
		}
		appendY(fig, c, floor)
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf("t'' = h^k(t') with k=%d; the last node's logical clock escapes the envelope", chase.K))
	res.Figures = append(res.Figures, fig)

	gen := &Table{
		Title:   "General node and connectivity cases (chase-max devices)",
		Columns: []string{"case", "graph", "f", "ring", "violations", "first scenario"},
	}
	k6 := graph.Complete(6)
	buildersK6 := map[string]clocksync.Builder{}
	for _, name := range k6.Names() {
		buildersK6[name] = clocksync.NewChaseMax(params.L)
	}
	genN, err := clocksync.Theorem8Nodes(params, k6, []int{0, 1}, []int{2, 3}, []int{4, 5}, 2, buildersK6)
	if err != nil {
		return nil, err
	}
	gen.AddRow("nodes (blocks 2+2+2)", "K6", 2, genN.K+2, len(genN.Violations),
		genN.Violations[0].Scenario+" "+genN.Violations[0].Condition)
	dia := graph.Diamond()
	buildersDia := map[string]clocksync.Builder{}
	for _, name := range dia.Names() {
		buildersDia[name] = clocksync.NewChaseMax(params.L)
	}
	genC, err := clocksync.Theorem8Connectivity(params, dia, []int{1}, []int{3}, 0, 2, 1, buildersDia)
	if err != nil {
		return nil, err
	}
	gen.AddRow("connectivity (cut {b,d})", "Diamond", 1, genC.K+2, len(genC.Violations),
		genC.Violations[0].Scenario+" "+genC.Violations[0].Condition)
	res.Tables = append(res.Tables, gen)
	return res, nil
}

// RunE8 instantiates the corollaries and reports the trivially-achievable
// synchronization constants.
func RunE8() (*Result, error) {
	res := &Result{
		ID: "E8", Name: "Clock corollaries: best possible sync constants",
		Paper: "Corollaries 12-15 (Section 7.1)",
		Summary: "The lower-envelope device achieves exactly l(q(t))-l(p(t)) with no " +
			"communication; claiming any constant α better is defeated by the engine.",
	}
	tPrime := big.NewRat(4, 1)
	cases := []clocksync.GridCase{
		{Name: "Cor 12 (linear envelope)", Params: clocksync.Corollary12(3, 2, 1, 0, 1, 4, 1.5, tPrime)},
		{Name: "Cor 13 (rate r=3/2, l=t)", Params: clocksync.Corollary13(3, 2, 1, 0, 1.5, tPrime)},
		{Name: "Cor 14 (offset c=2, l=t)", Params: clocksync.Corollary14(2, 1, 1, 0, 1, tPrime)},
		{Name: "Cor 15 (rate r=4, l=log2)", Params: clocksync.Corollary15(4, 1, 2.5, big.NewRat(8, 1))},
	}
	trivialForm := []string{"0.5t", "0.5t (= art-at)", "2 (= ac)", "2 (= log2 r)"} // closed forms of l(q(t))-l(p(t))
	t := &Table{
		Title:   "Per-corollary outcome against the trivial and chasing devices",
		Columns: []string{"corollary", "trivial gap", "gap@t'", "k", "trivial violations", "chase violations"},
	}
	grid, err := clocksync.EvalGrid(cases,
		[]clocksync.GridDevice{clocksync.TrivialLowerFamily(), clocksync.ChaseMaxFamily()})
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		tp, _ := c.Params.TPrime.Float64()
		triv, chase := grid[i][0], grid[i][1]
		t.AddRow(c.Name, trivialForm[i], c.Params.TrivialGap(tp), triv.K, len(triv.Violations), len(chase.Violations))
	}
	res.Tables = append(res.Tables, t)

	// Adequate-side context: on K4 (f=1, which Theorem 8 does NOT cover)
	// the trimmed-midpoint device beats the trivial gap despite a
	// scripted clock liar.
	params := clocksync.Params{
		P:      clockfn.RatIdentity(),
		Q:      clockfn.NewRatLinear(3, 2, 0, 1),
		L:      clockfn.Linear{Rate: 1},
		U:      clockfn.Linear{Rate: 1, Off: 4},
		Alpha:  1,
		TPrime: big.NewRat(4, 1),
		Delta:  big.NewRat(1, 2),
	}
	k4 := graph.Complete(4)
	clocks := []clockfn.RatLinear{
		clockfn.RatIdentity(),            // slow
		clockfn.NewRatLinear(3, 2, 0, 1), // fast
		clockfn.NewRatLinear(5, 4, 1, 4), // in between, offset
		clockfn.RatIdentity(),            // the liar's (irrelevant)
	}
	buildersK4 := map[string]clocksync.Builder{}
	for _, name := range k4.Names() {
		buildersK4[name] = clocksync.NewTrimmedMidpoint(params.L, 1)
	}
	samples, err := clocksync.MeasureAdequateSync(params, k4, clocks, buildersK4, "p3",
		clocksync.ClockLiarScript(k4, "p3", 64),
		[]*big.Rat{big.NewRat(8, 1), big.NewRat(32, 1), big.NewRat(64, 1)})
	if err != nil {
		return nil, err
	}
	adequate := &Table{
		Title:   "Adequate-side context: trimmed-midpoint sync on K4 (f=1, one clock liar)",
		Columns: []string{"t", "measured gap", "trivial gap l(q)-l(p)"},
	}
	for _, s := range samples {
		adequate.AddRow(s.T, s.MeasuredGap, s.TrivialGap)
	}
	adequate.Notes = append(adequate.Notes,
		"beating the trivial gap is only impossible on INADEQUATE graphs; K4 with f=1 is adequate and the bound does not apply")
	res.Tables = append(res.Tables, adequate)
	return res, nil
}
