package byzantine

import (
	"testing"
	"testing/quick"

	"flm/internal/adversary"
	"flm/internal/graph"
	"flm/internal/sim"
)

var mvValues = []string{"red", "green", "blue"}

func mvInputs(g *graph.Graph, digits int) map[string]sim.Input {
	inputs := make(map[string]sim.Input, g.N())
	for i, name := range g.Names() {
		inputs[name] = sim.Input(mvValues[(digits/pow3(i))%3])
	}
	return inputs
}

func pow3(i int) int {
	p := 1
	for ; i > 0; i-- {
		p *= 3
	}
	return p
}

func TestTurpinCoanNoFaults(t *testing.T) {
	g := graph.Complete(4)
	honest := NewTurpinCoan(1, g.Names())
	for digits := 0; digits < 81; digits++ {
		trial := Trial{
			G:      g,
			Inputs: mvInputs(g, digits),
			Honest: honest,
			Rounds: TurpinCoanRounds(1),
		}
		_, _, rep, err := trial.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Errorf("digits=%d: %v", digits, rep.Err())
		}
	}
}

func TestTurpinCoanUnanimousValidity(t *testing.T) {
	g := graph.Complete(7)
	honest := NewTurpinCoan(2, g.Names())
	for _, v := range mvValues {
		inputs := map[string]sim.Input{}
		for _, name := range g.Names() {
			inputs[name] = sim.Input(v)
		}
		trial := Trial{G: g, Inputs: inputs, Honest: honest, Rounds: TurpinCoanRounds(2)}
		run, correct, rep, err := trial.Run()
		if err != nil || !rep.OK() {
			t.Fatalf("v=%s: rep=%v err=%v", v, rep, err)
		}
		for _, name := range correct {
			d, _ := run.DecisionOf(name)
			if d.Value != v {
				t.Errorf("v=%s: %s decided %s", v, name, d.Value)
			}
		}
	}
}

func TestTurpinCoanOneFaultPanel(t *testing.T) {
	g := graph.Complete(4)
	honest := NewTurpinCoan(1, g.Names())
	for _, digits := range []int{0, 40, 80, 13, 67} {
		for _, badNode := range g.Names() {
			for _, strat := range adversary.Panel(41) {
				trial := Trial{
					G:      g,
					Inputs: mvInputs(g, digits),
					Honest: honest,
					Faulty: map[string]sim.Builder{badNode: strat.Corrupt(honest)},
					Rounds: TurpinCoanRounds(1),
				}
				_, _, rep, err := trial.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !rep.OK() {
					t.Errorf("digits=%d bad=%s strat=%s: %v", digits, badNode, strat.Name, rep.Err())
				}
			}
		}
	}
}

// A targeted multivalued equivocator: claims a different color to each
// audience.
func TestTurpinCoanValueEquivocation(t *testing.T) {
	g := graph.Complete(4)
	honest := NewTurpinCoan(1, g.Names())
	equiv := adversary.Equivocate(honest, sim.Input("red"), sim.Input("blue"),
		func(nb string) bool { return nb < "p2" })
	// Three honest nodes unanimous on green: validity must force green
	// despite the two-faced fault.
	inputs := map[string]sim.Input{
		"p0": "green", "p1": "green", "p2": "green", "p3": "red",
	}
	trial := Trial{
		G: g, Inputs: inputs, Honest: honest,
		Faulty: map[string]sim.Builder{"p3": equiv},
		Rounds: TurpinCoanRounds(1),
	}
	run, correct, rep, err := trial.Run()
	if err != nil || !rep.OK() {
		t.Fatalf("rep=%v err=%v", rep, err)
	}
	for _, name := range correct {
		d, _ := run.DecisionOf(name)
		if d.Value != "green" {
			t.Errorf("%s decided %s, want green", name, d.Value)
		}
	}
}

func TestTurpinCoanTwoFaults(t *testing.T) {
	g := graph.Complete(7)
	honest := NewTurpinCoan(2, g.Names())
	strategies := adversary.Panel(43)
	for _, digits := range []int{0, 1093, 728} {
		for si, s1 := range strategies {
			s2 := strategies[(si+4)%len(strategies)]
			trial := Trial{
				G:      g,
				Inputs: mvInputs(g, digits),
				Honest: honest,
				Faulty: map[string]sim.Builder{
					"p0": s1.Corrupt(honest),
					"p6": s2.Corrupt(honest),
				},
				Rounds: TurpinCoanRounds(2),
			}
			_, _, rep, err := trial.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Errorf("digits=%d strats=%s/%s: %v", digits, s1.Name, s2.Name, rep.Err())
			}
		}
	}
}

func TestTurpinCoanSanitizesHostileValues(t *testing.T) {
	g := graph.Complete(4)
	honest := NewTurpinCoan(1, g.Names())
	inputs := map[string]sim.Input{
		"p0": "ok-value", "p1": "ok-value", "p2": "ok-value",
		"p3": "bad;value=with/delims",
	}
	trial := Trial{G: g, Inputs: inputs, Honest: honest, Rounds: TurpinCoanRounds(1)}
	run, correct, rep, err := trial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Termination != nil || rep.Agreement != nil {
		t.Fatalf("hostile input broke the run: %v", rep.Err())
	}
	// p3's hostile input degraded to the default; the other three agree
	// on their common value.
	for _, name := range correct[:3] {
		d, _ := run.DecisionOf(name)
		if d.Value != "ok-value" && name != "p3" {
			t.Errorf("%s decided %q", name, d.Value)
		}
	}
}

// Property: decisions are always either the default or some correct
// node's input (no invented values), under random panel attacks.
func TestTurpinCoanNoInventedValues(t *testing.T) {
	g := graph.Complete(4)
	honest := NewTurpinCoan(1, g.Names())
	prop := func(digits uint16, badIdx, stratIdx uint8, seed int64) bool {
		strategies := adversary.Panel(seed)
		bad := g.Names()[int(badIdx)%g.N()]
		strat := strategies[int(stratIdx)%len(strategies)]
		inputs := mvInputs(g, int(digits)%81)
		trial := Trial{
			G: g, Inputs: inputs, Honest: honest,
			Faulty: map[string]sim.Builder{bad: strat.Corrupt(honest)},
			Rounds: TurpinCoanRounds(1),
		}
		run, correct, rep, err := trial.Run()
		if err != nil || !rep.OK() {
			return false
		}
		allowed := map[string]bool{DefaultValue: true, "1": true}
		for _, name := range correct {
			allowed[string(inputs[name])] = true
		}
		for _, name := range correct {
			d, _ := run.DecisionOf(name)
			if !allowed[d.Value] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
