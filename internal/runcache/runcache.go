// Package runcache is a process-wide, content-addressed memoization
// layer for deterministic executions. The impossibility engine replays
// near-identical scenarios hundreds of times — every chain link
// re-executes a covering-graph run, every sweep trial re-runs the same
// device panel — and because devices are deterministic, a run is fully
// determined by a canonical fingerprint of its inputs. The cache maps
// such fingerprints to the (immutable) results so identical executions
// happen once and are shared thereafter.
//
// Concurrency contract: Do is single-flight per key. Under parallel
// sweeps (FLM_WORKERS > 1) concurrent callers with the same fingerprint
// block on one in-flight computation instead of duplicating it, and the
// result is published race-cleanly via a channel close. Errors are never
// cached: every waiter of the failing flight receives the error (and any
// partial value), then the entry is discarded so a later call retries —
// partial runs stay diagnosable exactly as in the uncached engine.
//
// Enablement: the cache is on by default and can be disabled for
// debugging with FLM_RUNCACHE=off (or 0/false/no), or programmatically
// with SetEnabled. Callers must check Enabled before consulting a cache;
// disabling therefore bypasses lookups without invalidating entries.
package runcache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time view of a cache's effectiveness counters.
type Stats struct {
	Hits    uint64 // lookups served from a finished or in-flight entry
	Misses  uint64 // lookups that started a computation
	Waits   uint64 // hits that blocked on a still-in-flight computation
	Entries int    // completed entries currently retained
}

// Since returns the counter deltas accumulated after prev was taken —
// the per-command (or per-experiment) view of a cache whose counters are
// process-global and monotonically growing. Entries is not a counter;
// the current retention level is reported unchanged.
func (s Stats) Since(prev Stats) Stats {
	return Stats{
		Hits:    s.Hits - prev.Hits,
		Misses:  s.Misses - prev.Misses,
		Waits:   s.Waits - prev.Waits,
		Entries: s.Entries,
	}
}

// HitRate is hits over lookups, in [0,1]; 0 with no lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one flight: done is closed exactly once, after val/err are
// set, which is the happens-before edge that publishes them to waiters.
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a single-flight memoization table keyed by canonical
// fingerprints. The zero value is not usable; use New.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	hits    atomic.Uint64
	misses  atomic.Uint64
	waits   atomic.Uint64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[string]*entry)}
}

// Do returns the value cached under key, computing it with compute on
// first use. Concurrent callers with the same key share one in-flight
// computation. A compute that errors (or panics) is handed to every
// waiter of that flight and then forgotten, so errors are never served
// from cache. The cached value is shared by all callers and must be
// treated as immutable.
func (c *Cache) Do(key string, compute func() (any, error)) (any, error) {
	v, _, _, err := c.DoObserved(key, compute)
	return v, err
}

// DoObserved is Do, additionally reporting how the lookup was served:
// hit is true when the value came from an existing entry (finished or in
// flight), and waited is true for the in-flight case, where this caller
// blocked on another caller's computation (the single-flight wait). The
// observability layer uses the distinction to attribute cache behavior
// per execution; Stats aggregates the same three outcomes process-wide.
func (c *Cache) DoObserved(key string, compute func() (any, error)) (v any, hit, waited bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		select {
		case <-e.done:
		default:
			waited = true
			c.waits.Add(1)
			<-e.done
		}
		return e.val, true, waited, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	finished := false
	defer func() {
		if !finished || e.err != nil {
			c.mu.Lock()
			if cur, ok := c.entries[key]; ok && cur == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
		}
		close(e.done)
	}()
	e.val, e.err = compute()
	finished = true
	return e.val, false, false, e.err
}

// Stats returns the current counters. Entries counts retained entries,
// including any still in flight.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Waits: c.waits.Load(), Entries: n}
}

// Reset drops all entries and zeroes the counters. In-flight
// computations finish normally but their results are not retained.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = make(map[string]*entry)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.waits.Store(0)
}

// override is the SetEnabled state: 0 defer to env, 1 force on, 2 force
// off.
var override atomic.Int32

var envOnce sync.Once
var envDefault bool

func envEnabled() bool {
	envOnce.Do(func() {
		switch strings.ToLower(os.Getenv("FLM_RUNCACHE")) {
		case "0", "off", "false", "no":
			envDefault = false
		default:
			envDefault = true
		}
	})
	return envDefault
}

// Enabled reports whether caches should be consulted: a SetEnabled
// override if present, otherwise the FLM_RUNCACHE environment default
// (on unless set to 0/off/false/no).
func Enabled() bool {
	switch override.Load() {
	case 1:
		return true
	case 2:
		return false
	}
	return envEnabled()
}

// SetEnabled overrides the environment default and returns a function
// restoring the previous state, for defer-style use in tests and the
// CLI.
func SetEnabled(on bool) (restore func()) {
	prev := override.Load()
	if on {
		override.Store(1)
	} else {
		override.Store(2)
	}
	return func() { override.Store(prev) }
}

// Hasher builds collision-resistant cache keys from canonical field
// sequences. Every field is length-delimited before hashing, so two
// different field sequences can never produce the same byte stream; the
// sha256 digest then makes accidental key collisions negligible — which
// matters, because a colliding key would silently substitute one run
// for another.
type Hasher struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
}

// NewHasher starts a key with a domain-separation tag (e.g.
// "sim.run/v1"); bump the version when the keyed content changes shape.
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Field(domain)
	return h
}

// Field appends one length-delimited string field.
func (h *Hasher) Field(s string) {
	n := binary.PutUvarint(h.buf[:], uint64(len(s)))
	h.h.Write(h.buf[:n])
	io.WriteString(h.h, s)
}

// Int appends one integer field.
func (h *Hasher) Int(v int) { h.Field(strconv.Itoa(v)) }

// Sum returns the finished key.
func (h *Hasher) Sum() string { return string(h.h.Sum(nil)) }
