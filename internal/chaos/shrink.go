package chaos

import (
	"flm/internal/obs"
	"flm/internal/sim"
)

// Shrinking: a violating schedule found by the randomized generator may
// carry faulty actions that contribute nothing to the violation (and, at
// f = 2, more faulty nodes than necessary). Shrink applies greedy
// delta-debugging over the action list, the strategy lattice, and the
// delay-rule list until the schedule is 1-minimal: removing any
// remaining action or delay rule, or weakening any remaining strategy,
// loses the violation.

// weakerThan orders strategies by attack power for shrinking purposes:
// every strategy may be weakened to silence (pure omission), and crash is
// the halfway point for the wrapping strategies. The shrunk
// counterexample then uses the least Byzantine behavior that still
// breaks the condition. "dead" (initially-dead) is already the weakest
// fault of its family and has no entry.
var weakerThan = map[string][]string{
	"crash":      {"silent"},
	"omit":       {"silent"},
	"noise":      {"silent"},
	"equivocate": {"crash", "silent"},
	"mirror":     {"silent"},
	"replay":     {"silent"},
}

// violates re-runs a candidate and reports whether it still breaks a
// correctness condition (engine faults do not count: a shrink step that
// turns a violation into a crash is rejected).
func violates(s Schedule) bool {
	if obs.Enabled() {
		mShrinkEvals.Inc()
	}
	o := RunSchedule(s)
	return o.Violation != nil && o.EngineErr == nil
}

// Shrink minimizes a violating schedule. It returns the minimal
// schedule and true, or the input and false when the schedule does not
// actually violate (nothing to shrink). The result always still
// violates, and has at most as many faulty actions as the input —
// that count is the harness's reported upper bound on the
// counterexample size.
func Shrink(s Schedule) (Schedule, bool) {
	if !violates(s) {
		return s, false
	}
	cur := s
	for changed := true; changed; {
		changed = false
		// Pass 1: drop whole actions (restore the node to honesty).
		for i := 0; i < len(cur.Actions); i++ {
			cand := cur
			cand.Actions = append(append([]Action(nil), cur.Actions[:i]...), cur.Actions[i+1:]...)
			if violates(cand) {
				cur = cand
				changed = true
				break
			}
		}
		if changed {
			continue
		}
		// Pass 2: weaken strategies in place.
		for i := 0; i < len(cur.Actions) && !changed; i++ {
			for _, weaker := range weakerThan[cur.Actions[i].Strategy] {
				cand := cur
				cand.Actions = append([]Action(nil), cur.Actions...)
				cand.Actions[i].Strategy = weaker
				if violates(cand) {
					cur = cand
					changed = true
					break
				}
			}
		}
		if changed {
			continue
		}
		// Pass 3: drop delay rules. Seeded schedules carry hundreds of
		// rules, so removal runs coarse-to-fine (halves, then quarters,
		// ... then singles) instead of one-at-a-time; the chunk size
		// only shrinks when no window of that size can be removed, so
		// the pass still terminates at 1-minimality: when it finishes,
		// no single remaining rule can be dropped.
		if dropped, ok := shrinkDelayRules(cur); ok {
			cur = dropped
			changed = true
			continue
		}
		// Pass 4: weaken surviving delay rules toward synchrony by
		// decrementing their extra delay.
		for i := 0; i < len(cur.Delays) && !changed; i++ {
			for extra := cur.Delays[i].Extra - 1; extra >= 1; extra-- {
				cand := cur
				cand.Delays = append([]sim.DelayRule(nil), cur.Delays...)
				cand.Delays[i].Extra = extra
				if violates(cand) {
					cur = cand
					changed = true
					break
				}
			}
		}
	}
	return cur, true
}

// shrinkDelayRules removes every delay rule not needed for the
// violation, ddmin-style. It reports ok=false when nothing could be
// removed.
func shrinkDelayRules(s Schedule) (Schedule, bool) {
	if len(s.Delays) == 0 {
		return s, false
	}
	cur := s
	removedAny := false
	for chunk := len(cur.Delays); chunk >= 1; {
		if chunk > len(cur.Delays) {
			chunk = len(cur.Delays)
		}
		progressed := false
		for start := 0; start < len(cur.Delays); {
			end := start + chunk
			if end > len(cur.Delays) {
				end = len(cur.Delays)
			}
			cand := cur
			cand.Delays = append(append([]sim.DelayRule(nil), cur.Delays[:start]...), cur.Delays[end:]...)
			if violates(cand) {
				cur = cand
				removedAny = true
				progressed = true
				// Same start now addresses the next window.
			} else {
				start = end
			}
		}
		if !progressed {
			chunk /= 2
		}
	}
	return cur, removedAny
}
