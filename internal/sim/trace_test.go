package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"testing"

	"flm/internal/graph"
	"flm/internal/obs"
	"flm/internal/runcache"
)

// traceSystem builds a small gossip system for the obs tests.
func traceSystem(t testing.TB) *System {
	t.Helper()
	g := graph.Complete(4)
	inputs := map[string]Input{}
	for i, name := range g.Names() {
		inputs[name] = Input(EncodeInt(i))
	}
	sys, err := NewSystem(g, gossipProtocol(g, 2, inputs))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

// TestExecuteTracedMatchesUntraced pins the traced twin to the plain
// path: the same system executed with and without a tracer installed
// must record byte-identical runs (tracing observes, never perturbs).
func TestExecuteTracedMatchesUntraced(t *testing.T) {
	restoreCache := runcache.SetEnabled(false)
	defer restoreCache()

	plain, err := ExecuteCtx(context.Background(), traceSystem(t), 3, FullRecording)
	if err != nil {
		t.Fatalf("untraced execute: %v", err)
	}
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	restore := obs.SetTracer(tr)
	traced, err := ExecuteCtx(context.Background(), traceSystem(t), 3, FullRecording)
	restore()
	if err != nil {
		t.Fatalf("traced execute: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("tracer close: %v", err)
	}
	if got, want := encodeRun(traced), encodeRun(plain); got != want {
		t.Fatalf("traced run differs from untraced run:\ntraced:\n%s\nuntraced:\n%s", got, want)
	}
	// The trace must contain the sim.execute span with its cache attr.
	var seen bool
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("invalid trace line %q: %v", line, err)
		}
		if rec["name"] == "sim.execute" {
			seen = true
			attrs, _ := rec["attrs"].(map[string]any)
			if attrs["cache"] != "bypass" {
				t.Errorf("cache attr = %v, want bypass (run cache disabled)", attrs["cache"])
			}
		}
	}
	if !seen {
		t.Fatal("trace has no sim.execute span")
	}
}

// TestObsDisabledGuardZeroAlloc pins the disabled-path contract at the
// dispatch site: with no tracer installed, the branch ExecuteCtx takes
// before any instrumentation work is a single atomic load, and the
// guard itself never allocates.
func TestObsDisabledGuardZeroAlloc(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("a tracer is installed; disabled-path test is meaningless")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if obs.Enabled() {
			t.Error("tracer appeared mid-test")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled guard allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkObsDisabled is the zero-overhead-when-disabled benchmark the
// bench suite's micro:obs-disabled entry mirrors: ExecuteCtx with no
// tracer installed, run cache off so every iteration exercises the full
// executor rather than a memoized hit. Compare against
// BenchmarkObsEnabled to see what a live tracer costs.
func BenchmarkObsDisabled(b *testing.B) {
	restoreCache := runcache.SetEnabled(false)
	defer restoreCache()
	sys := traceSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteCtx(context.Background(), sys, 3, FullRecording); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsEnabled is the same workload with a tracer draining to
// io.Discard: the measured delta vs BenchmarkObsDisabled is the whole
// cost of span assembly and JSONL encoding on this path.
func BenchmarkObsEnabled(b *testing.B) {
	restoreCache := runcache.SetEnabled(false)
	defer restoreCache()
	tr := obs.NewTracer(io.Discard)
	restore := obs.SetTracer(tr)
	defer restore()
	sys := traceSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteCtx(context.Background(), sys, 3, FullRecording); err != nil {
			b.Fatal(err)
		}
	}
}
