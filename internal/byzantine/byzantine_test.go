package byzantine

import (
	"fmt"
	"testing"
	"testing/quick"

	"flm/internal/adversary"
	"flm/internal/graph"
	"flm/internal/sim"
)

func boolInputs(g *graph.Graph, bits int) map[string]sim.Input {
	inputs := make(map[string]sim.Input, g.N())
	for i, name := range g.Names() {
		inputs[name] = sim.BoolInput(bits&(1<<uint(i)) != 0)
	}
	return inputs
}

func TestEIGNoFaults(t *testing.T) {
	for _, n := range []int{4, 5, 7} {
		g := graph.Complete(n)
		f := (n - 1) / 3
		for bits := 0; bits < 1<<uint(n); bits++ {
			trial := Trial{
				G:      g,
				Inputs: boolInputs(g, bits),
				Honest: NewEIG(f, g.Names()),
				Rounds: EIGRounds(f),
			}
			_, _, rep, err := trial.Run()
			if err != nil {
				t.Fatalf("n=%d bits=%b: %v", n, bits, err)
			}
			if !rep.OK() {
				t.Errorf("n=%d bits=%b: %v", n, bits, rep.Err())
			}
		}
	}
}

func TestEIGOneFaultAllConfigurations(t *testing.T) {
	g := graph.Complete(4)
	honest := NewEIG(1, g.Names())
	for bits := 0; bits < 16; bits++ {
		for _, badNode := range g.Names() {
			for _, strat := range adversary.Panel(7) {
				trial := Trial{
					G:      g,
					Inputs: boolInputs(g, bits),
					Honest: honest,
					Faulty: map[string]sim.Builder{badNode: strat.Corrupt(honest)},
					Rounds: EIGRounds(1),
				}
				_, _, rep, err := trial.Run()
				if err != nil {
					t.Fatalf("bits=%b bad=%s strat=%s: %v", bits, badNode, strat.Name, err)
				}
				if !rep.OK() {
					t.Errorf("bits=%b bad=%s strat=%s: %v", bits, badNode, strat.Name, rep.Err())
				}
			}
		}
	}
}

func TestEIGTwoFaults(t *testing.T) {
	g := graph.Complete(7)
	honest := NewEIG(2, g.Names())
	strategies := adversary.Panel(11)
	for _, bits := range []int{0, 0x7f, 0x55, 0x13, 0x68} {
		for si, s1 := range strategies {
			s2 := strategies[(si+3)%len(strategies)]
			trial := Trial{
				G:      g,
				Inputs: boolInputs(g, bits),
				Honest: honest,
				Faulty: map[string]sim.Builder{
					"p1": s1.Corrupt(honest),
					"p5": s2.Corrupt(honest),
				},
				Rounds: EIGRounds(2),
			}
			_, _, rep, err := trial.Run()
			if err != nil {
				t.Fatalf("bits=%x strats=%s/%s: %v", bits, s1.Name, s2.Name, err)
			}
			if !rep.OK() {
				t.Errorf("bits=%x strats=%s/%s: %v", bits, s1.Name, s2.Name, rep.Err())
			}
		}
	}
}

// With n = 3f (inadequate), EIG is no longer safe: a two-faced adversary
// must be able to break agreement or validity. This is the concrete
// phenomenon Theorem 1 predicts; the full mechanized proof lives in
// internal/core.
func TestEIGBreaksAtThreeNodes(t *testing.T) {
	g := graph.Triangle()
	honest := NewEIG(1, g.Names())
	broken := false
	for bits := 0; bits < 8 && !broken; bits++ {
		for _, badNode := range g.Names() {
			for _, strat := range adversary.Panel(3) {
				trial := Trial{
					G:      g,
					Inputs: boolInputs(g, bits),
					Honest: honest,
					Faulty: map[string]sim.Builder{badNode: strat.Corrupt(honest)},
					Rounds: EIGRounds(1),
				}
				_, _, rep, err := trial.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !rep.OK() {
					broken = true
				}
			}
		}
	}
	if !broken {
		t.Error("no adversary in the panel broke EIG on the triangle; Theorem 1 says one must exist")
	}
}

func TestEIGDecidesAtExpectedRound(t *testing.T) {
	g := graph.Complete(4)
	trial := Trial{
		G:      g,
		Inputs: boolInputs(g, 0xF),
		Honest: NewEIG(1, g.Names()),
		Rounds: EIGRounds(1) + 3, // extra rounds: decision must not change
	}
	run, correct, rep, err := trial.Run()
	if err != nil || !rep.OK() {
		t.Fatalf("rep=%v err=%v", rep, err)
	}
	for _, name := range correct {
		d, _ := run.DecisionOf(name)
		if d.Round != 2 { // f+1 = 2 is the deciding step
			t.Errorf("%s decided at round %d, want 2", name, d.Round)
		}
	}
}

func TestEIGIgnoresMalformedClaims(t *testing.T) {
	g := graph.Complete(4)
	honest := NewEIG(1, g.Names())
	garbage := sim.ReplayBuilder(map[string][]sim.Payload{
		"p1": {"=;=;=", "p0=1;p0=0;zz=1;p1/p1=0"},
		"p2": {"not-a-claim", ";;;;"},
		"p3": {"p0=1=1", "/=0"},
	})
	trial := Trial{
		G:      g,
		Inputs: boolInputs(g, 0xE), // p0 faulty; p1,p2,p3 input 1
		Honest: honest,
		Faulty: map[string]sim.Builder{"p0": garbage},
		Rounds: EIGRounds(1),
	}
	_, _, rep, err := trial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("garbage payloads broke EIG: %v", rep.Err())
	}
}

func TestPhaseKingNoFaults(t *testing.T) {
	g := graph.Complete(5)
	for bits := 0; bits < 32; bits++ {
		trial := Trial{
			G:      g,
			Inputs: boolInputs(g, bits),
			Honest: NewPhaseKing(1, g.Names()),
			Rounds: PhaseKingRounds(1),
		}
		_, _, rep, err := trial.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Errorf("bits=%b: %v", bits, rep.Err())
		}
	}
}

func TestPhaseKingOneFault(t *testing.T) {
	g := graph.Complete(5) // n = 4f+1 with f=1
	honest := NewPhaseKing(1, g.Names())
	for bits := 0; bits < 32; bits++ {
		for _, badNode := range g.Names() {
			for _, strat := range adversary.Panel(13) {
				trial := Trial{
					G:      g,
					Inputs: boolInputs(g, bits),
					Honest: honest,
					Faulty: map[string]sim.Builder{badNode: strat.Corrupt(honest)},
					Rounds: PhaseKingRounds(1),
				}
				_, _, rep, err := trial.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !rep.OK() {
					t.Errorf("bits=%b bad=%s strat=%s: %v", bits, badNode, strat.Name, rep.Err())
				}
			}
		}
	}
}

func TestPhaseKingTwoFaults(t *testing.T) {
	g := graph.Complete(9) // n = 4f+1 with f=2
	honest := NewPhaseKing(2, g.Names())
	strategies := adversary.Panel(17)
	for _, bits := range []int{0, 0x1ff, 0xAA, 0x0F3} {
		for si, s1 := range strategies {
			s2 := strategies[(si+2)%len(strategies)]
			trial := Trial{
				G:      g,
				Inputs: boolInputs(g, bits),
				Honest: honest,
				Faulty: map[string]sim.Builder{
					"p0": s1.Corrupt(honest), // p0 is a king: worst case
					"p4": s2.Corrupt(honest),
				},
				Rounds: PhaseKingRounds(2),
			}
			_, _, rep, err := trial.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Errorf("bits=%x strats=%s/%s: %v", bits, s1.Name, s2.Name, rep.Err())
			}
		}
	}
}

// A reduced f=3 integration run (the full cross product would take tens
// of seconds; three strategies and two corners suffice to exercise the
// deep EIG tree).
func TestEIGThreeFaults(t *testing.T) {
	g := graph.Complete(10)
	honest := NewEIG(3, g.Names())
	strategies := adversary.Panel(61)
	for _, bits := range []int{0, 0x3ff} {
		for si := 0; si < 3; si++ {
			trial := Trial{
				G:      g,
				Inputs: boolInputs(g, bits),
				Honest: honest,
				Faulty: map[string]sim.Builder{
					"p0": strategies[si].Corrupt(honest),
					"p4": strategies[(si+2)%len(strategies)].Corrupt(honest),
					"p9": strategies[(si+4)%len(strategies)].Corrupt(honest),
				},
				Rounds: EIGRounds(3),
			}
			_, _, rep, err := trial.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Errorf("bits=%x si=%d: %v", bits, si, rep.Err())
			}
		}
	}
}

func TestNaiveConstantViolatesValidity(t *testing.T) {
	g := graph.Complete(4)
	trial := Trial{
		G:      g,
		Inputs: boolInputs(g, 0xF), // unanimous 1
		Honest: NewConstant("0", 2),
		Rounds: 4,
	}
	_, _, rep, err := trial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Validity == nil {
		t.Error("constant-0 device passed validity on unanimous 1")
	}
	if rep.Agreement != nil {
		t.Errorf("constant device broke agreement: %v", rep.Agreement)
	}
}

func TestNaiveOwnInputViolatesAgreement(t *testing.T) {
	g := graph.Complete(4)
	trial := Trial{
		G:      g,
		Inputs: boolInputs(g, 0x5), // mixed
		Honest: NewOwnInput(2),
		Rounds: 4,
	}
	_, _, rep, err := trial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Agreement == nil {
		t.Error("own-input device passed agreement on mixed inputs")
	}
	if rep.Validity != nil {
		t.Errorf("own-input device broke validity: %v", rep.Validity)
	}
}

func TestNaiveMajorityFaultFree(t *testing.T) {
	// With no faults the majority device reaches agreement on complete
	// graphs after one exchange when the majority is strict, and falls
	// to the default on ties — either way all nodes agree.
	g := graph.Complete(5)
	for bits := 0; bits < 32; bits++ {
		trial := Trial{
			G:      g,
			Inputs: boolInputs(g, bits),
			Honest: NewMajority(2),
			Rounds: 4,
		}
		_, _, rep, err := trial.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Termination != nil || rep.Agreement != nil {
			t.Errorf("bits=%b: %v", bits, rep.Err())
		}
		if rep.Validity != nil {
			t.Errorf("bits=%b: majority broke validity without faults: %v", bits, rep.Validity)
		}
	}
}

func TestNaiveEchoFaultFree(t *testing.T) {
	g := graph.Complete(5)
	for _, bits := range []int{0, 31, 10, 21} {
		trial := Trial{
			G:      g,
			Inputs: boolInputs(g, bits),
			Honest: NewEcho(2),
			Rounds: 4,
		}
		_, _, rep, err := trial.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Termination != nil || rep.Agreement != nil || rep.Validity != nil {
			t.Errorf("bits=%b: %v", bits, rep.Err())
		}
	}
}

func TestTrialValidation(t *testing.T) {
	g := graph.Complete(3)
	trial := Trial{
		G:      g,
		Inputs: map[string]sim.Input{"p0": "0"}, // missing p1, p2
		Honest: NewMajority(1),
		Rounds: 2,
	}
	if _, _, _, err := trial.Run(); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestCheckBAUndecided(t *testing.T) {
	g := graph.Complete(3)
	trial := Trial{
		G:      g,
		Inputs: boolInputs(g, 0),
		Honest: NewMajority(100), // never reaches its decide round
		Rounds: 3,
	}
	_, correct, rep, err := trial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(correct) != 3 || rep.Termination == nil {
		t.Errorf("undecided run not flagged: %+v", rep)
	}
}

// Property: EIG with one random adversary on K4 satisfies all conditions
// for every input assignment and strategy drawn from the panel.
func TestEIGPropertyRandomAttack(t *testing.T) {
	g := graph.Complete(4)
	honest := NewEIG(1, g.Names())
	prop := func(bits uint8, badIdx uint8, stratIdx uint8, seed int64) bool {
		strategies := adversary.Panel(seed)
		bad := g.Names()[int(badIdx)%g.N()]
		strat := strategies[int(stratIdx)%len(strategies)]
		trial := Trial{
			G:      g,
			Inputs: boolInputs(g, int(bits)%16),
			Honest: honest,
			Faulty: map[string]sim.Builder{bad: strat.Corrupt(honest)},
			Rounds: EIGRounds(1),
		}
		_, _, rep, err := trial.Run()
		return err == nil && rep.OK()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: decisions are deterministic — the same trial always produces
// identical decisions.
func TestTrialDeterminism(t *testing.T) {
	g := graph.Complete(4)
	honest := NewEIG(1, g.Names())
	strat := adversary.Panel(5)[5] // noise (seeded)
	mk := func() map[string]string {
		trial := Trial{
			G:      g,
			Inputs: boolInputs(g, 0x6),
			Honest: honest,
			Faulty: map[string]sim.Builder{"p2": strat.Corrupt(honest)},
			Rounds: EIGRounds(1),
		}
		run, correct, _, err := trial.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		for _, name := range correct {
			d, _ := run.DecisionOf(name)
			out[name] = d.Value
		}
		return out
	}
	a, b := mk(), mk()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("nondeterministic decisions: %v vs %v", a, b)
	}
}
