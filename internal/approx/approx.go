// Package approx implements approximate agreement: the DLPSW iterated
// fault-tolerant averaging protocol (Dolev, Lynch, Pinter, Stark, Weihl),
// the simple approximate agreement and (ε,δ,γ)-agreement problems of
// FLM85 Section 6, and their correctness conditions as checkable
// predicates.
//
// In both problems correct nodes hold real inputs and choose real
// outputs. Simple approximate agreement requires the chosen values to be
// strictly closer together than the inputs (unless the inputs already
// agree) and inside the input range; (ε,δ,γ)-agreement requires outputs
// within ε of each other and within γ of the input range, for inputs at
// most δ apart. FLM85 proves both impossible on inadequate graphs; DLPSW
// achieves them on complete graphs with n >= 3f+1.
package approx

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"flm/internal/sim"
)

// round is deliberately not exported: devices in this package follow the
// shared schedule "broadcast every round, decide at decideRound".

// medianDevice is the natural triangle strategy for simple approximate
// agreement: exchange values once and choose the median of what was seen
// (own value plus neighbors, missing values replaced by one's own). On
// adequate graphs with f=1 the median of 2f+1 honest-majority values lies
// in the correct range; Theorem 5's hexagon defeats it on the triangle.
type medianDevice struct {
	self        string
	nbs         []string
	value       float64
	seen        map[string]float64
	decideRound int
	decided     bool
	decision    float64
}

var _ sim.Device = (*medianDevice)(nil)
var _ sim.Fingerprinter = (*medianDevice)(nil)

// DeviceFingerprint is the constructor identity (the decide round).
func (d *medianDevice) DeviceFingerprint() string {
	return fmt.Sprintf("approx/median@%d", d.decideRound)
}

// NewMedian returns a builder for median devices deciding at the given
// round.
func NewMedian(decideRound int) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &medianDevice{decideRound: decideRound}
		d.Init(self, neighbors, input)
		return d
	}
}

func (d *medianDevice) Init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.nbs = append([]string(nil), neighbors...)
	sort.Strings(d.nbs)
	v, err := sim.DecodeReal(string(input))
	if err != nil {
		v = 0
	}
	d.value = v
	d.seen = map[string]float64{self: v}
}

func (d *medianDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	absorbReals(d.seen, inbox)
	if !d.decided && round >= d.decideRound {
		vals := valuesWithDefault(d.seen, d.nbs, d.value)
		d.decision = median(vals)
		d.decided = true
	}
	out := sim.Outbox{}
	for _, nb := range d.nbs {
		out[nb] = sim.Payload(sim.EncodeReal(d.value))
	}
	return out
}

func absorbReals(seen map[string]float64, inbox sim.Inbox) {
	senders := make([]string, 0, len(inbox))
	for s := range inbox {
		senders = append(senders, s)
	}
	sort.Strings(senders)
	for _, s := range senders {
		if v, err := sim.DecodeReal(string(inbox[s])); err == nil && !math.IsNaN(v) && !math.IsInf(v, 0) {
			seen[s] = v
		}
	}
}

func valuesWithDefault(seen map[string]float64, nbs []string, def float64) []float64 {
	vals := make([]float64, 0, len(seen)+len(nbs))
	for _, v := range seen {
		vals = append(vals, v)
	}
	// Fill in silent neighbors with the default so the multiset size is
	// deterministic.
	for _, nb := range nbs {
		if _, ok := seen[nb]; !ok {
			vals = append(vals, def)
		}
	}
	sort.Float64s(vals)
	return vals
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func (d *medianDevice) Snapshot() string {
	return fmt.Sprintf("median(dec=%v:%s)|%s", d.decided, sim.EncodeReal(d.decision), encodeSeen(d.seen))
}

func encodeSeen(seen map[string]float64) string {
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + sim.EncodeReal(seen[k])
	}
	return strings.Join(parts, ",")
}

func (d *medianDevice) Output() (sim.Decision, bool) {
	if !d.decided {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: sim.EncodeReal(d.decision)}, true
}

// dlpswDevice runs the synchronous DLPSW iterated approximation protocol
// on a complete graph: each round every node broadcasts its value,
// reduces the received multiset by discarding the f lowest and f highest
// values, and averages every f-th element of the remainder. With
// n >= 3f+1 the spread of correct values contracts by a factor of at
// least 2 per round and stays inside the correct input range.
type dlpswDevice struct {
	self     string
	peers    []string
	nbs      []string
	f        int
	rounds   int
	value    float64
	decided  bool
	decision float64
}

var _ sim.Device = (*dlpswDevice)(nil)
var _ sim.Fingerprinter = (*dlpswDevice)(nil)

// DeviceFingerprint is the constructor identity: fault bound, peer set,
// and iteration count.
func (d *dlpswDevice) DeviceFingerprint() string {
	return fmt.Sprintf("approx/dlpsw:f=%d,rounds=%d,peers=%s", d.f, d.rounds, strings.Join(d.peers, ","))
}

// NewDLPSW returns a builder for DLPSW devices tolerating f faults among
// the given peers, iterating for the given number of averaging rounds
// before deciding.
func NewDLPSW(f int, peers []string, rounds int) sim.Builder {
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &dlpswDevice{f: f, peers: sorted, rounds: rounds}
		d.Init(self, neighbors, input)
		return d
	}
}

func (d *dlpswDevice) Init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.nbs = append([]string(nil), neighbors...)
	sort.Strings(d.nbs)
	v, err := sim.DecodeReal(string(input))
	if err != nil {
		v = 0
	}
	d.value = v
}

func (d *dlpswDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	if round > 0 && !d.decided {
		vals := make([]float64, 0, len(d.peers))
		vals = append(vals, d.value)
		for _, p := range d.peers {
			if p == d.self {
				continue
			}
			v := d.value // silent or garbled peers count as our own value
			if payload, ok := inbox[p]; ok {
				if x, err := sim.DecodeReal(string(payload)); err == nil && !math.IsNaN(x) && !math.IsInf(x, 0) {
					v = x
				}
			}
			vals = append(vals, v)
		}
		d.value = Reduce(vals, d.f)
		if round >= d.rounds {
			d.decided = true
			d.decision = d.value
		}
	}
	if d.decided {
		return nil
	}
	out := sim.Outbox{}
	for _, nb := range d.nbs {
		out[nb] = sim.Payload(sim.EncodeReal(d.value))
	}
	return out
}

// Reduce implements the DLPSW averaging function: sort, discard the f
// lowest and f highest values, then average every f-th element of the
// remainder (all of it when f = 0). The result always lies within the
// range of the non-extreme values.
func Reduce(vals []float64, f int) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if len(sorted) <= 2*f {
		// Degenerate (n too small); fall back to the median.
		return median(sorted)
	}
	reduced := sorted[f : len(sorted)-f]
	step := f
	if step == 0 {
		step = 1
	}
	sum, count := 0.0, 0
	for i := 0; i < len(reduced); i += step {
		sum += reduced[i]
		count++
	}
	return sum / float64(count)
}

func (d *dlpswDevice) Snapshot() string {
	return fmt.Sprintf("dlpsw(f=%d,v=%s,dec=%v:%s)", d.f, sim.EncodeReal(d.value), d.decided, sim.EncodeReal(d.decision))
}

func (d *dlpswDevice) Output() (sim.Decision, bool) {
	if !d.decided {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: sim.EncodeReal(d.decision)}, true
}

// RoundsFor returns the number of averaging rounds DLPSW needs to bring
// an initial spread of delta within eps, using the guaranteed per-round
// contraction factor of 2, plus one round of slack.
func RoundsFor(delta, eps float64) int {
	if delta <= eps {
		return 1
	}
	return int(math.Ceil(math.Log2(delta/eps))) + 1
}

// DLPSWRounds converts averaging rounds to simulator rounds (one extra
// step for the initial broadcast).
func DLPSWRounds(averagingRounds int) int { return averagingRounds + 1 }
