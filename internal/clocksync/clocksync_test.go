package clocksync

import (
	"math"
	"math/big"
	"testing"

	"flm/internal/clockfn"
)

func stdParams(alpha float64) Params {
	// p = t, q = 1.5t, l = t, u = t + 4, t' = 4.
	return Params{
		P:      clockfn.RatIdentity(),
		Q:      clockfn.NewRatLinear(3, 2, 0, 1),
		L:      clockfn.Linear{Rate: 1, Off: 0},
		U:      clockfn.Linear{Rate: 1, Off: 4},
		Alpha:  alpha,
		TPrime: big.NewRat(4, 1),
		Delta:  big.NewRat(1, 2),
	}
}

func triBuilders(b Builder) map[string]Builder {
	return map[string]Builder{"a": b, "b": b, "c": b}
}

func TestChooseK(t *testing.T) {
	params := stdParams(2)
	k, err := params.ChooseK()
	if err != nil {
		t.Fatal(err)
	}
	// Need l(p(4)) + 2k > u(q(4)) = 10, i.e. 4 + 2k > 10, k > 3, and
	// k+2 divisible by 3: k = 4.
	if k != 4 {
		t.Errorf("k = %d, want 4", k)
	}
	tPrime, _ := params.TPrime.Float64()
	if got := params.L.At(params.P.Float().At(tPrime)) + float64(k)*params.Alpha; got <= params.U.At(params.Q.Float().At(tPrime)) {
		t.Errorf("chosen k does not satisfy the bound: %v", got)
	}
}

func TestChooseKValidation(t *testing.T) {
	bad := stdParams(0)
	if _, err := bad.ChooseK(); err == nil {
		t.Error("alpha=0 accepted")
	}
	// p faster than q.
	swapped := stdParams(1)
	swapped.P, swapped.Q = swapped.Q, swapped.P
	if _, err := swapped.ChooseK(); err == nil {
		t.Error("p > q accepted")
	}
}

func TestHComposition(t *testing.T) {
	params := stdParams(1)
	h := params.H() // p⁻¹∘q = 1.5t
	if !h.Cmp(clockfn.NewRatLinear(3, 2, 0, 1)) {
		t.Errorf("h = %s, want 3/2*t", h)
	}
	// h(t) >= t for t >= 0.
	for _, tv := range []int64{0, 1, 7} {
		x := big.NewRat(tv, 1)
		if h.At(x).Cmp(x) < 0 {
			t.Errorf("h(%d) < %d", tv, tv)
		}
	}
}

func TestTheorem8DefeatsEveryDevice(t *testing.T) {
	l := clockfn.Linear{Rate: 1, Off: 0}
	panel := map[string]Builder{
		"trivial":  NewTrivialLower(l),
		"chase":    NewChaseMax(l),
		"midpoint": NewMidpoint(l),
	}
	params := stdParams(1.5)
	for name, builder := range panel {
		t.Run(name, func(t *testing.T) {
			res, err := Theorem8(params, triBuilders(builder))
			if err != nil {
				t.Fatalf("engine error: %v", err)
			}
			if !res.Contradicted() {
				t.Fatalf("device %s survived Theorem 8:\n%s", name, res)
			}
		})
	}
}

// The trivial device synchronizes to exactly l(q)-l(p); every agreement
// link demanding better by alpha must fail, and no envelope violation can
// occur (the trivial clock is inside the envelope by construction).
func TestTheorem8TrivialShape(t *testing.T) {
	params := stdParams(1)
	res, err := Theorem8(params, triBuilders(NewTrivialLower(params.L)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != res.K+1 {
		t.Errorf("trivial device: %d violations, want one agreement per scenario (%d)",
			len(res.Violations), res.K+1)
	}
	for _, v := range res.Violations {
		if v.Condition != "agreement" {
			t.Errorf("trivial device violated %s (%s); only agreement expected", v.Condition, v.Detail)
		}
	}
}

// The chase-the-fastest device keeps adjacent agreement tight, so the
// induction must push it through the upper envelope (the paper's
// "slowest node must run so fast as to violate the upper envelope").
func TestTheorem8ChaseViolatesEnvelope(t *testing.T) {
	params := stdParams(1.5)
	res, err := Theorem8(params, triBuilders(NewChaseMax(params.L)))
	if err != nil {
		t.Fatal(err)
	}
	hasEnvelope := false
	for _, v := range res.Violations {
		if v.Condition == "envelope" {
			hasEnvelope = true
		}
	}
	if !hasEnvelope {
		t.Errorf("chase device produced no envelope violation: %v", res.Violations)
	}
}

func TestTheorem8MonotoneLogicalForChase(t *testing.T) {
	// With the chase device, logical clocks must increase along the ring
	// toward the fast end (node 0 fastest hardware).
	params := stdParams(1.5)
	res, err := Theorem8(params, triBuilders(NewChaseMax(params.L)))
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 has the fastest hardware clock; its logical value at t''
	// should be the largest or near it.
	maxVal := res.Logical[0]
	for _, v := range res.Logical {
		if v > maxVal {
			maxVal = v
		}
	}
	if res.Logical[0] < maxVal-1e-6 && res.Logical[1] < maxVal-1e-6 {
		t.Errorf("fast-end logical clocks not maximal: %v", res.Logical)
	}
}

func TestCorollaries(t *testing.T) {
	tPrime := big.NewRat(4, 1)
	tests := []struct {
		name   string
		params Params
	}{
		{"cor12-linear-envelope", Corollary12(3, 2, 1, 0, 1, 4, 1.5, tPrime)},
		{"cor13-rate", Corollary13(3, 2, 1, 0, 1.5, tPrime)},
		{"cor14-offset", Corollary14(2, 1, 1, 0, 1, tPrime)},
		{"cor15-log", Corollary15(4, 1, 2.5, big.NewRat(8, 1))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for devName, builder := range map[string]Builder{
				"trivial": NewTrivialLower(tt.params.L),
				"chase":   NewChaseMax(tt.params.L),
			} {
				res, err := Theorem8(tt.params, triBuilders(builder))
				if err != nil {
					t.Fatalf("%s: engine error: %v", devName, err)
				}
				if !res.Contradicted() {
					t.Fatalf("%s survived %s:\n%s", devName, tt.name, res)
				}
			}
		})
	}
}

func TestTrivialGap(t *testing.T) {
	params := stdParams(1)
	// l(q(t)) - l(p(t)) = 1.5t - t = 0.5t.
	for _, tv := range []float64{0, 2, 10} {
		if got := params.TrivialGap(tv); math.Abs(got-0.5*tv) > 1e-9 {
			t.Errorf("TrivialGap(%v) = %v, want %v", tv, got, 0.5*tv)
		}
	}
	// Corollary 15: the gap is the constant log2(r).
	c15 := Corollary15(4, 1, 2.5, big.NewRat(8, 1))
	for _, tv := range []float64{1, 5, 100} {
		if got := c15.TrivialGap(tv); math.Abs(got-2) > 1e-9 {
			t.Errorf("log-clock gap at t=%v: %v, want 2 = log2(4)", tv, got)
		}
	}
}

func TestFloorsMatchLemma11(t *testing.T) {
	params := stdParams(1.5)
	res, err := Theorem8(params, triBuilders(NewTrivialLower(params.L)))
	if err != nil {
		t.Fatal(err)
	}
	// Floor at node 1 evaluated in frame 0: l(p(t'')) + 0; with
	// l = id, p = id this is t'' itself.
	tSecond, _ := res.TSecond.Float64()
	if math.Abs(res.Floors[1]-tSecond) > 1e-9 {
		t.Errorf("floor[1] = %v, want %v", res.Floors[1], tSecond)
	}
	if len(res.Floors) < res.K+2 {
		t.Fatalf("floors length %d", len(res.Floors))
	}
}

func TestDeviceSnapshots(t *testing.T) {
	l := clockfn.Linear{Rate: 1, Off: 0}
	for name, b := range map[string]Builder{
		"trivial":  NewTrivialLower(l),
		"chase":    NewChaseMax(l),
		"midpoint": NewMidpoint(l),
	} {
		d := b("a", []string{"b", "c"})
		d.Init("a", []string{"b", "c"})
		d.Tick(0, big.NewRat(0, 1), nil)
		if d.Snapshot() == "" {
			t.Errorf("%s: empty snapshot", name)
		}
		if v := d.Logical(big.NewRat(3, 1)); math.IsNaN(v) {
			t.Errorf("%s: NaN logical clock", name)
		}
	}
}
