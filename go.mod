module flm

go 1.22
