package graph

import (
	"fmt"
	"sort"
)

// VertexConnectivity returns the vertex connectivity c(G): the minimum
// number of nodes whose removal disconnects the graph (n-1 for complete
// graphs, 0 for disconnected ones). It is computed exactly via Menger's
// theorem: c(G) is the minimum over non-adjacent pairs (s,t) of the
// maximum number of internally vertex-disjoint s-t paths, found by
// unit-capacity max-flow on the node-split digraph.
func (g *Graph) VertexConnectivity() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	if n == 1 {
		return 0
	}
	if !g.IsConnected() {
		return 0
	}
	best := n - 1 // complete-graph value; also an upper bound
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			if g.HasEdge(s, t) {
				continue
			}
			if k := g.localConnectivity(s, t, best); k < best {
				best = k
			}
		}
	}
	return best
}

// MinVertexCut returns a minimum vertex cut of g along with a pair of
// nodes (s,t) it separates. For complete graphs (which have no cut) it
// returns nil and (-1,-1).
func (g *Graph) MinVertexCut() (cut []int, s, t int) {
	n := g.N()
	if !g.IsConnected() {
		comps := g.Components()
		return []int{}, comps[0][0], comps[1][0]
	}
	bestK := n
	bestS, bestT := -1, -1
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if g.HasEdge(a, b) {
				continue
			}
			if k := g.localConnectivity(a, b, bestK); k < bestK {
				bestK, bestS, bestT = k, a, b
			}
		}
	}
	if bestS < 0 {
		return nil, -1, -1 // complete graph
	}
	f := g.newSplitFlow(bestS, bestT)
	f.maxFlow(bestK + 1)
	return f.minCutNodes(), bestS, bestT
}

// LocalConnectivity returns the maximum number of internally vertex-
// disjoint paths between distinct nodes s and t (Menger). If s and t are
// adjacent, the direct edge counts as one path.
func (g *Graph) LocalConnectivity(s, t int) int {
	if s == t {
		panic("graph: local connectivity of a node with itself")
	}
	return g.localConnectivity(s, t, g.N())
}

// localConnectivity computes min(limit, #disjoint paths).
func (g *Graph) localConnectivity(s, t, limit int) int {
	f := g.newSplitFlow(s, t)
	return f.maxFlow(limit)
}

// VertexDisjointPaths returns a maximum set of internally vertex-disjoint
// paths from s to t (each path a slice of node indices starting at s and
// ending at t), capped at limit if limit > 0. Paths are returned sorted by
// (length, lexicographic) so results are deterministic.
func (g *Graph) VertexDisjointPaths(s, t, limit int) ([][]int, error) {
	if s == t {
		return nil, fmt.Errorf("graph: disjoint paths require distinct endpoints")
	}
	cap := g.N()
	if limit > 0 && limit < cap {
		cap = limit
	}
	f := g.newSplitFlow(s, t)
	f.maxFlow(cap)
	paths := f.decomposePaths()
	sort.Slice(paths, func(i, j int) bool {
		if len(paths[i]) != len(paths[j]) {
			return len(paths[i]) < len(paths[j])
		}
		for k := range paths[i] {
			if paths[i][k] != paths[j][k] {
				return paths[i][k] < paths[j][k]
			}
		}
		return false
	})
	return paths, nil
}

// CutForFaults finds, for a graph with connectivity at most 2f, a
// minimum vertex cut split into the two halves b and d (each of size at
// most f) plus a separated node pair (u,v) — exactly the ingredients the
// FLM85 connectivity arguments need. It fails if the graph's
// connectivity exceeds 2f (the bound does not apply).
func (g *Graph) CutForFaults(f int) (b, d []int, u, v int, err error) {
	cut, s, t := g.MinVertexCut()
	if s < 0 {
		return nil, nil, -1, -1, fmt.Errorf("graph: complete graph has no vertex cut")
	}
	if len(cut) > 2*f {
		return nil, nil, -1, -1, fmt.Errorf("graph: connectivity %d exceeds 2f = %d; the bound does not apply",
			len(cut), 2*f)
	}
	half := (len(cut) + 1) / 2
	b = append([]int(nil), cut[:half]...)
	d = append([]int(nil), cut[half:]...)
	return b, d, s, t, nil
}

// IsAdequate reports whether g can, per FLM85, possibly support the five
// consensus problems with f Byzantine faults: n >= 3f+1 and vertex
// connectivity >= 2f+1. Graphs failing either bound are "inadequate".
// f must be >= 1; with f = 0 every connected graph of >= 1 node is
// adequate.
func (g *Graph) IsAdequate(f int) bool {
	if f < 0 {
		panic("graph: negative fault bound")
	}
	if f == 0 {
		return g.N() >= 1 && g.IsConnected()
	}
	return g.N() >= 3*f+1 && g.VertexConnectivity() >= 2*f+1
}

// MaxTolerableFaults returns the largest f for which g is adequate
// (0 if g cannot tolerate any Byzantine fault).
func (g *Graph) MaxTolerableFaults() int {
	byNodes := (g.N() - 1) / 3
	byConn := (g.VertexConnectivity() - 1) / 2
	if byConn < byNodes {
		return byConn
	}
	return byNodes
}

// splitFlow is a max-flow instance on the node-split digraph: every node
// u other than s and t becomes u_in -> u_out with capacity 1; each
// undirected edge {u,v} becomes u_out -> v_in and v_out -> u_in with
// effectively infinite capacity, so that a minimum cut consists only of
// split (node) edges — except a direct s-t edge, which gets capacity 1
// because it forms exactly one internally-disjoint path. Node x's
// in-vertex is 2x and out-vertex is 2x+1; s and t are not split (their
// internal edge has infinite capacity).
type splitFlow struct {
	g        *Graph
	s, t     int
	n        int     // flow vertices = 2 * g.N()
	to       []int   // edge target
	capacity []int   // residual capacity
	head     [][]int // adjacency: vertex -> edge ids
}

const infCap = 1 << 30

func (g *Graph) newSplitFlow(s, t int) *splitFlow {
	f := &splitFlow{g: g, s: s, t: t, n: 2 * g.N()}
	f.head = make([][]int, f.n)
	addEdge := func(u, v, c int) {
		f.head[u] = append(f.head[u], len(f.to))
		f.to = append(f.to, v)
		f.capacity = append(f.capacity, c)
		f.head[v] = append(f.head[v], len(f.to))
		f.to = append(f.to, u)
		f.capacity = append(f.capacity, 0)
	}
	for u := 0; u < g.N(); u++ {
		c := 1
		if u == s || u == t {
			c = infCap
		}
		addEdge(2*u, 2*u+1, c) // u_in -> u_out
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.adj[u] {
			c := infCap
			if (u == s && v == t) || (u == t && v == s) {
				c = 1 // the direct edge is a single disjoint path
			}
			addEdge(2*u+1, 2*v, c) // u_out -> v_in
		}
	}
	return f
}

// maxFlow runs BFS augmentation from s_out to t_in until no augmenting
// path remains or limit is reached, returning the flow value.
func (f *splitFlow) maxFlow(limit int) int {
	src, dst := 2*f.s+1, 2*f.t
	flow := 0
	prevEdge := make([]int, f.n)
	for flow < limit {
		for i := range prevEdge {
			prevEdge[i] = -1
		}
		prevEdge[src] = -2
		queue := []int{src}
		found := false
		for len(queue) > 0 && !found {
			u := queue[0]
			queue = queue[1:]
			for _, id := range f.head[u] {
				v := f.to[id]
				if prevEdge[v] == -1 && f.capacity[id] > 0 {
					prevEdge[v] = id
					if v == dst {
						found = true
						break
					}
					queue = append(queue, v)
				}
			}
		}
		if !found {
			break
		}
		for v := dst; v != src; {
			id := prevEdge[v]
			f.capacity[id]--
			f.capacity[id^1]++
			v = f.to[id^1]
		}
		flow++
	}
	return flow
}

// minCutNodes returns the original-graph nodes whose split edge
// (u_in -> u_out) crosses the s-side/t-side residual boundary; by
// max-flow/min-cut these form a minimum vertex cut.
func (f *splitFlow) minCutNodes() []int {
	reach := make([]bool, f.n)
	src := 2*f.s + 1
	reach[src] = true
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range f.head[u] {
			if v := f.to[id]; f.capacity[id] > 0 && !reach[v] {
				reach[v] = true
				stack = append(stack, v)
			}
		}
	}
	var cut []int
	for u := 0; u < f.g.N(); u++ {
		if u == f.s || u == f.t {
			continue
		}
		if reach[2*u] && !reach[2*u+1] {
			cut = append(cut, u)
		}
	}
	sort.Ints(cut)
	return cut
}

// decomposePaths extracts the vertex-disjoint s-t paths carried by the
// current flow by walking forward edges that carry one unit. Every
// inter-node edge carries at most one unit because its endpoints' split
// edges have capacity 1 (and the direct s-t edge is itself capacity 1).
func (f *splitFlow) decomposePaths() [][]int {
	// Reconstruct per-edge flow from reverse residuals: a forward edge
	// (even id) carries flow equal to the residual of its reverse twin.
	used := func(id int) bool {
		return id%2 == 0 && f.capacity[id^1] > 0
	}
	consume := func(id int) {
		f.capacity[id^1]--
	}
	var paths [][]int
	// Each used edge s_out -> v_in starts one path.
	srcOut := 2*f.s + 1
	for _, id := range f.head[srcOut] {
		if id%2 == 1 || f.to[id]%2 == 1 || !used(id) {
			continue
		}
		path := []int{f.s}
		consume(id)
		v := f.to[id] / 2 // node whose in-vertex we entered
		for v != f.t {
			path = append(path, v)
			// Leave through v_out on a used inter-node edge.
			vOut := 2*v + 1
			next := -1
			for _, eid := range f.head[vOut] {
				if eid%2 == 0 && f.to[eid]%2 == 0 && used(eid) {
					next = eid
					break
				}
			}
			if next == -1 {
				// Should not happen on a valid flow.
				panic("graph: flow decomposition stuck")
			}
			consume(next)
			v = f.to[next] / 2
		}
		path = append(path, f.t)
		paths = append(paths, path)
	}
	return paths
}
