package initdead

import (
	"fmt"
	"testing"

	"flm/internal/adversary"
	"flm/internal/graph"
	"flm/internal/sim"
)

// runTrial executes the protocol on K_n with the given dead set, inputs
// (in sorted-name order), and delay schedule, and returns the run plus
// the live-node list.
func runTrial(t *testing.T, n, tFaults int, dead map[string]bool, inputs []string, delays *sim.DelaySchedule, rounds int) (*sim.Run, []string) {
	t.Helper()
	g := graph.Complete(n)
	names := g.Names()
	for d := range dead {
		if _, ok := g.Index(d); !ok {
			t.Fatalf("dead set names unknown node %q", d)
		}
	}
	honest := New(tFaults)
	p := sim.Protocol{
		Builders: make(map[string]sim.Builder, n),
		Inputs:   make(map[string]sim.Input, n),
	}
	var live []string
	for i, name := range names {
		p.Inputs[name] = sim.Input(inputs[i])
		if dead[name] {
			p.Builders[name] = adversary.InitiallyDead()
		} else {
			p.Builders[name] = honest
			live = append(live, name)
		}
	}
	sys, err := sim.NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.ExecuteWith(sys, rounds, sim.ExecuteOpts{Delays: delays})
	if err != nil {
		t.Fatal(err)
	}
	return run, live
}

// subsetsUpTo enumerates every subset of names with size <= k.
func subsetsUpTo(names []string, k int) []map[string]bool {
	var out []map[string]bool
	n := len(names)
	for mask := 0; mask < 1<<n; mask++ {
		sub := map[string]bool{}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub[names[i]] = true
			}
		}
		if len(sub) <= k {
			out = append(out, sub)
		}
	}
	return out
}

func alternatingInputs(n int) []string {
	in := make([]string, n)
	for i := range in {
		in[i] = fmt.Sprint(i % 2)
	}
	return in
}

func TestSynchronousNoFailures(t *testing.T) {
	for _, size := range []struct{ n, t int }{{3, 1}, {5, 2}, {7, 3}} {
		run, live := runTrial(t, size.n, size.t, nil, alternatingInputs(size.n), nil, Rounds(0))
		if rep := Check(run, live); !rep.OK() {
			t.Errorf("n=%d t=%d: %v", size.n, size.t, rep.Err())
		}
	}
}

func TestEveryDeadSubsetSynchronous(t *testing.T) {
	// n > 2t: every initially-dead subset of size <= t must leave a
	// correct execution. Exhaustive over subsets.
	for _, size := range []struct{ n, t int }{{3, 1}, {5, 2}, {7, 3}} {
		names := graph.Complete(size.n).Names()
		for _, dead := range subsetsUpTo(names, size.t) {
			run, live := runTrial(t, size.n, size.t, dead, alternatingInputs(size.n), nil, Rounds(0))
			if rep := Check(run, live); !rep.OK() {
				t.Errorf("n=%d t=%d dead=%v: %v", size.n, size.t, dead, rep.Err())
			}
		}
	}
}

func TestEveryDeadSubsetUnderSeededDelays(t *testing.T) {
	// The same exhaustive sweep under adversarial asynchrony: delays
	// bounded by D, round budget Rounds(D).
	const maxDelay = 2
	for _, size := range []struct{ n, t int }{{3, 1}, {5, 2}} {
		g := graph.Complete(size.n)
		names := g.Names()
		rounds := Rounds(maxDelay)
		for seed := int64(1); seed <= 3; seed++ {
			delays := sim.SeededDelays(seed, names, rounds, maxDelay)
			for _, dead := range subsetsUpTo(names, size.t) {
				run, live := runTrial(t, size.n, size.t, dead, alternatingInputs(size.n), delays, rounds)
				if rep := Check(run, live); !rep.OK() {
					t.Errorf("n=%d t=%d seed=%d dead=%v: %v", size.n, size.t, seed, dead, rep.Err())
				}
			}
		}
	}
}

func TestUnanimityDecidesThatValue(t *testing.T) {
	in := []string{"1", "1", "1", "1", "1"}
	run, live := runTrial(t, 5, 2, map[string]bool{"p0": true, "p3": true}, in, nil, Rounds(0))
	for _, name := range live {
		d, err := run.DecisionOf(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Value != "1" {
			t.Errorf("%s decided %q, want unanimous 1", name, d.Value)
		}
	}
}

func TestPartitionDisagreementAtNEquals2T(t *testing.T) {
	// n = 2t is beyond the protocol's resilience: the partition delay
	// schedule splits the nodes into two groups with different inputs
	// and produces disagreement — the machine-checked face of the
	// n > 2t requirement.
	for _, size := range []struct{ n, t int }{{2, 1}, {4, 2}, {6, 3}} {
		g := graph.Complete(size.n)
		names := g.Names()
		rounds := Rounds(0) + size.n // slack: groups decide at their own pace
		delays := PartitionDelays(names, size.t, rounds)
		// Group A (first n-t sorted names) inputs 0, group B inputs 1.
		inputs := make([]string, size.n)
		for i := range inputs {
			if i < size.n-size.t {
				inputs[i] = "0"
			} else {
				inputs[i] = "1"
			}
		}
		run, live := runTrial(t, size.n, size.t, nil, inputs, delays, rounds)
		rep := Check(run, live)
		if rep.Agreement == nil {
			t.Errorf("n=%d t=%d: expected disagreement under partition delays, got %+v", size.n, size.t, rep)
		}
	}
}

func TestPartitionHarmlessAboveThreshold(t *testing.T) {
	// For n > 2t the same partition schedule cannot break the protocol:
	// the minority group alone lacks the n-t-1 foreign records it
	// needs, so it keeps waiting for the (delayed-to-horizon) majority
	// traffic... which means termination fails but never agreement.
	// With the cross traffic delayed only *finitely* (within budget),
	// everything still decides and agrees.
	for _, size := range []struct{ n, t int }{{3, 1}, {5, 2}} {
		g := graph.Complete(size.n)
		names := g.Names()
		const maxDelay = 3
		rounds := Rounds(maxDelay)
		bounded := PartitionDelays(names, size.t, rounds)
		for i := range bounded.Rules {
			bounded.Rules[i].Extra = maxDelay
		}
		run, live := runTrial(t, size.n, size.t, nil, alternatingInputs(size.n), bounded, rounds)
		if rep := Check(run, live); !rep.OK() {
			t.Errorf("n=%d t=%d: bounded partition broke the protocol: %v", size.n, size.t, rep.Err())
		}
	}
}

func TestDeterministicAcrossExecutions(t *testing.T) {
	decisionsOf := func() []string {
		sim.ResetRunCache()
		delays := sim.SeededDelays(9, graph.Complete(5).Names(), Rounds(2), 2)
		run, live := runTrial(t, 5, 2, map[string]bool{"p1": true}, alternatingInputs(5), delays, Rounds(2))
		out := make([]string, len(live))
		for i, name := range live {
			d, err := run.DecisionOf(name)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = d.Value
		}
		return out
	}
	a, b := decisionsOf(), decisionsOf()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decisions diverged across executions: %v vs %v", a, b)
		}
	}
}

func TestFingerprintJoinsRunCache(t *testing.T) {
	d := New(2)("k0", []string{"k1", "k2", "k3", "k4"}, "1")
	fp := sim.FingerprintOf(d)
	if fp != "initdead/v1:t=2" {
		t.Errorf("fingerprint = %q", fp)
	}
	if fp2 := sim.FingerprintOf(New(1)("k0", []string{"k1", "k2"}, "1")); fp2 == fp {
		t.Error("different t must fingerprint differently")
	}
	// End to end: two identical systems hit the cache (same Run pointer).
	mk := func() *sim.Run {
		run, _ := runTrial(t, 5, 2, nil, alternatingInputs(5), nil, Rounds(0))
		return run
	}
	sim.ResetRunCache()
	a, b := mk(), mk()
	if a.Fingerprint() == "" {
		t.Fatal("initdead runs should be content-addressed")
	}
	if a != b {
		t.Error("identical initdead systems should share the cached run")
	}
}

func TestRoundsBound(t *testing.T) {
	if got := Rounds(0); got != 4 {
		t.Errorf("Rounds(0) = %d, want 4", got)
	}
	if got := Rounds(3); got != 10 {
		t.Errorf("Rounds(3) = %d, want 10", got)
	}
	if got := Rounds(-1); got != 4 {
		t.Errorf("Rounds(-1) = %d, want clamp to 4", got)
	}
}

func TestCheckFlagsUndecided(t *testing.T) {
	// Too few rounds for anyone to decide: Termination must trip.
	run, live := runTrial(t, 5, 2, nil, alternatingInputs(5), nil, 1)
	rep := Check(run, live)
	if rep.Termination == nil {
		t.Error("expected a termination violation at 1 round")
	}
}
