package sweep

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	got, err := Map(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Whatever the interleaving, the reported error must be the one a
	// sequential loop would hit first.
	defer SetWorkers(SetWorkers(4))
	for trial := 0; trial < 20; trial++ {
		_, err := Map(50, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("trial %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "trial 3 failed" {
			t.Fatalf("got error %v, want trial 3's", err)
		}
	}
}

func TestMapCancelsAfterFirstError(t *testing.T) {
	defer SetWorkers(SetWorkers(2))
	var ran atomic.Int64
	sentinel := errors.New("boom")
	_, err := Map(10_000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Fatalf("sweep did not cancel: all %d trials ran", n)
	}
}

func TestMapSequentialFallback(t *testing.T) {
	defer SetWorkers(SetWorkers(1))
	got, err := Map(5, func(i int) (string, error) { return fmt.Sprint(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if got[4] != "4" {
		t.Fatalf("sequential path broken: %v", got)
	}
}

func TestMapZeroTrials(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { t.Fatal("must not run"); return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestEachPropagatesError(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	sentinel := errors.New("each")
	if err := Each(8, func(i int) error {
		if i == 2 {
			return sentinel
		}
		return nil
	}); !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if err := Each(8, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersResolutionOrder(t *testing.T) {
	old := os.Getenv(WorkersEnv)
	defer os.Setenv(WorkersEnv, old)

	SetWorkers(0)
	os.Setenv(WorkersEnv, "")
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	os.Setenv(WorkersEnv, "3")
	if got := Workers(); got != 3 {
		t.Fatalf("env Workers() = %d, want 3", got)
	}
	os.Setenv(WorkersEnv, "bogus")
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("bogus env Workers() = %d, want %d", got, want)
	}
	prev := SetWorkers(5)
	if prev != 0 {
		t.Fatalf("previous override = %d, want 0", prev)
	}
	if got := Workers(); got != 5 {
		t.Fatalf("override Workers() = %d, want 5", got)
	}
	SetWorkers(0)
}
