package eval

import (
	"strings"
	"testing"
)

func TestRegistryShape(t *testing.T) {
	reg := Registry()
	if len(reg) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Name == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Find("E7"); !ok {
		t.Error("Find(E7) failed")
	}
	if _, ok := Find("E99"); ok {
		t.Error("Find(E99) succeeded")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "bee"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("x", 42)
	tbl.AddRow(1.5, "yy")
	out := tbl.Render()
	for _, want := range []string{"demo", "a", "bee", "x", "42", "1.5", "yy", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesRender(t *testing.T) {
	s := &Series{Title: "fig", XLabel: "x", YLabels: []string{"y1", "y2"}}
	s.X = []float64{1, 2}
	s.Y = [][]float64{{10, 20}, {30, 40}}
	out := s.Render()
	for _, want := range []string{"fig", "x", "y1", "y2", "10", "40"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// Every experiment must run to completion and produce non-empty output.
// This is the end-to-end integration test of the whole reproduction.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run()
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Errorf("result ID %s, want %s", res.ID, e.ID)
			}
			if len(res.Tables)+len(res.Figures) == 0 {
				t.Error("experiment produced no tables or figures")
			}
			out := res.Render()
			if len(out) < 100 {
				t.Errorf("suspiciously short rendering:\n%s", out)
			}
			for _, tbl := range res.Tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("table %q has no rows", tbl.Title)
				}
			}
			for _, fig := range res.Figures {
				if len(fig.X) == 0 {
					t.Errorf("figure %q has no points", fig.Title)
				}
				for i, ys := range fig.Y {
					if len(ys) != len(fig.X) {
						t.Errorf("figure %q series %d length %d != %d", fig.Title, i, len(ys), len(fig.X))
					}
				}
			}
		})
	}
}

// The tightness experiments must report full pass rates on adequate
// graphs (any regression in the protocols shows up here).
func TestE9FullPassOnAdequate(t *testing.T) {
	res, err := RunE9()
	if err != nil {
		t.Fatal(err)
	}
	eig := res.Tables[0]
	for _, row := range eig.Rows {
		if row[2] == "true" && row[3] != row[4] {
			t.Errorf("adequate n=%s f=%s passed %s/%s", row[0], row[1], row[3], row[4])
		}
	}
	// Crossover figure: 0 at n=3, 1.0 from n=4 on.
	fig := res.Figures[0]
	if fig.Y[0][0] != 0 {
		t.Errorf("crossover at n=3 is %v, want 0", fig.Y[0][0])
	}
	for i := 1; i < len(fig.X); i++ {
		if fig.Y[0][i] != 1 {
			t.Errorf("crossover at n=%v is %v, want 1", fig.X[i], fig.Y[0][i])
		}
	}
}

func TestE11SpreadWithinBound(t *testing.T) {
	res, err := RunE11()
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	for i := range fig.X {
		if fig.Y[0][i] > fig.Y[1][i]+1e-12 {
			t.Errorf("round %v: spread %v exceeds bound %v", fig.X[i], fig.Y[0][i], fig.Y[1][i])
		}
	}
}
