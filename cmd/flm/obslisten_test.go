package main

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"

	"flm/internal/obs"
)

// TestStartObsDisabledZeroCost is the zero-cost-when-disabled guard:
// with no flag and no environment, startObs must return a nil session
// without allocating and without starting a goroutine. The engine side
// of the same contract is covered by flmobscost and the sim/sweep guard
// tests; this pins the CLI entry point.
func TestStartObsDisabledZeroCost(t *testing.T) {
	t.Setenv(ObsListenEnv, "")
	t.Setenv(ObsIntervalEnv, "")

	before := runtime.NumGoroutine()
	allocs := testing.AllocsPerRun(100, func() {
		sess, err := startObs(obsListenTarget(""))
		if err != nil {
			t.Fatalf("startObs: %v", err)
		}
		if sess != nil {
			t.Fatal("disabled startObs returned a live session")
		}
		sess.stop() // nil-safe no-op
	})
	if allocs != 0 {
		t.Errorf("disabled startObs allocates %v times per call, want 0", allocs)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("disabled startObs leaked goroutines: %d -> %d", before, after)
	}
}

// TestObsListenTarget pins the flag-over-env resolution order.
func TestObsListenTarget(t *testing.T) {
	t.Setenv(ObsListenEnv, "127.0.0.1:9")
	if got := obsListenTarget("127.0.0.1:8"); got != "127.0.0.1:8" {
		t.Errorf("flag should win: got %q", got)
	}
	if got := obsListenTarget(""); got != "127.0.0.1:9" {
		t.Errorf("env fallback: got %q", got)
	}
	t.Setenv(ObsListenEnv, "")
	if got := obsListenTarget(""); got != "" {
		t.Errorf("neither set: got %q", got)
	}
}

// TestStartObsEnabled starts a real session on an ephemeral port and
// checks the discard tracer flips obs.Enabled(), the endpoint serves,
// and stop() restores the disabled state.
func TestStartObsEnabled(t *testing.T) {
	t.Setenv(ObsIntervalEnv, "")
	if obs.Enabled() {
		t.Fatal("tracer already installed; test requires the disabled baseline")
	}

	sess, err := startObs("127.0.0.1:0")
	if err != nil {
		t.Fatalf("startObs: %v", err)
	}
	if sess == nil || sess.server == nil {
		t.Fatal("enabled startObs returned no server")
	}
	if !obs.Enabled() {
		t.Error("startObs did not install the discard tracer")
	}

	resp, err := http.Get("http://" + sess.server.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "flm_") {
		t.Errorf("/metrics served no flm_ series:\n%s", body)
	}

	addr := sess.server.Addr()
	sess.stop()
	if obs.Enabled() {
		t.Error("stop() did not uninstall the discard tracer")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("endpoint still serving after stop()")
	}
}

// TestStartObsBadInterval checks an unparsable or non-positive
// FLM_OBS_INTERVAL is rejected with a cleaned-up session.
func TestStartObsBadInterval(t *testing.T) {
	for _, bad := range []string{"soon", "-2s", "0"} {
		t.Setenv(ObsIntervalEnv, bad)
		sess, err := startObs("")
		if err == nil {
			sess.stop()
			t.Errorf("%s=%q accepted, want error", ObsIntervalEnv, bad)
		}
		if obs.Enabled() {
			t.Fatalf("%s=%q: failed startObs left the discard tracer installed", ObsIntervalEnv, bad)
		}
	}
}
