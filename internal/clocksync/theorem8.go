package clocksync

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"flm/internal/clockfn"
	"flm/internal/graph"
	"flm/internal/timedsim"
)

// Params describes a "nontrivial synchronization" claim (Section 7):
// correct hardware clocks run at p or q (increasing, p(t) <= q(t)); the
// logical clocks must stay within the [l, u] envelope of real time and
// within l(q(t)) - l(p(t)) - Alpha of each other from time TPrime on.
// Delta is the device tick spacing in hardware-clock units.
type Params struct {
	P, Q   clockfn.RatLinear // the slow and fast clock laws (exact)
	L, U   clockfn.Fn        // lower and upper envelopes
	Alpha  float64           // the claimed improvement over trivial sync
	TPrime *big.Rat          // time from which agreement must hold
	Delta  *big.Rat          // hardware tick spacing
}

// Violation is one broken synchronization condition in a scaled scenario.
type Violation struct {
	Scenario  string // "S0", "S1", ...
	Condition string // "agreement" or "envelope"
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s violated: %s", v.Scenario, v.Condition, v.Detail)
}

// Result is the outcome of the mechanized Theorem 8 argument.
type Result struct {
	Params     Params
	K          int       // the induction length (ring has K+2 nodes)
	TSecond    *big.Rat  // t'' = h^K(t'), the evaluation time in ring frame
	Logical    []float64 // C_i at t'' for every ring node
	Floors     []float64 // Lemma 11 floors l(q h^{-(i)}(t'')) + (i-1)α forced on C_i
	Violations []Violation
	Run        *timedsim.Run
}

// Contradicted reports whether a condition was violated (the theorem
// guarantees it).
func (r *Result) Contradicted() bool { return len(r.Violations) > 0 }

// String renders the argument.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorem 8 — clock synchronization, ring of %d nodes, k=%d\n", r.K+2, r.K)
	for i, c := range r.Logical {
		fmt.Fprintf(&b, "  node %d: C_i(t'') = %.6f\n", i, c)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  ** %s\n", v)
	}
	return b.String()
}

// ChooseK returns the paper's induction length: the smallest k >= 2 with
// k+2 divisible by 3 and l(p(t')) + k*alpha > u(q(t')).
func (p Params) ChooseK() (int, error) {
	tPrime, _ := p.TPrime.Float64()
	pf, qf := p.P.Float(), p.Q.Float()
	if p.Alpha <= 0 {
		return 0, fmt.Errorf("clocksync: alpha must be positive")
	}
	if pf.At(tPrime) > qf.At(tPrime) {
		return 0, fmt.Errorf("clocksync: p(t') > q(t') — p must be the slow clock")
	}
	target := p.U.At(qf.At(tPrime)) - p.L.At(pf.At(tPrime))
	if target < 0 {
		return 0, fmt.Errorf("clocksync: envelopes cross at t' (u(q) < l(p))")
	}
	k := 2
	for float64(k)*p.Alpha <= target || (k+2)%3 != 0 {
		k++
		if k > 1<<20 {
			return 0, fmt.Errorf("clocksync: no reasonable k satisfies l(p(t'))+kα > u(q(t'))")
		}
	}
	return k, nil
}

// H returns h = p⁻¹ ∘ q, exactly.
func (p Params) H() clockfn.RatLinear { return p.P.InverseRat().ComposeRat(p.Q) }

// theorem8Prep is everything a Theorem 8 run needs that depends only on
// the Params, not on the devices: the induction length, the verified ring
// cover, h = p⁻¹∘q, the table of its inverse iterates, and t”. Grid
// sweeps (EvalGrid) build one prep per parameter case and share it across
// every device cell; the prep is read-only during runs, and every
// rational it holds is treated as immutable (scratch comparators copy
// before decomposing, since big.Rat lazily materializes denominators in
// place).
type theorem8Prep struct {
	params  Params
	k       int
	cover   *graph.Cover
	h       clockfn.RatLinear
	iters   []clockfn.RatLinear // iters[i] = h⁻ⁱ, i = 0..k+1
	tSecond *big.Rat            // t'' = hᵏ(t')
}

// prepareTheorem8 does the device-independent setup of the Theorem 8
// argument. Ring construction, cover verification, and the O(k) iterate
// table replace the O(k²) per-scenario IterateRat calls of the direct
// formulation.
func prepareTheorem8(params Params) (*theorem8Prep, error) {
	k, err := params.ChooseK()
	if err != nil {
		return nil, err
	}
	size := k + 2
	cover := graph.RingCoverTriangle(size)
	if err := cover.Verify(); err != nil {
		return nil, err
	}
	h := params.H()
	iters := clockfn.Iterates(h, -1, size-1)
	tSecond := h.IterateRat(k).At(params.TPrime)
	return &theorem8Prep{params: params, k: k, cover: cover, h: h, iters: iters, tSecond: tSecond}, nil
}

// Theorem8 mechanizes the clock synchronization impossibility on the
// triangle. Devices (keyed by triangle node name a/b/c) are installed on
// the (k+2)-ring covering with hardware clocks D_i = q∘h⁻ⁱ; the system
// runs to real time t” = hᵏ(t'); and for every scaled scenario Sᵢhⁱ
// (adjacent pair i, i+1 viewed with clocks q and p) the agreement and
// envelope conditions are evaluated at the scaled time h⁻ⁱ(t”) >= t'.
// Lemma 11's arithmetic makes them jointly unsatisfiable, so at least one
// recorded violation is guaranteed for any devices whatsoever.
func Theorem8(params Params, builders map[string]Builder) (*Result, error) {
	prep, err := prepareTheorem8(params)
	if err != nil {
		return nil, err
	}
	return runTheorem8(prep, builders)
}

// runTheorem8 is the device-dependent half: install the panel on the
// prepared ring, execute, self-check, and evaluate the conditions. Safe
// to call concurrently with the same prep.
func runTheorem8(prep *theorem8Prep, builders map[string]Builder) (*Result, error) {
	params, k, tSecond := prep.params, prep.k, prep.tSecond
	size := k + 2
	sys, err := installRing(prep.cover, params, builders, prep.iters)
	if err != nil {
		return nil, err
	}
	// The fastest node experiences q(t'') of hardware time, i.e. about
	// q(hᵏ(t'))/Δ ticks — exponential in k for rate-scaled clocks. Guard
	// against parameter choices that would take hours to simulate; a
	// larger alpha (or tighter envelopes) shrinks k.
	ticksEstimate := new(big.Rat).Quo(params.Q.At(tSecond), params.Delta)
	if est, _ := ticksEstimate.Float64(); est > 5e5 {
		return nil, fmt.Errorf("clocksync: parameters need ~%.0f ticks (k=%d, t''=%s); increase alpha or tighten the envelopes",
			est, k, tSecond.RatString())
	}
	run, err := timedsim.Execute(sys, tSecond)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Params:  params,
		K:       k,
		TSecond: tSecond,
		Logical: append([]float64(nil), run.FinalLogical...),
		Run:     run,
	}
	// Lemma 9/Scaling self-check on a sample of scenarios: the scaled
	// pair must replay as two correct nodes of the triangle.
	for _, i := range sampleScenarios(k) {
		if err := checkLemma9(prep.cover, params, builders, prep.iters, run, i, tSecond); err != nil {
			return nil, fmt.Errorf("clocksync: Lemma 9 self-check failed for S%d: %w", i, err)
		}
	}
	// Condition evaluation per scaled scenario.
	const tol = 1e-9
	lF := params.L
	uF := params.U
	pf, qf := params.P.Float(), params.Q.Float()
	res.Floors = make([]float64, size)
	for i := 0; i <= k; i++ {
		tau := prep.iters[i].At(tSecond)
		tauF, _ := tau.Float64()
		scen := fmt.Sprintf("S%d", i)
		bound := lF.At(qf.At(tauF)) - lF.At(pf.At(tauF)) - params.Alpha
		gap := res.Logical[i+1] - res.Logical[i]
		if gap < 0 {
			gap = -gap
		}
		if gap > bound+tol {
			res.Violations = append(res.Violations, Violation{
				Scenario: scen, Condition: "agreement",
				Detail: fmt.Sprintf("|C_%d - C_%d| = %.6f > l(q)-l(p)-α = %.6f at scaled time %.6f",
					i+1, i, gap, bound, tauF),
			})
		}
		loEnv, hiEnv := lF.At(pf.At(tauF)), uF.At(qf.At(tauF))
		for _, node := range []int{i, i + 1} {
			c := res.Logical[node]
			if c < loEnv-tol || c > hiEnv+tol {
				res.Violations = append(res.Violations, Violation{
					Scenario: scen, Condition: "envelope",
					Detail: fmt.Sprintf("C_%d = %.6f outside [l(p)=%.6f, u(q)=%.6f] at scaled time %.6f",
						node, c, loEnv, hiEnv, tauF),
				})
			}
		}
		if i+1 < size {
			// Lemma 11: C_{i+1}(t'') >= l(q h^{-(i+1)}(t'')) + i*α, and
			// q∘h⁻¹ = p, so the floor is l(p(τ_i)) + i*α.
			res.Floors[i+1] = lF.At(pf.At(tauF)) + float64(i)*params.Alpha
		}
	}
	if !res.Contradicted() {
		return res, fmt.Errorf("clocksync: no condition violated — impossible by Lemma 11:\n%s", res)
	}
	return res, nil
}

// sampleScenarios picks the scenarios to re-execute for the Lemma 9
// self-check (all of them would be quadratic in k; ends and middle
// suffice to validate the machinery).
func sampleScenarios(k int) []int {
	if k <= 2 {
		out := make([]int, k+1)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return []int{0, k / 2, k}
}

// installRing builds the timed system on the ring cover: node i runs the
// device of its triangle image (renamed) with hardware clock q∘h⁻ⁱ,
// taken from the prepared iterate table (iters[i] = h⁻ⁱ). The cover was
// verified by prepareTheorem8.
func installRing(cover *graph.Cover, params Params, builders map[string]Builder, iters []clockfn.RatLinear) (*timedsim.System, error) {
	s, g := cover.S, cover.G
	nodes := make([]timedsim.Node, s.N())
	for i := 0; i < s.N(); i++ {
		gName := g.Name(cover.Phi[i])
		b, ok := builders[gName]
		if !ok {
			return nil, fmt.Errorf("clocksync: no builder for triangle node %q", gName)
		}
		toG := make(map[string]string, s.Degree(i))
		toS := make(map[string]string, s.Degree(i))
		for _, nb := range s.Neighbors(i) {
			toG[s.Name(nb)] = g.Name(cover.Phi[nb])
			toS[g.Name(cover.Phi[nb])] = s.Name(nb)
		}
		gNeighbors := make([]string, 0, len(toS))
		for gNb := range toS {
			gNeighbors = append(gNeighbors, gNb)
		}
		sort.Strings(gNeighbors)
		inner := b(gName, gNeighbors)
		inner.Init(gName, gNeighbors)
		nodes[i] = timedsim.Node{
			Device: timedsim.Renamed(inner, toG, toS),
			Clock:  params.Q.ComposeRat(iters[i]),
		}
	}
	return &timedsim.System{G: s, Nodes: nodes, Delta: params.Delta}, nil
}

func sortedStrings(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// checkLemma9 re-executes scenario S_i scaled by hⁱ as an actual triangle
// run: the images of nodes i and i+1 run their devices with clocks q and
// p, the third triangle node replays the scaled border traffic, and the
// tick sequences must match the ring's exactly (times scaled by h⁻ⁱ,
// hardware readings and snapshots identical). This validates the
// Scaling, Locality, and Fault axioms on the actual run.
func checkLemma9(cover *graph.Cover, params Params, builders map[string]Builder, iters []clockfn.RatLinear, ringRun *timedsim.Run, i int, tSecond *big.Rat) error {
	s, g := cover.S, cover.G
	size := s.N()
	// Private copy of the shared iterate: the scratch comparators below
	// decompose Rate/Off in place (lazy denominators), and the table may
	// be shared with concurrent grid cells.
	scale := clockfn.RatLinear{
		Rate: new(big.Rat).Set(iters[i].Rate),
		Off:  new(big.Rat).Set(iters[i].Off),
	}
	var scr clockfn.RatScratch
	gi, gj := g.Name(cover.Phi[i]), g.Name(cover.Phi[(i+1)%size])
	third := otherTriangleNode(gi, gj)

	// Scripted border traffic: messages into i from i-1 (played as
	// third->gi) and into i+1 from i+2 (played as third->gj), times
	// scaled by h^{-i}. Each edge's sends are already time-ordered and
	// scaling preserves order, so a merge replaces the full sort.
	var intoGi, intoGj []timedsim.ScriptedSend
	prev, next := (i-1+size)%size, (i+2)%size
	for _, rec := range ringRun.Sends[graph.Edge{From: s.Name(prev), To: s.Name(i)}] {
		intoGi = append(intoGi, timedsim.ScriptedSend{At: scale.At(rec.At), To: gi, Payload: rec.Payload})
	}
	for _, rec := range ringRun.Sends[graph.Edge{From: s.Name(next), To: s.Name((i + 1) % size)}] {
		intoGj = append(intoGj, timedsim.ScriptedSend{At: scale.At(rec.At), To: gj, Payload: rec.Payload})
	}
	script := mergeScript(&scr, intoGi, intoGj)

	tri := graph.Triangle()
	nodes := make([]timedsim.Node, 3)
	for idx := 0; idx < 3; idx++ {
		name := tri.Name(idx)
		switch name {
		case gi:
			dev := builders[name](name, triNeighbors(tri, name))
			dev.Init(name, triNeighbors(tri, name))
			nodes[idx] = timedsim.Node{Device: dev, Clock: params.Q}
		case gj:
			dev := builders[name](name, triNeighbors(tri, name))
			dev.Init(name, triNeighbors(tri, name))
			nodes[idx] = timedsim.Node{Device: dev, Clock: params.P}
		case third:
			nodes[idx] = timedsim.Node{Script: script, Clock: params.Q}
		}
	}
	until := scale.At(tSecond)
	triRun, err := timedsim.Execute(&timedsim.System{G: tri, Nodes: nodes, Delta: params.Delta}, until)
	if err != nil {
		return err
	}
	// Compare tick sequences: ring node i vs triangle gi, ring i+1 vs gj.
	pairs := []struct {
		ringNode int
		gName    string
	}{{i, gi}, {(i + 1) % size, gj}}
	for _, pair := range pairs {
		ringTicks := ringRun.Ticks[pair.ringNode]
		triTicks, err := triRun.TicksOf(pair.gName)
		if err != nil {
			return err
		}
		if len(ringTicks) != len(triTicks) {
			return fmt.Errorf("node %s: %d ring ticks vs %d triangle ticks",
				pair.gName, len(ringTicks), len(triTicks))
		}
		for j := range ringTicks {
			rt, tt := ringTicks[j], triTicks[j]
			if scr.CmpAt(scale, rt.Time, tt.Time) != 0 {
				return fmt.Errorf("node %s tick %d: scaled time %s != %s",
					pair.gName, j, scale.At(rt.Time).RatString(), tt.Time.RatString())
			}
			if scr.Cmp(rt.HW, tt.HW) != 0 {
				return fmt.Errorf("node %s tick %d: hw %s != %s",
					pair.gName, j, rt.HW.RatString(), tt.HW.RatString())
			}
			if rt.Snapshot != tt.Snapshot {
				return fmt.Errorf("node %s tick %d: snapshots differ: %q vs %q",
					pair.gName, j, rt.Snapshot, tt.Snapshot)
			}
		}
	}
	return nil
}

func otherTriangleNode(a, b string) string {
	for _, n := range []string{"a", "b", "c"} {
		if n != a && n != b {
			return n
		}
	}
	return ""
}

func triNeighbors(tri *graph.Graph, name string) []string {
	var out []string
	u := tri.MustIndex(name)
	for _, v := range tri.Neighbors(u) {
		out = append(out, tri.Name(v))
	}
	return sortedStrings(out)
}

// mergeScript merges two time-sorted script fragments into one sorted
// script, with dst's sends winning ties — exactly the order a stable
// insertion sort of dst followed by add would produce, but in linear time
// and with the allocation-free scratch comparator instead of big.Rat.Cmp
// (which builds two fresh Ints per call). Script assembly used to be the
// single largest allocation site of the corollary grids.
func mergeScript(scr *clockfn.RatScratch, dst, add []timedsim.ScriptedSend) []timedsim.ScriptedSend {
	if len(dst) == 0 {
		return add
	}
	if len(add) == 0 {
		return dst
	}
	out := make([]timedsim.ScriptedSend, 0, len(dst)+len(add))
	i, j := 0, 0
	for i < len(dst) && j < len(add) {
		if scr.Cmp(dst[i].At, add[j].At) <= 0 {
			out = append(out, dst[i])
			i++
		} else {
			out = append(out, add[j])
			j++
		}
	}
	out = append(out, dst[i:]...)
	return append(out, add[j:]...)
}
