package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"flm"
	"flm/internal/obs"
	"flm/internal/runcache"
	"flm/internal/sweep"
)

// The bench subcommand is the repository's perf-regression tool: it runs
// the E1-E20 experiment suite (the exact code that regenerates
// EXPERIMENTS.md) plus a handful of micro workloads, and writes a
// machine-readable BENCH_<date>.json so successive PRs leave a perf
// trajectory that can be diffed instead of guessed at.

// BenchEntry is one benchmarked workload.
type BenchEntry struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	Runs        int    `json:"runs"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

// BenchReport is the whole file: environment header plus entries.
type BenchReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"sweep_workers"`
	Entries    []BenchEntry `json:"entries"`
}

// measure times fn once per run and keeps the fastest run's figures.
// Scheduler interference on a shared core only ever adds time, so the
// minimum is a far more stable estimator than the mean — a mean-of-3
// gate at a few percent is unusable when a single preemption can double
// a short entry. Each run starts from a cold run cache behind a GC
// fence, so runs are identical, independent workloads: earlier entries
// (and earlier runs) must not donate cache hits or leave retained runs
// in the live heap inflating GC mark phases, while hits *within* one
// run — chain builders re-splicing the same cover run — are still part
// of the measured workload. Allocation counters are taken from the
// fastest run; they are deterministic per cold run anyway.
func measure(id, name string, runs int, fn func() error) (BenchEntry, error) {
	best := BenchEntry{ID: id, Name: name, Runs: runs}
	for i := 0; i < runs; i++ {
		flm.ResetRunCaches()
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := fn(); err != nil {
			return BenchEntry{}, fmt.Errorf("%s: %w", id, err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if i == 0 || elapsed.Nanoseconds() < best.NsPerOp {
			best.NsPerOp = elapsed.Nanoseconds()
			best.AllocsPerOp = after.Mallocs - before.Mallocs
			best.BytesPerOp = after.TotalAlloc - before.TotalAlloc
		}
	}
	return best, nil
}

func cmdBench(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	outPath := fs.String("o", "", "output JSON path (default BENCH_<date>.json)")
	runs := fs.Int("runs", 3, "cold runs per workload; the fastest is reported")
	entries := fs.String("entries", "", "comma-separated entry IDs to run (default all); the report and any -compare gate then cover only these")
	workers := fs.Int("workers", 0, "sweep worker count (0 = FLM_WORKERS env or GOMAXPROCS)")
	compare := fs.String("compare", "auto", "baseline BENCH json to diff the fresh numbers against; \"auto\" picks the newest committed BENCH_*.json, \"off\" disables")
	threshold := fs.Float64("threshold", 0, "regression gate: exit nonzero if any shared entry's allocs/op or B/op worsens by more than this percent; ns/op is flagged but not gated (0 = report-only)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole suite to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile (post-suite, after GC) to this file")
	tracePath := fs.String("trace", "", "write a JSONL instrumentation trace (spans+metrics) to this file; FLM_TRACE is the env fallback")
	obsListen := fs.String("obs-listen", "", "serve live /metrics, /healthz, /progress, and /debug/pprof on this address for the duration of the run; FLM_OBS_LISTEN is the env fallback")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *runs < 1 {
		fmt.Fprintln(out, "bench: -runs must be >= 1")
		return 2
	}
	prev := sweep.SetWorkers(*workers)
	defer sweep.SetWorkers(prev)

	// Bench numbers are cold-run numbers. main() never installs the disk
	// cache tier for the bench command, and this uninstall makes the
	// invariant local: even if an embedder (or a future refactor) wired a
	// store first, every measured run recomputes instead of deserializing
	// warm blobs. TestBenchBypassesDiskTier pins this.
	defer flm.DisableDiskRunCache()()

	// -entries filter: run only the named workloads (e.g. the CI perf
	// gate benches just the micros it can time deterministically).
	wanted := map[string]bool{}
	if *entries != "" {
		for _, id := range strings.Split(*entries, ",") {
			if id = strings.TrimSpace(id); id != "" {
				wanted[id] = true
			}
		}
	}
	selected := func(id string) bool { return len(wanted) == 0 || wanted[id] }

	stopTrace, err := startTrace(traceTarget(*tracePath), out)
	if err != nil {
		fmt.Fprintf(out, "bench: %v\n", err)
		return 1
	}
	defer stopTrace()
	sess, err := startObs(obsListenTarget(*obsListen))
	if err != nil {
		fmt.Fprintf(out, "bench: %v\n", err)
		return 1
	}
	defer sess.stop()

	date := time.Now().Format("2006-01-02")
	path := *outPath
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	// Resolve the baseline before running anything: "auto" (the default)
	// diffs against the newest committed BENCH_*.json — excluding the
	// file this run is about to write — so every bench run shows its
	// trajectory without anyone remembering the baseline's name.
	var baseline *BenchReport
	baseName := *compare
	switch strings.ToLower(*compare) {
	case "", "off", "none":
		baseline = nil
	case "auto":
		newest, err := newestBaseline(path)
		if err != nil {
			fmt.Fprintf(out, "bench: %v\n", err)
			return 1
		}
		if newest == "" {
			fmt.Fprintln(out, "bench: no committed BENCH_*.json baseline; skipping comparison")
		} else {
			b, err := loadBenchReport(newest)
			if err != nil {
				fmt.Fprintf(out, "bench: %v\n", err)
				return 1
			}
			baseline, baseName = b, newest
		}
	default:
		b, err := loadBenchReport(*compare)
		if err != nil {
			fmt.Fprintf(out, "bench: %v\n", err)
			return 1
		}
		baseline = b
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(out, "bench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(out, "bench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	// Open the output before the (minutes-long) suite so a bad path
	// fails now, not after the benchmarks have run.
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(out, "bench: %v\n", err)
		return 1
	}
	defer f.Close()

	report := BenchReport{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    sweep.Workers(),
	}

	for _, e := range flm.Experiments() {
		exp := e
		if !selected(exp.ID) {
			continue
		}
		entry, err := measure(exp.ID, exp.Name, *runs, labeled(exp.ID, func() error {
			_, err := exp.Run()
			return err
		}))
		if err != nil {
			fmt.Fprintf(out, "bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "%-28s %12d ns/op %12d allocs/op %14d B/op\n",
			entry.ID, entry.NsPerOp, entry.AllocsPerOp, entry.BytesPerOp)
		report.Entries = append(report.Entries, entry)
	}

	for _, m := range microBenches() {
		if !selected(m.id) {
			continue
		}
		entry, err := measure(m.id, m.name, *runs, labeled(m.id, m.fn))
		if err != nil {
			fmt.Fprintf(out, "bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "%-28s %12d ns/op %12d allocs/op %14d B/op\n",
			entry.ID, entry.NsPerOp, entry.AllocsPerOp, entry.BytesPerOp)
		report.Entries = append(report.Entries, entry)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(out, "bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if _, err := f.Write(data); err != nil {
		fmt.Fprintf(out, "bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(out, "wrote %s (%d entries)\n", path, len(report.Entries))

	if *memprofile != "" {
		mf, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(out, "bench: %v\n", err)
			return 1
		}
		defer mf.Close()
		runtime.GC() // profile the retained heap, not the final round's garbage
		if err := pprof.WriteHeapProfile(mf); err != nil {
			fmt.Fprintf(out, "bench: %v\n", err)
			return 1
		}
	}

	if baseline != nil {
		if regressed := compareReports(out, &report, baseline, baseName, *threshold); regressed {
			return 3
		}
	}
	return 0
}

// newestBaseline picks the newest committed BENCH_*.json in the working
// directory — dated names sort lexicographically — skipping the file the
// current run is writing (comparing a report to itself proves nothing).
func newestBaseline(exclude string) (string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", err
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if filepath.Clean(matches[i]) != filepath.Clean(exclude) {
			return matches[i], nil
		}
	}
	return "", nil
}

// loadBenchReport reads a committed BENCH_<date>.json baseline.
func loadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// pctDelta is the percent change from old to new; a zero baseline with a
// nonzero current reads as +100% so it can still trip the gate.
func pctDelta(cur, old float64) float64 {
	if old == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return 100 * (cur - old) / old
}

// compareReports prints per-entry ns/op, allocs/op and B/op deltas of cur
// against base, matching entries by ID. Entries present on only one side
// are reported but never gate. With threshold > 0, any shared entry
// whose allocs/op or B/op worsened by more than threshold percent marks
// the comparison regressed (the returned bool). ns/op deltas are
// reported — and flagged when they exceed the threshold — but never
// gate: allocation counts are deterministic per workload, wall-clock on
// a shared machine is not, and a gate that can fail on an idle
// neighbor's load spike trains people to ignore it. Chase a flagged
// ns-only delta with -cpuprofile on a quiet machine.
func compareReports(out io.Writer, cur, base *BenchReport, baseName string, threshold float64) bool {
	baseByID := make(map[string]BenchEntry, len(base.Entries))
	for _, e := range base.Entries {
		baseByID[e.ID] = e
	}
	fmt.Fprintf(out, "\ncomparison vs %s (positive = worse):\n", baseName)
	regressed := false
	seen := make(map[string]bool, len(cur.Entries))
	for _, e := range cur.Entries {
		seen[e.ID] = true
		b, ok := baseByID[e.ID]
		if !ok {
			fmt.Fprintf(out, "%-28s new entry, no baseline\n", e.ID)
			continue
		}
		dns := pctDelta(float64(e.NsPerOp), float64(b.NsPerOp))
		dal := pctDelta(float64(e.AllocsPerOp), float64(b.AllocsPerOp))
		dby := pctDelta(float64(e.BytesPerOp), float64(b.BytesPerOp))
		flag := ""
		if threshold > 0 {
			if dal > threshold || dby > threshold {
				regressed = true
				flag = "  REGRESSION"
			} else if dns > threshold {
				flag = "  ns regression (not gated)"
			}
		}
		fmt.Fprintf(out, "%-28s ns/op %+7.1f%%   allocs/op %+7.1f%%   B/op %+7.1f%%%s\n",
			e.ID, dns, dal, dby, flag)
	}
	removed := make([]string, 0)
	for id := range baseByID {
		if !seen[id] {
			removed = append(removed, id)
		}
	}
	sort.Strings(removed)
	for _, id := range removed {
		fmt.Fprintf(out, "%-28s present in baseline only\n", id)
	}
	if regressed {
		fmt.Fprintf(out, "bench: regression above %.1f%% threshold\n", threshold)
	}
	return regressed
}

// labeled wraps a workload in a pprof label carrying its bench entry ID.
// Sweep worker goroutines spawned inside inherit the label, so a
// -cpuprofile of the suite attributes every sample — including parallel
// sweep work — to the experiment that caused it.
func labeled(id string, fn func() error) func() error {
	return func() error {
		var err error
		pprof.Do(context.Background(), pprof.Labels("flm_experiment", id), func(context.Context) {
			err = fn()
		})
		return err
	}
}

type microBench struct {
	id, name string
	fn       func() error
}

// microBenches are the substrate workloads tracked alongside the
// experiment suite: the raw simulator hot path (full vs fast recording)
// and the sweep engine at 1 worker vs the configured fan-out.
func microBenches() []microBench {
	eigTrial := func(opts flm.ExecuteOpts) func() error {
		return func() error {
			g := flm.Complete(10)
			honest := flm.NewEIG(3, g.Names())
			inputs := map[string]flm.Input{}
			for i, name := range g.Names() {
				inputs[name] = flm.BoolInput(i%2 == 0)
			}
			trial := flm.ByzantineTrial{G: g, Inputs: inputs, Honest: honest, Rounds: flm.EIGRounds(3)}
			_, _, rep, err := trial.RunWith(opts)
			if err != nil {
				return err
			}
			if !rep.OK() {
				return fmt.Errorf("eig trial failed: %v", rep.Err())
			}
			return nil
		}
	}
	censusSweep := func(workers int) func() error {
		e17, ok := flm.FindExperiment("E17")
		return func() error {
			if !ok {
				return fmt.Errorf("experiment E17 not registered")
			}
			prev := sweep.SetWorkers(workers)
			defer sweep.SetWorkers(prev)
			_, err := e17.Run()
			return err
		}
	}
	// The obs-disabled entry runs the fast-mode trial with the tracer
	// forcibly uninstalled, so even under `bench -trace` it measures the
	// instrumentation-free engine. Diffing it against micro:eig-n10-f3-fast
	// in a -compare run is the standing zero-overhead check on the obs
	// layer (the in-repo BenchmarkObsDisabled pins the allocs to zero).
	obsOff := eigTrial(flm.ExecuteOpts{})
	// micro:timedsim-tick isolates the timed simulator's tick loop: one
	// Theorem 8 ring of chase devices, dominated by per-tick rational
	// scheduling and message delivery (the arena + incremental-schedule
	// hot path). micro:eig-resolve isolates the EIG tree: K9, f=2 honest
	// trials over 16 distinct input patterns, dominated by flat-tree
	// claim absorption and bottom-up resolution.
	timedTick := func() error {
		params := flm.SyncParams{
			P:      flm.RatIdentity(),
			Q:      flm.NewRatClock(3, 2, 0, 1),
			L:      flm.LinearClock{Rate: 1, Off: 0},
			U:      flm.LinearClock{Rate: 1, Off: 4},
			Alpha:  1.5,
			TPrime: big.NewRat(4, 1),
			Delta:  big.NewRat(1, 2),
		}
		builders := map[string]flm.SyncBuilder{
			"a": flm.NewChaseClock(params.L),
			"b": flm.NewChaseClock(params.L),
			"c": flm.NewChaseClock(params.L),
		}
		r, err := flm.ProveClockSync(params, builders)
		if err != nil {
			return err
		}
		if !r.Contradicted() {
			return fmt.Errorf("timedsim tick bench: expected a Theorem 8 violation")
		}
		return nil
	}
	// micro:async-sched isolates the asynchronous delivery ring: the FLP
	// Section 4 initdead protocol on K7 t=3 under seeded delay schedules,
	// one dead node per trial, eight distinct (seed, inputs, dead) combos
	// so every execution is a run-cache miss. Dominated by delay-table
	// lookups and ring-slot wiping in the executor's delivery loop.
	asyncSched := func() error {
		g := flm.Complete(7)
		names := g.Names()
		honest := flm.NewInitdead(3)
		const maxDelay = 2
		rounds := flm.InitdeadRounds(maxDelay)
		for v := 0; v < 8; v++ {
			delays := flm.SeededDelays(int64(v+1), names, rounds, maxDelay)
			p := flm.Protocol{Builders: map[string]flm.Builder{}, Inputs: map[string]flm.Input{}}
			var live []string
			for i, name := range names {
				p.Inputs[name] = flm.BoolInput((i+v)%2 == 0)
				if i == v%7 {
					p.Builders[name] = flm.InitiallyDead()
				} else {
					p.Builders[name] = honest
					live = append(live, name)
				}
			}
			sys, err := flm.NewSystem(g, p)
			if err != nil {
				return err
			}
			run, err := flm.ExecuteWith(sys, rounds, flm.ExecuteOpts{Delays: delays})
			if err != nil {
				return err
			}
			if rep := flm.CheckInitdead(run, live); !rep.OK() {
				return fmt.Errorf("async-sched bench: seed %d: %v", v+1, rep.Err())
			}
		}
		return nil
	}
	eigResolve := func() error {
		g := flm.Complete(9)
		honest := flm.NewEIG(2, g.Names())
		for bits := 0; bits < 16; bits++ {
			inputs := map[string]flm.Input{}
			for i, name := range g.Names() {
				inputs[name] = flm.BoolInput(bits&(1<<uint(i%4)) != 0)
			}
			trial := flm.ByzantineTrial{G: g, Inputs: inputs, Honest: honest, Rounds: flm.EIGRounds(2)}
			_, _, rep, err := trial.RunWith(flm.ExecuteOpts{})
			if err != nil {
				return err
			}
			if !rep.OK() {
				return fmt.Errorf("eig resolve bench: trial failed: %v", rep.Err())
			}
		}
		return nil
	}
	// micro:cache-evict isolates the run cache's L1 bookkeeping under
	// eviction pressure: a 64KiB cache fed 4096 ~1KiB values (64x the
	// budget) twice over, so nearly every Do is a miss that inserts,
	// promotes, and evicts through the sharded LRU; the second pass adds
	// the evicted-key-recompute path. No sim work — the measured cost is
	// keys (sha256 hashing), shard locking, list surgery, and budget
	// accounting, which is exactly the machinery this PR put on the
	// ExecuteCtx hot path.
	cacheEvict := func() error {
		c := runcache.New(runcache.WithBudget(64<<10), runcache.WithCost(func(v any) int64 {
			return int64(len(v.(string))) + 16
		}))
		val := strings.Repeat("x", 1024)
		keys := make([]string, 4096)
		for i := range keys {
			h := runcache.NewHasher("bench.cache-evict/v1")
			h.Int(i)
			keys[i] = h.Sum()
		}
		computes := 0
		for pass := 0; pass < 2; pass++ {
			for _, k := range keys {
				if _, err := c.Do(k, func() (any, error) {
					computes++
					return val, nil
				}); err != nil {
					return err
				}
			}
		}
		st := c.Stats()
		if st.Evictions == 0 {
			return fmt.Errorf("cache-evict bench: no evictions (budget not enforced?)")
		}
		if st.BytesRetained > 64<<10 {
			return fmt.Errorf("cache-evict bench: retained %d bytes over the 64KiB budget", st.BytesRetained)
		}
		if computes < 4096 {
			return fmt.Errorf("cache-evict bench: only %d computes for 4096 distinct keys", computes)
		}
		return nil
	}
	return []microBench{
		{"micro:eig-n10-f3-full", "EIG trial, full recording", eigTrial(flm.FullRecording)},
		{"micro:eig-n10-f3-fast", "EIG trial, decision-only fast mode", eigTrial(flm.ExecuteOpts{})},
		{"micro:e17-census-seq", "E17 frontier census, 1 sweep worker", censusSweep(1)},
		{"micro:e17-census-par", "E17 frontier census, default sweep workers", censusSweep(0)},
		{"micro:obs-disabled", "EIG trial, fast mode, tracing forcibly disabled", func() error {
			restore := obs.SetTracer(nil)
			defer restore()
			return obsOff()
		}},
		{"micro:timedsim-tick", "Theorem 8 ring of chase devices (timed tick loop)", timedTick},
		{"micro:eig-resolve", "EIG K9 f=2, 16 input patterns (flat-tree resolve)", eigResolve},
		{"micro:async-sched", "initdead K7 t=3 under seeded delay schedules (delivery ring)", asyncSched},
		{"micro:cache-evict", "runcache L1 under 64x eviction pressure (sharded LRU)", cacheEvict},
	}
}
