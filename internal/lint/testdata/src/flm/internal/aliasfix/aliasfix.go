// Package aliasfix exercises flmalias: Step/Tick implementations must
// not retain executor-owned buffers past the call.
package aliasfix

import "math/big"

type Message struct {
	From    string
	Payload string
	SentAt  *big.Rat
}

type Send struct{ To, Payload string }

var sink map[string]string

type keeper struct {
	saved map[string]string
	names []string
}

func (k *keeper) Step(round int, inbox map[string]string) map[string]string {
	k.saved = inbox // want `keeper\.Step retains the executor-owned inbox map`
	sink = inbox    // want `keeper\.Step retains the executor-owned inbox map`
	tmp := inbox
	k.saved = tmp // want `inbox map \(via local alias\)`
	for from := range inbox {
		k.names = append(k.names, from) // append copies the string: ok
	}
	v := inbox["a"] // a string value cannot alias the map: ok
	_ = v
	return nil
}

type ticker struct {
	frozen []Message
	first  *Message
	hw     *big.Rat
	bodies []string
	out    []Send
}

func (t *ticker) Tick(k int, hw *big.Rat, inbox []Message) []Send {
	t.frozen = inbox     // want `ticker\.Tick retains the executor-owned inbox slice`
	t.frozen = inbox[1:] // want `inbox slice`
	t.first = &inbox[0]  // want `inbox slice`
	t.hw = hw            // want `scratch register`

	// Copies launder ownership: none of these are findings.
	t.bodies = t.bodies[:0]
	for _, m := range inbox {
		t.bodies = append(t.bodies, m.Payload)
	}
	rat := new(big.Rat).Set(hw) // the call breaks the alias chain
	_ = rat
	_ = inbox // blank assignment does not escape
	t.out = t.out[:0]
	return t.out
}
