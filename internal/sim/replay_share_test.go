package sim

import (
	"reflect"
	"testing"

	"flm/internal/graph"
)

// TestReplayScriptsNotAliased pins the sharing contract introduced when
// NewReplayDevice stopped deep-copying scripts: the device shares the
// caller's backing slices, so it must never write to them — running a
// full system of replay devices leaves every source sequence
// byte-identical — while map-level mutation (Init's pruning of
// non-neighbor scripts) must stay confined to the device's own map.
func TestReplayScriptsNotAliased(t *testing.T) {
	g := graph.MustNew("a", "b", "c")
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}

	scripts := map[string][]Payload{
		"a":   {"x", None, "y"},
		"b":   {"m", "n", None},
		"c":   {None, "p", "q"},
		"far": {"dropped"}, // not a neighbor of anyone; Init must prune it
	}
	want := make(map[string][]Payload, len(scripts))
	for nb, seq := range scripts {
		want[nb] = append([]Payload(nil), seq...)
	}

	p := Protocol{Builders: map[string]Builder{}, Inputs: map[string]Input{}}
	for _, name := range g.Names() {
		p.Builders[name] = ReplayBuilder(scripts)
		p.Inputs[name] = Input("0")
	}
	sys, err := NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(sys, 3); err != nil {
		t.Fatal(err)
	}

	// The shared backing slices must be untouched...
	for nb, seq := range scripts {
		if !reflect.DeepEqual(seq, want[nb]) {
			t.Fatalf("script %q mutated through sharing: %v, want %v", nb, seq, want[nb])
		}
	}
	// ...including the caller's map itself: Init prunes the device's own
	// clone, never the source.
	if len(scripts) != len(want) {
		t.Fatalf("caller's script map shrank to %d entries, want %d", len(scripts), len(want))
	}

	// Two devices built from one script map share slices; both replaying
	// the full schedule proves reads are independent of the sharing.
	d1 := NewReplayDevice(scripts)
	d1.Init("a", []string{"b", "c"}, "0")
	d2 := NewReplayDevice(scripts)
	d2.Init("a", []string{"b", "c"}, "0")
	for r := 0; r < 3; r++ {
		o1 := d1.Step(r, nil)
		// The Outbox is a reused buffer (Device contract), so compare
		// before stepping the second device via a copy.
		got := make(map[string]Payload, len(o1))
		for k, v := range o1 {
			got[k] = v
		}
		o2 := d2.Step(r, nil)
		if !reflect.DeepEqual(got, map[string]Payload(o2)) {
			t.Fatalf("round %d: sibling replay devices diverged: %v vs %v", r, got, o2)
		}
	}
}

// TestReplayFingerprintTracksScripts ensures the replay fingerprint is
// exactly the post-Init script content: equal scripts collide, different
// payloads or audiences do not.
func TestReplayFingerprintTracksScripts(t *testing.T) {
	build := func(scripts map[string][]Payload) *ReplayDevice {
		d := NewReplayDevice(scripts)
		d.Init("x", []string{"a", "b"}, "0")
		return d
	}
	base := map[string][]Payload{"a": {"1", "2"}, "b": {"3"}}
	same := map[string][]Payload{"a": {"1", "2"}, "b": {"3"}}
	if build(base).DeviceFingerprint() != build(same).DeviceFingerprint() {
		t.Fatal("identical scripts produced different fingerprints")
	}
	diff := map[string][]Payload{"a": {"1", "2"}, "b": {"4"}}
	if build(base).DeviceFingerprint() == build(diff).DeviceFingerprint() {
		t.Fatal("different payloads collided")
	}
	moved := map[string][]Payload{"a": {"1", "2", "3"}, "b": {}}
	if build(base).DeviceFingerprint() == build(moved).DeviceFingerprint() {
		t.Fatal("different audiences collided")
	}
}
