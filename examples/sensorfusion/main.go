// Sensor fusion: seven redundant temperature sensors must settle on a
// common reading within 0.05 degrees although two of them are broken and
// actively lying. DLPSW iterated approximate agreement (n = 7 >= 3f+1
// with f = 2) converges geometrically inside the honest reading range —
// and the same algorithm on three sensors with one fault is provably
// hopeless (FLM85 Theorem 5).
package main

import (
	"fmt"
	"log"
	"math"

	"flm"
)

func main() {
	g := flm.Complete(7)
	const (
		f     = 2
		eps   = 0.05
		delta = 1.2 // honest readings span at most 1.2 degrees
	)
	readings := map[string]float64{
		"p0": 20.1, "p1": 20.4, "p2": 19.9, "p3": 20.7,
		"p4": 20.3, // p5, p6 are broken
		"p5": -40, "p6": 99,
	}
	rounds := flm.ApproxRoundsFor(delta, eps)
	honest := flm.NewDLPSW(f, g.Names(), rounds)

	p := flm.Protocol{Builders: map[string]flm.Builder{}, Inputs: map[string]flm.Input{}}
	for _, name := range g.Names() {
		p.Inputs[name] = flm.RealInput(readings[name])
		p.Builders[name] = honest
	}
	// p5 babbles random numbers, p6 equivocates between two extremes.
	p.Builders["p5"] = flm.Noise(7, "0", "100", "-100", "20.0", "boom")
	p.Builders["p6"] = flm.Equivocate(honest, flm.RealInput(-40), flm.RealInput(99),
		func(nb string) bool { return nb < "p3" })

	sys, err := flm.NewSystem(g, p)
	if err != nil {
		log.Fatal(err)
	}
	run, err := flm.Execute(sys, rounds+1)
	if err != nil {
		log.Fatal(err)
	}
	correct := []string{"p0", "p1", "p2", "p3", "p4"}
	fmt.Printf("DLPSW with n=7, f=2, %d averaging rounds (target eps=%.2f):\n", rounds, eps)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, name := range correct {
		d, _ := run.DecisionOf(name)
		var v float64
		fmt.Sscanf(d.Value, "%g", &v)
		lo, hi = math.Min(lo, v), math.Max(hi, v)
		fmt.Printf("  %s: %.5f (raw reading %.1f)\n", name, v, readings[name])
	}
	fmt.Printf("spread %.5f <= eps %.2f: %v; inside honest range [19.9, 20.7]: %v\n",
		hi-lo, eps, hi-lo <= eps, lo >= 19.9 && hi <= 20.7)

	rep := flm.CheckEDG(run, correct, eps, 0)
	fmt.Printf("(ε,δ,γ)-agreement conditions hold: %v\n", rep.OK())

	// Three sensors, one broken: impossible, mechanically.
	tri := flm.Triangle()
	builders := map[string]flm.Builder{}
	for _, name := range tri.Names() {
		builders[name] = flm.NewDLPSW(1, tri.Names(), 4)
	}
	cr, err := flm.ProveSimpleApprox(builders, "dlpsw", 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nThree sensors, one fault (FLM85 Theorem 5):\n%s", cr)
}
