// Package fpfix exercises flmfingerprint: constructor-only fields of a
// DeviceFingerprint implementation must reach the fingerprint.
package fpfix

import "fmt"

// good folds all constructor state in; its memoized fp, its
// Step-mutated round, and its func-typed builder are exempt by
// construction (they are assigned in methods or cannot be hashed).
type good struct {
	seed  int64
	alpha string
	fp    string
	round int
	build func() string
}

func (d *good) DeviceFingerprint() string {
	if d.fp == "" {
		d.fp = fmt.Sprintf("good:%d:%s", d.seed, d.alpha)
	}
	return d.fp
}

func (d *good) Step() { d.round++ }

// bad misses alpha: two devices differing only in alpha would share a
// cache key. This is the acceptance case — deleting a field reference
// from a fingerprint must fail the analyzer.
type bad struct {
	seed  int64
	alpha string // want `field bad\.alpha is constructor state that never reaches DeviceFingerprint`
}

func (d *bad) DeviceFingerprint() string {
	return fmt.Sprintf("bad:%d", d.seed)
}

// annotated documents why a field is deliberately outside the key.
type annotated struct {
	seed int64
	//flmlint:allow flmfingerprint fixture: derived from seed, which is keyed
	derived string
}

func (d *annotated) DeviceFingerprint() string {
	return fmt.Sprintf("annotated:%d", d.seed)
}

// plain has unused fields but no DeviceFingerprint method, so the
// analyzer has nothing to say about it.
type plain struct {
	x int
}

var _ = plain{}
