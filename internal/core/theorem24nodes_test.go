package core

import (
	"strings"
	"testing"

	"flm/internal/byzantine"
	"flm/internal/firingsquad"
	"flm/internal/graph"
	"flm/internal/weak"
)

func TestWeakAgreementNodesRingTriangleEquivalent(t *testing.T) {
	// With singleton blocks on the triangle, the block ring reduces to
	// the direct ring argument and must defeat the same devices.
	g := graph.Triangle()
	cr, err := WeakAgreementNodesRing(g, 1, []int{0}, []int{1}, []int{2},
		uniformBuilders(g, weak.NewDetectDefault(3)), "detect-default", 16)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !cr.Contradicted() {
		t.Fatalf("device survived:\n%s", cr)
	}
}

func TestWeakAgreementNodesRingGeneralCase(t *testing.T) {
	// K6 with f=2: blocks of two nodes each.
	g := graph.Complete(6)
	cr, err := WeakAgreementNodesRing(g, 2, []int{0, 1}, []int{2, 3}, []int{4, 5},
		uniformBuilders(g, weak.NewDetectDefault(3)), "detect-default", 16)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !cr.Contradicted() {
		t.Fatalf("device survived on K6:\n%s", cr)
	}
	for _, v := range cr.Violations {
		if strings.HasPrefix(v.Link, "B") {
			t.Errorf("violation in base run: %v", v)
		}
	}
	// Every ring scenario's faulty set is one block (<= f nodes).
	for _, link := range cr.Links[2:] {
		if len(link.Faulty) > 2 {
			t.Errorf("%s has %d faulty nodes, want <= f=2", link.Name, len(link.Faulty))
		}
	}
}

func TestWeakAgreementNodesRingUnevenBlocks(t *testing.T) {
	g := graph.Complete(5)
	cr, err := WeakAgreementNodesRing(g, 2, []int{0, 1}, []int{2, 3}, []int{4},
		uniformBuilders(g, byzantine.NewMajority(3)), "majority", 16)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !cr.Contradicted() {
		t.Fatalf("majority survived on K5:\n%s", cr)
	}
}

func TestWeakAgreementNodesRingValidation(t *testing.T) {
	g := graph.Complete(4) // n = 3f+1: adequate
	if _, err := WeakAgreementNodesRing(g, 1, []int{0}, []int{1}, []int{2, 3},
		uniformBuilders(g, weak.NewDetectDefault(3)), "x", 12); err == nil {
		t.Error("adequate graph accepted")
	}
	tri := graph.Triangle()
	if _, err := WeakAgreementNodesRing(tri, 1, []int{0, 1}, []int{2}, nil,
		uniformBuilders(tri, weak.NewDetectDefault(3)), "x", 12); err == nil {
		t.Error("empty block accepted")
	}
	if _, err := WeakAgreementNodesRing(tri, 1, []int{0}, []int{0, 1}, []int{2},
		uniformBuilders(tri, weak.NewDetectDefault(3)), "x", 12); err == nil {
		t.Error("overlapping blocks accepted")
	}
}

func TestFiringSquadNodesRingGeneralCase(t *testing.T) {
	g := graph.Complete(6)
	cr, err := FiringSquadNodesRing(g, 2, []int{0, 1}, []int{2, 3}, []int{4, 5},
		uniformBuilders(g, firingsquad.NewCountdown(2)), "countdown-2", 24)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !cr.Contradicted() {
		t.Fatalf("countdown survived on K6:\n%s", cr)
	}
	simultaneity := false
	for _, v := range cr.Violations {
		if strings.HasPrefix(v.Link, "E") && v.Condition == "agreement" {
			simultaneity = true
		}
	}
	if !simultaneity {
		t.Errorf("no simultaneity violation: %v", cr.Violations)
	}
}

func TestFiringSquadNodesRingViaEIG(t *testing.T) {
	// The EIG-based firing squad misapplied at n = 3f.
	g := graph.Triangle()
	cr, err := FiringSquadNodesRing(g, 1, []int{0}, []int{1}, []int{2},
		uniformBuilders(g, firingsquad.NewViaBA(1, g.Names())), "via-eig", 24)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !cr.Contradicted() {
		t.Fatalf("via-eig survived:\n%s", cr)
	}
}
