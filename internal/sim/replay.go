package sim

import (
	"fmt"
	"sort"
	"strings"
)

// ReplayDevice is the executable form of the paper's Fault axiom device
// F_A(E_1,...,E_d): installed at a node, it ignores everything it
// receives and plays a prerecorded payload sequence on each outedge
// independently. The recorded sequences may come from different system
// behaviors — that is the masquerading power the axiom grants to faulty
// nodes.
type ReplayDevice struct {
	self    string
	scripts map[string][]Payload // per-neighbor payload sequence
	round   int
}

var _ Device = (*ReplayDevice)(nil)

// NewReplayDevice builds the Fault-axiom device from per-neighbor payload
// scripts. Missing neighbors stay silent.
func NewReplayDevice(scripts map[string][]Payload) *ReplayDevice {
	copied := make(map[string][]Payload, len(scripts))
	for nb, seq := range scripts {
		copied[nb] = append([]Payload(nil), seq...)
	}
	return &ReplayDevice{scripts: copied}
}

// Builder returns a Builder producing replay devices with the given
// scripts, for installation through NewSystem.
func ReplayBuilder(scripts map[string][]Payload) Builder {
	return func(self string, neighbors []string, input Input) Device {
		d := NewReplayDevice(scripts)
		d.Init(self, neighbors, input)
		return d
	}
}

// Init records the node identity. Scripts addressed to non-neighbors are
// dropped, mirroring how a faulty node can only exhibit behavior on its
// actual outedges.
func (d *ReplayDevice) Init(self string, neighbors []string, input Input) {
	d.self = self
	allowed := make(map[string]bool, len(neighbors))
	for _, nb := range neighbors {
		allowed[nb] = true
	}
	for nb := range d.scripts {
		if !allowed[nb] {
			delete(d.scripts, nb)
		}
	}
}

// Step plays round r of every script, ignoring the inbox entirely.
func (d *ReplayDevice) Step(round int, inbox Inbox) Outbox {
	out := Outbox{}
	for nb, seq := range d.scripts {
		if round < len(seq) && seq[round] != None {
			out[nb] = seq[round]
		}
	}
	d.round = round + 1
	return out
}

// Snapshot encodes the replay position and the scripts (canonical order).
func (d *ReplayDevice) Snapshot() string {
	nbs := make([]string, 0, len(d.scripts))
	for nb := range d.scripts {
		nbs = append(nbs, nb)
	}
	sort.Strings(nbs)
	var b strings.Builder
	fmt.Fprintf(&b, "replay@%d", d.round)
	for _, nb := range nbs {
		fmt.Fprintf(&b, ";%s", nb)
	}
	return b.String()
}

// Output never decides: a faulty node's "choice" is irrelevant to every
// correctness condition.
func (d *ReplayDevice) Output() (Decision, bool) { return Decision{}, false }
