package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTrace writes a synthetic JSONL trace fixture.
func writeTrace(t *testing.T, name string, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// baseTrace is a small healthy trace: two cache-hitting executions, one
// miss, a sweep, and a final metrics line.
func baseTrace(t *testing.T, name string) string {
	return writeTrace(t, name,
		`{"t":"span","id":1,"name":"sim.execute","start_us":0,"dur_us":100,"attrs":{"cache":"hit","messages":10,"bytes":200}}`,
		`{"t":"span","id":2,"name":"sim.execute","start_us":100,"dur_us":100,"attrs":{"cache":"hit","messages":10,"bytes":200}}`,
		`{"t":"span","id":3,"name":"sim.execute","start_us":200,"dur_us":300,"attrs":{"cache":"miss","messages":10,"bytes":200}}`,
		`{"t":"span","id":4,"name":"sweep.map","start_us":0,"dur_us":500,"attrs":{"trials":3}}`,
		`{"t":"metrics","at_us":600,"counters":{"sim.exec.runs":1,"sweep.trials":3},"gauges":{"progress.trials.done":3}}`,
	)
}

func TestStatsDiffIdentical(t *testing.T) {
	old := baseTrace(t, "old.jsonl")
	cur := baseTrace(t, "new.jsonl")
	out, code := capture(t, "stats", "-diff", old, cur)
	if code != 0 {
		t.Fatalf("identical traces: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "no drift beyond threshold") {
		t.Errorf("output lacks the clean verdict:\n%s", out)
	}
}

// TestStatsDiffRegression injects the regression the gate exists for: a
// cache that stopped hitting. The served rate drops 66.7 -> 0 pp and
// the run counter triples, both far past the default threshold.
func TestStatsDiffRegression(t *testing.T) {
	old := baseTrace(t, "old.jsonl")
	cur := writeTrace(t, "new.jsonl",
		`{"t":"span","id":1,"name":"sim.execute","start_us":0,"dur_us":300,"attrs":{"cache":"miss","messages":10,"bytes":200}}`,
		`{"t":"span","id":2,"name":"sim.execute","start_us":300,"dur_us":300,"attrs":{"cache":"miss","messages":10,"bytes":200}}`,
		`{"t":"span","id":3,"name":"sim.execute","start_us":600,"dur_us":300,"attrs":{"cache":"miss","messages":10,"bytes":200}}`,
		`{"t":"span","id":4,"name":"sweep.map","start_us":0,"dur_us":900,"attrs":{"trials":3}}`,
		`{"t":"metrics","at_us":1000,"counters":{"sim.exec.runs":3,"sweep.trials":3},"gauges":{"progress.trials.done":3}}`,
	)
	out, code := capture(t, "stats", "-diff", old, cur)
	if code != 3 {
		t.Fatalf("regressed trace: exit %d, want 3\n%s", code, out)
	}
	for _, want := range []string{"run-cache served-rate", "sim.exec.runs", "drifted beyond"} {
		if !strings.Contains(out, want) {
			t.Errorf("regression report missing %q:\n%s", want, out)
		}
	}
	// Gauges are point-in-time readings and must never gate.
	if strings.Contains(out, "progress.trials.done") {
		t.Errorf("gauge leaked into the diff:\n%s", out)
	}
}

// TestStatsDiffAppearVanish pins infinite drift: a counter present only
// on one side always gates, and renders as ∞.
func TestStatsDiffAppearVanish(t *testing.T) {
	old := writeTrace(t, "old.jsonl",
		`{"t":"span","id":1,"name":"core.splice","start_us":0,"dur_us":10,"attrs":{"cache":"hit"}}`,
		`{"t":"metrics","at_us":20,"counters":{"gone.counter":5}}`,
	)
	cur := writeTrace(t, "new.jsonl",
		`{"t":"span","id":1,"name":"core.splice","start_us":0,"dur_us":10,"attrs":{"cache":"hit"}}`,
		`{"t":"metrics","at_us":20,"counters":{"fresh.counter":5}}`,
	)
	out, code := capture(t, "stats", "-diff", "-threshold", "99", old, cur)
	if code != 3 {
		t.Fatalf("appear/vanish: exit %d, want 3\n%s", code, out)
	}
	for _, want := range []string{"gone.counter", "fresh.counter", "∞"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestStatsDiffNoTiming checks -notiming drops the span-share family: a
// trace whose only difference is where the wall time went is clean.
func TestStatsDiffNoTiming(t *testing.T) {
	old := writeTrace(t, "old.jsonl",
		`{"t":"span","id":1,"name":"sim.execute","start_us":0,"dur_us":100,"attrs":{"cache":"hit"}}`,
		`{"t":"span","id":2,"name":"sweep.map","start_us":0,"dur_us":100}`,
	)
	cur := writeTrace(t, "new.jsonl",
		`{"t":"span","id":1,"name":"sim.execute","start_us":0,"dur_us":900,"attrs":{"cache":"hit"}}`,
		`{"t":"span","id":2,"name":"sweep.map","start_us":0,"dur_us":100}`,
	)
	if out, code := capture(t, "stats", "-diff", old, cur); code != 3 {
		t.Fatalf("timing drift with shares on: exit %d, want 3\n%s", code, out)
	}
	if out, code := capture(t, "stats", "-diff", "-notiming", old, cur); code != 0 {
		t.Fatalf("-notiming: exit %d, want 0\n%s", code, out)
	}
}

func TestStatsDiffUsageAndErrors(t *testing.T) {
	if out, code := capture(t, "stats", "-diff", "only-one.jsonl"); code != 2 {
		t.Fatalf("one arg: exit %d\n%s", code, out)
	}
	good := baseTrace(t, "good.jsonl")
	if out, code := capture(t, "stats", "-diff", good, filepath.Join(t.TempDir(), "absent.jsonl")); code != 1 {
		t.Fatalf("missing file: exit %d\n%s", code, out)
	}
}

func TestRelDrift(t *testing.T) {
	if d := relDrift(0, 0); d != 0 {
		t.Errorf("relDrift(0,0) = %v", d)
	}
	if d := relDrift(0, 5); !math.IsInf(d, 1) {
		t.Errorf("relDrift(0,5) = %v, want +Inf", d)
	}
	if d := relDrift(100, 93); d != 7 {
		t.Errorf("relDrift(100,93) = %v, want 7", d)
	}
	if d := relDrift(100, 107); d != 7 {
		t.Errorf("relDrift(100,107) = %v, want 7", d)
	}
}
