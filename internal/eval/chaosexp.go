package eval

import (
	"context"
	"fmt"

	"flm/internal/chaos"
)

// E18 parameters: the pinned seed and trial count shared by the CI
// smoke job (`flm chaos -trials 64 -seed 1`), the chaos package tests,
// and EXPERIMENTS.md. They alias the chaos package's exported smoke
// constants so the experiment can never drift from the pinned pair;
// ci_test.go cross-checks the workflow file against the same values.
const (
	e18Seed   = chaos.SmokeSeed
	e18Trials = chaos.SmokeTrials
)

// RunE18 fires the chaos adversary panel: seeded randomized attack
// schedules composed from the adversary strategies, run against EIG,
// phase king, Turpin-Coan, DLPSW approximate agreement, and clock
// synchronization on adequate AND inadequate complete graphs. The
// paper's predictions are the pass criteria — adequate configurations
// all green, inadequate ones violated — and every violation is shrunk
// to a minimal counterexample.
func RunE18() (*Result, error) {
	rep, err := chaos.Run(context.Background(), chaos.Config{Seed: e18Seed, Trials: e18Trials})
	if err != nil {
		return nil, err
	}
	if !rep.OK() {
		return nil, fmt.Errorf("chaos panel found unexpected failures:\n%s", rep.Render())
	}

	type tally struct{ trials, adequate, violations int }
	byProto := map[string]*tally{}
	protoOrder := []string{}
	for i := 0; i < e18Trials; i++ {
		s := chaos.NewSchedule(e18Seed, i)
		tl := byProto[s.Protocol]
		if tl == nil {
			tl = &tally{}
			byProto[s.Protocol] = tl
			protoOrder = append(protoOrder, s.Protocol)
		}
		tl.trials++
		if s.Adequate {
			tl.adequate++
		}
	}
	for _, f := range rep.Expected {
		byProto[f.Schedule.Protocol].violations++
	}

	panel := &Table{
		Title:   fmt.Sprintf("Chaos panel (seed %d, %d trials): violations appear exactly on inadequate graphs", e18Seed, e18Trials),
		Columns: []string{"protocol", "trials", "adequate", "inadequate", "violations", "all adequate green"},
		Notes: []string{
			"schedules are pure functions of (seed, trial); reproduce any row with: flm chaos -seed 1 -trials 64",
			"strategies drawn per trial: silent, crash, omission, noise, equivocation, mirror, replay, clock-liar",
		},
	}
	for _, p := range protoOrder {
		tl := byProto[p]
		panel.AddRow(p, tl.trials, tl.adequate, tl.trials-tl.adequate, tl.violations, true)
	}

	findings := &Table{
		Title:   "Shrunk counterexamples (minimal faulty actions that still violate)",
		Columns: []string{"trial", "schedule", "violated condition", "shrunk faults"},
		Notes: []string{
			"each counterexample is 1-minimal: restoring any faulty node to honesty, or weakening its strategy, loses the violation",
		},
	}
	for _, f := range rep.Expected {
		shrunk := "-"
		if f.Shrunk != nil {
			shrunk = fmt.Sprintf("%d: %s", len(f.Shrunk.Actions), f.Shrunk.Describe())
		}
		findings.AddRow(f.Trial, f.Schedule.Describe(), f.Violation, shrunk)
	}

	return &Result{
		ID:    "E18",
		Name:  "Chaos adversary panel across the adequacy boundary",
		Paper: "Fault axiom (Section 2) + Theorems 1,5,8 predictions",
		Summary: fmt.Sprintf(
			"%d randomized attack schedules: %d green, %d violations — every one on an inadequate graph, every one shrunk to a minimal counterexample.",
			rep.Trials, rep.Green, len(rep.Expected)),
		Tables: []*Table{panel, findings},
	}, nil
}
