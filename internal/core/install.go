// Package core is the FLM85 impossibility engine — the paper's primary
// contribution made executable. Given any deterministic devices that
// claim to solve a consensus problem on an inadequate graph G, the engine
//
//  1. installs the devices on a covering graph S of G (install.go),
//  2. runs S and splices scenarios of the covering run into correct
//     behaviors of G using the Locality and Fault axioms (splice.go),
//  3. evaluates the problem's correctness conditions on each behavior in
//     the chain and reports the condition that breaks (chain.go and the
//     per-theorem files).
//
// At least one condition must break — that is the theorem — and the
// engine fails loudly if its axiom self-checks or the chain logic ever
// find otherwise.
package core

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"flm/internal/graph"
	"flm/internal/sim"
)

// renamedDevice makes a device built for a node of G run at a node of S:
// it translates neighbor names in both directions, so the inner device
// observes exactly the local world it would see in G. Phi preserves
// neighborhoods, so the translation is a bijection on the node's edges.
type renamedDevice struct {
	inner sim.Device
	gName string            // the inner device's G-identity
	toG   map[string]string // S-neighbor name -> G-neighbor name
	//flmlint:allow flmfingerprint inverse of toG, which the fingerprint hashes in full
	toS map[string]string // G-neighbor name -> S-neighbor name

	// Translation buffers reused across Steps (the executor owns the
	// S-inbox and we own the returned S-outbox per the Device contract,
	// so neither is retained by anyone between rounds).
	gInbox sim.Inbox
	out    sim.Outbox
}

var _ sim.Device = (*renamedDevice)(nil)
var _ sim.Fingerprinter = (*renamedDevice)(nil)

func (d *renamedDevice) Init(self string, neighbors []string, input sim.Input) {
	// The inner device was initialized with its G-identity at build time.
}

func (d *renamedDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	if d.gInbox == nil {
		d.gInbox = make(sim.Inbox, len(d.toG))
	} else {
		clear(d.gInbox)
	}
	for from, p := range inbox {
		gFrom, ok := d.toG[from]
		if !ok {
			continue // cannot happen on a verified cover
		}
		d.gInbox[gFrom] = p
	}
	gOut := d.inner.Step(round, d.gInbox)
	if d.out == nil {
		d.out = make(sim.Outbox, len(gOut))
	} else {
		clear(d.out)
	}
	for gTo, p := range gOut {
		sTo, ok := d.toS[gTo]
		if !ok {
			// The inner device addressed a G-node with no local image;
			// drop it (NewSystem would reject the unknown name). A
			// correct cover gives every G-neighbor an image.
			continue
		}
		d.out[sTo] = p
	}
	return d.out
}

// DeviceFingerprint is the inner device's fingerprint qualified by the
// G-identity and the neighbor renaming. The inner fingerprint covers
// type and constructor parameters; gName and the toG map pin down the
// (self, neighbors) the inner device was actually built with, which for
// an installed device differ from the S-node the executor keys on.
func (d *renamedDevice) DeviceFingerprint() string {
	inner := sim.FingerprintOf(d.inner)
	if inner == "" {
		return ""
	}
	pairs := make([]string, 0, len(d.toG))
	for sNb, gNb := range d.toG {
		pairs = append(pairs, sNb+">"+gNb)
	}
	sort.Strings(pairs)
	return "renamed:" + d.gName + "[" + strings.Join(pairs, ",") + "]|" + inner
}

// Snapshot is the inner device's snapshot: the installed node is
// behaviorally indistinguishable from its G counterpart, which is the
// whole point of the covering construction.
func (d *renamedDevice) Snapshot() string { return d.inner.Snapshot() }

func (d *renamedDevice) Output() (sim.Decision, bool) { return d.inner.Output() }

// Installation is a covering system: the cover, the installed protocol,
// and the inputs that were assigned to each S-node. Execute instantiates
// fresh devices each time, so an Installation can be run repeatedly.
type Installation struct {
	Cover    *graph.Cover
	Protocol sim.Protocol
	Inputs   map[string]sim.Input // by S-node name

	// buildersID is the identity of the G-builders map InstallCover
	// received. Builder funcs are not comparable, so the splice cache
	// uses this pointer identity to verify that a SpliceScenario call
	// passes the same builders the installation was made from before it
	// trusts the covering run's fingerprint as the cache key.
	buildersID uintptr
}

// InstallCover assigns to every S-node the device of its G-image (built
// fresh per fiber member, with neighbor names translated) and the given
// per-S-node input. builders is keyed by G-node name, inputs by S-node
// name.
func InstallCover(cover *graph.Cover, builders map[string]sim.Builder, inputs map[string]sim.Input) (*Installation, error) {
	if err := cover.Verify(); err != nil {
		return nil, fmt.Errorf("core: refusing to install on an invalid cover: %w", err)
	}
	s, g := cover.S, cover.G
	p := sim.Protocol{
		Builders: make(map[string]sim.Builder, s.N()),
		Inputs:   make(map[string]sim.Input, s.N()),
	}
	for sn := 0; sn < s.N(); sn++ {
		sName := s.Name(sn)
		gNode := cover.Phi[sn]
		gName := g.Name(gNode)
		builder, ok := builders[gName]
		if !ok {
			return nil, fmt.Errorf("core: no builder for G-node %q (image of %q)", gName, sName)
		}
		input, ok := inputs[sName]
		if !ok {
			return nil, fmt.Errorf("core: no input for S-node %q", sName)
		}
		p.Inputs[sName] = input

		toG := make(map[string]string, s.Degree(sn))
		toS := make(map[string]string, s.Degree(sn))
		for _, nb := range s.Neighbors(sn) {
			sNb, gNb := s.Name(nb), g.Name(cover.Phi[nb])
			toG[sNb] = gNb
			toS[gNb] = sNb
		}
		gNeighbors := make([]string, 0, len(toS))
		for gNb := range toS {
			gNeighbors = append(gNeighbors, gNb)
		}
		sort.Strings(gNeighbors)
		// Capture loop variables for the closure.
		b, in, gn := builder, input, gName
		p.Builders[sName] = func(self string, neighbors []string, _ sim.Input) sim.Device {
			return &renamedDevice{inner: b(gn, gNeighbors, in), gName: gn, toG: toG, toS: toS}
		}
	}
	inputsCopy := make(map[string]sim.Input, len(p.Inputs))
	for k, v := range p.Inputs {
		inputsCopy[k] = v
	}
	return &Installation{
		Cover:      cover,
		Protocol:   p,
		Inputs:     inputsCopy,
		buildersID: reflect.ValueOf(builders).Pointer(),
	}, nil
}

// Execute instantiates the installed devices and runs the covering system
// for the given number of rounds.
func (inst *Installation) Execute(rounds int) (*sim.Run, error) {
	sys, err := sim.NewSystem(inst.Cover.S, inst.Protocol)
	if err != nil {
		return nil, err
	}
	return sim.Execute(sys, rounds)
}
