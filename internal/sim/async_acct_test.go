package sim

import (
	"io"
	"testing"

	"flm/internal/graph"
	"flm/internal/obs"
	"flm/internal/runcache"
)

// asyncCounts is a point-in-time reading of the sim.async.* counters.
type asyncCounts struct {
	sent, delivered, delayed, lost, collided uint64
}

func readAsyncCounts() asyncCounts {
	return asyncCounts{
		sent:      mAsyncSent.Value(),
		delivered: mAsyncDelivered.Value(),
		delayed:   mAsyncDelayed.Value(),
		lost:      mAsyncLost.Value(),
		collided:  mAsyncCollided.Value(),
	}
}

func (a asyncCounts) sub(b asyncCounts) asyncCounts {
	return asyncCounts{
		sent:      a.sent - b.sent,
		delivered: a.delivered - b.delivered,
		delayed:   a.delayed - b.delayed,
		lost:      a.lost - b.lost,
		collided:  a.collided - b.collided,
	}
}

// tracedAsyncDeltas executes one clean run under a discard tracer (run
// cache off, so the executor really runs) and returns the run plus the
// sim.async.* counter deltas it produced.
func tracedAsyncDeltas(t *testing.T, sys *System, rounds int, delays *DelaySchedule) asyncCounts {
	t.Helper()
	restoreCache := runcache.SetEnabled(false)
	defer restoreCache()
	restore := obs.SetTracer(obs.NewTracer(io.Discard))
	defer restore()
	before := readAsyncCounts()
	if _, err := ExecuteWith(sys, rounds, ExecuteOpts{Delays: delays}); err != nil {
		t.Fatalf("execute: %v", err)
	}
	return readAsyncCounts().sub(before)
}

// checkConservation asserts the accounting identity every delay-schedule
// execution must satisfy on a clean run: each sent message is classified
// exactly once as delivered, lost past the horizon, or collided.
func checkConservation(t *testing.T, d asyncCounts) {
	t.Helper()
	if d.sent != d.delivered+d.lost+d.collided {
		t.Errorf("conservation violated: sent %d != delivered %d + lost %d + collided %d",
			d.sent, d.delivered, d.lost, d.collided)
	}
	if d.delayed > d.sent {
		t.Errorf("delayed %d exceeds sent %d", d.delayed, d.sent)
	}
}

// TestAsyncAccountingConservation pins the counters on the canonical
// delay shape: every l1->l0 message of a 2-node gossip line delayed +2
// across a 5-round horizon. The round-0..2 delayed copies land (rounds
// 3..5 would exceed... round r lands at r+3, so rounds 0 and 1 land at
// 3 and 4), later ones and the final synchronous sends fall off the
// horizon.
func TestAsyncAccountingConservation(t *testing.T) {
	g := graph.Line(2)
	sys, err := NewSystem(g, gossipProtocol(g, 5, map[string]Input{"l0": "x", "l1": "y"}))
	if err != nil {
		t.Fatal(err)
	}
	delays := &DelaySchedule{Rules: []DelayRule{
		{From: "l1", To: "l0", Round: 0, Extra: 2},
		{From: "l1", To: "l0", Round: 1, Extra: 2},
		{From: "l1", To: "l0", Round: 2, Extra: 2},
		{From: "l1", To: "l0", Round: 3, Extra: 2},
	}}
	d := tracedAsyncDeltas(t, sys, 5, delays)
	checkConservation(t, d)
	if d.sent == 0 {
		t.Fatal("no sends accounted; is the delay path traced?")
	}
	// Exactly the four rule-matched sends carry a positive extra delay.
	if d.delayed != 4 {
		t.Errorf("delayed = %d, want 4 (one per matching rule)", d.delayed)
	}
	// l1's rounds 2 and 3 sends (+2) deliver at rounds 5 and 6, past the
	// 5-round horizon, as do both nodes' round-4 synchronous sends.
	if d.lost < 2 {
		t.Errorf("lost = %d, want >= 2 (delayed past the horizon)", d.lost)
	}
	if d.collided != 0 {
		t.Errorf("collided = %d, want 0 (uniform +2 delay preserves ordering)", d.collided)
	}
}

// TestAsyncAccountingCollision pins the collided counter: delaying only
// the round-0 message by +1 makes it land at round 2, the same delivery
// round as the round-1 message, which overwrites it in the mailbox slot.
func TestAsyncAccountingCollision(t *testing.T) {
	g := graph.Line(2)
	builder := func(self string, neighbors []string, input Input) Device {
		d := &collisionDevice{}
		d.Init(self, neighbors, input)
		return d
	}
	sys, err := NewSystem(g, Protocol{
		Builders: map[string]Builder{"l0": builder, "l1": builder},
		Inputs:   map[string]Input{"l0": "", "l1": ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	delays := &DelaySchedule{Rules: []DelayRule{
		{From: "l1", To: "l0", Round: 0, Extra: 1},
	}}
	d := tracedAsyncDeltas(t, sys, 4, delays)
	checkConservation(t, d)
	if d.collided != 1 {
		t.Errorf("collided = %d, want exactly 1 (round-0 copy overwritten at round 2)", d.collided)
	}
	if d.delayed != 1 {
		t.Errorf("delayed = %d, want 1", d.delayed)
	}
}

// TestAsyncAccountingSilentWhenSynchronous pins the zero-cost contract
// in counter form: a traced execution with no delay schedule moves none
// of the sim.async.* counters.
func TestAsyncAccountingSilentWhenSynchronous(t *testing.T) {
	g := graph.Line(2)
	sys, err := NewSystem(g, gossipProtocol(g, 3, map[string]Input{"l0": "x", "l1": "y"}))
	if err != nil {
		t.Fatal(err)
	}
	d := tracedAsyncDeltas(t, sys, 3, nil)
	if d != (asyncCounts{}) {
		t.Errorf("synchronous traced run moved async counters: %+v", d)
	}
}
