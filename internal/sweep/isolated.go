// Fault-isolated sweeps. Map/Each assume trial functions are well
// behaved: a panicking trial kills the process and an infinite loop hangs
// the pool forever. Isolated drops both assumptions — it is the execution
// mode for trials wrapping *arbitrary* user-supplied devices (the chaos
// harness, attack panels over third-party protocols): every trial runs
// under a watchdog that converts panics into structured *TrialFault
// errors and enforces a per-trial wall-clock budget, and a faulty trial
// never prevents the remaining trials from running.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"flm/internal/obs"
)

// TrialFault is the structured failure of one isolated trial: a recovered
// panic, an exceeded time budget, or an ordinary error annotated with its
// trial index. Exactly one of Panic/Timeout/Err describes the cause.
type TrialFault struct {
	Trial   int           // the trial index the fault belongs to
	Panic   any           // recovered panic value (nil unless the trial panicked)
	Stack   []byte        // stack at the recovery point (panics only)
	Timeout bool          // the trial exceeded its wall-clock budget
	Budget  time.Duration // the budget that was exceeded (timeouts only)
	Err     error         // the trial's own error (wrapped, reachable via Unwrap)
}

func (f *TrialFault) Error() string {
	switch {
	case f.Timeout:
		return fmt.Sprintf("sweep: trial %d exceeded its %v budget (abandoned)", f.Trial, f.Budget)
	case f.Panic != nil:
		return fmt.Sprintf("sweep: trial %d panicked: %v", f.Trial, f.Panic)
	case f.Err != nil:
		return fmt.Sprintf("sweep: trial %d failed: %v", f.Trial, f.Err)
	default:
		return fmt.Sprintf("sweep: trial %d failed", f.Trial)
	}
}

// Unwrap exposes the trial's own error (or the panic value when it was
// itself an error, as sim.MustExecute's *ExecError panics are), so
// errors.As can reach sim.DeviceFault / sim.ExecError causes through the
// TrialFault wrapper.
func (f *TrialFault) Unwrap() error {
	if f.Err != nil {
		return f.Err
	}
	if err, ok := f.Panic.(error); ok {
		return err
	}
	return nil
}

// Opts configures an isolated sweep.
type Opts struct {
	// Workers bounds the fan-out; 0 means Workers() (the FLM_WORKERS /
	// GOMAXPROCS resolution order).
	Workers int
	// Timeout is the per-trial wall-clock budget; 0 means no budget.
	// A timed-out trial's goroutine cannot be killed (Go has no
	// preemptive cancellation) — it is abandoned: the pool reports the
	// fault, stops waiting, and moves on, while the stray goroutine
	// keeps running until it finishes on its own or the process exits.
	// Timed-out trials therefore must not hold locks or mutate state
	// shared with later trials.
	Timeout time.Duration
}

// Isolated runs fn(i) for every i in [0, n) with per-trial fault
// isolation and returns the results plus a per-trial error slice
// (errs[i] is nil exactly when trial i succeeded). Unlike Map, a failing
// trial does NOT cancel the sweep: every trial runs (unless ctx is
// cancelled, which stops new trials and marks the never-started ones
// with a ctx-wrapped TrialFault). Panics become *TrialFault with the
// recovered value and stack; budget overruns become *TrialFault with
// Timeout set; ordinary errors are wrapped in *TrialFault for uniform
// attribution. FirstError recovers Map's lowest-failing-index semantics
// from the error slice.
func Isolated[T any](ctx context.Context, n int, o Opts, fn func(i int) (T, error)) ([]T, []error) {
	results := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}
	workers := o.Workers
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	traced := obs.Enabled()
	var sweepSpan *obs.Span
	if traced {
		ctx, sweepSpan = obs.StartSpan(ctx, "sweep.isolated",
			obs.Int("trials", n), obs.Int("workers", workers),
			obs.Int64("timeout_us", int64(o.Timeout/time.Microsecond)))
		mSweeps.Inc()
		ticket := obs.ProgressSweepStart(n)
		defer ticket.Finish()
	}
	type claim struct{ i int }
	work := make(chan claim)
	done := make(chan struct{})
	go func() {
		defer close(work)
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				for j := i; j < n; j++ {
					errs[j] = &TrialFault{Trial: j, Err: fmt.Errorf("not started: %w", ctx.Err())}
				}
				return
			}
			select {
			case work <- claim{i}:
			case <-ctx.Done():
				for j := i; j < n; j++ {
					errs[j] = &TrialFault{Trial: j, Err: fmt.Errorf("not started: %w", ctx.Err())}
				}
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		go func(w int) {
			var wo *workerObs
			var ws *obs.Span
			var started time.Time
			if traced {
				_, ws = obs.StartSpan(ctx, "sweep.worker", obs.Int("worker", w))
				started = time.Now()
				wo = &workerObs{worker: w}
			}
			doLabeled(ctx, w, func() {
				for c := range work {
					var t0 time.Time
					if wo != nil {
						t0 = wo.begin()
					}
					results[c.i], errs[c.i] = runIsolated(ctx, c.i, o.Timeout, fn)
					if wo != nil {
						wo.record(time.Since(t0))
						if errs[c.i] != nil {
							wo.fault()
						}
					}
				}
			})
			if wo != nil {
				wo.finish(ws, started)
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if sweepSpan != nil {
		sweepSpan.SetAttrs(obs.Int("faults", FaultCount(errs)))
	}
	sweepSpan.End()
	return results, errs
}

// runIsolated executes one trial in its own goroutine so the caller can
// abandon it on timeout, and recovers any panic into a *TrialFault.
func runIsolated[T any](ctx context.Context, i int, budget time.Duration, fn func(i int) (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1) // buffered: an abandoned trial must not block on send
	go func() {
		defer func() {
			if r := recover(); r != nil {
				var zero T
				ch <- outcome{zero, &TrialFault{Trial: i, Panic: r, Stack: debug.Stack()}}
			}
		}()
		v, err := fn(i)
		if err != nil {
			var tf *TrialFault
			if !errors.As(err, &tf) {
				err = &TrialFault{Trial: i, Err: err}
			}
			ch <- outcome{v, err}
			return
		}
		ch <- outcome{v, nil}
	}()

	var zero T
	if budget <= 0 {
		select {
		case o := <-ch:
			return o.v, o.err
		case <-ctx.Done():
			return zero, &TrialFault{Trial: i, Err: fmt.Errorf("abandoned: %w", ctx.Err())}
		}
	}
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-timer.C:
		return zero, &TrialFault{Trial: i, Timeout: true, Budget: budget}
	case <-ctx.Done():
		return zero, &TrialFault{Trial: i, Err: fmt.Errorf("abandoned: %w", ctx.Err())}
	}
}

// FirstError returns the lowest trial index with a non-nil error and that
// error, restoring Map's sequential-equivalent error semantics on an
// Isolated result; it returns (-1, nil) when every trial succeeded.
func FirstError(errs []error) (int, error) {
	for i, err := range errs {
		if err != nil {
			return i, err
		}
	}
	return -1, nil
}

// FaultCount reports how many trials failed.
func FaultCount(errs []error) int {
	c := 0
	for _, err := range errs {
		if err != nil {
			c++
		}
	}
	return c
}
