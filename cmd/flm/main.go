// Command flm runs the FLM85 reproduction experiments.
//
// Usage:
//
//	flm list                 list registered experiments
//	flm run E1 [E2 ...]      run specific experiments and print results
//	flm all [-o out.txt]     run everything (optionally tee to a file)
//	flm adequacy <n> <f>     adequacy report for K_n with f faults
//	flm prove <device>       run the hexagon argument against a device
//	                         (majority|eig|phase-king)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"flm"
)

func main() {
	args := os.Args[1:]
	// The disk tier of the run cache is a per-process opt-in (the
	// library default keeps `go test` and embedders hermetic); the CLI
	// is where cross-process reuse pays, so it installs the tier here
	// for every command except bench — whose cold-run regression gate
	// must never be served from a warm cache directory. FLM_CACHE_DIR
	// overrides the location; FLM_CACHE_DIR=off disables. Installing in
	// main rather than run keeps the command tests hermetic too.
	if len(args) > 0 && args[0] != "bench" {
		if dir := flm.DefaultCacheDir(); dir != "" {
			if _, err := flm.SetRunCacheDir(dir); err != nil {
				fmt.Fprintf(os.Stderr, "flm: disk run cache unavailable: %v\n", err)
			}
		}
	}
	os.Exit(run(args, os.Stdout))
}

func run(args []string, out io.Writer) int {
	if len(args) == 0 {
		usage(out)
		return 2
	}
	switch args[0] {
	case "list":
		return cmdList(out)
	case "run":
		return cmdRun(args[1:], out)
	case "all":
		return cmdAll(args[1:], out)
	case "adequacy":
		return cmdAdequacy(args[1:], out)
	case "prove":
		return cmdProve(args[1:], out)
	case "dot":
		return cmdDot(args[1:], out)
	case "trace":
		return cmdTrace(args[1:], out)
	case "bench":
		return cmdBench(args[1:], out)
	case "chaos":
		return cmdChaos(args[1:], out)
	case "stats":
		return cmdStats(args[1:], out)
	case "help", "-h", "--help":
		usage(out)
		return 0
	default:
		fmt.Fprintf(out, "unknown command %q\n", args[0])
		usage(out)
		return 2
	}
}

func usage(out io.Writer) {
	fmt.Fprintln(out, `flm — Fischer-Lynch-Merritt 1985 reproduction harness

commands:
  list                 list registered experiments (E1-E20)
  run <id> [<id>...]   run specific experiments
  all [-o file]        run every experiment (tee to file with -o)
  adequacy <n> <f>     adequacy report for the complete graph K_n
  prove <device>       defeat a device with the hexagon argument
  dot <cover> [m]      Graphviz DOT of a covering (hex|diamond|ring)
  trace <device>       traffic trace: the round-by-round protocol traffic
                       of the hexagon covering run (unrelated to -trace)
  bench [-o file] [-runs n] [-workers n] [-compare baseline.json]
        [-threshold pct] [-cpuprofile f] [-memprofile f]
                       benchmark the experiments and write BENCH_<date>.json;
                       -compare diffs against a baseline (default "auto":
                       the newest committed BENCH_*.json; exit 3 on
                       regression when -threshold > 0), -cpuprofile and
                       -memprofile write runtime/pprof profiles; bench
                       always measures cold runs: the disk cache tier is
                       never consulted
  chaos [-seed n] [-trials n] [-timeout d] [-workers n] [-noshrink]
        [-async] [-deadset]
                       fire seeded randomized adversaries at the protocol
                       panel; violations on inadequate graphs are expected
                       and shrunk to minimal counterexamples; -async adds
                       seeded per-message delay schedules (shrunk too),
                       -deadset adds initially-dead subsets and the FLP
                       Section 4 initdead protocol across n > 2t
  stats [-mindiskrate pct] <trace.jsonl>
                       summarize an instrumentation trace: cache hit
                       rates (memory + disk tiers), sweep worker
                       utilization, chain structure, chaos outcomes,
                       slowest spans; -mindiskrate gates on the disk
                       tier serving at least that percent of run-cache
                       L1 misses (exit 3 below it)
  stats -diff [-threshold pct] [-notiming] <old.jsonl> <new.jsonl>
                       behavioral regression gate: fold both traces and
                       exit 3 when counters, span counts, span
                       wall-time shares, cache served-rates, or message
                       /byte traffic drift beyond the threshold;
                       -notiming skips the wall-time family for
                       cross-machine comparisons

The run, all, prove, chaos, and bench commands accept a global
-trace <file.jsonl> flag (env fallback FLM_TRACE) that records every
span, event, and metric of the invocation as JSON Lines; inspect the
result with flm stats. Tracing off costs nothing: the engine runs its
instrumentation-free path.

Live observability: run, all, chaos, and bench also accept
-obs-listen <addr> (env fallback FLM_OBS_LISTEN) to serve /metrics
(Prometheus text), /healthz, /progress (JSON trials/workers/ETA
snapshot), and /debug/pprof for the duration of the command, and
FLM_OBS_INTERVAL=<duration> prints a progress/ETA line to stderr at
that interval. Both are opt-in and cost nothing when unset; neither
changes the report on stdout.

Run cache: memoized executions live in a bounded in-memory tier
(FLM_CACHE_BUDGET, default 256MiB) plus an on-disk content-addressed
store shared across processes (FLM_CACHE_DIR, default the user cache
dir; set to "off" to disable). Every command except bench uses the disk
tier; bench measures cold runs by design. FLM_RUNCACHE=off disables
caching entirely.`)
}

func cmdDot(args []string, out io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(out, "dot: usage: flm dot hex|diamond|ring [m]")
		return 2
	}
	var cover *flm.Cover
	switch args[0] {
	case "hex":
		cover = flm.HexCover()
	case "diamond":
		cover = flm.DiamondCover()
	case "ring":
		m := 12
		if len(args) > 1 {
			parsed, err := strconv.Atoi(args[1])
			if err != nil || parsed < 3 || parsed%3 != 0 {
				fmt.Fprintln(out, "dot: ring size must be a positive multiple of 3")
				return 2
			}
			m = parsed
		}
		cover = flm.RingCoverTriangle(m)
	default:
		fmt.Fprintf(out, "dot: unknown cover %q (have: hex, diamond, ring)\n", args[0])
		return 2
	}
	fmt.Fprint(out, cover.DOT(args[0]))
	return 0
}

func cmdTrace(args []string, out io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(out, "trace: usage: flm trace <device>  (majority|eig|phase-king) — prints the covering run's traffic trace; for an instrumentation trace use -trace on run/all/prove/chaos/bench")
		return 2
	}
	tri := flm.Triangle()
	peers := tri.Names()
	devices := map[string]flm.Builder{
		"majority":   flm.NewMajority(2),
		"eig":        flm.NewEIG(1, peers),
		"phase-king": flm.NewPhaseKing(1, peers),
	}
	builder, ok := devices[args[0]]
	if !ok {
		fmt.Fprintf(out, "trace: unknown device %q (have: majority, eig, phase-king)\n", args[0])
		return 2
	}
	builders := map[string]flm.Builder{}
	for _, name := range peers {
		builders[name] = builder
	}
	cover := flm.HexCover()
	inputs := map[string]flm.Input{}
	for i := 0; i < cover.S.N(); i++ {
		inputs[cover.S.Name(i)] = flm.BoolInput(i >= 3)
	}
	inst, err := flm.InstallCover(cover, builders, inputs)
	if err != nil {
		fmt.Fprintf(out, "trace: %v\n", err)
		return 1
	}
	run, err := inst.Execute(6)
	if err != nil {
		fmt.Fprintf(out, "trace: %v\n", err)
		return 1
	}
	st := flm.CollectStats(run)
	fmt.Fprintf(out, "hexagon covering run of %q: %s\n\n", args[0], st)
	fmt.Fprint(out, flm.TraceRun(run, 60))
	fmt.Fprintf(out, "\ndecisions:\n%s", run)
	return 0
}

func cmdList(out io.Writer) int {
	for _, e := range flm.Experiments() {
		fmt.Fprintf(out, "%-4s %-55s %s\n", e.ID, e.Name, e.Paper)
	}
	return 0
}

func cmdRun(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "write a JSONL instrumentation trace (spans+metrics) to this file; FLM_TRACE is the env fallback")
	obsListen := fs.String("obs-listen", "", "serve live /metrics, /healthz, /progress, and /debug/pprof on this address for the duration of the run; FLM_OBS_LISTEN is the env fallback")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fmt.Fprintln(out, "run: need at least one experiment ID: flm run [-trace file.jsonl] <id> [<id>...]")
		return 2
	}
	stop, err := startTrace(traceTarget(*tracePath), out)
	if err != nil {
		fmt.Fprintf(out, "run: %v\n", err)
		return 1
	}
	defer stop()
	sess, err := startObs(obsListenTarget(*obsListen))
	if err != nil {
		fmt.Fprintf(out, "run: %v\n", err)
		return 1
	}
	defer sess.stop()
	for _, id := range ids {
		e, ok := flm.FindExperiment(strings.ToUpper(id))
		if !ok {
			fmt.Fprintf(out, "no experiment %q (try: flm list)\n", id)
			return 2
		}
		res, err := runExperiment(e)
		if err != nil {
			fmt.Fprintf(out, "%s failed: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprintln(out, res.Render())
	}
	return 0
}

func cmdAll(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("all", flag.ContinueOnError)
	outPath := fs.String("o", "", "also write the report to this file")
	tracePath := fs.String("trace", "", "write a JSONL instrumentation trace (spans+metrics) to this file; FLM_TRACE is the env fallback")
	obsListen := fs.String("obs-listen", "", "serve live /metrics, /healthz, /progress, and /debug/pprof on this address for the duration of the run; FLM_OBS_LISTEN is the env fallback")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var sink io.Writer = out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(out, "create %s: %v\n", *outPath, err)
			return 1
		}
		defer f.Close()
		sink = io.MultiWriter(out, f)
	}
	stop, err := startTrace(traceTarget(*tracePath), out)
	if err != nil {
		fmt.Fprintf(out, "all: %v\n", err)
		return 1
	}
	defer stop()
	sess, err := startObs(obsListenTarget(*obsListen))
	if err != nil {
		fmt.Fprintf(out, "all: %v\n", err)
		return 1
	}
	defer sess.stop()
	for _, e := range flm.Experiments() {
		res, err := runExperiment(e)
		if err != nil {
			fmt.Fprintf(sink, "%s FAILED: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprintln(sink, res.Render())
	}
	return 0
}

func cmdAdequacy(args []string, out io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(out, "adequacy: usage: flm adequacy <n> <f>")
		return 2
	}
	n, err1 := strconv.Atoi(args[0])
	f, err2 := strconv.Atoi(args[1])
	if err1 != nil || err2 != nil || n < 1 || f < 0 {
		fmt.Fprintln(out, "adequacy: n and f must be non-negative integers (n >= 1)")
		return 2
	}
	g := flm.Complete(n)
	fmt.Fprintf(out, "K_%d: connectivity %d, 3f+1 = %d, 2f+1 = %d\n",
		n, g.VertexConnectivity(), 3*f+1, 2*f+1)
	if flm.Adequate(g, f) {
		fmt.Fprintf(out, "ADEQUATE for f=%d: all five consensus problems are solvable (see E9-E12)\n", f)
	} else {
		fmt.Fprintf(out, "INADEQUATE for f=%d: Theorems 1,2,4,5,6,8 apply (see E1-E8)\n", f)
	}
	fmt.Fprintf(out, "max tolerable faults: %d\n", flm.MaxTolerableFaults(g))
	return 0
}

func cmdProve(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("prove", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "write a JSONL instrumentation trace (spans+metrics) to this file; FLM_TRACE is the env fallback")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	args = fs.Args()
	if len(args) != 1 {
		fmt.Fprintln(out, "prove: usage: flm prove [-trace file.jsonl] <device>")
		return 2
	}
	stop, err := startTrace(traceTarget(*tracePath), out)
	if err != nil {
		fmt.Fprintf(out, "prove: %v\n", err)
		return 1
	}
	defer stop()
	g := flm.Triangle()
	peers := g.Names()
	devices := map[string]flm.Builder{
		"majority":   flm.NewMajority(2),
		"eig":        flm.NewEIG(1, peers),
		"phase-king": flm.NewPhaseKing(1, peers),
	}
	name := args[0]
	builder, ok := devices[name]
	if !ok {
		fmt.Fprintf(out, "prove: unknown device %q (have: majority, eig, phase-king)\n", name)
		return 2
	}
	builders := map[string]flm.Builder{}
	for _, nodeName := range peers {
		builders[nodeName] = builder
	}
	cr, err := flm.ProveByzantineTriangle(builders, name, 8)
	if err != nil {
		fmt.Fprintf(out, "engine error: %v\n", err)
		return 1
	}
	fmt.Fprintln(out, cr.String())
	return 0
}
