package main

import (
	"strings"
	"testing"
)

// TestChaosCommand pins the CI smoke invocation: seed 1, 64 trials,
// exit 0, expected violations present and shrunk, reproduction line
// printed.
func TestChaosCommand(t *testing.T) {
	out, code := capture(t, "chaos", "-seed", "1", "-trials", "64")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"seed=1 trials=64",
		"unexpected=0",
		"[expected]",
		"shrunk to",
		"reproduce: flm chaos -seed 1 -trials 64",
		"all adequate configurations green",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "UNEXPECTED") {
		t.Errorf("unexpected failures reported:\n%s", out)
	}
}

func TestChaosBadArgs(t *testing.T) {
	if out, code := capture(t, "chaos", "-trials", "0"); code != 2 {
		t.Errorf("trials=0: exit %d, want 2:\n%s", code, out)
	}
	if out, code := capture(t, "chaos", "stray"); code != 2 || !strings.Contains(out, "unexpected argument") {
		t.Errorf("stray arg: exit %d:\n%s", code, out)
	}
	if out, code := capture(t, "chaos", "-bogus"); code != 2 {
		t.Errorf("bad flag: exit %d:\n%s", code, out)
	}
}

// TestChaosDeterministicOutput: the same invocation renders the same
// report byte for byte, regardless of worker count.
func TestChaosDeterministicOutput(t *testing.T) {
	a, codeA := capture(t, "chaos", "-seed", "7", "-trials", "32", "-noshrink", "-workers", "1")
	b, codeB := capture(t, "chaos", "-seed", "7", "-trials", "32", "-noshrink", "-workers", "4")
	if codeA != codeB || a != b {
		t.Fatalf("reports diverge (exit %d vs %d):\n--- workers=1 ---\n%s--- workers=4 ---\n%s",
			codeA, codeB, a, b)
	}
}
