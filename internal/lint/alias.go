package lint

import (
	"go/ast"
	"go/types"
)

// Alias mechanizes the executor-ownership contract on device hot paths:
//
//   - sim.Device.Step(round, inbox): the inbox map is owned by the
//     executor and reused between rounds (PR 1's mailbox buffers);
//   - timedsim.Device.Tick(k, hw, inbox): the inbox slice is reused
//     between ticks and hw is an arena/scratch *big.Rat register
//     (PR 5's contract tightening).
//
// A device that stores one of these — directly, via a sub-slice, via a
// pointer to an element, or through a local alias — into a struct field
// or package variable reads stale or rewritten data next round, and the
// corruption is silent because the buffer usually still holds plausible
// values. The analyzer flags retention of an owned parameter (or a
// value derived from it by index/slice/address-of/parens alone) into
// anything that outlives the call. Copies (append, copy, big.Rat.Set,
// string conversion) launder ownership and are not flagged.
var Alias = &Analyzer{
	Name: "flmalias",
	Doc:  "forbid retention of executor-owned Step/Tick buffers in struct fields or package state",
	Run:  runAlias,
}

func runAlias(pass *Pass) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			owned := ownedParams(pass, fd)
			if len(owned) == 0 {
				continue
			}
			checkRetention(pass, fd, owned)
		}
	}
}

// ownedParams returns the executor-owned parameter objects of a Step or
// Tick method. Matching is structural, not interface-based, so wrapper
// devices and future device families are covered automatically:
//
//	Step: any map-typed parameter (the inbox);
//	Tick: any slice-typed parameter (the inbox) and any pointer-typed
//	      parameter (the hw scratch register).
func ownedParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]string {
	if fd.Name.Name != "Step" && fd.Name.Name != "Tick" {
		return nil
	}
	owned := make(map[types.Object]string)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.ObjectOf(name)
			if obj == nil {
				continue
			}
			switch obj.Type().Underlying().(type) {
			case *types.Map:
				owned[obj] = "inbox map"
			case *types.Slice:
				if fd.Name.Name == "Tick" {
					owned[obj] = "inbox slice"
				}
			case *types.Pointer:
				if fd.Name.Name == "Tick" {
					owned[obj] = "scratch register"
				}
			}
		}
	}
	return owned
}

// checkRetention flags assignments whose RHS aliases an owned parameter
// and whose LHS outlives the call. Local variables aliasing an owned
// value become owned themselves (one-level, iterated to fixpoint), so
// `tmp := inbox; d.saved = tmp` is still caught.
func checkRetention(pass *Pass, fd *ast.FuncDecl, owned map[types.Object]string) {
	// aliasRoot returns the owned object the expression aliases, or nil.
	// Only operations that preserve aliasing count: parens, indexing,
	// slicing, address-of, field selection through the value. Any
	// function call (append, copy, .Set, conversions to string) breaks
	// the chain.
	var aliasRoot func(e ast.Expr) types.Object
	aliasRoot = func(e ast.Expr) types.Object {
		switch e := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(e)
			if obj != nil {
				if _, ok := owned[obj]; ok {
					return obj
				}
			}
			return nil
		case *ast.ParenExpr:
			return aliasRoot(e.X)
		case *ast.IndexExpr:
			// inbox[i] yields an element; for value types (string,
			// struct) this is a copy, but the enclosing &inbox[i] or
			// inbox[i:j] cases below are what reach here with aliasing
			// still live. A bare element read is handled by the caller
			// deciding whether the assigned type can alias.
			return aliasRoot(e.X)
		case *ast.SliceExpr:
			return aliasRoot(e.X)
		case *ast.UnaryExpr:
			if e.Op.String() == "&" {
				return aliasRoot(e.X)
			}
			return nil
		case *ast.SelectorExpr:
			return aliasRoot(e.X)
		case *ast.StarExpr:
			return aliasRoot(e.X)
		}
		return nil
	}

	// canAlias reports whether a value of type t can carry a reference
	// to the executor's buffer: maps, slices, and pointers can; strings
	// and other scalars copied out of the buffer cannot.
	canAlias := func(t types.Type) bool {
		if t == nil {
			return true
		}
		switch t.Underlying().(type) {
		case *types.Map, *types.Slice, *types.Pointer, *types.Interface, *types.Chan, *types.Signature:
			return true
		case *types.Struct, *types.Array:
			return true // may embed pointers (timedsim.Message.SentAt)
		}
		return false
	}

	// escapes reports whether the LHS outlives the call: a selector
	// (struct field), an index into anything non-local, a dereference,
	// or a package-level variable.
	isLocal := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return false
		}
		// Package-scope variables escape; function-scope ones don't.
		return v.Parent() != nil && v.Parent() != pass.Pkg.Scope()
	}
	var escapes func(e ast.Expr) bool
	escapes = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return false
			}
			return !isLocal(pass.TypesInfo.ObjectOf(e))
		case *ast.SelectorExpr, *ast.StarExpr:
			return true
		case *ast.IndexExpr:
			return escapes(e.X)
		case *ast.ParenExpr:
			return escapes(e.X)
		}
		return false
	}

	// Pass 1 (to fixpoint): propagate ownership into local aliases.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				root := aliasRoot(rhs)
				if root == nil || !canAlias(pass.TypesInfo.TypeOf(rhs)) {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok || !isLocal(pass.TypesInfo.ObjectOf(id)) {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if _, already := owned[obj]; !already {
					owned[obj] = owned[root] + " (via local alias)"
					changed = true
				}
			}
			return true
		})
	}

	// Pass 2: report escaping assignments.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			root := aliasRoot(rhs)
			if root == nil || !canAlias(pass.TypesInfo.TypeOf(rhs)) {
				continue
			}
			if !escapes(as.Lhs[i]) {
				continue
			}
			pass.Reportf(as.Pos(), "%s.%s retains the executor-owned %s (%s) past the call: the executor reuses it next round, so copy what you need instead", recvTypeName(pass, fd), fd.Name.Name, owned[root], root.Name())
		}
		return true
	})
}

func recvTypeName(pass *Pass, fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return "?"
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "?"
}
