package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// deterministicPkgs are the engine packages whose outputs must be a
// pure function of (seeds, inputs, graph): every run, splice, proof
// chain, sweep, and chaos transcript they produce is replayed and
// byte-compared by the golden/determinism tests, and the FLM85 splice
// argument is only checkable against replays that are THE run. Wall
// clock and the global rand source are forbidden here outright; a
// justified exception (observability timing that never reaches a
// result) carries an //flmlint:allow flmdeterminism directive.
var deterministicPkgs = map[string]bool{
	"flm":                      true,
	"flm/internal/sim":         true,
	"flm/internal/core":        true,
	"flm/internal/sweep":       true,
	"flm/internal/chaos":       true,
	"flm/internal/timedsim":    true,
	"flm/internal/byzantine":   true,
	"flm/internal/clocksync":   true,
	"flm/internal/clockfn":     true,
	"flm/internal/dolev":       true,
	"flm/internal/graph":       true,
	"flm/internal/eval":        true,
	"flm/internal/adversary":   true,
	"flm/internal/approx":      true,
	"flm/internal/weak":        true,
	"flm/internal/firingsquad": true,
	"flm/internal/signed":      true,
	"flm/internal/runcache":    true,
	"flm/internal/initdead":    true,
}

// mapOrderPkgs additionally get the map-iteration-order check: these
// render human- or machine-readable output (reports, stats tables,
// JSONL traces) that the golden tests and shard-merge tooling diff
// byte-for-byte, so emission order out of a map range is a bug even
// where wall-clock reads are fine.
var mapOrderPkgs = map[string]bool{
	"flm/cmd/flm":      true,
	"flm/internal/obs": true,
}

// randConstructors are the math/rand functions that only build seeded
// generators — the one sanctioned way to use randomness in the engine
// ("seeded pseudo-randomness is permitted because the seed is part of
// the device").
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Determinism forbids, in the deterministic packages: wall-clock reads
// (time.Now/Since/Until), the global math/rand source, and map
// iteration whose order can reach an output (an append or a byte/string
// emission inside `range m` with no sort of the accumulated slice
// anywhere in the function).
var Determinism = &Analyzer{
	Name: "flmdeterminism",
	Doc:  "forbid wall clock, global rand, and output-reaching map iteration order in the deterministic engine packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	path := pass.Pkg.Path()
	deterministic := deterministicPkgs[path]
	mapOrder := deterministic || mapOrderPkgs[path]
	if !deterministic && !mapOrder {
		return
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		if deterministic {
			checkWallClock(pass, file)
			checkGlobalRand(pass, file)
		}
		if mapOrder {
			checkMapOrder(pass, file)
		}
	}
}

// pkgFuncCall reports whether call invokes a package-level function of
// the package with the given import path, returning its name. Renamed
// imports resolve correctly because the receiver identifier is looked
// up as a *types.PkgName.
func pkgFuncCall(pass *Pass, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkWallClock flags wall-clock reads — except at positions dominated
// by an obs.Enabled()/nil-handle guard (via the shared guardWalker):
// timing behind a tracing guard can only feed span durations, never a
// result, so the sweeps' `if traced { started = time.Now() }` pattern
// is sanctioned without a directive.
func checkWallClock(pass *Pass, file *ast.File) {
	walkGuarded(pass, file, func(pass *Pass, call *ast.CallExpr, guarded bool) {
		if guarded {
			return
		}
		name, ok := pkgFuncCall(pass, call, "time")
		if !ok {
			return
		}
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s in deterministic package %s: results must be a function of seeds and inputs, not the wall clock (obs-guarded timing is exempt)", name, pass.Pkg.Path())
		}
	})
}

func checkGlobalRand(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, randPath := range []string{"math/rand", "math/rand/v2"} {
			name, ok := pkgFuncCall(pass, call, randPath)
			if !ok || randConstructors[name] {
				continue
			}
			pass.Reportf(call.Pos(), "global rand.%s in deterministic package %s: draw from a seeded *rand.Rand so replays are worker-count-invariant", name, pass.Pkg.Path())
		}
		return true
	})
}

// emissionSink classifies calls that serialize bytes in program order:
// running one inside a map range stamps the map's iteration order into
// an output no later sort can repair.
func emissionSink(pass *Pass, call *ast.CallExpr) (string, bool) {
	if name, ok := pkgFuncCall(pass, call, "fmt"); ok {
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return "fmt." + name, true
		}
	}
	if name, ok := pkgFuncCall(pass, call, "io"); ok && name == "WriteString" {
		return "io.WriteString", true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return "", false
	}
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	qual := ""
	if obj.Pkg() != nil {
		qual = obj.Pkg().Path()
	}
	method := sel.Sel.Name
	switch {
	case qual == "strings" && obj.Name() == "Builder",
		qual == "bytes" && obj.Name() == "Buffer":
		if strings.HasPrefix(method, "Write") {
			return obj.Name() + "." + method, true
		}
	case strings.HasSuffix(qual, "internal/runcache") && obj.Name() == "Hasher":
		// Any Hasher method folds bytes into the cache key.
		return "runcache.Hasher." + method, true
	}
	// hash.Hash and raw io.Writer values: a Write method on anything.
	if method == "Write" && implementsWriter(recv) {
		return "Write", true
	}
	return "", false
}

var writerSig = types.NewInterfaceType([]*types.Func{
	types.NewFunc(token.NoPos, nil, "Write", types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
		), false)),
}, nil)

func init() { writerSig.Complete() }

func implementsWriter(t types.Type) bool {
	if types.Implements(t, writerSig) {
		return true
	}
	return types.Implements(types.NewPointer(t), writerSig)
}

// checkMapOrder walks every function and inspects `for ... range m`
// loops over maps. Inside such a loop:
//
//   - an emission sink (fmt.Fprintf, Builder.WriteString, Hasher.Field,
//     hash/io writes) is always a finding;
//   - `x = append(x, ...)` is a finding unless x is sorted somewhere in
//     the same function (the collect-then-sort idiom).
func checkMapOrder(pass *Pass, file *ast.File) {
	// Scoping: a closure inherits the enclosing function's sorted
	// targets (appending to a captured slice that the outer function
	// sorts is fine), but a sort inside a closure does not sanction the
	// enclosing function's appends — the closure may never run.
	var processFunc func(body *ast.BlockStmt, inherited map[string]bool)
	processFunc = func(body *ast.BlockStmt, inherited map[string]bool) {
		sorted := sortedTargets(pass, body)
		for target := range inherited {
			sorted[target] = true
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				processFunc(fl.Body, sorted)
				return false
			}
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rng, sorted)
			return true
		})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok {
			if fd.Body != nil {
				processFunc(fd.Body, nil)
			}
			return false
		}
		return true
	})
}

// sortedTargets collects the canonical spelling of every expression the
// function passes to a sort (sort.Strings(keys), sort.Slice(s.rows, ...),
// slices.Sort(names), sort.Sort(byName(rows))). Appending to one of
// these inside a map range is the sanctioned collect-then-sort idiom.
// Nested function literals are skipped — they are their own scope.
func sortedTargets(pass *Pass, body *ast.BlockStmt) map[string]bool {
	sorted := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sortPkg := false
		if name, ok := pkgFuncCall(pass, call, "sort"); ok {
			switch name {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
				sortPkg = true
			}
		}
		if name, ok := pkgFuncCall(pass, call, "slices"); ok && strings.HasPrefix(name, "Sort") {
			sortPkg = true
		}
		if !sortPkg {
			return true
		}
		arg := call.Args[0]
		// sort.Sort(byName(rows)) sorts rows through the adapter.
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			arg = conv.Args[0]
		}
		sorted[exprString(arg)] = true
		return true
	})
	return sorted
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, sorted map[string]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own scope; handled by checkMapOrder
		case *ast.RangeStmt:
			// A nested map range is checked by its own visit from
			// checkMapOrder's walk; descending here would double-report
			// its sinks.
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false
				}
			}
		case *ast.CallExpr:
			if sink, ok := emissionSink(pass, n); ok {
				pass.Reportf(n.Pos(), "%s inside map iteration: emission order depends on map order; collect keys, sort, then emit", sink)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
					continue
				}
				target := exprString(n.Lhs[i])
				// Only accumulation across iterations is order-sensitive:
				// `x = append(x, ...)`. A fresh slice per iteration
				// (`m[k] = append([]T(nil), seq...)`) copies one value
				// and involves no cross-iteration order.
				if exprString(call.Args[0]) != target {
					continue
				}
				if sorted[target] {
					continue
				}
				pass.Reportf(call.Pos(), "append to %q inside map iteration with no sort of %q in this function: element order depends on map order", target, target)
			}
		}
		return true
	})
}

// exprString renders a simple expression (ident / selector / index
// chains) canonically for matching append targets against sort calls.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.SliceExpr:
		// sort.SliceStable(events[processed:], ...) sorts events: for
		// target matching a re-slice is the same backing array.
		return exprString(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "?"
	}
}
