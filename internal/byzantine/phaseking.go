package byzantine

import (
	"fmt"
	"sort"
	"strings"

	"flm/internal/sim"
)

// phaseKingDevice implements the Berman–Garay phase-king protocol for
// binary Byzantine agreement with n >= 4f+1 (polynomial messages, 2(f+1)
// rounds, in contrast to EIG's optimal resilience but exponential
// messages). Kings are the first f+1 processes in sorted name order;
// since there are f+1 phases, at least one phase has a correct king.
type phaseKingDevice struct {
	self     string
	peers    []string
	nbs      []string
	f        int
	fp       string
	pref     string
	mult     int
	decided  bool
	decision string
}

var _ sim.Device = (*phaseKingDevice)(nil)
var _ sim.Fingerprinter = (*phaseKingDevice)(nil)

// DeviceFingerprint is the constructor identity: fault bound and peer
// set (see eigMapDevice.DeviceFingerprint).
func (d *phaseKingDevice) DeviceFingerprint() string {
	if d.fp == "" {
		d.fp = fmt.Sprintf("byz/phaseking:f=%d,peers=%s", d.f, strings.Join(d.peers, ","))
	}
	return d.fp
}

// NewPhaseKing returns a builder for phase-king devices tolerating f
// faults among the given peers (n >= 4f+1 required for correctness).
// Inputs must be canonical booleans; anything else becomes DefaultValue.
// The sorted peer set and fingerprint are computed once and shared by
// every device the builder constructs.
func NewPhaseKing(f int, peers []string) sim.Builder {
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	fp := fmt.Sprintf("byz/phaseking:f=%d,peers=%s", f, strings.Join(sorted, ","))
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &phaseKingDevice{f: f, peers: sorted, fp: fp}
		d.init(self, sortedNames(neighbors), input)
		return d
	}
}

func (d *phaseKingDevice) Init(self string, neighbors []string, input sim.Input) {
	d.init(self, sortedNames(neighbors), input)
}

// init takes ownership of the sorted neighbors slice.
func (d *phaseKingDevice) init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.nbs = neighbors
	d.pref = boolOrDefault(string(input))
	d.mult = 0
	d.decided = false
	d.decision = ""
}

func boolOrDefault(v string) string {
	if v == "0" || v == "1" {
		return v
	}
	return DefaultValue
}

// king returns the king of 1-indexed phase k.
func (d *phaseKingDevice) king(k int) string { return d.peers[(k-1)%len(d.peers)] }

// Step drives the two-round phase schedule:
//
//	step 2(k-1):   absorb king k-1's tie-break (k > 1), broadcast pref
//	step 2(k-1)+1: absorb prefs, recompute pref/mult; king k broadcasts
//	step 2(f+1):   absorb the final king, decide
func (d *phaseKingDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	if d.decided {
		return nil
	}
	switch {
	case round%2 == 0:
		phase := round / 2 // completed phases
		if phase > 0 {
			d.applyKing(d.king(phase), inbox)
		}
		if phase == d.f+1 {
			d.decided = true
			d.decision = d.pref
			return nil
		}
		return d.broadcast(sim.Payload(d.pref))
	default:
		d.tally(inbox)
		phase := (round + 1) / 2
		if d.king(phase) == d.self {
			return d.broadcast(sim.Payload(d.pref))
		}
		return nil
	}
}

// tally counts the received preferences (plus our own) and adopts the
// plurality value, ties favoring DefaultValue. Preferences are canonical
// booleans, so two counters replace the map.
func (d *phaseKingDevice) tally(inbox sim.Inbox) {
	zero, one := 0, 0
	if d.pref == "1" {
		one = 1
	} else {
		zero = 1
	}
	for _, p := range d.peers {
		if p == d.self {
			continue
		}
		if payload, ok := inbox[p]; ok {
			if boolOrDefault(string(payload)) == "1" {
				one++
			} else {
				zero++
			}
		}
	}
	if one > zero {
		d.pref, d.mult = "1", one
	} else {
		d.pref, d.mult = "0", zero
	}
}

// applyKing keeps the local preference only with a strong majority
// (> n/2 + f); otherwise it adopts the king's broadcast value.
func (d *phaseKingDevice) applyKing(king string, inbox sim.Inbox) {
	if 2*d.mult > len(d.peers)+2*d.f {
		return
	}
	if king == d.self {
		return // our own broadcast was our pref
	}
	kingValue := DefaultValue
	if payload, ok := inbox[king]; ok {
		kingValue = boolOrDefault(string(payload))
	}
	d.pref = kingValue
}

func (d *phaseKingDevice) broadcast(p sim.Payload) sim.Outbox {
	out := sim.Outbox{}
	for _, nb := range d.nbs {
		out[nb] = p
	}
	return out
}

func (d *phaseKingDevice) Snapshot() string {
	return fmt.Sprintf("pk(f=%d,pref=%s,mult=%d,dec=%v:%s)", d.f, d.pref, d.mult, d.decided, d.decision)
}

func (d *phaseKingDevice) Output() (sim.Decision, bool) {
	if !d.decided {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: d.decision}, true
}

// PhaseKingRounds returns the number of simulator rounds a phase-king run
// needs: two rounds per phase plus the deciding step.
func PhaseKingRounds(f int) int { return 2*(f+1) + 1 }
