package graph

import (
	"reflect"
	"testing"
)

func TestNewRejectsBadNames(t *testing.T) {
	if _, err := New("a", "a"); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := New("a", ""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestNewIndexRoundTrip(t *testing.T) {
	g := MustNew("x", "y", "z")
	for i, name := range []string{"x", "y", "z"} {
		if got := g.MustIndex(name); got != i {
			t.Errorf("MustIndex(%q) = %d, want %d", name, got, i)
		}
		if got := g.Name(i); got != name {
			t.Errorf("Name(%d) = %q, want %q", i, got, name)
		}
	}
	if _, ok := g.Index("w"); ok {
		t.Error("Index of missing node reported ok")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := MustNew("a", "b")
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
}

func TestAddEdgeNames(t *testing.T) {
	g := MustNew("a", "b")
	if err := g.AddEdgeNames("a", "nope"); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := g.AddEdgeNames("nope", "a"); err == nil {
		t.Error("edge from unknown node accepted")
	}
	if err := g.AddEdgeNames("a", "b"); err != nil {
		t.Fatalf("AddEdgeNames: %v", err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("named edge missing")
	}
}

func TestBuildersShape(t *testing.T) {
	tests := []struct {
		name      string
		g         *Graph
		nodes     int
		edges     int
		connected bool
	}{
		{"K1", Complete(1), 1, 0, true},
		{"K4", Complete(4), 4, 6, true},
		{"K7", Complete(7), 7, 21, true},
		{"triangle", Triangle(), 3, 3, true},
		{"diamond", Diamond(), 4, 4, true},
		{"ring5", Ring(5), 5, 5, true},
		{"ring12", Ring(12), 12, 12, true},
		{"line4", Line(4), 4, 3, true},
		{"line1", Line(1), 1, 0, true},
		{"star5", Star(5), 5, 4, true},
		{"wheel6", Wheel(6), 6, 10, true},
		{"circulant8-2", Circulant(8, 1, 2), 8, 16, true},
		{"hypercube3", Hypercube(3), 8, 12, true},
		{"grid2x3", Grid(2, 3), 6, 7, true},
		{"K6-matching", CompleteMinusMatching(6), 6, 12, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.N(); got != tt.nodes {
				t.Errorf("N() = %d, want %d", got, tt.nodes)
			}
			if got := tt.g.NumEdges(); got != tt.edges {
				t.Errorf("NumEdges() = %d, want %d", got, tt.edges)
			}
			if got := tt.g.IsConnected(); got != tt.connected {
				t.Errorf("IsConnected() = %v, want %v", got, tt.connected)
			}
		})
	}
}

func TestDiamondStructure(t *testing.T) {
	g := Diamond()
	wantAdj := map[string][]string{
		"a": {"b", "d"},
		"b": {"a", "c"},
		"c": {"b", "d"},
		"d": {"a", "c"},
	}
	for name, want := range wantAdj {
		u := g.MustIndex(name)
		var got []string
		for _, v := range g.Neighbors(u) {
			got = append(got, g.Name(v))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("neighbors(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestDirectedEdgesArePaired(t *testing.T) {
	g := Wheel(6)
	edges := g.DirectedEdges()
	if len(edges) != 2*g.NumEdges() {
		t.Fatalf("got %d directed edges, want %d", len(edges), 2*g.NumEdges())
	}
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		seen[e] = true
	}
	for _, e := range edges {
		if !seen[Edge{From: e.To, To: e.From}] {
			t.Errorf("edge %v has no reverse", e)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub, orig := g.InducedSubgraph([]int{4, 0, 2})
	if sub.N() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced K3 has %d nodes %d edges", sub.N(), sub.NumEdges())
	}
	if !reflect.DeepEqual(orig, []int{0, 2, 4}) {
		t.Errorf("orig map = %v", orig)
	}
	if sub.Name(0) != "p0" || sub.Name(2) != "p4" {
		t.Errorf("names not preserved: %v", sub.Names())
	}
}

func TestInducedSubgraphOfRing(t *testing.T) {
	g := Ring(6)
	sub, _ := g.InducedSubgraph([]int{0, 1, 2, 4})
	// Edges among {0,1,2,4} in the 6-ring: 0-1, 1-2 only.
	if sub.NumEdges() != 2 {
		t.Errorf("induced ring fragment has %d edges, want 2", sub.NumEdges())
	}
	if sub.IsConnected() {
		t.Error("fragment with isolated node reported connected")
	}
}

func TestInEdgeBorder(t *testing.T) {
	g := Triangle()
	border := g.InEdgeBorder([]int{g.MustIndex("b"), g.MustIndex("c")})
	want := []Edge{{From: "a", To: "b"}, {From: "a", To: "c"}}
	if !reflect.DeepEqual(border, want) {
		t.Errorf("border = %v, want %v", border, want)
	}
}

func TestInEdgeBorderDiamond(t *testing.T) {
	g := Diamond()
	border := g.InEdgeBorder([]int{g.MustIndex("a")})
	want := []Edge{{From: "b", To: "a"}, {From: "d", To: "a"}}
	if !reflect.DeepEqual(border, want) {
		t.Errorf("border = %v, want %v", border, want)
	}
}

func TestComponents(t *testing.T) {
	g := MustNew("a", "b", "c", "d", "e")
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	comps := g.Components()
	want := [][]int{{0, 1}, {2, 3}, {4}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("components = %v, want %v", comps, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Ring(4)
	c := g.Clone()
	c.MustAddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Error("clone shares adjacency with original")
	}
}
