// Package signed mechanizes the paper's remark on the Fault axiom: "When
// this axiom is significantly weakened (say, by adding an unforgeable
// signature assumption), then consensus is possible [LSP,PSL]."
//
// A Registry models an unforgeable signature scheme for one execution:
// Sign records that a named node vouched for a statement, and Verify
// accepts only statements actually signed in this execution. A Byzantine
// node can sign anything with its own identity (including conflicting
// statements — equivocation), but cannot produce a correct node's
// signature on something that node never said, and — decisively for the
// FLM85 covering argument — cannot replay signatures harvested from a
// different execution, because the new execution's registry never
// recorded them. The paper's Fault-axiom device F_A(E_1,...,E_d) is
// exactly such a replayer, so the covering argument's splice fails its
// own self-check, and Dolev-Strong agreement runs happily on the triangle
// that Theorem 1 proves hopeless for unsigned devices.
//
// The protocol implemented is Dolev-Strong authenticated broadcast
// (f+1 rounds, any n) run in parallel from every node, with the majority
// of the agreed vector as the decision — Byzantine agreement for
// n >= 2f+1 with signatures.
package signed

import (
	"fmt"
	"sort"
	"strings"

	"flm/internal/sim"
)

// Registry records which statements each identity signed during one
// execution. It is not safe for concurrent use; the simulator is
// sequential.
type Registry struct {
	signed map[string]bool
}

// NewRegistry returns an empty signature registry for one execution.
func NewRegistry() *Registry {
	return &Registry{signed: make(map[string]bool)}
}

func key(name, statement string) string { return name + "\x00" + statement }

// Sign records that name vouches for statement.
func (r *Registry) Sign(name, statement string) {
	r.signed[key(name, statement)] = true
}

// Verify reports whether name signed statement in this execution.
func (r *Registry) Verify(name, statement string) bool {
	return r.signed[key(name, statement)]
}

// chain is one Dolev-Strong signature chain: a value vouched for by an
// ordered list of distinct signers, the first being the instance's
// sender. The statement signed by signer k is
// "sender|value|signer_1,...,signer_k".
type chain struct {
	sender  string
	value   string
	signers []string
}

func statement(sender, value string, signers []string) string {
	return sender + "|" + value + "|" + strings.Join(signers, ",")
}

func (c chain) encode() string {
	return statement(c.sender, c.value, c.signers)
}

// decodeChain parses and cryptographically verifies a chain against the
// registry: distinct signers, first equals sender, and every prefix
// statement carries a recorded signature.
func decodeChain(reg *Registry, s string) (chain, bool) {
	parts := strings.Split(s, "|")
	if len(parts) != 3 {
		return chain{}, false
	}
	c := chain{sender: parts[0], value: parts[1]}
	if c.value != "0" && c.value != "1" {
		return chain{}, false
	}
	if parts[2] == "" {
		return chain{}, false
	}
	c.signers = strings.Split(parts[2], ",")
	if c.signers[0] != c.sender {
		return chain{}, false
	}
	seen := make(map[string]bool, len(c.signers))
	for i, name := range c.signers {
		if name == "" || seen[name] {
			return chain{}, false
		}
		seen[name] = true
		if !reg.Verify(name, statement(c.sender, c.value, c.signers[:i+1])) {
			return chain{}, false
		}
	}
	return c, true
}

// extend appends name's signature, recording it in the registry.
func (c chain) extend(reg *Registry, name string) chain {
	out := chain{sender: c.sender, value: c.value, signers: append(append([]string(nil), c.signers...), name)}
	reg.Sign(name, statement(out.sender, out.value, out.signers))
	return out
}

// dsDevice runs n parallel Dolev-Strong broadcast instances (one per
// peer) and decides the majority of the extracted vector.
type dsDevice struct {
	reg       *Registry
	self      string
	peers     []string
	neighbors []string
	f         int
	input     string
	extracted map[string]map[string]bool // sender -> set of extracted values
	relayQ    []chain
	decided   bool
	decision  string
}

var _ sim.Device = (*dsDevice)(nil)

// NewDolevStrong returns a builder for signed Byzantine agreement devices
// tolerating f faults among peers (n >= 2f+1 for the majority step; the
// per-instance broadcasts are correct for any n). All devices of one
// execution must share the registry.
func NewDolevStrong(f int, peers []string, reg *Registry) sim.Builder {
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &dsDevice{reg: reg, f: f, peers: sorted}
		d.Init(self, neighbors, input)
		return d
	}
}

// Rounds returns the simulator rounds a Dolev-Strong run needs: chains
// circulate in rounds 0..f+1 and the decision lands when round f+1's
// arrivals are absorbed.
func Rounds(f int) int { return f + 2 }

func (d *dsDevice) Init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.neighbors = append([]string(nil), neighbors...)
	sort.Strings(d.neighbors)
	d.input = "0"
	if string(input) == "1" {
		d.input = "1"
	}
	d.extracted = make(map[string]map[string]bool, len(d.peers))
	for _, p := range d.peers {
		d.extracted[p] = make(map[string]bool, 2)
	}
	d.relayQ = nil
	d.decided = false
}

func (d *dsDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	if d.decided {
		return nil
	}
	if round == 0 {
		// Start our own instance: sign and broadcast the input.
		c := chain{sender: d.self, value: d.input}.extend(d.reg, d.self)
		d.extracted[d.self][d.input] = true
		return d.broadcastChains([]chain{c})
	}
	// Absorb arrivals: a chain is accepted at round r only with at least
	// r signatures (the Dolev-Strong timing rule) and at most f+1.
	senders := make([]string, 0, len(inbox))
	for s := range inbox {
		senders = append(senders, s)
	}
	sort.Strings(senders)
	var fresh []chain
	for _, from := range senders {
		for _, frag := range strings.Split(string(inbox[from]), "&") {
			c, ok := decodeChain(d.reg, frag)
			if !ok || len(c.signers) < round || len(c.signers) > d.f+1 {
				continue
			}
			vals, known := d.extracted[c.sender]
			if !known || vals[c.value] {
				continue
			}
			if len(vals) >= 2 {
				continue // already exposed as two-faced; nothing changes
			}
			vals[c.value] = true
			// Relay with our signature while relaying still helps.
			if round <= d.f && !contains(c.signers, d.self) {
				fresh = append(fresh, c.extend(d.reg, d.self))
			}
		}
	}
	if round == d.f+1 {
		d.decide()
		return nil
	}
	return d.broadcastChains(fresh)
}

func contains(list []string, name string) bool {
	for _, x := range list {
		if x == name {
			return true
		}
	}
	return false
}

func (d *dsDevice) broadcastChains(chains []chain) sim.Outbox {
	if len(chains) == 0 {
		return nil
	}
	frags := make([]string, len(chains))
	for i, c := range chains {
		frags[i] = c.encode()
	}
	sort.Strings(frags)
	payload := sim.Payload(strings.Join(frags, "&"))
	out := sim.Outbox{}
	for _, nb := range d.neighbors {
		out[nb] = payload
	}
	return out
}

// decide resolves each instance (exactly one extracted value, else the
// default) and takes the majority of the vector.
func (d *dsDevice) decide() {
	count := map[string]int{}
	for _, p := range d.peers {
		v := "0" // default for silent or two-faced senders
		if vals := d.extracted[p]; len(vals) == 1 {
			for only := range vals {
				v = only
			}
		}
		count[v]++
	}
	d.decision = "0"
	if count["1"] > count["0"] {
		d.decision = "1"
	}
	d.decided = true
}

func (d *dsDevice) Snapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ds(f=%d,in=%s,dec=%v:%s)", d.f, d.input, d.decided, d.decision)
	for _, p := range d.peers {
		vals := d.extracted[p]
		keys := make([]string, 0, len(vals))
		for v := range vals {
			keys = append(keys, v)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "|%s=%s", p, strings.Join(keys, ""))
	}
	return b.String()
}

func (d *dsDevice) Output() (sim.Decision, bool) {
	if !d.decided {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: d.decision}, true
}
