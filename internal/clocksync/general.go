package clocksync

import (
	"fmt"
	"math/big"
	"sort"

	"flm/internal/clockfn"
	"flm/internal/graph"
	"flm/internal/timedsim"
)

// This file mechanizes the general cases of Theorem 8 ("the general case
// of |G| <= 3f is a simple extension of this argument; the connectivity
// bound also follows easily"):
//
//   - Theorem8Nodes: any graph with n <= 3f nodes, partitioned into
//     blocks a, b, c of size <= f. The covering is the cyclic
//     ring-of-blocks (positions ...a_i b_i c_i a_{i+1}...), every node at
//     ring position j runs hardware clock q∘h⁻ʲ, and each adjacent block
//     pair (j, j+1), scaled by hʲ, is a correct behavior with clocks q
//     and p and the third block faulty.
//
//   - Theorem8Connectivity: any graph with a cut {b,d} of size <= 2f
//     separating u from v. The covering is the cyclic ring of copies
//     with the a-d edges crossed; all nodes of copy i run q∘h⁻ⁱ. The
//     within-copy scenarios X_i (copy i minus d, scaled by hⁱ: all
//     clocks q) chain each copy internally, and the cross-copy scenarios
//     Y_i = c_i ∪ d_i ∪ a_{i-1} (scaled by hⁱ⁻¹: a at q, c∪d at p) climb
//     the induction one copy per step.
//
// Both evaluate the agreement and envelope conditions in every scaled
// scenario at t'' = hᵏ(t') and rely on the Lemma 11 arithmetic for the
// guaranteed violation; sampled scenarios are re-executed as real runs
// of G with scripted faulty sets (the generalized Lemma 9 self-check).

// installScaledCover builds the timed system on an arbitrary cover with
// hardware clock q∘h^(-position[s]) at each S-node s. The inverse
// iterates come from the precomputed table (iters[i] = h⁻ⁱ), so the
// install is linear in the cover size rather than quadratic.
func installScaledCover(cover *graph.Cover, params Params, builders map[string]Builder, iters []clockfn.RatLinear, position []int) (*timedsim.System, error) {
	if err := cover.Verify(); err != nil {
		return nil, err
	}
	s, g := cover.S, cover.G
	if len(position) != s.N() {
		return nil, fmt.Errorf("clocksync: %d positions for %d S-nodes", len(position), s.N())
	}
	nodes := make([]timedsim.Node, s.N())
	for i := 0; i < s.N(); i++ {
		gName := g.Name(cover.Phi[i])
		b, ok := builders[gName]
		if !ok {
			return nil, fmt.Errorf("clocksync: no builder for G-node %q", gName)
		}
		toG := make(map[string]string, s.Degree(i))
		toS := make(map[string]string, s.Degree(i))
		for _, nb := range s.Neighbors(i) {
			toG[s.Name(nb)] = g.Name(cover.Phi[nb])
			toS[g.Name(cover.Phi[nb])] = s.Name(nb)
		}
		gNeighbors := make([]string, 0, len(toS))
		for gNb := range toS {
			gNeighbors = append(gNeighbors, gNb)
		}
		sort.Strings(gNeighbors)
		inner := b(gName, gNeighbors)
		inner.Init(gName, gNeighbors)
		nodes[i] = timedsim.Node{
			Device: timedsim.Renamed(inner, toG, toS),
			Clock:  params.Q.ComposeRat(iters[position[i]]),
		}
	}
	return &timedsim.System{G: s, Nodes: nodes, Delta: params.Delta}, nil
}

// scaledScenario is one correct-behavior claim: the S-nodes in U form,
// after scaling by h^scale, a correct behavior of G with the remaining
// G-nodes faulty.
type scaledScenario struct {
	name  string
	u     []int
	scale int
}

// checkScaledScenario is the generalized Lemma 9 self-check: re-execute
// the scenario as a real G-system (correct devices with their scaled
// clocks, every other node a scripted sender replaying the scaled border
// traffic) and require tick-for-tick agreement with the covering run.
func checkScaledScenario(cover *graph.Cover, params Params, builders map[string]Builder, h clockfn.RatLinear, iters []clockfn.RatLinear, position []int, runS *timedsim.Run, sc scaledScenario, tSecond *big.Rat) error {
	s, g := cover.S, cover.G
	if err := cover.InducedIsomorphic(sc.u); err != nil {
		return err
	}
	// Private copy of the shared iterate: scratch comparators decompose
	// Rate/Off in place, and iters may be shared with concurrent cells.
	scaleFn := clockfn.RatLinear{
		Rate: new(big.Rat).Set(iters[sc.scale].Rate),
		Off:  new(big.Rat).Set(iters[sc.scale].Off),
	}
	var scr clockfn.RatScratch
	correct := make(map[int]int, len(sc.u)) // G-node -> S preimage
	for _, sn := range sc.u {
		correct[cover.Phi[sn]] = sn
	}
	nodes := make([]timedsim.Node, g.N())
	for gn := 0; gn < g.N(); gn++ {
		gName := g.Name(gn)
		if sn, ok := correct[gn]; ok {
			// The scaled clock law: (q h^-pos) ∘ h^scale; the exponent is
			// always <= 0 in the node and connectivity scenarios, so it
			// resolves through the iterate table.
			var law clockfn.RatLinear
			if e := sc.scale - position[sn]; e <= 0 && -e < len(iters) {
				law = iters[-e]
			} else {
				law = h.IterateRat(e)
			}
			dev := builders[gName](gName, gNeighborNames(g, gn))
			dev.Init(gName, gNeighborNames(g, gn))
			nodes[gn] = timedsim.Node{
				Device: dev,
				Clock:  params.Q.ComposeRat(law),
			}
			continue
		}
		// Faulty node: script the scaled border sends toward each correct
		// neighbor. Per-edge send lists are time-ordered and scaling
		// preserves order, so fold-merging them reproduces the stable
		// sort of their concatenation.
		var script []timedsim.ScriptedSend
		for _, gv := range g.Neighbors(gn) {
			sn, ok := correct[gv]
			if !ok {
				continue
			}
			pre := cover.EdgePreimage(sn, gn)
			recs := runS.Sends[graph.Edge{From: s.Name(pre), To: s.Name(sn)}]
			edge := make([]timedsim.ScriptedSend, 0, len(recs))
			for _, rec := range recs {
				edge = append(edge, timedsim.ScriptedSend{
					At: scaleFn.At(rec.At), To: g.Name(gv), Payload: rec.Payload,
				})
			}
			script = mergeScript(&scr, script, edge)
		}
		nodes[gn] = timedsim.Node{Script: script, Clock: params.Q}
	}
	until := scaleFn.At(tSecond)
	runG, err := timedsim.Execute(&timedsim.System{G: g, Nodes: nodes, Delta: params.Delta}, until)
	if err != nil {
		return err
	}
	for _, sn := range sc.u {
		gName := g.Name(cover.Phi[sn])
		ringTicks := runS.Ticks[sn]
		gTicks, err := runG.TicksOf(gName)
		if err != nil {
			return err
		}
		if len(ringTicks) != len(gTicks) {
			return fmt.Errorf("%s: node %s: %d covering ticks vs %d spliced ticks",
				sc.name, gName, len(ringTicks), len(gTicks))
		}
		for j := range ringTicks {
			rt, gt := ringTicks[j], gTicks[j]
			if scr.CmpAt(scaleFn, rt.Time, gt.Time) != 0 {
				return fmt.Errorf("%s: node %s tick %d: scaled time %s != %s",
					sc.name, gName, j, scaleFn.At(rt.Time).RatString(), gt.Time.RatString())
			}
			if rt.Snapshot != gt.Snapshot {
				return fmt.Errorf("%s: node %s tick %d: snapshots differ", sc.name, gName, j)
			}
		}
	}
	return nil
}

func gNeighborNames(g *graph.Graph, u int) []string {
	var out []string
	for _, v := range g.Neighbors(u) {
		out = append(out, g.Name(v))
	}
	return sortedStrings(out)
}

// evaluateScaledScenarios applies the agreement and envelope conditions
// to every scenario at its scaled time and collects violations.
func evaluateScaledScenarios(params Params, iters []clockfn.RatLinear, run *timedsim.Run, scenarios []scaledScenario, tSecond *big.Rat) []Violation {
	const tol = 1e-9
	pf, qf := params.P.Float(), params.Q.Float()
	var violations []Violation
	for _, sc := range scenarios {
		tau := iters[sc.scale].At(tSecond)
		tauF, _ := tau.Float64()
		bound := params.L.At(qf.At(tauF)) - params.L.At(pf.At(tauF)) - params.Alpha
		loEnv, hiEnv := params.L.At(pf.At(tauF)), params.U.At(qf.At(tauF))
		for ai, a := range sc.u {
			ca := run.FinalLogical[a]
			if ca < loEnv-tol || ca > hiEnv+tol {
				violations = append(violations, Violation{
					Scenario: sc.name, Condition: "envelope",
					Detail: fmt.Sprintf("C(%s) = %.6f outside [%.6f, %.6f] at scaled time %.6f",
						run.G.Name(a), ca, loEnv, hiEnv, tauF),
				})
			}
			for _, b := range sc.u[ai+1:] {
				gap := ca - run.FinalLogical[b]
				if gap < 0 {
					gap = -gap
				}
				if gap > bound+tol {
					violations = append(violations, Violation{
						Scenario: sc.name, Condition: "agreement",
						Detail: fmt.Sprintf("|C(%s) - C(%s)| = %.6f > %.6f at scaled time %.6f",
							run.G.Name(a), run.G.Name(b), gap, bound, tauF),
					})
				}
			}
		}
	}
	return violations
}

// Theorem8Nodes mechanizes the general node bound of Theorem 8.
func Theorem8Nodes(params Params, g *graph.Graph, aSet, bSet, cSet []int, f int, builders map[string]Builder) (*Result, error) {
	if g.N() > 3*f {
		return nil, fmt.Errorf("clocksync: graph has %d > 3f = %d nodes", g.N(), 3*f)
	}
	if len(aSet) > f || len(bSet) > f || len(cSet) > f ||
		len(aSet) == 0 || len(bSet) == 0 || len(cSet) == 0 {
		return nil, fmt.Errorf("clocksync: partition blocks must be non-empty with at most f=%d nodes", f)
	}
	k, err := params.ChooseK()
	if err != nil {
		return nil, err
	}
	positionsTotal := k + 2 // ring positions, divisible by 3
	copies := positionsTotal / 3
	block := make([]int, g.N())
	for i := range block {
		block[i] = -1
	}
	for id, set := range [][]int{aSet, bSet, cSet} {
		for _, x := range set {
			if x < 0 || x >= g.N() || block[x] != -1 {
				return nil, fmt.Errorf("clocksync: invalid partition at node %d", x)
			}
			block[x] = id
		}
	}
	for x, id := range block {
		if id == -1 {
			return nil, fmt.Errorf("clocksync: node %s not covered by the partition", g.Name(x))
		}
	}
	// Crossing c -> a makes the ring positions consecutive:
	// ...a_i b_i c_i a_(i+1)..., so adjacent positions are adjacent
	// block images.
	cover := graph.CyclicCover(g, func(u, v int) bool {
		return block[u] == 2 && block[v] == 0
	}, copies)
	n := g.N()
	position := make([]int, cover.S.N())
	for i := range position {
		position[i] = (i/n)*3 + block[i%n]
	}
	h := params.H()
	iters := clockfn.Iterates(h, -1, positionsTotal-1)
	sys, err := installScaledCover(cover, params, builders, iters, position)
	if err != nil {
		return nil, err
	}
	tSecond := h.IterateRat(k).At(params.TPrime)
	if err := guardTicks(params, tSecond, k); err != nil {
		return nil, err
	}
	run, err := timedsim.Execute(sys, tSecond)
	if err != nil {
		return nil, err
	}
	// Scenario pairs (position j, j+1) for j = 0..k, scaled by h^j.
	members := make([][]int, positionsTotal)
	for i, p := range position {
		members[p] = append(members[p], i)
	}
	var scenarios []scaledScenario
	for j := 0; j <= k; j++ {
		scenarios = append(scenarios, scaledScenario{
			name:  fmt.Sprintf("S%d", j),
			u:     append(append([]int(nil), members[j]...), members[j+1]...),
			scale: j,
		})
	}
	res := &Result{
		Params:  params,
		K:       k,
		TSecond: tSecond,
		Logical: append([]float64(nil), run.FinalLogical...),
		Run:     run,
	}
	for _, idx := range sampleScenarios(k) {
		if err := checkScaledScenario(cover, params, builders, h, iters, position, run, scenarios[idx], tSecond); err != nil {
			return nil, fmt.Errorf("clocksync: Lemma 9 self-check failed: %w", err)
		}
	}
	res.Violations = evaluateScaledScenarios(params, iters, run, scenarios, tSecond)
	if !res.Contradicted() {
		return res, fmt.Errorf("clocksync: no condition violated in the general node case — impossible:\n%s", res)
	}
	return res, nil
}

// Theorem8Connectivity mechanizes the connectivity bound of Theorem 8.
func Theorem8Connectivity(params Params, g *graph.Graph, bSet, dSet []int, uNode, vNode, f int, builders map[string]Builder) (*Result, error) {
	if len(bSet) > f || len(dSet) > f {
		return nil, fmt.Errorf("clocksync: cut halves must have at most f=%d nodes", f)
	}
	k, err := params.ChooseK()
	if err != nil {
		return nil, err
	}
	copies := k + 2
	cover, err := graph.CyclicCutCover(g, bSet, dSet, uNode, vNode, copies)
	if err != nil {
		return nil, err
	}
	n := g.N()
	position := make([]int, cover.S.N())
	for i := range position {
		position[i] = i / n // all nodes of copy i share the clock q∘h⁻ⁱ
	}
	h := params.H()
	iters := clockfn.Iterates(h, -1, copies-1)
	sys, err := installScaledCover(cover, params, builders, iters, position)
	if err != nil {
		return nil, err
	}
	tSecond := h.IterateRat(k).At(params.TPrime)
	if err := guardTicks(params, tSecond, k); err != nil {
		return nil, err
	}
	run, err := timedsim.Execute(sys, tSecond)
	if err != nil {
		return nil, err
	}
	inD := make(map[int]bool, len(dSet))
	for _, x := range dSet {
		inD[x] = true
	}
	removed := append(append([]int(nil), bSet...), dSet...)
	aSet := g.ComponentWithout(removed, uNode)
	inAorCut := make(map[int]bool, g.N())
	for _, x := range aSet {
		inAorCut[x] = true
	}
	for _, x := range removed {
		inAorCut[x] = true
	}
	var cSet []int
	for x := 0; x < g.N(); x++ {
		if !inAorCut[x] {
			cSet = append(cSet, x)
		}
	}
	var scenarios []scaledScenario
	for i := 0; i <= k; i++ {
		// X_i: copy i without d, scaled by h^i (all clocks q).
		var x []int
		for node := 0; node < n; node++ {
			if !inD[node] {
				x = append(x, i*n+node)
			}
		}
		scenarios = append(scenarios, scaledScenario{name: fmt.Sprintf("X%d", i), u: x, scale: i})
		if i >= 1 {
			// Y_i: c_i ∪ d_i ∪ a_{i-1}, scaled by h^(i-1) (a at q, c∪d at p).
			var y []int
			for _, node := range cSet {
				y = append(y, i*n+node)
			}
			for _, node := range dSet {
				y = append(y, i*n+node)
			}
			for _, node := range aSet {
				y = append(y, (i-1)*n+node)
			}
			scenarios = append(scenarios, scaledScenario{name: fmt.Sprintf("Y%d", i), u: y, scale: i - 1})
		}
	}
	res := &Result{
		Params:  params,
		K:       k,
		TSecond: tSecond,
		Logical: append([]float64(nil), run.FinalLogical...),
		Run:     run,
	}
	for _, idx := range sampleScenarios(len(scenarios) - 2) {
		if err := checkScaledScenario(cover, params, builders, h, iters, position, run, scenarios[idx], tSecond); err != nil {
			return nil, fmt.Errorf("clocksync: Lemma 9 self-check failed: %w", err)
		}
	}
	res.Violations = evaluateScaledScenarios(params, iters, run, scenarios, tSecond)
	if !res.Contradicted() {
		return res, fmt.Errorf("clocksync: no condition violated in the connectivity case — impossible:\n%s", res)
	}
	return res, nil
}

// guardTicks rejects parameter choices whose simulation would be huge.
func guardTicks(params Params, tSecond *big.Rat, k int) error {
	ticksEstimate := new(big.Rat).Quo(params.Q.At(tSecond), params.Delta)
	if est, _ := ticksEstimate.Float64(); est > 5e5 {
		return fmt.Errorf("clocksync: parameters need ~%.0f ticks (k=%d); increase alpha or tighten the envelopes", est, k)
	}
	return nil
}
