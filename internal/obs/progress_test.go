package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the reporter goroutine
// writes while the test polls.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestProgressLifecycle walks one published sweep through its states
// and checks the snapshot at each: booked, in flight, done, faulted.
func TestProgressLifecycle(t *testing.T) {
	ResetProgress()
	t.Cleanup(ResetProgress)

	SetProgressPhase("E17")
	ticket := ProgressSweepStart(4)
	if got := ProgressSnapshot(); got.Total != 4 || got.Done != 0 || got.Phase != "E17" {
		t.Fatalf("after start: %+v", got)
	}

	ProgressTrialStart()
	ProgressTrialStart()
	if got := ProgressSnapshot(); got.Busy != 2 || got.Queue != 2 {
		t.Fatalf("in flight: busy=%d queue=%d, want 2/2", got.Busy, got.Queue)
	}

	ProgressTrialDone(0, 40*time.Microsecond)
	ProgressTrialDone(1, 60*time.Microsecond)
	ProgressTrialFault(1)
	time.Sleep(time.Millisecond) // ensure a non-zero elapsed, so the ETA extrapolation is non-zero
	got := ProgressSnapshot()
	if got.Done != 2 || got.Busy != 0 || got.Faults != 1 {
		t.Fatalf("after two trials: %+v", got)
	}
	if got.Percent() != 50 {
		t.Fatalf("percent = %v, want 50", got.Percent())
	}
	if got.ETAUS <= 0 {
		t.Fatalf("eta = %d, want positive with half the work left", got.ETAUS)
	}
	if len(got.Workers) != 2 {
		t.Fatalf("workers = %+v, want rows for 0 and 1", got.Workers)
	}
	if got.Workers[0].Worker != 0 || got.Workers[1].Worker != 1 {
		t.Fatalf("worker rows unsorted: %+v", got.Workers)
	}
	if got.Workers[0].BusyUS != 40 || got.Workers[1].BusyUS != 60 {
		t.Fatalf("busy accounting: %+v", got.Workers)
	}
	if got.Workers[1].Faults != 1 {
		t.Fatalf("fault attribution: %+v", got.Workers[1])
	}

	// Finishing the ticket with two trials never run retires them: the
	// completion ratio converges to 100% instead of sticking at 50%.
	ticket.Finish()
	if got := ProgressSnapshot(); got.Total != 2 || got.Percent() != 100 {
		t.Fatalf("after finish: total=%d pct=%v, want 2/100%%", got.Total, got.Percent())
	}
}

// TestProgressGaugesInRegistry checks the sweep state is mirrored into
// registered gauges (the /metrics and final-metrics-line surface).
func TestProgressGaugesInRegistry(t *testing.T) {
	ResetProgress()
	t.Cleanup(ResetProgress)
	ProgressSweepStart(3)
	ProgressTrialStart()
	ProgressTrialDone(0, time.Microsecond)
	ProgressSnapshot()
	s := Metrics.Snapshot()
	if s.Gauges["progress.trials.total"] != 3 || s.Gauges["progress.trials.done"] != 1 {
		t.Fatalf("registry gauges: %v", s.Gauges)
	}
	if s.Gauges["progress.queue.depth"] != 2 {
		t.Fatalf("queue gauge = %d, want 2", s.Gauges["progress.queue.depth"])
	}
}

// TestProgressLine pins the human rendering the stderr reporter emits.
func TestProgressLine(t *testing.T) {
	p := ProgressInfo{Phase: "chaos seed=1", Total: 100, Done: 25, Busy: 4, Queue: 71,
		ElapsedUS: 2_000_000, ETAUS: 6_000_000, Faults: 2}
	line := p.Line()
	for _, want := range []string{"[chaos seed=1]", "25/100", "25.0%", "busy=4", "queue=71", "eta=6s", "faults=2"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

// TestProgressReporter runs the reporter at a tight interval and checks
// it prints progress lines and a final line on stop.
func TestProgressReporter(t *testing.T) {
	ResetProgress()
	t.Cleanup(ResetProgress)
	ProgressSweepStart(2)
	ProgressTrialStart()
	ProgressTrialDone(0, time.Microsecond)

	var buf syncBuffer
	stop := StartProgressReporter(&buf, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for buf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "flm progress: 1/2 trials") {
		t.Fatalf("reporter output %q lacks a progress line", out)
	}
}
