package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkersEnvParsingTable pins the FLM_WORKERS fallback contract:
// empty and "0" are valid spellings of the GOMAXPROCS default (no
// warning), while malformed or negative values fall back with a one-time
// warning.
func TestWorkersEnvParsingTable(t *testing.T) {
	old := os.Getenv(WorkersEnv)
	defer os.Setenv(WorkersEnv, old)
	SetWorkers(0)

	def := runtime.GOMAXPROCS(0)
	cases := []struct {
		env  string
		want int
		warn bool
	}{
		{env: "", want: def, warn: false},
		{env: "0", want: def, warn: false},
		{env: "-3", want: def, warn: true},
		{env: "abc", want: def, warn: true},
		{env: "4", want: 4, warn: false},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("env=%q", tc.env), func(t *testing.T) {
			var warned []string
			warnOnce = sync.Once{} // reset the one-time gate per case
			oldWarn := warnf
			warnf = func(format string, args ...any) {
				warned = append(warned, fmt.Sprintf(format, args...))
			}
			defer func() { warnf = oldWarn }()

			os.Setenv(WorkersEnv, tc.env)
			if got := Workers(); got != tc.want {
				t.Errorf("Workers() = %d, want %d", got, tc.want)
			}
			if tc.warn && len(warned) != 1 {
				t.Errorf("want exactly one warning, got %v", warned)
			}
			if !tc.warn && len(warned) != 0 {
				t.Errorf("unexpected warning %v", warned)
			}
			if tc.warn {
				if !strings.Contains(warned[0], tc.env) {
					t.Errorf("warning %q does not name the bad value %q", warned[0], tc.env)
				}
				// The warning must fire only once per process.
				Workers()
				if len(warned) != 1 {
					t.Errorf("warning repeated: %v", warned)
				}
			}
		})
	}
}

// TestIsolatedPanicIsolation: a panicking trial in a 64-trial sweep
// yields a structured *TrialFault for its own index while every other
// trial completes.
func TestIsolatedPanicIsolation(t *testing.T) {
	const n, bad = 64, 17
	var ran atomic.Int64
	results, errs := Isolated(context.Background(), n, Opts{Workers: 4}, func(i int) (int, error) {
		ran.Add(1)
		if i == bad {
			panic("deliberate chaos")
		}
		return i * 2, nil
	})
	if got := ran.Load(); got != n {
		t.Fatalf("only %d/%d trials ran; a panic cancelled the sweep", got, n)
	}
	for i := 0; i < n; i++ {
		if i == bad {
			var tf *TrialFault
			if !errors.As(errs[i], &tf) {
				t.Fatalf("trial %d error %v is not *TrialFault", i, errs[i])
			}
			if tf.Trial != bad || tf.Panic != "deliberate chaos" || len(tf.Stack) == 0 {
				t.Errorf("fault misattributed: %+v", tf)
			}
			continue
		}
		if errs[i] != nil {
			t.Errorf("healthy trial %d failed: %v", i, errs[i])
		}
		if results[i] != i*2 {
			t.Errorf("result[%d] = %d, want %d", i, results[i], i*2)
		}
	}
	if idx, err := FirstError(errs); idx != bad || err == nil {
		t.Errorf("FirstError = (%d, %v), want (%d, fault)", idx, err, bad)
	}
	if c := FaultCount(errs); c != 1 {
		t.Errorf("FaultCount = %d, want 1", c)
	}
}

// TestIsolatedTimeoutIsolation: an infinite-looping trial is abandoned at
// its budget with a Timeout fault; the other 63 trials complete.
func TestIsolatedTimeoutIsolation(t *testing.T) {
	const n, bad = 64, 5
	stop := make(chan struct{}) // lets the stray goroutine exit at test end
	defer close(stop)
	results, errs := Isolated(context.Background(), n, Opts{Workers: 4, Timeout: 50 * time.Millisecond},
		func(i int) (int, error) {
			if i == bad {
				<-stop // "infinite" loop: blocks far past the budget
			}
			return i + 1, nil
		})
	var tf *TrialFault
	if !errors.As(errs[bad], &tf) {
		t.Fatalf("looping trial error %v is not *TrialFault", errs[bad])
	}
	if !tf.Timeout || tf.Trial != bad || tf.Budget != 50*time.Millisecond {
		t.Errorf("fault = %+v, want timeout of trial %d", tf, bad)
	}
	for i := 0; i < n; i++ {
		if i == bad {
			continue
		}
		if errs[i] != nil || results[i] != i+1 {
			t.Errorf("healthy trial %d: result=%d err=%v", i, results[i], errs[i])
		}
	}
}

// TestIsolatedWrapsPlainErrors: ordinary trial errors come back as
// TrialFaults with the original error reachable via errors.Is.
func TestIsolatedWrapsPlainErrors(t *testing.T) {
	sentinel := errors.New("ordinary failure")
	_, errs := Isolated(context.Background(), 8, Opts{Workers: 2}, func(i int) (int, error) {
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(errs[3], sentinel) {
		t.Fatalf("trial error %v lost its cause", errs[3])
	}
	var tf *TrialFault
	if !errors.As(errs[3], &tf) || tf.Trial != 3 {
		t.Fatalf("trial error %v not attributed", errs[3])
	}
}

// TestIsolatedCancellation: a cancelled context stops new trials; the
// unstarted ones carry ctx-wrapped faults.
func TestIsolatedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1024)
	_, errs := Isolated(ctx, 1024, Opts{Workers: 2}, func(i int) (int, error) {
		started <- struct{}{}
		if i == 0 {
			cancel()
		}
		return i, nil
	})
	if len(started) == 1024 {
		t.Fatal("cancellation did not stop the sweep")
	}
	cancelled := 0
	for _, err := range errs {
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no trial reported the cancellation")
	}
}

// TestIsolatedDeterministicResults: isolation must not perturb result
// ordering — same inputs, same outputs, any worker count.
func TestIsolatedDeterministicResults(t *testing.T) {
	run := func(workers int) []int {
		results, errs := Isolated(context.Background(), 100, Opts{Workers: workers},
			func(i int) (int, error) { return i * i, nil })
		if _, err := FirstError(errs); err != nil {
			t.Fatal(err)
		}
		return results
	}
	one, four := run(1), run(4)
	for i := range one {
		if one[i] != four[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, one[i], four[i])
		}
	}
}

// TestMapCtxCancellation: the ordinary Map path also honors its context.
func TestMapCtxCancellation(t *testing.T) {
	defer SetWorkers(SetWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := MapCtx(ctx, 100_000, func(i int) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() == 100_000 {
		t.Fatal("cancellation did not stop the sweep")
	}
}
