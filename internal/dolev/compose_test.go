package dolev

import (
	"testing"

	"flm/internal/adversary"
	"flm/internal/approx"
	"flm/internal/byzantine"
	"flm/internal/firingsquad"
	"flm/internal/graph"
	"flm/internal/sim"
	"flm/internal/weak"
)

// The overlay is protocol-agnostic: any complete-graph device runs over
// the disjoint-path routing. These tests compose it with the approximate
// agreement, weak agreement, and firing squad substrates on sparse
// adequate graphs.

func TestOverlayDLPSWOnWheel(t *testing.T) {
	g := graph.Wheel(7) // connectivity 3 = 2f+1, n = 7 >= 3f+1 for f=1
	r, err := NewRouter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	const iterations = 6
	honest := Overlay(r, approx.NewDLPSW(1, g.Names(), iterations))
	inputs := map[string]sim.Input{}
	for i, name := range g.Names() {
		inputs[name] = sim.RealInput(float64(i) / 6)
	}
	for _, badNode := range []string{"w0", "w4"} {
		for _, strat := range adversary.Panel(51) {
			trial := byzantine.Trial{
				G: g, Inputs: inputs, Honest: honest,
				Faulty: map[string]sim.Builder{badNode: strat.Corrupt(honest)},
				Rounds: r.Rounds(approx.DLPSWRounds(iterations)),
			}
			run, correct, _, err := trial.Run()
			if err != nil {
				t.Fatal(err)
			}
			rep := approx.CheckEDG(run, correct, 0.05, 0)
			if !rep.OK() {
				t.Errorf("bad=%s strat=%s: %v", badNode, strat.Name, rep.Err())
			}
		}
	}
}

func TestOverlayWeakAgreementOnHypercube(t *testing.T) {
	g := graph.Hypercube(3) // connectivity 3, n = 8
	r, err := NewRouter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	honest := Overlay(r, weak.NewViaBA(1, g.Names()))
	for _, bits := range []int{0, 0xFF, 0x3C} {
		inputs := map[string]sim.Input{}
		for i, name := range g.Names() {
			inputs[name] = sim.BoolInput(bits&(1<<uint(i)) != 0)
		}
		for _, strat := range adversary.Panel(53) {
			trial := byzantine.Trial{
				G: g, Inputs: inputs, Honest: honest,
				Faulty: map[string]sim.Builder{"h5": strat.Corrupt(honest)},
				Rounds: r.Rounds(byzantine.EIGRounds(1)),
			}
			run, correct, _, err := trial.Run()
			if err != nil {
				t.Fatal(err)
			}
			rep := weak.Check(run, correct, false)
			if !rep.OK() {
				t.Errorf("bits=%x strat=%s: %v", bits, strat.Name, rep.Err())
			}
		}
	}
}

func TestOverlayFiringSquadOnCirculant(t *testing.T) {
	g := graph.Circulant(7, 1, 2) // connectivity 4, n = 7
	r, err := NewRouter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	honest := Overlay(r, firingsquad.NewViaBA(1, g.Names()))
	for _, strat := range adversary.Panel(57) {
		inputs := map[string]sim.Input{}
		for _, name := range g.Names() {
			inputs[name] = sim.BoolInput(name == "c2")
		}
		trial := byzantine.Trial{
			G: g, Inputs: inputs, Honest: honest,
			Faulty: map[string]sim.Builder{"c5": strat.Corrupt(honest)},
			Rounds: r.Rounds(firingsquad.Rounds(1)),
		}
		run, correct, _, err := trial.Run()
		if err != nil {
			t.Fatal(err)
		}
		// With a fault, simultaneity binds; all correct must fire in
		// lockstep or not at all.
		rep := firingsquad.Check(run, correct, false, true)
		if rep.Agreement != nil {
			t.Errorf("strat=%s: %v", strat.Name, rep.Agreement)
		}
	}
}

func TestOverlayTurpinCoanOnWheel(t *testing.T) {
	g := graph.Wheel(7)
	r, err := NewRouter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	honest := Overlay(r, byzantine.NewTurpinCoan(1, g.Names()))
	inputs := map[string]sim.Input{}
	vals := []string{"red", "green", "blue"}
	for i, name := range g.Names() {
		inputs[name] = sim.Input(vals[i%3])
	}
	for _, strat := range adversary.Panel(59) {
		trial := byzantine.Trial{
			G: g, Inputs: inputs, Honest: honest,
			Faulty: map[string]sim.Builder{"w6": strat.Corrupt(honest)},
			Rounds: r.Rounds(byzantine.TurpinCoanRounds(1)),
		}
		_, _, rep, err := trial.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Errorf("strat=%s: %v", strat.Name, rep.Err())
		}
	}
}
