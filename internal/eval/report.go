// Package eval is the experiment harness: it regenerates, as text tables
// and data series, every theorem and corollary of FLM85 (the paper's
// "evaluation" is its results section) plus the tightness experiments
// that show the 3f+1 and 2f+1 bounds are matched from above by EIG,
// phase king, Dolev routing, DLPSW, and the firing-squad reduction.
// cmd/flm exposes the registry; EXPERIMENTS.md records the output.
package eval

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Series is one experiment figure: named y-series over a shared x-axis.
type Series struct {
	Title   string
	XLabel  string
	YLabels []string
	X       []float64
	Y       [][]float64
	Notes   []string
}

// Render formats the series as an aligned data listing.
func (s *Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%-12s", s.XLabel)
	for _, yl := range s.YLabels {
		fmt.Fprintf(&b, "  %-14s", yl)
	}
	b.WriteString("\n")
	for i, x := range s.X {
		fmt.Fprintf(&b, "%-12.4g", x)
		for j := range s.YLabels {
			fmt.Fprintf(&b, "  %-14.6g", s.Y[j][i])
		}
		b.WriteString("\n")
	}
	for _, n := range s.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Result is the outcome of one experiment.
type Result struct {
	ID      string
	Name    string
	Paper   string // which paper result this reproduces
	Summary string
	Tables  []*Table
	Figures []*Series
}

// Render formats the whole result.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Name)
	fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	if r.Summary != "" {
		fmt.Fprintf(&b, "%s\n", r.Summary)
	}
	for _, t := range r.Tables {
		b.WriteString("\n")
		b.WriteString(t.Render())
	}
	for _, f := range r.Figures {
		b.WriteString("\n")
		b.WriteString(f.Render())
	}
	return b.String()
}

// Experiment couples an ID with a runner.
type Experiment struct {
	ID    string
	Name  string
	Paper string
	Run   func() (*Result, error)
}

// Registry returns every experiment, sorted by ID.
func Registry() []Experiment {
	exps := []Experiment{
		{ID: "E1", Name: "Byzantine agreement needs 3f+1 nodes", Paper: "Theorem 1 (Section 3.1)", Run: RunE1},
		{ID: "E2", Name: "Byzantine agreement needs 2f+1 connectivity", Paper: "Theorem 1 (Section 3.2)", Run: RunE2},
		{ID: "E3", Name: "Weak agreement on the 4k-ring covering", Paper: "Theorem 2 + Lemma 3 (Section 4)", Run: RunE3},
		{ID: "E4", Name: "Byzantine firing squad on the 4k-ring covering", Paper: "Theorem 4 (Section 5)", Run: RunE4},
		{ID: "E5", Name: "Simple approximate agreement on the hexagon", Paper: "Theorem 5 (Section 6.1)", Run: RunE5},
		{ID: "E6", Name: "(ε,δ,γ)-agreement induction on the (k+2)-ring", Paper: "Theorem 6 + Lemma 7 (Section 6.2)", Run: RunE6},
		{ID: "E7", Name: "Clock synchronization on the scaled ring", Paper: "Theorem 8 + Lemmas 9-11 (Section 7)", Run: RunE7},
		{ID: "E8", Name: "Clock corollaries: best possible sync constants", Paper: "Corollaries 12-15 (Section 7.1)", Run: RunE8},
		{ID: "E9", Name: "Tightness: EIG and phase king on adequate graphs", Paper: "context: [PSL], [LSP] upper bounds", Run: RunE9},
		{ID: "E10", Name: "Tightness: Dolev routing at connectivity 2f+1", Paper: "context: [D] upper bound", Run: RunE10},
		{ID: "E11", Name: "Tightness: DLPSW approximate agreement convergence", Paper: "context: [DLPSW] upper bound", Run: RunE11},
		{ID: "E12", Name: "Tightness: firing squad and weak agreement via BA", Paper: "context: [CDDS], [L] reductions", Run: RunE12},
		{ID: "E13", Name: "Partition collapse: block sweeps of the node bound", Paper: "Section 3.1, footnote 3", Run: RunE13},
		{ID: "E14", Name: "Nondeterministic devices are defeated too", Paper: "Section 3.3 remark", Run: RunE14},
		{ID: "E15", Name: "Ablation: signatures break the Fault axiom", Paper: "Section 2 remark; [LSP,PSL]", Run: RunE15},
		{ID: "E16", Name: "Ablation: delay assumptions (footnote 4, Scaling axiom)", Paper: "Section 4 fn.4; Section 7 remark", Run: RunE16},
		{ID: "E17", Name: "The adequacy frontier across graph families", Paper: "Theorem 1 both bounds + tightness census", Run: RunE17},
		{ID: "E18", Name: "Chaos adversary panel across the adequacy boundary", Paper: "Fault axiom (Section 2) + Theorems 1,5,8 predictions", Run: RunE18},
		{ID: "E19", Name: "The n > 2t initially-dead possibility baseline", Paper: "FLP Section 4 protocol; contrast with the paper's Fault-axiom adversaries", Run: RunE19},
		{ID: "E20", Name: "Chaos panel under adversarial asynchrony", Paper: "Fault axiom (Section 2) extended with delay adversaries; FLP Section 4 frontier", Run: RunE20},
	}
	sort.Slice(exps, func(i, j int) bool {
		if len(exps[i].ID) != len(exps[j].ID) {
			return len(exps[i].ID) < len(exps[j].ID)
		}
		return exps[i].ID < exps[j].ID
	})
	return exps
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
