package chaos

import "flm/internal/obs"

// Shrinking: a violating schedule found by the randomized generator may
// carry faulty actions that contribute nothing to the violation (and, at
// f = 2, more faulty nodes than necessary). Shrink applies greedy
// delta-debugging over the action list and the strategy lattice until the
// schedule is 1-minimal: removing any remaining action, or weakening any
// remaining strategy, loses the violation.

// weakerThan orders strategies by attack power for shrinking purposes:
// every strategy may be weakened to silence (pure omission), and crash is
// the halfway point for the wrapping strategies. The shrunk
// counterexample then uses the least Byzantine behavior that still
// breaks the condition.
var weakerThan = map[string][]string{
	"crash":      {"silent"},
	"omit":       {"silent"},
	"noise":      {"silent"},
	"equivocate": {"crash", "silent"},
	"mirror":     {"silent"},
	"replay":     {"silent"},
}

// violates re-runs a candidate and reports whether it still breaks a
// correctness condition (engine faults do not count: a shrink step that
// turns a violation into a crash is rejected).
func violates(s Schedule) bool {
	if obs.Enabled() {
		mShrinkEvals.Inc()
	}
	o := RunSchedule(s)
	return o.Violation != nil && o.EngineErr == nil
}

// Shrink minimizes a violating schedule. It returns the minimal
// schedule and true, or the input and false when the schedule does not
// actually violate (nothing to shrink). The result always still
// violates, and has at most as many faulty actions as the input —
// that count is the harness's reported upper bound on the
// counterexample size.
func Shrink(s Schedule) (Schedule, bool) {
	if !violates(s) {
		return s, false
	}
	cur := s
	for changed := true; changed; {
		changed = false
		// Pass 1: drop whole actions (restore the node to honesty).
		for i := 0; i < len(cur.Actions); i++ {
			cand := cur
			cand.Actions = append(append([]Action(nil), cur.Actions[:i]...), cur.Actions[i+1:]...)
			if violates(cand) {
				cur = cand
				changed = true
				break
			}
		}
		if changed {
			continue
		}
		// Pass 2: weaken strategies in place.
		for i := 0; i < len(cur.Actions) && !changed; i++ {
			for _, weaker := range weakerThan[cur.Actions[i].Strategy] {
				cand := cur
				cand.Actions = append([]Action(nil), cur.Actions...)
				cand.Actions[i].Strategy = weaker
				if violates(cand) {
					cur = cand
					changed = true
					break
				}
			}
		}
	}
	return cur, true
}
