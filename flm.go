// Package flm is a complete, executable reproduction of
//
//	Fischer, Lynch, Merritt,
//	"Easy Impossibility Proofs for Distributed Consensus Problems",
//	PODC 1985 / Distributed Computing 1(1), 1986.
//
// The paper proves that Byzantine agreement, weak agreement, the
// Byzantine firing squad, approximate agreement, and clock
// synchronization all require at least 3f+1 nodes and 2f+1 connectivity
// to tolerate f Byzantine faults. Its single proof technique — install
// the supposed devices on a covering graph, then use the Locality and
// Fault axioms to splice covering scenarios into correct behaviors of the
// original graph until the correctness conditions contradict each other —
// is implemented here as an executable engine: hand it any deterministic
// devices and an inadequate graph, and it returns the concrete chain of
// behaviors with the violated condition.
//
// The package also contains everything needed to show the bounds are
// tight: EIG and phase-king Byzantine agreement, Dolev's vertex-disjoint
// path routing for sparse graphs, DLPSW iterated approximate agreement, a
// firing-squad protocol, and fault-tolerant clock machinery, all built on
// a deterministic synchronous simulator (and, for clocks, an exact
// rational-time event simulator in which the paper's Scaling axiom holds
// bit for bit).
//
// Start with Adequate and the Prove* functions; see the examples/
// directory for runnable walkthroughs and cmd/flm for the experiment
// harness that regenerates every table and figure in EXPERIMENTS.md.
package flm

import (
	"context"

	"flm/internal/adversary"
	"flm/internal/approx"
	"flm/internal/byzantine"
	"flm/internal/chaos"
	"flm/internal/clockfn"
	"flm/internal/clocksync"
	"flm/internal/core"
	"flm/internal/dolev"
	"flm/internal/eval"
	"flm/internal/runcache"
	"flm/internal/firingsquad"
	"flm/internal/graph"
	"flm/internal/initdead"
	"flm/internal/signed"
	"flm/internal/sim"
	"flm/internal/sweep"
	"flm/internal/weak"
)

// Graph is a communication graph (symmetric directed-edge pairs).
type Graph = graph.Graph

// Cover is a covering graph with its neighborhood-preserving projection.
type Cover = graph.Cover

// Edge is a directed edge between named nodes.
type Edge = graph.Edge

// Graph constructors.
var (
	// NewGraph returns an edgeless graph over the given node names.
	NewGraph = graph.New
	// Triangle is the paper's three-node complete graph on a, b, c.
	Triangle = graph.Triangle
	// Diamond is the paper's four-node connectivity-2 cycle a-b-c-d.
	Diamond = graph.Diamond
	// Complete returns the complete graph K_n.
	Complete = graph.Complete
	// Ring returns the n-cycle.
	Ring = graph.Ring
	// Wheel returns the wheel graph (connectivity 3).
	Wheel = graph.Wheel
	// Circulant returns the circulant graph C_n(offsets).
	Circulant = graph.Circulant
	// Hypercube returns the d-dimensional hypercube.
	Hypercube = graph.Hypercube
	// HexCover is the paper's six-node covering of the triangle.
	HexCover = graph.HexCover
	// DiamondCover is the paper's eight-node covering of the diamond.
	DiamondCover = graph.DiamondCover
	// RingCoverTriangle is the m-node ring covering of the triangle.
	RingCoverTriangle = graph.RingCoverTriangle
	// PartitionCover is the general two-copy covering for the node bound.
	PartitionCover = graph.PartitionCover
	// CutCover is the general two-copy covering for the connectivity bound.
	CutCover = graph.CutCover
)

// Adequate reports whether g can possibly support the paper's consensus
// problems with f Byzantine faults: n >= 3f+1 and connectivity >= 2f+1.
func Adequate(g *Graph, f int) bool { return g.IsAdequate(f) }

// MaxTolerableFaults returns the largest f for which g is adequate.
func MaxTolerableFaults(g *Graph) int { return g.MaxTolerableFaults() }

// Simulation model.
type (
	// Device is a deterministic round-based consensus device.
	Device = sim.Device
	// Builder constructs a device for a named node.
	Builder = sim.Builder
	// Protocol assigns builders and inputs to every node.
	Protocol = sim.Protocol
	// System is a graph with devices and inputs installed.
	System = sim.System
	// Run is a recorded system behavior.
	Run = sim.Run
	// Scenario is the restriction of a behavior to a subgraph.
	Scenario = sim.Scenario
	// Payload is one message's content.
	Payload = sim.Payload
	// Input is a node's problem input.
	Input = sim.Input
	// Decision is a device's irrevocable output.
	Decision = sim.Decision
)

// ExecuteOpts selects what a simulator execution records and which
// delivery model it runs. The zero value is the decision-only fast
// synchronous mode used by large attack sweeps; use FullRecording when
// the run feeds CheckLocality, Extract, or a Prove* chain, which need
// the complete snapshot and edge history, and set Delays to run under
// an adversarial asynchronous delivery schedule.
type ExecuteOpts = sim.ExecuteOpts

// Adversarial asynchrony: deterministic per-message delay schedules.
type (
	// DelayRule defers one (sender, receiver, round) delivery by Extra
	// rounds; delivery past the run's horizon is message loss.
	DelayRule = sim.DelayRule
	// DelaySchedule is a set of delay rules; nil or empty means the
	// classic synchronous model.
	DelaySchedule = sim.DelaySchedule
)

// SeededDelays derives a deterministic delay schedule from a seed: a
// pure function of (seed, sender, receiver, round), independent of
// iteration or scheduling order.
var SeededDelays = sim.SeededDelays

// FullRecording records snapshots and edge traffic (what Execute does).
var FullRecording = sim.FullRecording

// Simulation operations.
var (
	// NewSystem instantiates a protocol on a graph.
	NewSystem = sim.NewSystem
	// Execute runs a system for a number of rounds, recording everything.
	Execute = sim.Execute
	// ExecuteWith runs a system with explicit recording options.
	ExecuteWith = sim.ExecuteWith
	// ExtractScenario restricts a run to a node subset.
	ExtractScenario = sim.Extract
	// CheckLocality verifies the Locality axiom on a concrete run.
	CheckLocality = sim.CheckLocality
	// NewReplayDevice is the Fault-axiom device F_A(E_1,...,E_d).
	NewReplayDevice = sim.NewReplayDevice
	// ReplayBuilder installs replay devices through a Protocol.
	ReplayBuilder = sim.ReplayBuilder
	// BoolInput and RealInput encode problem inputs canonically.
	BoolInput = sim.BoolInput
	RealInput = sim.RealInput
	// CollectStats tallies a run's communication cost.
	CollectStats = sim.CollectStats
	// TraceRun renders a run's round-by-round edge traffic.
	TraceRun = sim.Trace
)

// Stats summarizes a run's communication cost.
type Stats = sim.Stats

// Fault isolation: structured errors for misbehaving devices and trials.
type (
	// DeviceFault is a recovered device panic with node/round/operation
	// attribution and the captured stack.
	DeviceFault = sim.DeviceFault
	// ExecError wraps any executor failure with node and round context.
	ExecError = sim.ExecError
	// TrialFault is one isolated sweep trial's failure (panic, timeout,
	// or wrapped error) with trial attribution.
	TrialFault = sweep.TrialFault
	// SweepOpts configures an isolated sweep (fan-out, per-trial budget).
	SweepOpts = sweep.Opts
)

var (
	// ExecuteCtx runs a system under a context: cancellation and
	// deadlines are checked at every round boundary.
	ExecuteCtx = sim.ExecuteCtx
	// FirstSweepError recovers the lowest-failing-index error of a sweep.
	FirstSweepError = sweep.FirstError
)

// RunCacheStatsReport is the hit/miss/entry counters of one memoization
// cache (the execution cache or the splice cache).
type RunCacheStatsReport = runcache.Stats

var (
	// RunCacheStats reports the execution cache's counters: repeated
	// identical (graph, devices, inputs, rounds, opts) executions are
	// served from cache when every device is fingerprintable.
	RunCacheStats = sim.RunCacheStats
	// SpliceCacheStats reports the splice cache's counters: repeated
	// scenario splices of the same covering run are served from cache.
	SpliceCacheStats = core.SpliceCacheStats
	// SetRunCacheEnabled overrides the FLM_RUNCACHE default (caches on
	// unless FLM_RUNCACHE=off/0/false/no) and returns a restore func.
	SetRunCacheEnabled = runcache.SetEnabled
	// SetRunCacheDir installs the execution cache's on-disk tier at a
	// directory (empty = uninstall), enabling cross-process reuse of
	// memoized runs. Returns a restore func. The library default is no
	// disk tier; the flm CLI installs one per FLM_CACHE_DIR for every
	// command except bench.
	SetRunCacheDir = sim.SetRunCacheDir
	// DisableDiskRunCache removes the disk tier (restore func returned),
	// for cold-run measurement paths like flm bench.
	DisableDiskRunCache = sim.DisableDiskRunCache
	// RunCacheDir reports the installed disk tier's directory, or "".
	RunCacheDir = sim.RunCacheDir
	// SetRunCacheBudget rebounds the execution cache's in-memory byte
	// budget at runtime (negative = unbounded, zero = retain nothing),
	// overriding FLM_CACHE_BUDGET; returns a restore func.
	SetRunCacheBudget = sim.SetRunCacheBudget
	// ParseCacheBudget parses a FLM_CACHE_BUDGET-style value ("64MiB",
	// "unbounded", ...) into a byte count.
	ParseCacheBudget = runcache.ParseBudget
	// DefaultCacheDir resolves the disk tier's directory from the
	// environment: FLM_CACHE_DIR, or the user cache dir, or "" (off).
	DefaultCacheDir = runcache.DefaultDir
)

// ResetRunCaches drops every memoized execution and splice, for tests
// and for relieving memory pressure in very long sweeps.
func ResetRunCaches() {
	sim.ResetRunCache()
	core.ResetSpliceCache()
}

// IsolatedSweep runs n independent trials with full fault isolation: a
// panicking or hanging trial is converted into a *TrialFault for its
// own index while every other trial completes.
func IsolatedSweep[T any](ctx context.Context, n int, o SweepOpts, fn func(int) (T, error)) ([]T, []error) {
	return sweep.Isolated(ctx, n, o, fn)
}

// Chaos harness: seeded randomized attack schedules against the
// protocol panel, with counterexample shrinking.
type (
	// ChaosConfig parameterizes one chaos run.
	ChaosConfig = chaos.Config
	// ChaosReport aggregates a chaos run's findings.
	ChaosReport = chaos.Report
	// ChaosFinding is one violation with everything needed to reproduce it.
	ChaosFinding = chaos.Finding
	// ChaosSchedule is one fully-determined chaos trial.
	ChaosSchedule = chaos.Schedule
	// ChaosGenOpts selects the generator's extended fault families
	// (adversarial delay schedules, initially-dead subsets).
	ChaosGenOpts = chaos.GenOpts
)

var (
	// RunChaos executes a full chaos run (generate, isolate, check, shrink).
	RunChaos = chaos.Run
	// NewChaosSchedule derives trial i deterministically from a seed.
	NewChaosSchedule = chaos.NewSchedule
	// NewChaosScheduleWith derives trial i with extended fault families;
	// the zero ChaosGenOpts is byte-identical to NewChaosSchedule.
	NewChaosScheduleWith = chaos.NewScheduleWith
	// RunChaosSchedule executes one schedule and checks its conditions.
	RunChaosSchedule = chaos.RunSchedule
	// ShrinkChaosSchedule minimizes a violating schedule.
	ShrinkChaosSchedule = chaos.Shrink
)

// ChaosDefaultTimeout is the default per-trial wall budget.
const ChaosDefaultTimeout = chaos.DefaultTimeout

// Byzantine fault strategies for attacking protocols.
var (
	// Silent returns a device that never sends (omission failure).
	Silent = adversary.Silent
	// Crash makes a device fail-stop at the given round.
	Crash = adversary.Crash
	// Omission drops messages to the listed neighbors.
	Omission = adversary.Omission
	// Equivocate builds a two-faced device from honest brains.
	Equivocate = adversary.Equivocate
	// Noise babbles seeded pseudo-random payloads.
	Noise = adversary.Noise
	// InitiallyDead returns a device that never takes a step — the
	// weakest fault family (FLP Section 4).
	InitiallyDead = adversary.InitiallyDead
	// AttackPanel is the standard suite of fault strategies.
	AttackPanel = adversary.Panel
)

// Strategy couples a named way to corrupt an honest builder.
type Strategy = adversary.Strategy

// Byzantine agreement protocols and baselines.
var (
	// NewEIG returns exponential-information-gathering devices
	// (optimal resilience: n >= 3f+1, f+1 rounds).
	NewEIG = byzantine.NewEIG
	// EIGRounds is the simulator rounds an EIG run needs.
	EIGRounds = byzantine.EIGRounds
	// NewPhaseKing returns Berman-Garay phase-king devices (n >= 4f+1).
	NewPhaseKing = byzantine.NewPhaseKing
	// PhaseKingRounds is the simulator rounds a phase-king run needs.
	PhaseKingRounds = byzantine.PhaseKingRounds
	// NewMajority is the natural (and doomed on inadequate graphs)
	// majority-voting device.
	NewMajority = byzantine.NewMajority
	// NewTurpinCoan returns multivalued agreement devices (arbitrary
	// string values, n >= 3f+1) via the Turpin-Coan reduction.
	NewTurpinCoan = byzantine.NewTurpinCoan
	// TurpinCoanRounds is the simulator rounds a Turpin-Coan run needs.
	TurpinCoanRounds = byzantine.TurpinCoanRounds
	// CheckByzantineAgreement evaluates the BA conditions on a run.
	CheckByzantineAgreement = byzantine.CheckBA
)

// ByzantineTrial is one agreement execution configuration.
type ByzantineTrial = byzantine.Trial

// ByzantineReport holds the evaluated BA conditions.
type ByzantineReport = byzantine.Report

// Approximate agreement.
var (
	// NewDLPSW returns iterated approximate agreement devices.
	NewDLPSW = approx.NewDLPSW
	// NewMedian returns single-shot median devices.
	NewMedian = approx.NewMedian
	// ApproxRoundsFor returns rounds needed to shrink delta to eps.
	ApproxRoundsFor = approx.RoundsFor
	// CheckSimpleApprox evaluates the simple approximate conditions.
	CheckSimpleApprox = approx.CheckSimple
	// CheckEDG evaluates the (ε,δ,γ)-agreement conditions.
	CheckEDG = approx.CheckEDG
)

// Weak agreement and firing squad.
var (
	// NewWeakViaBA solves weak agreement through full BA.
	NewWeakViaBA = weak.NewViaBA
	// NewDetectDefault is the detect-anomaly-then-default weak device.
	NewDetectDefault = weak.NewDetectDefault
	// CheckWeakAgreement evaluates the weak agreement conditions.
	CheckWeakAgreement = weak.Check
	// NewFiringSquad solves the firing squad via stimulus broadcast + BA.
	NewFiringSquad = firingsquad.NewViaBA
	// FiringSquadRounds is the simulator rounds a firing-squad run needs.
	FiringSquadRounds = firingsquad.Rounds
	// CheckFiringSquad evaluates the firing squad conditions.
	CheckFiringSquad = firingsquad.Check
)

// Fired is the FIRE decision value.
const Fired = firingsquad.Fired

// Initially-dead consensus (the FLP Section 4 possibility baseline):
// with at most t nodes dead from the start and n > 2t, consensus is
// solvable even under adversarial message delays — the contrast that
// locates the paper's Byzantine bounds.
type (
	// InitdeadReport holds the evaluated initially-dead consensus
	// conditions for a run's live nodes.
	InitdeadReport = initdead.Report
)

var (
	// NewInitdead returns FLP Section 4 initially-dead consensus devices
	// tolerating t initially-dead nodes on K_n with n > 2t.
	NewInitdead = initdead.New
	// InitdeadRounds is the simulator rounds a run needs when message
	// delays are bounded by D extra rounds.
	InitdeadRounds = initdead.Rounds
	// CheckInitdead evaluates termination, agreement, and strong
	// validity over a run's live nodes.
	CheckInitdead = initdead.Check
	// InitdeadPartitionDelays is the n <= 2t impossibility witness: a
	// delay schedule that splits the nodes into two groups that decide
	// independently.
	InitdeadPartitionDelays = initdead.PartitionDelays
)

// Signed agreement (the Fault-axiom ablation).
type (
	// SigRegistry models an unforgeable per-execution signature scheme.
	SigRegistry = signed.Registry
)

var (
	// NewSigRegistry returns a fresh signature registry for one execution.
	NewSigRegistry = signed.NewRegistry
	// NewDolevStrong returns signed Byzantine agreement devices
	// (n >= 2f+1 — signatures beat the 3f+1 bound by breaking the Fault
	// axiom, exactly as the paper notes).
	NewDolevStrong = signed.NewDolevStrong
	// DolevStrongRounds is the simulator rounds a signed run needs.
	DolevStrongRounds = signed.Rounds
)

// Zero-delay weak consensus (footnote 4's Bounded-Delay ablation).
type (
	// ZDMessage is one scripted zero-delay transmission.
	ZDMessage = weak.ZDMessage
	// ZDStrategy scripts a faulty node in the zero-delay model.
	ZDStrategy = weak.ZDStrategy
	// ZDResult is the outcome of a zero-delay run.
	ZDResult = weak.ZDResult
)

var (
	// ZeroDelayRun executes footnote 4's algorithm.
	ZeroDelayRun = weak.ZeroDelayRun
	// CheckZeroDelay evaluates weak agreement on its result.
	CheckZeroDelay = weak.CheckZD
)

// Dolev routing for sparse graphs.
var (
	// NewRouter computes 2f+1 vertex-disjoint paths for every node pair.
	NewRouter = dolev.NewRouter
	// Overlay runs a complete-graph device over Dolev routing.
	Overlay = dolev.Overlay
)

// Router is a Dolev disjoint-path routing table.
type Router = dolev.Router

// The impossibility engine (the paper's contribution).
type (
	// ChainResult is a mechanized contradiction chain.
	ChainResult = core.ChainResult
	// Violation is one broken condition in one constructed behavior.
	Violation = core.Violation
	// EDGParams are (ε,δ,γ)-agreement parameters.
	EDGParams = core.EDGParams
)

var (
	// ProveByzantineNodes mechanizes Theorem 1's 3f+1 node bound.
	ProveByzantineNodes = core.ByzantineNodes
	// ProveByzantineTriangle is the f=1 hexagon argument.
	ProveByzantineTriangle = core.ByzantineTriangle
	// ProveByzantineConnectivity mechanizes the 2f+1 connectivity bound.
	ProveByzantineConnectivity = core.ByzantineConnectivity
	// ProveByzantineDiamond is the f=1 diamond argument.
	ProveByzantineDiamond = core.ByzantineDiamond
	// ProveWeakAgreement mechanizes Theorem 2 on the 4k-ring.
	ProveWeakAgreement = core.WeakAgreementRing
	// ProveWeakAgreementConnectivity mechanizes Theorem 2's connectivity
	// half on the ring-of-copies covering.
	ProveWeakAgreementConnectivity = core.WeakAgreementCutRing
	// ProveWeakAgreementNodes mechanizes Theorem 2's general node bound
	// (n <= 3f) on the ring-of-blocks covering.
	ProveWeakAgreementNodes = core.WeakAgreementNodesRing
	// ProveFiringSquadNodes mechanizes Theorem 4's general node bound.
	ProveFiringSquadNodes = core.FiringSquadNodesRing
	// ProveFiringSquad mechanizes Theorem 4 on the 4k-ring.
	ProveFiringSquad = core.FiringSquadRing
	// ProveFiringSquadConnectivity mechanizes Theorem 4's connectivity half.
	ProveFiringSquadConnectivity = core.FiringSquadCutRing
	// ProveSimpleApprox mechanizes Theorem 5.
	ProveSimpleApprox = core.SimpleApproxTriangle
	// ProveSimpleApproxConnectivity mechanizes Theorem 5's connectivity half.
	ProveSimpleApproxConnectivity = core.SimpleApproxConnectivity
	// ProveEpsilonDeltaGamma mechanizes Theorem 6.
	ProveEpsilonDeltaGamma = core.EpsilonDeltaGamma
	// ProveEpsilonDeltaGammaNodes mechanizes Theorem 6's general node bound.
	ProveEpsilonDeltaGammaNodes = core.EpsilonDeltaGammaNodes
	// ProveEpsilonDeltaGammaConnectivity mechanizes Theorem 6's
	// connectivity bound.
	ProveEpsilonDeltaGammaConnectivity = core.EpsilonDeltaGammaConnectivity
	// InstallCover installs devices on a covering graph.
	InstallCover = core.InstallCover
	// SpliceScenario splices a covering scenario into a behavior of G.
	SpliceScenario = core.SpliceScenario
)

// Clock synchronization (Section 7).
type (
	// SyncParams describes a nontrivial-synchronization claim.
	SyncParams = clocksync.Params
	// SyncResult is a mechanized Theorem 8 outcome.
	SyncResult = clocksync.Result
	// SyncBuilder constructs clock synchronization devices.
	SyncBuilder = clocksync.Builder
	// ClockFn is an increasing invertible function of time.
	ClockFn = clockfn.Fn
	// LinearClock is the affine time function rate*t + off.
	LinearClock = clockfn.Linear
	// RatClock is an exact rational affine hardware clock.
	RatClock = clockfn.RatLinear
)

var (
	// NewTrivialClock runs the logical clock at the lower envelope —
	// provably optimal on inadequate graphs.
	NewTrivialClock = clocksync.NewTrivialLower
	// NewChaseClock synchronizes with the fastest neighbor.
	NewChaseClock = clocksync.NewChaseMax
	// NewMidpointClock averages neighbor readings.
	NewMidpointClock = clocksync.NewMidpoint
	// NewTrimmedMidpointClock is the fault-tolerant averaging device that
	// beats the trivial gap on adequate graphs.
	NewTrimmedMidpointClock = clocksync.NewTrimmedMidpoint
	// MeasureAdequateSync samples synchronization quality on adequate
	// graphs (the side Theorem 8 does not cover).
	MeasureAdequateSync = clocksync.MeasureAdequateSync
	// ClockLiarScript fabricates inconsistent clock readings for a
	// scripted Byzantine node.
	ClockLiarScript = clocksync.ClockLiarScript
	// ProveClockSync mechanizes Theorem 8 on the scaled ring covering.
	ProveClockSync = clocksync.Theorem8
	// ProveClockSyncNodes mechanizes Theorem 8's general node bound.
	ProveClockSyncNodes = clocksync.Theorem8Nodes
	// ProveClockSyncConnectivity mechanizes Theorem 8's connectivity bound.
	ProveClockSyncConnectivity = clocksync.Theorem8Connectivity
	// Corollary12 through Corollary15 instantiate the Section 7.1 bounds.
	Corollary12 = clocksync.Corollary12
	Corollary13 = clocksync.Corollary13
	Corollary14 = clocksync.Corollary14
	Corollary15 = clocksync.Corollary15
	// NewRatClock builds an exact rational affine clock.
	NewRatClock = clockfn.NewRatLinear
	// RatIdentity is the exact identity clock.
	RatIdentity = clockfn.RatIdentity
)

// Experiment is one registered paper experiment.
type Experiment = eval.Experiment

// ExperimentResult is the structured outcome of one experiment.
type ExperimentResult = eval.Result

// Experiments returns the full experiment registry (E1-E20), one per
// theorem, corollary group, or tightness demonstration.
func Experiments() []Experiment { return eval.Registry() }

// FindExperiment returns the experiment with the given ID.
func FindExperiment(id string) (Experiment, bool) { return eval.Find(id) }
