// Package chaos (the fixture, not the real one) exercises
// flmdeterminism: the import path is in deterministicPkgs, so wall
// clock, global rand, and output-reaching map order are all findings
// here.
package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"flm/internal/obs"
)

func wallClock() {
	start := time.Now()   // want `time\.Now in deterministic package flm/internal/chaos`
	_ = time.Since(start) // want `time\.Since in deterministic package`
}

func guardedWallClock(ctx interface{}) {
	if obs.Enabled() {
		_ = time.Now() // dominated by the tracing guard: ok
	}
	traced := obs.Enabled()
	if traced {
		_ = time.Now() // bool derived from obs.Enabled(): ok
	}
	if !traced {
		return
	}
	_ = time.Now() // after the early return only the traced path remains: ok
}

func globalRand() int {
	r := rand.New(rand.NewSource(1)) // seeded constructor: ok
	_ = r.Intn(10)
	return rand.Intn(10) // want `global rand\.Intn in deterministic package`
}

func emitInMapOrder(m map[string]int, b *strings.Builder) {
	for k := range m {
		fmt.Fprintf(os.Stdout, "%s\n", k) // want `fmt\.Fprintf inside map iteration`
		b.WriteString(k)                  // want `Builder\.WriteString inside map iteration`
	}
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted below: ok
	}
	sort.Strings(keys)
	return keys
}

func accumulateUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside map iteration with no sort`
	}
	return keys
}

func freshSlicePerKey(m map[string][]string) map[string][]string {
	out := make(map[string][]string, len(m))
	for k, v := range m {
		out[k] = append([]string(nil), v...) // fresh slice per key, no accumulation: ok
	}
	return out
}

func sortedSubslice(m map[string]int, events []string, processed int) []string {
	for k := range m {
		events = append(events, k) // sorted below through the re-slice: ok
	}
	sort.SliceStable(events[processed:], func(i, j int) bool {
		return events[processed+i] < events[processed+j]
	})
	return events
}

func nestedClosureScope(m map[string]int) []string {
	// The closure is its own scope: its sort must not sanction the outer
	// append, and the outer function's sorts must not sanction its.
	var outer []string
	inner := func() []string {
		var keys []string
		for k := range m {
			keys = append(keys, k) // sorted inside the closure: ok
		}
		sort.Strings(keys)
		return keys
	}
	for k := range m {
		outer = append(outer, k) // want `append to "outer" inside map iteration`
	}
	_ = inner
	return outer
}
