package sweep

import (
	"context"
	"runtime/pprof"
	"strconv"
	"time"

	"flm/internal/obs"
)

// Observability for the sweep pool. Both engines (Map and Isolated)
// branch on obs.Enabled() once per sweep; the untraced paths run the
// exact pre-instrumentation code. Per-worker spans record task counts,
// busy time, and (for Isolated) fault counts; per-trial durations feed
// a shared histogram, and utilization falls out of busy time over span
// wall time in `flm stats`.
var (
	mSweeps      = obs.NewCounter("sweep.sweeps")
	mSweepTrials = obs.NewCounter("sweep.trials")
	mTrialFaults = obs.NewCounter("sweep.trial.faults")
	hTrialDur    = obs.NewHistogram("sweep.trial.dur_us")
)

// workerObs accumulates one worker's contribution to a traced sweep.
// Methods are called by the owning worker goroutine only.
type workerObs struct {
	worker int
	trials int
	faults int
	busy   time.Duration
}

// begin marks one trial claimed (live progress) and returns its start
// instant for record.
//
//flmlint:allow flmdeterminism wall clock feeds span timing and progress only, never a result
//flmlint:allow flmobscost called only on the traced path, where wo is non-nil
func (wo *workerObs) begin() time.Time {
	obs.ProgressTrialStart()
	return time.Now()
}

// record books one finished trial.
//
//flmlint:allow flmobscost called only on the traced path, where wo is non-nil
func (wo *workerObs) record(d time.Duration) {
	wo.trials++
	wo.busy += d
	mSweepTrials.Inc()
	hTrialDur.Observe(uint64(d / time.Microsecond))
	obs.ProgressTrialDone(wo.worker, d)
}

// fault books one failed trial.
//
//flmlint:allow flmobscost called only on the traced path, where wo is non-nil
func (wo *workerObs) fault() {
	wo.faults++
	mTrialFaults.Inc()
	obs.ProgressTrialFault(wo.worker)
}

// finish closes the worker's span with its aggregate attributes. The
// idle time (span wall time minus busy time) is the worker's queue wait:
// time spent blocked on claiming work rather than running trials.
//
//flmlint:allow flmobscost called only on the traced path, where wo is non-nil
//flmlint:allow flmdeterminism wall clock feeds span timing only, never a result
func (wo *workerObs) finish(span *obs.Span, started time.Time) {
	idle := time.Since(started) - wo.busy
	if idle < 0 {
		idle = 0
	}
	span.SetAttrs(
		obs.Int("trials", wo.trials),
		obs.Int("faults", wo.faults),
		obs.Int64("busy_us", int64(wo.busy/time.Microsecond)),
		obs.Int64("idle_us", int64(idle/time.Microsecond)))
	span.End()
}

// ctxHasLabels reports whether ctx carries any pprof labels.
func ctxHasLabels(ctx context.Context) bool {
	has := false
	pprof.ForLabels(ctx, func(string, string) bool {
		has = true
		return false
	})
	return has
}

// doLabeled runs f under the context's pprof label set extended with
// this worker's index, so CPU profile samples of a labeled sweep (e.g.
// `flm bench -cpuprofile` tagging each experiment, or `flm chaos`
// tagging the harness) attribute to both the experiment and the worker.
// With an unlabeled context it runs f directly — pprof.Do would replace
// the goroutine's inherited labels (the per-experiment tag a worker
// picks up from its spawner) with an empty set, which is exactly the
// attribution we must not lose.
func doLabeled(ctx context.Context, w int, f func()) {
	if !ctxHasLabels(ctx) {
		f()
		return
	}
	pprof.Do(ctx, pprof.Labels("sweep_worker", strconv.Itoa(w)), func(context.Context) { f() })
}
