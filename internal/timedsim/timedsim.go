// Package timedsim is the continuous-time execution model for the FLM85
// clock synchronization results (Section 7). Nodes carry hardware clocks
// (exact rational affine functions of real time) and act only at hardware
// ticks — real times t with D(t) = kΔ — so every aspect of timing derives
// from hardware clock states. Messages are delivered instantly but are
// consumable only at receiver ticks strictly later than the send time.
//
// Because all scheduling is exact rational arithmetic and all behavior is
// clock-driven, the model satisfies the paper's Scaling axiom exactly:
// composing every hardware clock with an increasing affine h reparametrizes
// all event times by h⁻¹ and changes no tick's observable state. The
// Locality and Fault axioms hold as in the synchronous model: state
// updates depend only on local inbox contents, and scripted senders can
// replay any recorded edge behavior.
package timedsim

import (
	"fmt"
	"math/big"
	"sort"

	"flm/internal/clockfn"
	"flm/internal/graph"
)

// Message is a delivered payload with its exact send time. SentAt may be
// shared between every message of one send event and the corresponding
// records of the Run; it must be treated as immutable.
type Message struct {
	From    string
	Payload string
	SentAt  *big.Rat
}

// Send is an outgoing payload addressed to a neighbor.
type Send struct {
	To      string
	Payload string
}

// Device is a clock-synchronization device: it acts at hardware ticks and
// exposes a logical clock that is a function of its state and the current
// hardware reading.
type Device interface {
	Init(self string, neighbors []string)
	// Tick is invoked at the device's k-th hardware tick with the exact
	// hardware reading and the messages that became consumable since the
	// previous tick (sorted by send time, then sender). The inbox slice
	// is owned by the executor and reused between ticks: devices must
	// read what they need during Tick and must not retain the slice.
	// Symmetrically, the returned Send slice is owned by the device and
	// may be a buffer it reuses on the next Tick; the executor consumes
	// it before ticking the device again.
	Tick(k int, hw *big.Rat, inbox []Message) []Send
	// Logical returns the logical clock value for a given hardware
	// reading, using the device's current correction state.
	Logical(hw *big.Rat) float64
	// Snapshot canonically encodes the device state.
	Snapshot() string
}

// ScriptedSend is one replayed transmission of a faulty node.
type ScriptedSend struct {
	At      *big.Rat
	To      string
	Payload string
}

// Node configures one node: either a Device (correct) or a Script
// (faulty replay, the Fault axiom device for the timed model). Every node
// has a hardware clock.
type Node struct {
	Device Device
	Script []ScriptedSend
	Clock  clockfn.RatLinear
}

// System is a communication graph with timed nodes and a tick spacing
// Delta (in hardware-clock units). RealDelay, when non-nil and positive,
// imposes a minimum REAL-TIME transmission delay on every message. The
// paper's Scaling axiom then fails — real-time delays do not scale with
// the hardware clocks — which is exactly the weakening FLM85 names as
// making clock synchronization potentially possible on inadequate
// graphs; TestScalingAxiomBrokenByRealDelay demonstrates the failure.
type System struct {
	G         *graph.Graph
	Nodes     []Node
	Delta     *big.Rat
	RealDelay *big.Rat
}

// TickRecord is one observed tick of one node.
type TickRecord struct {
	Index    int
	Time     *big.Rat // real time
	HW       *big.Rat // hardware reading (= Index * Delta)
	Snapshot string
	Logical  float64
}

// SendRecord is one observed transmission on a directed edge.
type SendRecord struct {
	At      *big.Rat
	Payload string
}

// Run is a recorded timed system behavior. Its rationals live in a
// per-execution arena and may be aliased between records of the same
// event (a tick's Time is the SentAt of every message it sent); they
// must be treated as immutable.
type Run struct {
	G            *graph.Graph
	Until        *big.Rat
	Ticks        [][]TickRecord
	Sends        map[graph.Edge][]SendRecord
	FinalLogical []float64  // logical clocks evaluated at time Until
	FinalHW      []*big.Rat // hardware readings at time Until
}

// tickSched is one device node's tick schedule as an exact integer
// fraction: with tick spacing Δ = dn/dd and hardware clock
// (rn/rd)·t + (on/od), tick k happens at real time
// (k·dn·od·rd − on·dd·rd) / (dd·od·rn). The denominator is positive and
// fixed, so advancing to the next tick is a single in-place big.Int add
// and the event scan compares fractions without allocating.
type tickSched struct {
	num, den, step big.Int
}

// Execute runs the system from real time 0 through real time until
// (inclusive) and records the behavior.
func Execute(sys *System, until *big.Rat) (*Run, error) {
	g := sys.G
	if len(sys.Nodes) != g.N() {
		return nil, fmt.Errorf("timedsim: %d nodes configured for %d-node graph", len(sys.Nodes), g.N())
	}
	if sys.Delta == nil || sys.Delta.Sign() <= 0 {
		return nil, fmt.Errorf("timedsim: tick spacing must be positive")
	}
	run := &Run{
		G:            g,
		Until:        new(big.Rat).Set(until),
		Ticks:        make([][]TickRecord, g.N()),
		Sends:        make(map[graph.Edge][]SendRecord),
		FinalLogical: make([]float64, g.N()),
		FinalHW:      make([]*big.Rat, g.N()),
	}
	var (
		scr   clockfn.RatScratch
		arena ratArena
	)
	// Local copies of the shared parameters before any denominator is
	// read: accessing a big.Rat's denominator materializes it in place,
	// and the caller's Delta/clock rationals may be shared with systems
	// executing concurrently (a prepared grid sweep).
	delta := new(big.Rat).Set(sys.Delta)
	dn, dd := delta.Num(), delta.Denom()
	untilN, untilD := run.Until.Num(), run.Until.Denom()

	pending := make([][]Message, g.N())
	sched := make([]tickSched, g.N())
	nextTick := make([]int64, g.N()) // next tick index for device nodes; -1 for scripts
	scriptPos := make([]int, g.N())
	var inboxBuf []Message
	for u := 0; u < g.N(); u++ {
		node := sys.Nodes[u]
		if node.Clock.Rate == nil || node.Clock.Rate.Sign() <= 0 {
			return nil, fmt.Errorf("timedsim: node %s lacks an increasing hardware clock", g.Name(u))
		}
		if node.Device != nil {
			node.Device.Init(g.Name(u), neighborNames(g, u))
			// Devices begin at hardware clock 0: tick k happens when the
			// hardware reads k*Delta, wherever that falls in (possibly
			// negative) real time. Anchoring to hardware rather than
			// real time is what makes the Scaling axiom hold exactly —
			// real time is unobservable in this model.
			nextTick[u] = 0
			var rate, off big.Rat
			rate.Set(node.Clock.Rate)
			off.Set(node.Clock.Off)
			rn, rd := rate.Num(), rate.Denom()
			on, od := off.Num(), off.Denom()
			s := &sched[u]
			s.den.Mul(dd, od)
			s.den.Mul(&s.den, rn)
			s.step.Mul(dn, od)
			s.step.Mul(&s.step, rd)
			s.num.Mul(on, dd)
			s.num.Mul(&s.num, rd)
			s.num.Neg(&s.num)
		} else {
			nextTick[u] = -1
			// Scripts must be sorted by time for deterministic replay.
			script := node.Script
			for i := 1; i < len(script); i++ {
				if scr.Cmp(script[i].At, script[i-1].At) < 0 {
					return nil, fmt.Errorf("timedsim: script for node %s not sorted by time", g.Name(u))
				}
			}
		}
	}

	var lim *big.Rat // scratch for the real-delay consumability cutoff
	if sys.RealDelay != nil && sys.RealDelay.Sign() > 0 {
		lim = new(big.Rat)
	}
	for {
		// Find the earliest event: a device tick or a scripted send. The
		// best candidate is tracked as a fraction bestN/bestD (bestD > 0)
		// pointing into a schedule or a script time, so the whole scan is
		// scratch comparisons.
		bestNode, bestIsTick := -1, false
		var bestN, bestD *big.Int
		for u := 0; u < g.N(); u++ {
			node := &sys.Nodes[u]
			if node.Device != nil {
				s := &sched[u]
				if scr.CmpFrac(&s.num, &s.den, untilN, untilD) > 0 {
					continue
				}
				if bestNode < 0 || scr.CmpFrac(&s.num, &s.den, bestN, bestD) < 0 {
					bestN, bestD, bestNode, bestIsTick = &s.num, &s.den, u, true
				}
			} else if scriptPos[u] < len(node.Script) {
				t := node.Script[scriptPos[u]].At
				if scr.CmpFracRat(untilN, untilD, t) < 0 {
					continue
				}
				if bestNode < 0 || scr.CmpFrac(t.Num(), t.Denom(), bestN, bestD) < 0 {
					bestN, bestD, bestNode, bestIsTick = t.Num(), t.Denom(), u, false
				}
			}
		}
		if bestNode < 0 {
			break
		}
		u := bestNode
		node := sys.Nodes[u]
		if bestIsTick {
			k := nextTick[u]
			s := &sched[u]
			hw := arena.next()
			hw.SetInt64(k)
			hw.Mul(hw, delta)
			now := arena.next().SetFrac(&s.num, &s.den)
			// Split the consumable messages off pending[u] in place and
			// sort them into the reused inbox buffer. Pending append
			// order is non-decreasing in send time, so the stable
			// insertion sort is near-linear and byte-identical to the
			// specified (send time, sender, payload) stable order.
			cutN, cutD := now.Num(), now.Denom()
			if lim != nil {
				lim.Sub(now, sys.RealDelay)
				cutN, cutD = lim.Num(), lim.Denom()
			}
			inbox := inboxBuf[:0]
			rest := pending[u][:0]
			for _, m := range pending[u] {
				if scr.CmpFracRat(cutN, cutD, m.SentAt) > 0 {
					inbox = append(inbox, m)
				} else {
					rest = append(rest, m)
				}
			}
			pending[u] = rest
			for i := 1; i < len(inbox); i++ {
				for j := i; j > 0 && msgLess(&scr, &inbox[j], &inbox[j-1]); j-- {
					inbox[j], inbox[j-1] = inbox[j-1], inbox[j]
				}
			}
			inboxBuf = inbox[:0]
			sends := node.Device.Tick(int(k), hw, inbox)
			for _, snd := range sends {
				v, ok := g.Index(snd.To)
				if !ok || !g.HasEdge(u, v) {
					return nil, fmt.Errorf("timedsim: node %s sent to non-neighbor %q", g.Name(u), snd.To)
				}
				pending[v] = append(pending[v], Message{From: g.Name(u), Payload: snd.Payload, SentAt: now})
				e := graph.Edge{From: g.Name(u), To: snd.To}
				run.Sends[e] = append(run.Sends[e], SendRecord{At: now, Payload: snd.Payload})
			}
			run.Ticks[u] = append(run.Ticks[u], TickRecord{
				Index:    int(k),
				Time:     now,
				HW:       hw,
				Snapshot: node.Device.Snapshot(),
				Logical:  node.Device.Logical(hw),
			})
			nextTick[u] = k + 1
			s.num.Add(&s.num, &s.step)
		} else {
			sc := node.Script[scriptPos[u]]
			scriptPos[u]++
			v, ok := g.Index(sc.To)
			if !ok || !g.HasEdge(u, v) {
				return nil, fmt.Errorf("timedsim: script for %s sends to non-neighbor %q", g.Name(u), sc.To)
			}
			at := arena.next().Set(sc.At)
			pending[v] = append(pending[v], Message{From: g.Name(u), Payload: sc.Payload, SentAt: at})
			e := graph.Edge{From: g.Name(u), To: sc.To}
			run.Sends[e] = append(run.Sends[e], SendRecord{At: at, Payload: sc.Payload})
		}
	}

	for u := 0; u < g.N(); u++ {
		node := sys.Nodes[u]
		run.FinalHW[u] = node.Clock.At(until)
		if node.Device != nil {
			run.FinalLogical[u] = node.Device.Logical(run.FinalHW[u])
		}
	}
	return run, nil
}

// msgLess is the deterministic inbox order: send time, then sender, then
// payload.
func msgLess(scr *clockfn.RatScratch, a, b *Message) bool {
	if c := scr.Cmp(a.SentAt, b.SentAt); c != 0 {
		return c < 0
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.Payload < b.Payload
}

func neighborNames(g *graph.Graph, u int) []string {
	nbs := g.Neighbors(u)
	names := make([]string, len(nbs))
	for i, v := range nbs {
		names[i] = g.Name(v)
	}
	sort.Strings(names)
	return names
}

// TicksOf returns the tick records of the named node.
func (r *Run) TicksOf(name string) ([]TickRecord, error) {
	u, ok := r.G.Index(name)
	if !ok {
		return nil, fmt.Errorf("timedsim: run has no node %q", name)
	}
	return r.Ticks[u], nil
}

// LogicalOf returns the named node's logical clock value at time Until.
func (r *Run) LogicalOf(name string) (float64, error) {
	u, ok := r.G.Index(name)
	if !ok {
		return 0, fmt.Errorf("timedsim: run has no node %q", name)
	}
	return r.FinalLogical[u], nil
}

// renamedDevice adapts a device built for a node of G to run at a node of
// a covering graph S, translating neighbor names both ways (the timed
// counterpart of the synchronous renamer). The translation buffers are
// reused between ticks under the Device ownership contract.
type renamedDevice struct {
	inner  Device
	toG    map[string]string
	toS    map[string]string
	gInbox []Message
	out    []Send
}

var _ Device = (*renamedDevice)(nil)

// Renamed wraps a device with an S-name/G-name translation.
func Renamed(inner Device, toG, toS map[string]string) Device {
	return &renamedDevice{inner: inner, toG: toG, toS: toS}
}

func (d *renamedDevice) Init(self string, neighbors []string) {
	// Inner device is initialized by the caller with its G-identity.
}

func (d *renamedDevice) Tick(k int, hw *big.Rat, inbox []Message) []Send {
	gInbox := d.gInbox[:0]
	for _, m := range inbox {
		if gFrom, ok := d.toG[m.From]; ok {
			gInbox = append(gInbox, Message{From: gFrom, Payload: m.Payload, SentAt: m.SentAt})
		}
	}
	d.gInbox = gInbox
	sends := d.inner.Tick(k, hw, gInbox)
	out := d.out[:0]
	for _, s := range sends {
		if sTo, ok := d.toS[s.To]; ok {
			out = append(out, Send{To: sTo, Payload: s.Payload})
		}
	}
	d.out = out
	return out
}

func (d *renamedDevice) Logical(hw *big.Rat) float64 { return d.inner.Logical(hw) }
func (d *renamedDevice) Snapshot() string            { return d.inner.Snapshot() }
