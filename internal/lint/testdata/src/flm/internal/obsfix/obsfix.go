// Package obsfix exercises flmobscost: attr construction for the obs
// layer must be dominated by an obs.Enabled()/nil-handle guard.
package obsfix

import (
	"context"
	"fmt"

	"flm/internal/obs"
)

// workerObs models the per-call observability bundle convention: a
// pointer to a type named *Obs is only non-nil when tracing is on.
type workerObs struct{ trials int }

func unguarded(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "x", obs.Int("n", 1)) // want `obs\.StartSpan builds 1 attr\(s\) outside an obs\.Enabled\(\) guard`
	sp.SetAttrs(obs.Int("m", 2))                      // want `Span\.SetAttrs builds 1 attr\(s\) outside`
	obs.Event(ctx, "y", obs.Str("k", "v"))            // want `obs\.Event builds 1 attr\(s\) outside`
	obs.Event(ctx, fmt.Sprintf("name-%d", 1))         // want `obs\.Event computes its name outside`
	sp.End()
}

func zeroAttrLiteralName(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "cheap") // no attrs, literal name: the callee's own check suffices
	obs.Event(ctx, "cheap")
	sp.End()
}

func guardedLexically(ctx context.Context) {
	if obs.Enabled() {
		_, sp := obs.StartSpan(ctx, "x", obs.Int("n", 1))
		sp.SetAttrs(obs.Str("k", "v"))
		sp.End()
	}
}

func guardedByBool(ctx context.Context) {
	traced := obs.Enabled()
	if traced {
		obs.Event(ctx, "e", obs.Int("n", 1))
	}
	if !traced {
		return
	}
	obs.Event(ctx, "tail", obs.Int("n", 2)) // everything after the early return is traced
}

func guardedByNilSpan(ctx context.Context, sp *obs.Span) {
	if sp != nil {
		sp.SetAttrs(obs.Int("n", 1))
	}
	if sp == nil {
		return
	}
	sp.SetAttrs(obs.Int("n", 2))
}

func guardedByObsBundle(ctx context.Context, wo *workerObs) {
	if wo == nil {
		return
	}
	obs.Event(ctx, "bundle", obs.Int("trials", wo.trials)) // *workerObs nil check is a guard by convention
}

func guardedClosure(ctx context.Context) {
	if obs.Enabled() {
		emit := func() {
			obs.Event(ctx, "inner", obs.Int("n", 1)) // closure built inside the guard inherits it
		}
		emit()
	}
}

// annotatedHelper declares the only-called-when-traced contract the
// analyzer cannot see across functions.
//
//flmlint:allow flmobscost fixture: every call site checks obs.Enabled() first
func annotatedHelper(ctx context.Context) {
	obs.Event(ctx, "helper", obs.Int("n", 1))
}

func unguardedProgress() {
	obs.SetProgressPhase("E1")       // want `obs\.SetProgressPhase mutates live-progress state \(mutex \+ worker map\) outside an obs\.Enabled\(\) guard`
	t := obs.ProgressSweepStart(10)  // want `obs\.ProgressSweepStart mutates live-progress state`
	obs.ProgressTrialStart()         // want `obs\.ProgressTrialStart mutates live-progress state`
	obs.ProgressTrialDone(0, 40)     // want `obs\.ProgressTrialDone mutates live-progress state`
	obs.ProgressTrialFault(0)        // want `obs\.ProgressTrialFault mutates live-progress state`
	obs.ResetProgress()              // session setup, not a hot path: never flagged
	t.Finish()
}

func guardedProgress() {
	if !obs.Enabled() {
		return
	}
	obs.SetProgressPhase("E1")
	t := obs.ProgressSweepStart(10)
	defer t.Finish()
	obs.ProgressTrialStart()
	obs.ProgressTrialDone(0, 40)
	obs.ProgressTrialFault(0)
}

func guardedProgressByBundle(wo *workerObs) {
	if wo != nil {
		obs.ProgressTrialDone(0, int64(wo.trials))
	}
}

// progressHelper models sweep's workerObs methods: called only from the
// traced path, declared rather than visible to the analyzer.
//
//flmlint:allow flmobscost fixture: reached only when a sweep span is open
func progressHelper() {
	obs.ProgressTrialStart()
}
