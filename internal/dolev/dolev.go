// Package dolev implements reliable point-to-point communication over
// incomplete graphs in the presence of Byzantine nodes, following Dolev's
// "The Byzantine Generals Strike Again": a message from u to v is sent
// along 2f+1 vertex-disjoint paths, so at most f copies pass through
// faulty relays and the majority of path copies is authentic. An overlay
// adapter runs any complete-graph agreement device (EIG, phase king, ...)
// on top, which is how the 2f+1 connectivity bound of FLM85 is matched
// from above.
package dolev

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"flm/internal/graph"
	"flm/internal/sim"
)

// Router holds the vertex-disjoint path tables for a graph and fault
// bound. It is immutable after construction and shared by all overlay
// devices.
type Router struct {
	g       *graph.Graph
	f       int
	paths   map[[2]int][][]int
	maxHops int
}

// NewRouter computes 2f+1 vertex-disjoint paths for every ordered pair of
// nodes. It fails if the graph's connectivity is below 2f+1 (Dolev's
// requirement, and FLM85's lower bound).
func NewRouter(g *graph.Graph, f int) (*Router, error) {
	need := 2*f + 1
	if conn := g.VertexConnectivity(); conn < need {
		return nil, fmt.Errorf("dolev: connectivity %d < 2f+1 = %d", conn, need)
	}
	r := &Router{g: g, f: f, paths: make(map[[2]int][][]int)}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			paths, err := g.VertexDisjointPaths(u, v, need)
			if err != nil {
				return nil, err
			}
			if len(paths) < need {
				return nil, fmt.Errorf("dolev: only %d disjoint paths between %s and %s",
					len(paths), g.Name(u), g.Name(v))
			}
			paths = paths[:need]
			r.paths[[2]int{u, v}] = paths
			reversed := make([][]int, len(paths))
			for i, p := range paths {
				rp := make([]int, len(p))
				for j, x := range p {
					rp[len(p)-1-j] = x
				}
				reversed[i] = rp
			}
			r.paths[[2]int{v, u}] = reversed
			for _, p := range paths {
				if len(p)-1 > r.maxHops {
					r.maxHops = len(p) - 1
				}
			}
		}
	}
	return r, nil
}

// StretchFactor returns P, the number of simulator rounds one overlay
// round occupies (the longest routing path in hops).
func (r *Router) StretchFactor() int { return r.maxHops }

// Path returns the idx-th disjoint path from origin to dest (as node
// indices), or nil if out of range.
func (r *Router) Path(origin, dest, idx int) []int {
	paths := r.paths[[2]int{origin, dest}]
	if idx < 0 || idx >= len(paths) {
		return nil
	}
	return paths[idx]
}

// NumPaths returns the number of disjoint paths used per pair (2f+1).
func (r *Router) NumPaths() int { return 2*r.f + 1 }

// piece is one routed fragment: a copy of an overlay message traveling
// along one path.
type piece struct {
	origin, dest int
	pathIdx      int
	hop          int // position of the current holder on the path
	innerRound   int
	payload      string // hex-encoded inner payload
}

func (p piece) encode(r *Router) string {
	return string(p.appendEncode(nil, r))
}

// appendEncode is the allocation-free form of encode: it appends the wire
// representation ("origin>dest>pathIdx,hop,innerRound,payload") to b. The
// overlay encodes every piece every hop, so this path must not go through
// fmt.
func (p piece) appendEncode(b []byte, r *Router) []byte {
	b = append(b, r.g.Name(p.origin)...)
	b = append(b, '>')
	b = append(b, r.g.Name(p.dest)...)
	b = append(b, '>')
	b = strconv.AppendInt(b, int64(p.pathIdx), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(p.hop), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(p.innerRound), 10)
	b = append(b, ',')
	b = append(b, p.payload...)
	return b
}

// isHex reports whether s is a valid hex string by hex.DecodeString's
// rules, without allocating the decoded bytes just to throw them away.
func isHex(s string) bool {
	if len(s)%2 != 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

func decodePiece(r *Router, s string) (piece, bool) {
	var p piece
	// Wire layout: origin>dest>pathIdx,hop,innerRound,payload. Cut walks
	// the fields without allocating the intermediate slices that
	// strings.Split would.
	head, rest, ok := strings.Cut(s, ",")
	if !ok {
		return p, false
	}
	originName, route, ok := strings.Cut(head, ">")
	if !ok {
		return p, false
	}
	destName, pathIdxS, ok := strings.Cut(route, ">")
	if !ok || strings.IndexByte(pathIdxS, '>') >= 0 {
		return p, false
	}
	hopS, rest2, ok := strings.Cut(rest, ",")
	if !ok {
		return p, false
	}
	innerRoundS, payload, ok := strings.Cut(rest2, ",")
	if !ok {
		return p, false
	}
	origin, ok1 := r.g.Index(originName)
	dest, ok2 := r.g.Index(destName)
	if !ok1 || !ok2 {
		return p, false
	}
	pathIdx, err1 := sim.DecodeInt(pathIdxS)
	hop, err2 := sim.DecodeInt(hopS)
	innerRound, err3 := sim.DecodeInt(innerRoundS)
	if err1 != nil || err2 != nil || err3 != nil {
		return p, false
	}
	if !isHex(payload) {
		return p, false
	}
	p = piece{origin: origin, dest: dest, pathIdx: pathIdx, hop: hop, innerRound: innerRound, payload: payload}
	return p, true
}

// overlayDevice runs an inner complete-graph device over Dolev routing.
type overlayDevice struct {
	router  *Router
	inner   sim.Device
	self    int
	nbs     map[string]bool
	outbox  []piece               // pieces to transmit next round
	arrived map[arrivalKey]string // (origin, innerRound, pathIdx) -> payload (first copy wins)

	// Reusable per-step scratch. The overlay steps every simulator round
	// for every node, so transient maps and slices here would otherwise
	// dominate the sweep allocator profile.
	senders    []string            // sorted inbox senders (ingest)
	innerInbox sim.Inbox           // decoded majority inbox (stepInner)
	tallyVals  []string            // distinct copies seen on the paths (stepInner)
	tallyCnts  []int               // matching counts (stepInner)
	byNeighbor map[string][]string // encoded fragments per next hop (flush)
	encBuf     []byte              // piece wire-encoding buffer (flush)
}

type arrivalKey struct {
	origin, innerRound, pathIdx int
}

var _ sim.Device = (*overlayDevice)(nil)

// Overlay wraps an inner builder so the resulting devices run on the
// router's (possibly sparse) graph. The inner device is built believing
// it sits on the complete graph over all node names; each of its rounds
// occupies StretchFactor() simulator rounds.
func Overlay(router *Router, inner sim.Builder) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		u := router.g.MustIndex(self)
		peers := make([]string, 0, router.g.N()-1)
		for _, name := range router.g.Names() {
			if name != self {
				peers = append(peers, name)
			}
		}
		d := &overlayDevice{
			router:  router,
			inner:   inner(self, peers, input),
			self:    u,
			nbs:     make(map[string]bool, len(neighbors)),
			arrived: make(map[arrivalKey]string),
		}
		for _, nb := range neighbors {
			d.nbs[nb] = true
		}
		return d
	}
}

func (d *overlayDevice) Init(self string, neighbors []string, input sim.Input) {
	// The inner device was built with its complete-graph view.
}

func (d *overlayDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	d.ingest(inbox)
	p := d.router.StretchFactor()
	if round%p == 0 {
		innerRound := round / p
		d.stepInner(innerRound)
	}
	return d.flush()
}

// ingest validates and routes incoming pieces: recording copies addressed
// to us, forwarding the rest one hop.
func (d *overlayDevice) ingest(inbox sim.Inbox) {
	senders := d.senders[:0]
	for s := range inbox {
		senders = append(senders, s)
	}
	sort.Strings(senders)
	d.senders = senders
	for _, from := range senders {
		fromIdx, ok := d.router.g.Index(from)
		if !ok {
			continue
		}
		rest := string(inbox[from])
		for more := true; more; {
			var frag string
			frag, rest, more = strings.Cut(rest, "&")
			pc, ok := decodePiece(d.router, frag)
			if !ok {
				continue
			}
			path := d.router.Path(pc.origin, pc.dest, pc.pathIdx)
			if path == nil || pc.hop <= 0 || pc.hop >= len(path) {
				continue
			}
			// We must be the node at position hop, fed by position hop-1.
			if path[pc.hop] != d.self || path[pc.hop-1] != fromIdx {
				continue
			}
			if pc.hop == len(path)-1 {
				// We are the destination: record the first copy per path.
				key := arrivalKey{origin: pc.origin, innerRound: pc.innerRound, pathIdx: pc.pathIdx}
				if _, dup := d.arrived[key]; !dup {
					d.arrived[key] = pc.payload
				}
				continue
			}
			next := pc
			next.hop++
			d.outbox = append(d.outbox, next)
		}
	}
}

// stepInner decodes the majority inbox for the inner round and launches
// the inner device's new messages along all disjoint paths.
func (d *overlayDevice) stepInner(innerRound int) {
	if d.innerInbox == nil {
		d.innerInbox = sim.Inbox{}
	}
	clear(d.innerInbox)
	innerInbox := d.innerInbox
	if innerRound > 0 {
		for origin := 0; origin < d.router.g.N(); origin++ {
			if origin == d.self {
				continue
			}
			// Tally the ≤ 2f+1 path copies in small parallel slices; a map
			// plus a sorted key slice per origin per round is allocator
			// noise for a population this size. Ties break toward the
			// lexicographically smallest copy, as the sorted-keys scan did.
			vals, cnts := d.tallyVals[:0], d.tallyCnts[:0]
			for idx := 0; idx < d.router.NumPaths(); idx++ {
				key := arrivalKey{origin: origin, innerRound: innerRound - 1, pathIdx: idx}
				if copyVal, ok := d.arrived[key]; ok {
					seen := false
					for i, v := range vals {
						if v == copyVal {
							cnts[i]++
							seen = true
							break
						}
					}
					if !seen {
						vals = append(vals, copyVal)
						cnts = append(cnts, 1)
					}
				}
				delete(d.arrived, key)
			}
			d.tallyVals, d.tallyCnts = vals, cnts
			best, bestN := "", 0
			for i, v := range vals {
				if cnts[i] > bestN || (cnts[i] == bestN && v < best) {
					best, bestN = v, cnts[i]
				}
			}
			// Authentic iff a majority of the 2f+1 paths agree.
			if bestN >= d.router.f+1 {
				decoded, err := hex.DecodeString(best)
				if err == nil && len(decoded) > 0 {
					innerInbox[d.router.g.Name(origin)] = sim.Payload(decoded)
				}
			}
		}
	}
	out := d.inner.Step(innerRound, innerInbox)
	for to, payload := range out {
		dest, ok := d.router.g.Index(to)
		if !ok || payload == sim.None {
			continue
		}
		encoded := hex.EncodeToString([]byte(payload))
		for idx := 0; idx < d.router.NumPaths(); idx++ {
			//flmlint:allow flmdeterminism flush sorts each neighbor's fragments before emission
			d.outbox = append(d.outbox, piece{
				origin: d.self, dest: dest, pathIdx: idx, hop: 1,
				innerRound: innerRound, payload: encoded,
			})
		}
	}
}

// flush groups queued pieces by next-hop neighbor into one payload each.
func (d *overlayDevice) flush() sim.Outbox {
	if d.byNeighbor == nil {
		d.byNeighbor = map[string][]string{}
	}
	byNeighbor := d.byNeighbor
	for _, pc := range d.outbox {
		path := d.router.Path(pc.origin, pc.dest, pc.pathIdx)
		nextNode := d.router.g.Name(path[pc.hop])
		if !d.nbs[nextNode] {
			continue // cannot happen with consistent tables
		}
		d.encBuf = pc.appendEncode(d.encBuf[:0], d.router)
		byNeighbor[nextNode] = append(byNeighbor[nextNode], string(d.encBuf))
	}
	d.outbox = d.outbox[:0]
	out := sim.Outbox{}
	for nb, frags := range byNeighbor {
		if len(frags) == 0 {
			continue // reset key from an earlier flush; nothing queued now
		}
		sort.Strings(frags)
		out[nb] = sim.Payload(strings.Join(frags, "&"))
		byNeighbor[nb] = frags[:0]
	}
	return out
}

func (d *overlayDevice) Snapshot() string {
	keys := make([]arrivalKey, 0, len(d.arrived))
	for k := range d.arrived {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.origin != b.origin {
			return a.origin < b.origin
		}
		if a.innerRound != b.innerRound {
			return a.innerRound < b.innerRound
		}
		return a.pathIdx < b.pathIdx
	})
	var b strings.Builder
	b.WriteString("dolev|")
	b.WriteString(d.inner.Snapshot())
	for _, k := range keys {
		fmt.Fprintf(&b, "|%d.%d.%d=%s", k.origin, k.innerRound, k.pathIdx, d.arrived[k])
	}
	return b.String()
}

func (d *overlayDevice) Output() (sim.Decision, bool) { return d.inner.Output() }

// Rounds converts inner-device rounds to overlay simulator rounds.
func (r *Router) Rounds(innerRounds int) int {
	return innerRounds*r.StretchFactor() + 1
}
