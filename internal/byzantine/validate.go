package byzantine

import (
	"fmt"

	"flm/internal/graph"
	"flm/internal/sim"
)

// Report records which Byzantine agreement correctness conditions a run
// satisfied for a given correct-node set. A nil field means the condition
// holds.
type Report struct {
	Termination error // every correct node decided
	Agreement   error // all correct decisions equal
	Validity    error // unanimous correct input forces that output
}

// OK reports whether every condition holds.
func (r Report) OK() bool { return r.Termination == nil && r.Agreement == nil && r.Validity == nil }

// Err returns the first violated condition, or nil.
func (r Report) Err() error {
	switch {
	case r.Termination != nil:
		return r.Termination
	case r.Agreement != nil:
		return r.Agreement
	case r.Validity != nil:
		return r.Validity
	default:
		return nil
	}
}

// CheckBA evaluates the Byzantine agreement conditions on a run with the
// given correct nodes (every other node is presumed faulty and ignored).
func CheckBA(run *sim.Run, correct []string) Report {
	var rep Report
	decisions := make(map[string]string, len(correct))
	for _, name := range correct {
		d, err := run.DecisionOf(name)
		if err != nil {
			rep.Termination = err
			return rep
		}
		if d.Value == "" {
			rep.Termination = fmt.Errorf("byzantine: correct node %s never decided", name)
			return rep
		}
		decisions[name] = d.Value
	}
	first := correct[0]
	for _, name := range correct[1:] {
		if decisions[name] != decisions[first] {
			rep.Agreement = fmt.Errorf("byzantine: agreement violated: %s chose %s but %s chose %s",
				first, decisions[first], name, decisions[name])
			break
		}
	}
	unanimous := true
	var common sim.Input
	for i, name := range correct {
		u := run.G.MustIndex(name)
		if i == 0 {
			common = run.Inputs[u]
		} else if run.Inputs[u] != common {
			unanimous = false
			break
		}
	}
	if unanimous {
		for _, name := range correct {
			if decisions[name] != string(common) {
				rep.Validity = fmt.Errorf("byzantine: validity violated: unanimous input %s but %s chose %s",
					common, name, decisions[name])
				break
			}
		}
	}
	return rep
}

// Trial describes one agreement execution: a graph, per-node inputs, the
// honest protocol builder, and a set of faulty nodes with their
// strategies.
type Trial struct {
	G      *graph.Graph
	Inputs map[string]sim.Input
	Honest sim.Builder
	Faulty map[string]sim.Builder
	Rounds int
}

// Run executes the trial with full recording and checks the agreement
// conditions over the non-faulty nodes. It returns the run, the
// correct-node list, and the condition report.
func (t Trial) Run() (*sim.Run, []string, Report, error) {
	return t.RunWith(sim.FullRecording)
}

// RunWith executes the trial with explicit recording options. Sweeps that
// only inspect decisions (attack panels, tightness censuses) pass the
// zero ExecuteOpts for the allocation-lean fast path; anything that feeds
// the run into stats, traces, or the axiom machinery needs
// sim.FullRecording.
func (t Trial) RunWith(opts sim.ExecuteOpts) (*sim.Run, []string, Report, error) {
	p := sim.Protocol{
		Builders: make(map[string]sim.Builder, t.G.N()),
		Inputs:   make(map[string]sim.Input, t.G.N()),
	}
	var correct []string
	for _, name := range t.G.Names() {
		input, ok := t.Inputs[name]
		if !ok {
			return nil, nil, Report{}, fmt.Errorf("byzantine: no input for node %s", name)
		}
		p.Inputs[name] = input
		if fb, bad := t.Faulty[name]; bad {
			p.Builders[name] = fb
		} else {
			p.Builders[name] = t.Honest
			correct = append(correct, name)
		}
	}
	sys, err := sim.NewSystem(t.G, p)
	if err != nil {
		return nil, nil, Report{}, err
	}
	run, err := sim.ExecuteWith(sys, t.Rounds, opts)
	if err != nil {
		return nil, nil, Report{}, err
	}
	return run, correct, CheckBA(run, correct), nil
}
