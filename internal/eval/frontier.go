package eval

import (
	"fmt"

	"flm/internal/adversary"
	"flm/internal/byzantine"
	"flm/internal/core"
	"flm/internal/dolev"
	"flm/internal/graph"
	"flm/internal/sim"
	"flm/internal/sweep"
)

// RunE17 sweeps a zoo of graph families across the adequacy frontier for
// f = 1: on every adequate graph a working protocol (EIG, routed through
// Dolev paths when the graph is sparse) survives the attack panel; on
// every inadequate graph the engine's covering argument defeats the
// natural device, with the failing bound (nodes or connectivity)
// identified automatically.
func RunE17() (*Result, error) {
	res := &Result{
		ID: "E17", Name: "The adequacy frontier across graph families",
		Paper: "Theorem 1 both bounds + tightness, swept as one census",
		Summary: "For each graph: adequacy per n >= 3f+1 and connectivity >= 2f+1 (f=1); " +
			"adequate graphs run EIG (over Dolev routing when sparse) against the panel, " +
			"inadequate graphs are handed to the matching impossibility chain.",
	}
	t := &Table{
		Title:   "Census (f = 1)",
		Columns: []string{"graph", "n", "conn", "diam", "adequate", "verdict"},
	}
	zoo := []struct {
		name string
		g    *graph.Graph
	}{
		{"K3 (triangle)", graph.Triangle()},
		{"K4", graph.Complete(4)},
		{"Diamond", graph.Diamond()},
		{"Ring(6)", graph.Ring(6)},
		{"Star(5)", graph.Star(5)},
		{"Line(4)", graph.Line(4)},
		{"Wheel(7)", graph.Wheel(7)},
		{"Petersen", graph.Petersen()},
		{"Hypercube(3)", graph.Hypercube(3)},
		{"K_{3,3}", graph.CompleteBipartite(3, 3)},
		{"Circulant(7;1,2)", graph.Circulant(7, 1, 2)},
		{"Grid(3,3)", graph.Grid(3, 3)},
	}
	const f = 1
	// The census is embarrassingly parallel on two levels: graphs fan out
	// here, and each adequate graph's attack sweep fans out again inside
	// frontierVerdict. Rows are collected in zoo order.
	verdicts, err := sweep.Map(len(zoo), func(i int) (string, error) {
		v, err := frontierVerdict(zoo[i].g, f)
		if err != nil {
			return "", fmt.Errorf("%s: %w", zoo[i].name, err)
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	for i, z := range zoo {
		g := z.g
		t.AddRow(z.name, g.N(), g.VertexConnectivity(), g.Diameter(),
			fmt.Sprint(g.IsAdequate(f)), verdicts[i])
	}
	t.Notes = append(t.Notes,
		"every verdict is computed, not asserted: panel sweeps on the adequate side, covering chains on the inadequate side")
	res.Tables = append(res.Tables, t)
	return res, nil
}

// frontierVerdict produces the per-graph outcome string.
func frontierVerdict(g *graph.Graph, f int) (string, error) {
	if g.IsAdequate(f) {
		var honest sim.Builder
		label := "EIG"
		rounds := byzantine.EIGRounds(f)
		if g.NumEdges() < g.N()*(g.N()-1)/2 {
			r, err := dolev.NewRouter(g, f)
			if err != nil {
				return "", err
			}
			honest = dolev.Overlay(r, byzantine.NewEIG(f, g.Names()))
			rounds = r.Rounds(rounds)
			label = "EIG/Dolev"
		} else {
			honest = byzantine.NewEIG(f, g.Names())
		}
		passed, total, err := attackSweep(g, honest, rounds, bitPatternsFor(g.N(), 2), 47)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s passes %d/%d attack configs", label, passed, total), nil
	}
	// Inadequate: pick the failing bound and run the matching chain.
	if g.N() <= 3*f {
		blocks := [3][]int{}
		for i := 0; i < g.N(); i++ {
			blocks[i%3] = append(blocks[i%3], i)
		}
		cr, err := core.ByzantineNodes(g, f, blocks[0], blocks[1], blocks[2],
			uniformBuilders(g, byzantine.NewMajority(2)), "majority", 8)
		if err != nil {
			return "", err
		}
		v := cr.Violations[0]
		return fmt.Sprintf("engine (nodes): %s %s", v.Link, v.Condition), nil
	}
	bSet, dSet, u, v, err := g.CutForFaults(f)
	if err != nil {
		return "", err
	}
	cr, err := core.ByzantineConnectivity(g, f, bSet, dSet, u, v,
		uniformBuilders(g, byzantine.NewMajority(3)), "majority", 10)
	if err != nil {
		return "", err
	}
	viol := cr.Violations[0]
	return fmt.Sprintf("engine (connectivity, cut %d+%d): %s %s",
		len(bSet), len(dSet), viol.Link, viol.Condition), nil
}

// attackSweepPanelSize reports the panel size (used by tests that pin
// sweep totals).
func attackSweepPanelSize() int { return len(adversary.Panel(0)) }
