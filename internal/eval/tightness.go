package eval

import (
	"fmt"
	"math"

	"flm/internal/adversary"
	"flm/internal/approx"
	"flm/internal/byzantine"
	"flm/internal/core"
	"flm/internal/dolev"
	"flm/internal/firingsquad"
	"flm/internal/graph"
	"flm/internal/sim"
	"flm/internal/sweep"
	"flm/internal/weak"
)

// attackSweep runs the trial for every (input pattern, faulty node,
// strategy) combination and returns passed/total counts. The adversary
// panel and its corrupted builders are constructed once for the whole
// sweep (the Corrupt wrappers are stateless builder factories), and the
// input assignment is built once per bit pattern and shared read-only by
// that pattern's trials via the grouped sweep. Each trial still builds
// its own System and runs the simulator in decision-only fast mode;
// results (including the first failing condition) are collected in
// trial-index order, so the outcome is identical to the sequential loop.
func attackSweep(g *graph.Graph, honest sim.Builder, rounds int, bitPatterns []int, seed int64) (passed, total int, firstErr error) {
	names := g.Names()
	panel := adversary.Panel(seed)
	corrupted := make([]sim.Builder, len(panel))
	for i, strat := range panel {
		corrupted[i] = strat.Corrupt(honest)
	}
	perPattern := len(names) * len(panel)
	type outcome struct {
		ok      bool
		condErr error
	}
	sizes := make([]int, len(bitPatterns))
	for i := range sizes {
		sizes[i] = perPattern
	}
	grouped, err := sweep.Grouped(sizes,
		func(p int) map[string]sim.Input {
			bits := bitPatterns[p]
			inputs := make(map[string]sim.Input, len(names))
			for j, name := range names {
				inputs[name] = sim.BoolInput(bits&(1<<uint(j)) != 0)
			}
			return inputs
		},
		func(p, rest int, inputs map[string]sim.Input) (outcome, error) {
			badNode := names[rest/len(panel)]
			trial := byzantine.Trial{
				G:      g,
				Inputs: inputs,
				Honest: honest,
				Faulty: map[string]sim.Builder{badNode: corrupted[rest%len(panel)]},
				Rounds: rounds,
			}
			_, _, rep, err := trial.RunWith(sim.ExecuteOpts{})
			if err != nil {
				return outcome{}, err
			}
			return outcome{ok: rep.OK(), condErr: rep.Err()}, nil
		})
	if err != nil {
		return 0, 0, err
	}
	for _, group := range grouped {
		for _, o := range group {
			total++
			if o.ok {
				passed++
			} else if firstErr == nil {
				firstErr = o.condErr
			}
		}
	}
	return passed, total, nil
}

func bitPatternsFor(n, count int) []int {
	patterns := []int{0, 1<<uint(n) - 1}
	x := 0x5a5a5a & (1<<uint(n) - 1)
	for len(patterns) < count {
		patterns = append(patterns, x)
		x = (x*2654435761 + 12345) & (1<<uint(n) - 1)
	}
	return patterns
}

// RunE9 sweeps EIG and phase king across the adequacy boundary.
func RunE9() (*Result, error) {
	res := &Result{
		ID: "E9", Name: "Tightness: EIG and phase king on adequate graphs",
		Paper: "context: [PSL], [LSP] upper bounds",
		Summary: "EIG withstands the full attack panel exactly from n = 3f+1 upward; at n = 3f " +
			"the engine's covering argument defeats it. Phase king (polynomial messages) does " +
			"the same from n = 4f+1.",
	}
	t := &Table{
		Title:   "EIG under the attack panel (pass fraction over inputs × faulty node × strategy)",
		Columns: []string{"n", "f", "adequate", "passed", "total", "note"},
	}
	for _, c := range []struct{ n, f int }{{4, 1}, {5, 1}, {6, 1}, {7, 2}, {8, 2}} {
		g := graph.Complete(c.n)
		honest := byzantine.NewEIG(c.f, g.Names())
		passed, total, err := attackSweep(g, honest, byzantine.EIGRounds(c.f), bitPatternsFor(c.n, 4), 7)
		if err != nil {
			return nil, err
		}
		note := ""
		if passed != total {
			note = "UNEXPECTED FAILURES"
		}
		t.AddRow(c.n, c.f, g.IsAdequate(c.f), passed, total, note)
	}
	// The boundary from below: the engine defeats EIG at n = 3f.
	for _, f := range []int{1, 2} {
		n := 3 * f
		g := graph.Complete(n)
		var blocks [3][]int
		for i := 0; i < n; i++ {
			blocks[i/f] = append(blocks[i/f], i)
		}
		cr, err := core.ByzantineNodes(g, f, blocks[0], blocks[1], blocks[2],
			uniformBuilders(g, byzantine.NewEIG(f, g.Names())), "eig", byzantine.EIGRounds(f)+2)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, f, false, 0, 1, fmt.Sprintf("engine: %s %s", cr.Violations[0].Link, cr.Violations[0].Condition))
	}
	res.Tables = append(res.Tables, t)

	pk := &Table{
		Title:   "Phase king under the attack panel",
		Columns: []string{"n", "f", "n >= 4f+1", "passed", "total"},
	}
	for _, c := range []struct{ n, f int }{{5, 1}, {6, 1}, {9, 2}} {
		g := graph.Complete(c.n)
		honest := byzantine.NewPhaseKing(c.f, g.Names())
		passed, total, err := attackSweep(g, honest, byzantine.PhaseKingRounds(c.f), bitPatternsFor(c.n, 3), 11)
		if err != nil {
			return nil, err
		}
		pk.AddRow(c.n, c.f, c.n >= 4*c.f+1, passed, total)
	}
	res.Tables = append(res.Tables, pk)

	tc := &Table{
		Title:   "Turpin-Coan multivalued agreement under the attack panel (boolean inputs here; arbitrary strings in the unit tests)",
		Columns: []string{"n", "f", "passed", "total"},
	}
	for _, c := range []struct{ n, f int }{{4, 1}, {7, 2}} {
		g := graph.Complete(c.n)
		honest := byzantine.NewTurpinCoan(c.f, g.Names())
		passed, total, err := attackSweep(g, honest, byzantine.TurpinCoanRounds(c.f), bitPatternsFor(c.n, 3), 15)
		if err != nil {
			return nil, err
		}
		tc.AddRow(c.n, c.f, passed, total)
	}
	res.Tables = append(res.Tables, tc)

	// Message complexity: EIG's traffic is exponential in f while phase
	// king's stays polynomial — the classic trade against resilience
	// (3f+1 vs 4f+1).
	mc := &Table{
		Title:   "Communication cost per fault-free run (messages / payload bytes / max payload)",
		Columns: []string{"protocol", "n", "f", "rounds", "messages", "bytes", "max payload"},
	}
	for _, c := range []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}} {
		g := graph.Complete(c.n)
		inputs := make(map[string]sim.Input, c.n)
		for i, name := range g.Names() {
			inputs[name] = sim.BoolInput(i%2 == 0)
		}
		trial := byzantine.Trial{G: g, Inputs: inputs, Honest: byzantine.NewEIG(c.f, g.Names()), Rounds: byzantine.EIGRounds(c.f)}
		run, _, _, err := trial.Run()
		if err != nil {
			return nil, err
		}
		st := sim.CollectStats(run)
		mc.AddRow("eig", c.n, c.f, st.Rounds, st.Messages, st.Bytes, st.MaxPayload)
	}
	for _, c := range []struct{ n, f int }{{5, 1}, {9, 2}, {13, 3}} {
		g := graph.Complete(c.n)
		inputs := make(map[string]sim.Input, c.n)
		for i, name := range g.Names() {
			inputs[name] = sim.BoolInput(i%2 == 0)
		}
		trial := byzantine.Trial{G: g, Inputs: inputs, Honest: byzantine.NewPhaseKing(c.f, g.Names()), Rounds: byzantine.PhaseKingRounds(c.f)}
		run, _, _, err := trial.Run()
		if err != nil {
			return nil, err
		}
		st := sim.CollectStats(run)
		mc.AddRow("phase-king", c.n, c.f, st.Rounds, st.Messages, st.Bytes, st.MaxPayload)
	}
	res.Tables = append(res.Tables, mc)

	// Crossover figure for f=1: pass fraction vs n (n=3 measured via the
	// engine: impossible).
	fig := &Series{
		Title:   "Crossover at n = 3f+1 (f=1): fraction of attack configurations EIG survives",
		XLabel:  "n",
		YLabels: []string{"pass fraction"},
	}
	fig.X = append(fig.X, 3)
	appendY(fig, 0) // Theorem 1: no device survives at n = 3
	for n := 4; n <= 7; n++ {
		g := graph.Complete(n)
		honest := byzantine.NewEIG(1, g.Names())
		passed, total, err := attackSweep(g, honest, byzantine.EIGRounds(1), bitPatternsFor(n, 4), 13)
		if err != nil {
			return nil, err
		}
		fig.X = append(fig.X, float64(n))
		appendY(fig, float64(passed)/float64(total))
	}
	fig.Notes = append(fig.Notes, "n=3 is 0 by Theorem 1 (every device is defeated by the hexagon argument)")
	res.Figures = append(res.Figures, fig)
	return res, nil
}

// RunE10 sweeps Dolev-routed EIG across the connectivity boundary.
func RunE10() (*Result, error) {
	res := &Result{
		ID: "E10", Name: "Tightness: Dolev routing at connectivity 2f+1",
		Paper: "context: [D] upper bound",
		Summary: "With connectivity >= 2f+1, EIG over 2f+1 vertex-disjoint paths withstands the " +
			"panel on sparse graphs; below it, either no routing exists or the engine defeats " +
			"the devices outright.",
	}
	t := &Table{
		Title:   "Agreement over Dolev routing",
		Columns: []string{"graph", "n", "conn", "f", "outcome"},
	}
	type okCase struct {
		name string
		g    *graph.Graph
		f    int
	}
	for _, c := range []okCase{
		{"Wheel(7)", graph.Wheel(7), 1},
		{"Circulant(7;1,2)", graph.Circulant(7, 1, 2), 1},
		{"Hypercube(3)", graph.Hypercube(3), 1},
		{"Circulant(9;1,2,3)", graph.Circulant(9, 1, 2, 3), 2},
	} {
		r, err := dolev.NewRouter(c.g, c.f)
		if err != nil {
			return nil, fmt.Errorf("router for %s: %w", c.name, err)
		}
		honest := dolev.Overlay(r, byzantine.NewEIG(c.f, c.g.Names()))
		passed, total, err := attackSweep(c.g, honest, r.Rounds(byzantine.EIGRounds(c.f)), bitPatternsFor(c.g.N(), 2), 17)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, c.g.N(), c.g.VertexConnectivity(), c.f,
			fmt.Sprintf("passed %d/%d attack configs", passed, total))
	}
	// Below the boundary.
	dia := graph.Diamond()
	cr, err := core.ByzantineDiamond(uniformBuilders(dia, byzantine.NewMajority(3)), "majority", 10)
	if err != nil {
		return nil, err
	}
	t.AddRow("Diamond", 4, 2, 1, fmt.Sprintf("engine: %s %s (Theorem 1)", cr.Violations[0].Link, cr.Violations[0].Condition))
	if _, err := dolev.NewRouter(graph.Ring(7), 1); err != nil {
		t.AddRow("Ring(7)", 7, 2, 1, "router refused: "+err.Error())
	}
	res.Tables = append(res.Tables, t)
	return res, nil
}

// RunE11 measures DLPSW convergence.
func RunE11() (*Result, error) {
	res := &Result{
		ID: "E11", Name: "Tightness: DLPSW approximate agreement convergence",
		Paper: "context: [DLPSW] upper bound",
		Summary: "On complete graphs with n >= 3f+1 the correct-value spread at least halves per " +
			"round, inside the correct input range, under every panel adversary.",
	}
	fig := &Series{
		Title:   "Spread of correct values vs averaging rounds (K4, f=1, equivocating fault)",
		XLabel:  "rounds",
		YLabels: []string{"measured spread", "guaranteed bound (2^-r)"},
	}
	g := graph.Complete(4)
	inputs := map[string]sim.Input{
		"p0": sim.RealInput(0), "p1": sim.RealInput(1),
		"p2": sim.RealInput(0.3), "p3": sim.RealInput(0.8),
	}
	for rounds := 1; rounds <= 10; rounds++ {
		honest := approx.NewDLPSW(1, g.Names(), rounds)
		equiv := adversary.Equivocate(honest, sim.RealInput(0), sim.RealInput(1),
			func(nb string) bool { return nb == "p0" || nb == "p1" })
		trial := byzantine.Trial{
			G: g, Inputs: inputs, Honest: honest,
			Faulty: map[string]sim.Builder{"p3": equiv},
			Rounds: approx.DLPSWRounds(rounds),
		}
		run, correct, _, err := trial.Run()
		if err != nil {
			return nil, err
		}
		outs, err := approx.Outputs(run, correct)
		if err != nil {
			return nil, err
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range outs {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		fig.X = append(fig.X, float64(rounds))
		appendY(fig, hi-lo, math.Pow(0.5, float64(rounds)))
	}
	res.Figures = append(res.Figures, fig)

	t := &Table{
		Title:   "(ε,δ,γ) met on adequate graphs: rounds needed for ε",
		Columns: []string{"n", "f", "delta", "eps", "rounds used", "achieved"},
	}
	for _, c := range []struct {
		n, f       int
		delta, eps float64
	}{
		{4, 1, 1, 0.1},
		{7, 2, 1, 0.05},
		{10, 3, 2, 0.01},
	} {
		g := graph.Complete(c.n)
		rounds := approx.RoundsFor(c.delta, c.eps)
		honest := approx.NewDLPSW(c.f, g.Names(), rounds)
		inputs := make(map[string]sim.Input, c.n)
		for i, name := range g.Names() {
			inputs[name] = sim.RealInput(c.delta * float64(i) / float64(c.n-1))
		}
		trial := byzantine.Trial{G: g, Inputs: inputs, Honest: honest, Rounds: approx.DLPSWRounds(rounds)}
		run, correct, _, err := trial.Run()
		if err != nil {
			return nil, err
		}
		rep := approx.CheckEDG(run, correct, c.eps, 0)
		t.AddRow(c.n, c.f, c.delta, c.eps, rounds, fmt.Sprint(rep.OK()))
	}
	res.Tables = append(res.Tables, t)

	// Substrate composition: the same DLPSW devices over Dolev routing
	// on a sparse adequate graph.
	sparse := graph.Wheel(7)
	router, err := dolev.NewRouter(sparse, 1)
	if err != nil {
		return nil, err
	}
	const iterations = 6
	honestSparse := dolev.Overlay(router, approx.NewDLPSW(1, sparse.Names(), iterations))
	inputsSparse := map[string]sim.Input{}
	for i, name := range sparse.Names() {
		inputsSparse[name] = sim.RealInput(float64(i) / 6)
	}
	equiv := adversary.Equivocate(honestSparse, sim.RealInput(0), sim.RealInput(1),
		func(nb string) bool { return nb < "w3" })
	trialSparse := byzantine.Trial{
		G: sparse, Inputs: inputsSparse, Honest: honestSparse,
		Faulty: map[string]sim.Builder{"w5": equiv},
		Rounds: router.Rounds(approx.DLPSWRounds(iterations)),
	}
	runSparse, correctSparse, _, err := trialSparse.Run()
	if err != nil {
		return nil, err
	}
	repSparse := approx.CheckEDG(runSparse, correctSparse, 0.05, 0)
	comp := &Table{
		Title:   "Composition: DLPSW over Dolev routing on Wheel(7) (conn 3, f=1, equivocating fault)",
		Columns: []string{"graph", "stretch", "eps", "achieved"},
	}
	comp.AddRow("Wheel(7)", router.StretchFactor(), 0.05, fmt.Sprint(repSparse.OK()))
	res.Tables = append(res.Tables, comp)
	return res, nil
}

// RunE12 verifies the firing squad and weak agreement constructions on
// adequate graphs.
func RunE12() (*Result, error) {
	res := &Result{
		ID: "E12", Name: "Tightness: firing squad and weak agreement via BA",
		Paper: "context: [CDDS], [L] reductions",
		Summary: "With n >= 3f+1 the stimulus-broadcast + EIG reduction fires simultaneously at " +
			"the fixed round f+3, and full BA validity subsumes weak validity.",
	}
	t := &Table{
		Title:   "Firing squad via EIG (stimulus at one node, attack panel)",
		Columns: []string{"n", "f", "fire round", "simultaneity intact", "configs"},
	}
	for _, c := range []struct{ n, f int }{{4, 1}, {7, 2}} {
		g := graph.Complete(c.n)
		honest := firingsquad.NewViaBA(c.f, g.Names())
		okAll := true
		configs := 0
		for _, badNode := range g.Names() {
			for _, strat := range adversary.Panel(29) {
				p := sim.Protocol{Builders: map[string]sim.Builder{}, Inputs: map[string]sim.Input{}}
				var correct []string
				for _, name := range g.Names() {
					p.Inputs[name] = sim.BoolInput(name == g.Name(0))
					if name == badNode {
						p.Builders[name] = strat.Corrupt(honest)
					} else {
						p.Builders[name] = honest
						correct = append(correct, name)
					}
				}
				sys, err := sim.NewSystem(g, p)
				if err != nil {
					return nil, err
				}
				run, err := sim.Execute(sys, firingsquad.Rounds(c.f)+2)
				if err != nil {
					return nil, err
				}
				rep := firingsquad.Check(run, correct, false, true)
				if rep.Agreement != nil {
					okAll = false
				}
				configs++
			}
		}
		t.AddRow(c.n, c.f, firingsquad.FireTime(c.f), fmt.Sprint(okAll), configs)
	}
	res.Tables = append(res.Tables, t)

	w := &Table{
		Title:   "Weak agreement via EIG (attack panel)",
		Columns: []string{"n", "f", "passed", "total"},
	}
	for _, c := range []struct{ n, f int }{{4, 1}, {7, 2}} {
		g := graph.Complete(c.n)
		honest := weak.NewViaBA(c.f, g.Names())
		passed, total, err := attackSweep(g, honest, byzantine.EIGRounds(c.f), bitPatternsFor(c.n, 3), 31)
		if err != nil {
			return nil, err
		}
		w.AddRow(c.n, c.f, passed, total)
	}
	res.Tables = append(res.Tables, w)
	return res, nil
}

// RunE13 sweeps partition shapes for the general node bound (the
// footnote-3 collapse construction).
func RunE13() (*Result, error) {
	res := &Result{
		ID: "E13", Name: "Partition collapse: block sweeps of the node bound",
		Paper: "Section 3.1, footnote 3",
		Summary: "Collapsing each partition block to a super-node reduces the general n <= 3f case " +
			"to the triangle; every block shape yields the same three-link contradiction.",
	}
	t := &Table{
		Title:   "All partition shapes of K_n (n <= 3f) defeat EIG",
		Columns: []string{"graph", "f", "blocks", "|S|", "links", "first violation"},
	}
	type pcase struct {
		n, f    int
		a, b, c []int
	}
	cases := []pcase{
		{4, 2, []int{0}, []int{1}, []int{2, 3}},
		{4, 2, []int{0, 1}, []int{2}, []int{3}},
		{5, 2, []int{0}, []int{1, 2}, []int{3, 4}},
		{5, 2, []int{0, 1}, []int{2, 3}, []int{4}},
		{6, 2, []int{0, 1}, []int{2, 3}, []int{4, 5}},
		{6, 3, []int{0}, []int{1, 2}, []int{3, 4, 5}},
		{7, 3, []int{0, 1, 2}, []int{3, 4}, []int{5, 6}},
	}
	for _, c := range cases {
		g := graph.Complete(c.n)
		builder := byzantine.NewEIG(c.f, g.Names())
		cr, err := core.ByzantineNodes(g, c.f, c.a, c.b, c.c,
			uniformBuilders(g, builder), "eig", byzantine.EIGRounds(c.f)+2)
		if err != nil {
			return nil, err
		}
		v := cr.Violations[0]
		t.AddRow(fmt.Sprintf("K%d", c.n), c.f,
			fmt.Sprintf("%d+%d+%d", len(c.a), len(c.b), len(c.c)),
			cr.CoverSize, len(cr.Links), fmt.Sprintf("%s %s", v.Link, v.Condition))
	}
	res.Tables = append(res.Tables, t)
	return res, nil
}

// RunE14 defeats seeded-nondeterministic devices (Section 3's remark:
// nondeterminism does not escape the impossibility).
func RunE14() (*Result, error) {
	res := &Result{
		ID: "E14", Name: "Nondeterministic devices are defeated too",
		Paper: "Section 3.3 remark",
		Summary: "Treating the random seed as part of the device resolves nondeterminism into a " +
			"family of deterministic devices; the hexagon argument defeats every member.",
	}
	t := &Table{
		Title:   "Seeded majority devices (coin-flip tie-breaks) on the triangle",
		Columns: []string{"seed", "violations", "link", "condition"},
	}
	tri := graph.Triangle()
	for seed := int64(1); seed <= 10; seed++ {
		builder := byzantine.NewSeededMajority(seed, 2)
		cr, err := core.ByzantineTriangle(uniformBuilders(tri, builder), fmt.Sprintf("seeded-majority(%d)", seed), 8)
		if err != nil {
			return nil, err
		}
		v := cr.Violations[0]
		t.AddRow(seed, len(cr.Violations), v.Link, v.Condition)
	}
	res.Tables = append(res.Tables, t)
	return res, nil
}
