package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"flm/internal/adversary"
	"flm/internal/chaos"
	"flm/internal/graph"
	"flm/internal/initdead"
	"flm/internal/sim"
	"flm/internal/sweep"
)

// E19 parameters: the possibility side sweeps every initially-dead
// subset of size <= t exhaustively, first synchronously and then under
// e19DelaySeeds seeded adversarial delay schedules with per-message
// extra delay up to e19MaxDelay.
const (
	e19DelaySeeds = 2
	e19MaxDelay   = 2
)

// E20 parameters: the pinned async smoke pair shared by the CI
// async-chaos job (`flm chaos -async -deadset -trials 48 -seed 7`) and
// the chaos package's pinned tests.
const (
	e20Seed   = chaos.AsyncSmokeSeed
	e20Trials = chaos.AsyncSmokeTrials
)

// e20Opts is the generator mode of the pinned async smoke.
var e20Opts = chaos.GenOpts{Async: true, Dead: true}

// runInitdead executes the FLP Section 4 protocol on K_n with the given
// dead set, inputs (in sorted-name order), and delay schedule, and
// returns the run plus the live-node list.
func runInitdead(n, t int, dead map[string]bool, inputs []string, delays *sim.DelaySchedule, rounds int) (*sim.Run, []string, error) {
	g := graph.Complete(n)
	honest := initdead.New(t)
	p := sim.Protocol{
		Builders: make(map[string]sim.Builder, n),
		Inputs:   make(map[string]sim.Input, n),
	}
	var live []string
	for i, name := range g.Names() {
		p.Inputs[name] = sim.Input(inputs[i])
		if dead[name] {
			p.Builders[name] = adversary.InitiallyDead()
		} else {
			p.Builders[name] = honest
			live = append(live, name)
		}
	}
	sys, err := sim.NewSystem(g, p)
	if err != nil {
		return nil, nil, err
	}
	run, err := sim.ExecuteWith(sys, rounds, sim.ExecuteOpts{Delays: delays})
	if err != nil {
		return nil, nil, err
	}
	return run, live, nil
}

// deadSubsetsUpTo enumerates every subset of names with size <= k, in
// mask order (deterministic).
func deadSubsetsUpTo(names []string, k int) []map[string]bool {
	var out []map[string]bool
	n := len(names)
	for mask := 0; mask < 1<<n; mask++ {
		sub := map[string]bool{}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub[names[i]] = true
			}
		}
		if len(sub) <= k {
			out = append(out, sub)
		}
	}
	return out
}

func deadNames(dead map[string]bool) string {
	names := make([]string, 0, len(dead))
	for name := range dead {
		names = append(names, name)
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}

func alternatingBits(n int) []string {
	in := make([]string, n)
	for i := range in {
		in[i] = fmt.Sprint(i % 2)
	}
	return in
}

// RunE19 charts the initially-dead possibility frontier. On the
// possible side (n > 2t) it runs the FLP Section 4 protocol against
// EVERY initially-dead subset of size <= t — synchronously and under
// seeded adversarial delay schedules — and requires termination,
// agreement, and strong validity on each run. On the impossible side
// (n = 2t) it exhibits the matching counterexample: a partition delay
// schedule that defers all cross-group traffic past the round horizon,
// under which the two halves decide their own (different) inputs.
func RunE19() (*Result, error) {
	type sizeRow struct {
		n, t                           int
		subsets, syncRuns, delayedRuns int
	}
	possible := []struct{ n, t int }{{3, 1}, {5, 2}, {7, 3}}
	rows, err := sweep.Map(len(possible), func(i int) (sizeRow, error) {
		size := possible[i]
		names := graph.Complete(size.n).Names()
		row := sizeRow{n: size.n, t: size.t}
		for _, dead := range deadSubsetsUpTo(names, size.t) {
			row.subsets++
			run, live, err := runInitdead(size.n, size.t, dead, alternatingBits(size.n), nil, initdead.Rounds(0))
			if err != nil {
				return row, err
			}
			if rep := initdead.Check(run, live); !rep.OK() {
				return row, fmt.Errorf("n=%d t=%d dead=%s synchronous: %w",
					size.n, size.t, deadNames(dead), rep.Err())
			}
			row.syncRuns++
			rounds := initdead.Rounds(e19MaxDelay)
			for seed := int64(1); seed <= e19DelaySeeds; seed++ {
				delays := sim.SeededDelays(seed, names, rounds, e19MaxDelay)
				run, live, err := runInitdead(size.n, size.t, dead, alternatingBits(size.n), delays, rounds)
				if err != nil {
					return row, err
				}
				if rep := initdead.Check(run, live); !rep.OK() {
					return row, fmt.Errorf("n=%d t=%d dead=%s delay seed %d: %w",
						size.n, size.t, deadNames(dead), seed, rep.Err())
				}
				row.delayedRuns++
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}

	frontier := &Table{
		Title:   "n > 2t: the FLP Section 4 protocol decides under every initially-dead subset of size <= t",
		Columns: []string{"n", "t", "dead subsets", "sync runs", "delayed runs", "all correct"},
		Notes: []string{
			"exhaustive over dead subsets; every run checked for termination, agreement, and strong validity",
			fmt.Sprintf("delayed runs: %d seeded adversarial schedules per subset, per-message extra delay <= %d, budget Rounds(D) = 2D+4", e19DelaySeeds, e19MaxDelay),
		},
	}
	totalRuns := 0
	for _, r := range rows {
		frontier.AddRow(r.n, r.t, r.subsets, r.syncRuns, r.delayedRuns, true)
		totalRuns += r.syncRuns + r.delayedRuns
	}

	impossible := []struct{ n, t int }{{2, 1}, {4, 2}, {6, 3}}
	witnesses, err := sweep.Map(len(impossible), func(i int) (string, error) {
		size := impossible[i]
		names := graph.Complete(size.n).Names()
		rounds := initdead.Rounds(0) + size.n
		delays := initdead.PartitionDelays(names, size.t, rounds)
		inputs := make([]string, size.n)
		for j := range inputs {
			if j < size.n-size.t {
				inputs[j] = "0"
			} else {
				inputs[j] = "1"
			}
		}
		run, live, err := runInitdead(size.n, size.t, nil, inputs, delays, rounds)
		if err != nil {
			return "", err
		}
		rep := initdead.Check(run, live)
		if rep.Agreement == nil {
			return "", fmt.Errorf("n=%d t=%d: partition delays failed to split the run (%+v)", size.n, size.t, rep)
		}
		return rep.Agreement.Error(), nil
	})
	if err != nil {
		return nil, err
	}

	split := &Table{
		Title:   "n = 2t: a partition delay schedule manufactures disagreement",
		Columns: []string{"n", "t", "schedule", "witnessed violation"},
		Notes: []string{
			"cross-group messages are delayed past the round horizon — the finite-run rendering of \"forever\"",
			"each group holds exactly the n-t-1 foreign records the protocol waits for, so both proceed alone and decide their own inputs",
		},
	}
	for i, size := range impossible {
		split.AddRow(size.n, size.t,
			fmt.Sprintf("groups %d+%d, all cross traffic delayed", size.n-size.t, size.t),
			witnesses[i])
	}

	return &Result{
		ID:    "E19",
		Name:  "The n > 2t initially-dead possibility baseline",
		Paper: "FLP Section 4 protocol; contrast with the paper's Fault-axiom adversaries",
		Summary: fmt.Sprintf(
			"%d protocol runs across every dead subset <= t on both sides of the frontier: all correct for n > 2t (synchronous and delayed), disagreement witnessed at n = 2t for every size tried.",
			totalRuns),
		Tables: []*Table{frontier, split},
	}, nil
}

// RunE20 fires the chaos panel in its adversarial-asynchrony mode:
// every sync-panel trial runs under a seeded delay schedule, initially
// dead subsets and the initdead protocol join the draw, and every
// violation is shrunk — delay rules included — to a 1-minimal
// counterexample.
func RunE20() (*Result, error) {
	rep, err := chaos.Run(context.Background(), chaos.Config{
		Seed: e20Seed, Trials: e20Trials, Async: true, Dead: true,
	})
	if err != nil {
		return nil, err
	}
	if !rep.OK() {
		return nil, fmt.Errorf("async chaos panel found unexpected failures:\n%s", rep.Render())
	}

	type tally struct{ trials, adequate, delayed, violations int }
	byProto := map[string]*tally{}
	protoOrder := []string{}
	for i := 0; i < e20Trials; i++ {
		s := chaos.NewScheduleWith(e20Seed, i, e20Opts)
		tl := byProto[s.Protocol]
		if tl == nil {
			tl = &tally{}
			byProto[s.Protocol] = tl
			protoOrder = append(protoOrder, s.Protocol)
		}
		tl.trials++
		if s.Adequate {
			tl.adequate++
		}
		if len(s.Delays) > 0 {
			tl.delayed++
		}
	}
	for _, f := range rep.Expected {
		byProto[f.Schedule.Protocol].violations++
	}

	panel := &Table{
		Title:   fmt.Sprintf("Async chaos panel (seed %d, %d trials): delay schedules + initially-dead subsets", e20Seed, e20Trials),
		Columns: []string{"protocol", "trials", "adequate", "delayed", "violations", "all adequate green"},
		Notes: []string{
			fmt.Sprintf("reproduce any row with: flm chaos -async -deadset -seed %d -trials %d", e20Seed, e20Trials),
			"sync-panel trials under delays count as inadequate by construction: delivery past the round horizon is message loss",
			"initdead trials are adequate iff n > 2t; inadequate ones may draw the partition schedule with split inputs",
		},
	}
	for _, p := range protoOrder {
		tl := byProto[p]
		panel.AddRow(p, tl.trials, tl.adequate, tl.delayed, tl.violations, true)
	}

	findings := &Table{
		Title:   "Shrunk counterexamples (minimal faulty actions + delay rules that still violate)",
		Columns: []string{"trial", "schedule", "violated condition", "shrunk"},
		Notes: []string{
			"delay rules shrink too: ddmin-style chunk removal to 1-minimality, then per-rule extra-delay weakening",
		},
	}
	for _, f := range rep.Expected {
		shrunk := "-"
		if f.Shrunk != nil {
			shrunk = fmt.Sprintf("%d fault(s) + %d rule(s): %s",
				len(f.Shrunk.Actions), len(f.Shrunk.Delays), f.Shrunk.Describe())
		}
		findings.AddRow(f.Trial, f.Schedule.Describe(), f.Violation, shrunk)
	}

	return &Result{
		ID:    "E20",
		Name:  "Chaos panel under adversarial asynchrony",
		Paper: "Fault axiom (Section 2) extended with delay adversaries; FLP Section 4 frontier",
		Summary: fmt.Sprintf(
			"%d randomized attack schedules under adversarial delays and initially-dead subsets: %d green, %d violations — every one on an inadequate configuration, every one shrunk (delay rules included).",
			rep.Trials, rep.Green, len(rep.Expected)),
		Tables: []*Table{panel, findings},
	}, nil
}
