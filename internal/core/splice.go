package core

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"flm/internal/graph"
	"flm/internal/obs"
	"flm/internal/runcache"
	"flm/internal/sim"
)

// Splice is a behavior of G constructed from a scenario of the covering
// run, per the paper's central move: the nodes of U stay correct (their
// devices and inputs are carried over through Phi), and every other
// G-node becomes a Fault-axiom replay device exhibiting exactly the
// traffic the scenario's inedge border carried in S.
type Splice struct {
	Run     *sim.Run          // the constructed behavior of G
	Correct []string          // G-names of the correct nodes (sorted)
	Faulty  []string          // G-names of the faulty nodes (sorted)
	Rename  map[string]string // S-name -> G-name for scenario + border nodes
	UNodes  []string          // S-names of the scenario nodes
}

// SpliceScenario builds the behavior of G corresponding to the scenario
// of the S-node subset u in runS. It requires Phi restricted to u to be
// an isomorphism of induced subgraphs (checked), constructs the G-system
// (original builders for Phi(u), replay devices elsewhere), executes it,
// and verifies — this is the Locality axiom made checkable — that the
// correct nodes' behaviors in the constructed run are identical to the
// scenario in S, byte for byte.
//
// builders is keyed by G-node name; inputs for correct G-nodes are taken
// from the covering run through Phi.
//
// Splices are memoized: contradiction chains (and the sweeps that drive
// them) splice the same scenario of the same covering run repeatedly,
// and a splice is fully determined by the covering run's content and the
// scenario subset, so repeats return the shared, immutable *Splice. The
// cache engages only when the covering run is content-addressed
// (runS.Fingerprint() != "") and builders is the very map the
// installation was built from — which is how every theorem driver calls
// it — and falls through to a fresh execution otherwise.
func SpliceScenario(inst *Installation, runS *sim.Run, u []int, builders map[string]sim.Builder) (*Splice, error) {
	if obs.Enabled() {
		return spliceScenarioTraced(inst, runS, u, builders)
	}
	if key, ok := spliceKey(inst, runS, u, builders); ok {
		v, err := spliceCache.Do(key, func() (any, error) {
			return spliceScenario(inst, runS, u, builders)
		})
		sp, _ := v.(*Splice)
		return sp, err
	}
	return spliceScenario(inst, runS, u, builders)
}

// Splice-cache metrics, ticked on the traced path only (the disabled
// engine stays byte-identical to the uninstrumented one).
var (
	mSpliceHit      = obs.NewCounter("core.splice.hit")
	mSpliceWait     = obs.NewCounter("core.splice.wait")
	mSpliceMiss     = obs.NewCounter("core.splice.miss")
	mSpliceUncached = obs.NewCounter("core.splice.uncached")
)

// spliceScenarioTraced is SpliceScenario's traced twin: the same cache
// dispatch wrapped in a "core.splice" span recording the scenario size,
// how the splice cache served it, and — on success — the correct and
// faulty G-node sets of the constructed behavior.
//
//flmlint:allow flmobscost reached only from SpliceScenario's obs.Enabled() branch
func spliceScenarioTraced(inst *Installation, runS *sim.Run, u []int, builders map[string]sim.Builder) (*Splice, error) {
	ctx, span := obs.StartSpan(context.Background(), "core.splice",
		obs.Int("scenario_nodes", len(u)),
		obs.Int("cover_nodes", inst.Cover.S.N()))
	var (
		res        *Splice
		err        error
		cacheState string
	)
	if key, ok := spliceKey(inst, runS, u, builders); ok {
		var v any
		var hit, waited bool
		v, hit, waited, err = spliceCache.DoObserved(key, func() (any, error) {
			return spliceScenarioCtx(ctx, inst, runS, u, builders)
		})
		res, _ = v.(*Splice)
		switch {
		case waited:
			cacheState = "wait"
			mSpliceWait.Inc()
		case hit:
			cacheState = "hit"
			mSpliceHit.Inc()
		default:
			cacheState = "miss"
			mSpliceMiss.Inc()
		}
	} else {
		cacheState = "uncacheable"
		mSpliceUncached.Inc()
		res, err = spliceScenarioCtx(ctx, inst, runS, u, builders)
	}
	span.SetAttrs(obs.Str("cache", cacheState))
	if err != nil {
		span.SetAttrs(obs.Str("error", err.Error()))
	}
	if res != nil {
		span.SetAttrs(
			obs.Str("correct", strings.Join(res.Correct, ",")),
			obs.Str("faulty", strings.Join(res.Faulty, ",")))
	}
	span.End()
	return res, err
}

// spliceCache memoizes whole splices — the constructed G-run plus the
// verified locality bookkeeping — one level above sim's execution cache,
// saving the protocol assembly and self-check work on repeats.
//
// Policy: memory-only. A *Splice holds builder closures (via its
// Installation) that cannot be content-addressed across processes, so no
// disk tier is ever installed here; the underlying executions it splices
// are what the persistent tier serves. The L1 budget still applies, with
// the cost model charging the constructed run plus the splice
// bookkeeping.
var spliceCache = runcache.New(
	runcache.WithCost(spliceCost),
	runcache.WithMetrics("core.splice"),
)

// spliceCost estimates the retained bytes of a cached *Splice: the
// constructed G-run (the dominant term, costed by sim's run estimator)
// plus the rename map and node-name slices.
func spliceCost(v any) int64 {
	sp, ok := v.(*Splice)
	if !ok || sp == nil {
		return 512
	}
	cost := int64(128) + sim.RunCost(sp.Run)
	for _, s := range sp.Correct {
		cost += int64(len(s)) + 16
	}
	for _, s := range sp.Faulty {
		cost += int64(len(s)) + 16
	}
	for _, s := range sp.UNodes {
		cost += int64(len(s)) + 16
	}
	cost += int64(len(sp.Rename)) * 80
	return cost
}

// SpliceCacheStats reports the splice cache's hit/miss counters.
func SpliceCacheStats() runcache.Stats { return spliceCache.Stats() }

// ResetSpliceCache drops every cached splice.
func ResetSpliceCache() { spliceCache.Reset() }

// spliceKey derives the cache key for a splice request, reporting
// ok=false when the request is not safely cacheable. The covering run's
// fingerprint already pins the S-graph, the installed devices (via their
// renamed fingerprints, which embed Phi), the inputs, and the horizon;
// the scenario subset u is the only other degree of freedom. Builder
// identity cannot be hashed (funcs), so the installation's recorded
// buildersID must match the map passed here, pinning the builders to
// the ones whose behavior the fingerprint describes.
func spliceKey(inst *Installation, runS *sim.Run, u []int, builders map[string]sim.Builder) (string, bool) {
	if !runcache.Enabled() {
		return "", false
	}
	fp := runS.Fingerprint()
	if fp == "" || inst.buildersID == 0 || reflect.ValueOf(builders).Pointer() != inst.buildersID {
		return "", false
	}
	h := runcache.NewHasher("core.splice/v1")
	h.Field(fp)
	h.Int(len(u))
	for _, sn := range u {
		h.Int(sn)
	}
	return h.Sum(), true
}

func spliceScenario(inst *Installation, runS *sim.Run, u []int, builders map[string]sim.Builder) (*Splice, error) {
	return spliceScenarioCtx(context.Background(), inst, runS, u, builders)
}

// spliceScenarioCtx threads a context so that, under tracing, the
// constructed G-run's "sim.execute" span nests inside the "core.splice"
// span that requested it. The context is never cancellable here (a
// cancellable context would bypass the run cache).
func spliceScenarioCtx(ctx context.Context, inst *Installation, runS *sim.Run, u []int, builders map[string]sim.Builder) (*Splice, error) {
	cover := inst.Cover
	if err := cover.InducedIsomorphic(u); err != nil {
		return nil, fmt.Errorf("core: scenario not spliceable: %w", err)
	}
	s, g := cover.S, cover.G

	sp := &Splice{Rename: make(map[string]string, len(u))}
	correctG := make(map[int]int, len(u)) // G-node -> S-preimage in u
	for _, sn := range u {
		gn := cover.Phi[sn]
		correctG[gn] = sn
		sp.Rename[s.Name(sn)] = g.Name(gn)
		sp.Correct = append(sp.Correct, g.Name(gn))
		sp.UNodes = append(sp.UNodes, s.Name(sn))
	}
	sort.Strings(sp.Correct)
	sort.Strings(sp.UNodes)

	p := sim.Protocol{
		Builders: make(map[string]sim.Builder, g.N()),
		Inputs:   make(map[string]sim.Input, g.N()),
	}
	for gn := 0; gn < g.N(); gn++ {
		gName := g.Name(gn)
		if sn, ok := correctG[gn]; ok {
			b, found := builders[gName]
			if !found {
				return nil, fmt.Errorf("core: no builder for correct node %q", gName)
			}
			p.Builders[gName] = b
			p.Inputs[gName] = inst.Inputs[s.Name(sn)]
			continue
		}
		// Faulty node: replay, toward each correct neighbor, the traffic
		// of the corresponding S border edge (the Fault axiom device
		// F_A(E_1,...,E_d)).
		scripts := make(map[string][]sim.Payload)
		for _, gv := range g.Neighbors(gn) {
			sn, ok := correctG[gv]
			if !ok {
				continue // traffic between faulty nodes is irrelevant
			}
			pre := cover.EdgePreimage(sn, gn)
			e := graph.Edge{From: s.Name(pre), To: s.Name(sn)}
			seq, found := runS.Edges[e]
			if !found {
				return nil, fmt.Errorf("core: covering run lacks border edge %v", e)
			}
			scripts[g.Name(gv)] = seq
			sp.Rename[s.Name(pre)] = gName
		}
		p.Builders[gName] = sim.ReplayBuilder(scripts)
		p.Inputs[gName] = sim.Input(sim.EncodeBool(false)) // immaterial
		sp.Faulty = append(sp.Faulty, gName)
	}
	sort.Strings(sp.Faulty)

	sys, err := sim.NewSystem(g, p)
	if err != nil {
		return nil, err
	}
	runG, err := sim.ExecuteCtx(ctx, sys, runS.Rounds, sim.FullRecording)
	if err != nil {
		return nil, err
	}
	sp.Run = runG

	// Locality-axiom self-check: the spliced scenario must be identical
	// to the covering scenario under the renaming, including the border
	// traffic the faulty nodes exhibited.
	scS, err := sim.Extract(runS, sp.UNodes)
	if err != nil {
		return nil, err
	}
	scG, err := sim.Extract(runG, sp.Correct)
	if err != nil {
		return nil, err
	}
	if err := scS.EqualUnder(scG, sp.Rename, true); err != nil {
		return nil, fmt.Errorf("core: locality axiom self-check failed (simulator bug?): %w", err)
	}
	return sp, nil
}

// DecisionOfS returns, from the spliced G-run, the decision of the
// G-image of the given S-node. By the locality check it equals the
// S-node's decision in the covering run.
func (sp *Splice) DecisionOfS(sName string) (sim.Decision, error) {
	gName, ok := sp.Rename[sName]
	if !ok {
		return sim.Decision{}, fmt.Errorf("core: S-node %q not in splice", sName)
	}
	return sp.Run.DecisionOf(gName)
}
