package sim

import (
	"fmt"

	"flm/internal/graph"
)

// CheckLocality verifies the paper's Locality axiom on a concrete run:
// replacing everything outside the node subset U with Fault-axiom replay
// devices that reproduce exactly the recorded inedge-border traffic must
// leave the scenario of U unchanged (same snapshots, decisions, and
// internal traffic). It returns the replayed run for further inspection.
//
// The original devices for U are rebuilt with the given builders (devices
// are stateful, so the caller supplies fresh instances via the original
// protocol).
func CheckLocality(run *Run, nodes []string, builders map[string]Builder) (*Run, error) {
	inSet := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	g := run.G
	p := Protocol{
		Builders: make(map[string]Builder, g.N()),
		Inputs:   make(map[string]Input, g.N()),
	}
	for u := 0; u < g.N(); u++ {
		name := g.Name(u)
		p.Inputs[name] = run.Inputs[u]
		if inSet[name] {
			b, ok := builders[name]
			if !ok {
				return nil, fmt.Errorf("sim: no builder supplied for scenario node %q", name)
			}
			p.Builders[name] = b
			continue
		}
		// Outside node: replay its recorded traffic on every outedge.
		scripts := make(map[string][]Payload)
		for _, v := range g.Neighbors(u) {
			e := graph.Edge{From: name, To: g.Name(v)}
			scripts[g.Name(v)] = append([]Payload(nil), run.Edges[e]...)
		}
		p.Builders[name] = ReplayBuilder(scripts)
	}
	sys, err := NewSystem(g, p)
	if err != nil {
		return nil, err
	}
	replayed, err := Execute(sys, run.Rounds)
	if err != nil {
		return nil, err
	}
	orig, err := Extract(run, nodes)
	if err != nil {
		return nil, err
	}
	again, err := Extract(replayed, nodes)
	if err != nil {
		return nil, err
	}
	if err := orig.EqualUnder(again, nil, true); err != nil {
		return nil, fmt.Errorf("sim: locality axiom violated: %w", err)
	}
	return replayed, nil
}
