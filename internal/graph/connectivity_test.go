package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteConnectivity computes vertex connectivity by exhaustive removal of
// node subsets, as an oracle for the max-flow implementation. Exponential;
// keep n small.
func bruteConnectivity(g *Graph) int {
	n := g.N()
	if n <= 1 {
		return 0
	}
	if !g.IsConnected() {
		return 0
	}
	complete := true
	for u := 0; u < n && complete; u++ {
		if g.Degree(u) != n-1 {
			complete = false
		}
	}
	if complete {
		return n - 1
	}
	for k := 1; k < n-1; k++ {
		if removalDisconnects(g, k, 0, nil) {
			return k
		}
	}
	return n - 1
}

func removalDisconnects(g *Graph, k, start int, chosen []int) bool {
	if len(chosen) == k {
		keep := make([]int, 0, g.N()-k)
		inChosen := make(map[int]bool, k)
		for _, c := range chosen {
			inChosen[c] = true
		}
		for u := 0; u < g.N(); u++ {
			if !inChosen[u] {
				keep = append(keep, u)
			}
		}
		sub, _ := g.InducedSubgraph(keep)
		return !sub.IsConnected()
	}
	for u := start; u < g.N(); u++ {
		if removalDisconnects(g, k, u+1, append(chosen, u)) {
			return true
		}
	}
	return false
}

func TestVertexConnectivityKnownGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K1", Complete(1), 0},
		{"K3", Complete(3), 2},
		{"K4", Complete(4), 3},
		{"K7", Complete(7), 6},
		{"triangle", Triangle(), 2},
		{"diamond", Diamond(), 2},
		{"ring4", Ring(4), 2},
		{"ring9", Ring(9), 2},
		{"line5", Line(5), 1},
		{"star6", Star(6), 1},
		{"wheel6", Wheel(6), 3},
		{"wheel9", Wheel(9), 3},
		{"circulant9(1,2)", Circulant(9, 1, 2), 4},
		{"circulant11(1,2,3)", Circulant(11, 1, 2, 3), 6},
		{"hypercube3", Hypercube(3), 3},
		{"hypercube4", Hypercube(4), 4},
		{"grid3x3", Grid(3, 3), 2},
		{"K6-matching", CompleteMinusMatching(6), 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.VertexConnectivity(); got != tt.want {
				t.Errorf("VertexConnectivity() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestVertexConnectivityDisconnected(t *testing.T) {
	g := MustNew("a", "b", "c", "d")
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	if got := g.VertexConnectivity(); got != 0 {
		t.Errorf("disconnected graph connectivity = %d, want 0", got)
	}
}

func TestVertexConnectivityMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		for _, p := range []float64{0.3, 0.5, 0.8} {
			g := GNP(7, p, seed)
			want := bruteConnectivity(g)
			if got := g.VertexConnectivity(); got != want {
				t.Errorf("seed=%d p=%v: flow connectivity %d, brute force %d\n%s",
					seed, p, got, want, g)
			}
		}
	}
}

func TestMinVertexCutSeparates(t *testing.T) {
	graphs := []*Graph{Diamond(), Ring(8), Wheel(7), Grid(3, 4), Hypercube(3), Circulant(10, 1, 2)}
	for _, g := range graphs {
		cut, s, u := g.MinVertexCut()
		if s < 0 {
			t.Fatalf("no cut found for non-complete graph\n%s", g)
		}
		if len(cut) != g.VertexConnectivity() {
			t.Errorf("cut size %d != connectivity %d", len(cut), g.VertexConnectivity())
		}
		keep := make([]int, 0, g.N())
		inCut := make(map[int]bool, len(cut))
		for _, c := range cut {
			inCut[c] = true
		}
		if inCut[s] || inCut[u] {
			t.Fatalf("cut contains a separated endpoint")
		}
		for v := 0; v < g.N(); v++ {
			if !inCut[v] {
				keep = append(keep, v)
			}
		}
		sub, orig := g.InducedSubgraph(keep)
		// s and u must land in different components of the remainder.
		comp := map[int]int{}
		for ci, c := range sub.Components() {
			for _, v := range c {
				comp[orig[v]] = ci
			}
		}
		if comp[s] == comp[u] {
			t.Errorf("cut %v does not separate %s from %s", cut, g.Name(s), g.Name(u))
		}
	}
}

func TestMinVertexCutComplete(t *testing.T) {
	cut, s, u := Complete(5).MinVertexCut()
	if cut != nil || s != -1 || u != -1 {
		t.Errorf("complete graph returned cut %v (%d,%d)", cut, s, u)
	}
}

func TestLocalConnectivityAdjacentPair(t *testing.T) {
	g := Diamond()
	// a and b adjacent: direct edge plus path a-d-c-b = 2 disjoint paths.
	if got := g.LocalConnectivity(g.MustIndex("a"), g.MustIndex("b")); got != 2 {
		t.Errorf("local connectivity a,b = %d, want 2", got)
	}
	// a and c non-adjacent: paths via b and via d.
	if got := g.LocalConnectivity(g.MustIndex("a"), g.MustIndex("c")); got != 2 {
		t.Errorf("local connectivity a,c = %d, want 2", got)
	}
}

func TestVertexDisjointPaths(t *testing.T) {
	tests := []struct {
		name  string
		g     *Graph
		s, t  int
		want  int
		limit int
	}{
		{"K5 all", Complete(5), 0, 4, 4, 0},
		{"diamond", Diamond(), 0, 2, 2, 0},
		{"wheel7", Wheel(7), 1, 4, 3, 0},
		{"hypercube3", Hypercube(3), 0, 7, 3, 0},
		{"circulant10 limited", Circulant(10, 1, 2), 0, 5, 3, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			paths, err := tt.g.VertexDisjointPaths(tt.s, tt.t, tt.limit)
			if err != nil {
				t.Fatalf("VertexDisjointPaths: %v", err)
			}
			if len(paths) != tt.want {
				t.Fatalf("got %d paths, want %d: %v", len(paths), tt.want, paths)
			}
			used := map[int]bool{}
			for _, p := range paths {
				if p[0] != tt.s || p[len(p)-1] != tt.t {
					t.Errorf("path %v does not join %d and %d", p, tt.s, tt.t)
				}
				for i := 0; i+1 < len(p); i++ {
					if !tt.g.HasEdge(p[i], p[i+1]) {
						t.Errorf("path %v uses non-edge %d-%d", p, p[i], p[i+1])
					}
				}
				for _, v := range p[1 : len(p)-1] {
					if used[v] {
						t.Errorf("internal node %d reused across paths", v)
					}
					used[v] = true
				}
			}
		})
	}
}

func TestVertexDisjointPathsSameEndpoint(t *testing.T) {
	if _, err := Complete(4).VertexDisjointPaths(1, 1, 0); err == nil {
		t.Error("same endpoints accepted")
	}
}

func TestAdequacy(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		f    int
		want bool
	}{
		{"K3 f=1", Complete(3), 1, false},    // n = 3f
		{"K4 f=1", Complete(4), 1, true},     // n = 3f+1, conn 3 = 2f+1
		{"K6 f=2", Complete(6), 2, false},    // n = 3f
		{"K7 f=2", Complete(7), 2, true},     // n = 3f+1, conn 6 >= 5
		{"diamond f=1", Diamond(), 1, false}, // conn 2 = 2f
		{"wheel7 f=1", Wheel(7), 1, true},    // n=7, conn 3
		{"ring10 f=1", Ring(10), 1, false},   // conn 2
		{"circ10 f=1", Circulant(10, 1, 2), 1, true},
		{"circ13 f=2", Circulant(13, 1, 2), 2, false},      // conn 4 = 2f
		{"circ13 f=2 ok", Circulant(13, 1, 2, 3), 2, true}, // conn 6 >= 5
		{"K4 f=0", Complete(4), 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.IsAdequate(tt.f); got != tt.want {
				t.Errorf("IsAdequate(%d) = %v, want %v (n=%d conn=%d)",
					tt.f, got, tt.want, tt.g.N(), tt.g.VertexConnectivity())
			}
		})
	}
}

func TestMaxTolerableFaults(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K4", Complete(4), 1},
		{"K7", Complete(7), 2},
		{"K10", Complete(10), 3},
		{"diamond", Diamond(), 0},
		{"wheel10", Wheel(10), 1}, // conn 3 limits to f=1
		{"circ13(1,2,3)", Circulant(13, 1, 2, 3), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.MaxTolerableFaults(); got != tt.want {
				t.Errorf("MaxTolerableFaults() = %d, want %d", got, tt.want)
			}
			if tt.want > 0 && !tt.g.IsAdequate(tt.want) {
				t.Errorf("graph not adequate at its own MaxTolerableFaults")
			}
			if tt.g.IsAdequate(tt.want + 1) {
				t.Errorf("graph adequate beyond MaxTolerableFaults")
			}
		})
	}
}

func TestCutForFaults(t *testing.T) {
	// Diamond, f=1: cut {b,d} split into singletons.
	g := Diamond()
	b, d, u, v, err := g.CutForFaults(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1 || len(d) != 1 {
		t.Errorf("halves %v / %v, want singletons", b, d)
	}
	if _, err := CutCover(g, b, d, u, v); err != nil {
		t.Errorf("returned cut unusable: %v", err)
	}
	// Wheel(7) has connectivity 3 > 2f for f=1: bound does not apply.
	if _, _, _, _, err := Wheel(7).CutForFaults(1); err == nil {
		t.Error("over-connected graph accepted")
	}
	// Complete graphs have no cut.
	if _, _, _, _, err := Complete(4).CutForFaults(2); err == nil {
		t.Error("complete graph accepted")
	}
	// An articulation point yields an empty d-half that still works.
	line := Line(3)
	b, d, u, v, err = line.CutForFaults(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1 || len(d) != 0 {
		t.Errorf("halves %v / %v, want one singleton and one empty", b, d)
	}
	if _, err := CutCover(line, b, d, u, v); err != nil {
		t.Errorf("articulation cut unusable: %v", err)
	}
}

// Property: CutForFaults always returns a separating, usable cut when
// connectivity <= 2f.
func TestCutForFaultsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g := GNP(7, 0.4, seed)
		if !g.IsConnected() {
			return true
		}
		conn := g.VertexConnectivity()
		if conn == g.N()-1 {
			return true // complete
		}
		f := (conn + 1) / 2
		b, d, u, v, err := g.CutForFaults(f)
		if err != nil {
			return false
		}
		if len(b) > f || len(d) > f {
			return false
		}
		_, err = CutCover(g, b, d, u, v)
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: adding an edge never decreases vertex connectivity.
func TestConnectivityMonotoneUnderEdgeAddition(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNP(6, 0.4, seed)
		before := g.VertexConnectivity()
		// Add one random missing edge if any.
		var missing [][2]int
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				if !g.HasEdge(u, v) {
					missing = append(missing, [2]int{u, v})
				}
			}
		}
		if len(missing) == 0 {
			return true
		}
		e := missing[rng.Intn(len(missing))]
		g.MustAddEdge(e[0], e[1])
		return g.VertexConnectivity() >= before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: connectivity is at most minimum degree.
func TestConnectivityAtMostMinDegree(t *testing.T) {
	prop := func(seed int64) bool {
		g := GNP(8, 0.5, seed)
		minDeg := g.N()
		for u := 0; u < g.N(); u++ {
			if d := g.Degree(u); d < minDeg {
				minDeg = d
			}
		}
		return g.VertexConnectivity() <= minDeg
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: number of disjoint paths between any pair is at least the
// graph connectivity (Menger, global-to-local direction).
func TestDisjointPathsAtLeastConnectivity(t *testing.T) {
	prop := func(seed int64) bool {
		g := GNP(7, 0.6, seed)
		if !g.IsConnected() {
			return true
		}
		k := g.VertexConnectivity()
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		s := rng.Intn(g.N())
		t := rng.Intn(g.N())
		if s == t {
			return true
		}
		paths, err := g.VertexDisjointPaths(s, t, 0)
		return err == nil && len(paths) >= k
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
