package byzantine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"flm/internal/sim"
)

// maxEIGFlatSlots bounds the flat tree's slot space (sum of n^r over
// levels 1..f+1); peer sets past the bound fall back to the map device.
const maxEIGFlatSlots = 1 << 20

// eigShape is the per-(f, peers) geometry of the flat EIG tree, shared by
// every device a builder constructs (and interned across builders): level
// offsets into the slot space, the interned label string and membership
// bitmask of every valid slot, and the name→digit index. Level r
// (1 <= r <= f+1) occupies n^r slots; the label j1/j2/.../jr lives at
// slot offset[r] + ((j1·n + j2)·n + ...)·n + jr, so a child lookup is
// pure arithmetic and label strings are materialized exactly once, at
// shape construction, rather than per claim per device.
//
// Slots whose digit sequence repeats a peer can never hold a value
// (relay labels are distinct-name sequences); they keep a zero mask and
// an empty label and are skipped by enumeration.
type eigShape struct {
	f      int
	n      int
	peers  []string // sorted, distinct
	index  map[string]int
	offset []int // offset[r] = first slot of level r; offset[f+2] = total
	labels []string
	masks  []uint64
	fp     string

	sortOnce sync.Once
	sorted   []int32 // valid slots ordered by label string, for Snapshot
}

// eigShapes interns shapes by device fingerprint so concurrent sweep
// trials building the same protocol share one geometry.
var eigShapes sync.Map // fingerprint -> *eigShape

// eigShapeFor returns the interned shape for (f, sortedPeers), or nil if
// the flat representation cannot index this peer set: more than 64 peers
// (membership masks are one word), duplicate or empty names, names
// containing claim-codec delimiters, or a slot space past the cap.
func eigShapeFor(f int, sortedPeers []string, fp string) *eigShape {
	if v, ok := eigShapes.Load(fp); ok {
		return v.(*eigShape)
	}
	n := len(sortedPeers)
	if n == 0 || n > 64 || f < 0 {
		return nil
	}
	for i, p := range sortedPeers {
		if p == "" || strings.ContainsAny(p, ";=/") || (i > 0 && p == sortedPeers[i-1]) {
			return nil
		}
	}
	offset := make([]int, f+3)
	levelSize := 1
	total := 0
	for r := 1; r <= f+1; r++ {
		offset[r] = total
		if levelSize > maxEIGFlatSlots/n {
			return nil
		}
		levelSize *= n
		if total > maxEIGFlatSlots-levelSize {
			return nil
		}
		total += levelSize
	}
	offset[f+2] = total

	sh := &eigShape{
		f:      f,
		n:      n,
		peers:  sortedPeers,
		index:  make(map[string]int, n),
		offset: offset,
		labels: make([]string, total),
		masks:  make([]uint64, total),
		fp:     fp,
	}
	for j, p := range sortedPeers {
		sh.index[p] = j
		sh.labels[offset[1]+j] = p
		sh.masks[offset[1]+j] = uint64(1) << uint(j)
	}
	for r := 1; r <= f; r++ {
		lo, hi := offset[r], offset[r+1]
		for s := lo; s < hi; s++ {
			m := sh.masks[s]
			if m == 0 {
				continue
			}
			childBase := offset[r+1] + (s-lo)*n
			for j := 0; j < n; j++ {
				b := uint64(1) << uint(j)
				if m&b != 0 {
					continue
				}
				sh.labels[childBase+j] = sh.labels[s] + "/" + sortedPeers[j]
				sh.masks[childBase+j] = m | b
			}
		}
	}
	actual, _ := eigShapes.LoadOrStore(fp, sh)
	return actual.(*eigShape)
}

// sortedSlots returns the valid slots in lexicographic label order,
// computed once per shape (snapshots are emitted per round per device,
// so the sort must not be paid per call).
func (sh *eigShape) sortedSlots() []int32 {
	sh.sortOnce.Do(func() {
		out := make([]int32, 0, len(sh.masks))
		for s, m := range sh.masks {
			if m != 0 {
				out = append(out, int32(s))
			}
		}
		sort.Slice(out, func(i, j int) bool { return sh.labels[out[i]] < sh.labels[out[j]] })
		sh.sorted = out
	})
	return sh.sorted
}

// eigFlatDevice is the hot-path EIG implementation: the tree lives in a
// contiguous value slice indexed by the shared shape, claims are parsed
// without splitting, and resolution runs on (level, position) pairs with
// small-slice tallies instead of maps. It is observably identical to
// eigMapDevice (TestFlatEIGMatchesMapReference pins this).
//
// Claims relayed by senders outside the peer set — legal Byzantine noise
// the map device stores under labels the flat slot space cannot index —
// go to the extra map, which is nil on every honest execution.
type eigFlatDevice struct {
	shape     *eigShape
	fb        *eigMapDevice // fallback when self is outside the peer index
	self      string
	selfIdx   int
	neighbors []string
	input     string
	vals      []string // slot -> value; "" = absent (stored values are never empty)
	extra     map[string]string
	claims    []string
	senders   []string
	decided   bool
	decision  string
}

var _ sim.Device = (*eigFlatDevice)(nil)
var _ sim.Fingerprinter = (*eigFlatDevice)(nil)

func (d *eigFlatDevice) DeviceFingerprint() string { return d.shape.fp }

func (d *eigFlatDevice) Init(self string, neighbors []string, input sim.Input) {
	d.init(self, sortedNames(neighbors), input)
}

// init takes ownership of the sorted neighbors slice.
func (d *eigFlatDevice) init(self string, neighbors []string, input sim.Input) {
	sh := d.shape
	idx, ok := sh.index[self]
	if !ok {
		// A device whose own node is not a peer stores labels ending in
		// its own name, which the slot space cannot index: delegate to
		// the reference implementation.
		d.fb = &eigMapDevice{f: sh.f, peers: sh.peers, fp: sh.fp}
		d.fb.init(self, neighbors, input)
		return
	}
	d.fb = nil
	d.self = self
	d.selfIdx = idx
	d.neighbors = neighbors
	d.input = sanitizeValue(string(input))
	if d.vals == nil {
		d.vals = make([]string, sh.offset[sh.f+2])
	} else {
		for i := range d.vals {
			d.vals[i] = ""
		}
	}
	d.extra = nil
	d.decided = false
	d.decision = ""
}

func (d *eigFlatDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	if d.fb != nil {
		return d.fb.Step(round, inbox)
	}
	sh := d.shape
	if round > sh.f+1 || d.decided {
		if round == sh.f+1 && !d.decided {
			d.finishAbsorb(round, inbox)
		}
		return nil
	}
	if round == 0 {
		// Self-delivery of the level-1 claim, then broadcast it.
		d.vals[sh.offset[1]+d.selfIdx] = d.input
		return d.broadcast(sim.Payload("=" + d.input))
	}
	d.finishAbsorb(round, inbox)
	if round == sh.f+1 {
		return nil
	}
	claims := d.claimsAndSelfDeliver(round)
	if len(claims) == 0 {
		return d.broadcast(sim.Payload("-")) // keep traffic shape regular
	}
	return d.broadcast(sim.Payload(strings.Join(claims, ";")))
}

func (d *eigFlatDevice) finishAbsorb(round int, inbox sim.Inbox) {
	senders := d.senders[:0]
	for s := range inbox {
		senders = append(senders, s)
	}
	sort.Strings(senders)
	d.senders = senders
	for _, s := range senders {
		d.absorb(s, inbox[s], round)
	}
	if round == d.shape.f+1 {
		d.decision = d.resolveRoot()
		d.decided = true
	}
}

// absorb records the claims of a round-(level) payload, storing
// val(σ·sender) = v for each well-formed claim. The payload is walked in
// place (the claim codec is flat: claims split on ';', label from value
// at the first '='), matching eigMapDevice.absorb claim for claim.
func (d *eigFlatDevice) absorb(sender string, payload sim.Payload, level int) {
	if payload == sim.None {
		return
	}
	sIdx, sPeer := d.shape.index[sender]
	s := string(payload)
	for {
		claim := s
		next := strings.IndexByte(s, ';')
		if next >= 0 {
			claim, s = s[:next], s[next+1:]
		}
		d.absorbClaim(sender, sIdx, sPeer, claim, level)
		if next < 0 {
			return
		}
	}
}

func (d *eigFlatDevice) absorbClaim(sender string, sIdx int, sPeer bool, claim string, level int) {
	eq := strings.IndexByte(claim, '=')
	if eq < 0 {
		return
	}
	label, v := claim[:eq], sanitizeValue(claim[eq+1:])
	sh := d.shape
	// Parse the label into (position, membership, length); any component
	// that is empty, repeated, or not a peer makes the label invalid,
	// exactly as the reference's validLabel.
	pos, mask, ln := 0, uint64(0), 0
	if label != "" {
		rest := label
		for {
			part := rest
			next := strings.IndexByte(rest, '/')
			if next >= 0 {
				part, rest = rest[:next], rest[next+1:]
			}
			j, ok := sh.index[part]
			if !ok {
				return
			}
			b := uint64(1) << uint(j)
			if mask&b != 0 {
				return
			}
			mask |= b
			pos = pos*sh.n + j
			ln++
			if next < 0 {
				break
			}
		}
	}
	if ln != level-1 {
		return
	}
	if sPeer {
		if mask&(uint64(1)<<uint(sIdx)) != 0 {
			return // sender already appears in the label
		}
		slot := sh.offset[ln+1] + pos*sh.n + sIdx
		if d.vals[slot] == "" { // first claim wins; duplicates are Byzantine noise
			d.vals[slot] = v
		}
		return
	}
	// Non-peer sender: the label σ·sender has no slot; keep the
	// reference semantics in the overflow map.
	full := extendLabel(label, sender)
	if _, dup := d.extra[full]; !dup {
		if d.extra == nil {
			d.extra = map[string]string{}
		}
		d.extra[full] = v
	}
}

// claimsAndSelfDeliver collects the sorted level-r claims (labels not
// containing self) and performs self-delivery of each — storing
// val(σ·self) — structurally: the child of slot (r, pos) for self is
// slot (r+1, pos·n + selfIdx), so no claim string is re-parsed.
func (d *eigFlatDevice) claimsAndSelfDeliver(r int) []string {
	sh := d.shape
	claims := d.claims[:0]
	selfBit := uint64(1) << uint(d.selfIdx)
	lo, hi := sh.offset[r], sh.offset[r+1]
	for s := lo; s < hi; s++ {
		v := d.vals[s]
		if v == "" || sh.masks[s]&selfBit != 0 {
			continue
		}
		claims = append(claims, sh.labels[s]+"="+v)
		child := sh.offset[r+1] + (s-lo)*sh.n + d.selfIdx
		if d.vals[child] == "" {
			d.vals[child] = v
		}
	}
	if len(d.extra) > 0 {
		start := len(claims)
		for label, v := range d.extra {
			if labelLen(label) != r || labelContains(label, d.self) {
				continue
			}
			claims = append(claims, label+"="+v)
		}
		for _, c := range claims[start:] {
			eq := strings.IndexByte(c, '=')
			full := extendLabel(c[:eq], d.self)
			if _, dup := d.extra[full]; !dup {
				d.extra[full] = c[eq+1:]
			}
		}
	}
	sort.Strings(claims)
	d.claims = claims
	return claims
}

// resolveRoot computes the root decision value bottom-up: leaves resolve
// to their stored value, internal positions to the strict majority of
// their children, DefaultValue on ties or missing data. The per-level
// tallies run over small parallel slices; ties break to the smallest
// value exactly as the reference's sorted-key scan.
func (d *eigFlatDevice) resolveRoot() string {
	sh := d.shape
	vbuf := make([][]string, sh.f+1)
	cbuf := make([][]int, sh.f+1)
	var rec func(level, pos int, mask uint64) string
	rec = func(level, pos int, mask uint64) string {
		if level == sh.f+1 {
			if v := d.vals[sh.offset[level]+pos]; v != "" {
				return v
			}
			return DefaultValue
		}
		vs, cs := vbuf[level][:0], cbuf[level][:0]
		total := 0
		for j := 0; j < sh.n; j++ {
			b := uint64(1) << uint(j)
			if mask&b != 0 {
				continue
			}
			v := rec(level+1, pos*sh.n+j, mask|b)
			total++
			found := false
			for i := range vs {
				if vs[i] == v {
					cs[i]++
					found = true
					break
				}
			}
			if !found {
				vs, cs = append(vs, v), append(cs, 1)
			}
		}
		vbuf[level], cbuf[level] = vs, cs
		best, bestCount := DefaultValue, 0
		for i, v := range vs {
			if cs[i] > bestCount || (cs[i] == bestCount && v < best) {
				best, bestCount = v, cs[i]
			}
		}
		if 2*bestCount > total {
			return best
		}
		return DefaultValue
	}
	return rec(0, 0, 0)
}

func (d *eigFlatDevice) broadcast(p sim.Payload) sim.Outbox {
	out := sim.Outbox{}
	for _, nb := range d.neighbors {
		out[nb] = p
	}
	return out
}

// Snapshot canonically encodes the whole EIG tree plus decision status,
// byte-identical to eigMapDevice.Snapshot. The common case walks the
// shape's presorted slot order; the extra map (non-peer senders only)
// forces a merged sort.
func (d *eigFlatDevice) Snapshot() string {
	if d.fb != nil {
		return d.fb.Snapshot()
	}
	sh := d.shape
	var b strings.Builder
	fmt.Fprintf(&b, "eig(f=%d,in=%s,dec=%v:%s)", sh.f, d.input, d.decided, d.decision)
	if len(d.extra) == 0 {
		for _, s := range sh.sortedSlots() {
			if v := d.vals[s]; v != "" {
				b.WriteByte('|')
				b.WriteString(sh.labels[s])
				b.WriteByte('=')
				b.WriteString(v)
			}
		}
		return b.String()
	}
	type labelValue struct{ label, value string }
	pairs := make([]labelValue, 0, len(d.extra)+len(d.vals)/4)
	for _, s := range sh.sortedSlots() {
		if v := d.vals[s]; v != "" {
			pairs = append(pairs, labelValue{sh.labels[s], v})
		}
	}
	for l, v := range d.extra {
		pairs = append(pairs, labelValue{l, v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].label < pairs[j].label })
	for _, p := range pairs {
		b.WriteByte('|')
		b.WriteString(p.label)
		b.WriteByte('=')
		b.WriteString(p.value)
	}
	return b.String()
}

func (d *eigFlatDevice) Output() (sim.Decision, bool) {
	if d.fb != nil {
		return d.fb.Output()
	}
	if !d.decided {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: d.decision}, true
}
