package sim

import (
	"fmt"
	"sort"
	"strings"
)

// ReplayDevice is the executable form of the paper's Fault axiom device
// F_A(E_1,...,E_d): installed at a node, it ignores everything it
// receives and plays a prerecorded payload sequence on each outedge
// independently. The recorded sequences may come from different system
// behaviors — that is the masquerading power the axiom grants to faulty
// nodes.
type ReplayDevice struct {
	self    string
	scripts map[string][]Payload // per-neighbor payload sequence
	round   int
	out     Outbox // reused across Steps; see the Device Outbox contract
}

var _ Device = (*ReplayDevice)(nil)
var _ Fingerprinter = (*ReplayDevice)(nil)

// NewReplayDevice builds the Fault-axiom device from per-neighbor payload
// scripts. Missing neighbors stay silent.
//
// The map is cloned (Init prunes it to actual neighbors) but the payload
// slices are shared with the caller, not copied: scripts come from
// recorded runs, runs are immutable once executed, and the device only
// ever reads them. Splice-heavy chains build thousands of replay devices
// from the same covering run, so the sharing is a measurable allocation
// win; TestReplayScriptsNotAliased pins the read-only guarantee.
func NewReplayDevice(scripts map[string][]Payload) *ReplayDevice {
	copied := make(map[string][]Payload, len(scripts))
	for nb, seq := range scripts {
		copied[nb] = seq
	}
	return &ReplayDevice{scripts: copied}
}

// Builder returns a Builder producing replay devices with the given
// scripts, for installation through NewSystem.
func ReplayBuilder(scripts map[string][]Payload) Builder {
	return func(self string, neighbors []string, input Input) Device {
		d := NewReplayDevice(scripts)
		d.Init(self, neighbors, input)
		return d
	}
}

// Init records the node identity. Scripts addressed to non-neighbors are
// dropped, mirroring how a faulty node can only exhibit behavior on its
// actual outedges.
func (d *ReplayDevice) Init(self string, neighbors []string, input Input) {
	d.self = self
	allowed := make(map[string]bool, len(neighbors))
	for _, nb := range neighbors {
		allowed[nb] = true
	}
	for nb := range d.scripts {
		if !allowed[nb] {
			delete(d.scripts, nb)
		}
	}
}

// Step plays round r of every script, ignoring the inbox entirely.
func (d *ReplayDevice) Step(round int, inbox Inbox) Outbox {
	if d.out == nil {
		d.out = make(Outbox, len(d.scripts))
	} else {
		clear(d.out)
	}
	for nb, seq := range d.scripts {
		if round < len(seq) && seq[round] != None {
			d.out[nb] = seq[round]
		}
	}
	d.round = round + 1
	return d.out
}

// Snapshot encodes the replay position and the scripts (canonical order).
func (d *ReplayDevice) Snapshot() string {
	nbs := make([]string, 0, len(d.scripts))
	for nb := range d.scripts {
		nbs = append(nbs, nb)
	}
	sort.Strings(nbs)
	var b strings.Builder
	fmt.Fprintf(&b, "replay@%d", d.round)
	for _, nb := range nbs {
		fmt.Fprintf(&b, ";%s", nb)
	}
	return b.String()
}

// Output never decides: a faulty node's "choice" is irrelevant to every
// correctness condition.
func (d *ReplayDevice) Output() (Decision, bool) { return Decision{}, false }

// DeviceFingerprint canonically encodes the post-Init scripts — a replay
// device's behavior is its script content, nothing else — making spliced
// G-systems content-addressable.
func (d *ReplayDevice) DeviceFingerprint() string {
	nbs := make([]string, 0, len(d.scripts))
	total := 0
	for nb, seq := range d.scripts {
		nbs = append(nbs, nb)
		total += len(nb) + 8
		for _, p := range seq {
			total += len(p) + 8
		}
	}
	sort.Strings(nbs)
	var b strings.Builder
	b.Grow(len("replay") + total)
	b.WriteString("replay")
	for _, nb := range nbs {
		seq := d.scripts[nb]
		fmt.Fprintf(&b, "|%d:%s:%d", len(nb), nb, len(seq))
		for _, p := range seq {
			fmt.Fprintf(&b, ",%d:%s", len(p), p)
		}
	}
	return b.String()
}
