package core

import (
	"testing"

	"flm/internal/byzantine"
	"flm/internal/graph"
	"flm/internal/sim"
)

func hexInputs(v0, v1 sim.Input) map[string]sim.Input {
	return map[string]sim.Input{
		"r0": v0, "r1": v0, "r2": v0,
		"r3": v1, "r4": v1, "r5": v1,
	}
}

func TestInstallCoverValidation(t *testing.T) {
	cover := graph.HexCover()
	builders := uniformBuilders(graph.Triangle(), byzantine.NewMajority(2))
	// Missing input.
	inputs := hexInputs("0", "1")
	delete(inputs, "r4")
	if _, err := InstallCover(cover, builders, inputs); err == nil {
		t.Error("missing input accepted")
	}
	// Missing builder.
	partial := map[string]sim.Builder{"a": byzantine.NewMajority(2)}
	if _, err := InstallCover(cover, partial, hexInputs("0", "1")); err == nil {
		t.Error("missing builder accepted")
	}
	// Invalid cover.
	bad := &graph.Cover{S: graph.Ring(4), G: graph.Triangle(), Phi: []int{0, 1, 2, 0}}
	if _, err := InstallCover(bad, builders, map[string]sim.Input{
		"r0": "0", "r1": "0", "r2": "0", "r3": "0",
	}); err == nil {
		t.Error("invalid cover accepted")
	}
}

// The covering property made concrete: with UNIFORM inputs the hexagon is
// globally indistinguishable from the triangle, so every S-node's
// snapshot sequence equals its image's in the plain triangle run.
func TestInstallCoverIndistinguishability(t *testing.T) {
	tri := graph.Triangle()
	builders := uniformBuilders(tri, byzantine.NewEIG(1, tri.Names()))
	cover := graph.HexCover()
	inst, err := InstallCover(cover, builders, hexInputs("1", "1"))
	if err != nil {
		t.Fatal(err)
	}
	runS, err := inst.Execute(5)
	if err != nil {
		t.Fatal(err)
	}
	p := sim.Protocol{Builders: builders, Inputs: map[string]sim.Input{"a": "1", "b": "1", "c": "1"}}
	sys, err := sim.NewSystem(tri, p)
	if err != nil {
		t.Fatal(err)
	}
	runG, err := sim.Execute(sys, 5)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cover.S.N(); s++ {
		sName := cover.S.Name(s)
		gName := cover.G.Name(cover.Phi[s])
		div, err := sim.PrefixEqual(runS, sName, runG, gName)
		if err != nil {
			t.Fatal(err)
		}
		if div != 5 {
			t.Errorf("%s diverged from %s at round %d despite uniform inputs", sName, gName, div)
		}
	}
}

// Executing an installation twice yields identical behavior (fresh
// devices each time).
func TestInstallationReusable(t *testing.T) {
	cover := graph.HexCover()
	builders := uniformBuilders(graph.Triangle(), byzantine.NewMajority(2))
	inst, err := InstallCover(cover, builders, hexInputs("0", "1"))
	if err != nil {
		t.Fatal(err)
	}
	runA, err := inst.Execute(6)
	if err != nil {
		t.Fatal(err)
	}
	runB, err := inst.Execute(6)
	if err != nil {
		t.Fatal(err)
	}
	scA, _ := sim.Extract(runA, cover.S.Names())
	scB, _ := sim.Extract(runB, cover.S.Names())
	if err := scA.EqualUnder(scB, nil, true); err != nil {
		t.Errorf("re-execution diverged: %v", err)
	}
}

func TestSpliceValidation(t *testing.T) {
	cover := graph.HexCover()
	builders := uniformBuilders(graph.Triangle(), byzantine.NewMajority(2))
	inst, err := InstallCover(cover, builders, hexInputs("0", "1"))
	if err != nil {
		t.Fatal(err)
	}
	runS, err := inst.Execute(6)
	if err != nil {
		t.Fatal(err)
	}
	// Antipodal nodes map to the same G-node: not injective.
	if _, err := SpliceScenario(inst, runS, []int{0, 3}, builders); err == nil {
		t.Error("non-injective scenario accepted")
	}
	// Non-adjacent S-nodes whose images are adjacent: not isomorphic.
	if _, err := SpliceScenario(inst, runS, []int{0, 2}, builders); err == nil {
		t.Error("non-isomorphic scenario accepted")
	}
	// Missing builder for a correct node.
	if _, err := SpliceScenario(inst, runS, []int{1, 2},
		map[string]sim.Builder{"b": byzantine.NewMajority(2)}); err == nil {
		t.Error("missing builder accepted")
	}
}

// Splicing the whole fiber-free subset (a single node) works: one correct
// node, two faulty masqueraders.
func TestSpliceSingleNode(t *testing.T) {
	cover := graph.HexCover()
	builders := uniformBuilders(graph.Triangle(), byzantine.NewMajority(2))
	inst, err := InstallCover(cover, builders, hexInputs("0", "1"))
	if err != nil {
		t.Fatal(err)
	}
	runS, err := inst.Execute(6)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SpliceScenario(inst, runS, []int{4}, builders)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Correct) != 1 || len(sp.Faulty) != 2 {
		t.Errorf("splice shape: %v / %v", sp.Correct, sp.Faulty)
	}
	if _, err := sp.DecisionOfS("r4"); err != nil {
		t.Errorf("DecisionOfS: %v", err)
	}
	if _, err := sp.DecisionOfS("r1"); err == nil {
		t.Error("DecisionOfS accepted a node outside the splice")
	}
}
