package dolev

import (
	"testing"

	"flm/internal/adversary"
	"flm/internal/byzantine"
	"flm/internal/graph"
	"flm/internal/sim"
)

func TestNewRouterRejectsLowConnectivity(t *testing.T) {
	if _, err := NewRouter(graph.Ring(6), 1); err == nil {
		t.Error("ring (connectivity 2) accepted for f=1")
	}
	if _, err := NewRouter(graph.Wheel(7), 2); err == nil {
		t.Error("wheel (connectivity 3) accepted for f=2")
	}
}

func TestRouterPathsAreDisjointAndComplete(t *testing.T) {
	g := graph.Wheel(7)
	r, err := NewRouter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumPaths() != 3 {
		t.Fatalf("NumPaths = %d", r.NumPaths())
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			used := map[int]bool{}
			for idx := 0; idx < r.NumPaths(); idx++ {
				p := r.Path(u, v, idx)
				if p == nil {
					t.Fatalf("missing path %d for %d->%d", idx, u, v)
				}
				if p[0] != u || p[len(p)-1] != v {
					t.Errorf("path %v does not join %d->%d", p, u, v)
				}
				for i := 0; i+1 < len(p); i++ {
					if !g.HasEdge(p[i], p[i+1]) {
						t.Errorf("path %v uses non-edge", p)
					}
				}
				for _, mid := range p[1 : len(p)-1] {
					if used[mid] {
						t.Errorf("paths %d->%d share internal node %d", u, v, mid)
					}
					used[mid] = true
				}
			}
		}
	}
	if r.Path(0, 1, 99) != nil {
		t.Error("out-of-range path index returned a path")
	}
}

func TestReversePathsMirror(t *testing.T) {
	g := graph.Circulant(8, 1, 2)
	r, err := NewRouter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < r.NumPaths(); idx++ {
		fwd, rev := r.Path(0, 5, idx), r.Path(5, 0, idx)
		if len(fwd) != len(rev) {
			t.Fatalf("path %d lengths differ", idx)
		}
		for i := range fwd {
			if fwd[i] != rev[len(rev)-1-i] {
				t.Errorf("path %d not mirrored: %v vs %v", idx, fwd, rev)
			}
		}
	}
}

func overlayTrial(t *testing.T, g *graph.Graph, f, bits int, badNode string, corrupt func(sim.Builder) sim.Builder) byzantine.Report {
	t.Helper()
	r, err := NewRouter(g, f)
	if err != nil {
		t.Fatal(err)
	}
	honest := Overlay(r, byzantine.NewEIG(f, g.Names()))
	inputs := make(map[string]sim.Input, g.N())
	for i, name := range g.Names() {
		inputs[name] = sim.BoolInput(bits&(1<<uint(i)) != 0)
	}
	trial := byzantine.Trial{
		G:      g,
		Inputs: inputs,
		Honest: honest,
		Rounds: r.Rounds(byzantine.EIGRounds(f)),
	}
	if badNode != "" {
		trial.Faulty = map[string]sim.Builder{badNode: corrupt(honest)}
	}
	_, _, rep, err := trial.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestOverlayEIGFaultFreeOnWheel(t *testing.T) {
	g := graph.Wheel(7) // connectivity 3 = 2f+1, n = 7 >= 3f+1
	for _, bits := range []int{0, 0x7f, 0x2a, 0x15, 0x63} {
		rep := overlayTrial(t, g, 1, bits, "", nil)
		if !rep.OK() {
			t.Errorf("bits=%x: %v", bits, rep.Err())
		}
	}
}

func TestOverlayEIGOneFaultOnWheel(t *testing.T) {
	g := graph.Wheel(7)
	for _, bits := range []int{0, 0x7f, 0x36} {
		for _, badNode := range []string{"w0", "w3"} { // hub and rim
			for _, strat := range adversary.Panel(19) {
				rep := overlayTrial(t, g, 1, bits, badNode, strat.Corrupt)
				if !rep.OK() {
					t.Errorf("bits=%x bad=%s strat=%s: %v", bits, badNode, strat.Name, rep.Err())
				}
			}
		}
	}
}

func TestOverlayEIGOnCirculant(t *testing.T) {
	// Circulant(7,{1,2}) has connectivity 4 >= 3 and n = 7 >= 4: adequate
	// for f=1 with margin.
	g := graph.Circulant(7, 1, 2)
	for _, strat := range adversary.Panel(23) {
		rep := overlayTrial(t, g, 1, 0x55, "c2", strat.Corrupt)
		if !rep.OK() {
			t.Errorf("strat=%s: %v", strat.Name, rep.Err())
		}
	}
}

func TestOverlayStretchMatchesLongestPath(t *testing.T) {
	g := graph.Wheel(7)
	r, err := NewRouter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	maxLen := 0
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			for idx := 0; idx < r.NumPaths(); idx++ {
				if p := r.Path(u, v, idx); len(p)-1 > maxLen {
					maxLen = len(p) - 1
				}
			}
		}
	}
	if r.StretchFactor() != maxLen {
		t.Errorf("stretch %d, want %d", r.StretchFactor(), maxLen)
	}
}

func TestPieceCodecRejectsGarbage(t *testing.T) {
	g := graph.Complete(4)
	r, err := NewRouter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"", "nonsense", "p0>p1>0,1,0", "p0>p1>0,1,0,ZZ", "zz>p1>0,1,0,ab",
		"p0>p1>x,1,0,ab", "p0>p1,1,0,ab", "p0>p1>0,x,0,ab", "p0>p1>0,1,x,ab",
	} {
		if _, ok := decodePiece(r, bad); ok {
			t.Errorf("garbage piece %q decoded", bad)
		}
	}
	good := piece{origin: 0, dest: 1, pathIdx: 0, hop: 1, innerRound: 2, payload: "ab"}
	decoded, ok := decodePiece(r, good.encode(r))
	if !ok || decoded != good {
		t.Errorf("round trip failed: %+v vs %+v", decoded, good)
	}
}

// A piece forged with a wrong claimed sender position must be dropped: a
// faulty node can corrupt only paths through itself.
func TestIngestRejectsWrongHop(t *testing.T) {
	g := graph.Complete(4)
	r, err := NewRouter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	builder := Overlay(r, byzantine.NewEIG(1, g.Names()))
	d := builder("p2", []string{"p0", "p1", "p3"}, "1").(*overlayDevice)
	// A direct path p0->p2 has the form [p0 p2]; a piece claiming hop 1
	// from the wrong sender p1 must be rejected.
	path := r.Path(0, 2, 0)
	if len(path) != 2 {
		t.Fatalf("expected direct path, got %v", path)
	}
	forged := piece{origin: 0, dest: 2, pathIdx: 0, hop: 1, innerRound: 0, payload: "ab"}
	d.ingest(sim.Inbox{"p1": sim.Payload(forged.encode(r))})
	if len(d.arrived) != 0 {
		t.Error("forged piece accepted from wrong sender")
	}
	// The same piece from the true sender is accepted.
	d.ingest(sim.Inbox{"p0": sim.Payload(forged.encode(r))})
	if len(d.arrived) != 1 {
		t.Error("authentic piece rejected")
	}
}
