package eval

import (
	"strings"
	"testing"
)

// Pins for the ablation experiments' headline facts (the full run is
// covered by TestAllExperimentsRun; these assert the *content*).

func TestE15SignedAgreementPassesEverywhere(t *testing.T) {
	res, err := RunE15()
	if err != nil {
		t.Fatal(err)
	}
	panel := res.Tables[0]
	for _, row := range panel.Rows {
		if row[4] != row[5] {
			t.Errorf("signed agreement failed some configs on %s: %s/%s", row[0], row[4], row[5])
		}
	}
	// The triangle row must be an unsigned-inadequate graph.
	if panel.Rows[0][0] != "K3" || panel.Rows[0][3] != "false" {
		t.Errorf("first row should be the inadequate triangle: %v", panel.Rows[0])
	}
	// Every hexagon splice must be rejected.
	verdicts := res.Tables[1]
	for _, row := range verdicts.Rows {
		if !strings.HasPrefix(row[1], "REJECTED") {
			t.Errorf("splice %s not rejected: %s", row[0], row[1])
		}
	}
}

func TestE16DelayAblationShape(t *testing.T) {
	res, err := RunE16()
	if err != nil {
		t.Fatal(err)
	}
	fn4 := res.Tables[0]
	brokenAtPositiveDelay := false
	for _, row := range fn4.Rows {
		if row[1] != "agreement holds" {
			t.Errorf("adversary %s broke the zero-delay algorithm: %s", row[0], row[1])
		}
		if strings.HasPrefix(row[2], "BROKEN") {
			brokenAtPositiveDelay = true
		}
	}
	if !brokenAtPositiveDelay {
		t.Error("no adversary broke the algorithm under a positive minimum delay")
	}
	scaling := res.Tables[1]
	if scaling.Rows[0][1] != "true" || scaling.Rows[1][1] != "false" {
		t.Errorf("scaling table wrong: %v", scaling.Rows)
	}
}

func TestE17FrontierVerdictsComputed(t *testing.T) {
	res, err := RunE17()
	if err != nil {
		t.Fatal(err)
	}
	census := res.Tables[0]
	panel := attackSweepPanelSize()
	for _, row := range census.Rows {
		adequate := row[4] == "true"
		verdict := row[5]
		if adequate && !strings.Contains(verdict, "passes") {
			t.Errorf("%s: adequate but verdict %q", row[0], verdict)
		}
		if !adequate && !strings.Contains(verdict, "engine") {
			t.Errorf("%s: inadequate but verdict %q", row[0], verdict)
		}
		if adequate && !strings.Contains(verdict, "/") {
			t.Errorf("%s: no sweep total in %q", row[0], verdict)
		}
	}
	if panel < 7 {
		t.Errorf("attack panel shrank to %d strategies", panel)
	}
}

func TestE9MessageComplexityShape(t *testing.T) {
	res, err := RunE9()
	if err != nil {
		t.Fatal(err)
	}
	var mc *Table
	for _, tbl := range res.Tables {
		if strings.HasPrefix(tbl.Title, "Communication cost") {
			mc = tbl
		}
	}
	if mc == nil {
		t.Fatal("message complexity table missing")
	}
	// EIG's max payload grows superlinearly with f; phase king's stays 1.
	var eigMax, pkMax []string
	for _, row := range mc.Rows {
		if row[0] == "eig" {
			eigMax = append(eigMax, row[6])
		} else {
			pkMax = append(pkMax, row[6])
		}
	}
	if len(eigMax) != 3 || len(pkMax) != 3 {
		t.Fatalf("rows: eig=%d pk=%d", len(eigMax), len(pkMax))
	}
	for _, v := range pkMax {
		if v != "1" {
			t.Errorf("phase king payload %s, want 1", v)
		}
	}
	if eigMax[2] <= eigMax[0] { // string compare is fine: "5543" > "14"... careful
		// Compare lengths instead: payload digit count must grow.
		if len(eigMax[2]) <= len(eigMax[0]) {
			t.Errorf("EIG payload did not grow: %v", eigMax)
		}
	}
}
