package firingsquad

import (
	"testing"

	"flm/internal/adversary"
	"flm/internal/graph"
	"flm/internal/sim"
)

func runFS(t *testing.T, g *graph.Graph, honest sim.Builder, stimulated map[string]bool,
	faulty map[string]sim.Builder, rounds int) (*sim.Run, []string) {
	t.Helper()
	p := sim.Protocol{Builders: map[string]sim.Builder{}, Inputs: map[string]sim.Input{}}
	var correct []string
	for _, name := range g.Names() {
		p.Inputs[name] = sim.BoolInput(stimulated[name])
		if fb, bad := faulty[name]; bad {
			p.Builders[name] = fb
		} else {
			p.Builders[name] = honest
			correct = append(correct, name)
		}
	}
	sys, err := sim.NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Execute(sys, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return run, correct
}

func TestViaBAFiresOnStimulus(t *testing.T) {
	g := graph.Complete(4)
	honest := NewViaBA(1, g.Names())
	for _, stimSet := range []map[string]bool{
		{"p0": true},
		{"p2": true},
		{"p0": true, "p1": true, "p2": true, "p3": true},
	} {
		run, correct := runFS(t, g, honest, stimSet, nil, Rounds(1))
		rep := Check(run, correct, true, true)
		if !rep.OK() {
			t.Errorf("stim=%v: %v", stimSet, rep.Err())
		}
		for _, name := range correct {
			d, _ := run.DecisionOf(name)
			if d.Value != Fired || d.Round != FireTime(1) {
				t.Errorf("stim=%v: %s fired %q at %d, want FIRE at %d", stimSet, name, d.Value, d.Round, FireTime(1))
			}
		}
	}
}

func TestViaBASilentWithoutStimulus(t *testing.T) {
	g := graph.Complete(4)
	run, correct := runFS(t, g, NewViaBA(1, g.Names()), nil, nil, Rounds(1)+3)
	rep := Check(run, correct, true, false)
	if !rep.OK() {
		t.Errorf("no stimulus: %v", rep.Err())
	}
}

func TestViaBASimultaneousUnderFaults(t *testing.T) {
	g := graph.Complete(4)
	honest := NewViaBA(1, g.Names())
	for _, strat := range adversary.Panel(31) {
		for _, stim := range []map[string]bool{nil, {"p1": true}} {
			run, correct := runFS(t, g, honest, stim,
				map[string]sim.Builder{"p0": strat.Corrupt(honest)}, Rounds(1)+2)
			// With a fault only simultaneity binds (a faulty node can
			// fake or suppress its own stimulus report).
			rep := Check(run, correct, false, len(stim) > 0)
			if rep.Agreement != nil {
				t.Errorf("strat=%s stim=%v: %v", strat.Name, stim, rep.Agreement)
			}
		}
	}
}

func TestViaBAStimulusAtCorrectNodeAlwaysFires(t *testing.T) {
	// If a *correct* node holds the stimulus, its round-0 broadcast
	// reaches every correct node, making the BA input unanimous... only
	// when all are correct. With a fault, firing is permitted but not
	// forced; verify the all-correct case plus simultaneity above.
	g := graph.Complete(7)
	honest := NewViaBA(2, g.Names())
	run, correct := runFS(t, g, honest, map[string]bool{"p6": true}, nil, Rounds(2))
	rep := Check(run, correct, true, true)
	if !rep.OK() {
		t.Errorf("f=2 stimulus: %v", rep.Err())
	}
}

func TestCountdownAllCorrect(t *testing.T) {
	g := graph.Complete(4)
	run, correct := runFS(t, g, NewCountdown(3), map[string]bool{"p1": true}, nil, 8)
	rep := Check(run, correct, true, true)
	if !rep.OK() {
		t.Errorf("countdown all-correct: %v", rep.Err())
	}
	run, correct = runFS(t, g, NewCountdown(3), nil, nil, 8)
	rep = Check(run, correct, true, false)
	if !rep.OK() {
		t.Errorf("countdown no-stimulus: %v", rep.Err())
	}
}

func TestCountdownForgeableOrigins(t *testing.T) {
	// A faulty node claiming a stale origin late staggers fire times.
	g := graph.Complete(4)
	honest := NewCountdown(3)
	liar := sim.ReplayBuilder(map[string][]sim.Payload{
		"p1": {"", "", "", "", "", "S0"}, // tells p1 about a round-0 stimulus at round 5
	})
	run, correct := runFS(t, g, honest, nil, map[string]sim.Builder{"p0": liar}, 10)
	rep := Check(run, correct, false, false)
	if rep.Agreement == nil {
		t.Error("forged origin did not break simultaneity")
	}
}

func TestCheckReportsNonSimultaneousFiring(t *testing.T) {
	g := graph.Complete(3)
	// Devices with different fuses fire at different rounds.
	p := sim.Protocol{
		Builders: map[string]sim.Builder{
			"p0": NewCountdown(2),
			"p1": NewCountdown(3),
			"p2": NewCountdown(2),
		},
		Inputs: map[string]sim.Input{"p0": "1", "p1": "0", "p2": "0"},
	}
	sys, err := sim.NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Execute(sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(run, g.Names(), true, true)
	if rep.Agreement == nil {
		t.Error("staggered firing passed the agreement condition")
	}
}

func TestCheckValidityBranches(t *testing.T) {
	g := graph.Complete(3)
	// Nobody fires despite stimulus: validity violation.
	run, correct := runFS(t, g, NewCountdown(100), map[string]bool{"p0": true}, nil, 5)
	rep := Check(run, correct, true, true)
	if rep.Validity == nil {
		t.Error("non-firing stimulated run passed validity")
	}
	// Firing without stimulus: validity violation. Simulate via a fuse-0
	// device that thinks it was stimulated.
	run, correct = runFS(t, g, NewCountdown(2), map[string]bool{"p0": true}, nil, 6)
	rep = Check(run, correct, true, false) // claim: no stimulus occurred
	if rep.Validity == nil {
		t.Error("firing run passed validity with stimulated=false")
	}
}
