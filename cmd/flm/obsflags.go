package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"flm"
	"flm/internal/obs"
)

// TraceEnv is the environment fallback for the -trace flag: when the
// flag is not given, a non-empty FLM_TRACE names the JSONL destination.
// This is the *instrumentation* trace (spans + metrics); the `flm trace`
// subcommand, which prints a protocol traffic trace, is unrelated.
const TraceEnv = "FLM_TRACE"

// traceTarget resolves the trace destination: the -trace flag wins,
// then FLM_TRACE, then "" (tracing off).
func traceTarget(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	return os.Getenv(TraceEnv)
}

// startTrace installs a process-wide JSONL tracer writing to path and
// returns a cleanup that flushes the trace (appending the final metrics
// line) and uninstalls the tracer. An empty path is tracing off: the
// cleanup is a no-op and the engine runs its instrumentation-free path.
func startTrace(path string, out io.Writer) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	t := obs.NewTracer(f)
	restore := obs.SetTracer(t)
	return func() {
		restore()
		if err := t.Close(); err != nil {
			fmt.Fprintf(out, "trace: %v\n", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(out, "trace: %v\n", err)
		}
	}, nil
}

// runExperiment runs one registered experiment, under tracing wrapped in
// a "flm.experiment" span that books the run-cache and splice-cache
// deltas this experiment alone produced (runcache.Stats.Since), so
// consecutive experiments in `flm all` don't bleed counters into each
// other's attribution.
func runExperiment(e flm.Experiment) (*flm.ExperimentResult, error) {
	if !obs.Enabled() {
		return e.Run()
	}
	runBefore, spliceBefore := flm.RunCacheStats(), flm.SpliceCacheStats()
	obs.SetProgressPhase(e.ID)
	defer obs.SetProgressPhase("")
	_, span := obs.StartSpan(context.Background(), "flm.experiment",
		obs.Str("id", e.ID), obs.Str("name", e.Name))
	res, err := e.Run()
	rc := flm.RunCacheStats().Since(runBefore)
	sc := flm.SpliceCacheStats().Since(spliceBefore)
	span.SetAttrs(
		obs.Int64("runcache_hits", int64(rc.Hits)),
		obs.Int64("runcache_misses", int64(rc.Misses)),
		obs.Int64("runcache_waits", int64(rc.Waits)),
		obs.Int64("runcache_disk_hits", int64(rc.DiskHits)),
		obs.Int64("runcache_evictions", int64(rc.Evictions)),
		obs.F64("runcache_hit_rate", rc.HitRate()),
		obs.Int64("splicecache_hits", int64(sc.Hits)),
		obs.Int64("splicecache_misses", int64(sc.Misses)))
	if err != nil {
		span.SetAttrs(obs.Str("error", err.Error()))
	}
	span.End()
	return res, err
}
