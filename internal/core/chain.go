package core

import (
	"context"
	"fmt"
	"strings"

	"flm/internal/graph"
	"flm/internal/obs"
	"flm/internal/sim"
)

// Violation records one broken correctness condition in one constructed
// behavior of G.
type Violation struct {
	Link      string // which behavior in the chain, e.g. "E2"
	Condition string // "termination", "agreement", "validity", "envelope", ...
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s violated: %s", v.Link, v.Condition, v.Detail)
}

// Link is one constructed correct behavior of G in a contradiction chain,
// together with what the paper's argument expects of it.
type Link struct {
	Name    string   // E1, E2, ...
	Splice  *Splice  // the constructed run of G
	Expect  string   // human-readable statement of the forced conclusion
	Correct []string // G-names of correct nodes
	Faulty  []string // G-names of faulty nodes
}

// addLink appends one constructed behavior to the contradiction chain
// and, under tracing, emits a "core.chain.link" span describing the
// chain's structure: the theorem, the link's name and depth, its correct
// and faulty G-sets, the spliced S-subset, and the correct nodes shared
// with the previous link — the overlap the paper's argument rides on
// (E2 inherits c's behavior from E1 and donates a's to E3). Debugging a
// failed chain starts from exactly this record.
func (cr *ChainResult) addLink(l Link) {
	if obs.Enabled() {
		_, span := obs.StartSpan(context.Background(), "core.chain.link",
			obs.Str("theorem", cr.Theorem),
			obs.Str("link", l.Name),
			obs.Int("depth", len(cr.Links)+1),
			obs.Str("correct", strings.Join(l.Correct, ",")),
			obs.Str("faulty", strings.Join(l.Faulty, ",")))
		if l.Splice != nil {
			span.SetAttrs(obs.Str("spliced", strings.Join(l.Splice.UNodes, ",")))
		}
		if n := len(cr.Links); n > 0 {
			span.SetAttrs(obs.Str("shared_correct",
				strings.Join(intersect(cr.Links[n-1].Correct, l.Correct), ",")))
		}
		span.End()
	}
	cr.Links = append(cr.Links, l)
}

// intersect returns the names present in both sorted-or-not slices, in
// a's order. Chains are three to a few dozen links of at most a handful
// of nodes, so the quadratic scan is irrelevant.
func intersect(a, b []string) []string {
	var out []string
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

// ChainResult is the outcome of running an impossibility argument against
// concrete devices: the covering run, the chain of spliced behaviors, and
// the violations found. The theorem guarantees Violations is non-empty;
// an empty list is reported as an engine error by the per-theorem
// drivers.
type ChainResult struct {
	Theorem    string // "Theorem 1 (nodes)", ...
	Problem    string // "Byzantine agreement", ...
	Device     string // description of the devices under test
	F          int    // fault bound
	G          *graph.Graph
	CoverSize  int
	RunS       *sim.Run
	Links      []Link
	Violations []Violation
}

// Contradicted reports whether the engine found at least one violated
// condition — i.e. the devices failed, as the theorem requires.
func (cr *ChainResult) Contradicted() bool { return len(cr.Violations) > 0 }

// String renders the chain in the style of the paper's argument.
func (cr *ChainResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s, f=%d, |G|=%d (inadequate), covering |S|=%d\n",
		cr.Theorem, cr.Problem, cr.F, cr.G.N(), cr.CoverSize)
	fmt.Fprintf(&b, "devices: %s\n", cr.Device)
	for _, link := range cr.Links {
		fmt.Fprintf(&b, "  %s: correct {%s}, faulty {%s} — expect %s\n",
			link.Name, strings.Join(link.Correct, ","), strings.Join(link.Faulty, ","), link.Expect)
	}
	if len(cr.Violations) == 0 {
		b.WriteString("  NO VIOLATION FOUND (engine error)\n")
	}
	for _, v := range cr.Violations {
		fmt.Fprintf(&b, "  ** %s\n", v)
	}
	return b.String()
}

// addBAViolations evaluates Byzantine-agreement style conditions on a
// spliced run and appends any violations. want is the decision forced by
// validity ("" when only agreement/termination apply).
func (cr *ChainResult) addBAViolations(linkName string, sp *Splice, want string) {
	decided := map[string]string{}
	for _, name := range sp.Correct {
		d, err := sp.Run.DecisionOf(name)
		if err != nil || d.Value == "" {
			cr.Violations = append(cr.Violations, Violation{
				Link: linkName, Condition: "termination",
				Detail: fmt.Sprintf("correct node %s never decided", name),
			})
			continue
		}
		decided[name] = d.Value
	}
	first := ""
	for _, name := range sp.Correct {
		v, ok := decided[name]
		if !ok {
			continue
		}
		if first == "" {
			first = v
		} else if v != first {
			cr.Violations = append(cr.Violations, Violation{
				Link: linkName, Condition: "agreement",
				Detail: fmt.Sprintf("correct nodes decided both %s and %s", first, v),
			})
			break
		}
	}
	if want == "" {
		return
	}
	for _, name := range sp.Correct {
		if v, ok := decided[name]; ok && v != want {
			cr.Violations = append(cr.Violations, Violation{
				Link: linkName, Condition: "validity",
				Detail: fmt.Sprintf("unanimous correct input %s but %s decided %s", want, name, v),
			})
			break
		}
	}
}

// copyInputs assigns the canonical two-copy inputs: every ".0" node gets
// zero's encoding and every ".1" node gets one's.
func copyInputs(s *graph.Graph, zero, one sim.Input) map[string]sim.Input {
	inputs := make(map[string]sim.Input, s.N())
	for _, name := range s.Names() {
		if strings.HasSuffix(name, ".1") {
			inputs[name] = one
		} else {
			inputs[name] = zero
		}
	}
	return inputs
}

// namesOf maps node indices to names.
func namesOf(g *graph.Graph, idx []int) []string {
	names := make([]string, len(idx))
	for i, u := range idx {
		names[i] = g.Name(u)
	}
	return names
}
