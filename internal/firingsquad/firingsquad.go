// Package firingsquad implements the Byzantine firing squad problem of
// FLM85 Section 5: one or more nodes may receive a stimulus at time 0
// (input 1); correct nodes must enter a designated FIRE state
// simultaneously, and — when all nodes are correct — must fire iff a
// stimulus occurred somewhere. FLM85 Theorem 4 shows the problem needs
// 3f+1 nodes and 2f+1 connectivity under the Bounded-Delay Locality
// axiom; on adequate complete graphs the reduction to Byzantine agreement
// (broadcast the stimulus, agree on whether anyone saw it, fire at a
// fixed round) solves it.
package firingsquad

import (
	"fmt"
	"sort"
	"strings"

	"flm/internal/byzantine"
	"flm/internal/sim"
)

// Fired is the decision value that represents entering the FIRE state;
// the simulator's Decision.Round is the fire time.
const Fired = "FIRE"

// viaBA solves the firing squad on complete graphs with n >= 3f+1:
// round 0 broadcasts the stimulus bit, then EIG agreement runs on "did I
// hear any stimulus claim", and a positive outcome fires at the fixed
// round f+3. Agreement makes firing simultaneous; with all nodes correct
// the round-0 broadcast makes the EIG input unanimous, giving validity.
type viaBA struct {
	self      string
	neighbors []string
	f         int
	peers     []string
	stimulus  bool
	heard     bool
	inner     sim.Device
	fired     bool
	fireRound int
}

var _ sim.Device = (*viaBA)(nil)
var _ sim.Fingerprinter = (*viaBA)(nil)

// DeviceFingerprint is the constructor identity: fault bound and peer
// set. The inner EIG device is created during Step from these plus the
// stimulus traffic, so it needs no separate identity.
func (d *viaBA) DeviceFingerprint() string {
	return fmt.Sprintf("fs/viaba:f=%d,peers=%s", d.f, strings.Join(d.peers, ","))
}

// NewViaBA returns a builder for firing-squad devices tolerating f
// faults among the given peers.
func NewViaBA(f int, peers []string) sim.Builder {
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &viaBA{f: f, peers: sorted}
		d.Init(self, neighbors, input)
		return d
	}
}

func (d *viaBA) Init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.neighbors = append([]string(nil), neighbors...)
	sort.Strings(d.neighbors)
	d.stimulus = string(input) == "1"
	d.fireRound = -1
}

// FireTime returns the round at which a positive outcome fires:
// 1 (stimulus broadcast) + f+2 (EIG) giving round index f+3 as the step
// in which every correct device enters FIRE.
func FireTime(f int) int { return f + 3 }

// Rounds returns the simulator rounds needed to observe firing.
func Rounds(f int) int { return FireTime(f) + 1 }

func (d *viaBA) Step(round int, inbox sim.Inbox) sim.Outbox {
	switch {
	case round == 0:
		// Broadcast the stimulus bit.
		out := sim.Outbox{}
		for _, nb := range d.neighbors {
			out[nb] = sim.Payload(sim.EncodeBool(d.stimulus))
		}
		return out
	case round == 1:
		// Determine the BA input: stimulus here or a claim from anyone.
		d.heard = d.stimulus
		for _, p := range inbox {
			if string(p) == "1" {
				d.heard = true
			}
		}
		d.inner = byzantine.NewEIG(d.f, d.peers)(d.self, d.neighbors, sim.BoolInput(d.heard))
		return d.inner.Step(0, sim.Inbox{})
	default:
		out := d.inner.Step(round-1, inbox)
		if dec, ok := d.inner.Output(); ok && dec.Value == "1" && round >= FireTime(d.f) {
			d.fired = true
			d.fireRound = FireTime(d.f)
		}
		return out
	}
}

func (d *viaBA) Snapshot() string {
	innerSnap := "pre"
	if d.inner != nil {
		innerSnap = d.inner.Snapshot()
	}
	return fmt.Sprintf("fs(stim=%v,heard=%v,fired=%v@%d)|%s", d.stimulus, d.heard, d.fired, d.fireRound, innerSnap)
}

func (d *viaBA) Output() (sim.Decision, bool) {
	if !d.fired {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: Fired}, true
}

// countdown is a naive firing-squad attempt for the impossibility panel:
// stimulus reports carry their claimed origin round ("S0"), every node
// floods the earliest origin it has heard of, and fires fuse rounds after
// that origin. With all nodes correct this is simultaneous (every claim
// says S0 and floods within the fuse), but origin claims are forgeable,
// so a Byzantine node can stagger fire times — and on inadequate graphs
// Theorem 4 says no repair is possible.
type countdown struct {
	self      string
	neighbors []string
	fuse      int
	origin    int // earliest claimed stimulus round; -1 if none heard
	fired     bool
}

var _ sim.Device = (*countdown)(nil)
var _ sim.Fingerprinter = (*countdown)(nil)

// DeviceFingerprint is the constructor identity (the fuse length).
func (d *countdown) DeviceFingerprint() string {
	return fmt.Sprintf("fs/countdown:fuse=%d", d.fuse)
}

// NewCountdown returns a builder for countdown devices with the given
// fuse length (rounds between the claimed stimulus origin and firing).
func NewCountdown(fuse int) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &countdown{fuse: fuse}
		d.Init(self, neighbors, input)
		return d
	}
}

func (d *countdown) Init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.neighbors = append([]string(nil), neighbors...)
	sort.Strings(d.neighbors)
	d.origin = -1
	if string(input) == "1" {
		d.origin = 0
	}
}

func (d *countdown) Step(round int, inbox sim.Inbox) sim.Outbox {
	for _, p := range inbox {
		s := string(p)
		if len(s) < 2 || s[0] != 'S' {
			continue
		}
		if k, err := sim.DecodeInt(s[1:]); err == nil && k >= 0 && (d.origin < 0 || k < d.origin) {
			d.origin = k
		}
	}
	if d.origin >= 0 && round >= d.origin+d.fuse {
		d.fired = true
	}
	if d.origin < 0 {
		return nil
	}
	out := sim.Outbox{}
	for _, nb := range d.neighbors {
		out[nb] = sim.Payload(fmt.Sprintf("S%d", d.origin))
	}
	return out
}

func (d *countdown) Snapshot() string {
	return fmt.Sprintf("cd(fuse=%d,origin=%d,fired=%v)", d.fuse, d.origin, d.fired)
}

func (d *countdown) Output() (sim.Decision, bool) {
	if !d.fired {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: Fired}, true
}

// Report records the firing squad conditions for one run.
type Report struct {
	Agreement error // all correct nodes fire at the same round, or none fire
	Validity  error // (all-correct runs) fire iff some node was stimulated
}

// OK reports whether every condition holds.
func (r Report) OK() bool { return r.Agreement == nil && r.Validity == nil }

// Err returns the first violated condition, or nil.
func (r Report) Err() error {
	if r.Agreement != nil {
		return r.Agreement
	}
	return r.Validity
}

// Check evaluates the firing squad conditions. allCorrect states whether
// every node of the system is correct (the only case validity binds);
// stimulated reports whether any node received the stimulus.
func Check(run *sim.Run, correct []string, allCorrect, stimulated bool) Report {
	var rep Report
	fireRound := -2 // -2 unset, -1 none
	for _, name := range correct {
		d, err := run.DecisionOf(name)
		if err != nil {
			rep.Agreement = err
			return rep
		}
		r := -1
		if d.Value == Fired {
			r = d.Round
		}
		switch {
		case fireRound == -2:
			fireRound = r
		case fireRound != r:
			rep.Agreement = fmt.Errorf("firingsquad: node %s fired at %d but others at %d",
				name, r, fireRound)
		}
	}
	if allCorrect {
		if stimulated && fireRound < 0 {
			rep.Validity = fmt.Errorf("firingsquad: stimulus occurred but no correct node fired within the horizon")
		}
		if !stimulated && fireRound >= 0 {
			rep.Validity = fmt.Errorf("firingsquad: no stimulus but nodes fired at round %d", fireRound)
		}
	}
	return rep
}
