package runcache

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestDoObservedHitMissFlags(t *testing.T) {
	c := New()
	v, hit, waited, err := c.DoObserved("k", func() (any, error) { return 42, nil })
	if err != nil || v != 42 || hit || waited {
		t.Fatalf("first call: v=%v hit=%v waited=%v err=%v, want 42/false/false/nil", v, hit, waited, err)
	}
	v, hit, waited, err = c.DoObserved("k", func() (any, error) {
		t.Fatal("compute ran on a hit")
		return nil, nil
	})
	if err != nil || v != 42 || !hit || waited {
		t.Fatalf("second call: v=%v hit=%v waited=%v err=%v, want 42/true/false/nil", v, hit, waited, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Waits != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 0 waits", st)
	}
}

func TestDoObservedErrorNotCached(t *testing.T) {
	c := New()
	boom := errors.New("boom")
	if _, _, _, err := c.DoObserved("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, _, err := c.DoObserved("k", func() (any, error) { return "fresh", nil })
	if err != nil || hit || v != "fresh" {
		t.Fatalf("after error: v=%v hit=%v err=%v, want fresh recompute", v, hit, err)
	}
}

// TestDoObservedWaiters drives the single-flight path: concurrent
// callers of one key must all get the value, and the late ones must
// report waited (they blocked on the in-flight compute). The compute
// holds until every goroutine has launched.
func TestDoObservedWaiters(t *testing.T) {
	c := New()
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _, _ = c.DoObserved("k", func() (any, error) {
			close(started)
			<-release
			return "v", nil
		})
	}()
	<-started

	const waiters = 4
	var wg sync.WaitGroup
	waitedCount := make(chan bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, waited, err := c.DoObserved("k", func() (any, error) {
				t.Error("compute ran twice for one key")
				return nil, nil
			})
			if err != nil || v != "v" || !hit {
				t.Errorf("waiter got v=%v hit=%v err=%v", v, hit, err)
			}
			waitedCount <- waited
		}()
	}
	// DoObserved increments Waits before blocking on the in-flight
	// compute, so once the counter reaches the waiter count every waiter
	// is committed to the waited path; only then release the compute.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Waits < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: Waits = %d, want %d", c.Stats().Waits, waiters)
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	close(waitedCount)
	for w := range waitedCount {
		if !w {
			t.Error("a waiter reported waited=false despite blocking on the held compute")
		}
	}
	if got := c.Stats().Waits; got != waiters {
		t.Fatalf("Stats().Waits = %d, want %d", got, waiters)
	}
}

func TestStatsSinceAndHitRate(t *testing.T) {
	prev := Stats{Hits: 10, Misses: 4, Waits: 1, Entries: 4}
	cur := Stats{Hits: 25, Misses: 9, Waits: 3, Entries: 9}
	d := cur.Since(prev)
	if d.Hits != 15 || d.Misses != 5 || d.Waits != 2 {
		t.Fatalf("Since = %+v, want 15 hits / 5 misses / 2 waits", d)
	}
	if d.Entries != 9 {
		t.Fatalf("Since.Entries = %d, want current entry count 9 (entries are a level, not a flow)", d.Entries)
	}
	if got := d.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
	if got := (Stats{}).HitRate(); got != 0 {
		t.Fatalf("empty HitRate = %v, want 0", got)
	}
}

// TestSinceSurvivesReset is the per-command isolation contract: a
// snapshot taken before a Reset never makes later deltas go negative —
// callers snapshot after Reset, and Since of two post-Reset snapshots
// is exact.
func TestSinceSurvivesReset(t *testing.T) {
	c := New()
	for i := 0; i < 3; i++ {
		_, _ = c.Do("a", func() (any, error) { return 1, nil })
	}
	c.Reset()
	base := c.Stats()
	if base.Hits != 0 || base.Misses != 0 || base.Waits != 0 {
		t.Fatalf("post-reset stats = %+v, want zeroes", base)
	}
	_, _ = c.Do("b", func() (any, error) { return 2, nil })
	_, _ = c.Do("b", func() (any, error) { return 2, nil })
	d := c.Stats().Since(base)
	if d.Hits != 1 || d.Misses != 1 {
		t.Fatalf("delta = %+v, want 1 hit / 1 miss", d)
	}
}
