package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"flm/internal/obs"
)

// parseTrace closes the tracer and decodes every line, failing the test
// on any malformed record — the non-interleaving guarantee under
// concurrent workers.
func parseTrace(t *testing.T, tr *obs.Tracer, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	if err := tr.Close(); err != nil {
		t.Fatalf("tracer close: %v", err)
	}
	var recs []map[string]any
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d is not valid JSON (interleaved write?): %q: %v", i+1, line, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// spansNamed filters records by span name.
func spansNamed(recs []map[string]any, name string) []map[string]any {
	var out []map[string]any
	for _, r := range recs {
		if r["t"] == "span" && r["name"] == name {
			out = append(out, r)
		}
	}
	return out
}

// TestMapTracedConcurrentJSONL runs a traced parallel sweep on 4 workers
// (the verify-race configuration) and checks that the trace is valid
// line-delimited JSON with one sweep.map span and one sweep.worker span
// per worker, whose trial counts sum to the sweep size.
func TestMapTracedConcurrentJSONL(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	restore := obs.SetTracer(tr)

	const n = 200
	results, err := Map(n, func(i int) (int, error) {
		time.Sleep(time.Duration(i%3) * time.Microsecond)
		return i * i, nil
	})
	restore()
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	for i, v := range results {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}

	recs := parseTrace(t, tr, &buf)
	maps := spansNamed(recs, "sweep.map")
	if len(maps) != 1 {
		t.Fatalf("sweep.map spans = %d, want 1", len(maps))
	}
	workers := spansNamed(recs, "sweep.worker")
	if len(workers) != 4 {
		t.Fatalf("sweep.worker spans = %d, want 4", len(workers))
	}
	mapID := maps[0]["id"].(float64)
	trials := 0.0
	for _, w := range workers {
		if w["par"].(float64) != mapID {
			t.Errorf("worker span parent = %v, want sweep.map id %v", w["par"], mapID)
		}
		attrs := w["attrs"].(map[string]any)
		trials += attrs["trials"].(float64)
	}
	if int(trials) != n {
		t.Errorf("worker trial counts sum to %d, want %d", int(trials), n)
	}
}

// TestMapTracedSequentialWorkerZero pins the workers<=1 fast path's
// booking: the whole sweep appears as worker 0.
func TestMapTracedSequentialWorkerZero(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	restore := obs.SetTracer(tr)
	_, err := Map(7, func(i int) (int, error) { return i, nil })
	restore()
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	recs := parseTrace(t, tr, &buf)
	workers := spansNamed(recs, "sweep.worker")
	if len(workers) != 1 {
		t.Fatalf("sweep.worker spans = %d, want 1", len(workers))
	}
	attrs := workers[0]["attrs"].(map[string]any)
	if attrs["worker"].(float64) != 0 || attrs["trials"].(float64) != 7 {
		t.Errorf("sequential sweep booked as worker %v with %v trials, want worker 0 with 7",
			attrs["worker"], attrs["trials"])
	}
}

// TestIsolatedTracedFaultCounts checks that a traced isolated sweep
// books per-worker fault counts and the sweep-level faults attribute.
func TestIsolatedTracedFaultCounts(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	restore := obs.SetTracer(tr)
	boom := errors.New("boom")
	_, errs := Isolated(context.Background(), 10, Opts{}, func(i int) (int, error) {
		if i%2 == 0 {
			return 0, boom
		}
		return i, nil
	})
	restore()
	if got := FaultCount(errs); got != 5 {
		t.Fatalf("FaultCount = %d, want 5", got)
	}
	recs := parseTrace(t, tr, &buf)
	iso := spansNamed(recs, "sweep.isolated")
	if len(iso) != 1 {
		t.Fatalf("sweep.isolated spans = %d, want 1", len(iso))
	}
	if faults := iso[0]["attrs"].(map[string]any)["faults"].(float64); faults != 5 {
		t.Errorf("sweep.isolated faults = %v, want 5", faults)
	}
	workerFaults := 0.0
	for _, w := range spansNamed(recs, "sweep.worker") {
		workerFaults += w["attrs"].(map[string]any)["faults"].(float64)
	}
	if workerFaults != 5 {
		t.Errorf("per-worker faults sum to %v, want 5", workerFaults)
	}
}

// TestMapUntracedUnchanged guards the disabled path: with no tracer
// installed a sweep must write nothing and leave the obs metrics
// untouched.
func TestMapUntracedUnchanged(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("a tracer is installed")
	}
	before := obs.Metrics.Snapshot().Counters["sweep.trials"]
	if _, err := Map(16, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatalf("Map: %v", err)
	}
	after := obs.Metrics.Snapshot().Counters["sweep.trials"]
	if before != after {
		t.Errorf("untraced sweep moved sweep.trials from %d to %d", before, after)
	}
}
