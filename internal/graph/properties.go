package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Diameter returns the greatest shortest-path distance between any two
// nodes, or -1 if the graph is disconnected.
func (g *Graph) Diameter() int {
	diameter := 0
	for s := 0; s < g.N(); s++ {
		dist := g.bfsDistances(s)
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter
}

// Distance returns the shortest-path distance between u and v, or -1 if
// unreachable.
func (g *Graph) Distance(u, v int) int {
	return g.bfsDistances(u)[v]
}

func (g *Graph) bfsDistances(s int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// DegreeSequence returns the sorted (descending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	seq := make([]int, g.N())
	for u := range seq {
		seq[u] = g.Degree(u)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seq)))
	return seq
}

// MinDegree returns the smallest node degree (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	minDeg := g.Degree(0)
	for u := 1; u < g.N(); u++ {
		if d := g.Degree(u); d < minDeg {
			minDeg = d
		}
	}
	return minDeg
}

// IsRegular reports whether every node has the same degree.
func (g *Graph) IsRegular() bool {
	if g.N() == 0 {
		return true
	}
	d := g.Degree(0)
	for u := 1; u < g.N(); u++ {
		if g.Degree(u) != d {
			return false
		}
	}
	return true
}

// DOT renders the graph in Graphviz DOT format (undirected view), for
// visualizing coverings and cuts.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	for u := 0; u < g.N(); u++ {
		fmt.Fprintf(&b, "  %q;\n", g.names[u])
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.adj[u] {
			if u < v {
				fmt.Fprintf(&b, "  %q -- %q;\n", g.names[u], g.names[v])
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the covering in DOT format with fibers grouped by color
// index (one color class per G-node).
func (c *Cover) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	for s := 0; s < c.S.N(); s++ {
		fmt.Fprintf(&b, "  %q [label=%q, colorscheme=set19, color=%d];\n",
			c.S.Name(s), c.S.Name(s)+"→"+c.G.Name(c.Phi[s]), c.Phi[s]%9+1)
	}
	for u := 0; u < c.S.N(); u++ {
		for _, v := range c.S.Neighbors(u) {
			if u < v {
				fmt.Fprintf(&b, "  %q -- %q;\n", c.S.Name(u), c.S.Name(v))
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
