package byzantine

import (
	"fmt"
	"math/rand"
	"testing"

	"flm/internal/sim"
)

// randomClaimPayload builds a random round payload: claims over random
// label sequences (valid relays, duplicate names, unknown names, wrong
// lengths, malformed separators) with values drawn from valid and
// delimiter-smuggling alphabets. This deliberately exercises every skip
// branch of absorb.
func randomClaimPayload(rng *rand.Rand, peers []string) sim.Payload {
	values := []string{"0", "1", "7", "x", "", "a=b", "a/b", "a;b", "-"}
	nClaims := rng.Intn(4)
	payload := ""
	for c := 0; c < nClaims; c++ {
		if c > 0 {
			payload += ";"
		}
		if rng.Intn(8) == 0 {
			payload += "-" // no '=': skipped like the silence marker
			continue
		}
		label := ""
		for l, ln := 0, rng.Intn(3); l < ln; l++ {
			if l > 0 {
				label += "/"
			}
			switch rng.Intn(5) {
			case 0:
				label += "zz" // unknown name
			case 1:
				label += "" // empty component
			default:
				label += peers[rng.Intn(len(peers))]
			}
		}
		payload += label + "=" + values[rng.Intn(len(values))]
	}
	return sim.Payload(payload)
}

// TestFlatEIGMatchesMapReference drives the flat device and the retained
// map-based reference through identical randomized schedules — random
// inputs, random Byzantine inboxes including non-peer senders — and
// requires identical payloads, snapshots, decisions, and fingerprints at
// every step.
func TestFlatEIGMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(4)
		f := 1 + rng.Intn(2)
		peers := make([]string, n)
		for i := range peers {
			peers[i] = fmt.Sprintf("p%d", i)
		}
		self := peers[rng.Intn(n)]
		input := []string{"0", "1", "5", "", "a;b"}[rng.Intn(5)]

		fp := fmt.Sprintf("byz/eig:f=%d,peers=%s", f, joinPeers(peers))
		shape := eigShapeFor(f, append([]string(nil), peers...), fp)
		if shape == nil {
			t.Fatalf("trial %d: shape unexpectedly ineligible", trial)
		}
		flat := &eigFlatDevice{shape: shape}
		flat.Init(self, peers, sim.Input(input))
		ref := &eigMapDevice{f: f, peers: append([]string(nil), peers...)}
		ref.Init(self, peers, sim.Input(input))

		if flat.DeviceFingerprint() != ref.DeviceFingerprint() {
			t.Fatalf("trial %d: fingerprints differ: %q vs %q", trial, flat.DeviceFingerprint(), ref.DeviceFingerprint())
		}
		for round := 0; round < EIGRounds(f)+1; round++ {
			inbox := sim.Inbox{}
			for _, p := range peers {
				if p == self || rng.Intn(4) == 0 {
					continue // silent peer
				}
				inbox[p] = randomClaimPayload(rng, peers)
			}
			if rng.Intn(3) == 0 {
				inbox["outsider"] = randomClaimPayload(rng, peers)
			}
			outFlat := flat.Step(round, inbox)
			outRef := ref.Step(round, inbox)
			if len(outFlat) != len(outRef) {
				t.Fatalf("trial %d round %d: outbox sizes %d vs %d", trial, round, len(outFlat), len(outRef))
			}
			for to, p := range outRef {
				if outFlat[to] != p {
					t.Fatalf("trial %d round %d: payload to %s differs:\nflat: %q\nref:  %q", trial, round, to, outFlat[to], p)
				}
			}
			if sf, sr := flat.Snapshot(), ref.Snapshot(); sf != sr {
				t.Fatalf("trial %d round %d: snapshots differ:\nflat: %s\nref:  %s", trial, round, sf, sr)
			}
			df, okf := flat.Output()
			dr, okr := ref.Output()
			if okf != okr || df != dr {
				t.Fatalf("trial %d round %d: outputs differ: (%v,%v) vs (%v,%v)", trial, round, df, okf, dr, okr)
			}
		}
	}
}

func joinPeers(sorted []string) string {
	out := ""
	for i, p := range sorted {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// TestFlatEIGOutsiderSelfFallsBack: a device initialized at a node
// outside the peer set delegates to the reference implementation and
// stays observably identical to it.
func TestFlatEIGOutsiderSelfFallsBack(t *testing.T) {
	peers := []string{"a", "b", "c", "d"}
	fp := fmt.Sprintf("byz/eig:f=%d,peers=%s", 1, joinPeers(peers))
	shape := eigShapeFor(1, peers, fp)
	if shape == nil {
		t.Fatal("shape ineligible")
	}
	flat := &eigFlatDevice{shape: shape}
	flat.Init("zz", peers, "1")
	if flat.fb == nil {
		t.Fatal("outsider self did not fall back to the map device")
	}
	ref := &eigMapDevice{f: 1, peers: peers}
	ref.Init("zz", peers, "1")
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < EIGRounds(1); round++ {
		inbox := sim.Inbox{"a": randomClaimPayload(rng, peers), "b": "=1"}
		outFlat, outRef := flat.Step(round, inbox), ref.Step(round, inbox)
		for to, p := range outRef {
			if outFlat[to] != p {
				t.Fatalf("round %d: payload to %s differs", round, to)
			}
		}
		if flat.Snapshot() != ref.Snapshot() {
			t.Fatalf("round %d: snapshots differ:\n%s\n%s", round, flat.Snapshot(), ref.Snapshot())
		}
	}
}

// TestNewEIGUsesFlatDevice pins that the builder actually selects the
// flat implementation for ordinary peer sets (the perf path is the
// default, not a lucky accident).
func TestNewEIGUsesFlatDevice(t *testing.T) {
	d := NewEIG(1, []string{"a", "b", "c", "d"})("a", []string{"b", "c", "d"}, "1")
	fd, ok := d.(*eigFlatDevice)
	if !ok {
		t.Fatalf("builder returned %T, want *eigFlatDevice", d)
	}
	if fd.fb != nil {
		t.Fatal("flat device fell back to the map reference for a peer self")
	}
	// And a peer set the flat shape cannot index falls back cleanly.
	big := make([]string, 70)
	for i := range big {
		big[i] = fmt.Sprintf("q%02d", i)
	}
	d = NewEIG(1, big)(big[0], big[1:], "1")
	if _, ok := d.(*eigMapDevice); !ok {
		t.Fatalf("builder returned %T for 70 peers, want *eigMapDevice", d)
	}
}
