package sim

import (
	"reflect"
	"sync/atomic"
	"testing"

	"flm/internal/runcache"
)

// execForBlob runs a counting system and returns its recorded run plus
// the cache key it was (or would be) stored under.
func execForBlob(t *testing.T, tag string, rounds int, opts ExecuteOpts) *Run {
	t.Helper()
	var steps atomic.Int64
	r, err := ExecuteWith(countingSystem(t, triangle(t), tag, &steps), rounds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// assertRunsEqual compares every observable field of two runs, including
// the reconstructed graph.
func assertRunsEqual(t *testing.T, got, want *Run) {
	t.Helper()
	if !reflect.DeepEqual(got.G.Names(), want.G.Names()) {
		t.Fatalf("names: got %v want %v", got.G.Names(), want.G.Names())
	}
	if !reflect.DeepEqual(got.G.DirectedEdges(), want.G.DirectedEdges()) {
		t.Fatalf("edges: got %v want %v", got.G.DirectedEdges(), want.G.DirectedEdges())
	}
	if got.Rounds != want.Rounds {
		t.Fatalf("rounds: got %d want %d", got.Rounds, want.Rounds)
	}
	if !reflect.DeepEqual(got.Inputs, want.Inputs) {
		t.Fatalf("inputs: got %v want %v", got.Inputs, want.Inputs)
	}
	if !reflect.DeepEqual(got.Snapshots, want.Snapshots) {
		t.Fatalf("snapshots: got %v want %v", got.Snapshots, want.Snapshots)
	}
	if !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatalf("edge behaviors: got %v want %v", got.Edges, want.Edges)
	}
	if !reflect.DeepEqual(got.Decisions, want.Decisions) {
		t.Fatalf("decisions: got %v want %v", got.Decisions, want.Decisions)
	}
}

func TestRunBlobRoundTripFull(t *testing.T) {
	r := execForBlob(t, "blob-full", 3, FullRecording)
	key := "blob-test-key-full"
	data, ok := RunCodec{}.Encode(key, r)
	if !ok {
		t.Fatal("Encode declined a full-recording run")
	}
	v, err := RunCodec{}.Decode(key, data)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*Run)
	assertRunsEqual(t, got, r)
	if got.Fingerprint() != key {
		t.Fatalf("decoded fingerprint %q, want the blob key", got.Fingerprint())
	}
}

func TestRunBlobRoundTripDecisionOnly(t *testing.T) {
	r := execForBlob(t, "blob-fast", 2, ExecuteOpts{})
	if r.Snapshots != nil || r.Edges != nil {
		t.Fatal("fast-mode run unexpectedly recorded snapshots/edges")
	}
	data, ok := RunCodec{}.Encode("k", r)
	if !ok {
		t.Fatal("Encode declined a decision-only run")
	}
	v, err := RunCodec{}.Decode("k", data)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*Run)
	assertRunsEqual(t, got, r)
	if got.Snapshots != nil || got.Edges != nil {
		t.Fatal("decision-only blob decoded with snapshots/edges populated")
	}
}

func TestRunBlobEncodeDeclines(t *testing.T) {
	if _, ok := (RunCodec{}).Encode("k", "not a run"); ok {
		t.Fatal("Encode accepted a non-Run value")
	}
	if _, ok := (RunCodec{}).Encode("k", (*Run)(nil)); ok {
		t.Fatal("Encode accepted a nil run")
	}
	if _, ok := (RunCodec{}).Encode("k", &Run{}); ok {
		t.Fatal("Encode accepted a run with no graph")
	}
}

// TestRunBlobTruncationRejected chops a valid blob at every length and
// requires a decode error — never a panic, never a silently partial run.
func TestRunBlobTruncationRejected(t *testing.T) {
	r := execForBlob(t, "blob-trunc", 3, FullRecording)
	data, ok := RunCodec{}.Encode("k", r)
	if !ok {
		t.Fatal("Encode declined")
	}
	for n := 0; n < len(data); n++ {
		if _, err := (RunCodec{}).Decode("k", data[:n]); err == nil {
			t.Fatalf("Decode accepted a blob truncated to %d/%d bytes", n, len(data))
		}
	}
	// Trailing garbage must also be rejected: the frame is exact.
	if _, err := (RunCodec{}).Decode("k", append(append([]byte(nil), data...), 0x00)); err == nil {
		t.Fatal("Decode accepted a blob with trailing bytes")
	}
}

// TestRunBlobByteFlipsNeverPanic flips each byte of a valid blob in
// turn. The disk store's digest catches flips before Decode ever sees
// them in production; this test is about robustness of Decode itself —
// it must return (possibly wrong data with) an error or a value, never
// crash or allocate absurdly.
func TestRunBlobByteFlipsNeverPanic(t *testing.T) {
	r := execForBlob(t, "blob-flip", 2, FullRecording)
	data, ok := RunCodec{}.Encode("k", r)
	if !ok {
		t.Fatal("Encode declined")
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Decode panicked on byte %d flipped: %v", i, p)
				}
			}()
			RunCodec{}.Decode("k", mut)
		}()
	}
}

// TestDiskWarmStart is the cross-process reuse proof at the sim layer:
// execute, wipe L1 (as a fresh process would start), re-execute — the
// result comes off disk with zero device steps and identical content.
func TestDiskWarmStart(t *testing.T) {
	restoreOn := runcache.SetEnabled(true)
	defer restoreOn()
	ResetRunCache()
	restore, err := SetRunCacheDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	g := triangle(t)
	var steps atomic.Int64
	first, err := ExecuteWith(countingSystem(t, g, "warm-start", &steps), 3, FullRecording)
	if err != nil {
		t.Fatal(err)
	}
	coldSteps := steps.Load()
	if coldSteps == 0 {
		t.Fatal("cold run stepped no devices")
	}

	ResetRunCache() // simulate a fresh process: empty L1, warm disk
	st0 := RunCacheStats()
	second, err := ExecuteWith(countingSystem(t, g, "warm-start", &steps), 3, FullRecording)
	if err != nil {
		t.Fatal(err)
	}
	if steps.Load() != coldSteps {
		t.Fatalf("warm-start run stepped devices (%d -> %d)", coldSteps, steps.Load())
	}
	st := RunCacheStats().Since(st0)
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("warm-start stats %+v, want exactly one disk hit and no misses", st)
	}
	if second == first {
		t.Fatal("warm-start returned the evicted L1 pointer; expected a decoded copy")
	}
	assertRunsEqual(t, second, first)
	if second.Fingerprint() != first.Fingerprint() {
		t.Fatalf("fingerprints diverge: %q vs %q", second.Fingerprint(), first.Fingerprint())
	}
}

// TestDiskTierRestore: uninstalling the disk tier stops writes.
func TestDiskTierRestore(t *testing.T) {
	restoreOn := runcache.SetEnabled(true)
	defer restoreOn()
	ResetRunCache()
	dir := t.TempDir()
	restore, err := SetRunCacheDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if RunCacheDir() != dir {
		t.Fatalf("RunCacheDir = %q, want %q", RunCacheDir(), dir)
	}
	restore()
	if RunCacheDir() != "" {
		t.Fatalf("RunCacheDir after restore = %q, want \"\"", RunCacheDir())
	}

	var steps atomic.Int64
	if _, err := ExecuteWith(countingSystem(t, triangle(t), "no-tier", &steps), 2, FullRecording); err != nil {
		t.Fatal(err)
	}
	if st := RunCacheStats(); st.DiskWrites != 0 {
		t.Fatalf("uninstalled disk tier received %d writes", st.DiskWrites)
	}
}
