package clockfn

import "math/big"

// RatScratch is reusable scratch state for exact rational comparisons
// that allocate nothing in steady state. big.Rat's own Cmp builds two
// fresh Ints per call and Add/Sub normalize through a gcd, so any hot
// loop comparing rationals pays an allocation tax per event; the scratch
// comparator cross-multiplies into two retained Ints whose storage is
// reused once it has grown to the working operand size.
//
// A RatScratch is not safe for concurrent use. Comparing a *big.Rat may
// materialize its denominator in place (big.Rat stores an integral
// denominator lazily), so the rationals handed to Cmp and CmpAt must not
// be shared with other goroutines at the time of the call.
type RatScratch struct {
	x, y big.Int
}

// Cmp compares a and b exactly, returning -1, 0, or +1.
func (s *RatScratch) Cmp(a, b *big.Rat) int {
	s.x.Mul(a.Num(), b.Denom())
	s.y.Mul(b.Num(), a.Denom())
	return s.x.Cmp(&s.y)
}

// CmpFrac compares the fractions an/ad and bn/bd exactly. Both
// denominators must be positive; the fractions need not be reduced.
func (s *RatScratch) CmpFrac(an, ad, bn, bd *big.Int) int {
	s.x.Mul(an, bd)
	s.y.Mul(bn, ad)
	return s.x.Cmp(&s.y)
}

// CmpFracRat compares the fraction an/ad (ad > 0) against the rational b.
func (s *RatScratch) CmpFracRat(an, ad *big.Int, b *big.Rat) int {
	s.x.Mul(an, b.Denom())
	s.y.Mul(b.Num(), ad)
	return s.x.Cmp(&s.y)
}

// CmpAt compares f(t) against y exactly without materializing f(t):
// with f = (rn/rd)*t + (on/od) and t = tn/td, the value is
// (rn*tn*od + on*rd*td) / (rd*td*od), whose denominator is positive, so
// the comparison is a cross-multiplication. Like Cmp, the operands' lazy
// denominators may be materialized in place, so f, t, and y must not be
// concurrently shared.
func (s *RatScratch) CmpAt(f RatLinear, t, y *big.Rat) int {
	s.x.Mul(f.Rate.Num(), t.Num())
	s.x.Mul(&s.x, f.Off.Denom())
	s.y.Mul(f.Off.Num(), f.Rate.Denom())
	s.y.Mul(&s.y, t.Denom())
	s.x.Add(&s.x, &s.y)
	s.y.Mul(f.Rate.Denom(), t.Denom())
	s.y.Mul(&s.y, f.Off.Denom())
	s.x.Mul(&s.x, y.Denom())
	s.y.Mul(&s.y, y.Num())
	return s.x.Cmp(&s.y)
}

// Iterates returns the table [h⁰, h¹, ..., hⁿ] (or the inverse iterates
// for sign < 0) built incrementally, so callers that need every power up
// to n pay O(n) compositions instead of the O(n²) of calling IterateRat
// per index. Iterates(h, -1, n)[i] equals h.IterateRat(-i) exactly.
func Iterates(h RatLinear, sign, n int) []RatLinear {
	base := h
	if sign < 0 {
		base = h.InverseRat()
	}
	out := make([]RatLinear, n+1)
	out[0] = RatIdentity()
	for i := 1; i <= n; i++ {
		out[i] = base.ComposeRat(out[i-1])
	}
	return out
}
