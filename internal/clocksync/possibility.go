package clocksync

import (
	"fmt"
	"math/big"

	"flm/internal/clockfn"
	"flm/internal/graph"
	"flm/internal/timedsim"
)

// This file provides the adequate-graph counterpoint to Theorem 8:
// measuring how closely real devices synchronize on graphs the theorem
// does NOT cover. On K4 with f = 1 the trimmed-midpoint device keeps the
// correct logical clocks within a bounded gap while the trivial
// lower-envelope gap l(q(t)) - l(p(t)) grows without bound — consistent
// with the paper, whose bound applies only to inadequate graphs.

// AdequateSyncSample is one measurement of a synchronization run.
type AdequateSyncSample struct {
	T           float64 // real sample time
	MeasuredGap float64 // max |C_i - C_j| over correct nodes
	TrivialGap  float64 // l(q(t)) - l(p(t)) at the sample time
}

// MeasureAdequateSync runs the builders on g (one clock per node, one
// optional scripted liar) and samples the maximum logical gap among
// correct nodes at each of the given real times.
func MeasureAdequateSync(params Params, g *graph.Graph, clocks []clockfn.RatLinear, builders map[string]Builder, liar string, liarScript []timedsim.ScriptedSend, samples []*big.Rat) ([]AdequateSyncSample, error) {
	if len(clocks) != g.N() {
		return nil, fmt.Errorf("clocksync: %d clocks for %d nodes", len(clocks), g.N())
	}
	out := make([]AdequateSyncSample, 0, len(samples))
	for _, until := range samples {
		nodes := make([]timedsim.Node, g.N())
		for u := 0; u < g.N(); u++ {
			name := g.Name(u)
			if name == liar {
				nodes[u] = timedsim.Node{Script: liarScript, Clock: clocks[u]}
				continue
			}
			b, ok := builders[name]
			if !ok {
				return nil, fmt.Errorf("clocksync: no builder for node %q", name)
			}
			var nbs []string
			for _, v := range g.Neighbors(u) {
				nbs = append(nbs, g.Name(v))
			}
			dev := b(name, nbs)
			nodes[u] = timedsim.Node{Device: dev, Clock: clocks[u]}
		}
		run, err := timedsim.Execute(&timedsim.System{G: g, Nodes: nodes, Delta: params.Delta}, until)
		if err != nil {
			return nil, err
		}
		lo, hi := 0.0, 0.0
		first := true
		for u := 0; u < g.N(); u++ {
			if g.Name(u) == liar {
				continue
			}
			c := run.FinalLogical[u]
			if first {
				lo, hi, first = c, c, false
				continue
			}
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		tF, _ := until.Float64()
		out = append(out, AdequateSyncSample{
			T:           tF,
			MeasuredGap: hi - lo,
			TrivialGap:  params.TrivialGap(tF),
		})
	}
	return out, nil
}

// ClockLiarScript fabricates wildly inconsistent clock readings: at each
// integer time step it sends a huge value to one neighbor and a tiny one
// to the next, rotating through the neighbor list.
func ClockLiarScript(g *graph.Graph, liar string, until int64) []timedsim.ScriptedSend {
	u := g.MustIndex(liar)
	var nbs []string
	for _, v := range g.Neighbors(u) {
		nbs = append(nbs, g.Name(v))
	}
	var script []timedsim.ScriptedSend
	for t := int64(0); t <= until; t++ {
		for i, nb := range nbs {
			payload := "1000000"
			if (int(t)+i)%2 == 0 {
				payload = "-1000000"
			}
			script = append(script, timedsim.ScriptedSend{
				At: big.NewRat(t, 1), To: nb, Payload: payload,
			})
		}
	}
	return script
}
