package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"flm/internal/graph"
)

// panicDevice panics in the configured operation at the configured round.
type panicDevice struct {
	op       string
	atRound  int
	round    int
	panicked bool
}

func (d *panicDevice) Init(self string, neighbors []string, input Input) {}

func (d *panicDevice) Step(round int, inbox Inbox) Outbox {
	d.round = round
	if d.op == OpStep && round == d.atRound {
		panic("kaboom")
	}
	return nil
}

func (d *panicDevice) Snapshot() string {
	if d.op == OpSnapshot && d.round == d.atRound {
		panic("snap-boom")
	}
	return "panicdev"
}

func (d *panicDevice) Output() (Decision, bool) {
	if d.op == OpOutput && d.round == d.atRound {
		panic("out-boom")
	}
	return Decision{}, false
}

// quietBuilder installs devices that never send and never decide.
func quietBuilder() Builder {
	return func(self string, neighbors []string, input Input) Device {
		return NewReplayDevice(nil)
	}
}

func faultSystem(t *testing.T, badNode, op string, atRound int) *System {
	t.Helper()
	g := graph.Triangle()
	p := Protocol{Builders: map[string]Builder{}, Inputs: map[string]Input{}}
	for _, name := range g.Names() {
		name := name
		p.Inputs[name] = BoolInput(false)
		if name == badNode {
			p.Builders[name] = func(self string, neighbors []string, input Input) Device {
				return &panicDevice{op: op, atRound: atRound}
			}
		} else {
			p.Builders[name] = quietBuilder()
		}
	}
	sys, err := NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDevicePanicBecomesDeviceFault(t *testing.T) {
	for _, op := range []string{OpStep, OpSnapshot, OpOutput} {
		sys := faultSystem(t, "b", op, 2)
		run, err := Execute(sys, 5)
		if err == nil {
			t.Fatalf("%s: panic not surfaced", op)
		}
		var df *DeviceFault
		if !errors.As(err, &df) {
			t.Fatalf("%s: error %v is not a *DeviceFault", op, err)
		}
		if df.Node != "b" || df.Round != 2 || df.Op != op {
			t.Errorf("%s: fault attributed to node=%s round=%d op=%s, want b/2/%s",
				op, df.Node, df.Round, df.Op, op)
		}
		if len(df.Stack) == 0 {
			t.Errorf("%s: fault carries no stack", op)
		}
		if run == nil {
			t.Errorf("%s: no partial run returned", op)
		}
	}
}

func TestBuilderPanicBecomesDeviceFault(t *testing.T) {
	g := graph.Triangle()
	p := Protocol{Builders: map[string]Builder{}, Inputs: map[string]Input{}}
	for _, name := range g.Names() {
		name := name
		p.Inputs[name] = BoolInput(false)
		if name == "c" {
			p.Builders[name] = func(self string, neighbors []string, input Input) Device {
				panic("cannot construct")
			}
		} else {
			p.Builders[name] = quietBuilder()
		}
	}
	_, err := NewSystem(g, p)
	var df *DeviceFault
	if !errors.As(err, &df) {
		t.Fatalf("builder panic yielded %v, want *DeviceFault", err)
	}
	if df.Node != "c" || df.Op != OpBuild || df.Round != -1 {
		t.Errorf("fault = %+v, want node c, op build, round -1", df)
	}
}

func TestPanicPartialRunRecordsFailingRound(t *testing.T) {
	sys := faultSystem(t, "a", OpStep, 1)
	run, err := Execute(sys, 4)
	var df *DeviceFault
	if !errors.As(err, &df) {
		t.Fatalf("got %v", err)
	}
	// Full recording: the failing round is snapshotted for every node,
	// with the panicking device marked.
	snaps, serr := run.SnapshotsOf("b")
	if serr != nil {
		t.Fatal(serr)
	}
	if snaps[1] == "" {
		t.Error("failing round not snapshotted for healthy node b")
	}
}

func TestMustExecutePanicsTyped(t *testing.T) {
	cases := []struct {
		name    string
		sys     *System
		node    string
		round   int
		device  bool // expect a *DeviceFault cause
		message string
	}{
		{name: "device fault", sys: faultSystem(t, "b", OpStep, 0), node: "b", round: 0, device: true},
		{name: "rule violation", sys: badSendSystem(t), node: "a", round: 0, message: "non-neighbor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("MustExecute did not panic")
				}
				ee, ok := r.(*ExecError)
				if !ok {
					t.Fatalf("panic value %T is not *ExecError", r)
				}
				if ee.Node != tc.node || ee.Round != tc.round {
					t.Errorf("panic attributed to %s/%d, want %s/%d", ee.Node, ee.Round, tc.node, tc.round)
				}
				var df *DeviceFault
				if got := errors.As(ee, &df); got != tc.device {
					t.Errorf("device-fault cause = %v, want %v", got, tc.device)
				}
				if tc.message != "" && !strings.Contains(ee.Error(), tc.message) {
					t.Errorf("message %q missing %q", ee.Error(), tc.message)
				}
			}()
			MustExecute(tc.sys, 3)
		})
	}
}

// badSendSystem has node a addressing a non-neighbor in round 0.
func badSendSystem(t *testing.T) *System {
	t.Helper()
	g := graph.Triangle()
	p := Protocol{Builders: map[string]Builder{}, Inputs: map[string]Input{}}
	for _, name := range g.Names() {
		name := name
		p.Inputs[name] = BoolInput(false)
		if name == "a" {
			p.Builders[name] = func(self string, neighbors []string, input Input) Device {
				return &badSender{}
			}
		} else {
			p.Builders[name] = quietBuilder()
		}
	}
	sys, err := NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

type badSender struct{}

func (d *badSender) Init(self string, neighbors []string, input Input) {}
func (d *badSender) Step(round int, inbox Inbox) Outbox {
	return Outbox{"zebra": "hi"}
}
func (d *badSender) Snapshot() string         { return "badsender" }
func (d *badSender) Output() (Decision, bool) { return Decision{}, false }

func TestExecuteCtxCancellation(t *testing.T) {
	g := graph.Triangle()
	p := Protocol{Builders: map[string]Builder{}, Inputs: map[string]Input{}}
	for _, name := range g.Names() {
		p.Builders[name] = quietBuilder()
		p.Inputs[name] = BoolInput(false)
	}
	sys, err := NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already done: the very first round boundary must stop
	run, err := ExecuteCtx(ctx, sys, 100, FullRecording)
	if err == nil {
		t.Fatal("cancelled execution succeeded")
	}
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("cancellation error %v is not *ExecError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause %v does not unwrap to context.Canceled", err)
	}
	if run == nil {
		t.Error("no partial run on cancellation")
	}
}

func TestExecuteCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline definitely pass
	g := graph.Triangle()
	p := Protocol{Builders: map[string]Builder{}, Inputs: map[string]Input{}}
	for _, name := range g.Names() {
		p.Builders[name] = quietBuilder()
		p.Inputs[name] = BoolInput(false)
	}
	sys, err := NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ExecuteCtx(ctx, sys, 10, ExecuteOpts{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
}
