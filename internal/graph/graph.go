// Package graph implements the communication graphs of FLM85: undirected
// graphs modeled as symmetric pairs of directed edges, vertex connectivity
// (Menger's theorem via unit-capacity max-flow), the adequacy predicate
// (n >= 3f+1 and connectivity >= 2f+1), and the covering-graph
// constructions used by every impossibility proof in the paper.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is a communication graph. Nodes are identified by dense integer
// indices and carry stable string names that devices use to address their
// neighbors. Every edge (u,v) implies the reverse edge (v,u), matching the
// paper's "directed edges occur in pairs" convention.
type Graph struct {
	names []string
	index map[string]int
	adj   [][]int // sorted neighbor index lists
}

// New returns a graph with the given node names and no edges.
// Names must be unique and non-empty.
func New(names ...string) (*Graph, error) {
	g := &Graph{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
		adj:   make([][]int, len(names)),
	}
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("graph: empty node name at index %d", i)
		}
		if _, dup := g.index[name]; dup {
			return nil, fmt.Errorf("graph: duplicate node name %q", name)
		}
		g.index[name] = i
	}
	return g, nil
}

// MustNew is New for statically known-good name lists; it panics on error.
func MustNew(names ...string) *Graph {
	g, err := New(names...)
	if err != nil {
		panic(err)
	}
	return g
}

// Generated returns a graph with n nodes named prefix0..prefix(n-1).
func Generated(prefix string, n int) *Graph {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return MustNew(names...)
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.names) }

// Name returns the name of node u.
func (g *Graph) Name(u int) string { return g.names[u] }

// Names returns a copy of all node names in index order.
func (g *Graph) Names() []string { return append([]string(nil), g.names...) }

// Index returns the index of the named node and whether it exists.
func (g *Graph) Index(name string) (int, bool) {
	u, ok := g.index[name]
	return u, ok
}

// MustIndex returns the index of the named node; it panics if absent.
func (g *Graph) MustIndex(name string) int {
	u, ok := g.index[name]
	if !ok {
		panic(fmt.Sprintf("graph: no node named %q", name))
	}
	return u
}

// AddEdge inserts the undirected edge {u,v} (both directed halves).
// Self-loops and duplicate edges are rejected.
func (g *Graph) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.N())
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%s,%s}", g.names[u], g.names[v])
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	return nil
}

// MustAddEdge is AddEdge that panics on error, for literal constructions.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// AddEdgeNames inserts the undirected edge between two named nodes.
func (g *Graph) AddEdgeNames(u, v string) error {
	ui, ok := g.index[u]
	if !ok {
		return fmt.Errorf("graph: no node named %q", u)
	}
	vi, ok := g.index[v]
	if !ok {
		return fmt.Errorf("graph: no node named %q", v)
	}
	return g.AddEdge(ui, vi)
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// Neighbors returns a copy of u's sorted neighbor indices.
func (g *Graph) Neighbors(u int) []int {
	return append([]int(nil), g.adj[u]...)
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Edge is a directed edge between named nodes; undirected edges appear as
// the two directed halves, matching the paper's model.
type Edge struct {
	From, To string
}

func (e Edge) String() string { return e.From + "->" + e.To }

// DirectedEdges returns every directed edge, sorted lexicographically.
func (g *Graph) DirectedEdges() []Edge {
	edges := make([]Edge, 0, 2*g.NumEdges())
	for u := range g.adj {
		for _, v := range g.adj[u] {
			edges = append(edges, Edge{From: g.names[u], To: g.names[v]})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := MustNew(g.names...)
	for u := range g.adj {
		c.adj[u] = append([]int(nil), g.adj[u]...)
	}
	return c
}

// InducedSubgraph returns the subgraph G_U induced by the given node
// indices, preserving node names. The second result maps subgraph indices
// back to indices in g.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	keep := append([]int(nil), nodes...)
	sort.Ints(keep)
	names := make([]string, len(keep))
	pos := make(map[int]int, len(keep))
	for i, u := range keep {
		names[i] = g.names[u]
		pos[u] = i
	}
	sub := MustNew(names...)
	for i, u := range keep {
		for _, v := range g.adj[u] {
			if j, ok := pos[v]; ok && i < j {
				sub.MustAddEdge(i, j)
			}
		}
	}
	return sub, keep
}

// InEdgeBorder returns the directed edges from nodes outside U into U:
// edges(G) ∩ ((nodes(G)\U) × U), sorted. This is the paper's inedge border
// of the induced subgraph G_U.
func (g *Graph) InEdgeBorder(nodes []int) []Edge {
	in := make(map[int]bool, len(nodes))
	for _, u := range nodes {
		in[u] = true
	}
	var border []Edge
	for u := range g.adj {
		if in[u] {
			continue
		}
		for _, v := range g.adj[u] {
			if in[v] {
				border = append(border, Edge{From: g.names[u], To: g.names[v]})
			}
		}
	}
	sort.Slice(border, func(i, j int) bool {
		if border[i].From != border[j].From {
			return border[i].From < border[j].From
		}
		return border[i].To < border[j].To
	})
	return border
}

// IsConnected reports whether g is connected (true for the empty and
// single-node graphs).
func (g *Graph) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	seen := make([]bool, g.N())
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.N()
}

// ComponentWithout returns the sorted connected component of start in the
// graph with the removed nodes deleted. start must not be removed.
func (g *Graph) ComponentWithout(removed []int, start int) []int {
	gone := make(map[int]bool, len(removed))
	for _, u := range removed {
		gone[u] = true
	}
	if gone[start] {
		panic(fmt.Sprintf("graph: start node %s is removed", g.names[start]))
	}
	seen := map[int]bool{start: true}
	stack := []int{start}
	var comp []int
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		comp = append(comp, u)
		for _, v := range g.adj[u] {
			if !gone[v] && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	sort.Ints(comp)
	return comp
}

// Components returns the connected components of g as sorted index slices,
// ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// String renders the graph as "name: neighbor neighbor ..." lines.
func (g *Graph) String() string {
	var b strings.Builder
	for u, name := range g.names {
		b.WriteString(name)
		b.WriteString(":")
		for _, v := range g.adj[u] {
			b.WriteString(" ")
			b.WriteString(g.names[v])
		}
		b.WriteString("\n")
	}
	return b.String()
}
