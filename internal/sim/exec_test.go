package sim

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"flm/internal/graph"
	"flm/internal/sweep"
)

// encodeRun canonically serializes everything a Run records, so two runs
// are behaviorally identical iff their encodings are byte-identical.
func encodeRun(r *Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d\n", r.Rounds)
	for u := 0; u < r.G.N(); u++ {
		fmt.Fprintf(&b, "input %s=%s\n", r.G.Name(u), r.Inputs[u])
	}
	for u := 0; u < r.G.N(); u++ {
		fmt.Fprintf(&b, "decision %s=%q@%d\n", r.G.Name(u), r.Decisions[u].Value, r.Decisions[u].Round)
	}
	for u := 0; u < r.G.N(); u++ {
		if r.Snapshots != nil {
			fmt.Fprintf(&b, "snapshots %s=%q\n", r.G.Name(u), r.Snapshots[u])
		}
	}
	if r.Edges != nil {
		edges := make([]graph.Edge, 0, len(r.Edges))
		for e := range r.Edges {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		for _, e := range edges {
			fmt.Fprintf(&b, "edge %v=%q\n", e, r.Edges[e])
		}
	}
	return b.String()
}

// TestRunByteIdentical is the determinism regression guard for the
// mailbox fast path and the send-loop iteration order: the same system
// executed twice sequentially, and many times under the parallel sweep
// engine, must record byte-identical Runs.
func TestRunByteIdentical(t *testing.T) {
	g := graph.Complete(5)
	inputs := map[string]Input{}
	for i, name := range g.Names() {
		inputs[name] = Input(EncodeInt(i * 7))
	}
	mk := func() (*Run, error) {
		sys, err := NewSystem(g, gossipProtocol(g, 2, inputs))
		if err != nil {
			return nil, err
		}
		return Execute(sys, 4)
	}
	first, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	want := encodeRun(first)

	second, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeRun(second); got != want {
		t.Fatalf("sequential re-execution diverged:\n--- first ---\n%s\n--- second ---\n%s", want, got)
	}

	defer sweep.SetWorkers(sweep.SetWorkers(8))
	encodings, err := sweep.Map(16, func(int) (string, error) {
		run, err := mk()
		if err != nil {
			return "", err
		}
		return encodeRun(run), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range encodings {
		if got != want {
			t.Fatalf("parallel execution %d diverged from the sequential run", i)
		}
	}
}

// TestFastModeMatchesFullMode checks that recording options never feed
// back into execution: decisions agree bit for bit, and the fast run
// simply carries no snapshots or edges.
func TestFastModeMatchesFullMode(t *testing.T) {
	g := graph.Complete(4)
	inputs := map[string]Input{}
	for i, name := range g.Names() {
		inputs[name] = BoolInput(i%2 == 0)
	}
	mkSys := func() *System {
		sys, err := NewSystem(g, gossipProtocol(g, 2, inputs))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	full, err := ExecuteWith(mkSys(), 4, FullRecording)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ExecuteWith(mkSys(), 4, ExecuteOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		if full.Decisions[u] != fast.Decisions[u] {
			t.Errorf("node %s: full decision %+v, fast decision %+v",
				g.Name(u), full.Decisions[u], fast.Decisions[u])
		}
	}
	if fast.Snapshots != nil || fast.Edges != nil {
		t.Errorf("fast run recorded snapshots/edges: %v %v", fast.Snapshots, fast.Edges)
	}
	if _, err := fast.SnapshotsOf(g.Name(0)); err == nil {
		t.Error("SnapshotsOf on a fast run did not error")
	}
	if _, err := Extract(fast, g.Names()); err == nil {
		t.Error("Extract on a fast run did not error")
	}
}

// TestPartialRunOnDecisionError: a mid-round decision-consistency error
// must still yield a diagnosable partial state — snapshots recorded for
// ALL nodes through the failing round, not just the nodes stepped before
// the error was noticed.
func TestPartialRunOnDecisionError(t *testing.T) {
	g := graph.Line(3) // l0 (flip-flopper) - l1 - l2
	sys, err := NewSystem(g, gossipProtocol(g, 1, uniformInputs(g, "0")))
	if err != nil {
		t.Fatal(err)
	}
	sys.Devices[0] = &flipFlopDecider{} // decides "0"@0, flips to "1"@1
	run, err := Execute(sys, 4)
	if err == nil {
		t.Fatal("decision change accepted")
	}
	if !strings.Contains(err.Error(), "changed its decision") {
		t.Fatalf("unexpected error: %v", err)
	}
	if run == nil {
		t.Fatal("no partial run returned alongside the error")
	}
	// The flip happens in round 1, at node index 0 — the FIRST node of
	// the round. Every other node must still have its round-1 snapshot.
	const errRound = 1
	for u := 0; u < g.N(); u++ {
		for r := 0; r <= errRound; r++ {
			if run.Snapshots[u][r] == "" {
				t.Errorf("node %s round %d snapshot missing from partial run", g.Name(u), r)
			}
		}
	}
}

// TestPartialRunOnBadSend: the non-neighbor-send error also finishes the
// round before returning, and no payload from the offending outbox is
// delivered (all-or-nothing, so the partial state is deterministic).
func TestPartialRunOnBadSend(t *testing.T) {
	g := graph.Line(3)
	sys, err := NewSystem(g, gossipProtocol(g, 1, uniformInputs(g, "0")))
	if err != nil {
		t.Fatal(err)
	}
	sys.Devices[0] = rawSender{to: "l2"} // l2 is not a neighbor of l0
	run, err := Execute(sys, 2)
	if err == nil {
		t.Fatal("send to non-neighbor accepted")
	}
	if run == nil {
		t.Fatal("no partial run returned alongside the error")
	}
	for u := 0; u < g.N(); u++ {
		if run.Snapshots[u][0] == "" {
			t.Errorf("node %s round 0 snapshot missing from partial run", g.Name(u))
		}
	}
}

// TestExecuteWithNoEdgesStillValidatesSends: fast mode must keep the
// model's send validation even though edges are not recorded.
func TestExecuteWithNoEdgesStillValidatesSends(t *testing.T) {
	g := graph.Line(3)
	sys, err := NewSystem(g, gossipProtocol(g, 1, uniformInputs(g, "0")))
	if err != nil {
		t.Fatal(err)
	}
	sys.Devices[0] = rawSender{to: "l2"}
	if _, err := ExecuteWith(sys, 2, ExecuteOpts{}); err == nil {
		t.Error("fast mode accepted a send to a non-neighbor")
	}
}
