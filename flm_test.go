package flm

import (
	"testing"
)

// These tests exercise the public facade end to end, the way a downstream
// user would.

func TestPublicAdequacy(t *testing.T) {
	if Adequate(Triangle(), 1) {
		t.Error("triangle adequate for f=1")
	}
	if !Adequate(Complete(4), 1) {
		t.Error("K4 inadequate for f=1")
	}
	if Adequate(Diamond(), 1) {
		t.Error("diamond adequate for f=1")
	}
	if got := MaxTolerableFaults(Complete(10)); got != 3 {
		t.Errorf("K10 tolerates %d faults, want 3", got)
	}
}

func TestPublicAgreementRun(t *testing.T) {
	g := Complete(4)
	p := Protocol{Builders: map[string]Builder{}, Inputs: map[string]Input{}}
	for i, name := range g.Names() {
		p.Builders[name] = NewEIG(1, g.Names())
		p.Inputs[name] = BoolInput(i%2 == 0)
	}
	sys, err := NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Execute(sys, EIGRounds(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckByzantineAgreement(run, g.Names())
	if !rep.OK() {
		t.Errorf("fault-free EIG run failed: %v", rep.Err())
	}
}

func TestPublicImpossibilityEngine(t *testing.T) {
	g := Triangle()
	builders := map[string]Builder{}
	for _, name := range g.Names() {
		builders[name] = NewMajority(2)
	}
	cr, err := ProveByzantineTriangle(builders, "majority", 8)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Contradicted() {
		t.Fatal("engine found no contradiction")
	}
}

func TestPublicDolevOverlay(t *testing.T) {
	g := Wheel(7)
	r, err := NewRouter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	honest := Overlay(r, NewEIG(1, g.Names()))
	trial := ByzantineTrial{
		G:      g,
		Inputs: map[string]Input{},
		Honest: honest,
		Rounds: r.Rounds(EIGRounds(1)),
	}
	for _, name := range g.Names() {
		trial.Inputs[name] = BoolInput(true)
	}
	_, correct, rep, err := trial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(correct) != 7 || !rep.OK() {
		t.Errorf("overlay run failed: %v", rep.Err())
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if got := len(Experiments()); got != 20 {
		t.Errorf("registry has %d experiments", got)
	}
	e, ok := FindExperiment("E5")
	if !ok {
		t.Fatal("E5 missing")
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "E5" {
		t.Errorf("ran %s", res.ID)
	}
}

func TestPublicCoverConstruction(t *testing.T) {
	c := HexCover()
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	inst, err := InstallCover(c, map[string]Builder{
		"a": NewMajority(2), "b": NewMajority(2), "c": NewMajority(2),
	}, map[string]Input{
		"r0": "0", "r1": "0", "r2": "0", "r3": "1", "r4": "1", "r5": "1",
	})
	if err != nil {
		t.Fatal(err)
	}
	runS, err := inst.Execute(6)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SpliceScenario(inst, runS, []int{1, 2}, map[string]Builder{
		"a": NewMajority(2), "b": NewMajority(2), "c": NewMajority(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Correct) != 2 || len(sp.Faulty) != 1 {
		t.Errorf("splice shape: correct=%v faulty=%v", sp.Correct, sp.Faulty)
	}
}
