package runcache

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The disk tier: a content-addressed blob store. Keys are the same
// canonical sha256 fingerprints the L1 map uses, so a blob written by
// any process is a valid answer for every other — the store is what
// turns the per-process run cache into cross-process and CI-to-CI
// reuse. Layout is git-style fan-out under the root directory:
//
//	<dir>/<hh>/<hex(key)>.blob
//
// where hh is the first hex byte of the key. Each blob is framed and
// digest-protected:
//
//	magic "flmb1" | uvarint payload length | payload | sha256(payload)
//
// Get verifies the frame end to end; a truncated, padded, or
// bit-flipped blob fails verification and is reported as corrupt, which
// the cache treats as a miss (delete, then recompute). Put writes via a
// temp file + rename so concurrent processes never observe a partial
// blob. The store is therefore safe to share between processes with no
// locking: blobs are immutable once visible, and two writers racing on
// one key write identical bytes.

// blobMagic brands every blob file; bump when the frame changes shape.
const blobMagic = "flmb1"

// ErrNotExist reports a key with no blob in the store.
var ErrNotExist = errors.New("runcache: blob not found")

// CorruptError reports a blob that failed frame verification. The cache
// deletes such blobs and recomputes; callers inspecting errors can use
// errors.As to tell corruption (damaged cache dir) from absence.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("runcache: corrupt blob %s: %s", e.Path, e.Reason)
}

func isCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// Store is an on-disk content-addressed blob store rooted at a
// directory. The zero value is not usable; use OpenStore.
type Store struct {
	dir string
}

// OpenStore opens (creating if necessary) a blob store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("runcache: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its blob file. Keys are raw digest strings; hex
// encoding makes them filesystem-safe regardless of content.
func (s *Store) path(key string) string {
	h := hex.EncodeToString([]byte(key))
	fan := "00"
	if len(h) >= 2 {
		fan = h[:2]
	}
	return filepath.Join(s.dir, fan, h+".blob")
}

// Get returns the verified payload stored under key. It returns
// ErrNotExist when no blob exists and a *CorruptError when the blob
// fails frame verification (wrong magic, truncated, trailing garbage,
// or digest mismatch).
func (s *Store) Get(key string) ([]byte, error) {
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotExist
		}
		return nil, err
	}
	payload, reason := verifyBlob(data)
	if reason != "" {
		return nil, &CorruptError{Path: p, Reason: reason}
	}
	return payload, nil
}

// verifyBlob checks the frame and returns the payload, or a non-empty
// rejection reason.
func verifyBlob(data []byte) (payload []byte, reason string) {
	if len(data) < len(blobMagic) || string(data[:len(blobMagic)]) != blobMagic {
		return nil, "bad magic"
	}
	rest := data[len(blobMagic):]
	n, consumed := binary.Uvarint(rest)
	if consumed <= 0 {
		return nil, "unreadable length"
	}
	rest = rest[consumed:]
	if uint64(len(rest)) != n+sha256.Size {
		return nil, "truncated or padded"
	}
	payload = rest[:n]
	sum := sha256.Sum256(payload)
	if subtle.ConstantTimeCompare(sum[:], rest[n:]) != 1 {
		return nil, "digest mismatch"
	}
	return payload, ""
}

// Put writes the payload under key, atomically: the frame is assembled
// in memory, written to a temp file in the target directory, and
// renamed into place. An existing blob is left alone (its content is
// necessarily identical — keys are content addresses).
func (s *Store) Put(key string, payload []byte) error {
	p := s.path(key)
	if _, err := os.Stat(p); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	frame := make([]byte, 0, len(blobMagic)+binary.MaxVarintLen64+len(payload)+sha256.Size)
	frame = append(frame, blobMagic...)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	sum := sha256.Sum256(payload)
	frame = append(frame, sum[:]...)

	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Delete removes the blob stored under key, if any.
func (s *Store) Delete(key string) error {
	err := os.Remove(s.path(key))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Len walks the store and reports the blob count and total file bytes —
// diagnostics for `flm stats` style reporting and tests; not used on
// any hot path.
func (s *Store) Len() (blobs int, bytes int64, err error) {
	err = filepath.WalkDir(s.dir, func(path string, d os.DirEntry, werr error) error {
		if werr != nil || d.IsDir() || !strings.HasSuffix(path, ".blob") {
			return werr
		}
		info, ierr := d.Info()
		if ierr != nil {
			return ierr
		}
		blobs++
		bytes += info.Size()
		return nil
	})
	return blobs, bytes, err
}

// DefaultDir resolves the disk tier's directory from the environment:
// FLM_CACHE_DIR names it directly, the values off/0/none/false disable
// the tier (returning ""), and an unset variable falls back to the
// user cache directory (~/.cache/flm on Linux). When no user cache
// directory can be determined the tier is disabled rather than guessed.
func DefaultDir() string {
	switch v := os.Getenv("FLM_CACHE_DIR"); strings.ToLower(v) {
	case "":
		base, err := os.UserCacheDir()
		if err != nil || base == "" {
			return ""
		}
		return filepath.Join(base, "flm")
	case "off", "0", "none", "false", "no":
		return ""
	default:
		return os.Getenv("FLM_CACHE_DIR")
	}
}
