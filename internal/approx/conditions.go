package approx

import (
	"fmt"
	"math"

	"flm/internal/sim"
)

// Outputs collects the decoded real decisions of the given correct nodes,
// failing if any is missing or non-numeric.
func Outputs(run *sim.Run, correct []string) (map[string]float64, error) {
	outs := make(map[string]float64, len(correct))
	for _, name := range correct {
		d, err := run.DecisionOf(name)
		if err != nil {
			return nil, err
		}
		if d.Value == "" {
			return nil, fmt.Errorf("approx: correct node %s never chose a value", name)
		}
		v, err := sim.DecodeReal(d.Value)
		if err != nil {
			return nil, fmt.Errorf("approx: node %s: %w", name, err)
		}
		outs[name] = v
	}
	return outs, nil
}

// InputRange returns the min and max input among the given correct nodes.
func InputRange(run *sim.Run, correct []string) (lo, hi float64, err error) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, name := range correct {
		u := run.G.MustIndex(name)
		v, err := sim.DecodeReal(string(run.Inputs[u]))
		if err != nil {
			return 0, 0, fmt.Errorf("approx: input of %s: %w", name, err)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi, nil
}

func spread(vals map[string]float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if len(vals) == 0 {
		return 0
	}
	return hi - lo
}

// SimpleReport records the simple approximate agreement conditions.
type SimpleReport struct {
	Termination error
	Agreement   error // output spread strictly smaller than input spread (or both 0)
	Validity    error // outputs inside the input range
}

// OK reports whether every condition holds.
func (r SimpleReport) OK() bool {
	return r.Termination == nil && r.Agreement == nil && r.Validity == nil
}

// Err returns the first violated condition, or nil.
func (r SimpleReport) Err() error {
	switch {
	case r.Termination != nil:
		return r.Termination
	case r.Agreement != nil:
		return r.Agreement
	default:
		return r.Validity
	}
}

// CheckSimple evaluates the simple approximate agreement conditions on a
// run with the given correct nodes.
func CheckSimple(run *sim.Run, correct []string) SimpleReport {
	var rep SimpleReport
	outs, err := Outputs(run, correct)
	if err != nil {
		rep.Termination = err
		return rep
	}
	lo, hi, err := InputRange(run, correct)
	if err != nil {
		rep.Termination = err
		return rep
	}
	inSpread, outSpread := hi-lo, spread(outs)
	if inSpread == 0 {
		if outSpread != 0 {
			rep.Agreement = fmt.Errorf("approx: inputs agree but outputs spread %v", outSpread)
		}
	} else if outSpread >= inSpread {
		rep.Agreement = fmt.Errorf("approx: output spread %v not smaller than input spread %v", outSpread, inSpread)
	}
	for _, name := range correct {
		if v := outs[name]; v < lo || v > hi {
			rep.Validity = fmt.Errorf("approx: node %s chose %v outside input range [%v,%v]", name, v, lo, hi)
			break
		}
	}
	return rep
}

// EDGReport records the (ε,δ,γ)-agreement conditions.
type EDGReport struct {
	Termination error
	Agreement   error // outputs within eps of each other
	Validity    error // outputs within [min-gamma, max+gamma]
}

// OK reports whether every condition holds.
func (r EDGReport) OK() bool {
	return r.Termination == nil && r.Agreement == nil && r.Validity == nil
}

// Err returns the first violated condition, or nil.
func (r EDGReport) Err() error {
	switch {
	case r.Termination != nil:
		return r.Termination
	case r.Agreement != nil:
		return r.Agreement
	default:
		return r.Validity
	}
}

// CheckEDG evaluates the (ε,δ,γ)-agreement conditions. The caller is
// responsible for only applying it to runs whose correct inputs are at
// most δ apart (the problem's precondition).
func CheckEDG(run *sim.Run, correct []string, eps, gamma float64) EDGReport {
	var rep EDGReport
	outs, err := Outputs(run, correct)
	if err != nil {
		rep.Termination = err
		return rep
	}
	lo, hi, err := InputRange(run, correct)
	if err != nil {
		rep.Termination = err
		return rep
	}
	const slack = 1e-9 // floating-point tolerance on the closed bounds
	if s := spread(outs); s > eps+slack {
		rep.Agreement = fmt.Errorf("approx: outputs spread %v exceeds eps=%v", s, eps)
	}
	for _, name := range correct {
		if v := outs[name]; v < lo-gamma-slack || v > hi+gamma+slack {
			rep.Validity = fmt.Errorf("approx: node %s chose %v outside [%v,%v]",
				name, v, lo-gamma, hi+gamma)
			break
		}
	}
	return rep
}
