package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// obsPkgPath is the observability layer whose disabled path must stay
// zero-alloc (the cardinal rule in internal/obs's package doc, pinned
// by BenchmarkObsDisabled).
const obsPkgPath = "flm/internal/obs"

// ObsCost flags span/event/attr construction for internal/obs that is
// not dominated by an obs.Enabled() guard: a call to obs.StartSpan,
// obs.Event, or (*obs.Span).SetAttrs that passes attributes allocates
// its variadic []Attr (and evaluates every attribute expression) even
// when tracing is off, so such calls must sit behind
//
//	if obs.Enabled() { ... }      // or a bool derived from it
//	if sp != nil { ... }          // a span only exists when enabled
//
// or an equivalent early return (`if !traced { return }`). Calls with
// zero attributes and a literal name are free (the callee's own atomic
// check suffices) and are not flagged. Helpers that are only invoked
// from guarded call sites declare that contract with a function-level
// //flmlint:allow flmobscost directive.
var ObsCost = &Analyzer{
	Name: "flmobscost",
	Doc:  "require obs attr construction to be dominated by an obs.Enabled()/nil-span guard",
	Run:  runObsCost,
}

func runObsCost(pass *Pass) {
	// The obs package itself builds attrs behind its own atomic check.
	if pass.Pkg.Path() == obsPkgPath {
		return
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		walkGuarded(pass, file, checkObsCall)
	}
}

// walkGuarded walks every function in the file with a guardWalker,
// invoking onCall on each call expression along with whether the call
// site is dominated by an obs.Enabled()/nil-span guard. Shared by
// flmobscost (attr construction) and flmdeterminism (wall-clock reads,
// which are allowed when they can only feed tracing).
func walkGuarded(pass *Pass, file *ast.File, onCall func(*Pass, *ast.CallExpr, bool)) {
	w := &guardWalker{pass: pass, onCall: onCall}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				w.enabledVars = enabledBoolVars(pass, n.Body)
				w.stmts(n.Body.List, false)
			}
			return false
		case *ast.FuncLit:
			// Top-level literals (package var initializers).
			w.enabledVars = enabledBoolVars(pass, n.Body)
			w.stmts(n.Body.List, false)
			return false
		}
		return true
	})
}

// enabledBoolVars collects objects assigned from obs.Enabled() anywhere
// in the function (`traced := obs.Enabled()`), so `if traced { ... }`
// counts as a guard.
func enabledBoolVars(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if name, ok := pkgFuncCall(pass, call, obsPkgPath); !ok || name != "Enabled" {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					vars[obj] = true
				}
			}
		}
		return true
	})
	return vars
}

// guardWalker walks statements tracking whether the current position
// is dominated by an enabled-guard, calling onCall at each call site.
type guardWalker struct {
	pass        *Pass
	enabledVars map[types.Object]bool
	onCall      func(*Pass, *ast.CallExpr, bool)
}

// stmts walks a statement list; a leading `if <not-enabled> { ...return }`
// guards everything after it.
func (w *guardWalker) stmts(list []ast.Stmt, guarded bool) {
	for _, s := range list {
		w.stmt(s, guarded)
		if !guarded {
			if ifs, ok := s.(*ast.IfStmt); ok && ifs.Init == nil && ifs.Else == nil &&
				w.isNegatedGuard(ifs.Cond) && terminates(ifs.Body) {
				guarded = true
			}
		}
	}
}

func (w *guardWalker) stmt(s ast.Stmt, guarded bool) {
	switch s := s.(type) {
	case nil:
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, guarded)
		}
		w.exprs(guarded, s.Cond)
		thenGuard := guarded || w.isGuard(s.Cond)
		elseGuard := guarded || w.isNegatedGuard(s.Cond)
		w.stmts(s.Body.List, thenGuard)
		if s.Else != nil {
			w.stmt(s.Else, elseGuard)
		}
	case *ast.BlockStmt:
		w.stmts(s.List, guarded)
	case *ast.ForStmt:
		w.stmt(s.Init, guarded)
		w.exprs(guarded, s.Cond)
		w.stmt(s.Post, guarded)
		w.stmts(s.Body.List, guarded)
	case *ast.RangeStmt:
		w.exprs(guarded, s.X)
		w.stmts(s.Body.List, guarded)
	case *ast.SwitchStmt:
		w.stmt(s.Init, guarded)
		w.exprs(guarded, s.Tag)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.exprs(guarded, cc.List...)
			w.stmts(cc.Body, guarded)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, guarded)
		w.stmt(s.Assign, guarded)
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, guarded)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.stmt(cc.Comm, guarded)
			w.stmts(cc.Body, guarded)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, guarded)
	case *ast.AssignStmt:
		w.exprs(guarded, s.Rhs...)
		w.exprs(guarded, s.Lhs...)
	case *ast.ExprStmt:
		w.exprs(guarded, s.X)
	case *ast.DeferStmt:
		w.exprs(guarded, s.Call)
	case *ast.GoStmt:
		w.exprs(guarded, s.Call)
	case *ast.ReturnStmt:
		w.exprs(guarded, s.Results...)
	case *ast.SendStmt:
		w.exprs(guarded, s.Chan, s.Value)
	case *ast.IncDecStmt:
		w.exprs(guarded, s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(guarded, vs.Values...)
				}
			}
		}
	}
}

// exprs checks expressions for flagged obs calls; function literals
// inside get a fresh scope (their bodies run at an unknown time, so the
// surrounding guard is assumed to still hold — the literal inherits the
// current guard state, which matches the worker-closure idiom where the
// closure is built inside `if traced`).
func (w *guardWalker) exprs(guarded bool, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				saved := w.enabledVars
				w.enabledVars = enabledBoolVars(w.pass, n.Body)
				for k, v := range saved {
					w.enabledVars[k] = v
				}
				w.stmts(n.Body.List, guarded)
				w.enabledVars = saved
				return false
			case *ast.CallExpr:
				w.onCall(w.pass, n, guarded)
			}
			return true
		})
	}
}

// checkObsCall is the flmobscost per-call hook: it flags attr-carrying
// obs calls at unguarded positions.
func checkObsCall(pass *Pass, call *ast.CallExpr, guarded bool) {
	if guarded {
		return
	}
	if name, ok := pkgFuncCall(pass, call, obsPkgPath); ok {
		switch name {
		case "StartSpan", "Event":
			if len(call.Args) > 2 {
				pass.Reportf(call.Pos(), "obs.%s builds %d attr(s) outside an obs.Enabled() guard: the disabled path must stay zero-alloc (wrap in `if obs.Enabled()` or guard on a nil span)", name, len(call.Args)-2)
			} else if len(call.Args) == 2 && containsCall(call.Args[1]) {
				pass.Reportf(call.Pos(), "obs.%s computes its name outside an obs.Enabled() guard: the expression runs even when tracing is off", name)
			}
		case "SetProgressPhase", "ProgressSweepStart", "ProgressTrialStart", "ProgressTrialDone", "ProgressTrialFault":
			// The progress mutators take the progress mutex and touch the
			// per-worker map — engine hot paths must only reach them when
			// tracing is on.
			pass.Reportf(call.Pos(), "obs.%s mutates live-progress state (mutex + worker map) outside an obs.Enabled() guard: the disabled path must not pay for telemetry", name)
		}
		return
	}
	// (*obs.Span).SetAttrs with at least one attribute.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "SetAttrs" || len(call.Args) == 0 {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	fn := selection.Obj()
	if fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath {
		return
	}
	pass.Reportf(call.Pos(), "Span.SetAttrs builds %d attr(s) outside an obs.Enabled()/nil-span guard: the variadic []Attr allocates even on a nil span", len(call.Args))
}

// isGuard reports whether cond establishes "tracing is on": a call to
// obs.Enabled(), a bool assigned from it, a non-nil check on a *obs.Span,
// or a conjunction containing one.
func (w *guardWalker) isGuard(cond ast.Expr) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.CallExpr:
		name, ok := pkgFuncCall(w.pass, c, obsPkgPath)
		return ok && name == "Enabled"
	case *ast.Ident:
		return w.enabledVars[w.pass.TypesInfo.ObjectOf(c)]
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "&&":
			return w.isGuard(c.X) || w.isGuard(c.Y)
		case "!=":
			return w.isSpanNilCompare(c)
		}
	}
	return false
}

func (w *guardWalker) isNegatedGuard(cond ast.Expr) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		return c.Op.String() == "!" && w.isGuard(c.X)
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "||":
			return w.isNegatedGuard(c.X) || w.isNegatedGuard(c.Y)
		case "==":
			return w.isSpanNilCompare(c)
		}
	}
	return false
}

// isSpanNilCompare reports whether the comparison has an observability
// handle on one side and nil on the other. Handles are *obs.Span and
// *obs.Tracer, plus — by repo convention — any pointer to a named type
// whose name ends in "Obs" (e.g. sweep's *workerObs): such per-call
// observability bundles are only non-nil when tracing was enabled at
// construction, so a nil check dominates exactly like obs.Enabled().
func (w *guardWalker) isSpanNilCompare(c *ast.BinaryExpr) bool {
	spanSide := func(e ast.Expr) bool {
		t := w.pass.TypesInfo.TypeOf(e)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return false
		}
		name := named.Obj().Name()
		if named.Obj().Pkg().Path() == obsPkgPath {
			return name == "Span" || name == "Tracer"
		}
		return strings.HasSuffix(name, "Obs")
	}
	nilSide := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil" && w.pass.TypesInfo.ObjectOf(id) == types.Universe.Lookup("nil")
	}
	return (spanSide(c.X) && nilSide(c.Y)) || (nilSide(c.X) && spanSide(c.Y))
}

// terminates reports whether the block always transfers control away
// (ends in return, panic, continue, break, or goto).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// containsCall reports whether the expression contains any function
// call (work that would run on the disabled path).
func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
