package main

import (
	"path/filepath"
	"strings"
	"testing"

	"flm"
)

// TestBenchBypassesDiskTier pins the bench hygiene rule: `flm bench`
// measures cold in-process numbers, so even with a disk tier installed
// (as main() does for every other command) the bench run must write no
// blobs and must reinstall the tier when it finishes.
func TestBenchBypassesDiskTier(t *testing.T) {
	cacheDir := t.TempDir()
	restore, err := flm.SetRunCacheDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	outPath := filepath.Join(t.TempDir(), "bench.json")
	out, code := capture(t, "bench",
		"-entries", "micro:eig-n10-f3-fast", "-runs", "1", "-compare", "off", "-o", outPath)
	if code != 0 {
		t.Fatalf("bench exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "micro:eig-n10-f3-fast") {
		t.Fatalf("bench did not run the requested entry:\n%s", out)
	}

	blobs, err := filepath.Glob(filepath.Join(cacheDir, "*", "*.blob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 0 {
		t.Fatalf("bench wrote %d blobs to the disk tier: %v", len(blobs), blobs)
	}
	if got := flm.RunCacheDir(); got != cacheDir {
		t.Fatalf("bench left the disk tier at %q, want %q restored", got, cacheDir)
	}
}
