package core

import (
	"fmt"
	"math"

	"flm/internal/approx"
	"flm/internal/graph"
	"flm/internal/sim"
)

// SimpleApproxNodes mechanizes Theorem 5 (simple approximate agreement
// needs 3f+1 nodes). The construction is exactly the Byzantine one — the
// two-copy covering with inputs 0 and 1 — but the evaluated conditions
// are the approximate ones:
//
//	E1: blocks b,c correct, inputs all 0 -> validity forces every choice to 0
//	E2: c (copy 0) and a (copy 1) correct -> choices strictly closer than 1 apart
//	E3: blocks a,b correct, inputs all 1 -> validity forces every choice to 1
//
// If E1 and E3 hold, the choices in E2 are 0 and 1, no closer than the
// inputs — violating the strict-contraction agreement condition.
func SimpleApproxNodes(g *graph.Graph, f int, a, b, c []int, builders map[string]sim.Builder, device string, rounds int) (*ChainResult, error) {
	if g.N() > 3*f {
		return nil, fmt.Errorf("core: graph has %d > 3f = %d nodes; not inadequate by node count", g.N(), 3*f)
	}
	cover, err := graph.PartitionCover(g, a, b, c)
	if err != nil {
		return nil, err
	}
	inst, err := InstallCover(cover, builders, copyInputs(cover.S, sim.RealInput(0), sim.RealInput(1)))
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(rounds)
	if err != nil {
		return nil, err
	}
	cr := &ChainResult{
		Theorem:   "Theorem 5 (3f+1 nodes)",
		Problem:   "simple approximate agreement",
		Device:    device,
		F:         f,
		G:         g,
		CoverSize: cover.S.N(),
		RunS:      runS,
	}
	n := g.N()
	shift := func(nodes []int) []int {
		out := make([]int, len(nodes))
		for i, u := range nodes {
			out[i] = u + n
		}
		return out
	}
	scenarios := []struct {
		name   string
		u      []int
		expect string
	}{
		{"E1", append(append([]int(nil), b...), c...), "validity pins every choice to 0"},
		{"E2", append(append([]int(nil), c...), shift(a)...), "choices must be strictly closer than the inputs (1 apart)"},
		{"E3", append(shift(a), shift(b)...), "validity pins every choice to 1"},
	}
	for _, sc := range scenarios {
		sp, err := SpliceScenario(inst, runS, sc.u, builders)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", sc.name, err)
		}
		cr.addLink(Link{
			Name: sc.name, Splice: sp, Expect: sc.expect,
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		rep := approx.CheckSimple(sp.Run, sp.Correct)
		cr.addApproxViolations(sc.name, rep)
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: no condition violated across E1,E2,E3 — impossible:\n%s", cr)
	}
	return cr, nil
}

// SimpleApproxTriangle runs the f=1 hexagon case of Theorem 5.
func SimpleApproxTriangle(builders map[string]sim.Builder, device string, rounds int) (*ChainResult, error) {
	return SimpleApproxNodes(graph.Triangle(), 1, []int{0}, []int{1}, []int{2}, builders, device, rounds)
}

func (cr *ChainResult) addApproxViolations(linkName string, rep approx.SimpleReport) {
	if rep.Termination != nil {
		cr.Violations = append(cr.Violations, Violation{
			Link: linkName, Condition: "termination", Detail: rep.Termination.Error(),
		})
	}
	if rep.Agreement != nil {
		cr.Violations = append(cr.Violations, Violation{
			Link: linkName, Condition: "agreement", Detail: rep.Agreement.Error(),
		})
	}
	if rep.Validity != nil {
		cr.Violations = append(cr.Violations, Violation{
			Link: linkName, Condition: "validity", Detail: rep.Validity.Error(),
		})
	}
}

// EDGParams are the (ε,δ,γ)-agreement parameters; the theorem requires
// eps < delta (otherwise choosing one's input solves the problem).
type EDGParams struct {
	Eps, Delta, Gamma float64
}

// RingSize returns the paper's choice of k for Theorem 6 — the smallest k
// with delta > 2*gamma/(k-1) + eps and k+2 divisible by 3 — along with
// the ring size k+2.
func (p EDGParams) RingSize() (k, size int, err error) {
	if p.Eps <= 0 || p.Delta <= 0 || p.Gamma <= 0 {
		return 0, 0, fmt.Errorf("core: eps, delta, gamma must be positive")
	}
	if p.Eps >= p.Delta {
		return 0, 0, fmt.Errorf("core: eps=%v >= delta=%v makes (ε,δ,γ)-agreement trivially solvable", p.Eps, p.Delta)
	}
	k = int(math.Ceil(2*p.Gamma/(p.Delta-p.Eps))) + 2
	for (k+2)%3 != 0 || p.Delta <= 2*p.Gamma/float64(k-1)+p.Eps {
		k++
	}
	return k, k + 2, nil
}

// EpsilonDeltaGamma mechanizes Theorem 6: (ε,δ,γ)-agreement with
// eps < delta is impossible on the triangle (and hence on all inadequate
// graphs). The devices are installed on a ring of k+2 nodes covering the
// triangle, node i receiving input i*delta, and every adjacent pair
// (i, i+1) is spliced into a correct behavior E_i of the triangle with
// the third node faulty. Lemma 7's induction makes the conditions
// collectively unsatisfiable: validity in E_0 bounds node 1's choice by
// delta+gamma, each agreement link adds at most eps, and validity in E_k
// demands at least k*delta-gamma.
func EpsilonDeltaGamma(params EDGParams, builders map[string]sim.Builder, device string, rounds int) (*ChainResult, error) {
	k, size, err := params.RingSize()
	if err != nil {
		return nil, err
	}
	cover := graph.RingCoverTriangle(size)
	inputs := make(map[string]sim.Input, size)
	for i := 0; i < size; i++ {
		inputs[cover.S.Name(i)] = sim.RealInput(float64(i) * params.Delta)
	}
	inst, err := InstallCover(cover, builders, inputs)
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(rounds)
	if err != nil {
		return nil, err
	}
	cr := &ChainResult{
		Theorem:   "Theorem 6 ((ε,δ,γ)-agreement)",
		Problem:   fmt.Sprintf("(ε=%v, δ=%v, γ=%v)-agreement", params.Eps, params.Delta, params.Gamma),
		Device:    device,
		F:         1,
		G:         cover.G,
		CoverSize: size,
		RunS:      runS,
	}
	for i := 0; i <= k; i++ {
		name := fmt.Sprintf("S%d", i)
		sp, err := SpliceScenario(inst, runS, []int{i, i + 1}, builders)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		cr.addLink(Link{
			Name: name, Splice: sp,
			Expect:  fmt.Sprintf("choices within ε of each other and within [%v-γ, %v+γ]", float64(i)*params.Delta, float64(i+1)*params.Delta),
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		rep := approx.CheckEDG(sp.Run, sp.Correct, params.Eps, params.Gamma)
		if rep.Termination != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "termination", Detail: rep.Termination.Error()})
		}
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
		if rep.Validity != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "validity", Detail: rep.Validity.Error()})
		}
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: no condition violated across S0..S%d — impossible (Lemma 7 arithmetic):\n%s", k, cr)
	}
	return cr, nil
}

// EpsilonDeltaGammaNodes mechanizes the general node bound of Theorem 6
// (n <= 3f): the devices run on the ring-of-blocks covering with k+2
// positions (...a_i b_i c_i a_{i+1}..., the c-a edges crossed), position
// j holding input j*delta, and every adjacent position pair splices into
// a correct behavior whose inputs are at most delta apart. Lemma 7's
// induction is unchanged.
func EpsilonDeltaGammaNodes(params EDGParams, g *graph.Graph, f int, aSet, bSet, cSet []int, builders map[string]sim.Builder, device string, rounds int) (*ChainResult, error) {
	if g.N() > 3*f {
		return nil, fmt.Errorf("core: graph has %d > 3f = %d nodes; not inadequate by node count", g.N(), 3*f)
	}
	if len(aSet) > f || len(bSet) > f || len(cSet) > f ||
		len(aSet) == 0 || len(bSet) == 0 || len(cSet) == 0 {
		return nil, fmt.Errorf("core: partition blocks must be non-empty with at most f=%d nodes", f)
	}
	k, size, err := params.RingSize()
	if err != nil {
		return nil, err
	}
	block := make([]int, g.N())
	for i := range block {
		block[i] = -1
	}
	for id, set := range [][]int{aSet, bSet, cSet} {
		for _, x := range set {
			if x < 0 || x >= g.N() || block[x] != -1 {
				return nil, fmt.Errorf("core: invalid partition at node %d", x)
			}
			block[x] = id
		}
	}
	for x, id := range block {
		if id == -1 {
			return nil, fmt.Errorf("core: node %s not covered by the partition", g.Name(x))
		}
	}
	copies := size / 3
	cover := graph.CyclicCover(g, func(u, v int) bool {
		return block[u] == 2 && block[v] == 0 // c_i -> a_(i+1): consecutive positions
	}, copies)
	n := g.N()
	position := make([]int, cover.S.N())
	members := make([][]int, size)
	inputs := make(map[string]sim.Input, cover.S.N())
	for i := range position {
		position[i] = (i/n)*3 + block[i%n]
		members[position[i]] = append(members[position[i]], i)
		inputs[cover.S.Name(i)] = sim.RealInput(float64(position[i]) * params.Delta)
	}
	inst, err := InstallCover(cover, builders, inputs)
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(rounds)
	if err != nil {
		return nil, err
	}
	cr := &ChainResult{
		Theorem:   "Theorem 6 ((ε,δ,γ)-agreement, 3f+1 nodes, general case)",
		Problem:   fmt.Sprintf("(ε=%v, δ=%v, γ=%v)-agreement", params.Eps, params.Delta, params.Gamma),
		Device:    device,
		F:         f,
		G:         g,
		CoverSize: cover.S.N(),
		RunS:      runS,
	}
	for j := 0; j <= k; j++ {
		name := fmt.Sprintf("S%d", j)
		u := append(append([]int(nil), members[j]...), members[j+1]...)
		sp, err := SpliceScenario(inst, runS, u, builders)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		cr.addLink(Link{
			Name: name, Splice: sp,
			Expect:  fmt.Sprintf("choices within ε and within γ of [%v, %v]", float64(j)*params.Delta, float64(j+1)*params.Delta),
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		rep := approx.CheckEDG(sp.Run, sp.Correct, params.Eps, params.Gamma)
		if rep.Termination != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "termination", Detail: rep.Termination.Error()})
		}
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
		if rep.Validity != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "validity", Detail: rep.Validity.Error()})
		}
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: no condition violated across the block ring — impossible:\n%s", cr)
	}
	return cr, nil
}

// EpsilonDeltaGammaConnectivity mechanizes the connectivity bound of
// Theorem 6: k+2 copies of a graph with a <=2f cut in a ring, copy i
// holding input i*delta; the within-copy scenarios (X_i, d faulty) have
// input spread 0 and the cross-copy scenarios (Y_i = c_i ∪ d_i ∪ a_{i-1},
// b faulty) have spread exactly delta.
func EpsilonDeltaGammaConnectivity(params EDGParams, g *graph.Graph, f int, bSet, dSet []int, uNode, vNode int, builders map[string]sim.Builder, device string, rounds int) (*ChainResult, error) {
	if len(bSet) > f || len(dSet) > f {
		return nil, fmt.Errorf("core: cut halves must have at most f=%d nodes", f)
	}
	k, size, err := params.RingSize()
	if err != nil {
		return nil, err
	}
	copies := size // one copy per ring position
	cover, err := graph.CyclicCutCover(g, bSet, dSet, uNode, vNode, copies)
	if err != nil {
		return nil, err
	}
	n := g.N()
	inputs := make(map[string]sim.Input, cover.S.N())
	for i := 0; i < cover.S.N(); i++ {
		inputs[cover.S.Name(i)] = sim.RealInput(float64(i/n) * params.Delta)
	}
	inst, err := InstallCover(cover, builders, inputs)
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(rounds)
	if err != nil {
		return nil, err
	}
	cr := &ChainResult{
		Theorem:   "Theorem 6 ((ε,δ,γ)-agreement, 2f+1 connectivity)",
		Problem:   fmt.Sprintf("(ε=%v, δ=%v, γ=%v)-agreement", params.Eps, params.Delta, params.Gamma),
		Device:    device,
		F:         f,
		G:         g,
		CoverSize: cover.S.N(),
		RunS:      runS,
	}
	aSet, cSet := cutSets(g, bSet, dSet, uNode)
	inD := make(map[int]bool, len(dSet))
	for _, x := range dSet {
		inD[x] = true
	}
	evaluate := func(name string, u []int) error {
		sp, err := SpliceScenario(inst, runS, u, builders)
		if err != nil {
			return fmt.Errorf("core: %s: %w", name, err)
		}
		cr.addLink(Link{
			Name: name, Splice: sp,
			Expect:  "choices within ε and within γ of the inputs",
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		rep := approx.CheckEDG(sp.Run, sp.Correct, params.Eps, params.Gamma)
		if rep.Termination != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "termination", Detail: rep.Termination.Error()})
		}
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
		if rep.Validity != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "validity", Detail: rep.Validity.Error()})
		}
		return nil
	}
	for i := 0; i <= k; i++ {
		var x []int
		for node := 0; node < n; node++ {
			if !inD[node] {
				x = append(x, i*n+node)
			}
		}
		if err := evaluate(fmt.Sprintf("X%d", i), x); err != nil {
			return nil, err
		}
		if i >= 1 {
			var y []int
			for _, node := range cSet {
				y = append(y, i*n+node)
			}
			for _, node := range dSet {
				y = append(y, i*n+node)
			}
			for _, node := range aSet {
				y = append(y, (i-1)*n+node)
			}
			if err := evaluate(fmt.Sprintf("Y%d", i), y); err != nil {
				return nil, err
			}
		}
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: no condition violated across the copy ring — impossible:\n%s", cr)
	}
	return cr, nil
}

// Lemma7Bounds returns, for each node i in 1..k+1, the ceiling that
// Lemma 7's induction places on its choice (delta + gamma + (i-1)*eps)
// and, for node k, the floor validity demands (k*delta - gamma). It is
// exported so the experiment harness can print the induction table next
// to the measured choices.
func Lemma7Bounds(params EDGParams, k int) (ceilings []float64, floorAtK float64) {
	ceilings = make([]float64, k+2)
	for i := 1; i <= k+1; i++ {
		ceilings[i] = params.Delta + params.Gamma + float64(i-1)*params.Eps
	}
	return ceilings, float64(k)*params.Delta - params.Gamma
}
