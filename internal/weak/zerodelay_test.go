package weak

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"flm/internal/graph"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func boolInputsZD(g *graph.Graph, bits int) map[string]string {
	m := make(map[string]string, g.N())
	for i, name := range g.Names() {
		m[name] = "0"
		if bits&(1<<uint(i)) != 0 {
			m[name] = "1"
		}
	}
	return m
}

func TestZeroDelayAllCorrect(t *testing.T) {
	g := graph.Complete(4)
	for bits := 0; bits < 16; bits++ {
		res, err := ZeroDelayRun(g, boolInputsZD(g, bits), nil, rat(0, 1))
		if err != nil {
			t.Fatal(err)
		}
		rep := CheckZD(res, boolInputsZD(g, bits), true)
		if !rep.OK() {
			t.Errorf("bits=%b: %v", bits, rep.Err())
		}
		// Unanimous inputs must yield no anomalies at all.
		if bits == 0 || bits == 15 {
			for name, a := range res.Anomaly {
				if a {
					t.Errorf("bits=%b: %s detected a phantom anomaly", bits, name)
				}
			}
		}
	}
}

// zdPanel is a suite of scripted zero-delay adversaries.
func zdPanel() map[string]ZDStrategy {
	return map[string]ZDStrategy{
		"silent": func(self string, nbs []string) []ZDMessage { return nil },
		"equivocate@half": func(self string, nbs []string) []ZDMessage {
			var out []ZDMessage
			for i, nb := range nbs {
				v := "0"
				if i%2 == 0 {
					v = "1"
				}
				out = append(out, ZDMessage{To: nb, Value: v, Arrive: rat(1, 2)})
			}
			return out
		},
		"late-conflict": func(self string, nbs []string) []ZDMessage {
			out := []ZDMessage{}
			for _, nb := range nbs {
				out = append(out, ZDMessage{To: nb, Value: "1", Arrive: rat(1, 2)})
			}
			// A conflicting second value to one node, arriving very late.
			out = append(out, ZDMessage{To: nbs[0], Value: "0", Arrive: rat(99, 100)})
			return out
		},
		"garbage": func(self string, nbs []string) []ZDMessage {
			var out []ZDMessage
			for _, nb := range nbs {
				out = append(out, ZDMessage{To: nb, Value: "zz", Arrive: rat(1, 2)})
			}
			return out
		},
		"fake-failure": func(self string, nbs []string) []ZDMessage {
			var out []ZDMessage
			for _, nb := range nbs {
				out = append(out, ZDMessage{To: nb, Value: "1", Arrive: rat(1, 2)})
				out = append(out, ZDMessage{To: nb, Failure: true, Arrive: rat(3, 4)})
			}
			return out
		},
		"partial-failure": func(self string, nbs []string) []ZDMessage {
			out := []ZDMessage{}
			for _, nb := range nbs {
				out = append(out, ZDMessage{To: nb, Value: "1", Arrive: rat(1, 2)})
			}
			// A failure notice to one node only, arriving very late.
			out = append(out, ZDMessage{To: nbs[len(nbs)-1], Failure: true, Arrive: rat(999, 1000)})
			return out
		},
	}
}

// Footnote 4's claim: with no minimum delay, weak agreement holds against
// every adversary — even when the adversary outnumbers the correct nodes.
func TestZeroDelaySurvivesEveryAdversary(t *testing.T) {
	for name, strat := range zdPanel() {
		for _, g := range []*graph.Graph{graph.Triangle(), graph.Complete(4)} {
			for bits := 0; bits < 1<<uint(g.N()); bits++ {
				for _, badNode := range g.Names() {
					inputs := boolInputsZD(g, bits)
					res, err := ZeroDelayRun(g, inputs, map[string]ZDStrategy{badNode: strat}, rat(0, 1))
					if err != nil {
						t.Fatal(err)
					}
					rep := CheckZD(res, inputs, false)
					if rep.Agreement != nil {
						t.Errorf("strat=%s n=%d bits=%b bad=%s: %v", name, g.N(), bits, badNode, rep.Agreement)
					}
				}
			}
		}
	}
}

// Two faults among three nodes — a regime where ordinary weak agreement
// is hopeless — still works at zero delay.
func TestZeroDelayMajorityFaulty(t *testing.T) {
	g := graph.Triangle()
	inputs := map[string]string{"a": "1", "b": "1", "c": "1"}
	panel := zdPanel()
	res, err := ZeroDelayRun(g, inputs, map[string]ZDStrategy{
		"b": panel["equivocate@half"],
		"c": panel["late-conflict"],
	}, rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 1 {
		t.Fatalf("decisions: %v", res.Decisions)
	}
	// A single correct node trivially agrees with itself; the point is
	// the run completes and decides.
	if res.Decisions["a"] == "" {
		t.Error("node a did not decide")
	}
}

// The paper's point: a positive minimum delay defeats the algorithm. The
// late-conflict adversary triggers an anomaly so close to the deadline
// that the warning cannot arrive in time.
func TestMinimumDelayBreaksFootnoteFour(t *testing.T) {
	g := graph.Triangle()
	inputs := map[string]string{"a": "1", "b": "1", "c": "1"}
	strat := zdPanel()["late-conflict"]

	// Zero delay: agreement survives (the warning arrives at 199/200).
	res, err := ZeroDelayRun(g, inputs, map[string]ZDStrategy{"c": strat}, rat(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep := CheckZD(res, inputs, false); rep.Agreement != nil {
		t.Fatalf("zero delay: %v", rep.Agreement)
	}

	// Minimum delay 1/50: the anomaly at 99/100 cannot be relayed before
	// time 1, so the victim defaults alone.
	res, err = ZeroDelayRun(g, inputs, map[string]ZDStrategy{"c": strat}, rat(1, 50))
	if err != nil {
		t.Fatal(err)
	}
	if rep := CheckZD(res, inputs, false); rep.Agreement == nil {
		t.Fatalf("minimum delay did not break the algorithm: %v", res.Decisions)
	}
}

func TestZeroDelayValidation(t *testing.T) {
	g := graph.Triangle()
	inputs := map[string]string{"a": "1", "b": "1", "c": "1"}
	if _, err := ZeroDelayRun(g, inputs, nil, nil); err == nil {
		t.Error("nil delay accepted")
	}
	if _, err := ZeroDelayRun(g, inputs, nil, rat(-1, 2)); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := ZeroDelayRun(g, map[string]string{"a": "x", "b": "1", "c": "1"}, nil, rat(0, 1)); err == nil {
		t.Error("bad input accepted")
	}
	bad := func(self string, nbs []string) []ZDMessage {
		return []ZDMessage{{To: "nope", Value: "1", Arrive: rat(1, 2)}}
	}
	if _, err := ZeroDelayRun(g, inputs, map[string]ZDStrategy{"c": bad}, rat(0, 1)); err == nil {
		t.Error("message to non-neighbor accepted")
	}
	noTime := func(self string, nbs []string) []ZDMessage {
		return []ZDMessage{{To: nbs[0], Value: "1"}}
	}
	if _, err := ZeroDelayRun(g, inputs, map[string]ZDStrategy{"c": noTime}, rat(0, 1)); err == nil {
		t.Error("message without arrival time accepted")
	}
}

// Property: at zero delay, a randomized one-fault adversary never breaks
// agreement on K4.
func TestZeroDelayPropertyRandomAdversary(t *testing.T) {
	g := graph.Complete(4)
	prop := func(seed int64, bits uint8, badIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		strat := func(self string, nbs []string) []ZDMessage {
			var out []ZDMessage
			for _, nb := range nbs {
				n := rng.Intn(3)
				for i := 0; i < n; i++ {
					m := ZDMessage{To: nb, Arrive: rat(int64(rng.Intn(200)), 100)}
					switch rng.Intn(3) {
					case 0:
						m.Value = "0"
					case 1:
						m.Value = "1"
					default:
						m.Failure = true
					}
					out = append(out, m)
				}
			}
			return out
		}
		inputs := boolInputsZD(g, int(bits)%16)
		bad := g.Names()[int(badIdx)%g.N()]
		res, err := ZeroDelayRun(g, inputs, map[string]ZDStrategy{bad: strat}, rat(0, 1))
		if err != nil {
			return false
		}
		return CheckZD(res, inputs, false).Agreement == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestZeroDelayDeterminism(t *testing.T) {
	g := graph.Complete(4)
	inputs := boolInputsZD(g, 0x9)
	strat := zdPanel()["equivocate@half"]
	mk := func() string {
		res, err := ZeroDelayRun(g, inputs, map[string]ZDStrategy{"p2": strat}, rat(0, 1))
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(res.Decisions)
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("nondeterministic: %s vs %s", a, b)
	}
}
