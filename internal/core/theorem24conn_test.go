package core

import (
	"strings"
	"testing"

	"flm/internal/approx"
	"flm/internal/byzantine"
	"flm/internal/firingsquad"
	"flm/internal/graph"
	"flm/internal/sim"
	"flm/internal/weak"
)

func TestWeakAgreementCutRingDefeatsDevices(t *testing.T) {
	g := graph.Diamond()
	panel := map[string]sim.Builder{
		"detect-default": weak.NewDetectDefault(4),
		"majority":       byzantine.NewMajority(3),
	}
	for name, builder := range panel {
		t.Run(name, func(t *testing.T) {
			cr, err := WeakAgreementCutRing(g, 1, []int{1}, []int{3}, 0, 2,
				uniformBuilders(g, builder), name, 20)
			if err != nil {
				t.Fatalf("engine error: %v", err)
			}
			if !cr.Contradicted() {
				t.Fatalf("device %s survived the connectivity argument:\n%s", name, cr)
			}
			// Violations must come from the ring scenarios, not the base
			// runs (these devices pass fault-free unanimous runs).
			for _, v := range cr.Violations {
				if strings.HasPrefix(v.Link, "B") {
					t.Errorf("violation in base run: %v", v)
				}
			}
		})
	}
}

func TestWeakAgreementCutRingShape(t *testing.T) {
	g := graph.Diamond()
	cr, err := WeakAgreementCutRing(g, 1, []int{1}, []int{3}, 0, 2,
		uniformBuilders(g, weak.NewDetectDefault(4)), "detect-default", 20)
	if err != nil {
		t.Fatal(err)
	}
	// Cover is m copies of the 4-node diamond with m = 4k.
	if cr.CoverSize%16 != 0 {
		t.Errorf("cover size %d is not 4k copies of 4 nodes", cr.CoverSize)
	}
	m := cr.CoverSize / 4
	// 2 base links + 2m ring links.
	if len(cr.Links) != 2+2*m {
		t.Errorf("links = %d, want %d", len(cr.Links), 2+2*m)
	}
	// Every ring link has at most f=1 faulty G-node set (b or d).
	for _, link := range cr.Links[2:] {
		if len(link.Faulty) != 1 {
			t.Errorf("%s has faulty set %v, want exactly one node", link.Name, link.Faulty)
		}
	}
}

func TestWeakAgreementCutRingRejectsOversizedCut(t *testing.T) {
	g := graph.Diamond()
	if _, err := WeakAgreementCutRing(g, 1, []int{1, 2}, []int{3}, 0, 2,
		uniformBuilders(g, weak.NewDetectDefault(4)), "x", 20); err == nil {
		t.Error("oversized cut half accepted")
	}
}

func TestFiringSquadCutRingDefeatsDevices(t *testing.T) {
	g := graph.Diamond()
	panel := map[string]sim.Builder{
		"countdown-2": firingsquad.NewCountdown(2),
		"countdown-5": firingsquad.NewCountdown(5),
	}
	for name, builder := range panel {
		t.Run(name, func(t *testing.T) {
			cr, err := FiringSquadCutRing(g, 1, []int{1}, []int{3}, 0, 2,
				uniformBuilders(g, builder), name, 30)
			if err != nil {
				t.Fatalf("engine error: %v", err)
			}
			if !cr.Contradicted() {
				t.Fatalf("device %s survived:\n%s", name, cr)
			}
			simultaneity := false
			for _, v := range cr.Violations {
				if strings.HasPrefix(v.Link, "E") && v.Condition == "agreement" {
					simultaneity = true
				}
			}
			if !simultaneity {
				t.Errorf("no simultaneity violation on the ring: %v", cr.Violations)
			}
		})
	}
}

func TestFiringSquadCutRingCatchesDud(t *testing.T) {
	g := graph.Diamond()
	cr, err := FiringSquadCutRing(g, 1, []int{1}, []int{3}, 0, 2,
		uniformBuilders(g, firingsquad.NewCountdown(100)), "dud", 12)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Contradicted() || cr.Violations[0].Link != "B1" {
		t.Errorf("dud not caught in base run: %v", cr.Violations)
	}
}

func TestSimpleApproxConnectivityDefeatsDevices(t *testing.T) {
	g := graph.Diamond()
	panel := map[string]sim.Builder{
		"median":  approx.NewMedian(3),
		"dlpsw-4": approx.NewDLPSW(1, g.Names(), 4),
	}
	for name, builder := range panel {
		t.Run(name, func(t *testing.T) {
			cr, err := SimpleApproxConnectivity(g, 1, []int{1}, []int{3}, 0, 2,
				uniformBuilders(g, builder), name, 12)
			if err != nil {
				t.Fatalf("engine error: %v", err)
			}
			if !cr.Contradicted() {
				t.Fatalf("device %s survived:\n%s", name, cr)
			}
			if cr.CoverSize != 8 {
				t.Errorf("cover size %d, want 8", cr.CoverSize)
			}
		})
	}
}

func TestSimpleApproxConnectivityLargerGraph(t *testing.T) {
	// Circulant(10;1,2) with f=2: cut {1,2,8,9} separates 0 from 5.
	g := graph.Circulant(10, 1, 2)
	cr, err := SimpleApproxConnectivity(g, 2, []int{1, 9}, []int{2, 8}, 0, 5,
		uniformBuilders(g, approx.NewMedian(3)), "median", 12)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Contradicted() {
		t.Fatalf("median survived on the circulant:\n%s", cr)
	}
}
