// Package dolev implements reliable point-to-point communication over
// incomplete graphs in the presence of Byzantine nodes, following Dolev's
// "The Byzantine Generals Strike Again": a message from u to v is sent
// along 2f+1 vertex-disjoint paths, so at most f copies pass through
// faulty relays and the majority of path copies is authentic. An overlay
// adapter runs any complete-graph agreement device (EIG, phase king, ...)
// on top, which is how the 2f+1 connectivity bound of FLM85 is matched
// from above.
package dolev

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"flm/internal/graph"
	"flm/internal/sim"
)

// Router holds the vertex-disjoint path tables for a graph and fault
// bound. It is immutable after construction and shared by all overlay
// devices.
type Router struct {
	g       *graph.Graph
	f       int
	paths   map[[2]int][][]int
	maxHops int
}

// NewRouter computes 2f+1 vertex-disjoint paths for every ordered pair of
// nodes. It fails if the graph's connectivity is below 2f+1 (Dolev's
// requirement, and FLM85's lower bound).
func NewRouter(g *graph.Graph, f int) (*Router, error) {
	need := 2*f + 1
	if conn := g.VertexConnectivity(); conn < need {
		return nil, fmt.Errorf("dolev: connectivity %d < 2f+1 = %d", conn, need)
	}
	r := &Router{g: g, f: f, paths: make(map[[2]int][][]int)}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			paths, err := g.VertexDisjointPaths(u, v, need)
			if err != nil {
				return nil, err
			}
			if len(paths) < need {
				return nil, fmt.Errorf("dolev: only %d disjoint paths between %s and %s",
					len(paths), g.Name(u), g.Name(v))
			}
			paths = paths[:need]
			r.paths[[2]int{u, v}] = paths
			reversed := make([][]int, len(paths))
			for i, p := range paths {
				rp := make([]int, len(p))
				for j, x := range p {
					rp[len(p)-1-j] = x
				}
				reversed[i] = rp
			}
			r.paths[[2]int{v, u}] = reversed
			for _, p := range paths {
				if len(p)-1 > r.maxHops {
					r.maxHops = len(p) - 1
				}
			}
		}
	}
	return r, nil
}

// StretchFactor returns P, the number of simulator rounds one overlay
// round occupies (the longest routing path in hops).
func (r *Router) StretchFactor() int { return r.maxHops }

// Path returns the idx-th disjoint path from origin to dest (as node
// indices), or nil if out of range.
func (r *Router) Path(origin, dest, idx int) []int {
	paths := r.paths[[2]int{origin, dest}]
	if idx < 0 || idx >= len(paths) {
		return nil
	}
	return paths[idx]
}

// NumPaths returns the number of disjoint paths used per pair (2f+1).
func (r *Router) NumPaths() int { return 2*r.f + 1 }

// piece is one routed fragment: a copy of an overlay message traveling
// along one path.
type piece struct {
	origin, dest int
	pathIdx      int
	hop          int // position of the current holder on the path
	innerRound   int
	payload      string // hex-encoded inner payload
}

func (p piece) encode(r *Router) string {
	return fmt.Sprintf("%s>%s>%d,%d,%d,%s",
		r.g.Name(p.origin), r.g.Name(p.dest), p.pathIdx, p.hop, p.innerRound, p.payload)
}

func decodePiece(r *Router, s string) (piece, bool) {
	var p piece
	parts := strings.SplitN(s, ",", 4)
	if len(parts) != 4 {
		return p, false
	}
	route := strings.Split(parts[0], ">")
	if len(route) != 3 {
		return p, false
	}
	origin, ok1 := r.g.Index(route[0])
	dest, ok2 := r.g.Index(route[1])
	if !ok1 || !ok2 {
		return p, false
	}
	pathIdx, err1 := sim.DecodeInt(route[2])
	hop, err2 := sim.DecodeInt(parts[1])
	innerRound, err3 := sim.DecodeInt(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return p, false
	}
	if _, err := hex.DecodeString(parts[3]); err != nil {
		return p, false
	}
	p = piece{origin: origin, dest: dest, pathIdx: pathIdx, hop: hop, innerRound: innerRound, payload: parts[3]}
	return p, true
}

// overlayDevice runs an inner complete-graph device over Dolev routing.
type overlayDevice struct {
	router  *Router
	inner   sim.Device
	self    int
	nbs     map[string]bool
	outbox  []piece               // pieces to transmit next round
	arrived map[arrivalKey]string // (origin, innerRound, pathIdx) -> payload (first copy wins)
}

type arrivalKey struct {
	origin, innerRound, pathIdx int
}

var _ sim.Device = (*overlayDevice)(nil)

// Overlay wraps an inner builder so the resulting devices run on the
// router's (possibly sparse) graph. The inner device is built believing
// it sits on the complete graph over all node names; each of its rounds
// occupies StretchFactor() simulator rounds.
func Overlay(router *Router, inner sim.Builder) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		u := router.g.MustIndex(self)
		peers := make([]string, 0, router.g.N()-1)
		for _, name := range router.g.Names() {
			if name != self {
				peers = append(peers, name)
			}
		}
		d := &overlayDevice{
			router:  router,
			inner:   inner(self, peers, input),
			self:    u,
			nbs:     make(map[string]bool, len(neighbors)),
			arrived: make(map[arrivalKey]string),
		}
		for _, nb := range neighbors {
			d.nbs[nb] = true
		}
		return d
	}
}

func (d *overlayDevice) Init(self string, neighbors []string, input sim.Input) {
	// The inner device was built with its complete-graph view.
}

func (d *overlayDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	d.ingest(inbox)
	p := d.router.StretchFactor()
	if round%p == 0 {
		innerRound := round / p
		d.stepInner(innerRound)
	}
	return d.flush()
}

// ingest validates and routes incoming pieces: recording copies addressed
// to us, forwarding the rest one hop.
func (d *overlayDevice) ingest(inbox sim.Inbox) {
	senders := make([]string, 0, len(inbox))
	for s := range inbox {
		senders = append(senders, s)
	}
	sort.Strings(senders)
	for _, from := range senders {
		fromIdx, ok := d.router.g.Index(from)
		if !ok {
			continue
		}
		for _, frag := range strings.Split(string(inbox[from]), "&") {
			pc, ok := decodePiece(d.router, frag)
			if !ok {
				continue
			}
			path := d.router.Path(pc.origin, pc.dest, pc.pathIdx)
			if path == nil || pc.hop <= 0 || pc.hop >= len(path) {
				continue
			}
			// We must be the node at position hop, fed by position hop-1.
			if path[pc.hop] != d.self || path[pc.hop-1] != fromIdx {
				continue
			}
			if pc.hop == len(path)-1 {
				// We are the destination: record the first copy per path.
				key := arrivalKey{origin: pc.origin, innerRound: pc.innerRound, pathIdx: pc.pathIdx}
				if _, dup := d.arrived[key]; !dup {
					d.arrived[key] = pc.payload
				}
				continue
			}
			next := pc
			next.hop++
			d.outbox = append(d.outbox, next)
		}
	}
}

// stepInner decodes the majority inbox for the inner round and launches
// the inner device's new messages along all disjoint paths.
func (d *overlayDevice) stepInner(innerRound int) {
	innerInbox := sim.Inbox{}
	if innerRound > 0 {
		for origin := 0; origin < d.router.g.N(); origin++ {
			if origin == d.self {
				continue
			}
			counts := map[string]int{}
			for idx := 0; idx < d.router.NumPaths(); idx++ {
				key := arrivalKey{origin: origin, innerRound: innerRound - 1, pathIdx: idx}
				if copyVal, ok := d.arrived[key]; ok {
					counts[copyVal]++
				}
				delete(d.arrived, key)
			}
			best, bestN := "", 0
			keys := make([]string, 0, len(counts))
			for v := range counts {
				keys = append(keys, v)
			}
			sort.Strings(keys)
			for _, v := range keys {
				if counts[v] > bestN {
					best, bestN = v, counts[v]
				}
			}
			// Authentic iff a majority of the 2f+1 paths agree.
			if bestN >= d.router.f+1 {
				decoded, err := hex.DecodeString(best)
				if err == nil && len(decoded) > 0 {
					innerInbox[d.router.g.Name(origin)] = sim.Payload(decoded)
				}
			}
		}
	}
	out := d.inner.Step(innerRound, innerInbox)
	for to, payload := range out {
		dest, ok := d.router.g.Index(to)
		if !ok || payload == sim.None {
			continue
		}
		encoded := hex.EncodeToString([]byte(payload))
		for idx := 0; idx < d.router.NumPaths(); idx++ {
			d.outbox = append(d.outbox, piece{
				origin: d.self, dest: dest, pathIdx: idx, hop: 1,
				innerRound: innerRound, payload: encoded,
			})
		}
	}
}

// flush groups queued pieces by next-hop neighbor into one payload each.
func (d *overlayDevice) flush() sim.Outbox {
	byNeighbor := map[string][]string{}
	for _, pc := range d.outbox {
		path := d.router.Path(pc.origin, pc.dest, pc.pathIdx)
		nextNode := d.router.g.Name(path[pc.hop])
		if !d.nbs[nextNode] {
			continue // cannot happen with consistent tables
		}
		byNeighbor[nextNode] = append(byNeighbor[nextNode], pc.encode(d.router))
	}
	d.outbox = nil
	out := sim.Outbox{}
	for nb, frags := range byNeighbor {
		sort.Strings(frags)
		out[nb] = sim.Payload(strings.Join(frags, "&"))
	}
	return out
}

func (d *overlayDevice) Snapshot() string {
	keys := make([]arrivalKey, 0, len(d.arrived))
	for k := range d.arrived {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.origin != b.origin {
			return a.origin < b.origin
		}
		if a.innerRound != b.innerRound {
			return a.innerRound < b.innerRound
		}
		return a.pathIdx < b.pathIdx
	})
	var b strings.Builder
	b.WriteString("dolev|")
	b.WriteString(d.inner.Snapshot())
	for _, k := range keys {
		fmt.Fprintf(&b, "|%d.%d.%d=%s", k.origin, k.innerRound, k.pathIdx, d.arrived[k])
	}
	return b.String()
}

func (d *overlayDevice) Output() (sim.Decision, bool) { return d.inner.Output() }

// Rounds converts inner-device rounds to overlay simulator rounds.
func (r *Router) Rounds(innerRounds int) int {
	return innerRounds*r.StretchFactor() + 1
}
