// Package sweep is the parallel fan-out engine for the repository's
// embarrassingly parallel workloads: attack-panel sweeps, bit-pattern
// enumerations, frontier censuses, and corollary grids. Each trial in
// those sweeps builds its own System (or timed system), so no mutable
// state crosses trial boundaries and the only coordination needed is
// bounded fan-out plus deterministic collection.
//
// The engine guarantees:
//
//   - results are returned in trial-index order, regardless of which
//     worker finished first;
//   - the reported error is the one from the LOWEST failing trial index
//     (exactly what a sequential loop would have returned first), so
//     parallel and sequential sweeps are observationally identical;
//   - once a trial fails, workers stop picking up new trials (first-error
//     cancellation), but already-running trials complete;
//   - fan-out is bounded by Workers() goroutines per call.
package sweep

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flm/internal/obs"
)

// WorkersEnv is the environment variable that overrides the worker count
// for every sweep (0 or unset means GOMAXPROCS). The cmd/flm binary also
// exposes this as a flag.
const WorkersEnv = "FLM_WORKERS"

// overrideWorkers is a process-wide override set by SetWorkers; 0 means
// "use the environment / GOMAXPROCS".
var overrideWorkers atomic.Int64

// SetWorkers fixes the worker count for subsequent sweeps (n <= 0
// restores the default resolution order). It returns the previous
// override. Intended for the CLI flag and for tests that pin parallelism.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(overrideWorkers.Swap(int64(n)))
}

// warnOnce gates the one-time malformed-FLM_WORKERS warning; warnf is a
// test seam (defaults to stderr).
var (
	warnOnce sync.Once
	warnf    = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format, args...) }
)

// Workers reports the number of workers a sweep will use: the SetWorkers
// override if set, else FLM_WORKERS if set to a positive integer, else
// GOMAXPROCS. A malformed or negative FLM_WORKERS value falls back to
// GOMAXPROCS with a one-time warning ("0" and "" are valid spellings of
// the default and warn nothing).
func Workers() int {
	if n := int(overrideWorkers.Load()); n > 0 {
		return n
	}
	if s := os.Getenv(WorkersEnv); s != "" {
		n, err := strconv.Atoi(s)
		switch {
		case err == nil && n > 0:
			return n
		case err != nil || n < 0:
			warnOnce.Do(func() {
				warnf("sweep: ignoring invalid %s=%q (want a non-negative integer); using GOMAXPROCS=%d\n",
					WorkersEnv, s, runtime.GOMAXPROCS(0))
			})
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) across Workers() goroutines and
// returns the results in index order. If any call returns an error, the
// sweep is cancelled (no new trials start) and Map returns the error of
// the lowest failing index together with the full result slice gathered
// so far; results at indices that never ran are the zero value.
//
// fn must be safe to call concurrently with distinct indices. Trials must
// not share mutable state; everything a trial touches should be built
// inside fn or be read-only (graphs, builders, parameter structs).
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, fn)
}

// MapCtx is Map with a cancellation path: when ctx is done, workers stop
// claiming new trials (already-running trials complete) and the sweep
// returns ctx.Err() unless a lower-indexed trial already failed with its
// own error.
func MapCtx[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	workers := Workers()
	if workers > n {
		workers = n
	}
	traced := obs.Enabled()
	if traced {
		var sweepSpan *obs.Span
		ctx, sweepSpan = obs.StartSpan(ctx, "sweep.map",
			obs.Int("trials", n), obs.Int("workers", workers))
		mSweeps.Inc()
		defer sweepSpan.End()
		ticket := obs.ProgressSweepStart(n)
		defer ticket.Finish()
	}
	if workers <= 1 {
		// Sequential fast path: no goroutines, identical semantics. Under
		// tracing the loop is booked as worker 0 so `flm stats` sees one
		// fully-busy worker rather than no sweep at all.
		var wo *workerObs
		if traced {
			_, ws := obs.StartSpan(ctx, "sweep.worker", obs.Int("worker", 0))
			started := time.Now()
			wo = &workerObs{}
			defer func() { wo.finish(ws, started) }()
		}
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return results, fmt.Errorf("sweep: cancelled before trial %d: %w", i, err)
			}
			var t0 time.Time
			if wo != nil {
				t0 = wo.begin()
			}
			v, err := fn(i)
			if wo != nil {
				wo.record(time.Since(t0))
			}
			if err != nil {
				if wo != nil {
					wo.fault()
				}
				return results, err
			}
			results[i] = v
		}
		return results, nil
	}

	var (
		next     atomic.Int64 // next trial index to claim
		failed   atomic.Bool  // set once any trial errors
		mu       sync.Mutex   // guards firstErr/firstIdx
		firstErr error
		firstIdx = n
		wg       sync.WaitGroup
	)
	// loop is one worker's claim-and-run cycle; wo is nil on the untraced
	// path, so the only instrumentation cost there is a dead nil check.
	loop := func(wo *workerObs) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n || failed.Load() || ctx.Err() != nil {
				return
			}
			var t0 time.Time
			if wo != nil {
				t0 = wo.begin()
			}
			v, err := fn(i)
			if wo != nil {
				wo.record(time.Since(t0))
			}
			if err != nil {
				if wo != nil {
					wo.fault()
				}
				failed.Store(true)
				mu.Lock()
				if i < firstIdx {
					firstIdx, firstErr = i, err
				}
				mu.Unlock()
				return
			}
			results[i] = v
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			if !traced {
				loop(nil)
				return
			}
			_, ws := obs.StartSpan(ctx, "sweep.worker", obs.Int("worker", w))
			started := time.Now()
			wo := workerObs{worker: w}
			doLabeled(ctx, w, func() { loop(&wo) })
			wo.finish(ws, started)
		}(w)
	}
	wg.Wait()
	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			return results, fmt.Errorf("sweep: cancelled: %w", err)
		}
	}
	return results, firstErr
}

// Each is Map for trials that produce no result value.
func Each(n int, fn func(i int) error) error {
	_, err := Map(n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
