// Package byzantine implements Byzantine agreement devices: the
// exponential-information-gathering (EIG) protocol of Pease, Shostak and
// Lamport (optimal: n >= 3f+1, f+1 communication rounds), the polynomial
// phase-king protocol of Berman and Garay (n >= 4f+1), and a panel of
// naive devices that the FLM85 impossibility engine defeats on inadequate
// graphs. It also provides the Byzantine agreement correctness conditions
// as checkable predicates.
package byzantine

import (
	"fmt"
	"sort"
	"strings"

	"flm/internal/sim"
)

// DefaultValue is the value adopted on ties and missing data; any fixed
// value works for the agreement proofs.
const DefaultValue = "0"

// NewEIG returns a builder for EIG devices tolerating f faults among the
// given peer set (which must include every node of the complete
// communication graph, including the device's own node).
//
// The builder hoists everything fixed across a sweep: the sorted peer
// set, the device fingerprint, and the flat tree shape (level offsets,
// interned label strings, per-slot membership masks), all shared by every
// device it constructs. Peer sets the flat representation cannot index
// (see eigShapeFor) fall back to the map-based reference device, which is
// observably identical.
func NewEIG(f int, peers []string) sim.Builder {
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	fp := fmt.Sprintf("byz/eig:f=%d,peers=%s", f, strings.Join(sorted, ","))
	shape := eigShapeFor(f, sorted, fp)
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		nbs := sortedNames(neighbors)
		if shape != nil {
			if idx, ok := shape.index[self]; ok {
				d := &eigFlatDevice{shape: shape, selfIdx: idx}
				d.init(self, nbs, input)
				return d
			}
		}
		d := &eigMapDevice{f: f, peers: sorted, fp: fp}
		d.init(self, nbs, input)
		return d
	}
}

// sortedNames returns a sorted copy of names without re-sorting input
// that is already ordered — the simulator always hands builders sorted
// neighbor lists, so device construction inside a sweep skips the
// redundant sort.
func sortedNames(names []string) []string {
	out := append([]string(nil), names...)
	if !sort.StringsAreSorted(out) {
		sort.Strings(out)
	}
	return out
}

// eigMapDevice is the reference EIG implementation with the tree stored
// as a map keyed by "j1/j2/.../jr" labels. The device builds the EIG tree
// over f+1 relay levels: level-r labels are sequences of r distinct
// process names, and val(σ·j) is what j reported for label σ. After the
// final level it resolves the tree bottom-up by strict majority and
// decides the root value.
//
// The hot path uses eigFlatDevice, which stores the same tree in a
// contiguous slice; this device remains as the fallback for peer sets the
// flat shape cannot index and as the oracle for the equivalence property
// test. The two must stay observably identical (Snapshot, Output,
// payloads, DeviceFingerprint).
type eigMapDevice struct {
	self      string
	peers     []string // all process names, sorted (the complete graph)
	neighbors []string
	f         int
	fp        string
	input     string
	val       map[string]string
	decided   bool
	decision  string
}

var _ sim.Device = (*eigMapDevice)(nil)
var _ sim.Fingerprinter = (*eigMapDevice)(nil)

// DeviceFingerprint is the constructor identity: fault bound and peer
// set. Everything else the device does is determined by these plus the
// (self, neighbors, input) triple the execution cache keys separately.
func (d *eigMapDevice) DeviceFingerprint() string {
	if d.fp == "" {
		d.fp = fmt.Sprintf("byz/eig:f=%d,peers=%s", d.f, strings.Join(d.peers, ","))
	}
	return d.fp
}

func (d *eigMapDevice) Init(self string, neighbors []string, input sim.Input) {
	d.init(self, sortedNames(neighbors), input)
}

// init takes ownership of the sorted neighbors slice.
func (d *eigMapDevice) init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.neighbors = neighbors
	d.input = sanitizeValue(string(input))
	d.val = map[string]string{}
	d.decided = false
	d.decision = ""
}

// sanitizeValue keeps values within the claim-encoding alphabet; anything
// containing a delimiter is replaced by the default (a Byzantine sender
// cannot smuggle structure into honest relays).
func sanitizeValue(v string) string {
	if v == "" || strings.ContainsAny(v, ";=/") {
		return DefaultValue
	}
	return v
}

// claimsAtLevel returns this device's level-r claims: (σ, val(σ)) for
// every stored label σ with |σ| = r not containing self.
func (d *eigMapDevice) claimsAtLevel(r int) []string {
	var claims []string
	for label, v := range d.val {
		if labelLen(label) != r || labelContains(label, d.self) {
			continue
		}
		claims = append(claims, label+"="+v)
	}
	sort.Strings(claims)
	return claims
}

func labelLen(label string) int {
	if label == "" {
		return 0
	}
	return strings.Count(label, "/") + 1
}

func labelContains(label, name string) bool {
	if label == "" {
		return false
	}
	for _, part := range strings.Split(label, "/") {
		if part == name {
			return true
		}
	}
	return false
}

func extendLabel(label, name string) string {
	if label == "" {
		return name
	}
	return label + "/" + name
}

// absorb records the claims carried by a round-(level) payload from the
// named sender, storing val(σ·sender) = v for each well-formed claim
// (σ, v) with |σ| = level-1, sender ∉ σ, and all names known.
func (d *eigMapDevice) absorb(sender string, payload sim.Payload, level int) {
	if payload == sim.None {
		return
	}
	for _, claim := range strings.Split(string(payload), ";") {
		eq := strings.IndexByte(claim, '=')
		if eq < 0 {
			continue
		}
		label, v := claim[:eq], sanitizeValue(claim[eq+1:])
		if labelLen(label) != level-1 || labelContains(label, sender) {
			continue
		}
		if label != "" && !d.validLabel(label) {
			continue
		}
		full := extendLabel(label, sender)
		if _, dup := d.val[full]; dup {
			continue // first claim wins; duplicates are Byzantine noise
		}
		d.val[full] = v
	}
}

func (d *eigMapDevice) validLabel(label string) bool {
	seen := map[string]bool{}
	for _, part := range strings.Split(label, "/") {
		if seen[part] || !d.isPeer(part) {
			return false
		}
		seen[part] = true
	}
	return true
}

func (d *eigMapDevice) isPeer(name string) bool {
	i := sort.SearchStrings(d.peers, name)
	return i < len(d.peers) && d.peers[i] == name
}

// Step implements the EIG schedule: Step(0) broadcasts the input (level-1
// claims); Step(r) for 1 <= r <= f absorbs level-r claims and relays
// level-(r+1) claims; Step(f+1) absorbs the final level and decides.
func (d *eigMapDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	if round > d.f+1 || d.decided {
		if round == d.f+1 && !d.decided {
			d.finishAbsorb(round, inbox)
		}
		return nil
	}
	if round == 0 {
		// Self-delivery of the level-1 claim, then broadcast it.
		d.val[d.self] = d.input
		return d.broadcast(sim.Payload("=" + d.input))
	}
	d.finishAbsorb(round, inbox)
	if round == d.f+1 {
		return nil
	}
	claims := d.claimsAtLevel(round)
	// Self-delivery: our own relays become val(σ·self).
	for _, claim := range claims {
		eq := strings.IndexByte(claim, '=')
		label, v := claim[:eq], claim[eq+1:]
		full := extendLabel(label, d.self)
		if _, dup := d.val[full]; !dup {
			d.val[full] = v
		}
	}
	if len(claims) == 0 {
		return d.broadcast(sim.Payload("-")) // keep traffic shape regular
	}
	return d.broadcast(sim.Payload(strings.Join(claims, ";")))
}

func (d *eigMapDevice) finishAbsorb(round int, inbox sim.Inbox) {
	senders := make([]string, 0, len(inbox))
	for s := range inbox {
		senders = append(senders, s)
	}
	sort.Strings(senders)
	for _, s := range senders {
		d.absorb(s, inbox[s], round)
	}
	if round == d.f+1 {
		d.decision = d.resolve("")
		d.decided = true
	}
}

func (d *eigMapDevice) broadcast(p sim.Payload) sim.Outbox {
	out := sim.Outbox{}
	for _, nb := range d.neighbors {
		out[nb] = p
	}
	return out
}

// resolve computes the decision value of a tree label bottom-up: leaves
// (level f+1) resolve to their stored value; internal labels resolve to
// the strict majority of their children, with DefaultValue on ties or
// missing data.
func (d *eigMapDevice) resolve(label string) string {
	if labelLen(label) == d.f+1 {
		if v, ok := d.val[label]; ok {
			return v
		}
		return DefaultValue
	}
	counts := map[string]int{}
	total := 0
	for _, p := range d.peers {
		if labelContains(label, p) {
			continue
		}
		counts[d.resolve(extendLabel(label, p))]++
		total++
	}
	best, bestCount := DefaultValue, 0
	keys := make([]string, 0, len(counts))
	for v := range counts {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	for _, v := range keys {
		if counts[v] > bestCount {
			best, bestCount = v, counts[v]
		}
	}
	if 2*bestCount > total {
		return best
	}
	return DefaultValue
}

// Snapshot canonically encodes the whole EIG tree plus decision status.
func (d *eigMapDevice) Snapshot() string {
	labels := make([]string, 0, len(d.val))
	for l := range d.val {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	fmt.Fprintf(&b, "eig(f=%d,in=%s,dec=%v:%s)", d.f, d.input, d.decided, d.decision)
	for _, l := range labels {
		b.WriteString("|")
		b.WriteString(l)
		b.WriteString("=")
		b.WriteString(d.val[l])
	}
	return b.String()
}

func (d *eigMapDevice) Output() (sim.Decision, bool) {
	if !d.decided {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: d.decision}, true
}

// EIGRounds returns the number of simulator rounds an EIG run needs:
// f+1 communication rounds plus the deciding step.
func EIGRounds(f int) int { return f + 2 }
