package timedsim

import (
	"math/big"
	"testing"

	"flm/internal/clockfn"
	"flm/internal/graph"
)

// recordedRats collects every *big.Rat reachable from a Run, with a
// stable textual identity for each.
func recordedRats(run *Run) (ptrs []*big.Rat, vals []string) {
	add := func(r *big.Rat) {
		if r != nil {
			ptrs = append(ptrs, r)
			vals = append(vals, r.RatString())
		}
	}
	add(run.Until)
	for u := range run.Ticks {
		for _, tk := range run.Ticks[u] {
			add(tk.Time)
			add(tk.HW)
		}
	}
	for _, recs := range run.Sends {
		for _, rec := range recs {
			add(rec.At)
		}
	}
	for _, hw := range run.FinalHW {
		add(hw)
	}
	return ptrs, vals
}

// TestArenaDoesNotLeakScratchIntoRun pins the arena contract: every
// rational recorded in a Run is a stable value of its own — re-executing
// the same system (which spins the scheduler's scratch state and a fresh
// arena through the same numeric sequence) and mutating the caller's
// Delta afterwards must not change any previously recorded value.
func TestArenaDoesNotLeakScratchIntoRun(t *testing.T) {
	mk := func() *System {
		sys := lineSystem(clockfn.NewRatLinear(3, 2, 1, 2), clockfn.NewRatLinear(5, 3, -1, 3))
		sys.Nodes[0].Script = nil
		return sys
	}
	sys := mk()
	runA, err := Execute(sys, rat(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	ptrs, vals := recordedRats(runA)
	if len(ptrs) == 0 {
		t.Fatal("run recorded no rationals")
	}

	// The run must not alias caller-owned rationals: mutating Delta (or
	// executing again with it) cannot reach into runA.
	for i, p := range ptrs {
		if p == sys.Delta || p == sys.Nodes[0].Clock.Rate || p == sys.Nodes[0].Clock.Off ||
			p == sys.Nodes[1].Clock.Rate || p == sys.Nodes[1].Clock.Off {
			t.Fatalf("recorded rational %d (%s) aliases a caller-owned value", i, vals[i])
		}
	}

	// Re-execute on the same System value: a fresh arena and scratch
	// state walk the same schedule. If any scratch rational had escaped
	// into runA, this would overwrite it.
	if _, err := Execute(sys, rat(6, 1)); err != nil {
		t.Fatal(err)
	}
	// And mutate the caller's inputs outright.
	sys.Delta.SetFrac64(7, 3)
	for i, p := range ptrs {
		if got := p.RatString(); got != vals[i] {
			t.Fatalf("recorded rational %d changed after re-execution: %s -> %s", i, vals[i], got)
		}
	}

	// The designed aliasing is the only aliasing: a tick's Time is the
	// SentAt of the messages sent at that tick, which is fine because Run
	// rationals are immutable; but values from DIFFERENT events never
	// share storage. Spot-check that distinct tick times are distinct
	// pointers.
	seen := map[*big.Rat]string{}
	for u := range runA.Ticks {
		for _, tk := range runA.Ticks[u] {
			if prev, ok := seen[tk.Time]; ok && prev != tk.Time.RatString() {
				t.Fatalf("two events share rational storage: %s vs %s", prev, tk.Time.RatString())
			}
			seen[tk.Time] = tk.Time.RatString()
		}
	}
}

// TestScriptSendTimesCopied: scripted send times are copied into the
// run's arena, so mutating the script afterwards cannot corrupt the
// recorded behavior (scripts are routinely built from another run's
// records and rescaled in place by callers).
func TestScriptSendTimesCopied(t *testing.T) {
	at := rat(1, 2)
	sys := &System{
		G: graph.Line(2),
		Nodes: []Node{
			{Script: []ScriptedSend{{At: at, To: "l1", Payload: "x"}}, Clock: clockfn.RatIdentity()},
			{Device: &beacon{}, Clock: clockfn.RatIdentity()},
		},
		Delta: rat(1, 1),
	}
	run, err := Execute(sys, rat(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	recs := run.Sends[graph.Edge{From: "l0", To: "l1"}]
	if len(recs) != 1 {
		t.Fatalf("recorded %d sends, want 1", len(recs))
	}
	if recs[0].At == at {
		t.Fatal("recorded send time aliases the script's rational")
	}
	at.SetFrac64(9, 1)
	if recs[0].At.RatString() != "1/2" {
		t.Fatalf("recorded send time mutated via script alias: %s", recs[0].At.RatString())
	}
}
