package sim

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"flm/internal/graph"
)

// gossipDevice broadcasts its input in round 0 and thereafter forwards
// everything it has heard, canonically encoded. It decides its own input
// at decideRound. It exercises message flow, snapshots, and decisions.
type gossipDevice struct {
	self        string
	neighbors   []string
	heard       map[string]bool
	input       Input
	decideRound int
	decided     bool
}

func newGossip(decideRound int) Builder {
	return func(self string, neighbors []string, input Input) Device {
		d := &gossipDevice{decideRound: decideRound}
		d.Init(self, neighbors, input)
		return d
	}
}

func (d *gossipDevice) Init(self string, neighbors []string, input Input) {
	d.self = self
	d.neighbors = append([]string(nil), neighbors...)
	d.input = input
	d.heard = map[string]bool{self + "=" + string(input): true}
}

func (d *gossipDevice) Step(round int, inbox Inbox) Outbox {
	for _, p := range inboxValues(inbox) {
		for _, fact := range strings.Split(string(p), ",") {
			if fact != "" {
				d.heard[fact] = true
			}
		}
	}
	if round >= d.decideRound {
		d.decided = true
	}
	msg := Payload(d.factList())
	out := Outbox{}
	for _, nb := range d.neighbors {
		out[nb] = msg
	}
	return out
}

func inboxValues(in Inbox) []Payload {
	keys := make([]string, 0, len(in))
	for k := range in {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]Payload, len(keys))
	for i, k := range keys {
		vals[i] = in[k]
	}
	return vals
}

func (d *gossipDevice) factList() string {
	facts := make([]string, 0, len(d.heard))
	for f := range d.heard {
		facts = append(facts, f)
	}
	sort.Strings(facts)
	return strings.Join(facts, ",")
}

func (d *gossipDevice) Snapshot() string { return d.factList() }

func (d *gossipDevice) Output() (Decision, bool) {
	if !d.decided {
		return Decision{}, false
	}
	return Decision{Value: string(d.input)}, true
}

func gossipProtocol(g *graph.Graph, decideRound int, inputs map[string]Input) Protocol {
	p := Protocol{Builders: map[string]Builder{}, Inputs: inputs}
	for _, name := range g.Names() {
		p.Builders[name] = newGossip(decideRound)
	}
	return p
}

func uniformInputs(g *graph.Graph, in Input) map[string]Input {
	m := make(map[string]Input, g.N())
	for _, name := range g.Names() {
		m[name] = in
	}
	return m
}

func TestExecuteDeliversNextRound(t *testing.T) {
	g := graph.Line(2)
	sys, err := NewSystem(g, gossipProtocol(g, 1, map[string]Input{"l0": "x", "l1": "y"}))
	if err != nil {
		t.Fatal(err)
	}
	run := MustExecute(sys, 3)
	// Round 0: l0 knows only itself.
	if got := run.Snapshots[0][0]; got != "l0=x" {
		t.Errorf("round 0 snapshot = %q", got)
	}
	// Round 1: l0 has received l1's round-0 broadcast.
	if got := run.Snapshots[0][1]; got != "l0=x,l1=y" {
		t.Errorf("round 1 snapshot = %q", got)
	}
	// Edge behavior: round 0 carries l0's solo knowledge.
	seq, err := run.EdgeBehavior("l0", "l1")
	if err != nil {
		t.Fatal(err)
	}
	if seq[0] != "l0=x" || seq[1] != "l0=x,l1=y" {
		t.Errorf("edge behavior = %v", seq)
	}
}

func TestExecuteIsDeterministic(t *testing.T) {
	g := graph.Complete(5)
	inputs := map[string]Input{}
	for i, name := range g.Names() {
		inputs[name] = Input(EncodeInt(i * 7))
	}
	mk := func() *Run {
		sys, err := NewSystem(g, gossipProtocol(g, 2, inputs))
		if err != nil {
			t.Fatal(err)
		}
		return MustExecute(sys, 4)
	}
	a, b := mk(), mk()
	scA, err := Extract(a, g.Names())
	if err != nil {
		t.Fatal(err)
	}
	scB, err := Extract(b, g.Names())
	if err != nil {
		t.Fatal(err)
	}
	if err := scA.EqualUnder(scB, nil, true); err != nil {
		t.Errorf("two identical systems diverged: %v", err)
	}
}

func TestExecuteRejectsNonNeighborSend(t *testing.T) {
	g := graph.Line(3) // l0-l1-l2; l0 and l2 not adjacent
	bad := func(self string, neighbors []string, input Input) Device {
		return NewReplayDevice(nil)
	}
	p := Protocol{
		Builders: map[string]Builder{
			"l0": ReplayBuilder(map[string][]Payload{"l2": {"boo"}}),
			"l1": bad, "l2": bad,
		},
		Inputs: uniformInputs(g, "0"),
	}
	sys, err := NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	// ReplayDevice.Init drops non-neighbor scripts, so construct the
	// violation manually: a device that addresses a non-neighbor.
	sys.Devices[0] = rawSender{to: "l2"}
	if _, err := Execute(sys, 2); err == nil {
		t.Error("send to non-neighbor accepted")
	}
}

type rawSender struct{ to string }

func (r rawSender) Init(string, []string, Input) {}
func (r rawSender) Step(int, Inbox) Outbox       { return Outbox{r.to: "boo"} }
func (r rawSender) Snapshot() string             { return "raw" }
func (r rawSender) Output() (Decision, bool)     { return Decision{}, false }

type flipFlopDecider struct{ round int }

func (d *flipFlopDecider) Init(string, []string, Input) {}
func (d *flipFlopDecider) Step(r int, _ Inbox) Outbox   { d.round = r; return nil }
func (d *flipFlopDecider) Snapshot() string             { return EncodeInt(d.round) }
func (d *flipFlopDecider) Output() (Decision, bool) {
	return Decision{Value: EncodeInt(d.round % 2)}, true
}

func TestExecuteRejectsChangedDecision(t *testing.T) {
	g := graph.Line(1)
	sys := &System{G: g, Devices: []Device{&flipFlopDecider{}}, Inputs: []Input{"0"}}
	if _, err := Execute(sys, 3); err == nil {
		t.Error("decision change accepted")
	}
}

func TestNewSystemValidation(t *testing.T) {
	g := graph.Line(2)
	p := gossipProtocol(g, 1, uniformInputs(g, "0"))
	delete(p.Builders, "l1")
	if _, err := NewSystem(g, p); err == nil {
		t.Error("missing builder accepted")
	}
	p = gossipProtocol(g, 1, uniformInputs(g, "0"))
	delete(p.Inputs, "l0")
	if _, err := NewSystem(g, p); err == nil {
		t.Error("missing input accepted")
	}
}

func TestReplayDeviceReproducesTraffic(t *testing.T) {
	g := graph.Triangle()
	inputs := map[string]Input{"a": "1", "b": "0", "c": "0"}
	sys, err := NewSystem(g, gossipProtocol(g, 2, inputs))
	if err != nil {
		t.Fatal(err)
	}
	run := MustExecute(sys, 4)
	// Replace node a with a replay of its own traffic; b and c must see
	// a byte-identical world.
	ab, _ := run.EdgeBehavior("a", "b")
	ac, _ := run.EdgeBehavior("a", "c")
	p := gossipProtocol(g, 2, inputs)
	p.Builders["a"] = ReplayBuilder(map[string][]Payload{"b": ab, "c": ac})
	sys2, err := NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	run2 := MustExecute(sys2, 4)
	for _, name := range []string{"b", "c"} {
		s1, _ := run.SnapshotsOf(name)
		s2, _ := run2.SnapshotsOf(name)
		for r := range s1 {
			if s1[r] != s2[r] {
				t.Errorf("node %s diverged at round %d under replay", name, r)
			}
		}
	}
}

// TestFaultAxiom verifies the axiom exactly as stated: behaviors of a's
// outedges recorded in two *different* runs can be exhibited
// simultaneously by one faulty device.
func TestFaultAxiom(t *testing.T) {
	g := graph.Triangle()
	mkRun := func(aInput Input) *Run {
		sys, err := NewSystem(g, gossipProtocol(g, 2, map[string]Input{"a": aInput, "b": "0", "c": "0"}))
		if err != nil {
			t.Fatal(err)
		}
		return MustExecute(sys, 4)
	}
	run0, run1 := mkRun("0"), mkRun("1")
	ab, _ := run0.EdgeBehavior("a", "b") // a's behavior toward b when a has input 0
	ac, _ := run1.EdgeBehavior("a", "c") // a's behavior toward c when a has input 1
	p := gossipProtocol(g, 2, map[string]Input{"a": "0", "b": "0", "c": "0"})
	p.Builders["a"] = ReplayBuilder(map[string][]Payload{"b": ab, "c": ac})
	sys, err := NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	run := MustExecute(sys, 4)
	gotAB, _ := run.EdgeBehavior("a", "b")
	gotAC, _ := run.EdgeBehavior("a", "c")
	if err := equalPayloads(gotAB, ab); err != nil {
		t.Errorf("outedge a->b: %v", err)
	}
	if err := equalPayloads(gotAC, ac); err != nil {
		t.Errorf("outedge a->c: %v", err)
	}
}

func TestReplayDropsNonNeighborScripts(t *testing.T) {
	d := NewReplayDevice(map[string][]Payload{"far": {"x"}, "nb": {"y"}})
	d.Init("self", []string{"nb"}, "0")
	out := d.Step(0, nil)
	if _, ok := out["far"]; ok {
		t.Error("script to non-neighbor retained")
	}
	if out["nb"] != "y" {
		t.Error("neighbor script dropped")
	}
}

func TestExtractAndEqualUnder(t *testing.T) {
	g := graph.Triangle()
	inputs := map[string]Input{"a": "0", "b": "0", "c": "1"}
	sys, err := NewSystem(g, gossipProtocol(g, 2, inputs))
	if err != nil {
		t.Fatal(err)
	}
	run := MustExecute(sys, 4)
	sc, err := Extract(run, []string{"b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Internal) != 2 { // b->c and c->b
		t.Errorf("internal edges = %d, want 2", len(sc.Internal))
	}
	if len(sc.Border) != 2 { // a->b and a->c
		t.Errorf("border edges = %d, want 2", len(sc.Border))
	}
	if err := sc.EqualUnder(sc, nil, true); err != nil {
		t.Errorf("scenario not equal to itself: %v", err)
	}
	// Different scenario must not compare equal.
	other, err := Extract(run, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.EqualUnder(other, map[string]string{"b": "a", "c": "b"}, false); err == nil {
		t.Error("distinct scenarios compared equal")
	}
}

func TestExtractValidation(t *testing.T) {
	g := graph.Triangle()
	sys, err := NewSystem(g, gossipProtocol(g, 1, uniformInputs(g, "0")))
	if err != nil {
		t.Fatal(err)
	}
	run := MustExecute(sys, 2)
	if _, err := Extract(run, []string{"zz"}); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := Extract(run, []string{"a", "a"}); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestCheckLocalityHolds(t *testing.T) {
	g := graph.Complete(4)
	inputs := map[string]Input{}
	for i, name := range g.Names() {
		inputs[name] = Input(EncodeInt(i))
	}
	sys, err := NewSystem(g, gossipProtocol(g, 2, inputs))
	if err != nil {
		t.Fatal(err)
	}
	run := MustExecute(sys, 5)
	builders := map[string]Builder{"p1": newGossip(2), "p2": newGossip(2)}
	if _, err := CheckLocality(run, []string{"p1", "p2"}, builders); err != nil {
		t.Errorf("locality axiom failed on honest run: %v", err)
	}
}

func TestCheckLocalityDetectsTampering(t *testing.T) {
	g := graph.Triangle()
	inputs := map[string]Input{"a": "0", "b": "1", "c": "0"}
	sys, err := NewSystem(g, gossipProtocol(g, 2, inputs))
	if err != nil {
		t.Fatal(err)
	}
	run := MustExecute(sys, 4)
	// Supply a builder whose device behaves differently: the replayed
	// scenario can then no longer match.
	builders := map[string]Builder{"b": newGossip(0), "c": newGossip(2)}
	if _, err := CheckLocality(run, []string{"b", "c"}, builders); err == nil {
		t.Error("tampered builder passed the locality check")
	}
}

// TestBoundedDelayOneHopPerRound verifies the Bounded-Delay Locality
// axiom with delta = 1 round: on a long line, changing only the far
// endpoint's input leaves a node at distance d identical through round
// d-1 (news needs d rounds to arrive).
func TestBoundedDelayOneHopPerRound(t *testing.T) {
	const n = 8
	g := graph.Line(n)
	mk := func(farInput Input) *Run {
		inputs := uniformInputs(g, "0")
		inputs[fmt.Sprintf("l%d", n-1)] = farInput
		sys, err := NewSystem(g, gossipProtocol(g, 1, inputs))
		if err != nil {
			t.Fatal(err)
		}
		return MustExecute(sys, n+2)
	}
	runA, runB := mk("0"), mk("9")
	for d := 1; d < n; d++ {
		name := fmt.Sprintf("l%d", n-1-d)
		div, err := PrefixEqual(runA, name, runB, name)
		if err != nil {
			t.Fatal(err)
		}
		if div != d {
			t.Errorf("node at distance %d diverged at round %d, want %d", d, div, d)
		}
	}
}

// Property: executing for more rounds never changes the prefix — runs
// are extensions, not re-rolls.
func TestExecutePrefixStability(t *testing.T) {
	g := graph.Complete(4)
	inputs := map[string]Input{}
	for i, name := range g.Names() {
		inputs[name] = Input(EncodeInt(i))
	}
	mk := func(rounds int) *Run {
		sys, err := NewSystem(g, gossipProtocol(g, 2, inputs))
		if err != nil {
			t.Fatal(err)
		}
		return MustExecute(sys, rounds)
	}
	short, long := mk(3), mk(8)
	for _, name := range g.Names() {
		div, err := PrefixEqual(short, name, long, name)
		if err != nil {
			t.Fatal(err)
		}
		if div != 3 {
			t.Errorf("node %s prefix diverged at %d, want full 3", name, div)
		}
	}
	for e, seq := range short.Edges {
		longSeq := long.Edges[e]
		for r := range seq {
			if seq[r] != longSeq[r] {
				t.Errorf("edge %v round %d differs between horizons", e, r)
			}
		}
	}
}

func TestRunAccessors(t *testing.T) {
	g := graph.Triangle()
	sys, err := NewSystem(g, gossipProtocol(g, 1, uniformInputs(g, "1")))
	if err != nil {
		t.Fatal(err)
	}
	run := MustExecute(sys, 3)
	if _, err := run.EdgeBehavior("a", "zz"); err == nil {
		t.Error("missing edge accepted")
	}
	if _, err := run.DecisionOf("zz"); err == nil {
		t.Error("missing node accepted")
	}
	if _, err := run.SnapshotsOf("zz"); err == nil {
		t.Error("missing node accepted")
	}
	d, err := run.DecisionOf("a")
	if err != nil || d.Value != "1" {
		t.Errorf("decision of a = %+v, %v", d, err)
	}
	if !strings.Contains(run.String(), "a: 1 @r1") {
		t.Errorf("run summary missing decision: %q", run.String())
	}
}

func TestCodecRoundTrips(t *testing.T) {
	for _, b := range []bool{true, false} {
		got, err := DecodeBool(EncodeBool(b))
		if err != nil || got != b {
			t.Errorf("bool %v round trip: %v %v", b, got, err)
		}
	}
	if _, err := DecodeBool("2"); err == nil {
		t.Error("bad bool accepted")
	}
	if _, err := DecodeReal("zz"); err == nil {
		t.Error("bad real accepted")
	}
	if _, err := DecodeInt("1.5"); err == nil {
		t.Error("bad int accepted")
	}
	prop := func(x float64) bool {
		got, err := DecodeReal(EncodeReal(x))
		return err == nil && (got == x || (x != x && got != got)) // NaN-safe
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	propInt := func(n int) bool {
		got, err := DecodeInt(EncodeInt(n))
		return err == nil && got == n
	}
	if err := quick.Check(propInt, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualPayloadsPadding(t *testing.T) {
	// Trailing silence is equal to absence.
	if err := equalPayloads([]Payload{"x"}, []Payload{"x", None, None}); err != nil {
		t.Errorf("padded sequences unequal: %v", err)
	}
	if err := equalPayloads([]Payload{"x"}, []Payload{"x", "y"}); err == nil {
		t.Error("distinct sequences equal")
	}
}
