// Package obs is a fixture stub mirroring the production observability
// API surface the analyzers key on: the package path must be exactly
// flm/internal/obs for pkgFuncCall and the SetAttrs receiver check to
// recognize it.
package obs

import "context"

type Attr struct{ Key, Val string }

func Str(k, v string) Attr         { return Attr{k, v} }
func Int(k string, v int) Attr     { return Attr{k, ""} }
func Int64(k string, v int64) Attr { return Attr{k, ""} }
func Bool(k string, v bool) Attr   { return Attr{k, ""} }

type Span struct{ attrs []Attr }

func (s *Span) SetAttrs(attrs ...Attr) {
	if s != nil {
		s.attrs = append(s.attrs, attrs...)
	}
}

func (s *Span) End() {}

type Tracer struct{}

var on bool

func Enabled() bool { return on }

func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if !on {
		return ctx, nil
	}
	return ctx, &Span{attrs: attrs}
}

func Event(ctx context.Context, name string, attrs ...Attr) {}

// Progress mutators: mutex + worker-map cost, guarded like attrs.

type SweepTicket struct{ n int }

func (t SweepTicket) Finish() {}

func SetProgressPhase(phase string)         {}
func ProgressSweepStart(n int) SweepTicket  { return SweepTicket{n} }
func ProgressTrialStart()                   {}
func ProgressTrialDone(worker int, d int64) {}
func ProgressTrialFault(worker int)         {}
func ResetProgress()                        {}
