package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// get fetches one endpoint path from the test server.
func get(t *testing.T, s *Server, path string) (string, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestServerEndpoints starts a server on an ephemeral port and checks
// every route serves what it claims.
func TestServerEndpoints(t *testing.T) {
	ResetProgress()
	t.Cleanup(ResetProgress)
	c := NewCounter("obstest.server.hits")
	c.Add(7)
	h := NewHistogram("obstest.server.dur_us")
	h.Observe(5)
	ProgressSweepStart(2)
	ProgressTrialStart()
	ProgressTrialDone(0, 10*time.Microsecond)
	SetProgressPhase("E9")

	s, err := StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer s.Close()

	if body, _ := get(t, s, "/healthz"); body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}

	metrics, ctype := get(t, s, "/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content-type %q lacks the exposition version", ctype)
	}
	for _, want := range []string{
		"# TYPE flm_obstest_server_hits counter",
		"flm_obstest_server_hits 7",
		"# TYPE flm_obstest_server_dur_us histogram",
		`flm_obstest_server_dur_us_bucket{le="+Inf"} 1`,
		"flm_obstest_server_dur_us_sum 5",
		"# TYPE flm_progress_trials_done gauge",
		"flm_progress_trials_done 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	progress, ctype := get(t, s, "/progress")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/progress content-type = %q", ctype)
	}
	var info ProgressInfo
	if err := json.Unmarshal([]byte(progress), &info); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, progress)
	}
	if info.Phase != "E9" || info.Total != 2 || info.Done != 1 {
		t.Errorf("/progress = %+v", info)
	}

	if body, _ := get(t, s, "/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}

	if err := s.Close(); err != nil && err != http.ErrServerClosed {
		t.Errorf("Close: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Error("server still accepting after Close")
	}
}

// TestWritePrometheusFormat pins the exposition rendering on a private
// registry: sorted names, sanitized identifiers, the cumulative
// power-of-two bucket ladder, and the empty-histogram degenerate case.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("z.last").Add(2)
	r.NewCounter("a.first").Inc()
	r.NewGauge("queue-depth").Set(-3)
	h := r.NewHistogram("lat.us")
	h.Observe(0) // bucket 0, le="0"
	h.Observe(3) // bit length 2, le="3"
	h.Observe(3)
	r.NewHistogram("empty.hist")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE flm_a_first counter
flm_a_first 1
# TYPE flm_z_last counter
flm_z_last 2
# TYPE flm_queue_depth gauge
flm_queue_depth -3
# TYPE flm_empty_hist histogram
flm_empty_hist_bucket{le="+Inf"} 0
flm_empty_hist_sum 0
flm_empty_hist_count 0
# TYPE flm_lat_us histogram
flm_lat_us_bucket{le="0"} 1
flm_lat_us_bucket{le="1"} 1
flm_lat_us_bucket{le="3"} 3
flm_lat_us_bucket{le="+Inf"} 3
flm_lat_us_sum 6
flm_lat_us_count 3
`
	if got != want {
		t.Errorf("exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusParses round-trips the default registry through a
// minimal exposition-format parser: every non-comment line must be
// `name{labels} value` with a numeric value, and every # TYPE must be
// followed by at least one sample of that family. This is the
// "valid Prometheus text for every registered series" acceptance check.
func TestWritePrometheusParses(t *testing.T) {
	// Tick a bit of everything so real registered series render.
	NewCounter("obstest.parse.c").Inc()
	NewGauge("obstest.parse.g").Set(9)
	NewHistogram("obstest.parse.h").Observe(1000)

	var b strings.Builder
	if err := Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	lastType := ""
	samplesSinceType := 0
	for i, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			if lastType != "" && samplesSinceType == 0 {
				t.Errorf("line %d: family %q has no samples", i+1, lastType)
			}
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", i+1, line)
			}
			lastType = parts[2]
			samplesSinceType = 0
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: no space in sample %q", i+1, line)
		}
		if base, _, _ := strings.Cut(name, "{"); !strings.HasPrefix(base, "flm_") {
			t.Errorf("line %d: sample %q outside the flm_ namespace", i+1, line)
		}
		var f float64
		if _, err := fmt.Sscanf(value, "%g", &f); err != nil {
			t.Errorf("line %d: non-numeric value %q", i+1, value)
		}
		if !strings.HasPrefix(name, lastType) {
			t.Errorf("line %d: sample %q outside the preceding # TYPE %s family", i+1, name, lastType)
		}
		samplesSinceType++
	}
	if lastType != "" && samplesSinceType == 0 {
		t.Errorf("final family %q has no samples", lastType)
	}
}
