package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchFlagErrors(t *testing.T) {
	if out, code := capture(t, "bench", "-runs", "0"); code != 2 || !strings.Contains(out, "-runs") {
		t.Errorf("runs=0 accepted: exit %d, %q", code, out)
	}
	if _, code := capture(t, "bench", "-bogus"); code != 2 {
		t.Error("unknown flag accepted")
	}
}

var benchSink []byte

func TestMeasureReportsPerOp(t *testing.T) {
	calls := 0
	entry, err := measure("x", "", 4, func() error {
		calls++
		benchSink = make([]byte, 1<<16)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Errorf("fn called %d times, want 4", calls)
	}
	if entry.Runs != 4 || entry.BytesPerOp < 1<<16 {
		t.Errorf("implausible entry: %+v", entry)
	}
}

func TestBenchWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks every experiment")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	out, code := capture(t, "bench", "-runs", "1", "-o", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, e := range report.Entries {
		ids[e.ID] = true
		if e.NsPerOp <= 0 {
			t.Errorf("%s: non-positive ns/op", e.ID)
		}
	}
	for _, want := range []string{"E1", "E17", "micro:e17-census-seq", "micro:e17-census-par"} {
		if !ids[want] {
			t.Errorf("report missing entry %s", want)
		}
	}
	if report.GoVersion == "" || report.Workers < 1 {
		t.Errorf("incomplete metadata: %+v", report)
	}
}
