package clockfn

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestLinearRoundTrip(t *testing.T) {
	f := Linear{Rate: 1.5, Off: -2}
	prop := func(t64 float64) bool {
		if math.IsNaN(t64) || math.IsInf(t64, 0) || math.Abs(t64) > 1e12 {
			return true
		}
		return almost(f.Inv(f.At(t64)), t64)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2Exp2Inverse(t *testing.T) {
	for _, x := range []float64{0.5, 1, 2, 10, 1000} {
		if !almost(Log2{}.Inv(Log2{}.At(x)), x) {
			t.Errorf("log2 round trip at %v", x)
		}
		if !almost(Exp2{}.At(Log2{}.At(x)), x) {
			t.Errorf("exp2(log2(%v))", x)
		}
	}
}

func TestComposeAndInverse(t *testing.T) {
	p := Linear{Rate: 1, Off: 0}
	q := Linear{Rate: 2, Off: 0}
	h := Compose(Inverse(p), q) // h = p⁻¹∘q = 2t
	for _, x := range []float64{0, 1, 3.5, 100} {
		if !almost(h.At(x), 2*x) {
			t.Errorf("h(%v) = %v, want %v", x, h.At(x), 2*x)
		}
		if !almost(h.Inv(h.At(x)), x) {
			t.Errorf("h inverse round trip at %v", x)
		}
	}
}

func TestIterate(t *testing.T) {
	f := Linear{Rate: 2, Off: 0}
	tests := []struct {
		n    int
		x, y float64
	}{
		{0, 7, 7},
		{1, 3, 6},
		{3, 1, 8},
		{-1, 8, 4},
		{-3, 8, 1},
	}
	for _, tt := range tests {
		if got := Iterate(f, tt.n).At(tt.x); !almost(got, tt.y) {
			t.Errorf("Iterate(2t, %d)(%v) = %v, want %v", tt.n, tt.x, got, tt.y)
		}
	}
}

func TestIterateComposeLaw(t *testing.T) {
	// f^(m+n) = f^m ∘ f^n for mixed signs.
	f := Linear{Rate: 1.5, Off: 0.25}
	prop := func(mRaw, nRaw int8, x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 1e3 {
			return true
		}
		m, n := int(mRaw)%5, int(nRaw)%5
		lhs := Iterate(f, m+n).At(x)
		rhs := Iterate(f, m).At(Iterate(f, n).At(x))
		return almost(lhs, rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRatLinearExactness(t *testing.T) {
	q := NewRatLinear(3, 2, 0, 1) // 1.5t
	x := big.NewRat(4, 3)
	y := q.At(x) // 2
	if y.Cmp(big.NewRat(2, 1)) != 0 {
		t.Errorf("q(4/3) = %s, want 2", y.RatString())
	}
	back := q.Inv(y)
	if back.Cmp(x) != 0 {
		t.Errorf("inverse round trip: %s", back.RatString())
	}
}

func TestRatLinearComposeInverse(t *testing.T) {
	p := RatIdentity()
	q := NewRatLinear(3, 2, 1, 4) // 1.5t + 0.25
	h := p.InverseRat().ComposeRat(q)
	if !h.Cmp(q) {
		t.Errorf("p⁻¹∘q = %s, want %s", h, q)
	}
	hh := h.ComposeRat(h.InverseRat())
	if !hh.Cmp(RatIdentity()) {
		t.Errorf("h∘h⁻¹ = %s, want identity", hh)
	}
}

func TestRatLinearIterate(t *testing.T) {
	h := NewRatLinear(2, 1, 0, 1) // 2t
	if got := h.IterateRat(3).At(big.NewRat(1, 1)); got.Cmp(big.NewRat(8, 1)) != 0 {
		t.Errorf("h³(1) = %s, want 8", got.RatString())
	}
	if got := h.IterateRat(-2).At(big.NewRat(8, 1)); got.Cmp(big.NewRat(2, 1)) != 0 {
		t.Errorf("h⁻²(8) = %s, want 2", got.RatString())
	}
	if !h.IterateRat(0).Cmp(RatIdentity()) {
		t.Error("h⁰ is not the identity")
	}
	// h^i ∘ h^-i = id, exactly.
	for i := 1; i < 12; i++ {
		if !h.IterateRat(i).ComposeRat(h.IterateRat(-i)).Cmp(RatIdentity()) {
			t.Errorf("h^%d ∘ h^-%d != id", i, i)
		}
	}
}

func TestRatLinearFloat(t *testing.T) {
	f := NewRatLinear(3, 2, -1, 2).Float()
	if f.Rate != 1.5 || f.Off != -0.5 {
		t.Errorf("Float() = %+v", f)
	}
}

func TestFnStrings(t *testing.T) {
	for _, f := range []Fn{Linear{Rate: 2, Off: 1}, Log2{}, Exp2{}, Compose(Log2{}, Linear{Rate: 1, Off: 0}), Inverse(Log2{}), Identity()} {
		if f.String() == "" {
			t.Errorf("%T has empty String()", f)
		}
	}
	if NewRatLinear(1, 2, 3, 4).String() == "" {
		t.Error("RatLinear has empty String()")
	}
}
