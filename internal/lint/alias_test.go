package lint

import "testing"

func TestAliasFixture(t *testing.T) {
	runFixture(t, "flm/internal/aliasfix", []*Analyzer{Alias})
}

// TestScratchIdiomsNoFalsePositives runs the entire suite over a
// fixture mirroring the production arena/scratch patterns (reusable
// device-owned buffers, big.Rat scratch registers, memoized
// fingerprints, collect-then-sort drains) at a determinism-gated import
// path. Nothing may be reported.
func TestScratchIdiomsNoFalsePositives(t *testing.T) {
	runFixture(t, "flm/internal/timedsim", All())
}
