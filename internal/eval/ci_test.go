package eval

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"testing"

	"flm/internal/chaos"
)

// The chaos smoke commands are pinned in four places: the exported
// constants in internal/chaos, the E18/E20 experiments here, the CI
// workflow file, and the Makefile defaults. The chaos and eval sides
// are tied by construction (the consts alias chaos's); these tests
// parse the two config files so the remaining legs cannot drift
// silently either.

// chaosInvocation captures one `flm chaos` command line's pinned knobs.
type chaosInvocation struct {
	seed   int64
	trials int
	async  bool
}

// chaosCommands extracts every `flm chaos` invocation from a file. The
// seed/trials flags may appear in either order; -async marks the
// adversarial-asynchrony smoke.
func chaosCommands(t *testing.T, path string) []chaosInvocation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	line := regexp.MustCompile(`(?m)flm chaos[^\n]*`)
	seedRe := regexp.MustCompile(`-seed\s+\$?\(?([A-Z_0-9]+\)?|\d+)`)
	trialsRe := regexp.MustCompile(`-trials\s+(\d+)`)
	seedNum := regexp.MustCompile(`-seed\s+(\d+)`)
	var out []chaosInvocation
	for _, cmd := range line.FindAllString(string(data), -1) {
		inv := chaosInvocation{async: regexp.MustCompile(`-async\b`).MatchString(cmd)}
		if m := seedNum.FindStringSubmatch(cmd); m != nil {
			n, err := strconv.ParseInt(m[1], 10, 64)
			if err != nil {
				t.Fatalf("%s: bad seed in %q: %v", path, cmd, err)
			}
			inv.seed = n
		} else if seedRe.MatchString(cmd) {
			// Variable reference (Makefile recipe body) — resolved by
			// the caller against the file's defaults.
			inv.seed = -1
		} else {
			t.Fatalf("%s: chaos command without a -seed flag: %q", path, cmd)
		}
		if m := trialsRe.FindStringSubmatch(cmd); m != nil {
			n, err := strconv.Atoi(m[1])
			if err != nil {
				t.Fatalf("%s: bad trials in %q: %v", path, cmd, err)
			}
			inv.trials = n
		} else {
			inv.trials = -1
		}
		out = append(out, inv)
	}
	if len(out) == 0 {
		t.Fatalf("%s: no `flm chaos` commands found", path)
	}
	return out
}

// TestCIChaosSmokePinned: the workflow's two chaos smoke runs use
// exactly the exported pinned pairs (and therefore exactly what E18 and
// E20 record).
func TestCIChaosSmokePinned(t *testing.T) {
	syncSeen, asyncSeen := false, false
	for _, inv := range chaosCommands(t, "../../.github/workflows/ci.yml") {
		if inv.async {
			asyncSeen = true
			if inv.seed != chaos.AsyncSmokeSeed || inv.trials != chaos.AsyncSmokeTrials {
				t.Errorf("CI async chaos smoke runs seed=%d trials=%d, pinned pair is seed=%d trials=%d",
					inv.seed, inv.trials, chaos.AsyncSmokeSeed, chaos.AsyncSmokeTrials)
			}
		} else {
			syncSeen = true
			if inv.seed != chaos.SmokeSeed || inv.trials != chaos.SmokeTrials {
				t.Errorf("CI chaos smoke runs seed=%d trials=%d, pinned pair is seed=%d trials=%d",
					inv.seed, inv.trials, chaos.SmokeSeed, chaos.SmokeTrials)
			}
		}
	}
	if !syncSeen {
		t.Error("CI workflow has no synchronous chaos smoke run")
	}
	if !asyncSeen {
		t.Error("CI workflow has no async chaos smoke run")
	}
}

// TestMakefileChaosDefaultsPinned: the Makefile's CHAOS_* and
// ASYNC_CHAOS_* defaults match the exported constants, so `make chaos`
// and `make chaos-async` reproduce CI bit for bit.
func TestMakefileChaosDefaultsPinned(t *testing.T) {
	data, err := os.ReadFile("../../Makefile")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"CHAOS_SEED":         fmt.Sprint(chaos.SmokeSeed),
		"CHAOS_TRIALS":       fmt.Sprint(chaos.SmokeTrials),
		"ASYNC_CHAOS_SEED":   fmt.Sprint(chaos.AsyncSmokeSeed),
		"ASYNC_CHAOS_TRIALS": fmt.Sprint(chaos.AsyncSmokeTrials),
	}
	for name, val := range want {
		re := regexp.MustCompile(`(?m)^` + name + `\s*\?=\s*(\S+)`)
		m := re.FindStringSubmatch(string(data))
		if m == nil {
			t.Errorf("Makefile has no %s ?= default", name)
			continue
		}
		if m[1] != val {
			t.Errorf("Makefile %s ?= %s, pinned value is %s", name, m[1], val)
		}
	}
}

// TestCIObservabilitySmokePinned: the workflow's trace-smoke job runs
// all three observability legs — the stats summary, the trace-diff
// regression gate, and the live-endpoint smoke — so none of them can be
// dropped without this test noticing.
func TestCIObservabilitySmokePinned(t *testing.T) {
	data, err := os.ReadFile("../../.github/workflows/ci.yml")
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"make trace-smoke", "make trace-diff", "make obs-smoke"} {
		if !regexp.MustCompile(`(?m)run:\s+`+target+`\b`).Match(data) {
			t.Errorf("CI workflow no longer runs %q", target)
		}
	}
}

// TestMakefileTraceDiffPinned: the trace-diff target keeps its three
// legs (self-diff, committed reference, injected regression expecting
// exit 3) against the committed fixtures, and the fixtures exist. The
// obs-smoke target keeps its three endpoint curls.
func TestMakefileTraceDiffPinned(t *testing.T) {
	data, err := os.ReadFile("../../Makefile")
	if err != nil {
		t.Fatal(err)
	}
	for _, fixture := range []string{
		"cmd/flm/testdata/e1_reference_trace.jsonl",
		"cmd/flm/testdata/e1_regressed_trace.jsonl",
	} {
		if !regexp.MustCompile(regexp.QuoteMeta(fixture)).Match(data) {
			t.Errorf("Makefile no longer references the committed fixture %s", fixture)
		}
		if _, err := os.Stat("../../" + fixture); err != nil {
			t.Errorf("committed fixture missing: %v", err)
		}
	}
	for name, pattern := range map[string]string{
		"trace-diff self-diff":          `stats -diff \$\(TRACE_DIFF_FILE\) \$\(TRACE_DIFF_FILE\)`,
		"trace-diff reference leg":      `stats -diff -notiming -threshold \$\(TRACE_DIFF_THRESHOLD\) \$\(TRACE_REF\)`,
		"trace-diff exit-3 expectation": `test \$\$status -eq 3`,
		"obs-smoke healthz curl":        `/healthz`,
		"obs-smoke metrics curl":        `/metrics`,
		"obs-smoke progress curl":       `/progress`,
		"obs-smoke prometheus check":    `\^flm_`,
	} {
		if !regexp.MustCompile(pattern).Match(data) {
			t.Errorf("Makefile lost the %s leg (pattern %q)", name, pattern)
		}
	}
}

// TestExperimentConstsPinned: E18/E20 run the exact smoke pairs. The
// consts alias chaos's, so this is a tripwire against someone
// re-hardcoding them.
func TestExperimentConstsPinned(t *testing.T) {
	if e18Seed != chaos.SmokeSeed || e18Trials != chaos.SmokeTrials {
		t.Errorf("E18 uses seed=%d trials=%d, pinned pair is seed=%d trials=%d",
			e18Seed, e18Trials, chaos.SmokeSeed, chaos.SmokeTrials)
	}
	if e20Seed != chaos.AsyncSmokeSeed || e20Trials != chaos.AsyncSmokeTrials {
		t.Errorf("E20 uses seed=%d trials=%d, pinned pair is seed=%d trials=%d",
			e20Seed, e20Trials, chaos.AsyncSmokeSeed, chaos.AsyncSmokeTrials)
	}
}
