// Quickstart: check a graph's adequacy, reach Byzantine agreement on an
// adequate graph, and watch the FLM85 engine defeat the same protocol on
// an inadequate one.
package main

import (
	"fmt"
	"log"

	"flm"
)

func main() {
	// 1. Adequacy: tolerating f Byzantine faults needs n >= 3f+1 nodes
	// and connectivity >= 2f+1 (FLM85).
	for _, c := range []struct {
		name string
		g    *flm.Graph
		f    int
	}{
		{"triangle K3", flm.Triangle(), 1},
		{"complete K4", flm.Complete(4), 1},
		{"diamond (conn 2)", flm.Diamond(), 1},
		{"wheel W7 (conn 3)", flm.Wheel(7), 1},
	} {
		fmt.Printf("%-18s f=%d adequate=%v (max tolerable f=%d)\n",
			c.name, c.f, flm.Adequate(c.g, c.f), flm.MaxTolerableFaults(c.g))
	}

	// 2. On K4, EIG reaches agreement with one Byzantine node: here the
	// traitor p3 stays silent.
	g := flm.Complete(4)
	p := flm.Protocol{Builders: map[string]flm.Builder{}, Inputs: map[string]flm.Input{}}
	for i, name := range g.Names() {
		p.Builders[name] = flm.NewEIG(1, g.Names())
		p.Inputs[name] = flm.BoolInput(i%2 == 0)
	}
	p.Builders["p3"] = flm.Silent()
	sys, err := flm.NewSystem(g, p)
	if err != nil {
		log.Fatal(err)
	}
	run, err := flm.Execute(sys, flm.EIGRounds(1))
	if err != nil {
		log.Fatal(err)
	}
	correct := []string{"p0", "p1", "p2"}
	rep := flm.CheckByzantineAgreement(run, correct)
	fmt.Printf("\nEIG on K4 with silent p3: agreement OK = %v\n", rep.OK())
	for _, name := range correct {
		d, _ := run.DecisionOf(name)
		fmt.Printf("  %s decided %s at round %d\n", name, d.Value, d.Round)
	}

	// 3. The same protocol on the triangle (n = 3f) cannot work: the
	// engine constructs the paper's hexagon argument and exhibits the
	// violated condition.
	tri := flm.Triangle()
	builders := map[string]flm.Builder{}
	for _, name := range tri.Names() {
		builders[name] = flm.NewEIG(1, tri.Names())
	}
	cr, err := flm.ProveByzantineTriangle(builders, "eig", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", cr)
}
