// Package chaos is the randomized adversary harness for the FLM85
// reproduction. The paper's Fault axiom grants faulty nodes *arbitrary*
// behavior; this package takes that literally: it composes the
// internal/adversary strategies (crash, omission, noise, equivocation,
// replay, mirroring) into seeded, deterministic attack schedules, fires
// them at the protocol panel — EIG, phase king, Turpin-Coan, DLPSW
// approximate agreement, and clock synchronization — across adequate AND
// inadequate graphs, and checks each protocol's correctness conditions
// per run.
//
// The expectations are exactly the paper's: on adequate configurations
// (n >= 3f+1, or 4f+1 for phase king) every schedule must come back
// green; on inadequate ones, violations are *findings* — concrete
// counterexamples the harness then shrinks to a minimal set of faulty
// actions. A violation on an adequate configuration, or an engine fault
// (panic, timeout), is an unexpected failure and fails the run.
//
// Every schedule is a pure function of (master seed, trial index), so a
// printed seed reproduces its violation bit for bit, on any worker
// count.
package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"flm/internal/obs"
	"flm/internal/sweep"
)

// Config parameterizes one chaos run.
type Config struct {
	Seed     int64         // master seed; every trial derives from (Seed, index)
	Trials   int           // number of schedules to generate and run
	Timeout  time.Duration // per-trial wall budget (0 = DefaultTimeout)
	Workers  int           // sweep fan-out (0 = FLM_WORKERS / GOMAXPROCS)
	NoShrink bool          // skip counterexample shrinking
	Async    bool          // adversarial delay schedules (see GenOpts.Async)
	Dead     bool          // initially-dead faults + initdead protocol (see GenOpts.Dead)
}

// Pinned smoke parameters. The CI chaos smoke job, the E18/E20
// experiments, and the pinned regression tests in this package must all
// use these exact values — internal/eval's ci_test cross-checks the
// workflow file against them so a drift can never be silent.
const (
	SmokeSeed   int64 = 1
	SmokeTrials       = 64

	AsyncSmokeSeed   int64 = 7
	AsyncSmokeTrials       = 48
)

// DefaultTimeout bounds one trial's wall time; generous next to the
// microseconds a healthy trial takes, tight enough that a hung device
// cannot stall a CI job.
const DefaultTimeout = 10 * time.Second

// Finding is one condition violation (or engine fault) with everything
// needed to reproduce it.
type Finding struct {
	Trial     int
	Schedule  Schedule
	Violation string    // the violated condition (or engine fault text)
	Expected  bool      // true when the configuration is inadequate: the paper predicts this
	Shrunk    *Schedule // minimal violating schedule (violations only, when shrinking ran)
}

// Report aggregates a chaos run.
type Report struct {
	Seed       int64
	Trials     int
	Async      bool // the run drew adversarial delay schedules
	Dead       bool // the run drew initially-dead faults + initdead trials
	Green      int
	Expected   []Finding // violations on inadequate configurations
	Unexpected []Finding // violations on adequate configurations + engine faults
}

// OK reports whether the run matched the paper's predictions: adequate
// configurations all green, no engine faults. Expected findings on
// inadequate graphs do not fail a run — they are its purpose.
func (r *Report) OK() bool { return len(r.Unexpected) == 0 }

// Run generates cfg.Trials schedules from cfg.Seed, executes them with
// full fault isolation (a panicking or hanging trial is contained and
// reported, never fatal), checks each protocol's conditions, and shrinks
// every violating schedule to a minimal counterexample.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("chaos: need a positive trial count, got %d", cfg.Trials)
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	traced := obs.Enabled()
	if traced {
		var runSpan *obs.Span
		ctx, runSpan = obs.StartSpan(ctx, "chaos.run",
			obs.Int64("seed", cfg.Seed), obs.Int("trials", cfg.Trials))
		defer runSpan.End()
		obs.SetProgressPhase(fmt.Sprintf("chaos seed=%d", cfg.Seed))
		defer obs.SetProgressPhase("")
	}
	schedules := make([]Schedule, cfg.Trials)
	for i := range schedules {
		schedules[i] = NewScheduleWith(cfg.Seed, i, GenOpts{Async: cfg.Async, Dead: cfg.Dead})
	}
	outcomes, errs := sweep.Isolated(ctx, cfg.Trials, sweep.Opts{Workers: cfg.Workers, Timeout: timeout},
		func(i int) (Outcome, error) {
			// Condition violations are data, not sweep errors: only
			// panics/timeouts surface through the error slice.
			return RunSchedule(schedules[i]), nil
		})

	rep := &Report{Seed: cfg.Seed, Trials: cfg.Trials, Async: cfg.Async, Dead: cfg.Dead}
	for i := 0; i < cfg.Trials; i++ {
		s := schedules[i]
		outcome := "green"
		detail := ""
		shrunkActions := -1
		switch {
		case errs[i] != nil:
			outcome, detail = "fault", errs[i].Error()
			rep.Unexpected = append(rep.Unexpected, Finding{
				Trial: i, Schedule: s, Violation: errs[i].Error(),
			})
		case outcomes[i].EngineErr != nil:
			outcome, detail = "fault", "engine: "+outcomes[i].EngineErr.Error()
			rep.Unexpected = append(rep.Unexpected, Finding{
				Trial: i, Schedule: s, Violation: "engine: " + outcomes[i].EngineErr.Error(),
			})
		case outcomes[i].Violation != nil:
			detail = outcomes[i].Violation.Error()
			f := Finding{Trial: i, Schedule: s, Violation: detail, Expected: !s.Adequate}
			if f.Expected {
				outcome = "violation"
			} else {
				outcome = "unexpected-violation"
			}
			if !cfg.NoShrink {
				if shrunk, ok := shrinkTraced(ctx, i, s, traced); ok {
					f.Shrunk = &shrunk
					shrunkActions = len(shrunk.Actions)
				}
			}
			if f.Expected {
				rep.Expected = append(rep.Expected, f)
			} else {
				rep.Unexpected = append(rep.Unexpected, f)
			}
		default:
			rep.Green++
		}
		if traced {
			recordTrial(ctx, i, s, outcome, detail, shrunkActions)
		}
	}
	return rep, nil
}

// shrinkTraced wraps Shrink in a "chaos.shrink" span recording how many
// candidate schedules the minimizer re-executed and the before/after
// action counts; untraced it is Shrink verbatim.
//
//flmlint:allow flmobscost the traced param is obs.Enabled() and gates the span path
func shrinkTraced(ctx context.Context, trial int, s Schedule, traced bool) (Schedule, bool) {
	if !traced {
		return Shrink(s)
	}
	_, span := obs.StartSpan(ctx, "chaos.shrink",
		obs.Int("trial", trial), obs.Int("actions", len(s.Actions)))
	before := mShrinkEvals.Value()
	shrunk, ok := Shrink(s)
	span.SetAttrs(obs.Int64("evals", int64(mShrinkEvals.Value()-before)))
	if ok {
		span.SetAttrs(obs.Int("shrunk_actions", len(shrunk.Actions)))
	}
	span.End()
	return shrunk, ok
}

// recordTrial emits one "chaos.trial" event carrying the trial's attack
// schedule and its classification, and ticks the outcome counters.
//
//flmlint:allow flmobscost called only under `if traced` in the trial loop
func recordTrial(ctx context.Context, i int, s Schedule, outcome, detail string, shrunkActions int) {
	mTrials.Inc()
	switch outcome {
	case "green":
		mGreen.Inc()
	case "fault":
		mEngineFaults.Inc()
	default:
		mViolations.Inc()
	}
	attrs := []obs.Attr{
		obs.Int("trial", i),
		obs.Str("protocol", s.Protocol),
		obs.Int("n", s.N),
		obs.Int("f", s.F),
		obs.Bool("adequate", s.Adequate),
		obs.Str("schedule", s.Describe()),
		obs.Str("outcome", outcome),
	}
	if detail != "" {
		attrs = append(attrs, obs.Str("violation", detail))
	}
	if shrunkActions >= 0 {
		attrs = append(attrs, obs.Int("shrunk_actions", shrunkActions))
	}
	obs.Event(ctx, "chaos.trial", attrs...)
}

// Describe renders a schedule on one line. Synchronous schedules keep
// the historical format; a delay schedule appends its rule count and
// worst extra delay (the full rule list is data, not display).
func (s Schedule) Describe() string {
	acts := make([]string, len(s.Actions))
	for i, a := range s.Actions {
		acts[i] = a.Node + ":" + a.Strategy
	}
	adequacy := "inadequate"
	if s.Adequate {
		adequacy = "adequate"
	}
	desc := fmt.Sprintf("%s on K%d f=%d (%s) faults=[%s]",
		s.Protocol, s.N, s.F, adequacy, strings.Join(acts, ","))
	if len(s.Delays) > 0 {
		worst := 0
		for _, r := range s.Delays {
			if r.Extra > worst {
				worst = r.Extra
			}
		}
		desc += fmt.Sprintf(" delays=[%d rules, max +%d]", len(s.Delays), worst)
	}
	return desc
}

// modeFlags renders the CLI flags that reproduce this report's
// generator mode ("" for the classic synchronous panel).
func (r *Report) modeFlags() string {
	flags := ""
	if r.Async {
		flags += " -async"
	}
	if r.Dead {
		flags += " -deadset"
	}
	return flags
}

// Render formats the report for the CLI and the E18/E20 experiments.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos:%s seed=%d trials=%d green=%d expected-violations=%d unexpected=%d\n",
		r.modeFlags(), r.Seed, r.Trials, r.Green, len(r.Expected), len(r.Unexpected))
	byProto := map[string]int{}
	for _, f := range r.Expected {
		byProto[f.Schedule.Protocol]++
	}
	if len(byProto) > 0 {
		protos := make([]string, 0, len(byProto))
		for p := range byProto {
			protos = append(protos, p)
		}
		sort.Strings(protos)
		parts := make([]string, len(protos))
		for i, p := range protos {
			parts[i] = fmt.Sprintf("%s=%d", p, byProto[p])
		}
		fmt.Fprintf(&b, "violations by protocol: %s\n", strings.Join(parts, " "))
	}
	for _, f := range r.Expected {
		fmt.Fprintf(&b, "  [expected] trial %d: %s\n             %s\n", f.Trial, f.Schedule.Describe(), f.Violation)
		if f.Shrunk != nil {
			if len(f.Schedule.Delays) > 0 {
				fmt.Fprintf(&b, "             shrunk to %d faulty action(s) + %d delay rule(s): %s\n",
					len(f.Shrunk.Actions), len(f.Shrunk.Delays), f.Shrunk.Describe())
			} else {
				fmt.Fprintf(&b, "             shrunk to %d faulty action(s): %s\n",
					len(f.Shrunk.Actions), f.Shrunk.Describe())
			}
		}
		fmt.Fprintf(&b, "             reproduce: flm chaos%s -seed %d -trials %d  (trial %d)\n",
			r.modeFlags(), r.Seed, r.Trials, f.Trial)
	}
	for _, f := range r.Unexpected {
		fmt.Fprintf(&b, "  [UNEXPECTED] trial %d: %s\n               %s\n", f.Trial, f.Schedule.Describe(), f.Violation)
	}
	if r.OK() {
		fmt.Fprintf(&b, "all adequate configurations green; paper's predictions hold\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %d unexpected failure(s)\n", len(r.Unexpected))
	}
	return b.String()
}
