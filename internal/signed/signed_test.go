package signed

import (
	"strings"
	"testing"

	"flm/internal/adversary"
	"flm/internal/byzantine"
	"flm/internal/core"
	"flm/internal/graph"
	"flm/internal/sim"
)

func TestRegistryBasics(t *testing.T) {
	reg := NewRegistry()
	if reg.Verify("a", "hello") {
		t.Error("unsigned statement verified")
	}
	reg.Sign("a", "hello")
	if !reg.Verify("a", "hello") {
		t.Error("signed statement rejected")
	}
	if reg.Verify("b", "hello") {
		t.Error("wrong signer verified")
	}
	if reg.Verify("a", "hello2") {
		t.Error("wrong statement verified")
	}
}

func TestChainCodec(t *testing.T) {
	reg := NewRegistry()
	c := chain{sender: "a", value: "1"}.extend(reg, "a").extend(reg, "b")
	decoded, ok := decodeChain(reg, c.encode())
	if !ok {
		t.Fatal("valid chain rejected")
	}
	if decoded.sender != "a" || decoded.value != "1" || len(decoded.signers) != 2 {
		t.Errorf("decoded %+v", decoded)
	}
	// Tampering with the value invalidates every signature.
	if _, ok := decodeChain(reg, strings.Replace(c.encode(), "|1|", "|0|", 1)); ok {
		t.Error("value-tampered chain verified")
	}
	// A chain claiming an unsigned extension fails.
	forged := c.encode() + ",c"
	if _, ok := decodeChain(reg, forged); ok {
		t.Error("forged extension verified")
	}
	// Garbage shapes.
	for _, bad := range []string{"", "a|1", "a|x|a", "a|1|", "a|1|b", "a|1|a,a", "|1|a"} {
		if _, ok := decodeChain(reg, bad); ok {
			t.Errorf("garbage chain %q verified", bad)
		}
	}
	// A chain verified under one registry dies under another: this is
	// the property that breaks the Fault axiom.
	if _, ok := decodeChain(NewRegistry(), c.encode()); ok {
		t.Error("cross-execution chain verified")
	}
}

func signedTrial(g *graph.Graph, f, bits int, reg *Registry, faulty map[string]sim.Builder) byzantine.Trial {
	inputs := make(map[string]sim.Input, g.N())
	for i, name := range g.Names() {
		inputs[name] = sim.BoolInput(bits&(1<<uint(i)) != 0)
	}
	return byzantine.Trial{
		G:      g,
		Inputs: inputs,
		Honest: NewDolevStrong(f, g.Names(), reg),
		Faulty: faulty,
		Rounds: Rounds(f),
	}
}

func TestDolevStrongNoFaults(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		g := graph.Complete(n)
		f := (n - 1) / 2
		for bits := 0; bits < 1<<uint(n); bits++ {
			trial := signedTrial(g, f, bits, NewRegistry(), nil)
			_, _, rep, err := trial.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Errorf("n=%d f=%d bits=%b: %v", n, f, bits, rep.Err())
			}
		}
	}
}

// The headline: signed agreement works on the triangle with one
// Byzantine node — exactly what Theorem 1 forbids without signatures.
func TestDolevStrongTriangleOneFault(t *testing.T) {
	g := graph.Triangle()
	for bits := 0; bits < 8; bits++ {
		for _, badNode := range g.Names() {
			for _, strat := range adversary.Panel(3) {
				reg := NewRegistry()
				honest := NewDolevStrong(1, g.Names(), reg)
				trial := signedTrial(g, 1, bits, reg, map[string]sim.Builder{
					badNode: strat.Corrupt(honest),
				})
				trial.Honest = honest
				_, _, rep, err := trial.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !rep.OK() {
					t.Errorf("bits=%b bad=%s strat=%s: %v", bits, badNode, strat.Name, rep.Err())
				}
			}
		}
	}
}

func TestDolevStrongTwoFaults(t *testing.T) {
	g := graph.Complete(5) // n = 2f+1 with f=2
	strategies := adversary.Panel(9)
	for _, bits := range []int{0, 31, 21, 10} {
		for si, s1 := range strategies {
			s2 := strategies[(si+2)%len(strategies)]
			reg := NewRegistry()
			honest := NewDolevStrong(2, g.Names(), reg)
			trial := signedTrial(g, 2, bits, reg, map[string]sim.Builder{
				"p1": s1.Corrupt(honest),
				"p3": s2.Corrupt(honest),
			})
			trial.Honest = honest
			_, _, rep, err := trial.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Errorf("bits=%x strats=%s/%s: %v", bits, s1.Name, s2.Name, rep.Err())
			}
		}
	}
}

// A replayer armed with chains harvested from a previous execution
// cannot disturb a fresh one: the fresh registry rejects them all.
func TestCrossExecutionReplayIsHarmless(t *testing.T) {
	g := graph.Triangle()
	reg1 := NewRegistry()
	trial1 := signedTrial(g, 1, 0x7, reg1, nil)
	run1, _, _, err := trial1.Run()
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := run1.EdgeBehavior("a", "b")
	ac, _ := run1.EdgeBehavior("a", "c")

	reg2 := NewRegistry()
	honest := NewDolevStrong(1, g.Names(), reg2)
	trial2 := signedTrial(g, 1, 0x6, reg2, map[string]sim.Builder{
		"a": sim.ReplayBuilder(map[string][]sim.Payload{"b": ab, "c": ac}),
	})
	trial2.Honest = honest
	run2, correct, rep, err := trial2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("replayed stale signatures broke agreement: %v", rep.Err())
	}
	// The replayed chains must have been ignored entirely: b and c treat
	// a as silent and use the default for its instance.
	for _, name := range correct {
		d, _ := run2.DecisionOf(name)
		if d.Value != "1" {
			t.Errorf("%s decided %s; stale chains must not leak a's old input", name, d.Value)
		}
	}
}

// The impossibility engine's splice self-check must FAIL against signed
// devices: the Fault axiom (replay across behaviors) is inconsistent with
// per-execution unforgeable signatures, which is the paper's stated
// escape hatch from Theorem 1.
func TestFaultAxiomBrokenBySignatures(t *testing.T) {
	cover := graph.HexCover()
	regS := NewRegistry()
	buildersS := map[string]sim.Builder{}
	for _, name := range cover.G.Names() {
		buildersS[name] = NewDolevStrong(1, cover.G.Names(), regS)
	}
	inputs := map[string]sim.Input{
		"r0": "0", "r1": "0", "r2": "0", "r3": "1", "r4": "1", "r5": "1",
	}
	inst, err := core.InstallCover(cover, buildersS, inputs)
	if err != nil {
		t.Fatal(err)
	}
	runS, err := inst.Execute(Rounds(1) + 2)
	if err != nil {
		t.Fatal(err)
	}
	// Splice E2 = {r2, r3} into a triangle behavior where the correct
	// devices run with a FRESH registry (a genuinely new execution, as
	// reality would have it). The replayed border traffic carries
	// signatures the new registry never recorded, so the correct nodes'
	// behaviors diverge from the covering scenario and the Locality
	// self-check rejects the splice.
	regG := NewRegistry()
	buildersG := map[string]sim.Builder{}
	for _, name := range cover.G.Names() {
		buildersG[name] = NewDolevStrong(1, cover.G.Names(), regG)
	}
	if _, err := core.SpliceScenario(inst, runS, []int{2, 3}, buildersG); err == nil {
		t.Fatal("splice succeeded: the Fault axiom should be broken by unforgeable signatures")
	} else if !strings.Contains(err.Error(), "locality axiom self-check failed") {
		t.Fatalf("unexpected splice error: %v", err)
	}
}

func TestDecisionTiming(t *testing.T) {
	g := graph.Complete(4)
	trial := signedTrial(g, 1, 0xF, NewRegistry(), nil)
	trial.Rounds = Rounds(1) + 2
	run, correct, rep, err := trial.Run()
	if err != nil || !rep.OK() {
		t.Fatalf("rep=%v err=%v", rep, err)
	}
	for _, name := range correct {
		d, _ := run.DecisionOf(name)
		if d.Round != 2 { // f+1 = 2
			t.Errorf("%s decided at round %d, want 2", name, d.Round)
		}
	}
}

func TestLateInjectionRejected(t *testing.T) {
	// A chain with a single signature arriving at round 2 violates the
	// timing rule and must be ignored even if the signature is genuine.
	g := graph.Triangle()
	reg := NewRegistry()
	honest := NewDolevStrong(1, g.Names(), reg)
	// The faulty node signs late: it broadcasts a 1-signature chain only
	// in round 1 (arriving at round 2, which requires >= 2 signatures).
	late := func(self string, neighbors []string, input sim.Input) sim.Device {
		return &lateSigner{reg: reg, self: self, neighbors: neighbors}
	}
	inputs := map[string]sim.Input{"a": "0", "b": "0", "c": "1"}
	trial := byzantine.Trial{
		G: g, Inputs: inputs, Honest: honest,
		Faulty: map[string]sim.Builder{"c": late},
		Rounds: Rounds(1),
	}
	run, correct, rep, err := trial.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Termination != nil || rep.Agreement != nil {
		t.Fatalf("late injection broke agreement: %v", rep.Err())
	}
	// c's instance must have resolved to the default 0 at both correct
	// nodes (the late chain was rejected), so with a,b holding 0 the
	// decision is 0.
	for _, name := range correct {
		d, _ := run.DecisionOf(name)
		if d.Value != "0" {
			t.Errorf("%s decided %s, want 0", name, d.Value)
		}
	}
}

type lateSigner struct {
	reg       *Registry
	self      string
	neighbors []string
}

func (d *lateSigner) Init(self string, neighbors []string, input sim.Input) {}

func (d *lateSigner) Step(round int, inbox sim.Inbox) sim.Outbox {
	if round != 1 {
		return nil
	}
	c := chain{sender: d.self, value: "1"}.extend(d.reg, d.self)
	out := sim.Outbox{}
	for _, nb := range d.neighbors {
		out[nb] = sim.Payload(c.encode())
	}
	return out
}

func (d *lateSigner) Snapshot() string             { return "late" }
func (d *lateSigner) Output() (sim.Decision, bool) { return sim.Decision{}, false }
