package core

import (
	"fmt"

	"flm/internal/approx"
	"flm/internal/firingsquad"
	"flm/internal/graph"
	"flm/internal/sim"
	"flm/internal/weak"
)

// This file mechanizes the connectivity halves of Theorems 2 and 4 ("the
// general case of |G| <= 3f and the connectivity bound follow as for
// Byzantine agreement"): for a graph with a 2f-node cut {b,d} separating
// u from v, the devices are installed on the m-copy cyclic cut covering
// — a ring of copies with the a-d edges crossed between consecutive
// copies — with one semicircle of copies stimulated/holding input 1 and
// the other input 0. Every copy yields two spliceable scenarios,
//
//	X_i = copy i without its d-nodes   (d faulty, masquerading from the
//	                                    two neighboring copies)
//	Y_i = copy i's c∪d plus copy i-1's a-nodes  (b faulty)
//
// whose consecutive overlaps chain every node's choice together, while
// the Bounded-Delay axiom keeps the middle copies tracking the unanimous
// base runs. As in the node-bound case, some link must break.

// runGraphUniform executes the all-correct system on g with one input
// everywhere.
func runGraphUniform(g *graph.Graph, builders map[string]sim.Builder, input sim.Input, rounds int) (*sim.Run, error) {
	p := sim.Protocol{Builders: builders, Inputs: map[string]sim.Input{}}
	for _, name := range g.Names() {
		p.Inputs[name] = input
	}
	sys, err := sim.NewSystem(g, p)
	if err != nil {
		return nil, err
	}
	return sim.Execute(sys, rounds)
}

// copyInputsRing assigns input one to copies 0..m/2-1 and zero to the
// rest.
func copyInputsRing(s *graph.Graph, n, m int, one, zero sim.Input) map[string]sim.Input {
	inputs := make(map[string]sim.Input, s.N())
	for i := 0; i < s.N(); i++ {
		if i/n < m/2 {
			inputs[s.Name(i)] = one
		} else {
			inputs[s.Name(i)] = zero
		}
	}
	return inputs
}

// cutRingScenarios enumerates the 2m spliceable scenarios around the
// ring of copies.
func cutRingScenarios(g *graph.Graph, m int, aSet, cSet, dSet []int) [][]int {
	n := g.N()
	inD := make(map[int]bool, len(dSet))
	for _, x := range dSet {
		inD[x] = true
	}
	var scenarios [][]int
	for i := 0; i < m; i++ {
		var x []int
		for node := 0; node < n; node++ {
			if !inD[node] {
				x = append(x, i*n+node)
			}
		}
		var y []int
		for _, node := range cSet {
			y = append(y, i*n+node)
		}
		for _, node := range dSet {
			y = append(y, i*n+node)
		}
		prev := (i - 1 + m) % m
		for _, node := range aSet {
			y = append(y, prev*n+node)
		}
		scenarios = append(scenarios, x, y)
	}
	return scenarios
}

// cutSets recomputes the a/c partition induced by the cut.
func cutSets(g *graph.Graph, bSet, dSet []int, uNode int) (aSet, cSet []int) {
	removed := append(append([]int(nil), bSet...), dSet...)
	aSet = g.ComponentWithout(removed, uNode)
	inAorCut := make(map[int]bool, g.N())
	for _, x := range aSet {
		inAorCut[x] = true
	}
	for _, x := range removed {
		inAorCut[x] = true
	}
	for x := 0; x < g.N(); x++ {
		if !inAorCut[x] {
			cSet = append(cSet, x)
		}
	}
	return aSet, cSet
}

// WeakAgreementCutRing mechanizes the connectivity half of Theorem 2:
// weak agreement is impossible on a graph with a cut of size <= 2f. The
// horizon must cover the base decision round plus the ring transit.
func WeakAgreementCutRing(g *graph.Graph, f int, bSet, dSet []int, uNode, vNode int, builders map[string]sim.Builder, device string, horizon int) (*ChainResult, error) {
	if len(bSet) > f || len(dSet) > f {
		return nil, fmt.Errorf("core: cut halves must have at most f=%d nodes", f)
	}
	cr := &ChainResult{
		Theorem: "Theorem 2 (weak agreement, 2f+1 connectivity)",
		Problem: "weak Byzantine agreement",
		Device:  device,
		F:       f,
		G:       g,
	}
	base := make(map[string]*sim.Run, 2)
	tPrime := 0
	for _, bit := range []string{"0", "1"} {
		run, err := runGraphUniform(g, builders, sim.Input(bit), horizon)
		if err != nil {
			return nil, err
		}
		base[bit] = run
		name := "B" + bit
		cr.addLink(Link{
			Name: name, Splice: baseSplice(run),
			Expect:  fmt.Sprintf("all-correct unanimous %s: choice + validity force %s", bit, bit),
			Correct: run.G.Names(),
		})
		rep := weak.Check(run, run.G.Names(), true)
		if rep.Choice != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "choice", Detail: rep.Choice.Error()})
		}
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
		if rep.Validity != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "validity", Detail: rep.Validity.Error()})
		}
		for _, nodeName := range run.G.Names() {
			if d, _ := run.DecisionOf(nodeName); d.Round > tPrime {
				tPrime = d.Round
			}
		}
	}
	if cr.Contradicted() {
		return cr, nil
	}
	k := tPrime + 1
	m := 4 * k // ring of copies; halves of 2k copies each
	if horizon <= tPrime+1 {
		return nil, fmt.Errorf("core: horizon %d too small for decision round %d", horizon, tPrime)
	}
	cover, err := graph.CyclicCutCover(g, bSet, dSet, uNode, vNode, m)
	if err != nil {
		return nil, err
	}
	inst, err := InstallCover(cover, builders, copyInputsRing(cover.S, g.N(), m, "1", "0"))
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(horizon)
	if err != nil {
		return nil, err
	}
	cr.RunS = runS
	cr.CoverSize = cover.S.N()

	if err := checkCopyMiddles(runS, cover, base, g, m, k, map[string]string{"1": "1", "0": "0"}); err != nil {
		return nil, err
	}

	aSet, cSet := cutSets(g, bSet, dSet, uNode)
	for idx, u := range cutRingScenarios(g, m, aSet, cSet, dSet) {
		name := fmt.Sprintf("E%d", idx)
		sp, err := SpliceScenario(inst, runS, u, builders)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		cr.addLink(Link{
			Name: name, Splice: sp,
			Expect:  "all correct nodes in this one-fault behavior must agree",
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		rep := weak.Check(sp.Run, sp.Correct, false)
		if rep.Choice != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "choice", Detail: rep.Choice.Error()})
		}
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: ring of %d copies chained to agreement yet the halves differ — impossible:\n%s", m, cr)
	}
	return cr, nil
}

// checkCopyMiddles verifies the Bounded-Delay self-check for the
// ring-of-copies construction: every node of the middle copy of each
// half must track the matching unanimous base run for at least k rounds
// (information needs one round per copy crossing) and inherit its
// decision.
func checkCopyMiddles(runS *sim.Run, cover *graph.Cover, base map[string]*sim.Run, g *graph.Graph, m, k int, wantByHalf map[string]string) error {
	n := g.N()
	mids := map[string]int{"1": k, "0": 3 * k} // middle copy of each half
	for bit, copyID := range mids {
		for x := 0; x < n; x++ {
			sName := cover.S.Name(copyID*n + x)
			gName := g.Name(x)
			div, err := sim.PrefixEqual(runS, sName, base[bit], gName)
			if err != nil {
				return err
			}
			if div < k && div < runS.Rounds {
				return fmt.Errorf("core: bounded-delay self-check: %s diverged from base-%s %s at round %d < k=%d",
					sName, bit, gName, div, k)
			}
			want := wantByHalf[bit]
			if want == "" {
				continue
			}
			dS, err := runS.DecisionOf(sName)
			if err != nil {
				return err
			}
			if dS.Value != want {
				return fmt.Errorf("core: middle-copy node %s decided %q, want %q from the base-%s run",
					sName, dS.Value, want, bit)
			}
		}
	}
	return nil
}

// FiringSquadCutRing mechanizes the connectivity half of Theorem 4.
func FiringSquadCutRing(g *graph.Graph, f int, bSet, dSet []int, uNode, vNode int, builders map[string]sim.Builder, device string, horizon int) (*ChainResult, error) {
	if len(bSet) > f || len(dSet) > f {
		return nil, fmt.Errorf("core: cut halves must have at most f=%d nodes", f)
	}
	cr := &ChainResult{
		Theorem: "Theorem 4 (firing squad, 2f+1 connectivity)",
		Problem: "Byzantine firing squad",
		Device:  device,
		F:       f,
		G:       g,
	}
	base := make(map[string]*sim.Run, 2)
	fireTime := -1
	for _, bit := range []string{"0", "1"} {
		run, err := runGraphUniform(g, builders, sim.Input(bit), horizon)
		if err != nil {
			return nil, err
		}
		base[bit] = run
		name := "B" + bit
		stimulated := bit == "1"
		cr.addLink(Link{
			Name: name, Splice: baseSplice(run),
			Expect:  "base validity: fire simultaneously iff stimulated",
			Correct: run.G.Names(),
		})
		rep := firingsquad.Check(run, run.G.Names(), true, stimulated)
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
		if rep.Validity != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "validity", Detail: rep.Validity.Error()})
		}
		if stimulated {
			for _, nodeName := range run.G.Names() {
				if d, _ := run.DecisionOf(nodeName); d.Value == firingsquad.Fired && d.Round > fireTime {
					fireTime = d.Round
				}
			}
		}
	}
	if cr.Contradicted() {
		return cr, nil
	}
	k := fireTime + 1
	m := 4 * k
	if horizon <= fireTime+1 {
		return nil, fmt.Errorf("core: horizon %d too small for fire time %d", horizon, fireTime)
	}
	cover, err := graph.CyclicCutCover(g, bSet, dSet, uNode, vNode, m)
	if err != nil {
		return nil, err
	}
	inst, err := InstallCover(cover, builders, copyInputsRing(cover.S, g.N(), m, "1", "0"))
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(horizon)
	if err != nil {
		return nil, err
	}
	cr.RunS = runS
	cr.CoverSize = cover.S.N()

	if err := checkCopyMiddles(runS, cover, base, g, m, k,
		map[string]string{"1": firingsquad.Fired, "0": ""}); err != nil {
		return nil, err
	}

	aSet, cSet := cutSets(g, bSet, dSet, uNode)
	for idx, u := range cutRingScenarios(g, m, aSet, cSet, dSet) {
		name := fmt.Sprintf("E%d", idx)
		sp, err := SpliceScenario(inst, runS, u, builders)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		cr.addLink(Link{
			Name: name, Splice: sp,
			Expect:  "correct nodes fire simultaneously or not at all",
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		rep := firingsquad.Check(sp.Run, sp.Correct, false, false)
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: copies chained to simultaneity yet the halves differ — impossible:\n%s", cr)
	}
	return cr, nil
}

// SimpleApproxConnectivity mechanizes the connectivity half of Theorem 5
// (same structure as the Byzantine case, approximate conditions).
func SimpleApproxConnectivity(g *graph.Graph, f int, bSet, dSet []int, uNode, vNode int, builders map[string]sim.Builder, device string, rounds int) (*ChainResult, error) {
	if len(bSet) > f || len(dSet) > f {
		return nil, fmt.Errorf("core: cut halves must have at most f=%d nodes", f)
	}
	cover, err := graph.CutCover(g, bSet, dSet, uNode, vNode)
	if err != nil {
		return nil, err
	}
	inst, err := InstallCover(cover, builders, copyInputs(cover.S, sim.RealInput(0), sim.RealInput(1)))
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(rounds)
	if err != nil {
		return nil, err
	}
	cr := &ChainResult{
		Theorem:   "Theorem 5 (2f+1 connectivity)",
		Problem:   "simple approximate agreement",
		Device:    device,
		F:         f,
		G:         g,
		CoverSize: cover.S.N(),
		RunS:      runS,
	}
	aSet, cSet := cutSets(g, bSet, dSet, uNode)
	n := g.N()
	shift := func(nodes []int, by int) []int {
		out := make([]int, len(nodes))
		for i, u := range nodes {
			out[i] = u + by
		}
		return out
	}
	concat := func(parts ...[]int) []int {
		var out []int
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	scenarios := []struct {
		name   string
		u      []int
		expect string
	}{
		{"E1", concat(aSet, bSet, cSet), "validity pins every choice to 0"},
		{"E2", concat(cSet, dSet, shift(aSet, n)), "choices strictly closer than the inputs (1 apart)"},
		{"E3", concat(shift(aSet, n), shift(bSet, n), shift(cSet, n)), "validity pins every choice to 1"},
	}
	for _, sc := range scenarios {
		sp, err := SpliceScenario(inst, runS, sc.u, builders)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", sc.name, err)
		}
		cr.addLink(Link{
			Name: sc.name, Splice: sp, Expect: sc.expect,
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		rep := approx.CheckSimple(sp.Run, sp.Correct)
		cr.addApproxViolations(sc.name, rep)
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: no condition violated across E1,E2,E3 — impossible:\n%s", cr)
	}
	return cr, nil
}
