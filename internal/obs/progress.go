package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Live progress telemetry for long runs. The sweep engines (Map,
// Isolated, Grouped) and the chaos harness publish trial totals,
// completions, faults, in-flight worker counts, and per-worker busy
// time here whenever observability is on; three consumers read it back:
//
//   - the /progress endpoint of the live HTTP listener (serve.go),
//   - the periodic stderr progress line (StartProgressReporter), and
//   - the progress.* gauges in the metrics registry, which the /metrics
//     exposition and the trace's final metrics line both carry.
//
// Publishing follows the tracer's own rule: the engine only calls the
// Progress* functions on its obs-guarded paths, so a run with no
// observability requested executes the exact pre-instrumentation code.
// The total/done/busy gauges are updated live (a handful of atomic ops
// per trial, negligible next to the span write the same path performs);
// the derived gauges — queue depth, elapsed, ETA — are refreshed only
// when a consumer snapshots, so a plain -trace run's final metrics line
// stays deterministic (they remain zero unless something actually
// polled the clock-derived values).
var (
	gProgTotal  = NewGauge("progress.trials.total")
	gProgDone   = NewGauge("progress.trials.done")
	gProgFaults = NewGauge("progress.trials.faults")
	gProgBusy   = NewGauge("progress.workers.busy")
	gProgQueue  = NewGauge("progress.queue.depth")
	gProgElapse = NewGauge("progress.elapsed_us")
	gProgETA    = NewGauge("progress.eta_us")
)

// progWorker accumulates one worker index's cumulative contribution
// across every published sweep of the process.
type progWorker struct {
	trials int64
	faults int64
	busyUS int64
}

// prog is the process-wide progress state behind the atomically-updated
// gauges: the phase label, the monotonic start instant, and the
// per-worker table. One mutex suffices — publishers touch it once per
// trial, which is far cheaper than the tracer write the same traced
// path already performs.
var prog struct {
	mu      sync.Mutex
	phase   string
	start   time.Time
	started bool
	workers map[int]*progWorker
}

// progStarted flags whether the monotonic clock anchor is set, readable
// without the mutex on the hot path.
var progStarted atomic.Bool

// SetProgressPhase labels the work in flight ("E17", "chaos seed=1");
// the label travels to /progress and the stderr progress line. An empty
// phase clears it.
func SetProgressPhase(phase string) {
	prog.mu.Lock()
	prog.phase = phase
	prog.mu.Unlock()
}

// ensureProgressClock anchors the monotonic elapsed/ETA clock at the
// first published sweep.
func ensureProgressClock() {
	if progStarted.Load() {
		return
	}
	prog.mu.Lock()
	if !prog.started {
		prog.start = time.Now()
		prog.started = true
		progStarted.Store(true)
	}
	prog.mu.Unlock()
}

// SweepTicket tracks one sweep's contribution to the trial totals so an
// aborted sweep (first-error cancellation) can retire the trials that
// never ran instead of leaving the completion ratio stuck short of 100%.
type SweepTicket struct {
	n          int64
	doneBefore int64
}

// ProgressSweepStart books n upcoming trials and returns the ticket the
// sweep must Finish when it returns.
func ProgressSweepStart(n int) SweepTicket {
	ensureProgressClock()
	gProgTotal.Add(int64(n))
	return SweepTicket{n: int64(n), doneBefore: gProgDone.Value()}
}

// Finish retires the ticket: any of its trials that never completed
// (cancellation, first-error abort) are subtracted from the total so
// done/total converges to 1 for finished work.
func (t SweepTicket) Finish() {
	finished := gProgDone.Value() - t.doneBefore
	if finished < t.n {
		gProgTotal.Add(finished - t.n)
	}
}

// ProgressTrialStart marks one trial claimed by a worker (in flight).
func ProgressTrialStart() { gProgBusy.Add(1) }

// progWorkerFor returns worker's row, creating it; caller holds prog.mu.
func progWorkerFor(worker int) *progWorker {
	if prog.workers == nil {
		prog.workers = make(map[int]*progWorker)
	}
	w := prog.workers[worker]
	if w == nil {
		w = &progWorker{}
		prog.workers[worker] = w
	}
	return w
}

// ProgressTrialDone marks one trial finished by the given worker after
// running for d.
func ProgressTrialDone(worker int, d time.Duration) {
	gProgBusy.Add(-1)
	gProgDone.Add(1)
	prog.mu.Lock()
	w := progWorkerFor(worker)
	w.trials++
	w.busyUS += int64(d / time.Microsecond)
	prog.mu.Unlock()
}

// ProgressTrialFault books one failed trial against the given worker
// (in addition to its ProgressTrialDone, which always fires).
func ProgressTrialFault(worker int) {
	gProgFaults.Add(1)
	prog.mu.Lock()
	progWorkerFor(worker).faults++
	prog.mu.Unlock()
}

// WorkerProgress is one worker's cumulative published activity.
type WorkerProgress struct {
	Worker int   `json:"worker"`
	Trials int64 `json:"trials"`
	Faults int64 `json:"faults,omitempty"`
	BusyUS int64 `json:"busy_us"`
	IdleUS int64 `json:"idle_us"`
}

// ProgressInfo is a point-in-time view of the published progress state.
type ProgressInfo struct {
	Phase     string           `json:"phase,omitempty"`
	Total     int64            `json:"trials_total"`
	Done      int64            `json:"trials_done"`
	Faults    int64            `json:"trials_faulted"`
	Busy      int64            `json:"workers_busy"`
	Queue     int64            `json:"queue_depth"`
	ElapsedUS int64            `json:"elapsed_us"`
	ETAUS     int64            `json:"eta_us"`
	Workers   []WorkerProgress `json:"workers,omitempty"`
}

// Percent returns the completion ratio in percent (0 with no trials).
func (p ProgressInfo) Percent() float64 {
	if p.Total <= 0 {
		return 0
	}
	return 100 * float64(p.Done) / float64(p.Total)
}

// ProgressSnapshot reads the published state and refreshes the derived
// gauges (queue depth, elapsed, ETA) from the monotonic clock. The ETA
// is the linear extrapolation elapsed*(total-done)/done — exact for
// uniform trials, a live order-of-magnitude answer otherwise.
func ProgressSnapshot() ProgressInfo {
	info := ProgressInfo{
		Total:  gProgTotal.Value(),
		Done:   gProgDone.Value(),
		Faults: gProgFaults.Value(),
		Busy:   gProgBusy.Value(),
	}
	info.Queue = info.Total - info.Done - info.Busy
	if info.Queue < 0 {
		info.Queue = 0
	}
	prog.mu.Lock()
	info.Phase = prog.phase
	if prog.started {
		info.ElapsedUS = int64(time.Since(prog.start) / time.Microsecond)
	}
	for idx, w := range prog.workers {
		wp := WorkerProgress{Worker: idx, Trials: w.trials, Faults: w.faults, BusyUS: w.busyUS}
		if idle := info.ElapsedUS - w.busyUS; idle > 0 {
			wp.IdleUS = idle
		}
		info.Workers = append(info.Workers, wp)
	}
	prog.mu.Unlock()
	sort.Slice(info.Workers, func(i, j int) bool { return info.Workers[i].Worker < info.Workers[j].Worker })
	if info.Done > 0 && info.Total > info.Done {
		info.ETAUS = int64(float64(info.ElapsedUS) * float64(info.Total-info.Done) / float64(info.Done))
	}
	gProgQueue.Set(info.Queue)
	gProgElapse.Set(info.ElapsedUS)
	gProgETA.Set(info.ETAUS)
	return info
}

// ResetProgress zeroes the published state (gauges, clock anchor, phase,
// worker table). The CLI calls it at observability startup; tests use it
// for isolation.
func ResetProgress() {
	gProgTotal.Set(0)
	gProgDone.Set(0)
	gProgFaults.Set(0)
	gProgBusy.Set(0)
	gProgQueue.Set(0)
	gProgElapse.Set(0)
	gProgETA.Set(0)
	prog.mu.Lock()
	prog.phase = ""
	prog.started = false
	prog.workers = nil
	prog.mu.Unlock()
	progStarted.Store(false)
}

// Line renders the one-line human form used by the stderr reporter:
//
//	flm progress: [E17] 1234/5678 trials (21.7%) busy=8 queue=512 elapsed=12s eta=3m2s
func (p ProgressInfo) Line() string {
	phase := ""
	if p.Phase != "" {
		phase = "[" + p.Phase + "] "
	}
	line := fmt.Sprintf("flm progress: %s%d/%d trials (%.1f%%) busy=%d queue=%d elapsed=%s",
		phase, p.Done, p.Total, p.Percent(), p.Busy, p.Queue,
		(time.Duration(p.ElapsedUS) * time.Microsecond).Round(time.Second))
	if p.ETAUS > 0 {
		line += fmt.Sprintf(" eta=%s", (time.Duration(p.ETAUS)*time.Microsecond).Round(time.Second))
	}
	if p.Faults > 0 {
		line += fmt.Sprintf(" faults=%d", p.Faults)
	}
	return line
}

// StartProgressReporter prints the progress line to w every interval
// until the returned stop function is called (which prints one final
// line so short runs still report). The reporter goroutine exists only
// when the caller asked for periodic progress (FLM_OBS_INTERVAL in the
// CLI); with no reporter running this file costs nothing.
func StartProgressReporter(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, ProgressSnapshot().Line())
			case <-done:
				fmt.Fprintln(w, ProgressSnapshot().Line())
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}
