package graph

import (
	"reflect"
	"strings"
	"testing"
)

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K5", Complete(5), 1},
		{"ring6", Ring(6), 3},
		{"ring7", Ring(7), 3},
		{"line5", Line(5), 4},
		{"star7", Star(7), 2},
		{"petersen", Petersen(), 2},
		{"hypercube4", Hypercube(4), 4},
		{"K33", CompleteBipartite(3, 3), 2},
		{"K1", Complete(1), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Diameter(); got != tt.want {
				t.Errorf("Diameter() = %d, want %d", got, tt.want)
			}
		})
	}
	disconnected := MustNew("a", "b")
	if got := disconnected.Diameter(); got != -1 {
		t.Errorf("disconnected diameter = %d, want -1", got)
	}
}

func TestDistance(t *testing.T) {
	g := Ring(8)
	if got := g.Distance(0, 4); got != 4 {
		t.Errorf("Distance(0,4) = %d, want 4", got)
	}
	if got := g.Distance(0, 7); got != 1 {
		t.Errorf("Distance(0,7) = %d, want 1", got)
	}
	if got := g.Distance(3, 3); got != 0 {
		t.Errorf("Distance(3,3) = %d, want 0", got)
	}
}

func TestPetersenProperties(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.NumEdges() != 15 {
		t.Fatalf("shape: %d nodes %d edges", g.N(), g.NumEdges())
	}
	if !g.IsRegular() || g.Degree(0) != 3 {
		t.Error("Petersen graph not 3-regular")
	}
	if got := g.VertexConnectivity(); got != 3 {
		t.Errorf("connectivity = %d, want 3", got)
	}
	if !g.IsAdequate(1) {
		t.Error("Petersen graph (n=10, conn=3) should tolerate f=1")
	}
}

func TestCompleteBipartiteConnectivity(t *testing.T) {
	for _, c := range []struct{ m, n, want int }{{3, 3, 3}, {2, 5, 2}, {4, 4, 4}} {
		g := CompleteBipartite(c.m, c.n)
		if got := g.VertexConnectivity(); got != c.want {
			t.Errorf("K_{%d,%d} connectivity = %d, want %d", c.m, c.n, got, c.want)
		}
	}
}

func TestDegreeSequence(t *testing.T) {
	g := Star(5)
	want := []int{4, 1, 1, 1, 1}
	if got := g.DegreeSequence(); !reflect.DeepEqual(got, want) {
		t.Errorf("DegreeSequence() = %v, want %v", got, want)
	}
	if g.MinDegree() != 1 {
		t.Errorf("MinDegree() = %d", g.MinDegree())
	}
	if g.IsRegular() {
		t.Error("star reported regular")
	}
	if !Ring(6).IsRegular() {
		t.Error("ring reported irregular")
	}
}

func TestDOTOutput(t *testing.T) {
	g := Triangle()
	dot := g.DOT("tri")
	for _, want := range []string{"graph \"tri\"", `"a" -- "b"`, `"b" -- "c"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Each undirected edge appears exactly once.
	if strings.Count(dot, "--") != g.NumEdges() {
		t.Errorf("DOT has %d edges, want %d", strings.Count(dot, "--"), g.NumEdges())
	}
	cdot := HexCover().DOT("hex")
	if !strings.Contains(cdot, "r0→a") {
		t.Errorf("cover DOT missing fiber label:\n%s", cdot)
	}
}
