package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"flm/internal/adversary"
	"flm/internal/approx"
	"flm/internal/byzantine"
	"flm/internal/graph"
	"flm/internal/initdead"
	"flm/internal/sim"
)

// Action makes one node faulty with one strategy. Round parameterizes
// crash; Seed parameterizes every randomized strategy (omission subset,
// noise stream, equivocation faces, replay scripts, clock-liar values).
type Action struct {
	Node     string
	Strategy string
	Round    int
	Seed     int64
}

// Schedule is one fully-determined chaos trial: protocol instance, graph
// size, fault budget, per-node inputs, the faulty actions, and (in async
// mode) the adversarial delay schedule. Running a schedule involves no
// randomness beyond what the schedule itself encodes, which is what
// makes seed-reproduction and shrinking sound.
type Schedule struct {
	Protocol string
	N        int  // complete graph K_N
	F        int  // fault budget the protocol instance is built for
	Adequate bool // n meets the protocol's resilience threshold
	Rounds   int  // simulator rounds (sync protocols)
	Device   string
	Inputs   []string // canonical inputs in graph.Complete(N).Names() order
	Actions  []Action
	// Delays is the adversarial delay schedule ruleset (empty =
	// synchronous delivery). Delay rules are first-class attack
	// schedule entries: the shrinker minimizes them exactly like
	// Byzantine actions.
	Delays []sim.DelayRule
	// MaxDelay is the per-message delay bound the generator drew the
	// rules under; it sizes the round budget for delay-tolerant
	// protocols and is informational for the synchronous panel (whose
	// round structure any delay may break).
	MaxDelay int
}

// Outcome is the result of executing one schedule.
type Outcome struct {
	Violation error // a broken correctness condition (the interesting case)
	EngineErr error // the run itself failed (device fault, exec error)
}

// Strategy names composable on the synchronous protocols.
var syncStrategies = []string{
	"silent", "crash", "omit", "noise", "equivocate", "mirror", "replay",
}

// protocol describes one panel member.
type protocol struct {
	name     string
	sizes    []struct{ n, f int }
	minN     func(f int) int // resilience threshold: green expected iff n >= minN(f)
	alphabet []string        // payload/input alphabet for the randomized strategies
	input    func(rng *rand.Rand) string
	honest   func(f int, peers []string) sim.Builder
	rounds   func(f int) int
	check    func(run *sim.Run, correct []string) error
}

var panel = []protocol{
	{
		name:     "eig",
		sizes:    []struct{ n, f int }{{3, 1}, {4, 1}, {5, 1}, {6, 2}, {7, 2}},
		minN:     func(f int) int { return 3*f + 1 },
		alphabet: []string{"0", "1"},
		input:    func(rng *rand.Rand) string { return sim.EncodeBool(rng.Intn(2) == 1) },
		honest:   func(f int, peers []string) sim.Builder { return byzantine.NewEIG(f, peers) },
		rounds:   byzantine.EIGRounds,
		check: func(run *sim.Run, correct []string) error {
			return byzantine.CheckBA(run, correct).Err()
		},
	},
	{
		name:     "phase-king",
		sizes:    []struct{ n, f int }{{4, 1}, {5, 1}, {6, 1}},
		minN:     func(f int) int { return 4*f + 1 },
		alphabet: []string{"0", "1"},
		input:    func(rng *rand.Rand) string { return sim.EncodeBool(rng.Intn(2) == 1) },
		honest:   func(f int, peers []string) sim.Builder { return byzantine.NewPhaseKing(f, peers) },
		rounds:   byzantine.PhaseKingRounds,
		check: func(run *sim.Run, correct []string) error {
			return byzantine.CheckBA(run, correct).Err()
		},
	},
	{
		name:     "turpin-coan",
		sizes:    []struct{ n, f int }{{3, 1}, {4, 1}, {5, 1}},
		minN:     func(f int) int { return 3*f + 1 },
		alphabet: []string{"red", "green", "blue"},
		input: func(rng *rand.Rand) string {
			return []string{"red", "green", "blue"}[rng.Intn(3)]
		},
		honest: func(f int, peers []string) sim.Builder { return byzantine.NewTurpinCoan(f, peers) },
		rounds: byzantine.TurpinCoanRounds,
		check: func(run *sim.Run, correct []string) error {
			return byzantine.CheckBA(run, correct).Err()
		},
	},
	{
		name:  "approx",
		sizes: []struct{ n, f int }{{3, 1}, {4, 1}, {5, 1}},
		minN:  func(f int) int { return 3*f + 1 },
		// Out-of-range reals deliberately included: validity says correct
		// outputs stay inside the correct input range, so a faulty node
		// pushing 100 is exactly the attack trimming must absorb.
		alphabet: []string{
			sim.EncodeReal(-100), sim.EncodeReal(-1), sim.EncodeReal(0.5),
			sim.EncodeReal(2), sim.EncodeReal(7), sim.EncodeReal(100),
		},
		input: func(rng *rand.Rand) string { return sim.EncodeReal(float64(rng.Intn(5))) },
		honest: func(f int, peers []string) sim.Builder {
			return approx.NewDLPSW(f, peers, approxAveragingRounds)
		},
		rounds: func(f int) int { return approx.DLPSWRounds(approxAveragingRounds) },
		check: func(run *sim.Run, correct []string) error {
			return approx.CheckSimple(run, correct).Err()
		},
	},
}

// approxAveragingRounds is the DLPSW iteration count used by chaos
// trials: enough that the guaranteed halving makes the output spread
// strictly smaller than any input spread the generator can produce.
const approxAveragingRounds = 4

// GenOpts selects the extended schedule generators. The zero value is
// the classic synchronous panel: NewScheduleWith(seed, i, GenOpts{}) is
// byte-identical to NewSchedule(seed, i), which keeps every pinned
// seed reproducible across releases.
type GenOpts struct {
	// Async draws a seeded adversarial delay schedule for every panel
	// trial (and bounded delays for the delay-tolerant protocols).
	Async bool
	// Dead mixes in the initially-dead fault family and the FLP §4
	// initdead consensus protocol on both sides of its n > 2t
	// threshold.
	Dead bool
}

// NewSchedule derives trial i of a chaos run deterministically from the
// master seed. The derivation depends only on (seed, i) — never on
// worker count or timing — so a schedule is reproducible from the
// printed seed alone.
func NewSchedule(seed int64, i int) Schedule {
	return NewScheduleWith(seed, i, GenOpts{})
}

// NewScheduleWith is NewSchedule with the extended generators enabled.
// Extended trials skip the timed clock-synchronization model: delay
// schedules act on the round-based executor, and the timed model
// carries its own native notion of message timing.
func NewScheduleWith(seed int64, i int, o GenOpts) Schedule {
	const mix = int64(-0x61C8864680B583EB) // golden-ratio mixer (0x9E37...15 as int64)
	rng := rand.New(rand.NewSource(seed ^ (mix * int64(i+1))))
	extended := o.Async || o.Dead
	// One slot in five is clock synchronization (the timed model); the
	// rest sweep the synchronous panel.
	if !extended && rng.Intn(5) == 0 {
		return newClockSchedule(rng)
	}
	if o.Dead && rng.Intn(3) == 0 {
		return newInitdeadSchedule(rng, o)
	}
	p := panel[rng.Intn(len(panel))]
	size := p.sizes[rng.Intn(len(p.sizes))]
	g := graph.Complete(size.n)
	names := g.Names()

	s := Schedule{
		Protocol: p.name,
		N:        size.n,
		F:        size.f,
		Adequate: size.n >= p.minN(size.f),
		Rounds:   p.rounds(size.f),
		Inputs:   make([]string, size.n),
	}
	for j := range s.Inputs {
		s.Inputs[j] = p.input(rng)
	}
	k := 1 + rng.Intn(size.f) // 1..f faulty nodes: stay inside the budget
	perm := rng.Perm(size.n)
	for j := 0; j < k; j++ {
		s.Actions = append(s.Actions, Action{
			Node:     names[perm[j]],
			Strategy: syncStrategies[rng.Intn(len(syncStrategies))],
			Round:    1 + rng.Intn(3),
			Seed:     rng.Int63(),
		})
	}
	sortActions(s.Actions)
	if o.Async {
		// The panel protocols assume synchronous delivery, so ANY delay
		// schedule voids their resilience guarantee: delayed trials are
		// classified inadequate — violations become expected findings
		// (and survivals stay unremarkable greens), never CI failures.
		s.MaxDelay = 1 + rng.Intn(2)
		s.Delays = sim.SeededDelays(rng.Int63(), names, s.Rounds, s.MaxDelay).Rules
		s.Adequate = false
	}
	return s
}

// initdeadSizes spans both sides of the n > 2t threshold.
var initdeadSizes = []struct{ n, t int }{{3, 1}, {4, 2}, {5, 2}, {6, 3}, {7, 3}}

// newInitdeadSchedule draws one FLP §4 initially-dead consensus trial:
// 0..t dead nodes, and — in async mode — either bounded seeded delays
// (under which an n > 2t instance must stay green) or, on the
// inadequate sizes, the unbounded partition schedule with group-split
// inputs that the impossibility argument predicts will disagree.
func newInitdeadSchedule(rng *rand.Rand, o GenOpts) Schedule {
	size := initdeadSizes[rng.Intn(len(initdeadSizes))]
	g := graph.Complete(size.n)
	names := g.Names()
	s := Schedule{
		Protocol: "initdead",
		N:        size.n,
		F:        size.t,
		Adequate: size.n > 2*size.t,
		Inputs:   make([]string, size.n),
	}
	if o.Async {
		s.MaxDelay = 1 + rng.Intn(2)
	}
	s.Rounds = initdead.Rounds(s.MaxDelay)
	for j := range s.Inputs {
		s.Inputs[j] = sim.EncodeBool(rng.Intn(2) == 1)
	}
	k := rng.Intn(size.t + 1) // 0..t initially-dead nodes
	perm := rng.Perm(size.n)
	for j := 0; j < k; j++ {
		s.Actions = append(s.Actions, Action{Node: names[perm[j]], Strategy: "dead"})
	}
	sortActions(s.Actions)
	if o.Async {
		if !s.Adequate && rng.Intn(2) == 0 {
			// The impossibility witness: partition the nodes, give the
			// groups different inputs, delay cross-group traffic past
			// the horizon.
			s.Delays = initdead.PartitionDelays(names, size.t, s.Rounds).Rules
			s.MaxDelay = s.Rounds
			for j := range s.Inputs {
				s.Inputs[j] = sim.EncodeBool(j >= size.n-size.t)
			}
		} else {
			s.Delays = sim.SeededDelays(rng.Int63(), names, s.Rounds, s.MaxDelay).Rules
		}
	}
	return s
}

func sortActions(acts []Action) {
	sort.Slice(acts, func(i, j int) bool { return acts[i].Node < acts[j].Node })
}

// delaysOf adapts the schedule's delay rules for the executor; empty
// rule sets run synchronously.
func delaysOf(s Schedule) *sim.DelaySchedule {
	if len(s.Delays) == 0 {
		return nil
	}
	return &sim.DelaySchedule{Rules: s.Delays}
}

// RunSchedule executes one schedule and checks its protocol's
// correctness conditions. It is a pure function of the schedule.
func RunSchedule(s Schedule) Outcome {
	if s.Protocol == "clocksync" {
		return runClockSchedule(s)
	}
	if s.Protocol == "initdead" {
		return runInitdeadSchedule(s)
	}
	p, ok := findProtocol(s.Protocol)
	if !ok {
		return Outcome{EngineErr: fmt.Errorf("chaos: unknown protocol %q", s.Protocol)}
	}
	g := graph.Complete(s.N)
	names := g.Names()
	if len(s.Inputs) != len(names) {
		return Outcome{EngineErr: fmt.Errorf("chaos: %d inputs for %d nodes", len(s.Inputs), len(names))}
	}
	honest := p.honest(s.F, names)
	proto := sim.Protocol{
		Builders: make(map[string]sim.Builder, len(names)),
		Inputs:   make(map[string]sim.Input, len(names)),
	}
	for j, name := range names {
		proto.Builders[name] = honest
		proto.Inputs[name] = sim.Input(s.Inputs[j])
	}
	faulty := make(map[string]bool, len(s.Actions))
	for _, a := range s.Actions {
		proto.Builders[a.Node] = corrupt(a, p, honest, s.Rounds)
		faulty[a.Node] = true
	}
	sys, err := sim.NewSystem(g, proto)
	if err != nil {
		return Outcome{EngineErr: err}
	}
	run, err := sim.ExecuteWith(sys, s.Rounds, sim.ExecuteOpts{Delays: delaysOf(s)})
	if err != nil {
		return Outcome{EngineErr: err}
	}
	var correct []string
	for _, name := range names {
		if !faulty[name] {
			correct = append(correct, name)
		}
	}
	return Outcome{Violation: p.check(run, correct)}
}

// runInitdeadSchedule executes one initially-dead consensus trial.
// Every faulty action, whatever its strategy label, renders its node
// initially dead: the fault family is the protocol's premise, and
// keeping the mapping total means a shrinker rewrite can never turn an
// initdead trial into an unrunnable one.
func runInitdeadSchedule(s Schedule) Outcome {
	g := graph.Complete(s.N)
	names := g.Names()
	if len(s.Inputs) != len(names) {
		return Outcome{EngineErr: fmt.Errorf("chaos: %d inputs for %d nodes", len(s.Inputs), len(names))}
	}
	honest := initdead.New(s.F)
	proto := sim.Protocol{
		Builders: make(map[string]sim.Builder, len(names)),
		Inputs:   make(map[string]sim.Input, len(names)),
	}
	for j, name := range names {
		proto.Builders[name] = honest
		proto.Inputs[name] = sim.Input(s.Inputs[j])
	}
	dead := make(map[string]bool, len(s.Actions))
	for _, a := range s.Actions {
		proto.Builders[a.Node] = adversary.InitiallyDead()
		dead[a.Node] = true
	}
	sys, err := sim.NewSystem(g, proto)
	if err != nil {
		return Outcome{EngineErr: err}
	}
	run, err := sim.ExecuteWith(sys, s.Rounds, sim.ExecuteOpts{Delays: delaysOf(s)})
	if err != nil {
		return Outcome{EngineErr: err}
	}
	var live []string
	for _, name := range names {
		if !dead[name] {
			live = append(live, name)
		}
	}
	return Outcome{Violation: initdead.Check(run, live).Err()}
}

func findProtocol(name string) (protocol, bool) {
	for _, p := range panel {
		if p.name == name {
			return p, true
		}
	}
	return protocol{}, false
}

// corrupt composes the adversary-package strategies into the builder for
// one faulty node, fully determined by the action.
func corrupt(a Action, p protocol, honest sim.Builder, rounds int) sim.Builder {
	alphabet := p.alphabet
	switch a.Strategy {
	case "silent":
		return adversary.Silent()
	case "dead":
		return adversary.InitiallyDead()
	case "crash":
		return adversary.Crash(honest, a.Round)
	case "omit":
		return func(self string, neighbors []string, input sim.Input) sim.Device {
			rng := rand.New(rand.NewSource(a.Seed))
			var drop []string
			for _, nb := range neighbors { // neighbors arrive sorted
				if rng.Intn(2) == 0 {
					drop = append(drop, nb)
				}
			}
			if len(drop) == 0 && len(neighbors) > 0 {
				drop = append(drop, neighbors[0])
			}
			return adversary.Omission(honest, drop...)(self, neighbors, input)
		}
	case "noise":
		payloads := make([]sim.Payload, len(alphabet))
		for i, v := range alphabet {
			payloads[i] = sim.Payload(v)
		}
		return adversary.Noise(a.Seed, payloads...)
	case "equivocate":
		i := int(a.Seed % int64(len(alphabet)))
		if i < 0 {
			i += len(alphabet)
		}
		j := (i + 1) % len(alphabet)
		faceB := func(nb string) bool {
			h := fnv.New64a()
			h.Write([]byte(nb))
			return (h.Sum64()^uint64(a.Seed))%2 == 0
		}
		return adversary.Equivocate(honest, sim.Input(alphabet[i]), sim.Input(alphabet[j]), faceB)
	case "mirror":
		return adversary.Mirror()
	case "replay":
		return func(self string, neighbors []string, input sim.Input) sim.Device {
			rng := rand.New(rand.NewSource(a.Seed))
			scripts := make(map[string][]sim.Payload, len(neighbors))
			for _, nb := range neighbors {
				seq := make([]sim.Payload, rounds)
				for r := range seq {
					if rng.Intn(3) > 0 {
						seq[r] = sim.Payload(alphabet[rng.Intn(len(alphabet))])
					}
				}
				scripts[nb] = seq
			}
			return sim.ReplayBuilder(scripts)(self, neighbors, input)
		}
	default:
		// An unknown strategy behaves as the weakest one rather than
		// failing the trial: shrinking may rewrite strategies.
		return adversary.Silent()
	}
}
