// Package adversary provides Byzantine fault strategies for attacking
// consensus protocols in the simulator. The fundamental strategy — the
// paper's Fault-axiom device F_A(E_1,...,E_d) — lives in sim.ReplayDevice;
// this package adds the strategies used to stress the possibility side of
// the reproduction: crash and omission failures, seeded random noise, and
// equivocators assembled from honest devices (a faulty node running one
// honest brain per audience, the classic "two-faced general").
//
// All strategies are deterministic given their parameters, preserving the
// model's determinism assumption.
package adversary

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"flm/internal/sim"
)

// Silent returns a builder for a device that never sends anything — the
// simplest omission failure.
func Silent() sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		return sim.NewReplayDevice(nil)
	}
}

// crashDevice behaves like its inner device until crashRound, then stops
// sending forever (fail-stop).
type crashDevice struct {
	inner      sim.Device
	crashRound int
}

var _ sim.Device = (*crashDevice)(nil)
var _ sim.Fingerprinter = (*crashDevice)(nil)

// DeviceFingerprint is the crash round plus the inner device's identity
// ("" when the inner device is not fingerprintable).
func (d *crashDevice) DeviceFingerprint() string {
	inner := sim.FingerprintOf(d.inner)
	if inner == "" {
		return ""
	}
	return fmt.Sprintf("adv/crash@%d|%s", d.crashRound, inner)
}

// Crash wraps a builder so the resulting device fail-stops at the given
// round (messages from that round on are suppressed).
func Crash(inner sim.Builder, crashRound int) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		return &crashDevice{inner: inner(self, neighbors, input), crashRound: crashRound}
	}
}

func (d *crashDevice) Init(self string, neighbors []string, input sim.Input) {
	d.inner.Init(self, neighbors, input)
}

func (d *crashDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	out := d.inner.Step(round, inbox)
	if round >= d.crashRound {
		return nil
	}
	return out
}

func (d *crashDevice) Snapshot() string {
	return fmt.Sprintf("crash@%d|%s", d.crashRound, d.inner.Snapshot())
}

func (d *crashDevice) Output() (sim.Decision, bool) { return sim.Decision{}, false }

// omissionDevice drops messages to a fixed subset of neighbors.
type omissionDevice struct {
	inner sim.Device
	drop  map[string]bool
}

var _ sim.Device = (*omissionDevice)(nil)
var _ sim.Fingerprinter = (*omissionDevice)(nil)

// DeviceFingerprint is the sorted drop set plus the inner device's
// identity ("" when the inner device is not fingerprintable).
func (d *omissionDevice) DeviceFingerprint() string {
	inner := sim.FingerprintOf(d.inner)
	if inner == "" {
		return ""
	}
	keys := make([]string, 0, len(d.drop))
	for k := range d.drop {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprintf("adv/omit[%s]|%s", strings.Join(keys, ","), inner)
}

// Omission wraps a builder so messages to the listed neighbors are
// silently dropped.
func Omission(inner sim.Builder, dropTo ...string) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		drop := make(map[string]bool, len(dropTo))
		for _, nb := range dropTo {
			drop[nb] = true
		}
		return &omissionDevice{inner: inner(self, neighbors, input), drop: drop}
	}
}

func (d *omissionDevice) Init(self string, neighbors []string, input sim.Input) {
	d.inner.Init(self, neighbors, input)
}

func (d *omissionDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	out := d.inner.Step(round, inbox)
	filtered := sim.Outbox{}
	for nb, p := range out {
		if !d.drop[nb] {
			filtered[nb] = p
		}
	}
	return filtered
}

func (d *omissionDevice) Snapshot() string {
	keys := make([]string, 0, len(d.drop))
	for k := range d.drop {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprintf("omit[%s]|%s", strings.Join(keys, ","), d.inner.Snapshot())
}

func (d *omissionDevice) Output() (sim.Decision, bool) { return sim.Decision{}, false }

// equivocator runs two honest inner devices with different inputs and
// routes each neighbor's traffic to one of them — the two-faced general.
// Both brains receive the full inbox, so each believes it is an honest
// participant.
type equivocator struct {
	brainA, brainB sim.Device
	aIn, bIn       sim.Input
	useB           map[string]bool
}

var _ sim.Device = (*equivocator)(nil)
var _ sim.Fingerprinter = (*equivocator)(nil)

// DeviceFingerprint captures both brains' identities, the inputs they
// were built with (which differ from the node's system-level input the
// execution cache keys on), and the realized audience split — the faceB
// predicate's only observable effect.
func (d *equivocator) DeviceFingerprint() string {
	fpA, fpB := sim.FingerprintOf(d.brainA), sim.FingerprintOf(d.brainB)
	if fpA == "" || fpB == "" {
		return ""
	}
	split := make([]string, 0, len(d.useB))
	for nb, b := range d.useB {
		if b {
			split = append(split, nb)
		}
	}
	sort.Strings(split)
	return fmt.Sprintf("adv/equiv[%s]a=%q:%s|b=%q:%s",
		strings.Join(split, ","), string(d.aIn), fpA, string(d.bIn), fpB)
}

// Equivocate builds a two-faced device: neighbors for which faceB returns
// true see an honest device with input b; all others see an honest device
// with input a.
func Equivocate(inner sim.Builder, a, b sim.Input, faceB func(neighbor string) bool) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &equivocator{
			brainA: inner(self, neighbors, a),
			brainB: inner(self, neighbors, b),
			aIn:    a,
			bIn:    b,
			useB:   make(map[string]bool, len(neighbors)),
		}
		for _, nb := range neighbors {
			if faceB(nb) {
				d.useB[nb] = true
			}
		}
		return d
	}
}

func (d *equivocator) Init(self string, neighbors []string, input sim.Input) {
	// Brains were initialized at construction with their own inputs.
}

func (d *equivocator) Step(round int, inbox sim.Inbox) sim.Outbox {
	outA := d.brainA.Step(round, inbox)
	outB := d.brainB.Step(round, inbox)
	out := sim.Outbox{}
	for nb, p := range outA {
		if !d.useB[nb] {
			out[nb] = p
		}
	}
	for nb, p := range outB {
		if d.useB[nb] {
			out[nb] = p
		}
	}
	return out
}

func (d *equivocator) Snapshot() string {
	return "equiv|" + d.brainA.Snapshot() + "|" + d.brainB.Snapshot()
}

func (d *equivocator) Output() (sim.Decision, bool) { return sim.Decision{}, false }

// noiseDevice sends seeded pseudo-random boolean payloads to every
// neighbor every round. Deterministic for a fixed (seed, self) pair.
type noiseDevice struct {
	//flmlint:allow flmfingerprint topology is keyed by the graph hash, not the device
	neighbors []string
	//flmlint:allow flmfingerprint rng stream is a pure function of seed and node name, both keyed
	rng      *rand.Rand
	seed     int64 // builder seed, pre node-name mixing (fingerprint identity)
	round    int
	alphabet []sim.Payload
}

var _ sim.Device = (*noiseDevice)(nil)
var _ sim.Fingerprinter = (*noiseDevice)(nil)

// DeviceFingerprint is the builder seed and alphabet; the per-node rng
// stream is a deterministic function of these plus the node name, which
// the execution cache keys separately. Valid only pre-execution — the
// cache computes keys before round 0, so the advancing rng state never
// leaks into an identity.
func (d *noiseDevice) DeviceFingerprint() string {
	parts := make([]string, len(d.alphabet))
	for i, p := range d.alphabet {
		parts[i] = fmt.Sprintf("%d:%s", len(p), p)
	}
	return fmt.Sprintf("adv/noise:seed=%d,alpha=%s", d.seed, strings.Join(parts, ","))
}

// Noise returns a builder for a device babbling pseudo-random payloads
// drawn from the alphabet (default {"0","1"} if none given).
func Noise(seed int64, alphabet ...sim.Payload) sim.Builder {
	if len(alphabet) == 0 {
		alphabet = []sim.Payload{"0", "1"}
	}
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		h := fnv.New64a()
		h.Write([]byte(self))
		d := &noiseDevice{
			neighbors: append([]string(nil), neighbors...),
			rng:       rand.New(rand.NewSource(seed ^ int64(h.Sum64()))),
			seed:      seed,
			alphabet:  alphabet,
		}
		sort.Strings(d.neighbors)
		return d
	}
}

func (d *noiseDevice) Init(self string, neighbors []string, input sim.Input) {}

func (d *noiseDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	out := sim.Outbox{}
	for _, nb := range d.neighbors {
		out[nb] = d.alphabet[d.rng.Intn(len(d.alphabet))]
	}
	d.round = round
	return out
}

func (d *noiseDevice) Snapshot() string { return fmt.Sprintf("noise@%d", d.round) }

func (d *noiseDevice) Output() (sim.Decision, bool) { return sim.Decision{}, false }

// mirrorDevice is an adaptive attacker: each round it takes the payloads
// it received and reflects them to *other* neighbors (rotating the
// audience), impersonating relayed traffic without understanding it.
type mirrorDevice struct {
	neighbors []string
	pending   map[string]sim.Payload
	round     int
}

var _ sim.Device = (*mirrorDevice)(nil)
var _ sim.Fingerprinter = (*mirrorDevice)(nil)

// DeviceFingerprint is constant: a mirror has no parameters.
func (d *mirrorDevice) DeviceFingerprint() string { return "adv/mirror" }

// Mirror returns a builder for reflection attackers.
func Mirror() sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &mirrorDevice{}
		d.Init(self, neighbors, input)
		return d
	}
}

func (d *mirrorDevice) Init(self string, neighbors []string, input sim.Input) {
	d.neighbors = append([]string(nil), neighbors...)
	sort.Strings(d.neighbors)
	d.pending = map[string]sim.Payload{}
}

func (d *mirrorDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	d.round = round
	out := sim.Outbox{}
	if len(d.neighbors) == 0 {
		return out
	}
	// Send to neighbor i what neighbor i+1 (cyclically) said last round.
	for i, nb := range d.neighbors {
		src := d.neighbors[(i+1)%len(d.neighbors)]
		if p, ok := d.pending[src]; ok && p != sim.None {
			out[nb] = p
		}
	}
	d.pending = map[string]sim.Payload{}
	for from, p := range inbox {
		d.pending[from] = p
	}
	return out
}

func (d *mirrorDevice) Snapshot() string {
	keys := make([]string, 0, len(d.pending))
	for k := range d.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprintf("mirror@%d[%s]", d.round, strings.Join(keys, ","))
}

func (d *mirrorDevice) Output() (sim.Decision, bool) { return sim.Decision{}, false }

// deadDevice is an initially-dead process: it never takes a step — no
// sends, no decisions, constant state — from before round 0. Unlike a
// crash at round 0 (which still executes its round-0 Step internally),
// a dead node is indistinguishable from a node that was never started,
// which is exactly the FLP Section 4 fault family: failures that happen
// before the protocol begins.
type deadDevice struct{}

var _ sim.Device = deadDevice{}
var _ sim.Fingerprinter = deadDevice{}

// DeviceFingerprint is constant: death has no parameters.
func (deadDevice) DeviceFingerprint() string { return "adv/dead" }

// InitiallyDead returns a builder for a process that fails before the
// protocol starts: it never sends, never decides, and its state never
// changes.
func InitiallyDead() sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		return deadDevice{}
	}
}

func (deadDevice) Init(self string, neighbors []string, input sim.Input) {}
func (deadDevice) Step(round int, inbox sim.Inbox) sim.Outbox           { return nil }
func (deadDevice) Snapshot() string                                     { return "dead" }
func (deadDevice) Output() (sim.Decision, bool)                         { return sim.Decision{}, false }

// Strategy couples a display name with a way to corrupt a given honest
// builder, so protocol tests can sweep a whole panel.
type Strategy struct {
	Name    string
	Corrupt func(inner sim.Builder) sim.Builder
}

// Panel returns the standard attack panel used by the possibility-side
// experiments. The equivocator splits audiences by neighbor-name hash, so
// every topology gets a nontrivial split.
func Panel(seed int64) []Strategy {
	hashSplit := func(nb string) bool {
		h := fnv.New32a()
		h.Write([]byte(nb))
		return h.Sum32()%2 == 0
	}
	return []Strategy{
		{Name: "silent", Corrupt: func(inner sim.Builder) sim.Builder { return Silent() }},
		{Name: "crash@1", Corrupt: func(inner sim.Builder) sim.Builder { return Crash(inner, 1) }},
		{Name: "crash@2", Corrupt: func(inner sim.Builder) sim.Builder { return Crash(inner, 2) }},
		{Name: "omit-half", Corrupt: func(inner sim.Builder) sim.Builder {
			return func(self string, neighbors []string, input sim.Input) sim.Device {
				var drop []string
				for i, nb := range neighbors {
					if i%2 == 0 {
						drop = append(drop, nb)
					}
				}
				return Omission(inner, drop...)(self, neighbors, input)
			}
		}},
		{Name: "equivocate", Corrupt: func(inner sim.Builder) sim.Builder {
			return Equivocate(inner, sim.BoolInput(false), sim.BoolInput(true), hashSplit)
		}},
		{Name: "noise", Corrupt: func(inner sim.Builder) sim.Builder { return Noise(seed) }},
		{Name: "mirror", Corrupt: func(inner sim.Builder) sim.Builder { return Mirror() }},
	}
}
