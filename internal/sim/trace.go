package sim

import (
	"context"
	"time"

	"flm/internal/obs"
	"flm/internal/runcache"
)

// Observability for the executor hot path. ExecuteCtx branches here on
// obs.Enabled() before touching any attribute or metric, so the
// disabled engine runs the exact pre-instrumentation code path
// (BenchmarkObsDisabled pins the zero-alloc claim).
var (
	mExecRuns    = obs.NewCounter("sim.exec.runs")
	mExecErrors  = obs.NewCounter("sim.exec.errors")
	mCacheHit    = obs.NewCounter("sim.cache.hit")
	mCacheWait   = obs.NewCounter("sim.cache.wait")
	mCacheMiss   = obs.NewCounter("sim.cache.miss")
	mCacheDisk   = obs.NewCounter("sim.cache.disk")
	mCacheBypass = obs.NewCounter("sim.cache.bypass")
	hExecDur     = obs.NewHistogram("sim.exec.dur_us")
)

// Message accounting for delay-schedule (adversarial asynchrony)
// executions. Every message dispatched under a delay schedule is
// classified exactly once — delivered into an inbox, lost past the
// round horizon, or collided (overwritten in its mailbox slot by a
// later send on the same edge before its delivery round) — so traced
// E19/E20-style runs satisfy sent = delivered + lost + collided;
// delayed counts the subset of sent with a positive extra delay.
// Synchronous executions never touch these: the accounting object only
// exists when a delay schedule is present AND a tracer is installed.
var (
	mAsyncSent      = obs.NewCounter("sim.async.sent")
	mAsyncDelivered = obs.NewCounter("sim.async.delivered")
	mAsyncDelayed   = obs.NewCounter("sim.async.delayed")
	mAsyncLost      = obs.NewCounter("sim.async.lost")
	mAsyncCollided  = obs.NewCounter("sim.async.collided")
)

// asyncAcct accumulates one execution's message classification in
// plain locals and flushes them to the counters in one batch of atomic
// adds when the execution returns (clean or not), keeping the delivery
// loop free of per-message atomics.
type asyncAcct struct {
	sent, delivered, delayed, lost, collided uint64
}

// flush publishes the execution's totals.
func (a *asyncAcct) flush() {
	mAsyncSent.Add(a.sent)
	mAsyncDelivered.Add(a.delivered)
	mAsyncDelayed.Add(a.delayed)
	mAsyncLost.Add(a.lost)
	mAsyncCollided.Add(a.collided)
}

// executeCtxTraced is ExecuteCtx's traced twin: same cache dispatch,
// wrapped in a "sim.execute" span recording the system shape, how the
// cache served the execution (hit / wait / disk / miss / bypass /
// uncacheable),
// the decision count, and — in full recording mode — the run's message
// and byte totals from CollectStats.
//
//flmlint:allow flmobscost reached only from ExecuteCtx's obs.Enabled() branch
//flmlint:allow flmdeterminism wall clock feeds span timing only, never the Run
func executeCtxTraced(ctx context.Context, sys *System, rounds int, opts ExecuteOpts) (*Run, error) {
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "sim.execute",
		obs.Int("nodes", sys.G.N()),
		obs.Int("rounds", rounds),
		obs.Bool("snapshots", opts.RecordSnapshots),
		obs.Bool("edges", opts.RecordEdges))

	var (
		run        *Run
		err        error
		cacheState = "bypass" // cancellable context or cache disabled
		served     = false
	)
	if ctx.Done() == nil && runcache.Enabled() {
		if key, ok := systemKey(sys, rounds, opts); ok {
			var v any
			var how runcache.How
			v, how, err = runCache.DoHow(key, func() (any, error) {
				return executeCore(ctx, sys, rounds, opts, key)
			})
			run, _ = v.(*Run)
			served = true
			cacheState = how.String() // miss / hit / wait / disk
			switch how {
			case runcache.Waited:
				mCacheWait.Inc()
			case runcache.Hit:
				mCacheHit.Inc()
			case runcache.DiskHit:
				mCacheDisk.Inc()
			default:
				mCacheMiss.Inc()
			}
		} else {
			cacheState = "uncacheable" // some device opted out of fingerprinting
		}
	}
	if !served {
		mCacheBypass.Inc()
		run, err = executeCore(ctx, sys, rounds, opts, "")
	}

	sp.SetAttrs(obs.Str("cache", cacheState))
	mExecRuns.Inc()
	hExecDur.Observe(uint64(time.Since(start) / time.Microsecond))
	if err != nil {
		mExecErrors.Inc()
		sp.SetAttrs(obs.Str("error", err.Error()))
	}
	if run != nil {
		decided := 0
		for _, d := range run.Decisions {
			if d.Value != "" {
				decided++
			}
		}
		sp.SetAttrs(obs.Int("decided", decided))
		if run.Edges != nil {
			st := CollectStats(run)
			sp.SetAttrs(obs.Int("messages", st.Messages), obs.Int("bytes", st.Bytes))
		}
	}
	sp.End()
	return run, err
}
