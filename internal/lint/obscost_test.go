package lint

import "testing"

func TestObsCostFixture(t *testing.T) {
	runFixture(t, "flm/internal/obsfix", []*Analyzer{ObsCost})
}
