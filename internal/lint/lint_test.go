package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSource type-checks one in-memory file as a package with the
// given import path (no imports beyond the universe and stdlib resolved
// from source) and runs the analyzers over it.
func checkSource(t *testing.T, importPath, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing source: %v", err)
	}
	info := NewInfo()
	conf := types.Config{Importer: SourceImporter(fset), Error: func(error) {}}
	pkg, err := conf.Check(importPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking source: %v", err)
	}
	return RunAnalyzers(fset, []*ast.File{f}, pkg, info, analyzers)
}

// TestDirectiveValidation pins that a directive cannot silently
// misfire: an unknown analyzer name and a missing reason are themselves
// findings, and a reasonless directive does not suppress anything.
func TestDirectiveValidation(t *testing.T) {
	diags := checkSource(t, "flm/internal/sim", `
package sim

import "time"

func f() {
	//flmlint:allow nosuchanalyzer because reasons
	_ = 0
	//flmlint:allow flmdeterminism
	_ = time.Now()
}
`, []*Analyzer{Determinism})

	var malformed, missingReason, wallclock bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "flmlint" && strings.Contains(d.Message, "malformed flmlint directive"):
			malformed = true
		case d.Analyzer == "flmlint" && strings.Contains(d.Message, "missing its reason"):
			missingReason = true
		case d.Analyzer == "flmdeterminism" && strings.Contains(d.Message, "time.Now"):
			wallclock = true
		}
	}
	if !malformed || !missingReason || !wallclock {
		t.Fatalf("want malformed-directive, missing-reason, and unsuppressed time.Now findings, got %v", diags)
	}
	if len(diags) != 3 {
		t.Fatalf("want exactly 3 findings, got %v", diags)
	}
}

// TestDiagnosticOrdering pins the stable sort of RunAnalyzers output.
func TestDiagnosticOrdering(t *testing.T) {
	diags := checkSource(t, "flm/internal/sim", `
package sim

import "time"

func b() { _ = time.Now() }

func a() { _ = time.Now() }
`, []*Analyzer{Determinism})
	if len(diags) != 2 {
		t.Fatalf("want 2 findings, got %v", diags)
	}
	if diags[0].Pos.Line > diags[1].Pos.Line {
		t.Fatalf("diagnostics not sorted by line: %v", diags)
	}
}
