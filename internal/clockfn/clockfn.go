// Package clockfn provides the time-function algebra behind the FLM85
// clock synchronization results (Section 7): increasing invertible
// functions of time with exact inverses and composition, so the paper's
// h = p⁻¹∘q, its iterates hⁱ, and the scaled scenarios Sᵢhⁱ can be built
// symbolically.
//
// Two layers coexist:
//
//   - Fn: float64 functions used for envelopes (l, u) and condition
//     evaluation — linear, logarithmic, exponential, compositions.
//   - RatLinear: exact rational affine clocks (big.Rat) used for event
//     scheduling in the timed simulator, where exactness guarantees that
//     scaling a run reorders nothing.
package clockfn

import (
	"fmt"
	"math"
	"math/big"
)

// Fn is an increasing invertible function of time.
type Fn interface {
	At(t float64) float64
	Inv(y float64) float64
	String() string
}

// Linear is f(t) = Rate*t + Off with Rate > 0.
type Linear struct {
	Rate, Off float64
}

var _ Fn = Linear{}

// At evaluates the function.
func (f Linear) At(t float64) float64 { return f.Rate*t + f.Off }

// Inv evaluates the inverse.
func (f Linear) Inv(y float64) float64 { return (y - f.Off) / f.Rate }

func (f Linear) String() string { return fmt.Sprintf("%g*t%+g", f.Rate, f.Off) }

// Identity is f(t) = t.
func Identity() Fn { return Linear{Rate: 1} }

// Log2 is f(t) = log2(t), defined for t > 0 (Corollary 15's lower
// envelope).
type Log2 struct{}

var _ Fn = Log2{}

// At evaluates the function.
func (Log2) At(t float64) float64 { return math.Log2(t) }

// Inv evaluates the inverse.
func (Log2) Inv(y float64) float64 { return math.Exp2(y) }

func (Log2) String() string { return "log2(t)" }

// Exp2 is f(t) = 2^t, the inverse of Log2.
type Exp2 struct{}

var _ Fn = Exp2{}

// At evaluates the function.
func (Exp2) At(t float64) float64 { return math.Exp2(t) }

// Inv evaluates the inverse.
func (Exp2) Inv(y float64) float64 { return math.Log2(y) }

func (Exp2) String() string { return "2^t" }

// compose is outer ∘ inner.
type compose struct {
	outer, inner Fn
}

var _ Fn = compose{}

// Compose returns outer ∘ inner: t -> outer(inner(t)).
func Compose(outer, inner Fn) Fn { return compose{outer: outer, inner: inner} }

func (c compose) At(t float64) float64  { return c.outer.At(c.inner.At(t)) }
func (c compose) Inv(y float64) float64 { return c.inner.Inv(c.outer.Inv(y)) }
func (c compose) String() string        { return c.outer.String() + " ∘ " + c.inner.String() }

// inverse flips a function.
type inverse struct{ f Fn }

var _ Fn = inverse{}

// Inverse returns f⁻¹ as a function.
func Inverse(f Fn) Fn { return inverse{f: f} }

func (i inverse) At(t float64) float64  { return i.f.Inv(t) }
func (i inverse) Inv(y float64) float64 { return i.f.At(y) }
func (i inverse) String() string        { return "(" + i.f.String() + ")⁻¹" }

// Iterate returns fⁿ (n-fold composition); negative n gives (f⁻¹)^|n| and
// n = 0 the identity.
func Iterate(f Fn, n int) Fn {
	if n == 0 {
		return Identity()
	}
	base := f
	if n < 0 {
		base = Inverse(f)
		n = -n
	}
	out := base
	for i := 1; i < n; i++ {
		out = Compose(out, base)
	}
	return out
}

// RatLinear is the exact affine clock D(t) = Rate*t + Off over the
// rationals. The zero value is unusable; construct with NewRatLinear or
// RatIdentity.
type RatLinear struct {
	Rate, Off *big.Rat
}

// NewRatLinear builds the exact clock (num/den)*t + (onum/oden).
func NewRatLinear(num, den, onum, oden int64) RatLinear {
	return RatLinear{Rate: big.NewRat(num, den), Off: big.NewRat(onum, oden)}
}

// RatIdentity is the exact identity clock.
func RatIdentity() RatLinear { return NewRatLinear(1, 1, 0, 1) }

// At evaluates the clock at an exact time.
func (f RatLinear) At(t *big.Rat) *big.Rat {
	out := new(big.Rat).Mul(f.Rate, t)
	return out.Add(out, f.Off)
}

// Inv evaluates the exact inverse.
func (f RatLinear) Inv(y *big.Rat) *big.Rat {
	out := new(big.Rat).Sub(y, f.Off)
	return out.Quo(out, f.Rate)
}

// ComposeRat returns f ∘ g exactly (another affine clock).
func (f RatLinear) ComposeRat(g RatLinear) RatLinear {
	rate := new(big.Rat).Mul(f.Rate, g.Rate)
	off := new(big.Rat).Mul(f.Rate, g.Off)
	off.Add(off, f.Off)
	return RatLinear{Rate: rate, Off: off}
}

// InverseRat returns f⁻¹ exactly.
func (f RatLinear) InverseRat() RatLinear {
	rate := new(big.Rat).Inv(f.Rate)
	off := new(big.Rat).Mul(rate, f.Off)
	off.Neg(off)
	return RatLinear{Rate: rate, Off: off}
}

// IterateRat returns fⁿ exactly (negative n inverts).
func (f RatLinear) IterateRat(n int) RatLinear {
	out := RatIdentity()
	base := f
	if n < 0 {
		base = f.InverseRat()
		n = -n
	}
	for i := 0; i < n; i++ {
		out = base.ComposeRat(out)
	}
	return out
}

// Float returns the float64 view of the clock for condition evaluation.
func (f RatLinear) Float() Linear {
	rate, _ := f.Rate.Float64()
	off, _ := f.Off.Float64()
	return Linear{Rate: rate, Off: off}
}

// Cmp compares two exact clocks for equality of law.
func (f RatLinear) Cmp(g RatLinear) bool {
	return f.Rate.Cmp(g.Rate) == 0 && f.Off.Cmp(g.Off) == 0
}

func (f RatLinear) String() string {
	return fmt.Sprintf("%s*t+%s", f.Rate.RatString(), f.Off.RatString())
}
