package lint

import (
	"testing"
)

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "flm/internal/chaos", []*Analyzer{Determinism})
}

// TestDeterminismSkipsUngatedPackages pins that the analyzer is scoped:
// the same violations at an import path outside deterministicPkgs and
// mapOrderPkgs produce nothing.
func TestDeterminismSkipsUngatedPackages(t *testing.T) {
	diags := checkSource(t, "example.com/other", `
package other

import "time"

func f() time.Time { return time.Now() }
`, []*Analyzer{Determinism})
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics outside gated packages, got %v", diags)
	}
}
