package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchFixture(entries ...BenchEntry) *BenchReport {
	return &BenchReport{Date: "2026-08-06", Entries: entries}
}

func TestCompareReportsDeltasAndGate(t *testing.T) {
	base := benchFixture(
		BenchEntry{ID: "E1", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 10000},
		BenchEntry{ID: "E2", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 10000},
		BenchEntry{ID: "gone", NsPerOp: 5, AllocsPerOp: 5, BytesPerOp: 5},
	)
	cur := benchFixture(
		BenchEntry{ID: "E1", NsPerOp: 500, AllocsPerOp: 30, BytesPerOp: 4000}, // improved
		BenchEntry{ID: "E2", NsPerOp: 1200, AllocsPerOp: 120, BytesPerOp: 10000}, // +20% ns and allocs
		BenchEntry{ID: "E18", NsPerOp: 7, AllocsPerOp: 7, BytesPerOp: 7}, // new, no baseline
	)

	var b strings.Builder
	if regressed := compareReports(&b, cur, base, "base.json", 0); regressed {
		t.Fatal("threshold 0 must be report-only, got a regression verdict")
	}
	out := b.String()
	for _, want := range []string{"E1", "-50.0%", "-70.0%", "-60.0%", "new entry", "present in baseline only"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "REGRESSION") {
		t.Fatalf("report-only mode flagged a regression:\n%s", out)
	}

	b.Reset()
	if regressed := compareReports(&b, cur, base, "base.json", 5); !regressed {
		t.Fatal("E2's +20%% allocs/op must trip a 5%% threshold")
	}
	if !strings.Contains(b.String(), "REGRESSION") {
		t.Fatalf("regressed entry not flagged:\n%s", b.String())
	}

	b.Reset()
	if regressed := compareReports(&b, cur, base, "base.json", 25); regressed {
		t.Fatal("a 25%% threshold must tolerate E2's +20%%")
	}

	// Wall-clock alone must not gate: ns/op is flagged for a human but
	// shared-machine scheduling noise cannot fail the build.
	nsOnly := benchFixture(
		BenchEntry{ID: "E2", NsPerOp: 1200, AllocsPerOp: 100, BytesPerOp: 10000}, // +20% ns only
	)
	b.Reset()
	if regressed := compareReports(&b, nsOnly, base, "base.json", 5); regressed {
		t.Fatalf("ns-only delta must not gate:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "ns regression (not gated)") {
		t.Fatalf("ns-only delta not flagged for review:\n%s", b.String())
	}
}

func TestPctDelta(t *testing.T) {
	cases := []struct{ cur, old, want float64 }{
		{150, 100, 50},
		{50, 100, -50},
		{0, 0, 0},
		{10, 0, 100},
	}
	for _, c := range cases {
		if got := pctDelta(c.cur, c.old); got != c.want {
			t.Fatalf("pctDelta(%v, %v) = %v, want %v", c.cur, c.old, got, c.want)
		}
	}
}

// TestBenchCompareCLI exercises the full flag path on one micro
// workload... too slow for unit tests; instead, verify the baseline
// loader and the exit-code plumbing with a crafted baseline that cannot
// regress (all zeros would read +100%, so use huge values).
func TestLoadBenchReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	r := benchFixture(BenchEntry{ID: "E1", NsPerOp: 1, AllocsPerOp: 1, BytesPerOp: 1})
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 1 || got.Entries[0].ID != "E1" {
		t.Fatalf("loaded %+v, want the E1 fixture", got)
	}
	if _, err := loadBenchReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline must error")
	}
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBenchReport(path); err == nil {
		t.Fatal("malformed baseline must error")
	}
}
