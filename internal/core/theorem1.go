package core

import (
	"fmt"

	"flm/internal/graph"
	"flm/internal/sim"
)

// ByzantineNodes mechanizes the 3f+1 node bound of Theorem 1. The graph g
// must have n <= 3f nodes, partitioned into non-empty blocks a, b, c of
// size at most f. The devices (builders, keyed by node name) are
// installed on the two-copy covering with the a-c edges crossed, copy 0
// gets input 0 and copy 1 input 1, and the three scenarios of the paper
// are spliced into behaviors E1, E2, E3 of g:
//
//	E1: blocks b,c correct with input 0, a faulty  -> validity forces 0
//	E2: block c (copy 0) and a (copy 1) correct, b faulty -> agreement
//	E3: blocks a,b correct with input 1, c faulty  -> validity forces 1
//
// E2 shares c's behavior with E1 and a's with E3, so if no condition
// failed the a-nodes would have decided both 0 and 1. The engine reports
// every condition that actually fails; at least one must.
func ByzantineNodes(g *graph.Graph, f int, a, b, c []int, builders map[string]sim.Builder, device string, rounds int) (*ChainResult, error) {
	if g.N() > 3*f {
		return nil, fmt.Errorf("core: graph has %d > 3f = %d nodes; not inadequate by node count", g.N(), 3*f)
	}
	if len(a) > f || len(b) > f || len(c) > f {
		return nil, fmt.Errorf("core: partition blocks must have at most f=%d nodes", f)
	}
	cover, err := graph.PartitionCover(g, a, b, c)
	if err != nil {
		return nil, err
	}
	inst, err := InstallCover(cover, builders, copyInputs(cover.S, sim.BoolInput(false), sim.BoolInput(true)))
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(rounds)
	if err != nil {
		return nil, err
	}
	cr := &ChainResult{
		Theorem:   "Theorem 1 (3f+1 nodes)",
		Problem:   "Byzantine agreement",
		Device:    device,
		F:         f,
		G:         g,
		CoverSize: cover.S.N(),
		RunS:      runS,
	}

	n := g.N()
	copy0 := func(nodes []int) []int { return append([]int(nil), nodes...) }
	copy1 := func(nodes []int) []int {
		shifted := make([]int, len(nodes))
		for i, u := range nodes {
			shifted[i] = u + n
		}
		return shifted
	}
	scenarios := []struct {
		name   string
		u      []int
		want   string
		expect string
	}{
		{"E1", append(copy0(b), copy0(c)...), "0", "validity forces all correct nodes to choose 0"},
		{"E2", append(copy0(c), copy1(a)...), "", "agreement chains c's choice (0) to a's"},
		{"E3", append(copy1(a), copy1(b)...), "1", "validity forces all correct nodes to choose 1"},
	}
	for _, sc := range scenarios {
		sp, err := SpliceScenario(inst, runS, sc.u, builders)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", sc.name, err)
		}
		cr.addLink(Link{
			Name: sc.name, Splice: sp, Expect: sc.expect,
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		cr.addBAViolations(sc.name, sp, sc.want)
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: no condition violated across E1,E2,E3 — impossible (engine or device-determinism bug):\n%s", cr)
	}
	return cr, nil
}

// ByzantineTriangle runs the f=1 triangle case of the node bound — the
// paper's hexagon argument — against devices for nodes a, b, c.
func ByzantineTriangle(builders map[string]sim.Builder, device string, rounds int) (*ChainResult, error) {
	return ByzantineNodes(graph.Triangle(), 1, []int{0}, []int{1}, []int{2}, builders, device, rounds)
}

// ByzantineConnectivity mechanizes the 2f+1 connectivity bound of
// Theorem 1. The node sets bSet and dSet (each of size at most f) must
// disconnect uNode from vNode. With a = the component of uNode after the
// cut is removed and c = the rest, the devices are installed on the
// two-copy covering with the a-d edges crossed (copy 0 input 0, copy 1
// input 1) and the paper's three scenarios are spliced:
//
//	E1 = S1: a,b,c correct with input 0, d faulty -> validity forces 0
//	E2 = S2: c,d (copy 0) and a (copy 1) correct, b faulty -> agreement
//	E3 = S3: a,b,c (copy 1) correct with input 1, d faulty -> validity forces 1
func ByzantineConnectivity(g *graph.Graph, f int, bSet, dSet []int, uNode, vNode int, builders map[string]sim.Builder, device string, rounds int) (*ChainResult, error) {
	if len(bSet) > f || len(dSet) > f {
		return nil, fmt.Errorf("core: cut halves must have at most f=%d nodes", f)
	}
	cover, err := graph.CutCover(g, bSet, dSet, uNode, vNode)
	if err != nil {
		return nil, err
	}
	inst, err := InstallCover(cover, builders, copyInputs(cover.S, sim.BoolInput(false), sim.BoolInput(true)))
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(rounds)
	if err != nil {
		return nil, err
	}
	cr := &ChainResult{
		Theorem:   "Theorem 1 (2f+1 connectivity)",
		Problem:   "Byzantine agreement",
		Device:    device,
		F:         f,
		G:         g,
		CoverSize: cover.S.N(),
		RunS:      runS,
	}

	removed := append(append([]int(nil), bSet...), dSet...)
	aSet := g.ComponentWithout(removed, uNode)
	inAorCut := make(map[int]bool, g.N())
	for _, x := range aSet {
		inAorCut[x] = true
	}
	for _, x := range removed {
		inAorCut[x] = true
	}
	var cSet []int
	for x := 0; x < g.N(); x++ {
		if !inAorCut[x] {
			cSet = append(cSet, x)
		}
	}
	n := g.N()
	shift := func(nodes []int, by int) []int {
		out := make([]int, len(nodes))
		for i, u := range nodes {
			out[i] = u + by
		}
		return out
	}
	concat := func(parts ...[]int) []int {
		var out []int
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	scenarios := []struct {
		name   string
		u      []int
		want   string
		expect string
	}{
		{"E1", concat(aSet, bSet, cSet), "0", "validity forces all correct nodes to choose 0"},
		{"E2", concat(cSet, dSet, shift(aSet, n)), "", "agreement chains c's choice (0) through d to a's"},
		{"E3", concat(shift(aSet, n), shift(bSet, n), shift(cSet, n)), "1", "validity forces all correct nodes to choose 1"},
	}
	for _, sc := range scenarios {
		sp, err := SpliceScenario(inst, runS, sc.u, builders)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", sc.name, err)
		}
		cr.addLink(Link{
			Name: sc.name, Splice: sp, Expect: sc.expect,
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		cr.addBAViolations(sc.name, sp, sc.want)
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: no condition violated across S1,S2,S3 — impossible (engine or device-determinism bug):\n%s", cr)
	}
	return cr, nil
}

// ByzantineDiamond runs the f=1 connectivity case on the paper's
// four-node diamond graph (connectivity 2, cut {b,d}).
func ByzantineDiamond(builders map[string]sim.Builder, device string, rounds int) (*ChainResult, error) {
	g := graph.Diamond()
	return ByzantineConnectivity(g, 1, []int{1}, []int{3}, 0, 2, builders, device, rounds)
}
