package runcache

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// strCost is the exact cost model used by the bound tests: value length,
// no overhead, so budget arithmetic in assertions is trivial.
func strCost(v any) int64 { return int64(len(v.(string))) }

// spreadKey builds a sha256 key for index i, so keys spread uniformly
// over shards the way real fingerprints do.
func spreadKey(i int) string {
	h := NewHasher("twotier-test/v1")
	h.Int(i)
	return h.Sum()
}

// TestL1BudgetNeverExceeded is the provable-bound acceptance test:
// insertions far past the budget must never push retained bytes (or the
// entry count under WithMaxEntries) over the configured bound, at any
// point, not just at the end.
func TestL1BudgetNeverExceeded(t *testing.T) {
	const budget = 4096
	c := New(WithShards(4), WithBudget(budget), WithCost(strCost))
	val := strings.Repeat("v", 100)
	for i := 0; i < 500; i++ {
		if _, err := c.Do(spreadKey(i), func() (any, error) { return val, nil }); err != nil {
			t.Fatal(err)
		}
		if st := c.Stats(); st.BytesRetained > budget {
			t.Fatalf("after insert %d: retained %d bytes > budget %d", i, st.BytesRetained, budget)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("500 x 100B inserts into a 4KiB cache evicted nothing: %+v", st)
	}
	if st.Entries == 0 {
		t.Fatalf("eviction left the cache empty: %+v", st)
	}
}

func TestL1MaxEntriesBound(t *testing.T) {
	const maxEnt = 8
	c := New(WithShards(4), WithMaxEntries(maxEnt), WithBudget(-1), WithCost(strCost))
	for i := 0; i < 100; i++ {
		c.Do(spreadKey(i), func() (any, error) { return "v", nil })
		if st := c.Stats(); st.Entries > maxEnt {
			t.Fatalf("after insert %d: %d entries > cap %d", i, st.Entries, maxEnt)
		}
	}
}

// TestEvictedKeyRecomputes pins the LRU order: with room for two
// entries, touching the older one makes the untouched one the victim.
func TestEvictedKeyRecomputes(t *testing.T) {
	c := New(WithShards(1), WithBudget(2), WithCost(strCost))
	calls := map[string]int{}
	do := func(key string) {
		t.Helper()
		v, err := c.Do(key, func() (any, error) { calls[key]++; return "x", nil })
		if err != nil || v != "x" {
			t.Fatalf("Do(%s) = (%v, %v)", key, v, err)
		}
	}
	do("a")
	do("b")
	do("a") // refresh a: b is now least recently used
	do("c") // evicts b
	do("a")
	do("b")
	if calls["a"] != 1 {
		t.Fatalf("a computed %d times, want 1 (should have survived as MRU)", calls["a"])
	}
	if calls["b"] != 2 {
		t.Fatalf("b computed %d times, want 2 (evicted, then recomputed)", calls["b"])
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
}

// TestBudgetZeroRetainsNothing: budget 0 is the "cache off but still
// single-flight" mode — results identical to FLM_RUNCACHE=off (every
// lookup computes, nothing retained) while concurrent callers of one key
// still coalesce onto one computation.
func TestBudgetZeroRetainsNothing(t *testing.T) {
	c := New(WithBudget(0))
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", func() (any, error) { calls++; return fmt.Sprintf("v%d", calls), nil })
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("v%d", i+1); v != want {
			t.Fatalf("call %d served %v, want fresh %s", i, v, want)
		}
		if st := c.Stats(); st.Entries != 0 || st.BytesRetained != 0 {
			t.Fatalf("budget-zero cache retained state: %+v", st)
		}
	}
	if calls != 3 {
		t.Fatalf("compute ran %d times, want 3 (nothing retained)", calls)
	}

	// Single-flight must still hold.
	var inFlight atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("sf", func() (any, error) {
				inFlight.Add(1)
				<-release
				return "shared", nil
			})
			if err != nil || v != "shared" {
				t.Errorf("Do = (%v, %v)", v, err)
			}
		}()
	}
	for c.Stats().Waits < 7 {
		// Spin until every waiter has piled onto the flight; bounded by
		// the test timeout.
	}
	close(release)
	wg.Wait()
	if n := inFlight.Load(); n != 1 {
		t.Fatalf("budget-zero cache ran %d concurrent computes, want 1 (single flight)", n)
	}
}

// TestWaitersSurviveReset: a flight whose entry is removed (Reset, or
// equivalently eviction) while waiters are blocked on it must still
// deliver its value to every waiter, and the next lookup recomputes.
func TestWaitersSurviveReset(t *testing.T) {
	c := New()
	computing := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := c.Do("k", func() (any, error) {
			close(computing)
			<-release
			return "first", nil
		})
		if err != nil || v != "first" {
			t.Errorf("owner Do = (%v, %v)", v, err)
		}
	}()
	<-computing

	const waiters = 4
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = c.Do("k", func() (any, error) { return "wrong-flight", nil })
		}(i)
	}
	for c.Stats().Waits < waiters {
		// Spin until all waiters hold the entry.
	}

	c.Reset() // rips the in-flight entry out of the map
	close(release)
	wg.Wait()
	for i, v := range results {
		if v != "first" {
			t.Fatalf("waiter %d got %v after Reset, want the original flight's value", i, v)
		}
	}

	calls := 0
	if v, _ := c.Do("k", func() (any, error) { calls++; return "second", nil }); v != "second" || calls != 1 {
		t.Fatalf("post-Reset Do = %v (calls %d), want fresh second/1", v, calls)
	}
}

// TestOversizeValueNotRetained: a value larger than a whole shard's
// budget slice is returned but never resident — and must not evict the
// entries that do fit.
func TestOversizeValueNotRetained(t *testing.T) {
	c := New(WithShards(1), WithBudget(100), WithCost(strCost))
	c.Do("small", func() (any, error) { return "s", nil })
	v, err := c.Do("huge", func() (any, error) { return strings.Repeat("h", 1000), nil })
	if err != nil || len(v.(string)) != 1000 {
		t.Fatalf("oversize Do = (%d bytes, %v)", len(v.(string)), err)
	}
	st := c.Stats()
	if st.Entries != 1 || st.BytesRetained != 1 {
		t.Fatalf("stats after oversize insert = %+v, want only the small entry resident", st)
	}
	calls := 0
	c.Do("small", func() (any, error) { calls++; return "s", nil })
	if calls != 0 {
		t.Fatal("oversize insert evicted the resident small entry")
	}
}

// TestSetBudgetEvictsAndRestores: shrinking the budget at runtime evicts
// immediately; the restore function reinstates the old bound.
func TestSetBudgetEvictsAndRestores(t *testing.T) {
	c := New(WithShards(1), WithBudget(1000), WithCost(strCost))
	for i := 0; i < 5; i++ {
		c.Do(fmt.Sprintf("k%d", i), func() (any, error) { return strings.Repeat("v", 100), nil })
	}
	if st := c.Stats(); st.BytesRetained != 500 {
		t.Fatalf("retained %d bytes, want 500", st.BytesRetained)
	}
	restore := c.SetBudget(250)
	if st := c.Stats(); st.BytesRetained > 250 {
		t.Fatalf("SetBudget(250) left %d bytes retained", st.BytesRetained)
	}
	restore()
	for i := 0; i < 5; i++ {
		c.Do(fmt.Sprintf("r%d", i), func() (any, error) { return strings.Repeat("w", 100), nil })
	}
	if st := c.Stats(); st.BytesRetained < 500 {
		t.Fatalf("restored budget retains only %d bytes, want >= 500", st.BytesRetained)
	}
}

// TestConcurrentEvictionSingleFlight is the -race stress test of the
// eviction/single-flight interaction: many goroutines over a key space
// far larger than a tiny budget, every lookup validating that it got its
// own key's value — never another flight's — while eviction churns
// constantly.
func TestConcurrentEvictionSingleFlight(t *testing.T) {
	c := New(WithShards(4), WithBudget(256), WithCost(strCost))
	const (
		goroutines = 8
		iterations = 400
		keySpace   = 32
	)
	keys := make([]string, keySpace)
	vals := make(map[string]string, keySpace)
	for i := range keys {
		keys[i] = spreadKey(i)
		vals[keys[i]] = fmt.Sprintf("val-%d-%s", i, strings.Repeat("x", 16))
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				k := keys[(g*31+i)%keySpace]
				v, err := c.Do(k, func() (any, error) { return vals[k], nil })
				if err != nil {
					t.Errorf("Do(%d): %v", i, err)
					return
				}
				if v != vals[k] {
					t.Errorf("Do returned another key's value: got %v want %v", v, vals[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.BytesRetained > 256 {
		t.Fatalf("retained %d bytes > 256 budget after concurrent churn", st.BytesRetained)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions under 32x%d-key churn against a 256B budget", goroutines)
	}
}

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in    string
		bytes int64
		ok    bool
	}{
		{"", DefaultBudget, true},
		{"unbounded", -1, true},
		{"UNLIMITED", -1, true},
		{"-3", -1, true},
		{"0", 0, true},
		{"123", 123, true},
		{"64k", 64 << 10, true},
		{"64K", 64 << 10, true},
		{"64KiB", 64 << 10, true},
		{"10mb", 10 << 20, true},
		{"2G", 2 << 30, true},
		{" 5 MiB ", 5 << 20, true},
		{"nonsense", 0, false},
		{"12q", 0, false},
	}
	for _, tc := range cases {
		got, ok := ParseBudget(tc.in)
		if got != tc.bytes || ok != tc.ok {
			t.Errorf("ParseBudget(%q) = (%d, %v), want (%d, %v)", tc.in, got, ok, tc.bytes, tc.ok)
		}
	}
}
