// Package sim is the synchronous message-passing execution model on which
// the FLM85 reproduction runs. It makes the paper's abstract notions
// concrete:
//
//   - a Device is a deterministic round-based automaton addressed by
//     neighbor names;
//   - a node behavior is the sequence of device state snapshots;
//   - an edge behavior is the sequence of payloads carried by a directed
//     edge, one per round;
//   - a system behavior (a Run) is the tuple of all node and edge
//     behaviors.
//
// The model satisfies the paper's Locality axiom by construction (a
// device's next state depends only on its own state and its inbox), and
// CheckLocality verifies it on concrete runs. It also satisfies the
// Bounded-Delay Locality axiom with delta equal to one round, because a
// message sent in round r is delivered in round r+1.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"flm/internal/graph"
)

// Payload is the content of one message. The empty payload means "no
// message this round"; edge behaviors are sequences of payloads, so two
// edge behaviors are equal exactly when the same bytes flowed in the same
// rounds.
type Payload string

// None is the absent message.
const None Payload = ""

// Input is a node's problem input, canonically encoded (see EncodeBool
// and EncodeReal in codec.go).
type Input string

// Decision is a device's irrevocable output value, canonically encoded.
type Decision struct {
	Value string // chosen value; "" while undecided
	Round int    // round at which the choice was made
}

// Inbox maps a neighbor name to the payload received from it this round.
// Neighbors that sent nothing are absent.
type Inbox map[string]Payload

// Outbox maps a neighbor name to the payload to send this round. Only
// actual neighbors may be addressed; other keys are an execution error.
type Outbox map[string]Payload

// Device is a deterministic consensus device. The executor drives it
// with:
//
//	Init(self, neighbors, input)        // once, before round 0
//	for r := 0; r < rounds; r++ {
//	    out := Step(r, inbox)           // inbox from round r-1 sends
//	}
//
// Snapshot must canonically encode the full device state so that two
// devices are behaving identically iff their snapshot sequences are
// equal. Output reports the device's choice once made; it must never
// change after it is first reported (the executor enforces this).
//
// Devices must be deterministic: identical Init arguments and inbox
// sequences must yield identical outboxes, snapshots, and outputs. This
// is the paper's base model; seeded pseudo-randomness is permitted
// because the seed is part of the device, making the composite
// deterministic (the Section 3 nondeterminism remark is exercised this
// way).
type Device interface {
	Init(self string, neighbors []string, input Input)
	Step(round int, inbox Inbox) Outbox
	Snapshot() string
	Output() (Decision, bool)
}

// Builder constructs a fresh device instance for a named node. Installing
// a protocol on a covering graph instantiates the same builder at every
// node of the fiber, which is exactly the paper's "assign devices to
// nodes of S according to their corresponding node in G".
type Builder func(self string, neighbors []string, input Input) Device

// Protocol assigns a device builder and an input to every node of a
// graph.
type Protocol struct {
	Builders map[string]Builder
	Inputs   map[string]Input
}

// System is a communication graph with a device and input assigned to
// every node — the paper's "system".
type System struct {
	G       *graph.Graph
	Devices []Device // indexed by node
	Inputs  []Input  // indexed by node
}

// NewSystem instantiates a protocol on a graph. Every node must have a
// builder and an input.
func NewSystem(g *graph.Graph, p Protocol) (*System, error) {
	sys := &System{
		G:       g,
		Devices: make([]Device, g.N()),
		Inputs:  make([]Input, g.N()),
	}
	for u := 0; u < g.N(); u++ {
		name := g.Name(u)
		b, ok := p.Builders[name]
		if !ok {
			return nil, fmt.Errorf("sim: no device builder for node %q", name)
		}
		input, ok := p.Inputs[name]
		if !ok {
			return nil, fmt.Errorf("sim: no input for node %q", name)
		}
		sys.Inputs[u] = input
		sys.Devices[u] = b(name, neighborNames(g, u), input)
	}
	return sys, nil
}

func neighborNames(g *graph.Graph, u int) []string {
	nbs := g.Neighbors(u)
	names := make([]string, len(nbs))
	for i, v := range nbs {
		names[i] = g.Name(v)
	}
	sort.Strings(names)
	return names
}

// Run is a recorded system behavior: every node behavior (snapshot
// sequence and decision) and every edge behavior (payload per round).
type Run struct {
	G         *graph.Graph
	Rounds    int
	Inputs    []Input
	Snapshots [][]string               // Snapshots[u][r] = state of node u after round r
	Edges     map[graph.Edge][]Payload // Edges[e][r] = payload carried in round r
	Decisions []Decision               // zero Value when the node never decided
}

// Execute runs the system for the given number of rounds and records the
// complete behavior. Messages sent in round r are delivered in round r+1;
// the inbox of round 0 is empty.
func Execute(sys *System, rounds int) (*Run, error) {
	g := sys.G
	run := &Run{
		G:         g,
		Rounds:    rounds,
		Inputs:    append([]Input(nil), sys.Inputs...),
		Snapshots: make([][]string, g.N()),
		Edges:     make(map[graph.Edge][]Payload, 2*g.NumEdges()),
		Decisions: make([]Decision, g.N()),
	}
	for _, e := range g.DirectedEdges() {
		run.Edges[e] = make([]Payload, rounds)
	}
	inboxes := make([]Inbox, g.N())
	for u := 0; u < g.N(); u++ {
		inboxes[u] = Inbox{}
		run.Snapshots[u] = make([]string, rounds)
	}
	for r := 0; r < rounds; r++ {
		next := make([]Inbox, g.N())
		for u := 0; u < g.N(); u++ {
			next[u] = Inbox{}
		}
		for u := 0; u < g.N(); u++ {
			out := sys.Devices[u].Step(r, inboxes[u])
			for to, payload := range out {
				v, ok := g.Index(to)
				if !ok || !g.HasEdge(u, v) {
					return nil, fmt.Errorf("sim: node %s sent to non-neighbor %q in round %d",
						g.Name(u), to, r)
				}
				if payload == None {
					continue
				}
				run.Edges[graph.Edge{From: g.Name(u), To: to}][r] = payload
				next[v][g.Name(u)] = payload
			}
			run.Snapshots[u][r] = sys.Devices[u].Snapshot()
			if d, ok := sys.Devices[u].Output(); ok {
				if run.Decisions[u].Value != "" && run.Decisions[u].Value != d.Value {
					return nil, fmt.Errorf("sim: node %s changed its decision from %q to %q",
						g.Name(u), run.Decisions[u].Value, d.Value)
				}
				if run.Decisions[u].Value == "" {
					run.Decisions[u] = Decision{Value: d.Value, Round: r}
				}
			}
		}
		inboxes = next
	}
	return run, nil
}

// MustExecute is Execute for known-good systems; it panics on error.
func MustExecute(sys *System, rounds int) *Run {
	run, err := Execute(sys, rounds)
	if err != nil {
		panic(err)
	}
	return run
}

// EdgeBehavior returns the payload sequence carried by the directed edge,
// or an error if the edge does not exist in the run's graph.
func (r *Run) EdgeBehavior(from, to string) ([]Payload, error) {
	seq, ok := r.Edges[graph.Edge{From: from, To: to}]
	if !ok {
		return nil, fmt.Errorf("sim: run has no edge %s->%s", from, to)
	}
	return seq, nil
}

// DecisionOf returns the decision of the named node.
func (r *Run) DecisionOf(name string) (Decision, error) {
	u, ok := r.G.Index(name)
	if !ok {
		return Decision{}, fmt.Errorf("sim: run has no node %q", name)
	}
	return r.Decisions[u], nil
}

// SnapshotsOf returns the snapshot sequence of the named node.
func (r *Run) SnapshotsOf(name string) ([]string, error) {
	u, ok := r.G.Index(name)
	if !ok {
		return nil, fmt.Errorf("sim: run has no node %q", name)
	}
	return r.Snapshots[u], nil
}

// String summarizes decisions, for debugging and reports.
func (r *Run) String() string {
	var b strings.Builder
	for u := 0; u < r.G.N(); u++ {
		d := r.Decisions[u]
		if d.Value == "" {
			fmt.Fprintf(&b, "%s: undecided\n", r.G.Name(u))
		} else {
			fmt.Fprintf(&b, "%s: %s @r%d\n", r.G.Name(u), d.Value, d.Round)
		}
	}
	return b.String()
}
