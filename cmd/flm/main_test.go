package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	code := run(args, &buf)
	return buf.String(), code
}

func TestUsageAndErrors(t *testing.T) {
	tests := []struct {
		args     []string
		wantCode int
		want     string
	}{
		{nil, 2, "commands:"},
		{[]string{"help"}, 0, "commands:"},
		{[]string{"bogus"}, 2, "unknown command"},
		{[]string{"run"}, 2, "need at least one"},
		{[]string{"run", "E99"}, 2, "no experiment"},
		{[]string{"adequacy"}, 2, "usage"},
		{[]string{"adequacy", "x", "y"}, 2, "integers"},
		{[]string{"prove"}, 2, "usage"},
		{[]string{"prove", "nope"}, 2, "unknown device"},
	}
	for _, tt := range tests {
		out, code := capture(t, tt.args...)
		if code != tt.wantCode {
			t.Errorf("%v: exit %d, want %d", tt.args, code, tt.wantCode)
		}
		if !strings.Contains(out, tt.want) {
			t.Errorf("%v: output missing %q:\n%s", tt.args, tt.want, out)
		}
	}
}

func TestList(t *testing.T) {
	out, code := capture(t, "list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"E1", "E7", "E14"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestAdequacyBothSides(t *testing.T) {
	out, code := capture(t, "adequacy", "3", "1")
	if code != 0 || !strings.Contains(out, "INADEQUATE") {
		t.Errorf("K3 f=1: %q (exit %d)", out, code)
	}
	out, code = capture(t, "adequacy", "4", "1")
	if code != 0 || !strings.Contains(out, "ADEQUATE") {
		t.Errorf("K4 f=1: %q (exit %d)", out, code)
	}
}

func TestRunExperiment(t *testing.T) {
	out, code := capture(t, "run", "e5") // lower case must work
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "E5") || !strings.Contains(out, "Theorem 5") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestProveDefeatsDevice(t *testing.T) {
	for _, dev := range []string{"majority", "eig", "phase-king"} {
		out, code := capture(t, "prove", dev)
		if code != 0 {
			t.Fatalf("%s: exit %d:\n%s", dev, code, out)
		}
		if !strings.Contains(out, "**") {
			t.Errorf("%s: no violation reported:\n%s", dev, out)
		}
	}
}

func TestDotCommand(t *testing.T) {
	tests := []struct {
		args     []string
		wantCode int
		want     string
	}{
		{[]string{"dot"}, 2, "usage"},
		{[]string{"dot", "nope"}, 2, "unknown cover"},
		{[]string{"dot", "hex"}, 0, `"r0" -- "r1"`},
		{[]string{"dot", "diamond"}, 0, "a.0"},
		{[]string{"dot", "ring", "24"}, 0, "r23"},
		{[]string{"dot", "ring", "7"}, 2, "multiple of 3"},
	}
	for _, tt := range tests {
		out, code := capture(t, tt.args...)
		if code != tt.wantCode || !strings.Contains(out, tt.want) {
			t.Errorf("%v: exit %d, output %q (want exit %d containing %q)",
				tt.args, code, out[:min(len(out), 200)], tt.wantCode, tt.want)
		}
	}
}

func TestTraceCommand(t *testing.T) {
	out, code := capture(t, "trace", "majority")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"round 0:", "decisions:", "messages="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	if _, code := capture(t, "trace"); code != 2 {
		t.Error("missing device accepted")
	}
	if _, code := capture(t, "trace", "nope"); code != 2 {
		t.Error("unknown device accepted")
	}
}

func TestAllWithOutputFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	path := filepath.Join(t.TempDir(), "report.txt")
	out, code := capture(t, "all", "-o", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out[:min(len(out), 2000)])
	}
	for _, id := range []string{"E1", "E8", "E14"} {
		if !strings.Contains(out, "== "+id+":") {
			t.Errorf("report missing %s", id)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
