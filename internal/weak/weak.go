// Package weak implements the weak Byzantine agreement problem of FLM85
// Section 4 (Lamport's weak Byzantine generals): agreement is as for
// Byzantine agreement, but validity only binds executions in which every
// node is correct and inputs are unanimous. The paper shows the problem
// still needs 3f+1 nodes and 2f+1 connectivity once the Choice condition
// (decide after finite time) and the Bounded-Delay Locality axiom
// (information travels at most one edge per δ) are imposed; the
// synchronous simulator satisfies the latter with δ = one round.
package weak

import (
	"fmt"
	"sort"
	"strings"

	"flm/internal/byzantine"
	"flm/internal/sim"
)

// NewViaBA returns a weak agreement device built on EIG Byzantine
// agreement. Full BA validity implies weak validity, so on adequate
// graphs this solves the weak problem outright.
func NewViaBA(f int, peers []string) sim.Builder {
	return byzantine.NewEIG(f, peers)
}

// detectDefault is the natural weak-agreement attempt: broadcast the
// input, echo views, and decide the common value if everything looks
// unanimous and fault-free; on any anomaly (disagreement, silence,
// malformed traffic) fall back to the default value. Its validity is
// easy — anomalies never happen when everyone is correct and unanimous —
// and FLM85 Theorem 2 shows its agreement must be breakable on
// inadequate graphs.
type detectDefault struct {
	self        string
	nbs         []string
	input       string
	anomaly     bool
	views       map[string]string
	decideRound int
	decided     bool
	decision    string
}

var _ sim.Device = (*detectDefault)(nil)
var _ sim.Fingerprinter = (*detectDefault)(nil)

// DeviceFingerprint is the constructor identity (the decide round);
// everything else is keyed by the execution cache.
func (d *detectDefault) DeviceFingerprint() string {
	return fmt.Sprintf("weak/detectdefault@%d", d.decideRound)
}

// NewDetectDefault returns a builder for detect-and-default weak
// agreement devices deciding at the given round.
func NewDetectDefault(decideRound int) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &detectDefault{decideRound: decideRound}
		d.Init(self, neighbors, input)
		return d
	}
}

func (d *detectDefault) Init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.nbs = append([]string(nil), neighbors...)
	sort.Strings(d.nbs)
	switch string(input) {
	case "0", "1":
		d.input = string(input)
	default:
		d.input = byzantine.DefaultValue
		d.anomaly = true
	}
	d.views = map[string]string{self: d.input}
}

func (d *detectDefault) Step(round int, inbox sim.Inbox) sim.Outbox {
	if round > 0 {
		for _, nb := range d.nbs {
			payload, ok := inbox[nb]
			if !ok {
				d.anomaly = true // silence is a fault symptom
				continue
			}
			d.ingest(nb, string(payload))
		}
	}
	// Any disagreement among seen values is an anomaly.
	for _, v := range d.views {
		if v != d.input {
			d.anomaly = true
		}
	}
	if !d.decided && round >= d.decideRound {
		d.decided = true
		if d.anomaly {
			d.decision = byzantine.DefaultValue
		} else {
			d.decision = d.input
		}
	}
	out := sim.Outbox{}
	msg := d.encode()
	for _, nb := range d.nbs {
		out[nb] = msg
	}
	return out
}

// encode is "value|anomaly" plus the sorted view, so anomaly reports
// propagate.
func (d *detectDefault) encode() sim.Payload {
	flag := "ok"
	if d.anomaly {
		flag = "bad"
	}
	keys := make([]string, 0, len(d.views))
	for k := range d.views {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+2)
	parts = append(parts, d.input, flag)
	for _, k := range keys {
		parts = append(parts, k+"="+d.views[k])
	}
	return sim.Payload(strings.Join(parts, "|"))
}

func (d *detectDefault) ingest(sender, s string) {
	parts := strings.Split(s, "|")
	if len(parts) < 2 || (parts[0] != "0" && parts[0] != "1") {
		d.anomaly = true
		return
	}
	d.views[sender] = parts[0]
	if parts[1] == "bad" {
		d.anomaly = true
	} else if parts[1] != "ok" {
		d.anomaly = true
	}
	for _, kv := range parts[2:] {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			d.anomaly = true
			continue
		}
		subject, v := kv[:eq], kv[eq+1:]
		if v != "0" && v != "1" {
			d.anomaly = true
			continue
		}
		if prev, seen := d.views[subject]; seen && prev != v {
			d.anomaly = true // two different reports about one node
		} else if !seen {
			d.views[subject] = v
		}
	}
}

func (d *detectDefault) Snapshot() string {
	keys := make([]string, 0, len(d.views))
	for k := range d.views {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "dd(in=%s,anom=%v,dec=%v:%s)", d.input, d.anomaly, d.decided, d.decision)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, d.views[k])
	}
	return b.String()
}

func (d *detectDefault) Output() (sim.Decision, bool) {
	if !d.decided {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: d.decision}, true
}

// Report records the weak agreement conditions for one run.
type Report struct {
	Choice    error // every correct node decided within the horizon
	Agreement error // all correct decisions equal
	Validity  error // all-correct unanimous runs must choose the input
}

// OK reports whether every condition holds.
func (r Report) OK() bool { return r.Choice == nil && r.Agreement == nil && r.Validity == nil }

// Err returns the first violated condition, or nil.
func (r Report) Err() error {
	switch {
	case r.Choice != nil:
		return r.Choice
	case r.Agreement != nil:
		return r.Agreement
	default:
		return r.Validity
	}
}

// Check evaluates weak agreement on a run. allCorrect states whether
// every node of the system is correct (the only case validity binds).
func Check(run *sim.Run, correct []string, allCorrect bool) Report {
	var rep Report
	decisions := make(map[string]string, len(correct))
	for _, name := range correct {
		d, err := run.DecisionOf(name)
		if err != nil || d.Value == "" {
			rep.Choice = fmt.Errorf("weak: correct node %s never chose within the horizon", name)
			return rep
		}
		decisions[name] = d.Value
	}
	first := correct[0]
	for _, name := range correct[1:] {
		if decisions[name] != decisions[first] {
			rep.Agreement = fmt.Errorf("weak: %s chose %s but %s chose %s",
				first, decisions[first], name, decisions[name])
			break
		}
	}
	if allCorrect {
		unanimous := true
		var common sim.Input
		for i, name := range correct {
			u := run.G.MustIndex(name)
			if i == 0 {
				common = run.Inputs[u]
			} else if run.Inputs[u] != common {
				unanimous = false
				break
			}
		}
		if unanimous {
			for _, name := range correct {
				if decisions[name] != string(common) {
					rep.Validity = fmt.Errorf("weak: all correct and unanimous on %s but %s chose %s",
						common, name, decisions[name])
					break
				}
			}
		}
	}
	return rep
}
