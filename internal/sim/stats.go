package sim

import (
	"fmt"
	"strings"
)

// Stats summarizes the communication cost of a run — the data behind the
// message-complexity comparisons (EIG's exponential blowup versus phase
// king's polynomial traffic).
type Stats struct {
	Rounds        int
	Messages      int   // non-empty payload transmissions
	Bytes         int   // total payload bytes
	MaxPayload    int   // largest single payload
	PerRoundMsgs  []int // messages per round
	PerRoundBytes []int // bytes per round
}

// CollectStats tallies the communication cost of a run.
func CollectStats(run *Run) Stats {
	st := Stats{
		Rounds:        run.Rounds,
		PerRoundMsgs:  make([]int, run.Rounds),
		PerRoundBytes: make([]int, run.Rounds),
	}
	for _, seq := range run.Edges {
		for r, p := range seq {
			if p == None {
				continue
			}
			st.Messages++
			st.Bytes += len(p)
			st.PerRoundMsgs[r]++
			st.PerRoundBytes[r] += len(p)
			if len(p) > st.MaxPayload {
				st.MaxPayload = len(p)
			}
		}
	}
	return st
}

// String renders the totals.
func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d messages=%d bytes=%d maxPayload=%d",
		s.Rounds, s.Messages, s.Bytes, s.MaxPayload)
}

// Trace renders a round-by-round view of all edge traffic in a run, for
// debugging covering arguments. Payloads longer than width are truncated.
func Trace(run *Run, width int) string {
	var b strings.Builder
	edges := run.G.DirectedEdges()
	for r := 0; r < run.Rounds; r++ {
		fmt.Fprintf(&b, "round %d:\n", r)
		for _, e := range edges {
			p := run.Edges[e][r]
			if p == None {
				continue
			}
			s := string(p)
			if width > 0 && len(s) > width {
				s = s[:width] + "…"
			}
			fmt.Fprintf(&b, "  %-12s %s\n", e.String()+":", s)
		}
	}
	return b.String()
}
