package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentAndConcurrent(t *testing.T) {
	r := NewRegistry()
	if r.NewCounter("c") != r.NewCounter("c") {
		t.Fatal("NewCounter must return the same series per name")
	}
	if r.NewGauge("g") != r.NewGauge("g") {
		t.Fatal("NewGauge must return the same series per name")
	}
	if r.NewHistogram("h") != r.NewHistogram("h") {
		t.Fatal("NewHistogram must return the same series per name")
	}

	c := r.NewCounter("hits")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("d")
	for _, v := range []uint64{1, 2, 3, 100, 0} {
		h.Observe(v)
	}
	s := r.Snapshot().Hists["d"]
	if s.Count != 5 || s.Sum != 106 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if mean := s.Mean(); mean != 21.2 {
		t.Fatalf("mean = %v, want 21.2", mean)
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Fatal("empty histogram mean should be 0")
	}
}

func TestSnapshotRendering(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b.count").Add(3)
	r.NewCounter("a.count").Inc()
	r.NewGauge("depth").Set(-2)
	r.NewHistogram("lat").Observe(10)
	s := r.Snapshot()

	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	want := "a.count 1\nb.count 3\ndepth -2\nlat count=1 mean=10.0 max=10\n"
	if text.String() != want {
		t.Errorf("WriteText:\n%q\nwant\n%q", text.String(), want)
	}

	body := s.AppendJSON(nil)
	var decoded struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
		Hists    map[string]struct {
			Count, Sum, Max uint64
		} `json:"hists"`
	}
	if err := json.Unmarshal([]byte("{"+string(body)+"}"), &decoded); err != nil {
		t.Fatalf("AppendJSON output invalid: %v\n%s", err, body)
	}
	if decoded.Counters["a.count"] != 1 || decoded.Counters["b.count"] != 3 {
		t.Errorf("counters: %v", decoded.Counters)
	}
	if decoded.Gauges["depth"] != -2 {
		t.Errorf("gauges: %v", decoded.Gauges)
	}
	if h := decoded.Hists["lat"]; h.Count != 1 || h.Sum != 10 || h.Max != 10 {
		t.Errorf("hists: %v", decoded.Hists)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c")
	g := r.NewGauge("g")
	h := r.NewHistogram("h")
	c.Add(5)
	g.Set(7)
	h.Observe(9)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("Reset must zero counters and gauges")
	}
	if s := r.Snapshot().Hists["h"]; s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("Reset must zero histograms, got %+v", s)
	}
	c.Inc() // series pointer stays live after Reset
	if c.Value() != 1 {
		t.Fatal("series must remain usable after Reset")
	}
}

func TestMetricsLineInTrace(t *testing.T) {
	Metrics.Reset()
	defer Metrics.Reset()
	NewCounter("test.metrics.line").Add(11)
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if !json.Valid([]byte(line)) {
		t.Fatalf("metrics line invalid JSON: %s", line)
	}
	if !strings.Contains(line, `"test.metrics.line":11`) {
		t.Errorf("metrics line missing counter: %s", line)
	}
}
