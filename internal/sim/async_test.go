package sim

import (
	"sync/atomic"
	"testing"

	"flm/internal/graph"
)

// lineInputs builds distinct inputs for the two-node line used by the
// delay tests: l0 sends "x"-facts, l1 sends "y"-facts.
func asyncLineSystem(t *testing.T, delays *DelaySchedule, rounds int) *Run {
	t.Helper()
	g := graph.Line(2)
	sys, err := NewSystem(g, gossipProtocol(g, rounds, map[string]Input{"l0": "x", "l1": "y"}))
	if err != nil {
		t.Fatal(err)
	}
	run, err := ExecuteWith(sys, rounds, ExecuteOpts{
		RecordSnapshots: true,
		RecordEdges:     true,
		Delays:          delays,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestDelayedDelivery(t *testing.T) {
	// Delay l1's round-0 message to l0 by 2 extra rounds: l0 learns
	// l1=y at round 3 (send round 0 + 1 + 2) instead of round 1 —
	// because the delayed copy overwrites nothing: l1's round-1 and
	// round-2 broadcasts to l0 are delayed past it too, or the latest
	// would win. Here we delay EVERY l1->l0 message by 2, so l0 sees
	// l1's round r broadcast at round r+3.
	delays := &DelaySchedule{Rules: []DelayRule{
		{From: "l1", To: "l0", Round: 0, Extra: 2},
		{From: "l1", To: "l0", Round: 1, Extra: 2},
		{From: "l1", To: "l0", Round: 2, Extra: 2},
		{From: "l1", To: "l0", Round: 3, Extra: 2},
	}}
	run := asyncLineSystem(t, delays, 5)
	// Synchronously l0 would know l1=y at round 1; with +2 delay the
	// round-0 broadcast arrives for the round-3 step.
	if got := run.Snapshots[0][2]; got != "l0=x" {
		t.Errorf("round 2 snapshot = %q, want delayed ignorance", got)
	}
	if got := run.Snapshots[0][3]; got != "l0=x,l1=y" {
		t.Errorf("round 3 snapshot = %q, want delivery at +2", got)
	}
	// The reverse direction is untouched: l1 learns l0=x at round 1.
	if got := run.Snapshots[1][1]; got != "l0=x,l1=y" {
		t.Errorf("l1 round 1 snapshot = %q, want synchronous delivery", got)
	}
}

func TestDelayPastHorizonIsLoss(t *testing.T) {
	// Every l1->l0 message is delayed past the 4-round horizon: l0
	// never hears from l1 at all.
	rules := make([]DelayRule, 0, 4)
	for r := 0; r < 4; r++ {
		rules = append(rules, DelayRule{From: "l1", To: "l0", Round: r, Extra: 10})
	}
	run := asyncLineSystem(t, &DelaySchedule{Rules: rules}, 4)
	for r := 0; r < 4; r++ {
		if got := run.Snapshots[0][r]; got != "l0=x" {
			t.Errorf("round %d snapshot = %q, want l1 silent forever", r, got)
		}
	}
	// Edge behaviors record the wire at SEND time: l1 still sent every
	// round even though nothing arrived.
	seq, err := run.EdgeBehavior("l1", "l0")
	if err != nil {
		t.Fatal(err)
	}
	for r, p := range seq {
		if p == None {
			t.Errorf("edge l1->l0 round %d = None, want recorded send", r)
		}
	}
}

// collisionDevice sends a distinct payload each round and records every
// payload it has ever received from its single neighbor, in arrival
// order. It never decides.
type collisionDevice struct {
	self, peer string
	got        []Payload
}

func (d *collisionDevice) Init(self string, neighbors []string, _ Input) {
	d.self = self
	d.peer = neighbors[0]
}

func (d *collisionDevice) Step(round int, inbox Inbox) Outbox {
	if p, ok := inbox[d.peer]; ok {
		d.got = append(d.got, p)
	}
	return Outbox{d.peer: Payload(d.self + EncodeInt(round))}
}

func (d *collisionDevice) Snapshot() string {
	s := ""
	for _, p := range d.got {
		s += string(p) + ";"
	}
	return s
}

func (d *collisionDevice) Output() (Decision, bool) { return Decision{}, false }

func TestDelayCollisionLatestSentWins(t *testing.T) {
	// l1's round-0 message is delayed +1, landing at round 2 — the same
	// delivery round as its round-1 message. The round-1 (latest-sent)
	// payload must win, and round 1 must see nothing from l1.
	g := graph.Line(2)
	builder := func(self string, neighbors []string, input Input) Device {
		d := &collisionDevice{}
		d.Init(self, neighbors, input)
		return d
	}
	sys, err := NewSystem(g, Protocol{
		Builders: map[string]Builder{"l0": builder, "l1": builder},
		Inputs:   map[string]Input{"l0": "", "l1": ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	delays := &DelaySchedule{Rules: []DelayRule{{From: "l1", To: "l0", Round: 0, Extra: 1}}}
	run, err := ExecuteWith(sys, 3, ExecuteOpts{RecordSnapshots: true, Delays: delays})
	if err != nil {
		t.Fatal(err)
	}
	// l0 heard nothing in round 1, then exactly l1's round-1 payload in
	// round 2; the round-0 payload collapsed onto the same slot and lost.
	want := "l1" + EncodeInt(1) + ";"
	if got := run.Snapshots[0][2]; got != want {
		t.Errorf("l0 heard %q, want %q (latest-sent wins)", got, want)
	}
}

func TestInertScheduleMatchesSynchronous(t *testing.T) {
	// A schedule with only Extra<=0 rules must be byte-identical to the
	// synchronous run, including its cache key.
	inert := &DelaySchedule{Rules: []DelayRule{{From: "l1", To: "l0", Round: 0, Extra: 0}}}
	a := asyncLineSystem(t, nil, 4)
	b := asyncLineSystem(t, inert, 4)
	for u := range a.Snapshots {
		for r := range a.Snapshots[u] {
			if a.Snapshots[u][r] != b.Snapshots[u][r] {
				t.Fatalf("inert schedule diverged at node %d round %d", u, r)
			}
		}
	}
}

func TestDelayScheduleChangesCacheKey(t *testing.T) {
	g := triangle(t)
	var steps atomic.Int64
	keyWith := func(d *DelaySchedule) string {
		key, ok := systemKey(countingSystem(t, g, "async", &steps), 4, ExecuteOpts{Delays: d})
		if !ok {
			t.Fatal("counting system should be content-addressed")
		}
		return key
	}
	sync := keyWith(nil)
	inert := keyWith(&DelaySchedule{Rules: []DelayRule{{From: "a", To: "b", Round: 0, Extra: 0}}})
	delayed := keyWith(&DelaySchedule{Rules: []DelayRule{{From: "a", To: "b", Round: 0, Extra: 1}}})
	delayed2 := keyWith(&DelaySchedule{Rules: []DelayRule{{From: "a", To: "b", Round: 0, Extra: 1}}})
	if sync != inert {
		t.Error("inert schedule changed the cache key")
	}
	if sync == delayed {
		t.Error("delay schedule did not separate cache keys")
	}
	if delayed != delayed2 {
		t.Error("equal delay schedules produced different cache keys")
	}
}

func TestDelayedRunDeterministicAcrossExecutions(t *testing.T) {
	g := graph.Complete(5)
	inputs := map[string]Input{}
	for i, name := range g.Names() {
		inputs[name] = Input(EncodeInt(i * 3))
	}
	delays := SeededDelays(42, g.Names(), 6, 3)
	mk := func() *Run {
		ResetRunCache()
		sys, err := NewSystem(g, gossipProtocol(g, 4, inputs))
		if err != nil {
			t.Fatal(err)
		}
		run, err := ExecuteWith(sys, 6, ExecuteOpts{RecordSnapshots: true, RecordEdges: true, Delays: delays})
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	a, b := mk(), mk()
	for u := range a.Snapshots {
		for r := range a.Snapshots[u] {
			if a.Snapshots[u][r] != b.Snapshots[u][r] {
				t.Fatalf("async run diverged at node %d round %d:\n%q\n%q",
					u, r, a.Snapshots[u][r], b.Snapshots[u][r])
			}
		}
	}
}

func TestSeededDelaysPure(t *testing.T) {
	g := graph.Complete(4)
	a := SeededDelays(7, g.Names(), 5, 2)
	b := SeededDelays(7, g.Names(), 5, 2)
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(a.Rules), len(b.Rules))
	}
	for i := range a.Rules {
		if a.Rules[i] != b.Rules[i] {
			t.Fatalf("rule %d differs: %+v vs %+v", i, a.Rules[i], b.Rules[i])
		}
	}
	if a.Empty() {
		t.Error("seeded schedule over K4x5 rounds should not be empty")
	}
	if a.MaxExtra() > 2 {
		t.Errorf("MaxExtra = %d, want <= 2", a.MaxExtra())
	}
	c := SeededDelays(8, g.Names(), 5, 2)
	same := len(a.Rules) == len(c.Rules)
	if same {
		for i := range a.Rules {
			if a.Rules[i] != c.Rules[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestSeededDelaysDegenerate(t *testing.T) {
	g := graph.Complete(3)
	if s := SeededDelays(1, g.Names(), 5, 0); !s.Empty() {
		t.Error("maxExtra=0 should give the synchronous (empty) schedule")
	}
	if s := SeededDelays(1, g.Names(), 0, 3); !s.Empty() {
		t.Error("rounds=0 should give the empty schedule")
	}
	var nilSched *DelaySchedule
	if !nilSched.Empty() {
		t.Error("nil schedule should be Empty")
	}
	if nilSched.MaxExtra() != 0 {
		t.Error("nil schedule MaxExtra should be 0")
	}
}
