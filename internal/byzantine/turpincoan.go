package byzantine

import (
	"fmt"
	"sort"
	"strings"

	"flm/internal/sim"
)

// turpinCoan implements the Turpin-Coan reduction from multivalued to
// binary Byzantine agreement (n >= 3f+1): two preliminary exchange
// rounds distill at most one candidate value w held by enough correct
// nodes, binary EIG agrees on whether to adopt it, and the quorum
// arithmetic guarantees every correct node that needs w can identify it
// unambiguously.
//
//	Round 0: broadcast the input value.
//	Round 1: broadcast y = the value seen >= n-f times (or ⊥).
//	         Set vote = 1 iff some value appears >= n-f times among the
//	         y's, and alt = the unique value appearing >= f+1 times.
//	Rounds 2..: binary EIG on vote; decide alt if it agrees on 1 and alt
//	         exists, else the default value.
//
// Correctness hinges on two quorum facts (both need n > 3f): two correct
// nodes' non-⊥ y values coincide, and any value with >= f+1 round-1
// witnesses among the y's was vouched for by a correct node.
type turpinCoan struct {
	self      string
	peers     []string
	neighbors []string
	f         int
	input     string
	y         string // round-1 relay value, "" encodes ⊥
	alt       string
	altOK     bool
	inner     sim.Device
	decided   bool
	decision  string
}

var _ sim.Device = (*turpinCoan)(nil)
var _ sim.Fingerprinter = (*turpinCoan)(nil)

// DeviceFingerprint is the constructor identity: fault bound and peer
// set (see eigDevice.DeviceFingerprint).
func (d *turpinCoan) DeviceFingerprint() string {
	return fmt.Sprintf("byz/turpincoan:f=%d,peers=%s", d.f, strings.Join(d.peers, ","))
}

// tcBot is the on-wire encoding of ⊥.
const tcBot = "-"

// NewTurpinCoan returns a builder for multivalued agreement devices over
// arbitrary string values (n >= 3f+1). Values containing protocol
// delimiters are treated as the default.
func NewTurpinCoan(f int, peers []string) sim.Builder {
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &turpinCoan{f: f, peers: sorted}
		d.Init(self, neighbors, input)
		return d
	}
}

// TurpinCoanRounds returns the simulator rounds a Turpin-Coan run needs:
// two exchange rounds plus the binary agreement.
func TurpinCoanRounds(f int) int { return 2 + EIGRounds(f) }

func (d *turpinCoan) Init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.neighbors = append([]string(nil), neighbors...)
	sort.Strings(d.neighbors)
	d.input = sanitizeMV(string(input))
}

// sanitizeMV keeps multivalued inputs inside the payload alphabet.
func sanitizeMV(v string) string {
	if v == "" || v == tcBot || strings.ContainsAny(v, ";=/|") {
		return DefaultValue
	}
	return v
}

func (d *turpinCoan) Step(round int, inbox sim.Inbox) sim.Outbox {
	switch {
	case round == 0:
		return d.broadcast(sim.Payload(d.input))
	case round == 1:
		counts := d.tallyPeers(inbox, d.input)
		d.y = tcBot
		for _, v := range sortedKeys(counts) {
			if counts[v] >= len(d.peers)-d.f {
				d.y = v
			}
		}
		return d.broadcast(sim.Payload(d.y))
	case round == 2:
		counts := d.tallyPeers(inbox, d.y)
		delete(counts, tcBot)
		vote := false
		for _, v := range sortedKeys(counts) {
			if counts[v] >= len(d.peers)-d.f {
				vote = true
			}
			if counts[v] >= d.f+1 {
				// Unique when it exists: a value with f+1 witnesses has a
				// correct witness, and correct non-⊥ y values coincide.
				d.alt, d.altOK = v, true
			}
		}
		d.inner = NewEIG(d.f, d.peers)(d.self, d.neighbors, sim.BoolInput(vote))
		return d.inner.Step(0, sim.Inbox{})
	default:
		out := d.inner.Step(round-2, inbox)
		if dec, ok := d.inner.Output(); ok && !d.decided {
			d.decided = true
			if dec.Value == "1" && d.altOK {
				d.decision = d.alt
			} else {
				d.decision = DefaultValue
			}
		}
		return out
	}
}

// tallyPeers counts the values received from every peer this round
// (self-delivery via own), treating silence as ⊥.
func (d *turpinCoan) tallyPeers(inbox sim.Inbox, own string) map[string]int {
	counts := map[string]int{own: 1}
	for _, p := range d.peers {
		if p == d.self {
			continue
		}
		v := tcBot
		if payload, ok := inbox[p]; ok {
			s := string(payload)
			if s == tcBot {
				v = tcBot
			} else if sanitized := sanitizeMV(s); sanitized == s {
				v = s
			}
			// Garbled payloads count as ⊥.
		}
		counts[v]++
	}
	return counts
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (d *turpinCoan) broadcast(p sim.Payload) sim.Outbox {
	out := sim.Outbox{}
	for _, nb := range d.neighbors {
		out[nb] = p
	}
	return out
}

func (d *turpinCoan) Snapshot() string {
	innerSnap := "pre"
	if d.inner != nil {
		innerSnap = d.inner.Snapshot()
	}
	return fmt.Sprintf("tc(in=%s,y=%s,alt=%s/%v,dec=%v:%s)|%s",
		d.input, d.y, d.alt, d.altOK, d.decided, d.decision, innerSnap)
}

func (d *turpinCoan) Output() (sim.Decision, bool) {
	if !d.decided {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: d.decision}, true
}
