// Package lint is flm's repo-specific static-analysis suite. It
// machine-checks the invariants every result in this reproduction rests
// on but the compiler cannot see:
//
//   - flmdeterminism: the engine packages produce byte-identical output
//     at any FLM_WORKERS — no wall clock, no global rand source, no map
//     iteration order reaching an encoded output. Determinism is what
//     makes the FLM85 splice argument checkable: a replayed scenario
//     must be THE run, not a run.
//   - flmfingerprint: every sim.Fingerprinter folds all of its
//     behavior-affecting constructor state into its fingerprint. A
//     missed field is a wrong cache hit — silent result corruption.
//   - flmobscost: internal/obs call sites build attributes only behind
//     an obs.Enabled() (or nil-span) guard, preserving the zero-alloc
//     disabled path BenchmarkObsDisabled pins.
//   - flmalias: Device Step/Tick implementations do not retain
//     executor-owned buffers (inbox maps/slices, arena-backed *big.Rat
//     scratch) in struct fields or package state.
//
// The suite runs as a `go vet -vettool` binary (cmd/flmlint, wired into
// `make lint`) and deliberately depends only on the standard library:
// the framework below is a minimal go/analysis-alike so the module
// stays dependency-free.
//
// A finding that is a deliberate, justified exception is silenced with
//
//	//flmlint:allow <analyzer> <reason>
//
// on the flagged line, on the line directly above it, or in the doc
// comment of the enclosing declaration (which silences the whole
// declaration). The reason is mandatory; a directive without one, or
// naming an unknown analyzer, is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	unit *unit
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.unit.allowed(p.Analyzer.Name, position) {
		return
	}
	p.unit.diags = append(p.unit.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. The analyzers
// check production invariants; test scaffolding (fake devices, timeout
// plumbing) plays by different rules and is skipped wholesale.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Fingerprint, ObsCost, Alias}
}

// analyzerNames is the directive vocabulary.
func analyzerNames() map[string]bool {
	m := make(map[string]bool)
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}

// unit is the shared per-package state: the allow-directive index and
// the accumulated diagnostics of every analyzer that ran.
type unit struct {
	fset *token.FileSet
	// allow maps filename -> analyzer -> set of covered lines.
	allow map[string]map[string]map[int]bool
	diags []Diagnostic
}

func (u *unit) allowed(analyzer string, pos token.Position) bool {
	return u.allow[pos.Filename][analyzer][pos.Line]
}

const directivePrefix = "//flmlint:allow"

// indexDirectives builds the allow index for one file and validates
// directive syntax. A directive covers its own line and the next line;
// a directive inside a declaration's doc comment covers the whole
// declaration (struct fields included, so a field-level doc comment
// silences exactly that field).
func (u *unit) indexDirectives(file *ast.File, known map[string]bool) {
	cover := func(analyzer string, from, to int, filename string) {
		byAnalyzer := u.allow[filename]
		if byAnalyzer == nil {
			byAnalyzer = make(map[string]map[int]bool)
			u.allow[filename] = byAnalyzer
		}
		lines := byAnalyzer[analyzer]
		if lines == nil {
			lines = make(map[int]bool)
			byAnalyzer[analyzer] = lines
		}
		for l := from; l <= to; l++ {
			lines[l] = true
		}
	}

	// parse validates one directive comment and returns the analyzer it
	// silences ("" if the comment is not a directive or is malformed;
	// malformed ones are reported as findings so typos cannot silently
	// disable a check).
	parse := func(c *ast.Comment) string {
		if !strings.HasPrefix(c.Text, directivePrefix) {
			return ""
		}
		pos := u.fset.Position(c.Pos())
		rest := strings.TrimPrefix(c.Text, directivePrefix)
		fields := strings.Fields(rest)
		if len(fields) == 0 || !known[fields[0]] {
			u.diags = append(u.diags, Diagnostic{
				Analyzer: "flmlint",
				Pos:      pos,
				Message:  fmt.Sprintf("malformed flmlint directive %q: want //flmlint:allow <analyzer> <reason>, analyzers are %s", c.Text, knownList(known)),
			})
			return ""
		}
		if len(fields) < 2 {
			u.diags = append(u.diags, Diagnostic{
				Analyzer: "flmlint",
				Pos:      pos,
				Message:  fmt.Sprintf("flmlint directive for %s is missing its reason: the justification is part of the contract", fields[0]),
			})
			return ""
		}
		return fields[0]
	}

	// Directives in doc comments cover the whole documented node.
	docRange := map[*ast.CommentGroup][2]token.Pos{}
	ast.Inspect(file, func(n ast.Node) bool {
		var doc *ast.CommentGroup
		switch n := n.(type) {
		case *ast.FuncDecl:
			doc = n.Doc
		case *ast.GenDecl:
			doc = n.Doc
		case *ast.TypeSpec:
			doc = n.Doc
		case *ast.ValueSpec:
			doc = n.Doc
		case *ast.Field:
			doc = n.Doc
		}
		if doc != nil {
			if _, seen := docRange[doc]; !seen {
				docRange[doc] = [2]token.Pos{n.Pos(), n.End()}
			}
		}
		return true
	})

	for _, cg := range file.Comments {
		for _, c := range cg.List {
			analyzer := parse(c)
			if analyzer == "" {
				continue
			}
			pos := u.fset.Position(c.Pos())
			if r, ok := docRange[cg]; ok {
				cover(analyzer, u.fset.Position(r[0]).Line, u.fset.Position(r[1]).Line, pos.Filename)
				continue
			}
			cover(analyzer, pos.Line, pos.Line+1, pos.Filename)
		}
	}
}

func knownList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// RunAnalyzers type-checks nothing — it runs the given analyzers over an
// already-checked package and returns the surviving diagnostics sorted
// by position. Directive validation runs exactly once per package.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	u := &unit{fset: fset, allow: make(map[string]map[string]map[int]bool)}
	known := analyzerNames()
	for _, f := range files {
		u.indexDirectives(f, known)
	}
	for _, a := range analyzers {
		a.Run(&Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			unit:      u,
		})
	}
	sort.Slice(u.diags, func(i, j int) bool {
		a, b := u.diags[i].Pos, u.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return u.diags[i].Analyzer < u.diags[j].Analyzer
	})
	return u.diags
}

// NewInfo returns a types.Info with every map the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// CheckFiles parses and type-checks one package from source.
func CheckFiles(fset *token.FileSet, path string, filenames []string, imp types.Importer, goVersion string) ([]*ast.File, *types.Package, *types.Info, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error:     func(error) {}, // collect everything; first error is returned
	}
	pkg, err := conf.Check(path, fset, files, info)
	return files, pkg, info, err
}

// SourceImporter returns an importer that type-checks dependencies from
// source via go/build (used by the standalone driver's fallback and the
// fixture loader for standard-library imports).
func SourceImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}
