// Clock farm: three machines with drifting hardware clocks (one running
// up to 1.5x faster than real time) want their logical clocks closer
// together than the drift allows. FLM85 Theorem 8 says that with a
// possible Byzantine fault among three nodes, nothing beats the trivial
// no-communication strategy "run your logical clock at the lower
// envelope" — and this program watches the engine defeat two smarter
// strategies on the scaled ring covering.
package main

import (
	"fmt"
	"log"
	"math/big"

	"flm"
)

func main() {
	params := flm.SyncParams{
		P:      flm.RatIdentity(),                // slow clock law: p(t) = t
		Q:      flm.NewRatClock(3, 2, 0, 1),      // fast clock law: q(t) = 1.5t
		L:      flm.LinearClock{Rate: 1},         // lower envelope l(t) = t
		U:      flm.LinearClock{Rate: 1, Off: 4}, // upper envelope u(t) = t + 4
		Alpha:  1.5,                              // claimed improvement over trivial sync
		TPrime: big.NewRat(4, 1),
		Delta:  big.NewRat(1, 2),
	}
	fmt.Printf("clock laws: p(t)=t (slow), q(t)=1.5t (fast); envelopes [t, t+4]\n")
	fmt.Printf("the trivial device C = l(D) synchronizes to l(q(t))-l(p(t)) = 0.5t:\n")
	for _, tv := range []float64{4, 8, 16} {
		fmt.Printf("  at t=%2.0f the trivial gap is %.2f\n", tv, params.TrivialGap(tv))
	}
	fmt.Printf("\nclaim under test: some devices synchronize %.1f closer than trivial, forever.\n", params.Alpha)

	devices := []struct {
		name    string
		builder flm.SyncBuilder
	}{
		{"trivial lower-envelope", flm.NewTrivialClock(params.L)},
		{"chase-the-fastest", flm.NewChaseClock(params.L)},
		{"midpoint averaging", flm.NewMidpointClock(params.L)},
	}
	for _, d := range devices {
		builders := map[string]flm.SyncBuilder{"a": d.builder, "b": d.builder, "c": d.builder}
		res, err := flm.ProveClockSync(params, builders)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s ---\n", d.name)
		fmt.Printf("ring of %d machines, clocks q·h⁻ⁱ (each node fast vs one neighbor, slow vs the other)\n", res.K+2)
		fmt.Printf("logical clocks at t'' = h^%d(t') = %s:\n", res.K, res.TSecond.RatString())
		for i, c := range res.Logical {
			fmt.Printf("  machine %d: C = %10.4f\n", i, c)
		}
		fmt.Printf("violated conditions (%d):\n", len(res.Violations))
		for i, v := range res.Violations {
			if i == 3 {
				fmt.Printf("  ... and %d more\n", len(res.Violations)-3)
				break
			}
			fmt.Printf("  %s\n", v)
		}
	}

	// Corollary 15: even logarithmic logical clocks cannot beat log2(r).
	c15 := flm.Corollary15(4, 1, 2.5, big.NewRat(8, 1))
	fmt.Printf("\nCorollary 15 (l = log2, q = 4t): the best constant is log2(4) = %.0f\n", c15.TrivialGap(100))
	res, err := flm.ProveClockSync(c15, map[string]flm.SyncBuilder{
		"a": flm.NewTrivialClock(c15.L), "b": flm.NewTrivialClock(c15.L), "c": flm.NewTrivialClock(c15.L),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claiming %.1f closer is defeated with %d violations (first: %s)\n",
		c15.Alpha, len(res.Violations), res.Violations[0])
}
