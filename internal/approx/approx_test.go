package approx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"flm/internal/adversary"
	"flm/internal/graph"
	"flm/internal/sim"
)

func runApprox(t *testing.T, g *graph.Graph, honest sim.Builder, inputs map[string]float64,
	faulty map[string]sim.Builder, rounds int) (*sim.Run, []string) {
	t.Helper()
	p := sim.Protocol{Builders: map[string]sim.Builder{}, Inputs: map[string]sim.Input{}}
	var correct []string
	for _, name := range g.Names() {
		p.Inputs[name] = sim.RealInput(inputs[name])
		if fb, bad := faulty[name]; bad {
			p.Builders[name] = fb
		} else {
			p.Builders[name] = honest
			correct = append(correct, name)
		}
	}
	sys, err := sim.NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Execute(sys, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return run, correct
}

func TestReduceWithinTrimmedRange(t *testing.T) {
	prop := func(raw []float64, fRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		f := int(fRaw) % 3
		if len(vals) <= 2*f {
			return true // degenerate fallback tested separately
		}
		got := Reduce(vals, f)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		lo, hi := sorted[f], sorted[len(sorted)-1-f]
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReduceDegenerate(t *testing.T) {
	// len <= 2f: falls back to the median.
	if got := Reduce([]float64{1, 3}, 1); got != 2 {
		t.Errorf("Reduce degenerate = %v, want 2", got)
	}
	if got := Reduce([]float64{5}, 2); got != 5 {
		t.Errorf("Reduce degenerate = %v, want 5", got)
	}
}

func TestReduceZeroFaults(t *testing.T) {
	// f=0: plain mean.
	if got := Reduce([]float64{1, 2, 3, 6}, 0); got != 3 {
		t.Errorf("Reduce f=0 = %v, want 3", got)
	}
}

func TestMedianDeviceFaultFreeTriangle(t *testing.T) {
	g := graph.Triangle()
	run, correct := runApprox(t, g, NewMedian(1),
		map[string]float64{"a": 0, "b": 0.4, "c": 1}, nil, 3)
	rep := CheckSimple(run, correct)
	if !rep.OK() {
		t.Errorf("fault-free median failed: %v", rep.Err())
	}
	// All three see the same multiset, so all choose the median 0.4.
	for _, name := range correct {
		d, _ := run.DecisionOf(name)
		if v, _ := sim.DecodeReal(d.Value); v != 0.4 {
			t.Errorf("%s chose %v, want 0.4", name, v)
		}
	}
}

func TestDLPSWFaultFreeContraction(t *testing.T) {
	g := graph.Complete(4)
	inputs := map[string]float64{"p0": 0, "p1": 1, "p2": 0.25, "p3": 0.75}
	for _, rounds := range []int{1, 2, 4, 8} {
		run, correct := runApprox(t, g, NewDLPSW(1, g.Names(), rounds), inputs, nil, DLPSWRounds(rounds))
		outs, err := Outputs(run, correct)
		if err != nil {
			t.Fatal(err)
		}
		want := 1.0 / math.Pow(2, float64(rounds))
		if s := spread(outs); s > want+1e-12 {
			t.Errorf("rounds=%d: spread %v exceeds guaranteed %v", rounds, s, want)
		}
	}
}

func TestDLPSWOneFaultPanel(t *testing.T) {
	g := graph.Complete(4) // n = 3f+1 with f=1
	inputs := map[string]float64{"p0": 0, "p1": 0.2, "p2": 0.9, "p3": 1}
	honest := NewDLPSW(1, g.Names(), 8)
	noiseReals := adversary.Noise(3, "0", "1", "0.5", "100", "-100", "zzz")
	strategies := append(adversary.Panel(9), adversary.Strategy{
		Name:    "real-noise",
		Corrupt: func(inner sim.Builder) sim.Builder { return noiseReals },
	})
	for _, badNode := range g.Names() {
		for _, strat := range strategies {
			run, correct := runApprox(t, g, honest, inputs,
				map[string]sim.Builder{badNode: strat.Corrupt(honest)}, DLPSWRounds(8))
			rep := CheckEDG(run, correct, 0.01, 0)
			if !rep.OK() {
				t.Errorf("bad=%s strat=%s: %v", badNode, strat.Name, rep.Err())
			}
			// Validity of the simple problem too: outputs within the
			// correct input range.
			if simple := CheckSimple(run, correct); simple.Validity != nil {
				t.Errorf("bad=%s strat=%s: %v", badNode, strat.Name, simple.Validity)
			}
		}
	}
}

func TestDLPSWTwoFaults(t *testing.T) {
	g := graph.Complete(7) // n = 3f+1 with f=2
	inputs := map[string]float64{}
	for i, name := range g.Names() {
		inputs[name] = float64(i) / 6
	}
	honest := NewDLPSW(2, g.Names(), 10)
	strategies := adversary.Panel(21)
	for si, s1 := range strategies {
		s2 := strategies[(si+1)%len(strategies)]
		run, correct := runApprox(t, g, honest, inputs, map[string]sim.Builder{
			"p2": s1.Corrupt(honest),
			"p6": s2.Corrupt(honest),
		}, DLPSWRounds(10))
		rep := CheckEDG(run, correct, 0.01, 0)
		if !rep.OK() {
			t.Errorf("strats=%s/%s: %v", s1.Name, s2.Name, rep.Err())
		}
	}
}

func TestRoundsFor(t *testing.T) {
	tests := []struct {
		delta, eps float64
		want       int
	}{
		{1, 1, 1},
		{1, 0.5, 2},
		{1, 0.25, 3},
		{1, 0.1, 5},
		{0.05, 0.1, 1},
	}
	for _, tt := range tests {
		if got := RoundsFor(tt.delta, tt.eps); got != tt.want {
			t.Errorf("RoundsFor(%v,%v) = %d, want %d", tt.delta, tt.eps, got, tt.want)
		}
	}
}

func TestCheckSimpleViolations(t *testing.T) {
	g := graph.Triangle()
	// Deciding at round 0 means deciding on one's own value: outputs as
	// far apart as inputs -> agreement violated, validity fine.
	run, correct := runApprox(t, g, NewMedian(0),
		map[string]float64{"a": 0, "b": 0.5, "c": 1}, nil, 2)
	rep := CheckSimple(run, correct)
	if rep.Agreement == nil {
		t.Error("deciding on own value passed the strict-contraction condition")
	}
	if rep.Validity != nil {
		t.Errorf("own-value decision left the input range: %v", rep.Validity)
	}
}

func TestCheckEDGViolations(t *testing.T) {
	g := graph.Triangle()
	run, correct := runApprox(t, g, NewMedian(0),
		map[string]float64{"a": 0, "b": 0.5, "c": 1}, nil, 2)
	rep := CheckEDG(run, correct, 0.25, 0.1)
	if rep.Agreement == nil {
		t.Error("spread-1 outputs passed eps=0.25")
	}
	// gamma validity: outputs are the inputs themselves, inside range.
	if rep.Validity != nil {
		t.Errorf("unexpected validity violation: %v", rep.Validity)
	}
}

func TestOutputsErrors(t *testing.T) {
	g := graph.Triangle()
	run, correct := runApprox(t, g, NewMedian(100), // never decides
		map[string]float64{"a": 0, "b": 0, "c": 0}, nil, 2)
	if _, err := Outputs(run, correct); err == nil {
		t.Error("undecided node accepted")
	}
	rep := CheckSimple(run, correct)
	if rep.Termination == nil {
		t.Error("undecided run passed termination")
	}
}

func TestInputRange(t *testing.T) {
	g := graph.Triangle()
	run, correct := runApprox(t, g, NewMedian(1),
		map[string]float64{"a": -2, "b": 7, "c": 3}, nil, 3)
	lo, hi, err := InputRange(run, correct)
	if err != nil || lo != -2 || hi != 7 {
		t.Errorf("InputRange = %v,%v,%v", lo, hi, err)
	}
}
