package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"flm/internal/graph"
	"flm/internal/sim"
)

// Theorem 1 quantifies over ALL devices. These tests approximate the
// universal quantifier by drawing random deterministic devices — the
// decision and even the message traffic are seeded hash functions of the
// full local transcript — and asserting the engine defeats every single
// one. A bug in the splice machinery would eventually let some oddball
// device slip through.

// tableDevice is a random deterministic device: each round it sends a
// seeded digest of everything it has seen, and at decideRound it decides
// a seeded hash bit of its transcript.
type tableDevice struct {
	self        string
	nbs         []string
	input       string
	seed        uint64
	transcript  []string
	decideRound int
	chatty      bool // whether messages depend on the transcript
	decided     bool
	decision    string
}

var _ sim.Device = (*tableDevice)(nil)

func newTableDevice(seed uint64, decideRound int, chatty bool) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &tableDevice{seed: seed, decideRound: decideRound, chatty: chatty}
		d.Init(self, neighbors, input)
		return d
	}
}

func (d *tableDevice) Init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.nbs = append([]string(nil), neighbors...)
	sort.Strings(d.nbs)
	d.input = string(input)
	d.transcript = []string{"in:" + d.input}
}

func (d *tableDevice) hash(parts ...string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|", d.seed)
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func (d *tableDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	senders := make([]string, 0, len(inbox))
	for s := range inbox {
		senders = append(senders, s)
	}
	sort.Strings(senders)
	for _, s := range senders {
		d.transcript = append(d.transcript, fmt.Sprintf("r%d:%s:%s", round, s, inbox[s]))
	}
	if !d.decided && round >= d.decideRound {
		d.decided = true
		// The decision is a hash bit of the transcript — except that a
		// device with any shot at validity must decide its own input
		// when it never heard disagreement; mix that in to keep the
		// device family "plausible" rather than trivially invalid.
		if d.sawOnly(d.input) {
			d.decision = d.input
		} else {
			d.decision = fmt.Sprint(d.hash(d.transcript...) % 2)
		}
	}
	out := sim.Outbox{}
	for _, nb := range d.nbs {
		if d.chatty {
			out[nb] = sim.Payload(fmt.Sprintf("%x", d.hash(append([]string{nb}, d.transcript...)...)))
		} else {
			out[nb] = sim.Payload(d.input)
		}
	}
	return out
}

// sawOnly reports whether every payload fragment mentioning a value
// matched v (an approximation of "no disagreement observed").
func (d *tableDevice) sawOnly(v string) bool {
	for _, entry := range d.transcript[1:] {
		if !strings.HasSuffix(entry, ":"+v) && !d.chatty {
			return false
		}
		if d.chatty {
			return false // chatty devices never get the validity shortcut
		}
	}
	return true
}

func (d *tableDevice) Snapshot() string {
	return fmt.Sprintf("table(%d,dec=%v:%s)|%s", d.seed, d.decided, d.decision, strings.Join(d.transcript, "~"))
}

func (d *tableDevice) Output() (sim.Decision, bool) {
	if !d.decided {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: d.decision}, true
}

// Every random quiet device (echoing its input, hash decision) is
// defeated on the triangle.
func TestUniversalQuietDevicesDefeated(t *testing.T) {
	g := graph.Triangle()
	prop := func(seed uint64, roundRaw uint8) bool {
		decideRound := 1 + int(roundRaw)%3
		builder := newTableDevice(seed, decideRound, false)
		cr, err := ByzantineTriangle(uniformBuilders(g, builder),
			fmt.Sprintf("table-%d", seed), decideRound+3)
		return err == nil && cr.Contradicted()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Every random chatty device (hash-of-transcript traffic, per-neighbor
// distinct payloads) is defeated too — the splice machinery handles
// arbitrary message content.
func TestUniversalChattyDevicesDefeated(t *testing.T) {
	g := graph.Triangle()
	prop := func(seed uint64, roundRaw uint8) bool {
		decideRound := 1 + int(roundRaw)%3
		builder := newTableDevice(seed, decideRound, true)
		cr, err := ByzantineTriangle(uniformBuilders(g, builder),
			fmt.Sprintf("chatty-%d", seed), decideRound+3)
		return err == nil && cr.Contradicted()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Heterogeneous assignments: a different random device at each triangle
// node. Theorem 1's devices A, B, C need not be identical.
func TestUniversalHeterogeneousDevicesDefeated(t *testing.T) {
	prop := func(s1, s2, s3 uint64) bool {
		builders := map[string]sim.Builder{
			"a": newTableDevice(s1, 2, s1%2 == 0),
			"b": newTableDevice(s2, 1+int(s2%3), s2%2 == 0),
			"c": newTableDevice(s3, 2, s3%2 == 0),
		}
		cr, err := ByzantineTriangle(builders, "hetero", 8)
		return err == nil && cr.Contradicted()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// The same sweep on the diamond's connectivity argument.
func TestUniversalDevicesDefeatedOnDiamond(t *testing.T) {
	g := graph.Diamond()
	prop := func(seed uint64) bool {
		builder := newTableDevice(seed, 2, seed%2 == 0)
		cr, err := ByzantineDiamond(uniformBuilders(g, builder),
			fmt.Sprintf("table-%d", seed), 8)
		return err == nil && cr.Contradicted()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// And on the simple approximate agreement hexagon, with real-valued
// decisions derived from the hash.
func TestUniversalDevicesDefeatedOnApprox(t *testing.T) {
	g := graph.Triangle()
	prop := func(seed uint64) bool {
		builder := func(self string, neighbors []string, input sim.Input) sim.Device {
			d := &tableDevice{seed: seed, decideRound: 2, chatty: false}
			d.Init(self, neighbors, input)
			return d
		}
		cr, err := SimpleApproxTriangle(uniformBuilders(g, builder),
			fmt.Sprintf("table-%d", seed), 8)
		if err != nil {
			// Non-numeric decisions are termination violations inside the
			// chain, not engine errors; any error here is a real bug.
			return false
		}
		return cr.Contradicted()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
