package timedsim

import "math/big"

// ratArena is a per-execution slab allocator for the big.Rat values that
// escape into a Run (tick times, hardware readings, message send
// stamps). The event loop creates a handful of rationals per event; a
// fresh new(big.Rat) for each is one heap object per value, while the
// arena hands out slots from chunked slabs so the allocator cost is paid
// once per chunk. Escaping pointers keep their chunk alive, so the arena
// itself retains nothing: the values live exactly as long as the Run
// they were recorded into.
//
// Arena values are handed out zero (big.Rat's zero value is 0/1) and
// must be fully set by the caller before they escape. An arena is bound
// to a single Execute call and is not safe for concurrent use.
type ratArena struct {
	cur  []big.Rat
	used int
}

const ratArenaChunk = 256

// next returns a fresh zero-valued *big.Rat from the arena.
func (a *ratArena) next() *big.Rat {
	if a.used == len(a.cur) {
		a.cur = make([]big.Rat, ratArenaChunk)
		a.used = 0
	}
	r := &a.cur[a.used]
	a.used++
	return r
}
