# Verification gates (see ROADMAP.md).
#
# verify       tier-1: build + full test suite
# verify-race  extended: vet + race-enabled tests; FLM_WORKERS forces the
#              parallel sweep path so the race detector sees real
#              concurrency even on single-core runners
# bench        refresh the BENCH_<date>.json perf snapshot
# bench-smoke  quick bench (1 run/entry) diffed against the committed
#              baseline, report-only — the CI perf canary
# chaos        the CI smoke run: randomized adversaries, pinned seed

GO ?= go
RACE_WORKERS ?= 4
CHAOS_SEED ?= 1
CHAOS_TRIALS ?= 64
BENCH_BASELINE ?= BENCH_2026-08-06-runcache.json

.PHONY: verify verify-race bench bench-smoke chaos

verify:
	$(GO) build ./...
	$(GO) test ./...

verify-race: verify
	$(GO) vet ./...
	FLM_WORKERS=$(RACE_WORKERS) $(GO) test -race ./...

bench:
	$(GO) run ./cmd/flm bench

bench-smoke:
	$(GO) run ./cmd/flm bench -runs 1 -o /tmp/flm-bench-smoke.json -compare $(BENCH_BASELINE)

chaos:
	$(GO) run ./cmd/flm chaos -seed $(CHAOS_SEED) -trials $(CHAOS_TRIALS)
