package graph

import (
	"fmt"
	"sort"
)

// Cover is a graph covering: a graph S together with a map Phi from
// nodes(S) onto nodes(G) that preserves neighborhoods — Phi restricted to
// the neighbors of any S-node is a bijection onto the neighbors of its
// image. Under such a map S "looks locally like" G, which is exactly what
// the FLM85 proofs exploit: devices installed on S per Phi cannot tell the
// two systems apart.
type Cover struct {
	S   *Graph
	G   *Graph
	Phi []int // Phi[s] = image of S-node s in G
}

// Verify checks the covering property and returns a descriptive error on
// the first violation.
func (c *Cover) Verify() error {
	if len(c.Phi) != c.S.N() {
		return fmt.Errorf("cover: phi has %d entries for %d S-nodes", len(c.Phi), c.S.N())
	}
	for s := 0; s < c.S.N(); s++ {
		img := c.Phi[s]
		if img < 0 || img >= c.G.N() {
			return fmt.Errorf("cover: phi(%s) = %d out of range", c.S.Name(s), img)
		}
		want := c.G.Neighbors(img)
		got := make([]int, 0, c.S.Degree(s))
		for _, nb := range c.S.Neighbors(s) {
			got = append(got, c.Phi[nb])
		}
		sort.Ints(got)
		if len(got) != len(want) {
			return fmt.Errorf("cover: %s has degree %d but phi image %s has degree %d",
				c.S.Name(s), len(got), c.G.Name(img), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("cover: neighbors of %s map to %v, want neighbors of %s = %v",
					c.S.Name(s), got, c.G.Name(img), want)
			}
		}
		// Bijectivity: sorted equality plus no duplicates.
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				return fmt.Errorf("cover: two neighbors of %s map to the same node %s",
					c.S.Name(s), c.G.Name(got[i]))
			}
		}
	}
	return nil
}

// EdgePreimage returns, for the S-node s and a G-edge (gFrom -> phi(s)),
// the unique S-node whose edge into s maps onto it. It panics if the
// covering property does not supply one; call Verify first.
func (c *Cover) EdgePreimage(s, gFrom int) int {
	for _, nb := range c.S.Neighbors(s) {
		if c.Phi[nb] == gFrom {
			return nb
		}
	}
	panic(fmt.Sprintf("cover: no neighbor of %s maps to %s", c.S.Name(s), c.G.Name(gFrom)))
}

// Fiber returns the S-nodes mapping onto G-node g, sorted.
func (c *Cover) Fiber(g int) []int {
	var fiber []int
	for s, img := range c.Phi {
		if img == g {
			fiber = append(fiber, s)
		}
	}
	return fiber
}

// InducedIsomorphic reports whether Phi restricted to the S-node subset U
// is injective and an isomorphism between the induced subgraphs S_U and
// G_Phi(U). This is the precondition for splicing the scenario of U into a
// behavior of G (the paper's Locality-axiom step).
func (c *Cover) InducedIsomorphic(u []int) error {
	seen := make(map[int]int, len(u))
	for _, s := range u {
		if prev, dup := seen[c.Phi[s]]; dup {
			return fmt.Errorf("cover: %s and %s both map to %s",
				c.S.Name(prev), c.S.Name(s), c.G.Name(c.Phi[s]))
		}
		seen[c.Phi[s]] = s
	}
	for i, s1 := range u {
		for _, s2 := range u[i+1:] {
			sEdge := c.S.HasEdge(s1, s2)
			gEdge := c.G.HasEdge(c.Phi[s1], c.Phi[s2])
			if sEdge != gEdge {
				return fmt.Errorf("cover: edge {%s,%s}=%v but image edge {%s,%s}=%v",
					c.S.Name(s1), c.S.Name(s2), sEdge,
					c.G.Name(c.Phi[s1]), c.G.Name(c.Phi[s2]), gEdge)
			}
		}
	}
	return nil
}

// RingCoverTriangle returns the m-node ring covering of the triangle
// graph used in Sections 4-7 of the paper: ring node i maps to triangle
// node i mod 3. m must be a positive multiple of 3 (m >= 3); the paper
// uses m = 4k (weak agreement, firing squad) and m = k+2 (approximate
// agreement, clock synchronization), both chosen divisible by 3.
func RingCoverTriangle(m int) *Cover {
	if m < 3 || m%3 != 0 {
		panic(fmt.Sprintf("graph: ring cover of triangle needs a multiple of 3, got %d", m))
	}
	var s *Graph
	if m == 3 {
		// The 3-ring *is* the triangle (trivial cover).
		s = Triangle()
	} else {
		s = Ring(m)
	}
	phi := make([]int, m)
	for i := range phi {
		phi[i] = i % 3
	}
	return &Cover{S: s, G: Triangle(), Phi: phi}
}

// HexCover returns the six-node covering of the triangle from Section 3.1
// (nodes u,v,w,x,y,z arranged in a ring, mapping a,b,c,a,b,c).
func HexCover() *Cover { return RingCoverTriangle(6) }

// CyclicCover builds the m-copy cyclic covering of g: m copies of g
// arranged in a ring, where each edge {u,v} with cross(u,v) true becomes
// the family of edges u.i -- v.(i+1 mod m), and every other edge stays
// within its copy. The result is always a valid covering with Phi
// collapsing the copies: every S-node's neighbors map bijectively onto
// its image's neighbors, with the crossed ones found in the adjacent
// copies. m = 2 gives the paper's double covers (Section 3); larger m
// gives the ring-of-copies coverings that extend the weak agreement and
// firing squad arguments to the connectivity bound. S-node names are the
// G-names suffixed with ".0" .. ".(m-1)".
//
// The crossing predicate is directional for m > 2: cross(u,v) sends u's
// edge forward (to copy i+1) and v's backward. With m = 2 forward and
// backward coincide.
func CyclicCover(g *Graph, cross func(u, v int) bool, m int) *Cover {
	if m < 2 {
		panic(fmt.Sprintf("graph: cyclic cover needs at least 2 copies, got %d", m))
	}
	n := g.N()
	names := make([]string, 0, m*n)
	for copyID := 0; copyID < m; copyID++ {
		for u := 0; u < n; u++ {
			names = append(names, fmt.Sprintf("%s.%d", g.Name(u), copyID))
		}
	}
	s := MustNew(names...)
	phi := make([]int, m*n)
	for i := range phi {
		phi[i] = i % n
	}
	at := func(u, copyID int) int { return ((copyID%m)+m)%m*n + u }
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v < u {
				continue
			}
			crossed := cross(u, v)
			crossedRev := cross(v, u)
			for c := 0; c < m; c++ {
				switch {
				case crossed:
					s.MustAddEdge(at(u, c), at(v, c+1))
				case crossedRev:
					s.MustAddEdge(at(v, c), at(u, c+1))
				default:
					s.MustAddEdge(at(u, c), at(v, c))
				}
			}
		}
	}
	return &Cover{S: s, G: g, Phi: phi}
}

// TwoCopyCover builds the generic double covering of g used for both
// general lower bounds in the paper: CyclicCover with two copies.
func TwoCopyCover(g *Graph, cross func(u, v int) bool) *Cover {
	return CyclicCover(g, cross, 2)
}

// PartitionCover builds the covering for the general n <= 3f node bound
// (Section 3.1): the nodes of g are partitioned into three non-empty
// blocks a, b, c (each of size <= f in the proof), and the edges between
// the a-block and the c-block are crossed between the two copies. The
// resulting hexagon-of-blocks u,v,w,x,y,z structure is exactly the
// paper's figure.
func PartitionCover(g *Graph, a, b, c []int) (*Cover, error) {
	block := make([]int, g.N())
	for i := range block {
		block[i] = -1
	}
	assign := func(nodes []int, id int) error {
		if len(nodes) == 0 {
			return fmt.Errorf("graph: partition block %d is empty", id)
		}
		for _, u := range nodes {
			if u < 0 || u >= g.N() {
				return fmt.Errorf("graph: partition node %d out of range", u)
			}
			if block[u] != -1 {
				return fmt.Errorf("graph: node %s in two partition blocks", g.Name(u))
			}
			block[u] = id
		}
		return nil
	}
	if err := assign(a, 0); err != nil {
		return nil, err
	}
	if err := assign(b, 1); err != nil {
		return nil, err
	}
	if err := assign(c, 2); err != nil {
		return nil, err
	}
	for u, id := range block {
		if id == -1 {
			return nil, fmt.Errorf("graph: node %s not covered by the partition", g.Name(u))
		}
	}
	cover := TwoCopyCover(g, func(u, v int) bool {
		return block[u] == 0 && block[v] == 2
	})
	return cover, nil
}

// CutCover builds the covering for the general connectivity bound
// (Section 3.2): b and d are disjoint node sets (each of size <= f in the
// proof) whose removal disconnects u from v; the edges between the
// component of u in G-(b∪d) (the "a" set) and the d set are crossed
// between the two copies, generalizing the paper's eight-node ring.
func CutCover(g *Graph, b, d []int, u, v int) (*Cover, error) {
	return CyclicCutCover(g, b, d, u, v, 2)
}

// CyclicCutCover builds the m-copy ring-of-copies covering for the
// connectivity bounds of the timed problems (weak agreement and the
// firing squad, Section 4-5 "the connectivity bound follows as for
// Byzantine agreement"): like CutCover, but with m copies arranged
// cyclically, so the chain of spliced scenarios can be long enough for
// the Bounded-Delay argument. Removing the b- and d-copies partitions the
// ring into 2m arcs whose middles are many copy-crossings away from
// opposite inputs.
func CyclicCutCover(g *Graph, b, d []int, u, v, m int) (*Cover, error) {
	inA, _, err := validateCut(g, b, d, u, v)
	if err != nil {
		return nil, err
	}
	inD := make(map[int]bool, len(d))
	for _, x := range d {
		inD[x] = true
	}
	cover := CyclicCover(g, func(x, y int) bool {
		return inA[x] && inD[y]
	}, m)
	return cover, nil
}

// validateCut checks the (b, d, u, v) cut arguments shared by CutCover
// and CyclicCutCover, returning membership maps for the component of u
// (the "a" set) and the removed set.
func validateCut(g *Graph, b, d []int, u, v int) (inA, removed map[int]bool, err error) {
	removed = make(map[int]bool, len(b)+len(d))
	for _, x := range b {
		if removed[x] {
			return nil, nil, fmt.Errorf("graph: duplicate cut node %s", g.Name(x))
		}
		removed[x] = true
	}
	for _, x := range d {
		if removed[x] {
			return nil, nil, fmt.Errorf("graph: cut sets b and d overlap at %s", g.Name(x))
		}
		removed[x] = true
	}
	if removed[u] || removed[v] {
		return nil, nil, fmt.Errorf("graph: separated nodes must lie outside the cut")
	}
	inA = make(map[int]bool, g.N())
	stack := []int{u}
	inA[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range g.Neighbors(x) {
			if !removed[y] && !inA[y] {
				inA[y] = true
				stack = append(stack, y)
			}
		}
	}
	if inA[v] {
		return nil, nil, fmt.Errorf("graph: removing b ∪ d does not separate %s from %s",
			g.Name(u), g.Name(v))
	}
	return inA, removed, nil
}

// DiamondCover returns the eight-node covering of the Diamond graph from
// Section 3.2 (two copies with the a-d edges crossed), whose S is the
// 8-cycle a.0-b.0-c.0-d.0-a.1-b.1-c.1-d.1.
func DiamondCover() *Cover {
	g := Diamond()
	cover, err := CutCover(g, []int{1}, []int{3}, 0, 2) // b={b}, d={d}, separate a from c
	if err != nil {
		panic(err)
	}
	return cover
}
