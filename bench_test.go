package flm

// One benchmark per experiment (E1-E20) plus micro-benchmarks and
// ablation benchmarks for the substrates they run on. Run with:
//
//	go test -bench=. -benchmem
//
// The Benchmark{E1..E17} entries execute the exact code that regenerates
// the corresponding EXPERIMENTS.md tables and figures.

import (
	"fmt"
	"math/big"
	"testing"

	"flm/internal/sweep"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := FindExperiment(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1ByzantineNodes(b *testing.B)        { benchExperiment(b, "E1") }
func BenchmarkE2ByzantineConnectivity(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3WeakAgreement(b *testing.B)         { benchExperiment(b, "E3") }
func BenchmarkE4FiringSquad(b *testing.B)           { benchExperiment(b, "E4") }
func BenchmarkE5SimpleApprox(b *testing.B)          { benchExperiment(b, "E5") }
func BenchmarkE6EpsilonDeltaGamma(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7ClockSync(b *testing.B)             { benchExperiment(b, "E7") }
func BenchmarkE8Corollaries(b *testing.B)           { benchExperiment(b, "E8") }
func BenchmarkE9EIGPhaseKing(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10Dolev(b *testing.B)                { benchExperiment(b, "E10") }
func BenchmarkE11ApproxConvergence(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12FSWeakPossible(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13Collapse(b *testing.B)             { benchExperiment(b, "E13") }
func BenchmarkE14Nondeterminism(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15Signatures(b *testing.B)           { benchExperiment(b, "E15") }
func BenchmarkE16DelayAblations(b *testing.B)       { benchExperiment(b, "E16") }
func BenchmarkE17Frontier(b *testing.B)             { benchExperiment(b, "E17") }

// --- substrate micro-benchmarks ---

// EIG message complexity grows as O(n^(f+1)); this bench family exposes
// the wall-clock shape.
func BenchmarkEIG(b *testing.B) {
	for _, c := range []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}} {
		b.Run(fmt.Sprintf("n=%d,f=%d", c.n, c.f), func(b *testing.B) {
			g := Complete(c.n)
			honest := NewEIG(c.f, g.Names())
			inputs := map[string]Input{}
			for i, name := range g.Names() {
				inputs[name] = BoolInput(i%2 == 0)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trial := ByzantineTrial{G: g, Inputs: inputs, Honest: honest, Rounds: EIGRounds(c.f)}
				if _, _, rep, err := trial.Run(); err != nil || !rep.OK() {
					b.Fatalf("rep=%v err=%v", rep, err)
				}
			}
		})
	}
}

// Phase king is polynomial: compare its growth against EIG's.
func BenchmarkPhaseKing(b *testing.B) {
	for _, c := range []struct{ n, f int }{{5, 1}, {9, 2}, {13, 3}} {
		b.Run(fmt.Sprintf("n=%d,f=%d", c.n, c.f), func(b *testing.B) {
			g := Complete(c.n)
			honest := NewPhaseKing(c.f, g.Names())
			inputs := map[string]Input{}
			for i, name := range g.Names() {
				inputs[name] = BoolInput(i%3 == 0)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trial := ByzantineTrial{G: g, Inputs: inputs, Honest: honest, Rounds: PhaseKingRounds(c.f)}
				if _, _, rep, err := trial.Run(); err != nil || !rep.OK() {
					b.Fatalf("rep=%v err=%v", rep, err)
				}
			}
		})
	}
}

func BenchmarkVertexConnectivity(b *testing.B) {
	graphs := map[string]*Graph{
		"K10":              Complete(10),
		"wheel20":          Wheel(20),
		"circulant20(1-3)": Circulant(20, 1, 2, 3),
		"hypercube5":       Hypercube(5),
	}
	for name, g := range graphs {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = g.VertexConnectivity()
			}
		})
	}
}

func BenchmarkDolevRouterSetup(b *testing.B) {
	g := Circulant(12, 1, 2, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewRouter(g, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHexagonChain(b *testing.B) {
	tri := Triangle()
	builders := map[string]Builder{}
	for _, name := range tri.Names() {
		builders[name] = NewMajority(2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cr, err := ProveByzantineTriangle(builders, "majority", 8)
		if err != nil || !cr.Contradicted() {
			b.Fatal(err)
		}
	}
}

func BenchmarkClockRing(b *testing.B) {
	params := SyncParams{
		P:      RatIdentity(),
		Q:      NewRatClock(3, 2, 0, 1),
		L:      LinearClock{Rate: 1},
		U:      LinearClock{Rate: 1, Off: 4},
		Alpha:  1.5,
		TPrime: big.NewRat(4, 1),
		Delta:  big.NewRat(1, 2),
	}
	builders := map[string]SyncBuilder{
		"a": NewChaseClock(params.L), "b": NewChaseClock(params.L), "c": NewChaseClock(params.L),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ProveClockSync(params, builders); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks for the design choices DESIGN.md calls out ---

// Covering size: chain cost grows linearly with the ring size (the
// splice count dominates).
func BenchmarkRingCoverScaling(b *testing.B) {
	tri := Triangle()
	for _, m := range []int{6, 12, 24, 48} {
		b.Run(fmt.Sprintf("ring=%d", m), func(b *testing.B) {
			cover := RingCoverTriangle(m)
			builders := map[string]Builder{}
			for _, name := range tri.Names() {
				builders[name] = NewMajority(2)
			}
			inputs := map[string]Input{}
			for i := 0; i < m; i++ {
				inputs[cover.S.Name(i)] = BoolInput(i >= m/2)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				inst, err := InstallCover(cover, builders, inputs)
				if err != nil {
					b.Fatal(err)
				}
				runS, err := inst.Execute(6)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < m; j++ {
					if _, err := SpliceScenario(inst, runS, []int{j, (j + 1) % m}, builders); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// Signed agreement: the Fault-axiom ablation's cost (registry lookups
// per chain signature).
func BenchmarkSignedDolevStrong(b *testing.B) {
	for _, c := range []struct{ n, f int }{{3, 1}, {5, 2}, {7, 3}} {
		b.Run(fmt.Sprintf("n=%d,f=%d", c.n, c.f), func(b *testing.B) {
			g := Complete(c.n)
			inputs := map[string]Input{}
			for i, name := range g.Names() {
				inputs[name] = BoolInput(i%2 == 0)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reg := NewSigRegistry()
				trial := ByzantineTrial{
					G: g, Inputs: inputs,
					Honest: NewDolevStrong(c.f, g.Names(), reg),
					Rounds: DolevStrongRounds(c.f),
				}
				if _, _, rep, err := trial.Run(); err != nil || !rep.OK() {
					b.Fatalf("rep=%v err=%v", rep, err)
				}
			}
		})
	}
}

// Turpin-Coan: the multivalued reduction adds two rounds over binary EIG.
func BenchmarkTurpinCoan(b *testing.B) {
	for _, c := range []struct{ n, f int }{{4, 1}, {7, 2}} {
		b.Run(fmt.Sprintf("n=%d,f=%d", c.n, c.f), func(b *testing.B) {
			g := Complete(c.n)
			honest := NewTurpinCoan(c.f, g.Names())
			inputs := map[string]Input{}
			vals := []string{"red", "green", "blue"}
			for i, name := range g.Names() {
				inputs[name] = Input(vals[i%3])
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trial := ByzantineTrial{G: g, Inputs: inputs, Honest: honest, Rounds: TurpinCoanRounds(c.f)}
				if _, _, rep, err := trial.Run(); err != nil || !rep.OK() {
					b.Fatalf("rep=%v err=%v", rep, err)
				}
			}
		})
	}
}

// Zero-delay weak consensus (footnote 4): event-queue cost per run.
func BenchmarkZeroDelayWeakConsensus(b *testing.B) {
	g := Complete(6)
	inputs := map[string]string{}
	for i, name := range g.Names() {
		inputs[name] = fmt.Sprint(i % 2)
	}
	strat := func(self string, nbs []string) []ZDMessage {
		var out []ZDMessage
		for i, nb := range nbs {
			out = append(out, ZDMessage{To: nb, Value: fmt.Sprint(i % 2), Arrive: big.NewRat(1, 2)})
		}
		return out
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ZeroDelayRun(g, inputs, map[string]ZDStrategy{"p5": strat}, big.NewRat(0, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// The general Theorem 8 cases: exact-rational timed simulation over
// block rings and copy rings.
func BenchmarkClockRingGeneral(b *testing.B) {
	params := SyncParams{
		P:      RatIdentity(),
		Q:      NewRatClock(3, 2, 0, 1),
		L:      LinearClock{Rate: 1},
		U:      LinearClock{Rate: 1, Off: 4},
		Alpha:  1.5,
		TPrime: big.NewRat(4, 1),
		Delta:  big.NewRat(1, 2),
	}
	b.Run("nodes-K6", func(b *testing.B) {
		g := Complete(6)
		builders := map[string]SyncBuilder{}
		for _, name := range g.Names() {
			builders[name] = NewChaseClock(params.L)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ProveClockSyncNodes(params, g, []int{0, 1}, []int{2, 3}, []int{4, 5}, 2, builders); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("connectivity-diamond", func(b *testing.B) {
		g := Diamond()
		builders := map[string]SyncBuilder{}
		for _, name := range g.Names() {
			builders[name] = NewChaseClock(params.L)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ProveClockSyncConnectivity(params, g, []int{1}, []int{3}, 0, 2, 1, builders); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- sweep engine: sequential vs parallel fan-out ---

// The E17 frontier census is the hottest sweep in the suite (every zoo
// graph x bit patterns x faulty candidates x attack panel). workers=1
// pins the sequential baseline; workers=0 resolves to FLM_WORKERS or
// GOMAXPROCS, so on a multi-core runner the second sub-benchmark shows
// the parallel speedup directly.
func BenchmarkSweepE17Census(b *testing.B) {
	e, ok := FindExperiment("E17")
	if !ok {
		b.Fatal("no experiment E17")
	}
	for _, c := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(c.name, func(b *testing.B) {
			defer sweep.SetWorkers(sweep.SetWorkers(c.workers))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Execute recording modes on one EIG trial: fast mode skips snapshot and
// edge recording, the allocation delta is the cost of full recording.
func BenchmarkExecuteRecordingModes(b *testing.B) {
	g := Complete(10)
	honest := NewEIG(3, g.Names())
	inputs := map[string]Input{}
	for i, name := range g.Names() {
		inputs[name] = BoolInput(i%2 == 0)
	}
	for _, c := range []struct {
		name string
		opts ExecuteOpts
	}{{"full", FullRecording}, {"fast", ExecuteOpts{}}} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trial := ByzantineTrial{G: g, Inputs: inputs, Honest: honest, Rounds: EIGRounds(3)}
				if _, _, rep, err := trial.RunWith(c.opts); err != nil || !rep.OK() {
					b.Fatalf("rep=%v err=%v", rep, err)
				}
			}
		})
	}
}

func BenchmarkDLPSWRound(b *testing.B) {
	for _, n := range []int{4, 7, 13} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := Complete(n)
			f := (n - 1) / 3
			inputs := map[string]Input{}
			for i, name := range g.Names() {
				inputs[name] = RealInput(float64(i) / float64(n))
			}
			honest := NewDLPSW(f, g.Names(), 8)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				trial := ByzantineTrial{G: g, Inputs: inputs, Honest: honest, Rounds: 10}
				if _, _, _, err := trial.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
