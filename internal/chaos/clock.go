package chaos

import (
	"fmt"
	"math/big"
	"math/rand"
	"strconv"

	"flm/internal/clockfn"
	"flm/internal/clocksync"
	"flm/internal/graph"
	"flm/internal/timedsim"
)

// Clock synchronization rides the timed (exact rational) simulator, so
// its chaos trials run through MeasureAdequateSync rather than
// sim.Execute: a seeded clock liar babbles fabricated readings and the
// condition is the paper's — on an adequate graph the fault-tolerant
// trimmed-midpoint device must keep the correct-node gap strictly below
// the trivial no-communication gap (and bounded), while on an inadequate
// graph (n = 3f) the liar is expected to drag averaging devices past it,
// which is exactly what Theorem 8 predicts no device can prevent.

const (
	clockHorizon   = 64 // real-time horizon of each timed run
	clockGapBound  = 10 // absolute gap correct nodes must stay within
	clockFirstEval = 32 // samples at/after this time are judged
)

// newClockSchedule draws one clock-synchronization trial.
func newClockSchedule(rng *rand.Rand) Schedule {
	n := 3 + rng.Intn(2) // K3 (inadequate, n = 3f) or K4 (adequate)
	s := Schedule{
		Protocol: "clocksync",
		N:        n,
		F:        1,
		Adequate: n >= 4,
		Device:   "trimmed-midpoint",
		Inputs:   make([]string, n),
	}
	if !s.Adequate {
		// On the inadequate graph the panel attacks the plain averaging
		// device: trimming f=1 of 2 neighbor readings degenerates anyway.
		s.Device = "midpoint"
	}
	names := graph.Complete(n).Names()
	s.Actions = []Action{{
		Node:     names[rng.Intn(n)],
		Strategy: "clock-liar",
		Seed:     rng.Int63(),
	}}
	return s
}

func chaosClockParams() clocksync.Params {
	// p = t, q = 1.5t, l = t, u = t + 4, t' = 4 — the repository's
	// standard Theorem 8 instance.
	return clocksync.Params{
		P:      clockfn.RatIdentity(),
		Q:      clockfn.NewRatLinear(3, 2, 0, 1),
		L:      clockfn.Linear{Rate: 1, Off: 0},
		U:      clockfn.Linear{Rate: 1, Off: 4},
		Alpha:  1,
		TPrime: big.NewRat(4, 1),
		Delta:  big.NewRat(1, 2),
	}
}

// liarScript fabricates seeded pseudo-random clock readings: at every
// integer time the liar reports an arbitrary value in [-10^6, 10^6] to
// each neighbor independently — the Fault axiom's arbitrary behavior,
// randomized.
func liarScript(g *graph.Graph, liar string, seed int64, until int64) []timedsim.ScriptedSend {
	rng := rand.New(rand.NewSource(seed))
	u := g.MustIndex(liar)
	var nbs []string
	for _, v := range g.Neighbors(u) {
		nbs = append(nbs, g.Name(v))
	}
	var script []timedsim.ScriptedSend
	for t := int64(0); t <= until; t++ {
		for _, nb := range nbs {
			val := rng.Int63n(2_000_001) - 1_000_000
			script = append(script, timedsim.ScriptedSend{
				At: big.NewRat(t, 1), To: nb, Payload: strconv.FormatInt(val, 10),
			})
		}
	}
	return script
}

func runClockSchedule(s Schedule) Outcome {
	params := chaosClockParams()
	g := graph.Complete(s.N)
	names := g.Names()

	// Deterministic heterogeneous hardware clocks inside the [p, q]
	// envelope, cycling slow / fast / intermediate.
	clockZoo := []clockfn.RatLinear{
		clockfn.RatIdentity(),
		clockfn.NewRatLinear(3, 2, 0, 1),
		clockfn.NewRatLinear(5, 4, 1, 4),
	}
	clocks := make([]clockfn.RatLinear, s.N)
	for i := range clocks {
		clocks[i] = clockZoo[i%len(clockZoo)]
	}

	var builder clocksync.Builder
	switch s.Device {
	case "trimmed-midpoint":
		builder = clocksync.NewTrimmedMidpoint(params.L, s.F)
	case "midpoint":
		builder = clocksync.NewMidpoint(params.L)
	default:
		return Outcome{EngineErr: fmt.Errorf("chaos: unknown clock device %q", s.Device)}
	}
	builders := make(map[string]clocksync.Builder, s.N)
	for _, name := range names {
		builders[name] = builder
	}

	liar := ""
	var script []timedsim.ScriptedSend
	if len(s.Actions) > 0 {
		liar = s.Actions[0].Node
		script = liarScript(g, liar, s.Actions[0].Seed, clockHorizon)
	}
	samples := []*big.Rat{big.NewRat(clockFirstEval, 1), big.NewRat(clockHorizon, 1)}
	results, err := clocksync.MeasureAdequateSync(params, g, clocks, builders, liar, script, samples)
	if err != nil {
		return Outcome{EngineErr: err}
	}
	for _, r := range results {
		if r.T < clockFirstEval {
			continue
		}
		if r.MeasuredGap >= r.TrivialGap {
			return Outcome{Violation: fmt.Errorf(
				"clocksync: at t=%v the correct-node gap %.3f is not below the trivial gap %.3f",
				r.T, r.MeasuredGap, r.TrivialGap)}
		}
		if r.MeasuredGap > clockGapBound {
			return Outcome{Violation: fmt.Errorf(
				"clocksync: at t=%v the correct-node gap %.3f exploded past %d",
				r.T, r.MeasuredGap, clockGapBound)}
		}
	}
	return Outcome{}
}
