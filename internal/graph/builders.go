package graph

import (
	"fmt"
	"math/rand"
)

// Complete returns the complete graph K_n with nodes p0..p(n-1).
func Complete(n int) *Graph {
	g := Generated("p", n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// CompleteNamed returns the complete graph over the given node names.
func CompleteNamed(names ...string) *Graph {
	g := MustNew(names...)
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// Triangle returns the paper's three-node complete graph on nodes a, b, c.
func Triangle() *Graph { return CompleteNamed("a", "b", "c") }

// Diamond returns the paper's four-node connectivity-2 graph: the cycle
// a-b-c-d-a (Section 3.2), in which {b,d} is a vertex cut separating a
// from c.
func Diamond() *Graph {
	g := MustNew("a", "b", "c", "d")
	g.MustAddEdge(0, 1) // a-b
	g.MustAddEdge(1, 2) // b-c
	g.MustAddEdge(2, 3) // c-d
	g.MustAddEdge(3, 0) // d-a
	return g
}

// Ring returns the n-cycle r0-r1-...-r(n-1)-r0. It requires n >= 3.
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: ring needs n >= 3, got %d", n))
	}
	g := Generated("r", n)
	for u := 0; u < n; u++ {
		g.MustAddEdge(u, (u+1)%n)
	}
	return g
}

// Line returns the n-node path l0-l1-...-l(n-1).
func Line(n int) *Graph {
	g := Generated("l", n)
	for u := 0; u+1 < n; u++ {
		g.MustAddEdge(u, u+1)
	}
	return g
}

// Star returns a star with center s0 and n-1 leaves.
func Star(n int) *Graph {
	g := Generated("s", n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v)
	}
	return g
}

// Wheel returns the wheel W_n: an (n-1)-cycle plus a hub adjacent to every
// rim node. Its vertex connectivity is 3 for n >= 5.
func Wheel(n int) *Graph {
	if n < 4 {
		panic(fmt.Sprintf("graph: wheel needs n >= 4, got %d", n))
	}
	g := Generated("w", n)
	for u := 1; u < n; u++ {
		g.MustAddEdge(0, u)
	}
	for u := 1; u < n; u++ {
		next := u + 1
		if next == n {
			next = 1
		}
		if !g.HasEdge(u, next) {
			g.MustAddEdge(u, next)
		}
	}
	return g
}

// Circulant returns the circulant graph C_n(offsets): node u is adjacent
// to u±d (mod n) for each offset d. With offsets 1..k it has vertex
// connectivity 2k (for n > 2k), which makes it the standard family for
// sweeping the paper's 2f+1 connectivity threshold.
func Circulant(n int, offsets ...int) *Graph {
	g := Generated("c", n)
	for _, d := range offsets {
		if d <= 0 || 2*d >= n {
			panic(fmt.Sprintf("graph: circulant offset %d invalid for n=%d", d, n))
		}
		for u := 0; u < n; u++ {
			v := (u + d) % n
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d (2^d nodes,
// connectivity d).
func Hypercube(d int) *Graph {
	n := 1 << d
	g := Generated("h", n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << bit)
			if u < v {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph {
	g := Generated("g", rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Petersen returns the Petersen graph (10 nodes, 3-regular,
// connectivity 3).
func Petersen() *Graph {
	g := Generated("v", 10)
	for u := 0; u < 5; u++ {
		g.MustAddEdge(u, (u+1)%5) // outer pentagon
		g.MustAddEdge(u, u+5)     // spokes
		g.MustAddEdge(u+5, (u+2)%5+5)
	}
	return g
}

// CompleteBipartite returns K_{m,n} (connectivity min(m,n)).
func CompleteBipartite(m, n int) *Graph {
	g := Generated("b", m+n)
	for u := 0; u < m; u++ {
		for v := m; v < m+n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// GNP returns a seeded Erdős–Rényi random graph G(n,p). The same seed
// always yields the same graph.
func GNP(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := Generated("q", n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// CompleteMinusMatching returns K_n with a maximal matching of edges
// removed; for even n it is (n-2)-regular with connectivity n-2, a useful
// near-complete test family.
func CompleteMinusMatching(n int) *Graph {
	g := Complete(n)
	h := Generated("p", n)
	for u := 0; u < n; u++ {
		for _, v := range g.adj[u] {
			if u < v && !(u%2 == 0 && v == u+1) {
				h.MustAddEdge(u, v)
			}
		}
	}
	return h
}
