package adversary

import (
	"testing"

	"flm/internal/graph"
	"flm/internal/sim"
)

// echoDevice broadcasts its input every round; the simplest honest inner
// device for wrapper tests.
type echoDevice struct {
	nbs   []string
	input sim.Input
	round int
}

func echoBuilder(self string, neighbors []string, input sim.Input) sim.Device {
	return &echoDevice{nbs: append([]string(nil), neighbors...), input: input}
}

func (d *echoDevice) Init(self string, neighbors []string, input sim.Input) {
	d.nbs = append([]string(nil), neighbors...)
	d.input = input
}

func (d *echoDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	d.round = round
	out := sim.Outbox{}
	for _, nb := range d.nbs {
		out[nb] = sim.Payload(d.input)
	}
	return out
}

func (d *echoDevice) Snapshot() string             { return string(d.input) + "@" + sim.EncodeInt(d.round) }
func (d *echoDevice) Output() (sim.Decision, bool) { return sim.Decision{}, false }

func runStar(t *testing.T, center sim.Builder, rounds int) *sim.Run {
	t.Helper()
	g := graph.Star(4) // s0 center, s1..s3 leaves
	p := sim.Protocol{Builders: map[string]sim.Builder{}, Inputs: map[string]sim.Input{}}
	for _, name := range g.Names() {
		p.Builders[name] = echoBuilder
		p.Inputs[name] = "1"
	}
	p.Builders["s0"] = center
	sys, err := sim.NewSystem(g, p)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Execute(sys, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestSilentSendsNothing(t *testing.T) {
	run := runStar(t, Silent(), 3)
	for _, leaf := range []string{"s1", "s2", "s3"} {
		seq, _ := run.EdgeBehavior("s0", leaf)
		for r, p := range seq {
			if p != sim.None {
				t.Errorf("silent node sent %q to %s in round %d", p, leaf, r)
			}
		}
	}
}

func TestCrashStopsAtRound(t *testing.T) {
	run := runStar(t, Crash(echoBuilder, 2), 4)
	seq, _ := run.EdgeBehavior("s0", "s1")
	if seq[0] == sim.None || seq[1] == sim.None {
		t.Error("crash device silent before crash round")
	}
	if seq[2] != sim.None || seq[3] != sim.None {
		t.Error("crash device spoke after crash round")
	}
}

func TestOmissionDropsOnlyListed(t *testing.T) {
	run := runStar(t, Omission(echoBuilder, "s1", "s3"), 2)
	for _, tc := range []struct {
		leaf   string
		silent bool
	}{{"s1", true}, {"s2", false}, {"s3", true}} {
		seq, _ := run.EdgeBehavior("s0", tc.leaf)
		got := seq[0] == sim.None
		if got != tc.silent {
			t.Errorf("omission to %s: silent=%v, want %v", tc.leaf, got, tc.silent)
		}
	}
}

func TestEquivocateShowsTwoFaces(t *testing.T) {
	faceB := func(nb string) bool { return nb == "s2" }
	run := runStar(t, Equivocate(echoBuilder, "0", "1", faceB), 2)
	s1, _ := run.EdgeBehavior("s0", "s1")
	s2, _ := run.EdgeBehavior("s0", "s2")
	if s1[0] != "0" {
		t.Errorf("face A sent %q, want 0", s1[0])
	}
	if s2[0] != "1" {
		t.Errorf("face B sent %q, want 1", s2[0])
	}
}

func TestNoiseIsDeterministic(t *testing.T) {
	a := runStar(t, Noise(42), 5)
	b := runStar(t, Noise(42), 5)
	for _, leaf := range []string{"s1", "s2", "s3"} {
		sa, _ := a.EdgeBehavior("s0", leaf)
		sb, _ := b.EdgeBehavior("s0", leaf)
		for r := range sa {
			if sa[r] != sb[r] {
				t.Fatalf("noise differs at %s round %d: %q vs %q", leaf, r, sa[r], sb[r])
			}
		}
	}
	c := runStar(t, Noise(43), 5)
	same := true
	for _, leaf := range []string{"s1", "s2", "s3"} {
		sa, _ := a.EdgeBehavior("s0", leaf)
		sc, _ := c.EdgeBehavior("s0", leaf)
		for r := range sa {
			if sa[r] != sc[r] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestMirrorReflectsRotated(t *testing.T) {
	run := runStar(t, Mirror(), 4)
	// Leaves broadcast "1" every round starting at round 0; the mirror
	// receives them in round 1 and reflects in round 2 (one round of
	// buffering).
	for _, leaf := range []string{"s1", "s2", "s3"} {
		seq, _ := run.EdgeBehavior("s0", leaf)
		if seq[0] != sim.None || seq[1] != sim.None {
			t.Errorf("mirror spoke before buffering to %s: %q %q", leaf, seq[0], seq[1])
		}
		if seq[2] != "1" {
			t.Errorf("mirror did not reflect to %s in round 2: %q", leaf, seq[2])
		}
	}
}

func TestPanelShape(t *testing.T) {
	panel := Panel(1)
	if len(panel) < 5 {
		t.Fatalf("panel has %d strategies", len(panel))
	}
	seen := map[string]bool{}
	for _, s := range panel {
		if s.Name == "" || s.Corrupt == nil {
			t.Errorf("malformed strategy %+v", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate strategy name %s", s.Name)
		}
		seen[s.Name] = true
		// Every corrupted builder must produce a working device.
		b := s.Corrupt(echoBuilder)
		d := b("x", []string{"y"}, "0")
		d.Step(0, nil)
		if d.Snapshot() == "" {
			t.Errorf("strategy %s produced empty snapshot", s.Name)
		}
		if _, decided := d.Output(); decided {
			t.Errorf("faulty device %s claims a decision", s.Name)
		}
	}
}
