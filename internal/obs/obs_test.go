package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// record mirrors the JSONL schema for decoding in tests (and in the
// flm stats command, which keeps its own copy to stay decoupled).
type record struct {
	T       string         `json:"t"`
	ID      uint64         `json:"id"`
	Par     uint64         `json:"par"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	AtUS    int64          `json:"at_us"`
	Attrs   map[string]any `json:"attrs"`
}

func decodeAll(t *testing.T, data []byte) []record {
	t.Helper()
	var recs []record
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var r record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		recs = append(recs, r)
	}
	return recs
}

func TestSpanNestingAndAttrs(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	defer SetTracer(tr)()

	ctx, root := StartSpan(context.Background(), "root", Str("kind", "test"))
	ctx2, child := StartSpan(ctx, "child", Int("n", 42), Bool("ok", true), F64("x", 1.5))
	Event(ctx2, "ping", Str("msg", "hi\n\"quoted\""))
	child.SetAttrs(Int64("late", -7))
	child.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs := decodeAll(t, buf.Bytes())
	// Order: event fires first, then child End, root End, metrics.
	if len(recs) != 4 {
		t.Fatalf("want 4 records, got %d", len(recs))
	}
	ev, ch, rt := recs[0], recs[1], recs[2]
	if ev.T != "event" || ev.Name != "ping" {
		t.Fatalf("first record should be the event, got %+v", ev)
	}
	if ch.Name != "child" || rt.Name != "root" {
		t.Fatalf("span order wrong: %q then %q", ch.Name, rt.Name)
	}
	if rt.Par != 0 {
		t.Errorf("root should have no parent, got %d", rt.Par)
	}
	if ch.Par != rt.ID {
		t.Errorf("child parent = %d, want root id %d", ch.Par, rt.ID)
	}
	if ev.Par != ch.ID {
		t.Errorf("event parent = %d, want child id %d", ev.Par, ch.ID)
	}
	if ch.Attrs["n"] != float64(42) || ch.Attrs["ok"] != true || ch.Attrs["x"] != 1.5 || ch.Attrs["late"] != float64(-7) {
		t.Errorf("child attrs wrong: %v", ch.Attrs)
	}
	if ev.Attrs["msg"] != "hi\n\"quoted\"" {
		t.Errorf("string escaping round-trip failed: %q", ev.Attrs["msg"])
	}
	if recs[3].T != "metrics" {
		t.Errorf("Close should append a metrics record, got %q", recs[3].T)
	}
}

func TestDisabledPathIsInert(t *testing.T) {
	defer SetTracer(nil)()
	if Enabled() {
		t.Fatal("no tracer installed but Enabled() = true")
	}
	ctx, sp := StartSpan(context.Background(), "x", Str("a", "b"))
	if sp != nil {
		t.Fatal("StartSpan should return a nil span while disabled")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("disabled StartSpan must not store a span in the context")
	}
	// All nil-span methods must be safe no-ops.
	sp.SetAttrs(Int("n", 1)).End()
	Event(ctx, "nothing")
}

// TestDisabledZeroAlloc pins the zero-overhead contract: the guard the
// instrumented hot paths run while tracing is off — Enabled, a nil
// StartSpan without attrs, and nil-span method calls — allocates
// nothing. (BenchmarkObsDisabled in internal/sim measures the full
// executor path.)
func TestDisabledZeroAlloc(t *testing.T) {
	defer SetTracer(nil)()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		if Enabled() {
			t.Fatal("tracer unexpectedly installed")
		}
		_, sp := StartSpan(ctx, "hot")
		sp.SetAttrs()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %v allocs/op, want 0", allocs)
	}
}

func TestConcurrentSpansDoNotInterleave(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	defer SetTracer(tr)()

	const goroutines, spans = 8, 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < spans; i++ {
				ctx, sp := StartSpan(context.Background(), "worker",
					Int("g", g), Int("i", i), Str("payload", strings.Repeat("x", 100)))
				Event(ctx, "tick")
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs := decodeAll(t, buf.Bytes()) // fails on any interleaved line
	want := goroutines*spans*2 + 1    // spans + events + metrics
	if len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
}

func TestSpanSurvivesTracerSwap(t *testing.T) {
	var a, b bytes.Buffer
	trA := NewTracer(&a)
	restore := SetTracer(trA)
	_, sp := StartSpan(context.Background(), "crossing")
	// Swap tracers while the span is open: it must land in the tracer
	// that started it.
	SetTracer(NewTracer(&b))
	sp.End()
	restore()
	if err := trA.Err(); err != nil {
		t.Fatal(err)
	}
	trA.Close()
	if !strings.Contains(a.String(), `"name":"crossing"`) {
		t.Errorf("span lost on tracer swap; tracer A saw: %q", a.String())
	}
	if strings.Contains(b.String(), "crossing") {
		t.Errorf("span leaked into the new tracer")
	}
}

func TestWriteErrorStopsRecording(t *testing.T) {
	tr := NewTracer(failingWriter{})
	defer SetTracer(tr)()
	for i := 0; i < 10000; i++ { // overflow the 64 KiB buffer to force a flush
		_, sp := StartSpan(context.Background(), strings.Repeat("n", 64))
		sp.End()
	}
	if tr.Close() == nil {
		t.Fatal("Close should surface the write error")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, errFail }

var errFail = &json.UnsupportedValueError{Str: "sink failed"}
