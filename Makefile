# Verification gates (see ROADMAP.md).
#
# verify       tier-1: build + full test suite
# verify-race  extended: vet + race-enabled tests; FLM_WORKERS forces the
#              parallel sweep path so the race detector sees real
#              concurrency even on single-core runners
# bench        refresh the BENCH_<date>.json perf snapshot

GO ?= go
RACE_WORKERS ?= 4

.PHONY: verify verify-race bench

verify:
	$(GO) build ./...
	$(GO) test ./...

verify-race: verify
	$(GO) vet ./...
	FLM_WORKERS=$(RACE_WORKERS) $(GO) test -race ./...

bench:
	$(GO) run ./cmd/flm bench
