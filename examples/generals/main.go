// Byzantine generals: seven divisions must agree on ATTACK or RETREAT
// while up to two of their generals are traitors. EIG reaches agreement
// on the full council (K7); the same council communicating only through a
// sparse courier network still succeeds as long as the network has
// connectivity 2f+1, using Dolev's disjoint-path routing.
package main

import (
	"fmt"
	"log"

	"flm"
)

const (
	attack  = true
	retreat = false
)

func runCouncil(g *flm.Graph, f int, honest flm.Builder, rounds int,
	votes map[string]bool, traitors map[string]flm.Builder) {
	p := flm.Protocol{Builders: map[string]flm.Builder{}, Inputs: map[string]flm.Input{}}
	var loyal []string
	for _, name := range g.Names() {
		p.Inputs[name] = flm.BoolInput(votes[name])
		if tb, isTraitor := traitors[name]; isTraitor {
			p.Builders[name] = tb
		} else {
			p.Builders[name] = honest
			loyal = append(loyal, name)
		}
	}
	sys, err := flm.NewSystem(g, p)
	if err != nil {
		log.Fatal(err)
	}
	run, err := flm.Execute(sys, rounds)
	if err != nil {
		log.Fatal(err)
	}
	rep := flm.CheckByzantineAgreement(run, loyal)
	fmt.Printf("  loyal generals agree: %v\n", rep.OK())
	for _, name := range loyal {
		d, _ := run.DecisionOf(name)
		order := "RETREAT"
		if d.Value == "1" {
			order = "ATTACK"
		}
		fmt.Printf("    %s -> %s (round %d)\n", name, order, d.Round)
	}
}

func main() {
	// Full council: K7, two traitors (f=2).
	g := flm.Complete(7)
	votes := map[string]bool{
		"p0": attack, "p1": attack, "p2": attack, "p3": retreat,
		"p4": attack, "p5": retreat, "p6": attack,
	}
	honest := flm.NewEIG(2, g.Names())
	fmt.Println("Council of seven (K7), traitors p2 and p5:")
	fmt.Println("  p2 equivocates (tells half ATTACK, half RETREAT); p5 stays silent.")
	traitors := map[string]flm.Builder{
		"p2": flm.Equivocate(honest, flm.BoolInput(retreat), flm.BoolInput(attack),
			func(nb string) bool { return nb < "p3" }),
		"p5": flm.Silent(),
	}
	runCouncil(g, 2, honest, flm.EIGRounds(2), votes, traitors)

	// Courier network: the wheel W7 has only 10 of K7's 21 roads but
	// still connectivity 3 = 2f+1 for f=1; Dolev routing carries the
	// same agreement.
	sparse := flm.Wheel(7)
	router, err := flm.NewRouter(sparse, 1)
	if err != nil {
		log.Fatal(err)
	}
	overlay := flm.Overlay(router, flm.NewEIG(1, sparse.Names()))
	sparseVotes := map[string]bool{
		"w0": attack, "w1": attack, "w2": retreat, "w3": attack,
		"w4": attack, "w5": retreat, "w6": attack,
	}
	fmt.Printf("\nCourier network (wheel, connectivity %d), traitor at the hub w0:\n",
		sparse.VertexConnectivity())
	fmt.Printf("  each message travels %d vertex-disjoint paths (stretch %d rounds/step)\n",
		router.NumPaths(), router.StretchFactor())
	runCouncil(sparse, 1, overlay, router.Rounds(flm.EIGRounds(1)), sparseVotes,
		map[string]flm.Builder{"w0": flm.Noise(42)})

	// And the punchline: with only three generals and one traitor there
	// is no protocol at all — the hexagon argument defeats EIG itself.
	tri := flm.Triangle()
	builders := map[string]flm.Builder{}
	for _, name := range tri.Names() {
		builders[name] = flm.NewEIG(1, tri.Names())
	}
	cr, err := flm.ProveByzantineTriangle(builders, "eig", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nThree generals, one traitor (FLM85 Theorem 1):\n%s", cr)

	// ...unless the generals seal their orders: with unforgeable
	// signatures the Fault axiom breaks, and Dolev-Strong agreement works
	// on the very same triangle (the paper's own caveat).
	reg := flm.NewSigRegistry()
	signedHonest := flm.NewDolevStrong(1, tri.Names(), reg)
	signedVotes := map[string]bool{"a": attack, "b": attack, "c": retreat}
	fmt.Println("\nThe same three generals with signed orders (Dolev-Strong), traitor c equivocating:")
	runCouncil(tri, 1, signedHonest, flm.DolevStrongRounds(1), signedVotes,
		map[string]flm.Builder{"c": flm.Equivocate(signedHonest,
			flm.BoolInput(retreat), flm.BoolInput(attack),
			func(nb string) bool { return nb == "a" })})
}
