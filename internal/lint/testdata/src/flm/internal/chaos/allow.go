package chaos

import "time"

// A directive in the doc comment silences the whole declaration.
//
//flmlint:allow flmdeterminism fixture: timing here feeds a log line only
func allowedWholeDecl() {
	_ = time.Now()
	_ = time.Since(time.Now())
}

func allowedSingleLine() {
	//flmlint:allow flmdeterminism fixture: this one read is justified
	_ = time.Now()
	_ = time.Now() // the directive covers only the lines above // want `time\.Now in deterministic package`
}
