package core

import (
	"strings"
	"testing"

	"flm/internal/byzantine"
	"flm/internal/graph"
	"flm/internal/sim"
)

// trianglePanel returns candidate BA device panels for the triangle: each
// entry claims to solve Byzantine agreement with f=1 on three nodes,
// which Theorem 1 forbids.
func trianglePanel() map[string]sim.Builder {
	peers := []string{"a", "b", "c"}
	return map[string]sim.Builder{
		"majority":  byzantine.NewMajority(2),
		"echo":      byzantine.NewEcho(2),
		"own-input": byzantine.NewOwnInput(2),
		"const-0":   byzantine.NewConstant("0", 2),
		"const-1":   byzantine.NewConstant("1", 2),
		"eig":       byzantine.NewEIG(1, peers),
		"phaseking": byzantine.NewPhaseKing(1, peers),
	}
}

func uniformBuilders(g *graph.Graph, b sim.Builder) map[string]sim.Builder {
	m := make(map[string]sim.Builder, g.N())
	for _, name := range g.Names() {
		m[name] = b
	}
	return m
}

func TestByzantineTriangleDefeatsEveryDevice(t *testing.T) {
	g := graph.Triangle()
	for name, builder := range trianglePanel() {
		t.Run(name, func(t *testing.T) {
			cr, err := ByzantineTriangle(uniformBuilders(g, builder), name, 8)
			if err != nil {
				t.Fatalf("engine error: %v", err)
			}
			if !cr.Contradicted() {
				t.Fatalf("device %s survived the hexagon argument:\n%s", name, cr)
			}
			if len(cr.Links) != 3 {
				t.Errorf("chain has %d links, want 3", len(cr.Links))
			}
			if cr.CoverSize != 6 {
				t.Errorf("cover size %d, want 6 (hexagon)", cr.CoverSize)
			}
		})
	}
}

// The violations must be the ones the paper's argument predicts for the
// canonical devices.
func TestByzantineTriangleViolationShapes(t *testing.T) {
	g := graph.Triangle()
	tests := []struct {
		device        string
		builder       sim.Builder
		wantCondition string
		wantLink      string
	}{
		// Constant 0 satisfies agreement everywhere but breaks validity
		// in E3 (unanimous 1).
		{"const-0", byzantine.NewConstant("0", 2), "validity", "E3"},
		// Constant 1 breaks validity in E1 (unanimous 0).
		{"const-1", byzantine.NewConstant("1", 2), "validity", "E1"},
		// Own-input satisfies both validity links and breaks agreement
		// in the mixed scenario E2.
		{"own-input", byzantine.NewOwnInput(2), "agreement", "E2"},
	}
	for _, tt := range tests {
		t.Run(tt.device, func(t *testing.T) {
			cr, err := ByzantineTriangle(uniformBuilders(g, tt.builder), tt.device, 8)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, v := range cr.Violations {
				if v.Condition == tt.wantCondition && v.Link == tt.wantLink {
					found = true
				}
			}
			if !found {
				t.Errorf("want %s violation in %s, got %v", tt.wantCondition, tt.wantLink, cr.Violations)
			}
		})
	}
}

func TestByzantineNodesGeneralCase(t *testing.T) {
	// K6 with f=2: blocks of two nodes each. EIG for f=2 on six nodes
	// claims to tolerate two faults; 6 <= 3f, so the engine must defeat
	// it.
	g := graph.Complete(6)
	builder := byzantine.NewEIG(2, g.Names())
	cr, err := ByzantineNodes(g, 2, []int{0, 1}, []int{2, 3}, []int{4, 5},
		uniformBuilders(g, builder), "eig-f2", byzantine.EIGRounds(2)+2)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !cr.Contradicted() {
		t.Fatalf("EIG f=2 survived on K6:\n%s", cr)
	}
	if cr.CoverSize != 12 {
		t.Errorf("cover size %d, want 12", cr.CoverSize)
	}
}

func TestByzantineNodesUnevenPartition(t *testing.T) {
	// K5 with f=2 and blocks of sizes 2,2,1.
	g := graph.Complete(5)
	builder := byzantine.NewEIG(2, g.Names())
	cr, err := ByzantineNodes(g, 2, []int{0, 1}, []int{2, 3}, []int{4},
		uniformBuilders(g, builder), "eig-f2", byzantine.EIGRounds(2)+2)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Contradicted() {
		t.Fatalf("device survived on K5 with f=2:\n%s", cr)
	}
}

func TestByzantineNodesRejectsAdequateGraph(t *testing.T) {
	g := graph.Complete(4) // n = 3f+1: not inadequate by node count
	builder := byzantine.NewMajority(2)
	if _, err := ByzantineNodes(g, 1, []int{0}, []int{1}, []int{2, 3},
		uniformBuilders(g, builder), "majority", 6); err == nil {
		t.Error("engine accepted an adequate graph")
	}
}

func TestByzantineNodesRejectsOversizedBlocks(t *testing.T) {
	g := graph.Triangle()
	builder := byzantine.NewMajority(2)
	if _, err := ByzantineNodes(g, 1, []int{0, 1}, []int{2}, nil,
		uniformBuilders(g, builder), "majority", 6); err == nil {
		t.Error("engine accepted a block larger than f")
	}
}

func TestByzantineDiamondDefeatsEveryDevice(t *testing.T) {
	g := graph.Diamond()
	panel := map[string]sim.Builder{
		"majority":  byzantine.NewMajority(3),
		"echo":      byzantine.NewEcho(3),
		"own-input": byzantine.NewOwnInput(3),
		"const-0":   byzantine.NewConstant("0", 3),
	}
	for name, builder := range panel {
		t.Run(name, func(t *testing.T) {
			cr, err := ByzantineDiamond(uniformBuilders(g, builder), name, 10)
			if err != nil {
				t.Fatalf("engine error: %v", err)
			}
			if !cr.Contradicted() {
				t.Fatalf("device %s survived the diamond argument:\n%s", name, cr)
			}
			if cr.CoverSize != 8 {
				t.Errorf("cover size %d, want 8", cr.CoverSize)
			}
		})
	}
}

func TestByzantineConnectivityGeneralCase(t *testing.T) {
	// Circulant(10,{1,2}) has connectivity 4 = 2f for f=2; the cut
	// {1,2,8,9} separates node 0 from node 5.
	g := graph.Circulant(10, 1, 2)
	builder := byzantine.NewEIG(2, g.Names()) // EIG misapplied to a sparse graph
	cr, err := ByzantineConnectivity(g, 2, []int{1, 9}, []int{2, 8}, 0, 5,
		uniformBuilders(g, builder), "eig-f2", byzantine.EIGRounds(2)+4)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !cr.Contradicted() {
		t.Fatalf("device survived the connectivity argument:\n%s", cr)
	}
}

func TestByzantineConnectivityRejectsNonCut(t *testing.T) {
	g := graph.Complete(4) // no 2-node cut separates anything
	builder := byzantine.NewMajority(2)
	if _, err := ByzantineConnectivity(g, 1, []int{1}, []int{3}, 0, 2,
		uniformBuilders(g, builder), "majority", 6); err == nil {
		t.Error("engine accepted a non-separating cut")
	}
}

func TestChainResultString(t *testing.T) {
	g := graph.Triangle()
	cr, err := ByzantineTriangle(uniformBuilders(g, byzantine.NewMajority(2)), "majority", 8)
	if err != nil {
		t.Fatal(err)
	}
	s := cr.String()
	for _, want := range []string{"Theorem 1", "E1", "E2", "E3", "majority", "**"} {
		if !strings.Contains(s, want) {
			t.Errorf("chain rendering missing %q:\n%s", want, s)
		}
	}
}

// The splice's Locality self-check must hold on every link: decisions of
// S-nodes and their spliced G-images coincide.
func TestSpliceDecisionConsistency(t *testing.T) {
	g := graph.Triangle()
	cr, err := ByzantineTriangle(uniformBuilders(g, byzantine.NewMajority(2)), "majority", 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, link := range cr.Links {
		for _, sName := range link.Splice.UNodes {
			dG, err := link.Splice.DecisionOfS(sName)
			if err != nil {
				t.Fatal(err)
			}
			dS, err := cr.RunS.DecisionOf(sName)
			if err != nil {
				t.Fatal(err)
			}
			if dG.Value != dS.Value {
				t.Errorf("%s: S-node %s decided %q in S but its image decided %q in G",
					link.Name, sName, dS.Value, dG.Value)
			}
		}
	}
}
